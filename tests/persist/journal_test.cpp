#include "persist/journal.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netbase/error.hpp"

namespace aio::persist {
namespace {

CampaignHeader sampleHeader() {
    CampaignHeader header;
    header.planDigest = 0x1122334455667788ULL;
    header.configDigest = 0x99AABBCCDDEEFF00ULL;
    header.initialRngState = {1, 2, 3, 4};
    header.taskCount = 40;
    header.probeCount = 8;
    header.checkpointInterval = 4;
    return header;
}

TaskOutcomeRecord sampleOutcome(std::uint64_t taskIdx,
                                TaskOutcomeKind kind) {
    TaskOutcomeRecord outcome;
    outcome.taskIdx = taskIdx;
    outcome.kind = kind;
    outcome.faultClass = kind == TaskOutcomeKind::Completed
                             ? kNoFaultClass
                             : std::uint8_t{1};
    outcome.clockHour = 0.25 * static_cast<double>(taskIdx);
    return outcome;
}

CampaignCheckpoint sampleCheckpoint(std::uint64_t outcomesApplied) {
    CampaignCheckpoint cp;
    cp.outcomesApplied = outcomesApplied;
    cp.nextSeq = outcomesApplied + 40;
    cp.rngState = {5, 6, 7, 8};
    cp.result.ixpsDetected = {2, 11, 30};
    cp.result.asesObserved = {1, 2, 3, 99};
    cp.result.tracesLaunched = 17;
    cp.result.tracesCompleted = 15;
    cp.result.degradation.tasksPlanned = 40;
    cp.result.degradation.attempts = 21;
    cp.result.degradation.retries = 4;
    cp.result.degradation.reassigned = 2;
    cp.result.degradation.abandoned = 1;
    cp.result.degradation.completed = 15;
    cp.result.degradation.transientTimeouts = 5;
    cp.result.degradation.completionRatio = 0.375;
    cp.result.degradation.lossByFaultClass = {{"power loss", 1}};
    cp.assignments = {{0, 100}, {1, 101}, {2, 102}};
    cp.pending = {{1.5, 9, 3, 1, 0}, {2.25, 10, 7, 0, 1}};
    cp.meters = {{1.2, 0.0, false}, {3.4, 0.5, true}};
    return cp;
}

TEST(JournalReplay, HeaderOnlyRoundTrips) {
    MemorySink sink;
    CampaignJournal journal{sink};
    const CampaignHeader header = sampleHeader();
    journal.writeHeader(header);

    const auto replay = CampaignJournal::replay(sink.bytes());
    ASSERT_TRUE(replay.header.has_value());
    EXPECT_EQ(*replay.header, header);
    EXPECT_FALSE(replay.checkpoint.has_value());
    EXPECT_EQ(replay.outcomeRecords, 0U);
    EXPECT_FALSE(replay.tornTail);
}

TEST(JournalReplay, EmptyBytesMeanNothingDurablyStarted) {
    const auto replay = CampaignJournal::replay({});
    EXPECT_FALSE(replay.header.has_value());
    EXPECT_FALSE(replay.checkpoint.has_value());
    EXPECT_FALSE(replay.tornTail);
}

TEST(JournalReplay, CheckpointContentsRoundTripExactly) {
    MemorySink sink;
    CampaignJournal journal{sink};
    journal.writeHeader(sampleHeader());
    for (std::uint64_t i = 0; i < 4; ++i) {
        journal.appendOutcome(sampleOutcome(
            i, i % 2 == 0 ? TaskOutcomeKind::Completed
                          : TaskOutcomeKind::Retried));
    }
    const CampaignCheckpoint cp = sampleCheckpoint(4);
    journal.appendCheckpoint(cp);
    journal.appendOutcome(sampleOutcome(9, TaskOutcomeKind::Abandoned));

    const auto replay = CampaignJournal::replay(sink.bytes());
    ASSERT_TRUE(replay.checkpoint.has_value());
    EXPECT_EQ(*replay.checkpoint, cp);
    EXPECT_EQ(replay.outcomeRecords, 5U);
    EXPECT_FALSE(replay.tornTail);
}

TEST(JournalReplay, LastIntactCheckpointWins) {
    MemorySink sink;
    CampaignJournal journal{sink};
    journal.writeHeader(sampleHeader());
    for (std::uint64_t i = 0; i < 3; ++i) {
        journal.appendOutcome(sampleOutcome(i, TaskOutcomeKind::Completed));
    }
    journal.appendCheckpoint(sampleCheckpoint(3));
    for (std::uint64_t i = 3; i < 6; ++i) {
        journal.appendOutcome(sampleOutcome(i, TaskOutcomeKind::Completed));
    }
    const CampaignCheckpoint second = sampleCheckpoint(6);
    journal.appendCheckpoint(second);

    const auto replay = CampaignJournal::replay(sink.bytes());
    ASSERT_TRUE(replay.checkpoint.has_value());
    EXPECT_EQ(replay.checkpoint->outcomesApplied, 6U);
    EXPECT_EQ(*replay.checkpoint, second);
}

TEST(JournalReplay, TornTailDropsThePartialCheckpoint) {
    MemorySink sink;
    CampaignJournal journal{sink};
    journal.writeHeader(sampleHeader());
    journal.appendOutcome(sampleOutcome(0, TaskOutcomeKind::Completed));
    journal.appendOutcome(sampleOutcome(1, TaskOutcomeKind::Completed));
    const std::size_t beforeCheckpoint = sink.size();
    journal.appendCheckpoint(sampleCheckpoint(2));

    // Cut 7 bytes into the checkpoint record: power died mid-append.
    const auto torn = sink.bytes().first(beforeCheckpoint + 7);
    const auto replay = CampaignJournal::replay(torn);
    ASSERT_TRUE(replay.header.has_value());
    EXPECT_FALSE(replay.checkpoint.has_value());
    EXPECT_EQ(replay.outcomeRecords, 2U);
    EXPECT_TRUE(replay.tornTail);
}

TEST(JournalReplay, MissingHeaderIsCorruption) {
    MemorySink sink;
    CampaignJournal journal{sink};
    journal.writeHeader(sampleHeader());
    journal.appendOutcome(sampleOutcome(0, TaskOutcomeKind::Completed));
    // Strip the header record: the journal now opens with an outcome.
    const ScanResult scan = scanRecords(sink.bytes());
    const auto headless = sink.bytes().subspan(scan.boundaries[0]);
    EXPECT_THROW((void)CampaignJournal::replay(headless),
                 net::CorruptionError);
}

TEST(JournalReplay, DuplicateHeaderIsCorruption) {
    MemorySink sink;
    CampaignJournal journal{sink};
    journal.writeHeader(sampleHeader());
    const ScanResult scan = scanRecords(sink.bytes());
    std::vector<std::byte> doubled{sink.bytes().begin(),
                                   sink.bytes().end()};
    doubled.insert(doubled.end(), sink.bytes().begin(),
                   sink.bytes().begin() + static_cast<std::ptrdiff_t>(
                                              scan.boundaries[0]));
    EXPECT_THROW((void)CampaignJournal::replay(doubled),
                 net::CorruptionError);
}

TEST(JournalReplay, CheckpointContradictingOutcomeCountIsCorruption) {
    MemorySink sink;
    CampaignJournal journal{sink};
    journal.writeHeader(sampleHeader());
    journal.appendOutcome(sampleOutcome(0, TaskOutcomeKind::Completed));
    journal.appendOutcome(sampleOutcome(1, TaskOutcomeKind::Completed));
    journal.appendCheckpoint(sampleCheckpoint(5)); // only 2 journaled
    EXPECT_THROW((void)CampaignJournal::replay(sink.bytes()),
                 net::CorruptionError);
}

TEST(JournalReplay, DuplicatedOutcomeRecordSurfacesAtNextCheckpoint) {
    MemorySink sink;
    CampaignJournal journal{sink};
    journal.writeHeader(sampleHeader());
    journal.appendOutcome(sampleOutcome(0, TaskOutcomeKind::Completed));
    journal.appendOutcome(sampleOutcome(1, TaskOutcomeKind::Completed));
    journal.appendCheckpoint(sampleCheckpoint(2));

    // Splice a copy of the first outcome record in before the checkpoint.
    const ScanResult scan = scanRecords(sink.bytes());
    const auto bytes = sink.bytes();
    std::vector<std::byte> spliced;
    spliced.insert(spliced.end(), bytes.begin(),
                   bytes.begin() +
                       static_cast<std::ptrdiff_t>(scan.boundaries[1]));
    spliced.insert(spliced.end(),
                   bytes.begin() +
                       static_cast<std::ptrdiff_t>(scan.boundaries[0]),
                   bytes.begin() +
                       static_cast<std::ptrdiff_t>(scan.boundaries[1]));
    spliced.insert(spliced.end(),
                   bytes.begin() +
                       static_cast<std::ptrdiff_t>(scan.boundaries[1]),
                   bytes.end());
    EXPECT_THROW((void)CampaignJournal::replay(spliced),
                 net::CorruptionError);
}

TEST(JournalReplay, ContinuationJournalCursorAccountsForResumePoint) {
    // A continuation journal starts with resumedAtOutcome = 7 and
    // re-anchors with an immediate checkpoint at cursor 7; later
    // checkpoints count 7 + journaled outcomes.
    MemorySink sink;
    CampaignJournal journal{sink};
    CampaignHeader header = sampleHeader();
    header.resumedAtOutcome = 7;
    journal.writeHeader(header);
    journal.appendCheckpoint(sampleCheckpoint(7));
    journal.appendOutcome(sampleOutcome(12, TaskOutcomeKind::Completed));
    journal.appendCheckpoint(sampleCheckpoint(8));

    const auto replay = CampaignJournal::replay(sink.bytes());
    ASSERT_TRUE(replay.checkpoint.has_value());
    EXPECT_EQ(replay.checkpoint->outcomesApplied, 8U);
    EXPECT_EQ(replay.outcomeRecords, 1U);
}

// --- durability: the journal must flush, not just append ---------------

TEST(JournalDurability, EveryAppendIsFlushedBeforeReturning) {
    // The WAL contract is only honest once bytes leave the buffering
    // layer: on a sink modelling an OS page cache, everything the journal
    // wrote must be durable the moment the append call returns. (The
    // original journal never flushed — this test is the regression lock.)
    BufferingSink sink;
    CampaignJournal journal{sink};

    journal.writeHeader(sampleHeader());
    EXPECT_EQ(sink.pendingBytes(), 0U) << "header left in the buffer";

    journal.appendOutcome(sampleOutcome(0, TaskOutcomeKind::Completed));
    EXPECT_EQ(sink.pendingBytes(), 0U) << "outcome left in the buffer";

    journal.appendCheckpoint(sampleCheckpoint(1));
    EXPECT_EQ(sink.pendingBytes(), 0U) << "checkpoint left in the buffer";

    // What a crash right now would leave behind replays completely.
    const auto replay = CampaignJournal::replay(sink.durable());
    ASSERT_TRUE(replay.header.has_value());
    ASSERT_TRUE(replay.checkpoint.has_value());
    EXPECT_EQ(replay.outcomeRecords, 1U);
    EXPECT_FALSE(replay.tornTail);
}

TEST(JournalDurability, CrashBetweenWriteAndFlushLosesOnlyThatRecord) {
    // Learn the record layout from an uninterrupted twin journal.
    MemorySink whole;
    {
        CampaignJournal journal{whole};
        journal.writeHeader(sampleHeader());
        journal.appendOutcome(sampleOutcome(0, TaskOutcomeKind::Completed));
        journal.appendCheckpoint(sampleCheckpoint(1));
    }
    const auto boundaries = scanRecords(whole.bytes()).boundaries;
    ASSERT_EQ(boundaries.size(), 3U);

    // Budget = exactly header + outcome: the outcome append lands in the
    // buffer, the flush right after it throws — the written-but-unflushed
    // record is the one the crash eats, nothing else.
    BufferingSink buffered;
    CrashingSink dying{buffered, boundaries[1]};
    CampaignJournal journal{dying};
    journal.writeHeader(sampleHeader());
    EXPECT_THROW(
        journal.appendOutcome(sampleOutcome(0, TaskOutcomeKind::Completed)),
        SinkFailure);

    EXPECT_EQ(buffered.pendingBytes(), boundaries[1] - boundaries[0])
        << "the outcome record reached the buffer but not durability";
    const auto replay = CampaignJournal::replay(buffered.durable());
    ASSERT_TRUE(replay.header.has_value());
    EXPECT_EQ(replay.outcomeRecords, 0U)
        << "an unflushed record must not survive the crash";
    EXPECT_FALSE(replay.checkpoint.has_value());
}

TEST(JournalReplay, UnknownRecordTypeIsCorruption) {
    MemorySink sink;
    CampaignJournal journal{sink};
    journal.writeHeader(sampleHeader());
    RecordWriter raw{sink};
    const std::byte rogue[] = {std::byte{0x7F}, std::byte{0x00}};
    (void)raw.append(rogue);
    EXPECT_THROW((void)CampaignJournal::replay(sink.bytes()),
                 net::CorruptionError);
}

} // namespace
} // namespace aio::persist
