#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "netbase/error.hpp"
#include "netbase/rng.hpp"
#include "persist/record.hpp"

// Property/fuzz corpus for the record codec: whatever bytes a crashed or
// bit-rotted disk hands back, the reader must never crash and must
// classify the damage — truncation is a torn tail (expected, recoverable),
// any bit flip in intact records is corruption (refuse to resume).
namespace aio::persist {
namespace {

/// A journal of `count` random-sized random-content records.
std::vector<std::byte> randomJournal(net::Rng& rng, int count,
                                     std::vector<std::size_t>* boundaries) {
    MemorySink sink;
    RecordWriter writer{sink};
    for (int i = 0; i < count; ++i) {
        std::vector<std::byte> payload(rng.uniformInt(96));
        for (std::byte& b : payload) {
            b = static_cast<std::byte>(rng.uniformInt(256));
        }
        (void)writer.append(payload);
        if (boundaries != nullptr) {
            boundaries->push_back(
                static_cast<std::size_t>(writer.bytesWritten()));
        }
    }
    const auto bytes = sink.bytes();
    return {bytes.begin(), bytes.end()};
}

/// Scans and reports what happened; a throw of anything other than
/// CorruptionError — or a crash — fails the property.
enum class Outcome { CleanEnd, TornTail, Corrupt };

Outcome classify(std::span<const std::byte> journal) {
    try {
        const ScanResult scan = scanRecords(journal);
        return scan.tail == TailStatus::Torn ? Outcome::TornTail
                                             : Outcome::CleanEnd;
    } catch (const net::CorruptionError&) {
        return Outcome::Corrupt;
    }
}

TEST(RecordFuzz, ZeroLengthFileIsACleanEmptyJournal) {
    EXPECT_EQ(classify({}), Outcome::CleanEnd);
    const ScanResult scan = scanRecords({});
    EXPECT_TRUE(scan.payloads.empty());
}

TEST(RecordFuzz, EveryTruncationIsTornOrClean_NeverCorrupt) {
    net::Rng rng{0xF00D};
    for (int round = 0; round < 8; ++round) {
        std::vector<std::size_t> boundaries;
        const auto journal =
            randomJournal(rng, 1 + static_cast<int>(rng.uniformInt(20)),
                          &boundaries);
        for (std::size_t cut = 0; cut <= journal.size(); ++cut) {
            const Outcome outcome =
                classify(std::span{journal}.first(cut));
            ASSERT_NE(outcome, Outcome::Corrupt)
                << "round " << round << " cut " << cut;
            const bool onBoundary =
                cut == 0 || std::ranges::find(boundaries, cut) !=
                                boundaries.end();
            ASSERT_EQ(outcome,
                      onBoundary ? Outcome::CleanEnd : Outcome::TornTail)
                << "round " << round << " cut " << cut;
        }
    }
}

TEST(RecordFuzz, EverySingleBitFlipIsCorrupt_NeverAccepted) {
    net::Rng rng{0xBEEF};
    const auto journal = randomJournal(rng, 12, nullptr);
    std::vector<std::byte> mutant = journal;
    for (std::size_t byteIdx = 0; byteIdx < journal.size(); ++byteIdx) {
        for (int bit = 0; bit < 8; ++bit) {
            mutant[byteIdx] ^= static_cast<std::byte>(1 << bit);
            ASSERT_EQ(classify(mutant), Outcome::Corrupt)
                << "flip at byte " << byteIdx << " bit " << bit;
            mutant[byteIdx] ^= static_cast<std::byte>(1 << bit);
        }
    }
    EXPECT_EQ(mutant, journal); // flips were all undone
}

TEST(RecordFuzz, TruncateThenFlipNeverCrashesAndNeverReadsClean) {
    net::Rng rng{0xCAFE};
    const auto journal = randomJournal(rng, 16, nullptr);
    for (int trial = 0; trial < 4000; ++trial) {
        // Cut strictly inside the journal, then flip a random bit of the
        // retained prefix: result must be torn (flip hit the torn
        // region) or corrupt (flip hit an intact record) — never a clean
        // full read, never a crash.
        const std::size_t cut =
            1 + rng.uniformInt(journal.size() - 1);
        std::vector<std::byte> mutant{journal.begin(),
                                      journal.begin() +
                                          static_cast<std::ptrdiff_t>(cut)};
        const std::size_t byteIdx = rng.uniformInt(cut);
        mutant[byteIdx] ^=
            static_cast<std::byte>(1ULL << rng.uniformInt(8));
        const Outcome outcome = classify(mutant);
        ASSERT_TRUE(outcome == Outcome::TornTail ||
                    outcome == Outcome::Corrupt)
            << "trial " << trial << " cut " << cut << " byte " << byteIdx;
    }
}

TEST(RecordFuzz, RandomGarbageNeverCrashes) {
    net::Rng rng{0xD1CE};
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::byte> garbage(rng.uniformInt(200));
        for (std::byte& b : garbage) {
            b = static_cast<std::byte>(rng.uniformInt(256));
        }
        (void)classify(garbage); // any classification is fine; no crash
    }
}

TEST(RecordFuzz, DuplicatedRecordsStillScanStructurally) {
    // Record framing is content-agnostic: a spliced duplicate is a valid
    // *stream* (semantic rejection is the journal layer's job — see
    // JournalReplay tests).
    net::Rng rng{0xAB1E};
    std::vector<std::size_t> boundaries;
    const auto journal = randomJournal(rng, 6, &boundaries);
    const ScanResult base = scanRecords(journal);

    // Duplicate record 2 (bytes [b1, b2)) after record 4.
    std::vector<std::byte> spliced;
    const auto at = [&](std::size_t i) {
        return journal.begin() + static_cast<std::ptrdiff_t>(i);
    };
    spliced.insert(spliced.end(), journal.begin(), at(boundaries[4]));
    spliced.insert(spliced.end(), at(boundaries[1]), at(boundaries[2]));
    spliced.insert(spliced.end(), at(boundaries[4]), journal.end());

    const ScanResult scan = scanRecords(spliced);
    EXPECT_EQ(scan.tail, TailStatus::Clean);
    ASSERT_EQ(scan.payloads.size(), base.payloads.size() + 1);
}

} // namespace
} // namespace aio::persist
