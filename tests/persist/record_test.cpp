#include "persist/record.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string_view>
#include <vector>

#include "netbase/error.hpp"

namespace aio::persist {
namespace {

std::vector<std::byte> bytesOf(std::string_view text) {
    std::vector<std::byte> out(text.size());
    if (!text.empty()) {
        std::memcpy(out.data(), text.data(), text.size());
    }
    return out;
}

std::string textOf(std::span<const std::byte> bytes) {
    if (bytes.empty()) {
        return {};
    }
    return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

TEST(RecordCodec, RoundTripsPayloadsInOrder) {
    MemorySink sink;
    RecordWriter writer{sink};
    EXPECT_EQ(writer.append(bytesOf("alpha")), 0U);
    EXPECT_EQ(writer.append(bytesOf("")), 1U);
    EXPECT_EQ(writer.append(bytesOf("gamma gamma gamma")), 2U);
    EXPECT_EQ(writer.recordCount(), 3U);
    EXPECT_EQ(writer.bytesWritten(), sink.size());

    const ScanResult scan = scanRecords(sink.bytes());
    ASSERT_EQ(scan.payloads.size(), 3U);
    EXPECT_EQ(textOf(scan.payloads[0]), "alpha");
    EXPECT_EQ(textOf(scan.payloads[1]), "");
    EXPECT_EQ(textOf(scan.payloads[2]), "gamma gamma gamma");
    EXPECT_EQ(scan.tail, TailStatus::Clean);
    ASSERT_EQ(scan.boundaries.size(), 3U);
    EXPECT_EQ(scan.boundaries.back(), sink.size());
}

TEST(RecordCodec, EmptyJournalIsCleanAndEmpty) {
    const ScanResult scan = scanRecords({});
    EXPECT_TRUE(scan.payloads.empty());
    EXPECT_EQ(scan.tail, TailStatus::Clean);
}

TEST(RecordCodec, EveryTruncationClassifiesAsTornOrShorterJournal) {
    MemorySink sink;
    RecordWriter writer{sink};
    (void)writer.append(bytesOf("first record"));
    (void)writer.append(bytesOf("second"));
    (void)writer.append(bytesOf("third record payload"));
    const ScanResult full = scanRecords(sink.bytes());

    for (std::size_t cut = 0; cut <= sink.size(); ++cut) {
        const ScanResult scan = scanRecords(sink.bytes().first(cut));
        const bool onBoundary =
            cut == 0 || std::ranges::find(full.boundaries, cut) !=
                            full.boundaries.end();
        if (onBoundary) {
            EXPECT_EQ(scan.tail, TailStatus::Clean) << "cut at " << cut;
        } else {
            EXPECT_EQ(scan.tail, TailStatus::Torn) << "cut at " << cut;
        }
        // Intact prefix records are always recovered.
        for (std::size_t i = 0; i < scan.payloads.size(); ++i) {
            EXPECT_EQ(textOf(scan.payloads[i]), textOf(full.payloads[i]));
        }
    }
}

TEST(RecordCodec, PayloadBitFlipThrowsCorruption) {
    MemorySink sink;
    RecordWriter writer{sink};
    (void)writer.append(bytesOf("stable payload bytes"));
    (void)writer.append(bytesOf("another record"));

    std::vector<std::byte> damaged{sink.bytes().begin(),
                                   sink.bytes().end()};
    damaged[14] ^= std::byte{0x20}; // inside the first payload
    EXPECT_THROW((void)scanRecords(damaged), net::CorruptionError);
}

TEST(RecordCodec, LengthFieldBitFlipThrowsCorruptionNotRunaway) {
    MemorySink sink;
    RecordWriter writer{sink};
    (void)writer.append(bytesOf("record one"));
    (void)writer.append(bytesOf("record two"));

    std::vector<std::byte> damaged{sink.bytes().begin(),
                                   sink.bytes().end()};
    // Flip the high bit of the first record's length field: without the
    // dedicated length CRC this would read as a ~2 GB record and
    // misclassify the whole journal as a torn tail.
    damaged[3] ^= std::byte{0x80};
    EXPECT_THROW((void)scanRecords(damaged), net::CorruptionError);
}

TEST(RecordCodec, CrcFieldBitFlipThrowsCorruption) {
    MemorySink sink;
    RecordWriter writer{sink};
    (void)writer.append(bytesOf("payload"));
    std::vector<std::byte> damaged{sink.bytes().begin(),
                                   sink.bytes().end()};
    damaged[8] ^= std::byte{0x01}; // payload CRC field
    EXPECT_THROW((void)scanRecords(damaged), net::CorruptionError);
}

TEST(CrashingSink, AcceptsUntilBudgetThenTearsAndThrows) {
    MemorySink inner;
    CrashingSink sink{inner, 10};
    RecordWriter writer{sink};
    // Header (12 bytes) alone exceeds the 10-byte budget: the append
    // lands a 10-byte prefix and throws.
    EXPECT_THROW((void)writer.append(bytesOf("payload")), SinkFailure);
    EXPECT_EQ(inner.size(), 10U);
    EXPECT_EQ(sink.accepted(), 10U);
    const ScanResult scan = scanRecords(inner.bytes());
    EXPECT_TRUE(scan.payloads.empty());
    EXPECT_EQ(scan.tail, TailStatus::Torn);
}

TEST(CrashingSink, ExactFitDoesNotThrowUntilNextAppend) {
    MemorySink inner;
    CrashingSink sink{inner, 12 + 5};
    RecordWriter writer{sink};
    EXPECT_NO_THROW((void)writer.append(bytesOf("12345")));
    EXPECT_THROW((void)writer.append(bytesOf("x")), SinkFailure);
    // The first record survived intact; the second never started.
    const ScanResult scan = scanRecords(inner.bytes());
    ASSERT_EQ(scan.payloads.size(), 1U);
    EXPECT_EQ(textOf(scan.payloads[0]), "12345");
    EXPECT_EQ(scan.tail, TailStatus::Clean);
}

TEST(CrashingSink, SinkFailureIsNotCorruption) {
    // The two failure modes must stay distinguishable: a dying sink is
    // retryable-after-restart, corrupt bytes are not.
    const SinkFailure failure{"x"};
    EXPECT_EQ(dynamic_cast<const net::CorruptionError*>(
                  static_cast<const net::AioError*>(&failure)),
              nullptr);
}

} // namespace
} // namespace aio::persist
