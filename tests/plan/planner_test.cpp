#include "plan/planner.hpp"

#include <gtest/gtest.h>

#include "netbase/error.hpp"
#include "plan_test_util.hpp"

// CampaignPlanner contract: compilation is a pure function of
// (substrate seed/topology, question) — byte-identical across repeats,
// rebuilds and worker-pool thread counts; validation failures are typed;
// a warm oracle cache changes the quoted cost, never the answer; and the
// budget scheduler's drops are deterministic and budget-respecting.
namespace aio::plan {
namespace {

using testutil::contentQuestion;
using testutil::detourQuestion;
using testutil::ixpQuestion;
using testutil::makeWorld;
using testutil::outageQuestion;
using testutil::someCables;

TEST(CampaignPlanner, CompileIsByteIdenticalAcrossRepeatsAndRebuilds) {
    const auto world = makeWorld(11);
    const CampaignPlanner planner{*world->substrate};
    const MeasurementQuestion question = contentQuestion();

    const CampaignPlan first = planner.compile(question).valueOrRaise();
    const CampaignPlan second = planner.compile(question).valueOrRaise();
    EXPECT_EQ(first, second);
    EXPECT_EQ(first.digest(), second.digest());
    EXPECT_FALSE(first.tasks.empty());

    // A separately generated world with the same seed compiles the same
    // plan bytes — nothing leaks in from process state.
    const auto rebuilt = makeWorld(11);
    const CampaignPlanner other{*rebuilt->substrate};
    EXPECT_EQ(other.compile(question).valueOrRaise().digest(),
              first.digest());
}

TEST(CampaignPlanner, PlanAndReportAreIdenticalAcrossPoolThreadCounts) {
    const MeasurementQuestion question =
        outageQuestion(someCables(*makeWorld(11)->substrate, 2));

    std::optional<std::uint64_t> expectedDigest;
    std::optional<CampaignReport> expectedReport;
    for (const int threads : {1, 2, 8}) {
        const auto world = makeWorld(11, false, threads);
        const CampaignPlanner planner{*world->substrate};
        const CampaignPlan plan = planner.compile(question).valueOrRaise();
        const CampaignReport report = planner.execute(plan);
        if (!expectedDigest) {
            expectedDigest = plan.digest();
            expectedReport = report;
            continue;
        }
        EXPECT_EQ(plan.digest(), *expectedDigest)
            << "thread count " << threads << " changed the plan bytes";
        EXPECT_EQ(report, *expectedReport)
            << "thread count " << threads << " changed the answer";
    }
}

TEST(CampaignPlanner, ValidationFailuresAreTyped) {
    const auto world = makeWorld(11);
    const CampaignPlanner planner{*world->substrate};

    MeasurementQuestion unknown = contentQuestion({"ZZ"});
    const auto notFound = planner.compile(unknown);
    ASSERT_FALSE(notFound.hasValue());
    EXPECT_EQ(notFound.error().kind, net::Error::Kind::NotFound);

    MeasurementQuestion nonAfrican = contentQuestion({"US"});
    const auto precondition = planner.compile(nonAfrican);
    ASSERT_FALSE(precondition.hasValue());
    EXPECT_EQ(precondition.error().kind, net::Error::Kind::Precondition);

    MeasurementQuestion unnamed = contentQuestion();
    unnamed.name.clear();
    EXPECT_FALSE(planner.compile(unnamed).hasValue());

    MeasurementQuestion broke = contentQuestion();
    broke.budgetUsd = 0.0;
    EXPECT_FALSE(planner.compile(broke).hasValue());

    MeasurementQuestion ghostCable = outageQuestion({"no-such-cable"});
    const auto ghost = planner.compile(ghostCable);
    ASSERT_FALSE(ghost.hasValue());
    EXPECT_EQ(ghost.error().kind, net::Error::Kind::NotFound);

    MeasurementQuestion noCorridor = outageQuestion({});
    EXPECT_FALSE(planner.compile(noCorridor).hasValue());
}

TEST(CampaignPlanner, WarmCacheCutsTheQuoteWithoutChangingTheAnswer) {
    const auto world = makeWorld(11, /*withCache=*/true);
    const CampaignPlanner planner{*world->substrate};
    const MeasurementQuestion question =
        outageQuestion(someCables(*world->substrate, 2));

    const CampaignPlan cold = planner.compile(question).valueOrRaise();
    EXPECT_EQ(cold.estimate.prunedTasks, 0u);

    // Executing runs every scenario through the sweep engine, which
    // seeds the shared oracle cache with the degraded routing states.
    const CampaignReport coldReport = planner.execute(cold);

    const CampaignPlan warm = planner.compile(question).valueOrRaise();
    EXPECT_GT(warm.estimate.prunedTasks, 0u);
    EXPECT_LT(warm.estimate.wireMb, cold.estimate.wireMb);
    EXPECT_LE(warm.estimate.costUsd, cold.estimate.costUsd);

    // Cache temperature is a cost concern, never an answer concern.
    const CampaignReport warmReport = planner.execute(warm);
    EXPECT_EQ(warmReport.answer, coldReport.answer);
    EXPECT_LT(warmReport.actualWireMb, coldReport.actualWireMb);
    EXPECT_TRUE(warmReport.withinBound);
}

TEST(CampaignPlanner, BudgetDropsTasksDeterministicallyAndRespectsCap) {
    const auto world = makeWorld(11);
    const CampaignPlanner planner{*world->substrate};

    MeasurementQuestion roomy = contentQuestion();
    const CampaignPlan full = planner.compile(roomy).valueOrRaise();
    ASSERT_GT(full.tasks.size(), 2u);
    EXPECT_TRUE(full.dropped.empty());

    // Price the budget at roughly half the full campaign: some tasks
    // must drop, and what remains still fits under the cap.
    MeasurementQuestion tight = roomy;
    tight.budgetUsd = full.estimate.costUsd / 2.0;
    const CampaignPlan squeezed = planner.compile(tight).valueOrRaise();
    EXPECT_FALSE(squeezed.dropped.empty());
    EXPECT_LT(squeezed.tasks.size(), full.tasks.size());
    EXPECT_EQ(squeezed.tasks.size() + squeezed.dropped.size(),
              full.tasks.size());
    EXPECT_LE(squeezed.estimate.costUsd, tight.budgetUsd + 1e-9);

    EXPECT_EQ(squeezed.digest(),
              planner.compile(tight).valueOrRaise().digest());

    // Coverage honestly reports the shrinkage.
    EXPECT_LT(squeezed.estimate.coverage.countriesPlanned,
              squeezed.estimate.coverage.countriesRequested);
    EXPECT_LT(squeezed.estimate.coverage.countryShare(), 1.0);
}

TEST(CampaignPlanner, EveryQuestionKindCompilesAndAnswers) {
    const auto world = makeWorld(11);
    const CampaignPlanner planner{*world->substrate};
    const std::vector<MeasurementQuestion> questions{
        contentQuestion(), detourQuestion(),
        outageQuestion(someCables(*world->substrate, 2)), ixpQuestion()};

    for (const MeasurementQuestion& question : questions) {
        const CampaignPlan plan = planner.compile(question).valueOrRaise();
        EXPECT_FALSE(plan.tasks.empty()) << question.name;
        EXPECT_GT(plan.estimate.wireMb, 0.0) << question.name;
        EXPECT_GT(plan.estimate.costUsd, 0.0) << question.name;
        EXPECT_GE(plan.estimate.coverage.countryShare(), 0.0)
            << question.name;

        const CampaignReport report = planner.execute(plan);
        EXPECT_FALSE(report.answer.rows.empty()) << question.name;
        EXPECT_GE(report.answer.overall, 0.0) << question.name;
        EXPECT_LE(report.answer.overall, 1.0) << question.name;
        EXPECT_EQ(report.tasksRun, plan.tasks.size()) << question.name;
    }
}

} // namespace
} // namespace aio::plan
