#include <gtest/gtest.h>

#include "plan/planner.hpp"
#include "plan_test_util.hpp"

// The planner's headline promise, differentially: for every (world seed,
// question kind) cell the pre-execution estimate brackets the actual
// billed wire cost — actuals land in [wireMb, maxWireMb] — and execution
// is a pure function of the plan (re-running reproduces the report
// byte-for-byte).
namespace aio::plan {
namespace {

using testutil::contentQuestion;
using testutil::detourQuestion;
using testutil::ixpQuestion;
using testutil::makeWorld;
using testutil::outageQuestion;
using testutil::someCables;

TEST(EstimateAccuracy, ActualsLandInsideTheQuotedBoundOnAGrid) {
    for (const std::uint64_t seed : {11u, 23u}) {
        const auto world = makeWorld(seed);
        const CampaignPlanner planner{*world->substrate};
        const std::vector<MeasurementQuestion> questions{
            contentQuestion(), detourQuestion(),
            outageQuestion(someCables(*world->substrate, 2)),
            ixpQuestion()};

        for (const MeasurementQuestion& question : questions) {
            const CampaignPlan plan =
                planner.compile(question).valueOrRaise();
            const CampaignReport report = planner.execute(plan);

            EXPECT_TRUE(report.withinBound)
                << "seed " << seed << ", " << question.name;
            EXPECT_GE(report.actualWireMb,
                      plan.estimate.wireMb * (1.0 - 1e-9))
                << "seed " << seed << ", " << question.name;
            EXPECT_LE(report.actualWireMb,
                      plan.estimate.maxWireMb * (1.0 + 1e-9))
                << "seed " << seed << ", " << question.name;
            // The quoted dollars are a floor: actuals add only bounded
            // retransmission jitter on top.
            EXPECT_GE(report.actualCostUsd,
                      plan.estimate.costUsd * (1.0 - 1e-9))
                << "seed " << seed << ", " << question.name;
            EXPECT_GE(report.estimateErrorShare, -1e-9)
                << "seed " << seed << ", " << question.name;
            EXPECT_LE(report.estimateErrorShare,
                      planner.config().retransJitterMax + 1e-9)
                << "seed " << seed << ", " << question.name;

            // Execution is deterministic: the differential re-run.
            EXPECT_EQ(planner.execute(plan), report)
                << "seed " << seed << ", " << question.name;
        }
    }
}

TEST(EstimateAccuracy, ZeroJitterMakesTheEstimateExact) {
    const auto world = makeWorld(11);
    PlannerConfig config;
    config.retransJitterMax = 0.0;
    const CampaignPlanner planner{*world->substrate, config};

    const CampaignPlan plan =
        planner.compile(contentQuestion()).valueOrRaise();
    const CampaignReport report = planner.execute(plan);
    EXPECT_TRUE(report.withinBound);
    EXPECT_NEAR(report.actualWireMb, plan.estimate.wireMb,
                plan.estimate.wireMb * 1e-12);
    EXPECT_NEAR(report.actualCostUsd, plan.estimate.costUsd,
                plan.estimate.costUsd * 1e-12 + 1e-15);
    EXPECT_NEAR(report.estimateErrorShare, 0.0, 1e-12);
}

TEST(EstimateAccuracy, AnEmptyPlanIsTriviallyWithinBound) {
    const auto world = makeWorld(11);
    const CampaignPlanner planner{*world->substrate};

    MeasurementQuestion question = contentQuestion();
    question.budgetUsd = 1e-12; // nothing fits
    const CampaignPlan plan = planner.compile(question).valueOrRaise();
    EXPECT_TRUE(plan.tasks.empty());
    EXPECT_EQ(plan.estimate.wireMb, 0.0);
    EXPECT_EQ(plan.estimate.coverage.countriesPlanned, 0u);

    const CampaignReport report = planner.execute(plan);
    EXPECT_TRUE(report.withinBound);
    EXPECT_EQ(report.actualWireMb, 0.0);
    EXPECT_EQ(report.tasksRun, 0u);
}

} // namespace
} // namespace aio::plan
