#include "plan/textio.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netbase/rng.hpp"

// The serialization front end's two contracts: parse(render(x)) == x
// bit-for-bit for every representable value (property + randomized
// rounds), and every failure — parse or render — is a typed Parse error
// carrying line/field context, never a crash (fuzz corpus).
namespace aio::plan {
namespace {

using scenario::BuildoutTemplate;
using scenario::CascadeTemplate;
using scenario::PhaseSpec;
using scenario::SampledTemplate;
using scenario::ScenarioCatalog;

[[nodiscard]] MeasurementQuestion sampleQuestion(net::Rng& rng) {
    static const std::vector<std::string> names{
        "content locality of top-100 sites",
        "detour rate for landlocked countries",
        "outage exposure of corridor X", "q#7 (with punctuation)"};
    static const std::vector<std::string> countries{"NG", "KE", "ZA", "RW",
                                                    "SN", "ET"};
    static const std::vector<std::string> cables{
        "WACS", "2Africa", "Equiano", "cable with spaces"};

    MeasurementQuestion question;
    question.name = rng.pick(names);
    question.kind = static_cast<QuestionKind>(
        static_cast<int>(rng.uniform01() * 3.999));
    for (const std::string& country : countries) {
        if (rng.uniform01() < 0.4) {
            question.countries.push_back(country);
        }
    }
    question.landlockedOnly = rng.uniform01() < 0.5;
    question.topSites = 1 + static_cast<int>(rng.uniform01() * 500.0);
    question.samplePairs =
        1 + static_cast<std::size_t>(rng.uniform01() * 4096.0);
    for (const std::string& cable : cables) {
        if (rng.uniform01() < 0.5) {
            question.corridor.push_back(cable);
        }
    }
    // Awkward doubles on purpose: round-tripping must be bit-exact even
    // for values with no short decimal form.
    question.repairDays = rng.uniform01() * 90.0 + 1e-9;
    question.budgetUsd = rng.uniform01() * 1e6 + 1e-7;
    return question;
}

[[nodiscard]] ScenarioCatalog sampleCatalog(net::Rng& rng) {
    ScenarioCatalog catalog;
    const int cascades = 1 + static_cast<int>(rng.uniform01() * 2.0);
    for (int c = 0; c < cascades; ++c) {
        CascadeTemplate cascade;
        cascade.name = "cascade " + std::to_string(c);
        cascade.cumulativeCuts = rng.uniform01() < 0.5;
        cascade.weight = rng.uniform01() * 3.0 + 0.1;
        const int phases = 1 + static_cast<int>(rng.uniform01() * 3.0);
        for (int p = 0; p < phases; ++p) {
            PhaseSpec phase;
            phase.name = "phase " + std::to_string(p);
            phase.type = static_cast<outage::OutageType>(
                static_cast<int>(rng.uniform01() * 3.999));
            if (rng.uniform01() < 0.7) {
                phase.cutCables = {"WACS", "cable with spaces"};
            }
            if (rng.uniform01() < 0.5) {
                phase.countries = {"NG", "GH"};
            }
            phase.startDay = rng.uniform01() * 30.0;
            phase.durationDays = rng.uniform01() * 40.0 + 0.5;
            cascade.phases.push_back(std::move(phase));
        }
        catalog.add(std::move(cascade));
    }

    BuildoutTemplate buildout;
    buildout.name = "buildout (double landing)";
    buildout.repairDays = rng.uniform01() * 30.0 + 1.0;
    buildout.weight = rng.uniform01() + 0.5;
    buildout.stressCuts = {"SAT-3"};
    phys::SubseaCable cable;
    cable.name = "hypothetical east-coast express";
    cable.corridor = static_cast<phys::CorridorId>(rng.uniform01() * 9.0);
    cable.readyForService = 2026;
    cable.capacityTbps = rng.uniform01() * 200.0 + 1.0;
    cable.landings.push_back(
        {"KE", {rng.uniform01() * 10.0 - 5.0, rng.uniform01() * 80.0}});
    cable.landings.push_back(
        {"ZA", {-rng.uniform01() * 35.0, rng.uniform01() * 40.0}});
    buildout.cablesAdded.push_back(std::move(cable));
    catalog.add(std::move(buildout));

    SampledTemplate sampled;
    sampled.name = "monte carlo block";
    sampled.config.seed =
        static_cast<std::uint64_t>(rng.uniform01() * 1e9);
    sampled.config.count =
        1 + static_cast<std::size_t>(rng.uniform01() * 5000.0);
    sampled.config.importanceBoost = 1.0 + rng.uniform01() * 4.0;
    sampled.config.repairMeanDays = rng.uniform01() * 40.0 + 3.0;
    sampled.config.repairFloorDays = rng.uniform01() * 3.0 + 0.1;
    sampled.config.correlation.sameCorridorProb = rng.uniform01() * 0.9;
    sampled.config.correlation.sharedLandingProb = rng.uniform01() * 0.2;
    sampled.config.correlation.maxProb = 0.9 + rng.uniform01() * 0.09;
    catalog.add(std::move(sampled));
    return catalog;
}

TEST(TextioProperty, QuestionRoundTripsBitForBit) {
    net::Rng rng{2025};
    for (int round = 0; round < 200; ++round) {
        const MeasurementQuestion question = sampleQuestion(rng);
        const auto text = renderQuestion(question);
        ASSERT_TRUE(text.hasValue());
        const auto back = parseQuestion(*text);
        ASSERT_TRUE(back.hasValue()) << *text << "\n"
                                     << back.error().message;
        EXPECT_EQ(*back, question) << *text;
        // Rendering the parsed value reproduces the text itself —
        // render is canonical.
        EXPECT_EQ(renderQuestion(*back).valueOrRaise(), *text);
    }
}

TEST(TextioProperty, CatalogRoundTripsBitForBit) {
    net::Rng rng{4242};
    for (int round = 0; round < 60; ++round) {
        const ScenarioCatalog catalog = sampleCatalog(rng);
        const auto text = renderCatalog(catalog);
        ASSERT_TRUE(text.hasValue());
        const auto back = parseCatalog(*text);
        ASSERT_TRUE(back.hasValue()) << *text << "\n"
                                     << back.error().message;
        EXPECT_EQ(*back, catalog) << *text;
        EXPECT_EQ(renderCatalog(*back).valueOrRaise(), *text);
    }
}

TEST(TextioProperty, CommentsAndBlankLinesAreInsignificant) {
    const auto parsed = parseQuestion("# leading comment\n\n"
                                      "question q\n"
                                      "   # indented comment\n"
                                      "kind detour-rate\n"
                                      "\t\n"
                                      "country NG\n"
                                      "end\n");
    ASSERT_TRUE(parsed.hasValue());
    EXPECT_EQ((*parsed).kind, QuestionKind::DetourRate);
    EXPECT_EQ((*parsed).countries, std::vector<std::string>{"NG"});
}

TEST(TextioProperty, ParseErrorsCarryLineAndFieldContext) {
    const auto badInt =
        parseQuestion("question q\ntop-sites ten\nend\n");
    ASSERT_FALSE(badInt.hasValue());
    EXPECT_EQ(badInt.error().kind, net::Error::Kind::Parse);
    EXPECT_NE(badInt.error().message.find("line 2"), std::string::npos)
        << badInt.error().message;
    EXPECT_NE(badInt.error().message.find("top-sites"), std::string::npos);

    const auto unknownField =
        parseQuestion("question q\nfrobnicate 3\nend\n");
    ASSERT_FALSE(unknownField.hasValue());
    EXPECT_NE(unknownField.error().message.find("frobnicate"),
              std::string::npos);

    const auto unterminated = parseQuestion("question q\nkind ixp-coverage");
    ASSERT_FALSE(unterminated.hasValue());
    EXPECT_NE(unterminated.error().message.find("unterminated"),
              std::string::npos);

    const auto trailing = parseQuestion("question q\nend\nquestion r\nend");
    ASSERT_FALSE(trailing.hasValue());
    EXPECT_NE(trailing.error().message.find("trailing"),
              std::string::npos);

    const auto empty = parseQuestion("  \n# only a comment\n");
    ASSERT_FALSE(empty.hasValue());
    EXPECT_EQ(empty.error().kind, net::Error::Kind::Parse);

    const auto badPhase = parseCatalog(
        "catalog\ncascade c\nphase p\ntype earthquake\nend\nend\nend\n");
    ASSERT_FALSE(badPhase.hasValue());
    EXPECT_NE(badPhase.error().message.find("earthquake"),
              std::string::npos);
    EXPECT_NE(badPhase.error().message.find("line 4"), std::string::npos);
}

TEST(TextioProperty, RenderRefusesUnrepresentableValues) {
    MeasurementQuestion padded;
    padded.name = " padded ";
    const auto paddedResult = renderQuestion(padded);
    ASSERT_FALSE(paddedResult.hasValue());
    EXPECT_EQ(paddedResult.error().kind, net::Error::Kind::Parse);

    MeasurementQuestion multiline;
    multiline.name = "two\nlines";
    EXPECT_FALSE(renderQuestion(multiline).hasValue());

    ScenarioCatalog catalog;
    BuildoutTemplate buildout;
    buildout.name = "mandated localization";
    buildout.dnsOverride = dns::DnsConfig::defaults();
    catalog.add(buildout);
    const auto overridden = renderCatalog(catalog);
    ASSERT_FALSE(overridden.hasValue());
    EXPECT_NE(overridden.error().message.find("mandated localization"),
              std::string::npos)
        << overridden.error().message;
}

// Fuzz corpus: truncations at every byte boundary plus seeded byte
// flips. Parsing must always return a value or a typed error — the
// ASan/UBSan CI lane runs exactly this test by name.
TEST(TextioFuzz, MalformedInputsAlwaysYieldTypedErrors) {
    net::Rng rng{777};
    const MeasurementQuestion question = sampleQuestion(rng);
    const ScenarioCatalog catalog = sampleCatalog(rng);
    const std::string questionText =
        renderQuestion(question).valueOrRaise();
    const std::string catalogText = renderCatalog(catalog).valueOrRaise();

    const auto probeQuestion = [](const std::string& text) {
        const auto result = parseQuestion(text);
        if (!result.hasValue()) {
            EXPECT_EQ(result.error().kind, net::Error::Kind::Parse);
            EXPECT_FALSE(result.error().message.empty());
        }
    };
    const auto probeCatalog = [](const std::string& text) {
        const auto result = parseCatalog(text);
        if (!result.hasValue()) {
            EXPECT_EQ(result.error().kind, net::Error::Kind::Parse);
            EXPECT_FALSE(result.error().message.empty());
        }
    };

    for (std::size_t cut = 0; cut <= questionText.size(); ++cut) {
        probeQuestion(questionText.substr(0, cut));
    }
    for (std::size_t cut = 0; cut <= catalogText.size(); ++cut) {
        probeCatalog(catalogText.substr(0, cut));
    }
    for (int round = 0; round < 300; ++round) {
        std::string mutated =
            rng.uniform01() < 0.5 ? questionText : catalogText;
        const std::size_t flips =
            1 + static_cast<std::size_t>(rng.uniform01() * 4.0);
        for (std::size_t f = 0; f < flips; ++f) {
            const auto at = static_cast<std::size_t>(
                rng.uniform01() * static_cast<double>(mutated.size()));
            mutated[std::min(at, mutated.size() - 1)] =
                static_cast<char>(rng.uniform01() * 127.0);
        }
        probeQuestion(mutated);
        probeCatalog(mutated);
    }
}

} // namespace
} // namespace aio::plan
