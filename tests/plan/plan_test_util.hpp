#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "content/catalog.hpp"
#include "core/substrate.hpp"
#include "dns/resolver.hpp"
#include "exec/worker_pool.hpp"
#include "phys/cable.hpp"
#include "plan/planner.hpp"
#include "plan/question.hpp"
#include "routing/oracle_cache.hpp"
#include "topo/generator.hpp"

namespace aio::plan::testutil {

/// A test-sized world (the service suite's tinyConfig shape): snapshots
/// and substrates build in milliseconds, and a fixed seed gives a fixed
/// topology, so plan digests are stable across runs.
inline topo::GeneratorConfig tinyConfig(std::uint64_t seed) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    for (auto& profile : config.africa) {
        profile.asPerMillionPeople *= 0.4;
        profile.minAsesPerCountry = 1;
        profile.ixpCount = std::max(1, profile.ixpCount / 2);
    }
    config.europe.accessPerCountry = 2;
    config.northAmerica.accessPerCountry = 2;
    config.southAmerica.accessPerCountry = 2;
    config.asiaPacific.accessPerCountry = 2;
    return config;
}

/// Topology + optional accelerators + the Substrate borrowing them, with
/// stable addresses (heap-held via makeWorld) so the borrows outlive any
/// moves of the handle.
struct World {
    explicit World(std::uint64_t seed)
        : topology(topo::TopologyGenerator{tinyConfig(seed)}.generate()) {}

    topo::Topology topology;
    std::optional<exec::WorkerPool> pool;
    std::optional<route::OracleCache> cache;
    std::optional<core::Substrate> substrate;
};

inline std::unique_ptr<World> makeWorld(std::uint64_t seed = 11,
                                        bool withCache = false,
                                        int poolThreads = 0) {
    auto world = std::make_unique<World>(seed);
    core::Substrate::Options options;
    if (poolThreads > 0) {
        world->pool.emplace(poolThreads);
        options.pool = &*world->pool;
    }
    if (withCache) {
        world->cache.emplace(world->topology, 16, options.pool);
        options.oracleCache = &*world->cache;
    }
    world->substrate.emplace(
        world->topology, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults(),
        options);
    return world;
}

/// First `count` cable names of the substrate's registry — a corridor
/// that resolves by construction.
inline std::vector<std::string> someCables(const core::Substrate& substrate,
                                           std::size_t count) {
    std::vector<std::string> names;
    for (std::size_t id = 0;
         id < count && id < substrate.registry().cableCount(); ++id) {
        names.push_back(substrate.registry().cable(id).name);
    }
    return names;
}

inline MeasurementQuestion contentQuestion(
    std::vector<std::string> countries = {}) {
    MeasurementQuestion question;
    question.name = "content locality of top sites";
    question.kind = QuestionKind::ContentLocality;
    question.countries = std::move(countries);
    question.topSites = 20;
    question.budgetUsd = 50.0;
    return question;
}

inline MeasurementQuestion detourQuestion() {
    MeasurementQuestion question;
    question.name = "detour rate of landlocked countries";
    question.kind = QuestionKind::DetourRate;
    question.landlockedOnly = true;
    question.samplePairs = 16;
    question.budgetUsd = 50.0;
    return question;
}

inline MeasurementQuestion
outageQuestion(std::vector<std::string> corridor) {
    MeasurementQuestion question;
    question.name = "outage exposure of corridor";
    question.kind = QuestionKind::OutageExposure;
    question.corridor = std::move(corridor);
    question.repairDays = 14.0;
    question.budgetUsd = 50.0;
    return question;
}

inline MeasurementQuestion ixpQuestion() {
    MeasurementQuestion question;
    question.name = "ixp coverage of eyeball vantages";
    question.kind = QuestionKind::IxpCoverage;
    question.budgetUsd = 50.0;
    return question;
}

} // namespace aio::plan::testutil
