#include "core/audit.hpp"

#include <gtest/gtest.h>

#include "netbase/error.hpp"
#include "topo/generator.hpp"

namespace aio::core {
namespace {

struct World {
    topo::Topology topo;
    phys::CableRegistry registry;
    dns::ResolverEcosystem resolvers;
    content::ContentCatalog catalog;
    PolicyAuditor auditor;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          registry(phys::CableRegistry::africanDefaults()),
          resolvers(topo, dns::DnsConfig::defaults(), 31),
          catalog(topo, content::ContentConfig::defaults(), 47),
          auditor(topo, registry, resolvers, catalog) {}
};

World& world() {
    static World w;
    return w;
}

TEST(PolicyAuditor, AuditsEveryAfricanCountry) {
    auto& w = world();
    const auto audits = w.auditor.auditAfrica();
    EXPECT_EQ(audits.size(), 54U);
    for (const auto& audit : audits) {
        EXPECT_GE(audit.dnsAfricanShare, 0.0);
        EXPECT_LE(audit.dnsAfricanShare, 1.0);
        EXPECT_GE(audit.dnsLocalShare, 0.0);
        EXPECT_LE(audit.dnsLocalShare, audit.dnsAfricanShare + 1e-9);
        EXPECT_GE(audit.contentLocalShare, 0.0);
        EXPECT_LE(audit.contentLocalShare, 1.0);
        EXPECT_LE(audit.distinctCorridors, audit.internationalCables);
    }
}

TEST(PolicyAuditor, RejectsNonAfricanCountries) {
    auto& w = world();
    EXPECT_THROW(w.auditor.audit("DE"), net::PreconditionError);
    EXPECT_THROW(w.auditor.audit("XX"), net::NotFoundError);
}

TEST(PolicyAuditor, LandlockedCountriesAuditViaGateway) {
    auto& w = world();
    const auto rwanda = w.auditor.audit("RW");
    EXPECT_TRUE(rwanda.landlocked);
    const auto tanzania = w.auditor.audit("TZ");
    // Rwanda's subsea exposure equals its gateway's (Tanzania).
    EXPECT_EQ(rwanda.internationalCables, tanzania.internationalCables);
    EXPECT_EQ(rwanda.distinctCorridors, tanzania.distinctCorridors);
}

TEST(PolicyAuditor, TheDiversityGapExists) {
    // The paper's §5.1 point: some countries pass count-based backup
    // legislation while every cable shares one corridor.
    auto& w = world();
    int gapCountries = 0;
    for (const auto& audit : w.auditor.auditAfrica()) {
        if (audit.cableCountCompliant &&
            !audit.corridorDiversityCompliant) {
            ++gapCountries;
        }
    }
    EXPECT_GT(gapCountries, 0);
}

TEST(PolicyAuditor, SouthernAfricaMostCompliant) {
    auto& w = world();
    const auto summary = w.auditor.regionalSummary();
    double southern = 0.0;
    double western = 0.0;
    for (const auto& row : summary) {
        const double rate =
            row.countries == 0
                ? 0.0
                : static_cast<double>(row.fullyCompliant) / row.countries;
        if (row.region == net::Region::SouthernAfrica) southern = rate;
        if (row.region == net::Region::WesternAfrica) western = rate;
    }
    EXPECT_GE(southern, western);
}

TEST(PolicyAuditor, StricterTargetsShrinkCompliance) {
    auto& w = world();
    PolicyTargets strict;
    strict.minDnsAfricanShare = 0.95;
    strict.minContentLocalShare = 0.8;
    strict.minInternationalCables = 4;
    const PolicyAuditor strictAuditor{w.topo, w.registry, w.resolvers,
                                      w.catalog, strict};
    int lax = 0;
    int strictCount = 0;
    for (const auto& audit : w.auditor.auditAfrica()) {
        lax += audit.fullyCompliant() ? 1 : 0;
    }
    for (const auto& audit : strictAuditor.auditAfrica()) {
        strictCount += audit.fullyCompliant() ? 1 : 0;
    }
    EXPECT_LE(strictCount, lax);
}

TEST(PolicyAuditor, DiversityRequirementCanBeDisabled) {
    auto& w = world();
    PolicyTargets countOnly;
    countOnly.requireCorridorDiversity = false;
    const PolicyAuditor auditor{w.topo, w.registry, w.resolvers, w.catalog,
                                countOnly};
    for (const auto& audit : auditor.auditAfrica()) {
        EXPECT_TRUE(audit.corridorDiversityCompliant);
    }
}

} // namespace
} // namespace aio::core
