#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "core/probe.hpp"
#include "netbase/error.hpp"

namespace aio::core {
namespace {

TEST(ProbeStreamCursor, IssuesMonotonicSequenceNumbers) {
    ProbeStreamCursor cursor;
    EXPECT_EQ(cursor.issue(), 0U);
    EXPECT_EQ(cursor.issue(), 1U);
    EXPECT_EQ(cursor.issue(), 2U);
    EXPECT_EQ(cursor.session, 0U);
}

TEST(ProbeStreamCursor, ReconnectOpensNextSessionAndRestartsSequence) {
    ProbeStreamCursor cursor;
    (void)cursor.issue();
    (void)cursor.issue();
    cursor.reconnect();
    EXPECT_EQ(cursor.session, 1U);
    EXPECT_EQ(cursor.issue(), 0U);
}

TEST(ProbeStreamCursor, RestoreAcceptsForwardPositions) {
    ProbeStreamCursor cursor;
    cursor.restore(0, 5);
    EXPECT_EQ(cursor.nextSeq, 5U);
    cursor.restore(2, 0); // later session may restart sequencing
    EXPECT_EQ(cursor.session, 2U);
    EXPECT_EQ(cursor.nextSeq, 0U);
    cursor.restore(2, 7); // same session, forward sequence
    EXPECT_EQ(cursor.nextSeq, 7U);
}

TEST(ProbeStreamCursor, RestoreRejectsSessionRewind) {
    ProbeStreamCursor cursor;
    cursor.restore(3, 4);
    EXPECT_THROW(cursor.restore(2, 100), net::PreconditionError);
    // The failed restore must not have moved the cursor.
    EXPECT_EQ(cursor.session, 3U);
    EXPECT_EQ(cursor.nextSeq, 4U);
}

TEST(ProbeStreamCursor, RestoreRejectsSequenceRewindWithinSession) {
    ProbeStreamCursor cursor;
    cursor.restore(1, 10);
    EXPECT_THROW(cursor.restore(1, 9), net::PreconditionError);
    EXPECT_EQ(cursor.nextSeq, 10U);
}

TEST(ProbeStreamCursor, ReconnectRefusesSessionWraparound) {
    ProbeStreamCursor cursor;
    cursor.restore(std::numeric_limits<std::uint32_t>::max(), 0);
    EXPECT_THROW(cursor.reconnect(), net::PreconditionError);
}

} // namespace
} // namespace aio::core
