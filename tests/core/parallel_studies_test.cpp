// Concurrency-facing coverage at the study/engine level: the detour and
// IXP-prevalence aggregates must be identical whatever thread count built
// the oracle, and a what-if cable-cut sweep must replay identically
// through a warm scenario cache (with the expected hit/miss accounting).

#include <gtest/gtest.h>

#include <vector>

#include "core/studies.hpp"
#include "core/whatif.hpp"
#include "exec/worker_pool.hpp"
#include "routing/oracle_cache.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::core {
namespace {

const topo::Topology& sharedTopology() {
    static const topo::Topology topo =
        topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
            .generate();
    return topo;
}

void expectSameDetourReport(const DetourReport& a, const DetourReport& b) {
    EXPECT_EQ(a.totalPairs, b.totalPairs);
    EXPECT_EQ(a.overallDetourShare, b.overallDetourShare);
    ASSERT_EQ(a.byRegion.size(), b.byRegion.size());
    for (std::size_t i = 0; i < a.byRegion.size(); ++i) {
        EXPECT_EQ(a.byRegion[i].region, b.byRegion[i].region);
        EXPECT_EQ(a.byRegion[i].pairs, b.byRegion[i].pairs);
        EXPECT_EQ(a.byRegion[i].detourShare, b.byRegion[i].detourShare);
    }
    EXPECT_EQ(a.attribution, b.attribution);
}

void expectSameIxpReport(const IxpPrevalenceReport& a,
                         const IxpPrevalenceReport& b) {
    EXPECT_EQ(a.overallShare, b.overallShare);
    ASSERT_EQ(a.byRegion.size(), b.byRegion.size());
    for (std::size_t i = 0; i < a.byRegion.size(); ++i) {
        EXPECT_EQ(a.byRegion[i].region, b.byRegion[i].region);
        EXPECT_EQ(a.byRegion[i].pairs, b.byRegion[i].pairs);
        EXPECT_EQ(a.byRegion[i].ixpShare, b.byRegion[i].ixpShare);
    }
}

TEST(ParallelStudies, AggregatesInvariantUnderThreadCount) {
    const topo::Topology& topo = sharedTopology();
    const route::PathOracle reference{topo}; // sequential baseline

    for (const int threads : {1, 2, 8}) {
        exec::WorkerPool pool{threads};
        const route::PathOracle oracle{topo, route::LinkFilter{}, pool};
        const ConnectivityStudies refStudies{topo, reference};
        const ConnectivityStudies parStudies{topo, oracle};

        for (const std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
            net::Rng refRng{seed};
            net::Rng parRng{seed};
            expectSameDetourReport(refStudies.detourStudy(1500, refRng),
                                   parStudies.detourStudy(1500, parRng));

            net::Rng refRng2{seed + 100};
            net::Rng parRng2{seed + 100};
            expectSameIxpReport(refStudies.ixpPrevalence(300, refRng2),
                                parStudies.ixpPrevalence(300, parRng2));
        }
    }
}

// ---- what-if scenario cache: golden seed-replay ----

void expectSameImpactReport(const outage::ImpactReport& a,
                            const outage::ImpactReport& b) {
    ASSERT_EQ(a.countries.size(), b.countries.size());
    for (std::size_t i = 0; i < a.countries.size(); ++i) {
        EXPECT_EQ(a.countries[i].country, b.countries[i].country);
        EXPECT_EQ(a.countries[i].pageLoadLoss, b.countries[i].pageLoadLoss);
        EXPECT_EQ(a.countries[i].dnsFailureShare,
                  b.countries[i].dnsFailureShare);
        EXPECT_EQ(a.countries[i].effectiveOutageDays,
                  b.countries[i].effectiveOutageDays);
    }
    EXPECT_EQ(a.resolutionDays(), b.resolutionDays());
}

TEST(WhatIfScenarioCache, ColdAndWarmSweepsReplayIdentically) {
    const topo::Topology& topo = sharedTopology();
    exec::WorkerPool pool;
    route::OracleCache cache{topo, 16, &pool};

    const WhatIfEngine cached{topo, phys::CableRegistry::africanDefaults(),
                              dns::DnsConfig::defaults(),
                              content::ContentConfig::defaults(),
                              phys::LinkMapConfig{}, 99, &cache, &pool};
    // Engine construction fetches the no-failure baseline through the
    // cache: exactly one miss so far.
    EXPECT_EQ(cache.stats().misses, 1U);
    EXPECT_EQ(cache.stats().hits, 0U);

    const std::vector<std::vector<std::string>> sweep = {
        {"WACS"},
        {"WACS", "MainOne"},
        {"WACS", "MainOne", "SAT-3", "ACE"},
        {"SEACOM"},
    };

    const auto runSweep = [&] {
        std::vector<outage::ImpactReport> reports;
        for (const auto& cut : sweep) {
            reports.push_back(cached.assess(cached.makeCutEvent(cut)));
        }
        return reports;
    };

    cache.resetStats();
    const auto cold = runSweep();
    EXPECT_EQ(cache.stats().misses, sweep.size());
    EXPECT_EQ(cache.stats().hits, 0U);

    cache.resetStats();
    const auto warm = runSweep();
    EXPECT_EQ(cache.stats().hits, sweep.size());
    EXPECT_EQ(cache.stats().misses, 0U);
    EXPECT_EQ(cache.stats().evictions, 0U);

    // A cacheless engine is the golden reference: cold, warm and
    // uncached assessments must agree to the bit (same seeds, same
    // routing states).
    const WhatIfEngine plain{topo, phys::CableRegistry::africanDefaults(),
                             dns::DnsConfig::defaults(),
                             content::ContentConfig::defaults()};
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto golden = plain.assess(plain.makeCutEvent(sweep[i]));
        expectSameImpactReport(golden, cold[i]);
        expectSameImpactReport(golden, warm[i]);
    }
}

TEST(WhatIfScenarioCache, ScenarioEnginesShareTheCache) {
    const topo::Topology& topo = sharedTopology();
    exec::WorkerPool pool;
    route::OracleCache cache{topo, 16, &pool};

    const WhatIfEngine baseline{topo,
                                phys::CableRegistry::africanDefaults(),
                                dns::DnsConfig::defaults(),
                                content::ContentConfig::defaults(),
                                phys::LinkMapConfig{}, 99, &cache, &pool};
    // A DNS-policy scenario shares topology and cable plant, so its cut
    // events produce the same link filters: its assessments ride the
    // baseline engine's cached oracles.
    const WhatIfEngine localized =
        baseline.withDnsConfig(dns::DnsConfig::defaults());

    const std::vector<std::string> cut = {"WACS", "MainOne"};
    (void)baseline.assess(baseline.makeCutEvent(cut));
    cache.resetStats();
    (void)localized.assess(localized.makeCutEvent(cut));
    EXPECT_EQ(cache.stats().hits, 1U);
    EXPECT_EQ(cache.stats().misses, 0U);
}

} // namespace
} // namespace aio::core
