#include "core/observatory.hpp"

#include <gtest/gtest.h>

#include "core/setcover.hpp"
#include "core/studies.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::core {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    measure::TracerouteEngine engine;
    measure::IxpDetector detector;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), engine(topo, oracle),
          detector(topo, measure::IxpKnowledgeBase::full(topo)) {}
};

World& world() {
    static World w;
    return w;
}

TEST(ProbeFleet, ObservatoryCoversFarMoreCountriesThanAtlas) {
    auto& w = world();
    net::Rng rng{1};
    const auto obs = ProbeFleet::observatory(w.topo, rng);
    const auto atlas = ProbeFleet::atlasLike(w.topo, rng);
    EXPECT_GT(obs.countryCount(), 40U);
    EXPECT_LT(atlas.countryCount(), 15U);
    EXPECT_GT(obs.size(), atlas.size());
}

TEST(ProbeFleet, ObservatoryProbesAreMobileBiased) {
    auto& w = world();
    net::Rng rng{2};
    const auto obs = ProbeFleet::observatory(w.topo, rng);
    int cellular = 0;
    int mobileHosted = 0;
    for (const Probe& probe : obs.probes()) {
        cellular += probe.cellular ? 1 : 0;
        mobileHosted += w.topo.as(probe.hostAs).mobileDominant ? 1 : 0;
    }
    EXPECT_EQ(cellular, static_cast<int>(obs.size()));
    EXPECT_GT(static_cast<double>(mobileHosted) / obs.size(), 0.5);
}

TEST(ProbeFleet, AtlasProbesAreWiredAndUnmetered) {
    auto& w = world();
    net::Rng rng{3};
    const auto atlas = ProbeFleet::atlasLike(w.topo, rng);
    for (const Probe& probe : atlas.probes()) {
        EXPECT_TRUE(probe.wired);
        EXPECT_FALSE(probe.cellular);
    }
}

TEST(VantageSelector, GreedyCoverIsCompleteAndSmall) {
    auto& w = world();
    const VantageSelector selector{w.topo};
    const auto cover = selector.minimalIxpCover();
    EXPECT_TRUE(cover.complete);
    EXPECT_EQ(cover.totalIxps, 77U);
    EXPECT_EQ(cover.coveredIxps, 77U);
    // The paper reports 34 ASNs; the synthetic peering matrix should land
    // in the same ballpark, and far below one-AS-per-IXP.
    EXPECT_GE(cover.chosenAses.size(), 20U);
    EXPECT_LE(cover.chosenAses.size(), 50U);
    // Verify it IS a cover.
    std::set<topo::IxpIndex> covered;
    for (const auto as : cover.chosenAses) {
        for (const auto ix : w.topo.ixpsOf(as)) {
            if (net::isAfrican(w.topo.ixp(ix).region)) {
                covered.insert(ix);
            }
        }
    }
    EXPECT_EQ(covered.size(), 77U);
}

TEST(VantageSelector, RestrictedCandidatePoolMayBeIncomplete) {
    auto& w = world();
    const VantageSelector selector{w.topo};
    // Only ASes that are members of nothing: cover must fail.
    std::vector<topo::AsIndex> noIxpAses;
    for (topo::AsIndex i = 0; i < w.topo.asCount(); ++i) {
        if (w.topo.ixpsOf(i).empty()) {
            noIxpAses.push_back(i);
        }
    }
    const auto cover = selector.minimalIxpCover(noIxpAses);
    EXPECT_FALSE(cover.complete);
    EXPECT_EQ(cover.coveredIxps, 0U);
}

TEST(Observatory, TargetedCampaignBeatsMeshOnIxpDiscovery) {
    auto& w = world();
    net::Rng rng{4};
    auto fleet = ProbeFleet::observatory(w.topo, rng);
    const Observatory obs{w.topo, w.engine, w.detector, std::move(fleet)};
    net::Rng campaignRng{5};
    const auto targeted = obs.runIxpDiscovery(campaignRng);
    const auto mesh = obs.runMesh(campaignRng);
    // The observatory's own mesh already crosses many fabrics (its probes
    // sit in IXP-member networks by design); targeted probing still finds
    // strictly more. The dramatic gap is vs the Atlas baseline, asserted
    // in the Kigali test below.
    EXPECT_GT(targeted.africanIxpCount(w.topo),
              mesh.africanIxpCount(w.topo));
    EXPECT_GT(targeted.tracesLaunched, 0);
}

TEST(Observatory, KigaliProbeSeesManyMoreIxpsThanAtlasApproach) {
    // §7.3: the Kigali AS36924 vantage detected 14 additional IXPs
    // compared to RIPE-Atlas approaches.
    auto& w = world();
    net::Rng rng{6};
    const auto kigaliIdx =
        w.topo.indexOfAsn(topo::TopologyGenerator::kKigaliProbeAsn);
    ASSERT_TRUE(kigaliIdx.has_value());

    ProbeFleet single;
    Probe kigali;
    kigali.id = "obs-RW-kigali";
    kigali.hostAs = *kigaliIdx;
    kigali.countryCode = "RW";
    kigali.availability = 1.0;
    single.add(kigali);
    const Observatory obs{w.topo, w.engine, w.detector, std::move(single)};
    net::Rng campaignRng{7};
    const auto targeted = obs.runIxpDiscoveryFrom(kigali, campaignRng);

    auto atlasFleet = ProbeFleet::atlasLike(w.topo, rng);
    const Observatory atlasObs{w.topo, w.engine, w.detector,
                               std::move(atlasFleet)};
    const auto atlasMesh = atlasObs.runMesh(campaignRng);

    const auto fromKigali = targeted.africanIxpCount(w.topo);
    const auto fromAtlas = atlasMesh.africanIxpCount(w.topo);
    EXPECT_GT(fromKigali, fromAtlas);
    EXPECT_GE(fromKigali - fromAtlas, 5U);
}

TEST(Observatory, UnavailableProbeProducesNothing) {
    auto& w = world();
    ProbeFleet fleet;
    Probe dead;
    dead.id = "dead";
    dead.hostAs = w.topo.africanAses().front();
    dead.countryCode = "DZ";
    dead.availability = 0.0; // no power
    fleet.add(dead);
    const Observatory obs{w.topo, w.engine, w.detector, std::move(fleet)};
    net::Rng rng{8};
    const auto result = obs.runIxpDiscovery(rng);
    EXPECT_EQ(result.tracesLaunched, 0);
    EXPECT_TRUE(result.ixpsDetected.empty());
}

} // namespace
} // namespace aio::core
