#include "core/budget.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "netbase/error.hpp"

namespace aio::core {
namespace {

Probe makeProbe(PricingModel pricing) {
    Probe probe;
    probe.id = "test-probe";
    probe.countryCode = "RW";
    probe.pricing = pricing;
    return probe;
}

std::vector<MeasurementTask> taskMix() {
    return {
        // Two analyses over the same traceroute corpus (shared group 0).
        {.id = "topo-map", .kind = "traceroute",
         .payloadBytesPerRun = 60e3, .utilityPerRun = 5.0,
         .desiredRuns = 200, .sharedGroup = 0, .offPeakOk = true},
        {.id = "ixp-detect", .kind = "traceroute",
         .payloadBytesPerRun = 60e3, .utilityPerRun = 4.0,
         .desiredRuns = 200, .sharedGroup = 0, .offPeakOk = true},
        {.id = "dns-check", .kind = "dns", .payloadBytesPerRun = 2e3,
         .utilityPerRun = 1.0, .desiredRuns = 500, .sharedGroup = -1,
         .offPeakOk = true},
        {.id = "pageload", .kind = "http", .payloadBytesPerRun = 2e6,
         .utilityPerRun = 8.0, .desiredRuns = 100, .sharedGroup = -1,
         .offPeakOk = false},
    };
}

TEST(PricingModel, FlatPerMbIsLinear) {
    PricingModel pricing;
    pricing.kind = PricingModel::Kind::FlatPerMb;
    pricing.perMbUsd = 0.01;
    EXPECT_DOUBLE_EQ(pricing.costUsd(100.0, false), 1.0);
    EXPECT_DOUBLE_EQ(pricing.costUsd(100.0, true), 1.0);
    EXPECT_THROW(pricing.costUsd(-1.0, false), net::PreconditionError);
}

TEST(PricingModel, PrepaidChargesWholeBundles) {
    PricingModel pricing;
    pricing.kind = PricingModel::Kind::PrepaidBundle;
    pricing.bundleMb = 500.0;
    pricing.bundleCostUsd = 4.0;
    EXPECT_DOUBLE_EQ(pricing.costUsd(1.0, false), 4.0);
    EXPECT_DOUBLE_EQ(pricing.costUsd(500.0, false), 4.0);
    EXPECT_DOUBLE_EQ(pricing.costUsd(501.0, false), 8.0);
}

TEST(PricingModel, OffPeakDiscountApplies) {
    PricingModel pricing;
    pricing.kind = PricingModel::Kind::TimeOfDayDiscount;
    pricing.perMbUsd = 0.01;
    pricing.offPeakFactor = 0.5;
    EXPECT_DOUBLE_EQ(pricing.costUsd(100.0, true), 0.5);
    EXPECT_DOUBLE_EQ(pricing.costUsd(100.0, false), 1.0);
}

TEST(PricingModel, NonPositiveBundleSizeIsRejected) {
    PricingModel pricing;
    pricing.kind = PricingModel::Kind::PrepaidBundle;
    pricing.bundleMb = 0.0; // would make ceil(mb / bundleMb) inf/NaN
    EXPECT_THROW(pricing.costUsd(10.0, false), net::PreconditionError);
    pricing.bundleMb = -500.0;
    EXPECT_THROW(pricing.validate(), net::PreconditionError);
    EXPECT_THROW(TariffMeter{pricing}, net::PreconditionError);
}

TEST(PricingModel, NegativeRatesAreRejected) {
    PricingModel flat;
    flat.kind = PricingModel::Kind::FlatPerMb;
    flat.perMbUsd = -0.01;
    EXPECT_THROW(flat.validate(), net::PreconditionError);

    PricingModel tod;
    tod.kind = PricingModel::Kind::TimeOfDayDiscount;
    tod.offPeakFactor = -0.5;
    EXPECT_THROW(tod.costUsd(1.0, true), net::PreconditionError);

    // The irrelevant knobs of other kinds are NOT validated: a flat
    // tariff with a nonsense bundle size is fine.
    PricingModel flatOk;
    flatOk.kind = PricingModel::Kind::FlatPerMb;
    flatOk.bundleMb = 0.0;
    EXPECT_NO_THROW(flatOk.validate());
}

TEST(TariffMeter, MarginalCostCrossesBundleBoundary) {
    PricingModel pricing;
    pricing.kind = PricingModel::Kind::PrepaidBundle;
    pricing.bundleMb = 100.0;
    pricing.bundleCostUsd = 2.0;
    TariffMeter meter{pricing};
    // First byte buys a whole bundle...
    EXPECT_DOUBLE_EQ(meter.marginalCost(1.0, false), 2.0);
    meter.add(1.0, false);
    // ...the rest of the bundle is then free...
    EXPECT_DOUBLE_EQ(meter.marginalCost(99.0, false), 0.0);
    meter.add(99.0, false);
    // ...and the next byte buys the next bundle.
    EXPECT_DOUBLE_EQ(meter.marginalCost(1.0, false), 2.0);
    EXPECT_DOUBLE_EQ(meter.totalCost(), 2.0);
}

TEST(BudgetScheduler, PlanRespectsBudget) {
    PricingModel pricing;
    pricing.kind = PricingModel::Kind::FlatPerMb;
    pricing.perMbUsd = 0.01;
    const Probe probe = makeProbe(pricing);
    const BudgetScheduler scheduler;
    const auto tasks = taskMix();
    const auto plan = scheduler.plan(probe, tasks, 2.0);
    EXPECT_LE(plan.plannedCostUsd, 2.0 + 1e-9);
    EXPECT_GT(plan.plannedUtility, 0.0);
    // Execution under the true tariff also stays within budget.
    const auto result = BudgetScheduler::execute(probe, plan, 2.0);
    EXPECT_LE(result.spentUsd, 2.0 + 1e-9);
    EXPECT_EQ(result.runsAborted, 0);
}

TEST(BudgetScheduler, ReuseBeatsNoReuse) {
    PricingModel pricing;
    pricing.kind = PricingModel::Kind::FlatPerMb;
    pricing.perMbUsd = 0.01;
    const Probe probe = makeProbe(pricing);
    const auto tasks = taskMix();
    SchedulerOptions smart;
    SchedulerOptions naive;
    naive.exploitReuse = false;
    const auto smartPlan = BudgetScheduler{smart}.plan(probe, tasks, 1.0);
    const auto naivePlan = BudgetScheduler{naive}.plan(probe, tasks, 1.0);
    const auto smartResult = BudgetScheduler::execute(probe, smartPlan, 1.0);
    const auto naiveResult = BudgetScheduler::execute(probe, naivePlan, 1.0);
    EXPECT_GT(smartResult.deliveredUtility, naiveResult.deliveredUtility);
}

TEST(BudgetScheduler, PayloadOnlyAccountingOverspendsAndAborts) {
    PricingModel pricing;
    pricing.kind = PricingModel::Kind::FlatPerMb;
    pricing.perMbUsd = 0.01;
    const Probe probe = makeProbe(pricing);
    const auto tasks = taskMix();
    SchedulerOptions naive;
    naive.accountPacketOverhead = false; // app-level accounting (§7.1)
    const auto plan = BudgetScheduler{naive}.plan(probe, tasks, 1.0);
    const auto result = BudgetScheduler::execute(probe, plan, 1.0);
    // The naive planner schedules more than the wire allows: runs abort.
    EXPECT_GT(result.runsAborted, 0);
    EXPECT_LE(result.spentUsd, 1.0 + 1e-9);
}

TEST(BudgetScheduler, OffPeakSchedulingStretchesTheBudget) {
    PricingModel pricing;
    pricing.kind = PricingModel::Kind::TimeOfDayDiscount;
    pricing.perMbUsd = 0.01;
    pricing.offPeakFactor = 0.4;
    const Probe probe = makeProbe(pricing);
    const auto tasks = taskMix();
    SchedulerOptions smart;
    SchedulerOptions peakOnly;
    peakOnly.useOffPeak = false;
    const auto smartResult = BudgetScheduler::execute(
        probe, BudgetScheduler{smart}.plan(probe, tasks, 1.0), 1.0);
    const auto peakResult = BudgetScheduler::execute(
        probe, BudgetScheduler{peakOnly}.plan(probe, tasks, 1.0), 1.0);
    EXPECT_GE(smartResult.deliveredUtility, peakResult.deliveredUtility);
}

TEST(BudgetScheduler, PrepaidBundlesQuantizeSpend) {
    PricingModel pricing;
    pricing.kind = PricingModel::Kind::PrepaidBundle;
    pricing.bundleMb = 100.0;
    pricing.bundleCostUsd = 1.0;
    const Probe probe = makeProbe(pricing);
    const auto tasks = taskMix();
    const auto plan = BudgetScheduler{}.plan(probe, tasks, 3.0);
    const auto result = BudgetScheduler::execute(probe, plan, 3.0);
    // Spend is a whole number of bundles.
    EXPECT_DOUBLE_EQ(result.spentUsd,
                     std::round(result.spentUsd));
    EXPECT_LE(result.spentUsd, 3.0 + 1e-9);
}

TEST(BudgetScheduler, ZeroBudgetSchedulesNothing) {
    PricingModel pricing;
    pricing.kind = PricingModel::Kind::FlatPerMb;
    pricing.perMbUsd = 0.01;
    const Probe probe = makeProbe(pricing);
    const auto tasks = taskMix();
    const auto plan = BudgetScheduler{}.plan(probe, tasks, 0.0);
    EXPECT_TRUE(plan.entries.empty());
    EXPECT_DOUBLE_EQ(plan.plannedUtility, 0.0);
}

} // namespace
} // namespace aio::core
