#include <gtest/gtest.h>

#include "core/studies.hpp"
#include "core/whatif.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::core {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo) {}
};

World& world() {
    static World w;
    return w;
}

TEST(ConnectivityStudies, DetourShapeMatchesPaper) {
    auto& w = world();
    const ConnectivityStudies studies{w.topo, w.oracle};
    net::Rng rng{1};
    const auto report = studies.detourStudy(4000, rng);
    // A non-trivial share of intra-African routes leaves the continent.
    EXPECT_GT(report.overallDetourShare, 0.3);
    EXPECT_LT(report.overallDetourShare, 0.9);
    // Southern Africa detours least (most mature peering).
    double southern = 0.0;
    double western = 0.0;
    for (const auto& row : report.byRegion) {
        if (row.region == net::Region::SouthernAfrica) {
            southern = row.detourShare;
        }
        if (row.region == net::Region::WesternAfrica) {
            western = row.detourShare;
        }
    }
    EXPECT_LT(southern, western);
    // Only ~40% of detours attributable to EU Tier-1 / EU IXP (§4.1).
    EXPECT_GT(report.euTier1OrIxpShare(), 0.2);
    EXPECT_LT(report.euTier1OrIxpShare(), 0.6);
    // Attribution shares sum to one.
    double total = 0.0;
    for (const auto& [cls, share] : report.attribution) {
        total += share;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ConnectivityStudies, IxpPrevalenceShapeMatchesPaper) {
    auto& w = world();
    const ConnectivityStudies studies{w.topo, w.oracle};
    net::Rng rng{2};
    const auto report = studies.ixpPrevalence(800, rng);
    // Overall only a modest share of routes crosses an African IXP.
    EXPECT_GT(report.overallShare, 0.02);
    EXPECT_LT(report.overallShare, 0.45);
    double northern = 1.0;
    double central = 0.0;
    for (const auto& row : report.byRegion) {
        if (row.region == net::Region::NorthernAfrica) {
            northern = row.ixpShare;
        }
        if (row.region == net::Region::CentralAfrica) {
            central = row.ixpShare;
        }
    }
    // Northern Africa's IXPs barely show up; Central leads (Fig. 3).
    EXPECT_LT(northern, 0.1);
    EXPECT_GT(central, northern);
    for (const auto& row : report.byRegion) {
        if (row.region == net::Region::CentralAfrica) continue;
        EXPECT_GE(central, row.ixpShare) << net::regionName(row.region);
    }
}

WhatIfEngine makeEngine(World& w) {
    return WhatIfEngine{w.topo, phys::CableRegistry::africanDefaults(),
                        dns::DnsConfig::defaults(),
                        content::ContentConfig::defaults()};
}

TEST(WhatIfEngine, DiverseCableSoftensCorridorCut) {
    auto& w = world();
    const auto baseline = makeEngine(w);
    const std::vector<std::string> march2024 = {"WACS", "MainOne", "SAT-3",
                                                "ACE"};
    const auto before = baseline.assess(baseline.makeCutEvent(march2024));

    // Add a second geographically diverse west-coast system.
    phys::SubseaCable diverse;
    diverse.name = "WestShield";
    diverse.corridor = baseline.registry()
                           .cable(baseline.registry().byName("Equiano"))
                           .corridor;
    diverse.readyForService = 2026;
    diverse.capacityTbps = 100.0;
    for (const auto code : {"PT", "MA", "SN", "CI", "GH", "NG", "CM", "AO",
                            "NA", "ZA"}) {
        phys::LandingStation station;
        station.countryCode = code;
        station.location =
            net::CountryTable::world().byCode(code).centroid;
        diverse.landings.push_back(station);
    }
    const auto upgraded = baseline.withCable(diverse);
    const auto after = upgraded.assess(upgraded.makeCutEvent(march2024));

    EXPECT_LE(after.impactedCountries().size(),
              before.impactedCountries().size());
    EXPECT_GE(before.impactedCountries().size(), 3U);
}

TEST(WhatIfEngine, DnsLocalizationMandateReducesDnsFailures) {
    auto& w = world();
    const auto baseline = makeEngine(w);
    const std::vector<std::string> march2024 = {"WACS", "MainOne", "SAT-3",
                                                "ACE"};
    const auto event = baseline.makeCutEvent(march2024);

    // Mandate: shift Western Africa's resolution fully local.
    auto localized = dns::DnsConfig::defaults();
    localized.africa[1] = dns::ResolverProfile{.localInCountry = 0.95,
                                               .otherAfricanCountry = 0.05,
                                               .cloudInAfrica = 0.0,
                                               .cloudOffshore = 0.0,
                                               .ispOffshore = 0.0};
    const auto mandated = baseline.withDnsConfig(localized);

    // Average DNS failure over the Western-Africa blast radius.
    const auto failShare = [&](const WhatIfEngine& engine) {
        double worst = 0.0;
        for (const auto code : {"GH", "NG", "CI", "SN"}) {
            worst = std::max(worst, engine.dnsFailureShare(
                                        code, engine.makeCutEvent(
                                                  march2024)));
        }
        return worst;
    };
    EXPECT_LE(failShare(mandated), failShare(baseline));
}

TEST(WhatIfEngine, ContentLocalizationMovesTheLocalityNeedle) {
    auto& w = world();
    const auto baseline = makeEngine(w);
    auto localized = content::ContentConfig::defaults();
    for (auto& profile : localized.africa) {
        profile.localDatacenter += 0.3;
        profile.europeDc = std::max(0.0, profile.europeDc - 0.3);
    }
    const auto mandated = baseline.withContentConfig(localized);
    EXPECT_GT(mandated.contentLocalShare(),
              baseline.contentLocalShare() + 0.1);
}

TEST(WhatIfEngine, CutEventValidation) {
    auto& w = world();
    const auto engine = makeEngine(w);
    const std::vector<std::string> none;
    EXPECT_THROW(engine.makeCutEvent(none), net::PreconditionError);
    const std::vector<std::string> bogus = {"NoSuchCable"};
    EXPECT_THROW(engine.makeCutEvent(bogus), net::NotFoundError);
}

} // namespace
} // namespace aio::core
