// Parameterized sweep over the budget scheduler: core invariants must
// hold for every tariff x budget x planner combination.

#include <gtest/gtest.h>

#include <tuple>

#include "core/budget.hpp"

namespace aio::core {
namespace {

PricingModel tariffByIndex(int index) {
    PricingModel pricing;
    switch (index) {
    case 0:
        pricing.kind = PricingModel::Kind::FlatPerMb;
        pricing.perMbUsd = 0.008;
        break;
    case 1:
        pricing.kind = PricingModel::Kind::PrepaidBundle;
        pricing.bundleMb = 250.0;
        pricing.bundleCostUsd = 2.0;
        break;
    default:
        pricing.kind = PricingModel::Kind::TimeOfDayDiscount;
        pricing.perMbUsd = 0.01;
        pricing.offPeakFactor = 0.45;
        break;
    }
    return pricing;
}

std::vector<MeasurementTask> sweepTasks() {
    std::vector<MeasurementTask> tasks;
    for (int i = 0; i < 12; ++i) {
        tasks.push_back({.id = "t" + std::to_string(i),
                         .kind = i % 2 ? "traceroute" : "http",
                         .payloadBytesPerRun = 2e4 * (1 + i % 5),
                         .utilityPerRun = 1.0 + i % 4,
                         .desiredRuns = 100 + 40 * (i % 3),
                         .sharedGroup = i < 6 ? i / 3 : -1,
                         .offPeakOk = (i % 3) != 0});
    }
    return tasks;
}

/// (tariff index, budget USD)
class BudgetSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BudgetSweep, ExecutionNeverOverspends) {
    const auto [tariff, budget] = GetParam();
    Probe probe;
    probe.id = "sweep";
    probe.countryCode = "KE";
    probe.pricing = tariffByIndex(tariff);
    const auto tasks = sweepTasks();
    for (const bool reuse : {true, false}) {
        for (const bool overhead : {true, false}) {
            SchedulerOptions opts;
            opts.exploitReuse = reuse;
            opts.accountPacketOverhead = overhead;
            const BudgetScheduler scheduler{opts};
            const auto plan = scheduler.plan(probe, tasks, budget);
            EXPECT_LE(plan.plannedCostUsd, budget + 1e-9);
            const auto result =
                BudgetScheduler::execute(probe, plan, budget);
            EXPECT_LE(result.spentUsd, budget + 1e-9);
            EXPECT_GE(result.deliveredUtility, 0.0);
        }
    }
}

TEST_P(BudgetSweep, AwarePlannerNeverAborts) {
    const auto [tariff, budget] = GetParam();
    Probe probe;
    probe.id = "sweep";
    probe.countryCode = "KE";
    probe.pricing = tariffByIndex(tariff);
    const auto tasks = sweepTasks();
    const BudgetScheduler scheduler; // fully aware defaults
    const auto plan = scheduler.plan(probe, tasks, budget);
    const auto result = BudgetScheduler::execute(probe, plan, budget);
    // Packet-level accounting means the plan is executable as planned.
    EXPECT_EQ(result.runsAborted, 0);
}

TEST_P(BudgetSweep, AwareBeatsOrMatchesNaive) {
    const auto [tariff, budget] = GetParam();
    Probe probe;
    probe.id = "sweep";
    probe.countryCode = "KE";
    probe.pricing = tariffByIndex(tariff);
    const auto tasks = sweepTasks();
    SchedulerOptions naiveOpts;
    naiveOpts.accountPacketOverhead = false;
    naiveOpts.exploitReuse = false;
    naiveOpts.useOffPeak = false;
    const auto aware = BudgetScheduler::execute(
        probe, BudgetScheduler{}.plan(probe, tasks, budget), budget);
    const auto naive = BudgetScheduler::execute(
        probe, BudgetScheduler{naiveOpts}.plan(probe, tasks, budget),
        budget);
    EXPECT_GE(aware.deliveredUtility, naive.deliveredUtility * 0.999);
}

TEST_P(BudgetSweep, MoreBudgetNeverHurts) {
    const auto [tariff, budget] = GetParam();
    Probe probe;
    probe.id = "sweep";
    probe.countryCode = "KE";
    probe.pricing = tariffByIndex(tariff);
    const auto tasks = sweepTasks();
    const BudgetScheduler scheduler;
    const auto small = BudgetScheduler::execute(
        probe, scheduler.plan(probe, tasks, budget), budget);
    const auto large = BudgetScheduler::execute(
        probe, scheduler.plan(probe, tasks, budget * 2.0), budget * 2.0);
    EXPECT_GE(large.deliveredUtility, small.deliveredUtility - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    TariffsAndBudgets, BudgetSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.5, 2.0, 8.0, 50.0)));

} // namespace
} // namespace aio::core
