#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "netbase/error.hpp"
#include "outage/events.hpp"
#include "outage/impact.hpp"
#include "outage/radar.hpp"
#include "topo/generator.hpp"

namespace aio::outage {
namespace {

struct World {
    topo::Topology topo;
    phys::CableRegistry registry;
    net::Rng mapRng;
    phys::PhysicalLinkMap linkMap;
    dns::ResolverEcosystem resolvers;
    content::ContentCatalog catalog;
    ImpactAnalyzer analyzer;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          registry(phys::CableRegistry::africanDefaults()), mapRng(5),
          linkMap(topo, registry, mapRng),
          resolvers(topo, dns::DnsConfig::defaults(), 31),
          catalog(topo, content::ContentConfig::defaults(), 47),
          analyzer(topo, linkMap, resolvers, catalog) {}
};

World& world() {
    static World w;
    return w;
}

TEST(OutageEngine, AfricaHasRoughly4xMoreEvents) {
    auto& w = world();
    const OutageEngine engine{w.topo, w.registry, OutageConfig{}};
    std::map<net::MacroRegion, int> counts;
    net::Rng rng{1};
    // Average over several windows to tame Poisson noise.
    for (int trial = 0; trial < 10; ++trial) {
        for (const auto& event : engine.generateWindow(rng)) {
            ++counts[event.macroRegion];
        }
    }
    const double africa = counts[net::MacroRegion::Africa];
    EXPECT_GT(africa, 3.0 * counts[net::MacroRegion::Europe]);
    EXPECT_GT(africa, 3.0 * counts[net::MacroRegion::NorthAmerica]);
    EXPECT_GT(africa, 2.5 * counts[net::MacroRegion::SouthAmerica]);
}

TEST(OutageEngine, CableCutsAreCorrelatedWithinCorridors) {
    auto& w = world();
    const OutageEngine engine{w.topo, w.registry, OutageConfig{}};
    net::Rng rng{2};
    int multiCableCuts = 0;
    int cuts = 0;
    for (int trial = 0; trial < 20; ++trial) {
        for (const auto& event : engine.generateWindow(rng)) {
            if (event.type != OutageType::CableCut ||
                event.macroRegion != net::MacroRegion::Africa) {
                continue;
            }
            ++cuts;
            multiCableCuts += event.cutCables.size() > 1 ? 1 : 0;
            // All cut cables share one corridor.
            const auto corridor =
                w.registry.cable(event.cutCables.front()).corridor;
            for (const auto id : event.cutCables) {
                EXPECT_EQ(w.registry.cable(id).corridor, corridor);
            }
        }
    }
    ASSERT_GT(cuts, 20);
    EXPECT_GT(static_cast<double>(multiCableCuts) / cuts, 0.4);
}

TEST(OutageEngine, EventsFallInsideWindow) {
    auto& w = world();
    OutageConfig cfg;
    cfg.windowYears = 1.0;
    const OutageEngine engine{w.topo, w.registry, cfg};
    net::Rng rng{3};
    for (const auto& event : engine.generateWindow(rng)) {
        EXPECT_GE(event.startDay, 0.0);
        EXPECT_LE(event.startDay, 365.0);
        EXPECT_GT(event.durationDays, 0.0);
    }
}

TEST(ImpactAnalyzer, WestCoastCorridorCutImpactsManyCountries) {
    auto& w = world();
    OutageEvent event;
    event.type = OutageType::CableCut;
    event.macroRegion = net::MacroRegion::Africa;
    event.durationDays = 25.0;
    // The March 2024 scenario: WACS + MainOne + SAT-3 + ACE.
    for (const auto name : {"WACS", "MainOne", "SAT-3", "ACE"}) {
        event.cutCables.push_back(w.registry.byName(name));
    }
    net::Rng rng{4};
    const auto report = w.analyzer.assess(event, rng);
    const auto impacted = report.impactedCountries();
    EXPECT_GE(impacted.size(), 5U);
    // Western African countries dominate the blast radius.
    int western = 0;
    for (const auto& iso2 : impacted) {
        if (net::CountryTable::world().byCode(iso2).region ==
            net::Region::WesternAfrica) {
            ++western;
        }
    }
    EXPECT_GE(western, 3);
    EXPECT_GT(report.resolutionDays(), 0.0);
    EXPECT_LE(report.resolutionDays(), event.durationDays);
}

TEST(ImpactAnalyzer, SingleDiverseCableCutIsMild) {
    auto& w = world();
    OutageEvent corr;
    corr.type = OutageType::CableCut;
    corr.macroRegion = net::MacroRegion::Africa;
    corr.durationDays = 25.0;
    for (const auto name : {"WACS", "MainOne", "SAT-3", "ACE"}) {
        corr.cutCables.push_back(w.registry.byName(name));
    }
    OutageEvent single = corr;
    single.cutCables = {w.registry.byName("WACS")};
    net::Rng rng{5};
    const auto corrReport = w.analyzer.assess(corr, rng);
    const auto singleReport = w.analyzer.assess(single, rng);
    EXPECT_GE(corrReport.impactedCountries().size(),
              singleReport.impactedCountries().size());
}

TEST(ImpactAnalyzer, ShutdownTakesWholeCountryDown) {
    auto& w = world();
    OutageEvent event;
    event.type = OutageType::GovernmentShutdown;
    event.macroRegion = net::MacroRegion::Africa;
    event.durationDays = 2.0;
    event.countries = {"ET"};
    net::Rng rng{6};
    const auto report = w.analyzer.assess(event, rng);
    bool foundEt = false;
    for (const auto& impact : report.countries) {
        if (impact.country == "ET") {
            foundEt = true;
            EXPECT_GT(impact.pageLoadLoss, 0.9);
            EXPECT_NEAR(impact.effectiveOutageDays, 2.0, 1e-9);
        }
    }
    EXPECT_TRUE(foundEt);
}

TEST(ImpactAnalyzer, DnsFailureAccompaniesIsolation) {
    auto& w = world();
    OutageEvent event;
    event.type = OutageType::CableCut;
    event.macroRegion = net::MacroRegion::Africa;
    event.durationDays = 20.0;
    for (const auto id : w.registry.cablesInCorridor(
             w.registry.cable(w.registry.byName("WACS")).corridor)) {
        event.cutCables.push_back(id);
    }
    net::Rng rng{7};
    const auto report = w.analyzer.assess(event, rng);
    double worstDns = 0.0;
    for (const auto& impact : report.countries) {
        worstDns = std::max(worstDns, impact.dnsFailureShare);
    }
    // §5.2: offshore resolvers fail during cuts.
    EXPECT_GT(worstDns, 0.2);
}

TEST(RadarMonitor, RecoversInjectedOutage) {
    auto& w = world();
    OutageEvent event;
    event.type = OutageType::GovernmentShutdown;
    event.macroRegion = net::MacroRegion::Africa;
    event.startDay = 10.0;
    event.durationDays = 3.0;
    event.countries = {"KE"};
    net::Rng rng{8};
    const auto report = w.analyzer.assess(event, rng);
    const RadarMonitor radar{w.topo};
    const auto series = radar.seriesFor("KE", 30.0, {report}, rng);
    const auto detections = radar.detect(series);
    ASSERT_EQ(detections.size(), 1U);
    EXPECT_NEAR(detections[0].startDay, 10.0, 1.0);
    EXPECT_NEAR(detections[0].durationDays, 3.0, 1.0);
}

TEST(RadarMonitor, QuietSeriesYieldsNoDetections) {
    auto& w = world();
    const RadarMonitor radar{w.topo};
    net::Rng rng{9};
    const auto series = radar.seriesFor("KE", 30.0, {}, rng);
    EXPECT_TRUE(radar.detect(series).empty());
}

TEST(RadarConfig, ValidateRejectsOutOfRangeKnobs) {
    RadarConfig config;
    EXPECT_NO_THROW(config.validate());
    config.samplesPerDay = 0.0;
    EXPECT_THROW(config.validate(), net::PreconditionError);
    config = RadarConfig{};
    config.noiseStddev = -0.1;
    EXPECT_THROW(config.validate(), net::PreconditionError);
    config = RadarConfig{};
    config.dropThreshold = 1.0;
    EXPECT_THROW(config.validate(), net::PreconditionError);
    config = RadarConfig{};
    config.dropThreshold = 0.0;
    EXPECT_THROW(config.validate(), net::PreconditionError);
    // minConsecutiveSamples < 1 would make the run-scan emit zero-length
    // detections at every above-floor sample; the constructor must
    // refuse it up front.
    config = RadarConfig{};
    config.minConsecutiveSamples = 0;
    EXPECT_THROW(config.validate(), net::PreconditionError);
    auto& w = world();
    EXPECT_THROW(RadarMonitor(w.topo, config), net::PreconditionError);
}

TEST(RadarMonitor, DropInProgressAtSeriesEndIsReported) {
    // Tail-boundary contract: an outage still below the floor when the
    // window closes must be flushed, not silently swallowed.
    RadarConfig config;
    config.minConsecutiveSamples = 2;
    TrafficSeries series;
    series.country = "KE";
    series.samplesPerDay = 1.0;
    series.values = {10.0, 10.0, 10.0, 10.0, 10.0, 10.0,
                     1.0,  1.0,  1.0}; // drop runs into the edge
    auto& w = world();
    const RadarMonitor radar{w.topo, config};
    const auto detections = radar.detect(series);
    ASSERT_EQ(detections.size(), 1U);
    EXPECT_DOUBLE_EQ(detections[0].startDay, 6.0);
    EXPECT_DOUBLE_EQ(detections[0].durationDays, 3.0);
}

TEST(RadarFreeFunctions, PresenceMaskExcludesAbsentSlotsAndBreaksRuns) {
    RadarConfig config;
    config.minConsecutiveSamples = 2;
    const std::vector<double> values = {10.0, 10.0, 10.0, 10.0,
                                        1.0,  0.0,  1.0,  10.0};
    // Slot 5 (value 0.0) never arrived: it must not drag the median
    // down, and it must break the below-floor run around it.
    const std::vector<std::uint8_t> present = {1, 1, 1, 1, 1, 0, 1, 1};
    const double floorAll = seriesFloor(values, {}, config);
    const double floorMasked = seriesFloor(values, present, config);
    EXPECT_GT(floorMasked, 0.0);
    EXPECT_GE(floorMasked, floorAll);
    const auto unmasked =
        detectBelowFloor("KE", values, {}, floorMasked, 1.0, config);
    ASSERT_EQ(unmasked.size(), 1U);
    EXPECT_DOUBLE_EQ(unmasked[0].durationDays, 3.0);
    const auto masked =
        detectBelowFloor("KE", values, present, floorMasked, 1.0, config);
    // With slot 5 absent the run splits into two 1-sample runs, both
    // under the minimum.
    EXPECT_TRUE(masked.empty());
}

TEST(RadarFreeFunctions, EmptyPresenceYieldsZeroFloor) {
    RadarConfig config;
    const std::vector<double> values = {1.0, 2.0, 3.0};
    const std::vector<std::uint8_t> present = {0, 0, 0};
    EXPECT_DOUBLE_EQ(seriesFloor(values, present, config), 0.0);
}

TEST(RadarMonitor, MildDegradationBelowThresholdIsMissed) {
    // The detector only sees drops beyond its threshold — part of why
    // pure traffic-based monitoring under-reports partial outages.
    auto& w = world();
    ImpactReport report;
    report.event.startDay = 5.0;
    report.countries.push_back(CountryImpact{"KE", 0.10, 0.0, 4.0});
    const RadarMonitor radar{w.topo};
    net::Rng rng{10};
    const auto series = radar.seriesFor("KE", 20.0, {report}, rng);
    EXPECT_TRUE(radar.detect(series).empty());
}

} // namespace
} // namespace aio::outage
