// Parameterized sweep over the outage engine: frequency, correlation and
// duration invariants must hold across RNG seeds (not just one draw).

#include <gtest/gtest.h>

#include <map>

#include "outage/events.hpp"
#include "topo/generator.hpp"

namespace aio::outage {
namespace {

const topo::Topology& topology() {
    static const topo::Topology topo =
        topo::TopologyGenerator{topo::GeneratorConfig::defaults()}.generate();
    return topo;
}

const phys::CableRegistry& registry() {
    static const phys::CableRegistry reg =
        phys::CableRegistry::africanDefaults();
    return reg;
}

class OutageSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OutageSweep, AfricaDominatesEventCounts) {
    const OutageEngine engine{topology(), registry(), OutageConfig{}};
    net::Rng rng{GetParam()};
    std::map<net::MacroRegion, int> counts;
    for (int trial = 0; trial < 8; ++trial) {
        for (const auto& event : engine.generateWindow(rng)) {
            ++counts[event.macroRegion];
        }
    }
    EXPECT_GT(counts[net::MacroRegion::Africa],
              2 * counts[net::MacroRegion::Europe]);
    EXPECT_GT(counts[net::MacroRegion::Africa],
              2 * counts[net::MacroRegion::NorthAmerica]);
}

TEST_P(OutageSweep, CutCablesAlwaysShareACorridor) {
    const OutageEngine engine{topology(), registry(), OutageConfig{}};
    net::Rng rng{GetParam() ^ 0x77};
    for (int trial = 0; trial < 10; ++trial) {
        for (const auto& event : engine.generateWindow(rng)) {
            if (event.type != OutageType::CableCut ||
                event.cutCables.empty()) {
                continue;
            }
            const auto corridor =
                registry().cable(event.cutCables.front()).corridor;
            for (const auto id : event.cutCables) {
                ASSERT_EQ(registry().cable(id).corridor, corridor);
            }
        }
    }
}

TEST_P(OutageSweep, DurationsArePositiveAndCableCutsLongestOnAverage) {
    const OutageEngine engine{topology(), registry(), OutageConfig{}};
    net::Rng rng{GetParam() ^ 0x99};
    std::map<OutageType, std::pair<double, int>> sums;
    for (int trial = 0; trial < 20; ++trial) {
        for (const auto& event : engine.generateWindow(rng)) {
            ASSERT_GT(event.durationDays, 0.0);
            auto& [sum, count] = sums[event.type];
            sum += event.durationDays;
            ++count;
        }
    }
    const auto meanOf = [&](OutageType type) {
        const auto& [sum, count] = sums[type];
        return count == 0 ? 0.0 : sum / count;
    };
    // Ground-truth repair times: cable cuts are the long pole.
    EXPECT_GT(meanOf(OutageType::CableCut),
              meanOf(OutageType::PowerOutage));
    EXPECT_GT(meanOf(OutageType::CableCut),
              meanOf(OutageType::GovernmentShutdown));
    EXPECT_GT(meanOf(OutageType::CableCut),
              meanOf(OutageType::RoutingIncident));
}

TEST_P(OutageSweep, NonCableEventsNameAffectedCountries) {
    const OutageEngine engine{topology(), registry(), OutageConfig{}};
    net::Rng rng{GetParam() ^ 0xAB};
    for (const auto& event : engine.generateWindow(rng)) {
        if (event.type == OutageType::CableCut) {
            continue;
        }
        ASSERT_FALSE(event.countries.empty());
        for (const auto& country : event.countries) {
            ASSERT_TRUE(net::CountryTable::world().contains(country));
            ASSERT_EQ(net::macroOf(net::CountryTable::world()
                                       .byCode(country)
                                       .region),
                      event.macroRegion);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, OutageSweep,
                         ::testing::Values(11, 222, 3333, 44444));

} // namespace
} // namespace aio::outage
