#include "netbase/ip.hpp"

#include <gtest/gtest.h>

#include "netbase/error.hpp"

namespace aio::net {
namespace {

TEST(Ipv4Address, ParsesAndFormatsRoundTrip) {
    const auto addr = Ipv4Address::parse("196.223.14.1");
    EXPECT_EQ(addr.toString(), "196.223.14.1");
    EXPECT_EQ(addr.value(), 0xC4DF0E01U);
}

TEST(Ipv4Address, ParsesBoundaryAddresses) {
    EXPECT_EQ(Ipv4Address::parse("0.0.0.0").value(), 0U);
    EXPECT_EQ(Ipv4Address::parse("255.255.255.255").value(), 0xFFFFFFFFU);
}

TEST(Ipv4Address, RejectsMalformedText) {
    EXPECT_THROW(Ipv4Address::parse(""), ParseError);
    EXPECT_THROW(Ipv4Address::parse("1.2.3"), ParseError);
    EXPECT_THROW(Ipv4Address::parse("1.2.3.4.5"), ParseError);
    EXPECT_THROW(Ipv4Address::parse("256.0.0.1"), ParseError);
    EXPECT_THROW(Ipv4Address::parse("1.2.3.x"), ParseError);
    EXPECT_THROW(Ipv4Address::parse("1..3.4"), ParseError);
    EXPECT_THROW(Ipv4Address::parse("-1.2.3.4"), ParseError);
}

TEST(Ipv4Address, OrdersNumerically) {
    EXPECT_LT(Ipv4Address::parse("9.0.0.0"), Ipv4Address::parse("10.0.0.0"));
    EXPECT_LT(Ipv4Address::parse("10.0.0.1"), Ipv4Address::parse("10.0.1.0"));
}

TEST(Prefix, CanonicalizesHostBits) {
    const Prefix p{Ipv4Address::parse("10.1.2.3"), 16};
    EXPECT_EQ(p.toString(), "10.1.0.0/16");
}

TEST(Prefix, ParsesText) {
    const auto p = Prefix::parse("196.223.0.0/20");
    EXPECT_EQ(p.address().toString(), "196.223.0.0");
    EXPECT_EQ(p.length(), 20);
    EXPECT_THROW(Prefix::parse("10.0.0.0"), ParseError);
    EXPECT_THROW(Prefix::parse("10.0.0.0/33"), ParseError);
    EXPECT_THROW(Prefix::parse("10.0.0.0/-1"), ParseError);
    EXPECT_THROW(Prefix::parse("10.0.0.0/"), ParseError);
}

TEST(Prefix, ContainsAddresses) {
    const auto p = Prefix::parse("41.186.0.0/16");
    EXPECT_TRUE(p.contains(Ipv4Address::parse("41.186.255.255")));
    EXPECT_TRUE(p.contains(Ipv4Address::parse("41.186.0.0")));
    EXPECT_FALSE(p.contains(Ipv4Address::parse("41.187.0.0")));
    EXPECT_FALSE(p.contains(Ipv4Address::parse("42.186.0.0")));
}

TEST(Prefix, ContainsSubPrefixes) {
    const auto outer = Prefix::parse("10.0.0.0/8");
    EXPECT_TRUE(outer.contains(Prefix::parse("10.20.0.0/16")));
    EXPECT_TRUE(outer.contains(outer));
    EXPECT_FALSE(outer.contains(Prefix::parse("11.0.0.0/8")));
    EXPECT_FALSE(Prefix::parse("10.20.0.0/16").contains(outer));
}

TEST(Prefix, SizeAndAddressAt) {
    const auto p = Prefix::parse("192.0.2.0/24");
    EXPECT_EQ(p.size(), 256U);
    EXPECT_EQ(p.addressAt(0).toString(), "192.0.2.0");
    EXPECT_EQ(p.addressAt(255).toString(), "192.0.2.255");
    EXPECT_THROW(p.addressAt(256), PreconditionError);
}

TEST(Prefix, DefaultRouteCoversEverything) {
    const Prefix all{Ipv4Address{0}, 0};
    EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
    EXPECT_TRUE(all.contains(Ipv4Address::parse("255.255.255.255")));
}

TEST(Prefix, SplitsIntoChildren) {
    const auto p = Prefix::parse("10.0.0.0/8");
    const auto [low, high] = p.split();
    EXPECT_EQ(low.toString(), "10.0.0.0/9");
    EXPECT_EQ(high.toString(), "10.128.0.0/9");
    EXPECT_THROW(Prefix::parse("1.2.3.4/32").split(), PreconditionError);
}

} // namespace
} // namespace aio::net
