#include "netbase/crc32c.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <string_view>
#include <vector>

namespace aio::net {
namespace {

std::vector<std::byte> bytesOf(std::string_view text) {
    std::vector<std::byte> out(text.size());
    std::memcpy(out.data(), text.data(), text.size());
    return out;
}

TEST(Crc32c, StandardCheckValue) {
    // The universal CRC-32C check string.
    EXPECT_EQ(crc32c(bytesOf("123456789")), 0xE3069283U);
}

TEST(Crc32c, Rfc3720AllZeros) {
    // RFC 3720 §B.4: 32 bytes of zeroes.
    const std::vector<std::byte> data(32, std::byte{0x00});
    EXPECT_EQ(crc32c(data), 0x8A9136AAU);
}

TEST(Crc32c, Rfc3720AllOnes) {
    // RFC 3720 §B.4: 32 bytes of ones.
    const std::vector<std::byte> data(32, std::byte{0xFF});
    EXPECT_EQ(crc32c(data), 0x62A8AB43U);
}

TEST(Crc32c, Rfc3720Incrementing) {
    // RFC 3720 §B.4: 32 bytes of incrementing 00..1f.
    std::vector<std::byte> data(32);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(i);
    }
    EXPECT_EQ(crc32c(data), 0x46DD794EU);
}

TEST(Crc32c, Rfc3720Decrementing) {
    // RFC 3720 §B.4: 32 bytes of decrementing 1f..00.
    std::vector<std::byte> data(32);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(31 - i);
    }
    EXPECT_EQ(crc32c(data), 0x113FDB5CU);
}

TEST(Crc32c, Rfc3720IscsiReadCommand) {
    // RFC 3720 §B.4: the 48-byte iSCSI SCSI Read (10) command PDU.
    const std::array<std::uint8_t, 48> pdu = {
        0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00, //
        0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, //
        0x28, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
    };
    std::vector<std::byte> data(pdu.size());
    std::memcpy(data.data(), pdu.data(), pdu.size());
    EXPECT_EQ(crc32c(data), 0xD9963A56U);
}

TEST(Crc32c, EmptyInput) {
    EXPECT_EQ(crc32c({}), 0x00000000U);
}

TEST(Crc32c, StreamingMatchesOneShot) {
    // Any split of the input through the streaming API must agree with
    // the one-shot call — the codec checksums header and payload through
    // separate calls.
    const auto data = bytesOf("the observatory coordinator crashed here");
    const std::uint32_t whole = crc32c(data);
    for (std::size_t cut = 0; cut <= data.size(); ++cut) {
        std::uint32_t state = crc32cInit();
        state = crc32cUpdate(state, std::span{data}.first(cut));
        state = crc32cUpdate(state, std::span{data}.subspan(cut));
        EXPECT_EQ(crc32cFinish(state), whole) << "cut at " << cut;
    }
}

TEST(Crc32c, SingleBitFlipsAlwaysChangeTheSum) {
    // The journal's torn-tail-vs-corruption policy leans on every 1-bit
    // flip being visible; CRCs guarantee that for any burst < 32 bits.
    std::vector<std::byte> data(64);
    std::iota(reinterpret_cast<std::uint8_t*>(data.data()),
              reinterpret_cast<std::uint8_t*>(data.data()) + data.size(),
              std::uint8_t{0x40});
    const std::uint32_t clean = crc32c(data);
    for (std::size_t byteIdx = 0; byteIdx < data.size(); ++byteIdx) {
        for (int bit = 0; bit < 8; ++bit) {
            data[byteIdx] ^= static_cast<std::byte>(1 << bit);
            EXPECT_NE(crc32c(data), clean)
                << "flip at byte " << byteIdx << " bit " << bit;
            data[byteIdx] ^= static_cast<std::byte>(1 << bit);
        }
    }
}

} // namespace
} // namespace aio::net
