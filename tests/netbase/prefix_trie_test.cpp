#include "netbase/prefix_trie.hpp"

#include <gtest/gtest.h>

#include "netbase/rng.hpp"

namespace aio::net {
namespace {

TEST(PrefixTrie, EmptyTrieMatchesNothing) {
    PrefixTrie<int> trie;
    EXPECT_TRUE(trie.empty());
    EXPECT_FALSE(trie.lookup(Ipv4Address::parse("10.0.0.1")).has_value());
}

TEST(PrefixTrie, LongestPrefixWins) {
    PrefixTrie<int> trie;
    trie.insert(Prefix::parse("10.0.0.0/8"), 8);
    trie.insert(Prefix::parse("10.1.0.0/16"), 16);
    trie.insert(Prefix::parse("10.1.2.0/24"), 24);

    EXPECT_EQ(trie.lookup(Ipv4Address::parse("10.1.2.3")).value(), 24);
    EXPECT_EQ(trie.lookup(Ipv4Address::parse("10.1.3.1")).value(), 16);
    EXPECT_EQ(trie.lookup(Ipv4Address::parse("10.2.0.1")).value(), 8);
    EXPECT_FALSE(trie.lookup(Ipv4Address::parse("11.0.0.1")).has_value());
}

TEST(PrefixTrie, DefaultRouteActsAsFallback) {
    PrefixTrie<int> trie;
    trie.insert(Prefix{Ipv4Address{0}, 0}, -1);
    trie.insert(Prefix::parse("196.0.0.0/8"), 196);
    EXPECT_EQ(trie.lookup(Ipv4Address::parse("1.1.1.1")).value(), -1);
    EXPECT_EQ(trie.lookup(Ipv4Address::parse("196.1.1.1")).value(), 196);
}

TEST(PrefixTrie, InsertOverwritesExisting) {
    PrefixTrie<int> trie;
    trie.insert(Prefix::parse("10.0.0.0/8"), 1);
    trie.insert(Prefix::parse("10.0.0.0/8"), 2);
    EXPECT_EQ(trie.size(), 1U);
    EXPECT_EQ(trie.lookup(Ipv4Address::parse("10.0.0.1")).value(), 2);
}

TEST(PrefixTrie, ExactMatchDistinguishesLengths) {
    PrefixTrie<int> trie;
    trie.insert(Prefix::parse("10.0.0.0/8"), 8);
    EXPECT_TRUE(trie.exact(Prefix::parse("10.0.0.0/8")).has_value());
    EXPECT_FALSE(trie.exact(Prefix::parse("10.0.0.0/9")).has_value());
    EXPECT_FALSE(trie.exact(Prefix::parse("10.0.0.0/7")).has_value());
}

TEST(PrefixTrie, HandlesHostRoutes) {
    PrefixTrie<int> trie;
    trie.insert(Prefix::parse("41.186.10.5/32"), 42);
    EXPECT_EQ(trie.lookup(Ipv4Address::parse("41.186.10.5")).value(), 42);
    EXPECT_FALSE(trie.lookup(Ipv4Address::parse("41.186.10.6")).has_value());
}

TEST(PrefixTrie, ForEachVisitsAllInAddressOrder) {
    PrefixTrie<int> trie;
    trie.insert(Prefix::parse("41.0.0.0/8"), 1);
    trie.insert(Prefix::parse("10.0.0.0/8"), 2);
    trie.insert(Prefix::parse("10.1.0.0/16"), 3);
    std::vector<std::string> seen;
    trie.forEach([&](const Prefix& p, int) { seen.push_back(p.toString()); });
    ASSERT_EQ(seen.size(), 3U);
    EXPECT_EQ(seen[0], "10.0.0.0/8");
    EXPECT_EQ(seen[1], "10.1.0.0/16");
    EXPECT_EQ(seen[2], "41.0.0.0/8");
}

// Property test: the trie must agree with a brute-force linear scan of the
// stored prefixes for random address queries.
TEST(PrefixTrie, MatchesBruteForceOnRandomWorkload) {
    Rng rng{20250704};
    PrefixTrie<std::size_t> trie;
    std::vector<Prefix> prefixes;
    for (std::size_t i = 0; i < 300; ++i) {
        const int length = static_cast<int>(rng.uniformRange(4, 28));
        const Prefix p{Ipv4Address{static_cast<std::uint32_t>(rng.next())},
                       length};
        if (trie.exact(p).has_value()) {
            continue; // duplicate prefix: keep first mapping
        }
        prefixes.push_back(p);
        trie.insert(p, prefixes.size() - 1);
    }
    for (int q = 0; q < 2000; ++q) {
        const Ipv4Address addr{static_cast<std::uint32_t>(rng.next())};
        // Brute force: longest matching prefix, last-inserted wins on ties
        // (insert overwrites, and duplicates were filtered above).
        int bestLen = -1;
        std::optional<std::size_t> expected;
        for (std::size_t i = 0; i < prefixes.size(); ++i) {
            if (prefixes[i].contains(addr) && prefixes[i].length() > bestLen) {
                bestLen = prefixes[i].length();
                expected = i;
            }
        }
        EXPECT_EQ(trie.lookup(addr), expected)
            << "query " << addr.toString();
    }
}

} // namespace
} // namespace aio::net
