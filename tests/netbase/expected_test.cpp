#include "netbase/expected.hpp"

#include <gtest/gtest.h>

#include <string>

#include "netbase/error.hpp"

namespace aio::net {
namespace {

Expected<int> parsePositive(int v) {
    if (v <= 0) {
        return Error::precondition("must be positive");
    }
    return v;
}

TEST(Expected, ValueAndErrorStates) {
    const auto ok = parsePositive(7);
    ASSERT_TRUE(ok.hasValue());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(ok.value(), 7);
    EXPECT_EQ(*ok, 7);
    EXPECT_EQ(ok.valueOrRaise(), 7);

    const auto bad = parsePositive(-1);
    ASSERT_FALSE(bad.hasValue());
    EXPECT_EQ(bad.error().kind, Error::Kind::Precondition);
    EXPECT_EQ(bad.error().message, "must be positive");
}

TEST(Expected, AccessorsGuardTheWrongState) {
    const auto ok = parsePositive(1);
    EXPECT_THROW((void)ok.error(), PreconditionError);
    const auto bad = parsePositive(0);
    EXPECT_THROW((void)bad.value(), PreconditionError);
}

TEST(Expected, RaiseMapsKindsToExceptionTaxonomy) {
    EXPECT_THROW(Error::precondition("p").raise(), PreconditionError);
    EXPECT_THROW(Error::notFound("n").raise(), NotFoundError);
    EXPECT_THROW(Error::parse("x").raise(), ParseError);
    EXPECT_THROW((Error{Error::Kind::Transient, "t"}.raise()),
                 TransientError);

    const Expected<int> bad{Error::notFound("missing")};
    EXPECT_THROW((void)bad.valueOrRaise(), NotFoundError);
}

TEST(Expected, MoveOnlyPayloadsWork) {
    struct MoveOnly {
        explicit MoveOnly(std::string v) : value(std::move(v)) {}
        MoveOnly(MoveOnly&&) = default;
        MoveOnly& operator=(MoveOnly&&) = default;
        std::string value;
    };
    Expected<MoveOnly> moved{MoveOnly{"payload"}};
    const MoveOnly out = std::move(moved).valueOrRaise();
    EXPECT_EQ(out.value, "payload");
}

TEST(ExpectedVoid, OkAndError) {
    const auto ok = Expected<void>::ok();
    EXPECT_TRUE(ok.hasValue());
    const Expected<void> bad{Error::parse("nope")};
    ASSERT_FALSE(bad.hasValue());
    EXPECT_EQ(bad.error().kind, Error::Kind::Parse);
}

} // namespace
} // namespace aio::net
