// Parameterized property sweep over the LPM trie: correctness against a
// brute-force oracle across prefix-length mixes and table densities.

#include <gtest/gtest.h>

#include <optional>

#include "netbase/prefix_trie.hpp"
#include "netbase/rng.hpp"

namespace aio::net {
namespace {

struct TrieCase {
    int minLength;
    int maxLength;
    int tableSize;
    std::uint64_t seed;
};

class TrieSweep : public ::testing::TestWithParam<TrieCase> {};

TEST_P(TrieSweep, AgreesWithBruteForce) {
    const TrieCase params = GetParam();
    Rng rng{params.seed};
    PrefixTrie<std::size_t> trie;
    std::vector<Prefix> prefixes;
    for (int i = 0; i < params.tableSize; ++i) {
        const int length = static_cast<int>(
            rng.uniformRange(params.minLength, params.maxLength));
        const Prefix p{Ipv4Address{static_cast<std::uint32_t>(rng.next())},
                       length};
        if (trie.exact(p).has_value()) {
            continue;
        }
        prefixes.push_back(p);
        trie.insert(p, prefixes.size() - 1);
    }
    ASSERT_EQ(trie.size(), prefixes.size());
    for (int q = 0; q < 1500; ++q) {
        const Ipv4Address addr{static_cast<std::uint32_t>(rng.next())};
        int bestLen = -1;
        std::optional<std::size_t> expected;
        for (std::size_t i = 0; i < prefixes.size(); ++i) {
            if (prefixes[i].contains(addr) &&
                prefixes[i].length() > bestLen) {
                bestLen = prefixes[i].length();
                expected = i;
            }
        }
        ASSERT_EQ(trie.lookup(addr), expected) << addr.toString();
    }
}

TEST_P(TrieSweep, EveryStoredPrefixSelfMatches) {
    const TrieCase params = GetParam();
    Rng rng{params.seed ^ 0x5555};
    PrefixTrie<int> trie;
    std::vector<Prefix> prefixes;
    for (int i = 0; i < params.tableSize; ++i) {
        const int length = static_cast<int>(
            rng.uniformRange(params.minLength, params.maxLength));
        const Prefix p{Ipv4Address{static_cast<std::uint32_t>(rng.next())},
                       length};
        trie.insert(p, length);
        prefixes.push_back(p);
    }
    for (const Prefix& p : prefixes) {
        // A lookup of any address inside p matches a prefix at least as
        // long as p.
        const auto hit = trie.lookup(p.addressAt(p.size() / 2));
        ASSERT_TRUE(hit.has_value());
        ASSERT_GE(*hit, p.length());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TrieSweep,
    ::testing::Values(TrieCase{8, 8, 64, 1},     // uniform /8s
                      TrieCase{24, 24, 512, 2},  // uniform /24s
                      TrieCase{0, 32, 256, 3},   // full length spread
                      TrieCase{16, 24, 2048, 4}, // dense routing table
                      TrieCase{30, 32, 128, 5}));// host routes

} // namespace
} // namespace aio::net
