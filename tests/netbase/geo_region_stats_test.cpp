#include <gtest/gtest.h>

#include <limits>

#include "netbase/error.hpp"
#include "netbase/geo.hpp"
#include "netbase/region.hpp"
#include "netbase/stats.hpp"

namespace aio::net {
namespace {

TEST(Geo, HaversineKnownDistances) {
    // Kigali -> Cape Town is roughly 3,700 km.
    const GeoPoint kigali{-1.94, 30.06};
    const GeoPoint capeTown{-33.92, 18.42};
    const double km = haversineKm(kigali, capeTown);
    EXPECT_NEAR(km, 3700.0, 200.0);
    // Symmetric and zero on identical points.
    EXPECT_DOUBLE_EQ(haversineKm(kigali, capeTown),
                     haversineKm(capeTown, kigali));
    EXPECT_NEAR(haversineKm(kigali, kigali), 0.0, 1e-9);
}

TEST(Geo, FiberDelayScalesWithDistance) {
    EXPECT_NEAR(fiberDelayMs(197.2, 1.0), 1.0, 0.01);
    EXPECT_GT(fiberDelayMs(1000.0, 1.5), fiberDelayMs(1000.0, 1.0));
    // Lagos <-> London RTT should be tens of milliseconds.
    const GeoPoint lagos{6.52, 3.37};
    const GeoPoint london{51.5, -0.12};
    const double rtt = rttMs(lagos, london);
    EXPECT_GT(rtt, 45.0);
    EXPECT_LT(rtt, 110.0);
}

TEST(Region, MacroMappingIsConsistent) {
    for (const Region r : africanRegions()) {
        EXPECT_TRUE(isAfrican(r));
        EXPECT_EQ(macroOf(r), MacroRegion::Africa);
    }
    EXPECT_FALSE(isAfrican(Region::Europe));
    EXPECT_EQ(macroOf(Region::NorthAmerica), MacroRegion::NorthAmerica);
    EXPECT_EQ(africanRegions().size(), 5U);
    EXPECT_EQ(allRegions().size(), 9U);
    EXPECT_EQ(allMacroRegions().size(), 5U);
}

TEST(CountryTable, ContainsWholeOfAfrica) {
    const auto& world = CountryTable::world();
    EXPECT_EQ(world.african().size(), 54U);
    EXPECT_TRUE(world.contains("RW"));
    EXPECT_TRUE(world.contains("ZA"));
    EXPECT_TRUE(world.contains("NG"));
    EXPECT_FALSE(world.contains("XX"));
    EXPECT_THROW(world.byCode("XX"), NotFoundError);
}

TEST(CountryTable, RegionLookupsArePartition) {
    const auto& world = CountryTable::world();
    std::size_t total = 0;
    for (const Region r : allRegions()) {
        total += world.inRegion(r).size();
    }
    EXPECT_EQ(total, world.all().size());
}

TEST(CountryTable, KnownFacts) {
    const auto& world = CountryTable::world();
    const auto& rwanda = world.byCode("RW");
    EXPECT_EQ(rwanda.region, Region::EasternAfrica);
    EXPECT_FALSE(rwanda.coastal);
    const auto& ghana = world.byCode("GH");
    EXPECT_EQ(ghana.region, Region::WesternAfrica);
    EXPECT_TRUE(ghana.coastal);
    const auto& za = world.byCode("ZA");
    EXPECT_EQ(za.region, Region::SouthernAfrica);
}

TEST(Stats, BasicMoments) {
    const std::vector<double> v = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(v), 3.0);
    EXPECT_DOUBLE_EQ(median(v), 3.0);
    EXPECT_DOUBLE_EQ(minOf(v), 1.0);
    EXPECT_DOUBLE_EQ(maxOf(v), 5.0);
    EXPECT_NEAR(stddev(v), 1.4142, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
    const std::vector<double> v = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
    const std::vector<double> one = {7.0};
    EXPECT_DOUBLE_EQ(percentile(one, 90), 7.0);
    const std::vector<double> empty;
    EXPECT_THROW(percentile(empty, 50), PreconditionError);
}

TEST(Stats, QuantilesRejectNaNAndInf) {
    // NaN is unordered under operator<, so sorting a poisoned sample
    // produces an arbitrary permutation and a silently wrong quantile —
    // the guard turns that into a loud precondition failure.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    const std::vector<double> withNan = {1.0, nan, 3.0};
    const std::vector<double> withInf = {1.0, inf, 3.0};
    const std::vector<double> withNegInf = {-inf, 2.0, 3.0};
    EXPECT_THROW((void)percentile(withNan, 50), PreconditionError);
    EXPECT_THROW((void)median(withNan), PreconditionError);
    EXPECT_THROW((void)empiricalCdf(withNan), PreconditionError);
    EXPECT_THROW((void)percentile(withInf, 50), PreconditionError);
    EXPECT_THROW((void)median(withNegInf), PreconditionError);

    // The guard must not reject legitimate extremes.
    const std::vector<double> fine = {-1e308, 0.0, 1e308};
    EXPECT_DOUBLE_EQ(median(fine), 0.0);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
    const std::vector<double> v = {5, 1, 3, 2, 4};
    const auto cdf = empiricalCdf(v);
    ASSERT_EQ(cdf.size(), 5U);
    EXPECT_DOUBLE_EQ(cdf.front().first, 1.0);
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
}

TEST(Stats, TextTableRendersAligned) {
    TextTable table({"Region", "Share"});
    table.addRow({"Western Africa", TextTable::pct(0.123)});
    table.addRow({"East", TextTable::num(4.5, 2)});
    const std::string out = table.render();
    EXPECT_NE(out.find("Region"), std::string::npos);
    EXPECT_NE(out.find("12.3%"), std::string::npos);
    EXPECT_NE(out.find("4.50"), std::string::npos);
    EXPECT_THROW(table.addRow({"too-few"}), PreconditionError);
}

} // namespace
} // namespace aio::net
