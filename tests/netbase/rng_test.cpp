#include "netbase/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "netbase/error.hpp"

namespace aio::net {
namespace {

TEST(Rng, SameSeedSameStream) {
    Rng a{42};
    Rng b{42};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a{1};
    Rng b{2};
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIntStaysInBounds) {
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.uniformInt(17), 17U);
    }
    EXPECT_THROW(rng.uniformInt(0), PreconditionError);
}

TEST(Rng, UniformIntCoversAllValues) {
    Rng rng{7};
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(rng.uniformInt(10));
    }
    EXPECT_EQ(seen.size(), 10U);
}

TEST(Rng, UniformRangeInclusive) {
    Rng rng{11};
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniformRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= (v == -3);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, Uniform01MeanIsHalf) {
    Rng rng{13};
    double sum = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
    Rng rng{17};
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        hits += rng.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ExponentialMeanConverges) {
    Rng rng{19};
    double sum = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += rng.exponential(5.0);
    }
    EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ParetoRespectsMinimum) {
    Rng rng{23};
    for (int i = 0; i < 10000; ++i) {
        EXPECT_GE(rng.pareto(2.0, 3.0), 3.0);
    }
}

TEST(Rng, PoissonMeanConverges) {
    Rng rng{29};
    long total = 0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i) {
        total += rng.poisson(2.5);
    }
    EXPECT_NEAR(static_cast<double>(total) / n, 2.5, 0.1);
    EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, GaussianMoments) {
    Rng rng{31};
    double sum = 0.0;
    double sumSq = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.gaussian(10.0, 2.0);
        sum += x;
        sumSq += x * x;
    }
    const double m = sum / n;
    EXPECT_NEAR(m, 10.0, 0.1);
    EXPECT_NEAR(sumSq / n - m * m, 4.0, 0.2);
}

TEST(Rng, WeightedIndexFollowsWeights) {
    Rng rng{37};
    const std::vector<double> weights = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    constexpr int n = 40000;
    for (int i = 0; i < n; ++i) {
        ++counts[rng.weightedIndex(weights)];
    }
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
    const std::vector<double> zero = {0.0, 0.0};
    EXPECT_THROW(rng.weightedIndex(zero), PreconditionError);
}

TEST(Rng, ShufflePreservesElements) {
    Rng rng{41};
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = v;
    rng.shuffle(shuffled);
    std::ranges::sort(shuffled);
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStreams) {
    Rng parent{99};
    Rng childA = parent.fork(1);
    Rng childB = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (childA.next() == childB.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, PickThrowsOnEmpty) {
    Rng rng{43};
    const std::vector<int> empty;
    EXPECT_THROW(rng.pick(empty), PreconditionError);
}

TEST(Rng, StateRoundTripsExactly) {
    Rng rng{47};
    // Advance somewhere mid-stream before capturing.
    for (int i = 0; i < 57; ++i) {
        (void)rng.next();
    }
    const Rng::State saved = rng.state();
    Rng other{1};
    other.restore(saved);
    EXPECT_EQ(other.state(), saved);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(other.next(), rng.next());
    }
}

TEST(Rng, RestoreContinuesTheStreamNotRestartsIt) {
    // The restored generator must produce the *continuation* of the
    // stream, not replay draws from before the capture point.
    Rng rng{53};
    std::vector<std::uint64_t> before;
    for (int i = 0; i < 10; ++i) {
        before.push_back(rng.next());
    }
    const Rng::State mid = rng.state();
    std::vector<std::uint64_t> after;
    for (int i = 0; i < 10; ++i) {
        after.push_back(rng.next());
    }

    Rng resumed{999};
    resumed.restore(mid);
    for (int i = 0; i < 10; ++i) {
        const std::uint64_t v = resumed.next();
        EXPECT_EQ(v, after[static_cast<std::size_t>(i)]);
        EXPECT_NE(v, before[static_cast<std::size_t>(i)]);
    }
}

TEST(Rng, StateSurvivesHighLevelDraws) {
    // Captures must be transparent to every distribution, not just
    // next(): uniform01/gaussian/poisson draw different word counts.
    Rng rng{59};
    const Rng::State saved = rng.state();
    std::vector<double> expect;
    for (int i = 0; i < 20; ++i) {
        expect.push_back(rng.uniform01());
        expect.push_back(rng.gaussian(0.0, 1.0));
        expect.push_back(static_cast<double>(rng.poisson(3.0)));
    }
    Rng resumed{60};
    resumed.restore(saved);
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(resumed.uniform01(), expect[3 * i]);
        EXPECT_EQ(resumed.gaussian(0.0, 1.0), expect[3 * i + 1]);
        EXPECT_EQ(static_cast<double>(resumed.poisson(3.0)),
                  expect[3 * i + 2]);
    }
}

TEST(Rng, RestoreRejectsAllZeroState) {
    Rng rng{61};
    EXPECT_THROW(rng.restore(Rng::State{0, 0, 0, 0}), PreconditionError);
}

} // namespace
} // namespace aio::net
