#include <gtest/gtest.h>

#include <vector>

#include "stream/ingestor.hpp"

namespace aio::stream {
namespace {

DeliveredEvent copyOf(std::uint64_t probe, std::uint32_t session,
                      std::uint64_t seq, std::uint32_t slot,
                      std::uint64_t ordinal) {
    DeliveredEvent copy;
    copy.event.probe = probe;
    copy.event.session = session;
    copy.event.seq = seq;
    copy.event.country = "KE";
    copy.event.slot = slot;
    copy.event.value = 1.0;
    copy.deliveryDay = static_cast<double>(slot) / 4.0;
    copy.ordinal = ordinal;
    return copy;
}

EventLogHeader header() {
    EventLogHeader h;
    h.samplesPerDay = 4.0;
    h.windowDays = 30.0;
    return h;
}

struct Harness {
    persist::MemorySink sink;
    EventLogWriter log;
    StreamIngestor ingestor;

    explicit Harness(StreamConfig config = {})
        : log(sink, header()), ingestor(config) {}

    [[nodiscard]] std::size_t loggedEvents() {
        return readEventLog(sink.bytes()).events.size();
    }
};

TEST(StreamIngestor, AcceptsFreshEventsInDeliveryOrder) {
    Harness h;
    std::vector<DeliveredEvent> copies;
    for (std::uint32_t i = 0; i < 10; ++i) {
        copies.push_back(copyOf(0, 0, i, i, i));
    }
    h.ingestor.capture(copies, h.log);
    EXPECT_EQ(h.loggedEvents(), 10U);
    EXPECT_EQ(h.ingestor.stats().eventsAccepted, 10U);
    EXPECT_EQ(h.ingestor.stats().duplicatesDropped, 0U);
}

TEST(StreamIngestor, DropsExactRedeliveries) {
    Harness h;
    const std::vector<DeliveredEvent> copies{
        copyOf(0, 0, 0, 0, 0), copyOf(0, 0, 1, 1, 1),
        copyOf(0, 0, 0, 0, 2), // the at-least-once second copy
        copyOf(0, 0, 1, 1, 3)};
    h.ingestor.capture(copies, h.log);
    EXPECT_EQ(h.loggedEvents(), 2U);
    EXPECT_EQ(h.ingestor.stats().duplicatesDropped, 2U);
}

TEST(StreamIngestor, ReconnectOpensNewSessionAndCounts) {
    Harness h;
    const std::vector<DeliveredEvent> copies{
        copyOf(0, 0, 0, 0, 0), copyOf(0, 0, 1, 1, 1),
        copyOf(0, 1, 0, 2, 2), // session 1 restarts seq at 0
        copyOf(0, 1, 1, 3, 3)};
    h.ingestor.capture(copies, h.log);
    EXPECT_EQ(h.loggedEvents(), 4U);
    EXPECT_EQ(h.ingestor.stats().reconnects, 1U);
}

TEST(StreamIngestor, PreReconnectStragglersWithinRetentionAreAccepted) {
    Harness h;
    const std::vector<DeliveredEvent> copies{
        copyOf(0, 0, 0, 0, 0),
        copyOf(0, 1, 0, 2, 1), // reconnect already visible...
        copyOf(0, 0, 1, 1, 2), // ...then a session-0 straggler arrives
    };
    h.ingestor.capture(copies, h.log);
    EXPECT_EQ(h.loggedEvents(), 3U);
    EXPECT_EQ(h.ingestor.stats().staleSessions, 0U);
}

TEST(StreamIngestor, SessionsBeyondRetentionAreStale) {
    Harness h;
    const std::vector<DeliveredEvent> copies{
        copyOf(0, 20, 0, 0, 0), // probe far into its session history
        copyOf(0, 2, 0, 1, 1),  // ancient residue
    };
    h.ingestor.capture(copies, h.log);
    EXPECT_EQ(h.loggedEvents(), 1U);
    EXPECT_EQ(h.ingestor.stats().staleSessions, 1U);
    EXPECT_EQ(h.ingestor.stats().reconnects, 20U);
}

TEST(StreamIngestor, SequenceBelowDedupeWindowIsDroppedConservatively) {
    StreamConfig config;
    config.dedupeWindow = 4;
    Harness h{config};
    std::vector<DeliveredEvent> copies;
    for (std::uint32_t i = 0; i < 10; ++i) {
        copies.push_back(copyOf(0, 0, i, i, i));
    }
    copies.push_back(copyOf(0, 0, 1, 1, 10)); // far below the floor now
    h.ingestor.capture(copies, h.log);
    EXPECT_EQ(h.loggedEvents(), 10U);
    EXPECT_EQ(h.ingestor.stats().duplicatesDropped, 1U);
}

TEST(StreamIngestor, FullRingCountsBackpressureStalls) {
    StreamConfig config;
    config.queueCapacity = 4;
    Harness h{config};
    std::vector<DeliveredEvent> copies;
    for (std::uint32_t i = 0; i < 20; ++i) {
        copies.push_back(copyOf(0, 0, i, i, i));
    }
    h.ingestor.capture(copies, h.log);
    EXPECT_EQ(h.loggedEvents(), 20U);
    EXPECT_EQ(h.ingestor.stats().backpressureStalls, 4U);
}

TEST(StreamIngestor, StallCountIsAPureFunctionOfTheSchedule) {
    StreamConfig config;
    config.queueCapacity = 4;
    std::vector<DeliveredEvent> copies;
    for (std::uint32_t i = 0; i < 17; ++i) {
        copies.push_back(copyOf(0, 0, i, i, i));
    }
    Harness a{config};
    Harness b{config};
    a.ingestor.capture(copies, a.log);
    b.ingestor.capture(copies, b.log);
    EXPECT_EQ(a.ingestor.stats(), b.ingestor.stats());
}

TEST(StreamIngestor, DedupeStatePersistsAcrossCaptureCalls) {
    Harness h;
    const std::vector<DeliveredEvent> first{copyOf(0, 0, 0, 0, 0)};
    const std::vector<DeliveredEvent> second{copyOf(0, 0, 0, 0, 1)};
    h.ingestor.capture(first, h.log);
    h.ingestor.capture(second, h.log);
    EXPECT_EQ(h.loggedEvents(), 1U);
    EXPECT_EQ(h.ingestor.stats().duplicatesDropped, 1U);
}

} // namespace
} // namespace aio::stream
