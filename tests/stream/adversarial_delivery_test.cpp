#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "resilience/fault.hpp"
#include "stream/ingestor.hpp"
#include "stream/online_radar.hpp"
#include "stream_world.hpp"

namespace aio::stream {
namespace {

using testing::batchDetections;
using testing::emittedEvents;
using testing::world;

constexpr double kWindowDays = 10.0;

/// Faulty-but-within-watermark delivery: drops (with redelivery),
/// duplicates, reordering and churn bursts, all with skew strictly inside
/// the default one-day watermark and no beyond-watermark lateness.
resilience::StreamFaultConfig withinWatermarkFaults() {
    resilience::StreamFaultConfig config;
    config.dropProb = 0.1;
    config.duplicateProb = 0.15;
    config.reorderProb = 0.3;
    config.maxSkewDays = 0.5; // < StreamConfig::watermarkDays == 1.0
    config.lateProb = 0.0;
    config.churnBurstProb = 0.4;
    config.churnReconnects = 3;
    return config;
}

struct PipelineResult {
    std::vector<outage::RadarDetection> detections;
    DegradationReport degradation;
    DeliveryStats delivery;
};

/// Full capture pipeline for one seed: emit ground truth, run it through
/// the fault schedule, ingest the delivered copies (ring + dedupe), then
/// replay the resulting event log through the online detector.
PipelineResult
runPipeline(std::uint64_t seed,
            const resilience::StreamFaultConfig& faultConfig) {
    auto events = emittedEvents(kWindowDays, seed);
    const double samplesPerDay = world().radar.samplesPerDay;

    net::Rng faultRng{seed * 7919 + 1};
    const auto probes = GroundTruthSource::probeIds();
    const resilience::StreamFaultInjector faults{
        faultConfig, probes, kWindowDays, faultRng};

    PipelineResult result;
    const auto delivered = simulateDelivery(std::move(events), faults,
                                            samplesPerDay, faultRng,
                                            &result.delivery);

    persist::MemorySink sink;
    EventLogHeader header;
    header.samplesPerDay = samplesPerDay;
    header.windowDays = kWindowDays;
    EventLogWriter log{sink, header};
    StreamIngestor ingestor{StreamConfig{}};
    ingestor.capture(delivered, log);

    OnlineRadarDetector detector{world().radar, StreamConfig{},
                                 kWindowDays};
    detector.ingestAll(readEventLog(sink.bytes()).events);
    result.detections = detector.finalDetections();
    result.degradation = detector.degradation();
    result.degradation.merge(ingestor.stats());
    return result;
}

TEST(AdversarialDelivery, WithinWatermarkChaosIsByteIdenticalToBatch) {
    // The determinism contract of the tentpole: ANY delivery schedule
    // whose skew stays inside the watermark — drops with redelivery,
    // duplicates, reordering, probe churn — converges to the exact batch
    // detections, bit for bit.
    for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL, 44ULL, 55ULL}) {
        const PipelineResult result =
            runPipeline(seed, withinWatermarkFaults());
        EXPECT_EQ(result.detections, batchDetections(kWindowDays, seed))
            << "seed " << seed;
        EXPECT_TRUE(result.degradation.lossless()) << "seed " << seed;
        EXPECT_EQ(result.degradation.lateDropped, 0U);
        EXPECT_EQ(result.degradation.sealedGaps, 0U);
    }
}

TEST(AdversarialDelivery, FaultsActuallyFired) {
    // Guard against a vacuous pass: the schedule above must really have
    // duplicated, reordered and churned.
    const PipelineResult result = runPipeline(11, withinWatermarkFaults());
    EXPECT_GT(result.delivery.duplicates, 0U);
    EXPECT_GT(result.delivery.reordered, 0U);
    EXPECT_GT(result.delivery.reconnects, 0U);
    EXPECT_GT(result.degradation.duplicatesDropped, 0U);
    EXPECT_GT(result.degradation.reconnects, 0U);
}

TEST(AdversarialDelivery, BeyondWatermarkLatenessIsCountedNotMerged) {
    resilience::StreamFaultConfig config = withinWatermarkFaults();
    config.lateProb = 0.2;
    config.lateDelayDays = 3.0; // > watermarkDays == 1.0: will miss seals
    const PipelineResult result = runPipeline(11, config);
    EXPECT_GT(result.degradation.lateDropped, 0U);
    EXPECT_FALSE(result.degradation.lossless());
    EXPECT_FALSE(result.degradation.lateByCountry.empty());
    std::uint64_t perCountry = 0;
    for (const auto& [country, count] : result.degradation.lateByCountry) {
        EXPECT_FALSE(country.empty());
        perCountry += count;
    }
    EXPECT_EQ(perCountry, result.degradation.lateDropped);
}

TEST(AdversarialDelivery, DegradedRunStillDetectsTheHardOutage) {
    // Losing beyond-watermark slots degrades the series but must not
    // blind the detector to KE's 90% three-day shutdown.
    resilience::StreamFaultConfig config = withinWatermarkFaults();
    config.lateProb = 0.1;
    config.lateDelayDays = 3.0;
    const double windowDays = 30.0;

    auto events = emittedEvents(windowDays, 11);
    net::Rng faultRng{99};
    const resilience::StreamFaultInjector faults{
        config, GroundTruthSource::probeIds(), windowDays, faultRng};
    const auto delivered =
        simulateDelivery(std::move(events), faults,
                         world().radar.samplesPerDay, faultRng, nullptr);

    persist::MemorySink sink;
    EventLogHeader header;
    header.samplesPerDay = world().radar.samplesPerDay;
    header.windowDays = windowDays;
    EventLogWriter log{sink, header};
    StreamIngestor ingestor{StreamConfig{}};
    ingestor.capture(delivered, log);

    OnlineRadarDetector detector{world().radar, StreamConfig{}, windowDays};
    detector.ingestAll(readEventLog(sink.bytes()).events);
    bool sawKenya = false;
    for (const auto& detection : detector.finalDetections()) {
        if (detection.country == "KE" && detection.startDay >= 9.0 &&
            detection.startDay <= 12.0) {
            sawKenya = true;
        }
    }
    EXPECT_TRUE(sawKenya);
}

TEST(AdversarialDelivery, DeliveryScheduleIsDeterministic) {
    const resilience::StreamFaultConfig config = withinWatermarkFaults();
    auto once = [&] {
        auto events = emittedEvents(kWindowDays, 7);
        net::Rng rng{123};
        const resilience::StreamFaultInjector faults{
            config, GroundTruthSource::probeIds(), kWindowDays, rng};
        return simulateDelivery(std::move(events), faults,
                                world().radar.samplesPerDay, rng, nullptr);
    };
    EXPECT_EQ(once(), once());
}

} // namespace
} // namespace aio::stream
