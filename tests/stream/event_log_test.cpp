#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "netbase/error.hpp"
#include "stream/event_log.hpp"

namespace aio::stream {
namespace {

MeasurementEvent sampleEvent(std::uint32_t slot) {
    MeasurementEvent event;
    event.probe = 3;
    event.session = 1;
    event.seq = slot;
    event.country = "KE";
    event.slot = slot;
    event.value = 10.0 + slot;
    return event;
}

EventLogHeader sampleHeader() {
    EventLogHeader header;
    header.configDigest = 0xfeedbeef;
    header.samplesPerDay = 4.0;
    header.windowDays = 30.0;
    return header;
}

TEST(EventLog, RoundTripsHeaderAndEvents) {
    persist::MemorySink sink;
    EventLogWriter writer{sink, sampleHeader()};
    for (std::uint32_t slot = 0; slot < 5; ++slot) {
        writer.append(sampleEvent(slot));
    }
    const EventLogView view = readEventLog(sink.bytes());
    EXPECT_EQ(view.header, sampleHeader());
    ASSERT_EQ(view.events.size(), 5U);
    EXPECT_FALSE(view.tornTail);
    for (std::uint32_t slot = 0; slot < 5; ++slot) {
        EXPECT_EQ(view.events[slot], sampleEvent(slot));
    }
    // Boundaries are strictly increasing record edges ending at the log
    // size (the last record is intact).
    ASSERT_EQ(view.boundaries.size(), 5U);
    EXPECT_EQ(view.boundaries.back(), sink.size());
}

TEST(EventLog, TornTailIsTruncatedAndFlagged) {
    persist::MemorySink sink;
    EventLogWriter writer{sink, sampleHeader()};
    for (std::uint32_t slot = 0; slot < 3; ++slot) {
        writer.append(sampleEvent(slot));
    }
    const auto full = sink.bytes();
    // Chop mid-way through the final record: the classic power cut.
    const std::size_t cut = full.size() - 5;
    const EventLogView view = readEventLog(full.subspan(0, cut));
    EXPECT_TRUE(view.tornTail);
    EXPECT_EQ(view.events.size(), 2U);
}

TEST(EventLog, BitFlipIsRefusedAsCorruption) {
    persist::MemorySink sink;
    EventLogWriter writer{sink, sampleHeader()};
    writer.append(sampleEvent(0));
    writer.append(sampleEvent(1));
    std::vector<std::byte> bytes{sink.bytes().begin(), sink.bytes().end()};
    bytes[bytes.size() / 2] ^= std::byte{0x40};
    EXPECT_THROW((void)readEventLog(bytes), net::CorruptionError);
}

TEST(EventLog, MissingHeaderIsRefused) {
    // A log whose first record is an event (writer skipped the header)
    // has no provenance and must not replay.
    persist::MemorySink sink;
    persist::RecordWriter raw{sink};
    persist::ByteWriter payload;
    payload.u8(2); // event record type
    encodeEvent(payload, sampleEvent(0));
    (void)raw.append(payload.bytes());
    EXPECT_THROW((void)readEventLog(sink.bytes()), net::CorruptionError);
    EXPECT_THROW((void)readEventLog({}), net::CorruptionError);
}

TEST(EventLog, SecondHeaderIsRefused) {
    persist::MemorySink sink;
    EventLogWriter writer{sink, sampleHeader()};
    persist::RecordWriter raw{sink};
    persist::ByteWriter payload;
    payload.u8(1); // header record type
    payload.u32(1);
    payload.u64(0);
    payload.f64(4.0);
    payload.f64(30.0);
    (void)raw.append(payload.bytes());
    EXPECT_THROW((void)readEventLog(sink.bytes()), net::CorruptionError);
}

TEST(EventLog, UnknownRecordTypeIsRefused) {
    persist::MemorySink sink;
    EventLogWriter writer{sink, sampleHeader()};
    persist::RecordWriter raw{sink};
    persist::ByteWriter payload;
    payload.u8(77);
    (void)raw.append(payload.bytes());
    EXPECT_THROW((void)readEventLog(sink.bytes()), net::CorruptionError);
}

TEST(EventLog, WriterValidatesHeader) {
    persist::MemorySink sink;
    EventLogHeader bad = sampleHeader();
    bad.windowDays = 0.0;
    EXPECT_THROW((EventLogWriter{sink, bad}), net::PreconditionError);
}

TEST(EventLog, EveryAppendIsDurableThroughABufferingSink) {
    persist::BufferingSink sink;
    EventLogWriter writer{sink, sampleHeader()};
    writer.append(sampleEvent(0));
    // Nothing may linger in the page-cache model: a crash right now
    // must still see both records.
    EXPECT_EQ(sink.pendingBytes(), 0U);
    const EventLogView view = readEventLog(sink.durable());
    EXPECT_EQ(view.events.size(), 1U);
}

} // namespace
} // namespace aio::stream
