#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "netbase/error.hpp"
#include "persist/record.hpp"
#include "stream/consumer.hpp"
#include "stream/event_log.hpp"
#include "stream_world.hpp"

// The acceptance harness for crash-resumable stream consumption,
// mirroring tests/resilience/crash_sweep_test.cpp: kill the consumer at
// every event count, crash its checkpoint sink at and around every
// record boundary, chain continuation journals through double crashes —
// every resumed run must converge to the uninterrupted Outcome exactly.
namespace aio::stream {
namespace {

using testing::emittedEvents;
using testing::world;

/// Everything one sweep seed needs: a bounded event log (four countries,
/// dense checkpoints), the uninterrupted baseline Outcome and its
/// complete checkpoint journal.
struct SweepCase {
    static constexpr double kWindowDays = 6.0;

    StreamConfig stream;
    std::vector<MeasurementEvent> events;
    std::vector<std::byte> log;
    StreamConsumer::Outcome baseline;
    std::vector<std::byte> journal;
    std::vector<std::size_t> boundaries;

    SweepCase(const SweepCase&) = delete;
    SweepCase& operator=(const SweepCase&) = delete;

    explicit SweepCase(std::uint64_t seed) {
        stream.checkpointEveryEvents = 8; // dense for the sweep
        for (MeasurementEvent& event : emittedEvents(kWindowDays, seed)) {
            for (const std::string_view keep : {"KE", "NG", "ZA", "EG"}) {
                if (event.country == keep) {
                    events.push_back(std::move(event));
                    break;
                }
            }
        }
        persist::MemorySink logSink;
        EventLogHeader header;
        header.configDigest =
            streamConfigDigest(world().radar, stream, kWindowDays);
        header.samplesPerDay = world().radar.samplesPerDay;
        header.windowDays = kWindowDays;
        EventLogWriter writer{logSink, header};
        for (const MeasurementEvent& event : events) {
            writer.append(event);
        }
        log.assign(logSink.bytes().begin(), logSink.bytes().end());

        persist::MemorySink journalSink;
        baseline = consumer().run(log, journalSink);
        journal.assign(journalSink.bytes().begin(),
                       journalSink.bytes().end());
        boundaries = persist::scanRecords(journal).boundaries;
    }

    [[nodiscard]] StreamConsumer consumer() const {
        return StreamConsumer{world().radar, stream};
    }
};

class StreamCrashSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamCrashSweep, KillAtEveryEventCountResumesByteIdentical) {
    const SweepCase c{GetParam()};
    ASSERT_TRUE(c.baseline.completed);
    ASSERT_FALSE(c.baseline.detections.empty());
    ASSERT_GT(c.boundaries.size(),
              c.events.size() / c.stream.checkpointEveryEvents);

    for (std::uint64_t kill = 0; kill < c.events.size(); ++kill) {
        persist::MemorySink first;
        const auto killed =
            c.consumer().run(c.log, first, {}, kill);
        ASSERT_FALSE(killed.completed) << "killed after " << kill;
        ASSERT_EQ(killed.eventsProcessed, kill);

        persist::MemorySink second;
        const auto resumed =
            c.consumer().run(c.log, second, first.bytes());
        ASSERT_TRUE(resumed == c.baseline) << "killed after " << kill;
    }
}

TEST_P(StreamCrashSweep, KillingAtTheEventCountCompletesNormally) {
    const SweepCase c{GetParam()};
    persist::MemorySink sink;
    const auto outcome =
        c.consumer().run(c.log, sink, {}, c.events.size());
    EXPECT_TRUE(outcome == c.baseline);
}

TEST_P(StreamCrashSweep, DoubleCrashChainsContinuationJournals) {
    const SweepCase c{GetParam()};
    const std::uint64_t firstKill = c.events.size() / 3;
    const std::uint64_t secondKill = c.events.size() / 4;

    persist::MemorySink first;
    (void)c.consumer().run(c.log, first, {}, firstKill);
    persist::MemorySink second;
    const auto partial =
        c.consumer().run(c.log, second, first.bytes(), secondKill);
    ASSERT_FALSE(partial.completed);

    // The second journal is a continuation (its header re-anchors the
    // offset at the first crash's checkpoint) and must alone carry the
    // run to the baseline.
    persist::MemorySink third;
    const auto resumed = c.consumer().run(c.log, third, second.bytes());
    EXPECT_TRUE(resumed == c.baseline);
}

TEST_P(StreamCrashSweep, ResumeOfACompleteJournalIsIdempotent) {
    const SweepCase c{GetParam()};
    persist::MemorySink sink;
    const auto again = c.consumer().run(c.log, sink, c.journal);
    EXPECT_TRUE(again == c.baseline);
}

TEST_P(StreamCrashSweep, TornJournalTailFallsBackToLastIntactCheckpoint) {
    const SweepCase c{GetParam()};
    // Cut strictly inside each record (the 12-byte frame header makes
    // boundary + 1 always mid-record): the torn tail truncates and the
    // previous checkpoint carries the resume.
    for (std::size_t i = 0; i + 1 < c.boundaries.size(); ++i) {
        const std::size_t cut = c.boundaries[i] + 1;
        persist::MemorySink sink;
        const auto resumed = c.consumer().run(
            c.log, sink, std::span{c.journal}.first(cut));
        ASSERT_TRUE(resumed == c.baseline) << "torn cut at " << cut;
    }
    // Not even the header survived: a fresh start, same destination.
    persist::MemorySink sink;
    const auto fromOne =
        c.consumer().run(c.log, sink, std::span{c.journal}.first(1));
    EXPECT_TRUE(fromOne == c.baseline);
}

TEST_P(StreamCrashSweep, EveryCleanJournalPrefixResumesByteIdentical) {
    const SweepCase c{GetParam()};
    for (const std::size_t cut : c.boundaries) {
        persist::MemorySink sink;
        const auto resumed = c.consumer().run(
            c.log, sink, std::span{c.journal}.first(cut));
        ASSERT_TRUE(resumed == c.baseline) << "clean cut at " << cut;
    }
}

TEST_P(StreamCrashSweep, CrashingSinkLeavesAResumableJournalPrefix) {
    const SweepCase c{GetParam()};
    // The journalling sink dies mid-record at a few depths: the consumer
    // run throws, the surviving bytes are the exact journal prefix, and
    // resuming from the torn prefix reaches the baseline.
    const std::size_t last = c.boundaries.size() - 1;
    for (const std::size_t budget :
         {c.boundaries[0] + 7, c.boundaries[last / 2] + 7,
          c.boundaries[last] - 3}) {
        persist::MemorySink inner;
        persist::CrashingSink dying{inner, budget};
        EXPECT_THROW((void)c.consumer().run(c.log, dying),
                     persist::SinkFailure);
        ASSERT_EQ(inner.size(), budget);
        EXPECT_TRUE(std::ranges::equal(
            inner.bytes(), std::span{c.journal}.first(budget)));

        persist::MemorySink sink;
        const auto resumed = c.consumer().run(c.log, sink, inner.bytes());
        EXPECT_TRUE(resumed == c.baseline) << "sink died at " << budget;
    }
}

TEST_P(StreamCrashSweep, CrashBetweenWriteAndFlushResumesFromDurable) {
    const SweepCase c{GetParam()};
    // Exact-boundary budgets hit the write/flush seam: the last record
    // lands in the OS-cache model, the flush throws, and what a real
    // crash leaves durable is one record short of what was written.
    const std::size_t last = c.boundaries.size() - 1;
    for (const std::size_t idx : {std::size_t{1}, last / 2, last}) {
        persist::BufferingSink buffered;
        persist::CrashingSink dying{buffered, c.boundaries[idx]};
        EXPECT_THROW((void)c.consumer().run(c.log, dying),
                     persist::SinkFailure);
        const auto durable = buffered.durable();
        ASSERT_EQ(durable.size(),
                  idx == 0 ? 0 : c.boundaries[idx - 1]);

        persist::MemorySink sink;
        const auto resumed = c.consumer().run(c.log, sink, durable);
        EXPECT_TRUE(resumed == c.baseline)
            << "flush crash at record " << idx;
    }
}

TEST_P(StreamCrashSweep, MidJournalBitFlipRefusesToResume) {
    const SweepCase c{GetParam()};
    std::vector<std::byte> damaged = c.journal;
    const std::size_t at = c.boundaries[1] + 13;
    damaged[at] ^= std::byte{0x04};
    persist::MemorySink sink;
    EXPECT_THROW((void)c.consumer().run(c.log, sink, damaged),
                 net::CorruptionError);
}

TEST_P(StreamCrashSweep, ContinuationWithoutItsAnchorIsRefused) {
    const SweepCase c{GetParam()};
    // Hand-craft the pathological survivor: a continuation header
    // (resumedAtEvent > 0) whose anchor checkpoint never made it to the
    // sink. Replaying it "fresh" would silently skip the prefix, so the
    // consumer must refuse it as corrupt.
    persist::MemorySink sink;
    persist::RecordWriter writer{sink};
    persist::ByteWriter header;
    header.u8(1); // journal header record
    header.u32(1);
    header.u64(streamConfigDigest(world().radar, c.stream,
                                  SweepCase::kWindowDays));
    header.u64(16); // resumed mid-log...
    (void)writer.append(header.bytes());
    // ...but no checkpoint follows.
    persist::MemorySink out;
    EXPECT_THROW((void)c.consumer().run(c.log, out, sink.bytes()),
                 net::CorruptionError);
}

TEST_P(StreamCrashSweep, JournalFromAForeignConfigIsRefused) {
    const SweepCase c{GetParam()};
    persist::MemorySink sink;
    persist::RecordWriter writer{sink};
    persist::ByteWriter header;
    header.u8(1);
    header.u32(1);
    header.u64(streamConfigDigest(world().radar, c.stream,
                                  SweepCase::kWindowDays) +
               1); // written by a consumer with different knobs
    header.u64(0);
    (void)writer.append(header.bytes());
    persist::MemorySink out;
    EXPECT_THROW((void)c.consumer().run(c.log, out, sink.bytes()),
                 net::PreconditionError);
}

TEST_P(StreamCrashSweep, LogFromAForeignConfigIsRefused) {
    const SweepCase c{GetParam()};
    StreamConfig other = c.stream;
    other.watermarkDays = 2.0; // changes sealing => changes results
    StreamConsumer consumer{world().radar, other};
    persist::MemorySink sink;
    EXPECT_THROW((void)consumer.run(c.log, sink), net::PreconditionError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamCrashSweep,
                         ::testing::Values(101, 202, 303));

} // namespace
} // namespace aio::stream
