#pragma once

#include <string>
#include <vector>

#include "outage/radar.hpp"
#include "stream/source.hpp"
#include "topo/generator.hpp"

namespace aio::stream::testing {

/// Shared world for the stream tests: one generated topology, a batch
/// RadarMonitor over it, and hand-built ground-truth impacts (a hard
/// three-day shutdown in KE and a softer one in NG) that the default
/// radar config detects.
struct StreamWorld {
    topo::Topology topo;
    outage::RadarConfig radar;
    outage::RadarMonitor monitor;
    std::vector<outage::ImpactReport> impacts;

    StreamWorld()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          radar(), monitor(topo, radar) {
        impacts.push_back(impact("KE", 10.0, 0.9, 3.0));
        impacts.push_back(impact("NG", 4.0, 0.7, 2.0));
    }

    static outage::ImpactReport impact(const std::string& country,
                                       double startDay,
                                       double pageLoadLoss,
                                       double outageDays) {
        outage::ImpactReport report;
        report.event.startDay = startDay;
        report.event.durationDays = outageDays;
        report.countries.push_back(
            outage::CountryImpact{country, pageLoadLoss, 0.5, outageDays});
        return report;
    }
};

inline StreamWorld& world() {
    static StreamWorld w;
    return w;
}

/// Batch reference: RadarMonitor::detectAll from a fresh rng seed.
inline std::vector<outage::RadarDetection>
batchDetections(double windowDays, std::uint64_t seed) {
    auto& w = world();
    net::Rng rng{seed};
    return w.monitor.detectAll(windowDays, w.impacts, rng);
}

/// Streaming emission from the same seed: bit-identical series values.
inline std::vector<MeasurementEvent> emittedEvents(double windowDays,
                                                   std::uint64_t seed) {
    auto& w = world();
    net::Rng rng{seed};
    const GroundTruthSource source{w.monitor};
    return source.emit(windowDays, w.impacts, rng);
}

} // namespace aio::stream::testing
