#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/worker_pool.hpp"
#include "netbase/error.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "stream/online_radar.hpp"
#include "stream_world.hpp"

namespace aio::stream {
namespace {

using testing::batchDetections;
using testing::emittedEvents;
using testing::world;

constexpr double kWindowDays = 10.0;
constexpr std::uint64_t kSeed = 42;

OnlineRadarDetector freshDetector(double windowDays = kWindowDays,
                                  obs::MetricsRegistry* metrics = nullptr) {
    return OnlineRadarDetector{world().radar, StreamConfig{}, windowDays,
                               metrics};
}

TEST(OnlineEquivalence, CompleteLogMatchesBatchDetector) {
    const auto events = emittedEvents(kWindowDays, kSeed);
    OnlineRadarDetector detector = freshDetector();
    detector.ingestAll(events);
    EXPECT_EQ(detector.finalDetections(), batchDetections(kWindowDays, kSeed));
    EXPECT_TRUE(detector.degradation().lossless());
    EXPECT_EQ(detector.eventsIngested(), events.size());
}

TEST(OnlineEquivalence, EquivalenceHoldsAcrossSeedsAndWindows) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        for (const double windowDays : {10.0, 20.0}) {
            const auto events = emittedEvents(windowDays, seed);
            OnlineRadarDetector detector = freshDetector(windowDays);
            detector.ingestAll(events);
            EXPECT_EQ(detector.finalDetections(),
                      batchDetections(windowDays, seed))
                << "seed " << seed << " window " << windowDays;
        }
    }
}

TEST(OnlineEquivalence, ShardedIngestionIsByteIdenticalAcrossThreadCounts) {
    const auto events = emittedEvents(kWindowDays, kSeed);
    OnlineRadarDetector reference = freshDetector();
    reference.ingestAll(events);
    const auto referenceState = reference.encodeState();
    for (const int threads : {1, 2, 8}) {
        OnlineRadarDetector detector = freshDetector();
        exec::WorkerPool pool{threads};
        detector.ingestSharded(events, pool);
        EXPECT_EQ(detector.encodeState(), referenceState)
            << threads << " threads";
        EXPECT_EQ(detector.finalDetections(), reference.finalDetections());
        EXPECT_EQ(detector.alerts(), reference.alerts());
        EXPECT_EQ(detector.degradation(), reference.degradation());
    }
}

TEST(OnlineEquivalence, MetricsAreScheduleInvariantUnderAManualClock) {
    const auto events = emittedEvents(kWindowDays, kSeed);
    std::vector<std::string> tables;
    for (const int threads : {1, 2, 8}) {
        obs::ManualClock clock;
        obs::MetricsRegistry registry{&clock};
        OnlineRadarDetector detector =
            freshDetector(kWindowDays, &registry);
        exec::WorkerPool pool{threads};
        detector.ingestSharded(events, pool);
        tables.push_back(registry.json());
    }
    EXPECT_EQ(tables[0], tables[1]);
    EXPECT_EQ(tables[0], tables[2]);
}

TEST(OnlineEquivalence, AlertFiresNearTheOutageStart) {
    // KE's hard shutdown begins at day 10: the provisional alarm must
    // anchor its run there and fire before the full window is ingested.
    const double windowDays = 30.0;
    const auto events = emittedEvents(windowDays, kSeed);
    OnlineRadarDetector detector = freshDetector(windowDays);
    detector.ingestAll(events);
    bool sawKenya = false;
    for (const OnlineAlert& alert : detector.alerts()) {
        if (alert.country != "KE") {
            continue;
        }
        sawKenya = true;
        EXPECT_GE(alert.startDay, 9.0);
        EXPECT_LE(alert.startDay, 12.0);
        EXPECT_GE(alert.detectedAtDay, alert.startDay);
        EXPECT_LT(alert.detectedAtDay, windowDays);
    }
    EXPECT_TRUE(sawKenya);
}

TEST(OnlineEquivalence, StateRoundTripContinuesIdentically) {
    const auto events = emittedEvents(kWindowDays, kSeed);
    const std::size_t half = events.size() / 2;
    OnlineRadarDetector original = freshDetector();
    original.ingestAll({events.data(), half});

    OnlineRadarDetector restored = freshDetector();
    restored.restoreState(original.encodeState());
    EXPECT_EQ(restored.encodeState(), original.encodeState());
    EXPECT_EQ(restored.eventsIngested(), original.eventsIngested());

    original.ingestAll({events.data() + half, events.size() - half});
    restored.ingestAll({events.data() + half, events.size() - half});
    EXPECT_EQ(restored.encodeState(), original.encodeState());
    EXPECT_EQ(restored.finalDetections(), original.finalDetections());
    EXPECT_EQ(restored.finalDetections(), batchDetections(kWindowDays, kSeed));
}

TEST(OnlineEquivalence, RestoreRefusesAForeignConfig) {
    OnlineRadarDetector original = freshDetector();
    original.ingestAll(emittedEvents(kWindowDays, kSeed));
    const auto state = original.encodeState();

    outage::RadarConfig other = world().radar;
    other.dropThreshold = 0.5;
    OnlineRadarDetector foreign{other, StreamConfig{}, kWindowDays};
    EXPECT_THROW(foreign.restoreState(state), net::PreconditionError);

    OnlineRadarDetector narrower = freshDetector(kWindowDays * 2);
    EXPECT_THROW(narrower.restoreState(state), net::PreconditionError);
}

TEST(OnlineEquivalence, RestoreRefusesDamagedState) {
    OnlineRadarDetector original = freshDetector();
    original.ingestAll(emittedEvents(kWindowDays, kSeed));
    auto state = original.encodeState();
    state.pop_back();
    OnlineRadarDetector target = freshDetector();
    EXPECT_THROW(target.restoreState(state), net::CorruptionError);
}

TEST(OnlineEquivalence, DuplicateSlotIsCountedAndFirstValueWins) {
    OnlineRadarDetector detector = freshDetector();
    MeasurementEvent event;
    event.probe = 0;
    event.session = 0;
    event.seq = 0;
    event.country = "KE";
    event.slot = 0;
    event.value = 5.0;
    detector.ingest(event);
    MeasurementEvent dup = event;
    dup.seq = 1;
    dup.value = 99.0; // a conflicting re-measurement of the same slot
    detector.ingest(dup);
    EXPECT_EQ(detector.degradation().duplicateSlots, 1U);
    EXPECT_EQ(detector.eventsIngested(), 2U);
}

TEST(OnlineEquivalence, EventBeyondTheWindowIsRefused) {
    OnlineRadarDetector detector = freshDetector();
    MeasurementEvent event;
    event.country = "KE";
    event.slot = 100000;
    event.value = 1.0;
    EXPECT_THROW(detector.ingest(event), net::PreconditionError);
}

} // namespace
} // namespace aio::stream
