#include "exec/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "netbase/error.hpp"

namespace aio::exec {
namespace {

TEST(WorkerPool, DefaultThreadCountIsAtLeastOne) {
    // hardware_concurrency() may legally report 0; the clamp guarantees a
    // usable pool everywhere.
    EXPECT_GE(WorkerPool::defaultThreadCount(), 1);
    const WorkerPool pool; // must not throw on any hardware
    EXPECT_GE(pool.threadCount(), 1);
}

TEST(WorkerPool, RejectsNonPositiveThreadCounts) {
    EXPECT_THROW(WorkerPool{0}, net::PreconditionError);
    EXPECT_THROW(WorkerPool{-4}, net::PreconditionError);
}

TEST(WorkerPool, CoversEveryIndexExactlyOnce) {
    for (const int threads : {1, 2, 3, 8}) {
        WorkerPool pool{threads};
        constexpr std::size_t kCount = 4096;
        std::vector<std::atomic<int>> visits(kCount);
        pool.parallelFor(kCount, [&](std::size_t i, std::size_t lane) {
            EXPECT_LT(lane, static_cast<std::size_t>(pool.threadCount()));
            visits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < kCount; ++i) {
            EXPECT_EQ(visits[i].load(), 1) << "index " << i;
        }
    }
}

TEST(WorkerPool, HandlesCountsSmallerThanThreadCount) {
    WorkerPool pool{8};
    std::vector<std::atomic<int>> visits(3);
    pool.parallelFor(3, [&](std::size_t i, std::size_t) {
        visits[i].fetch_add(1);
    });
    for (auto& v : visits) {
        EXPECT_EQ(v.load(), 1);
    }
    pool.parallelFor(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(WorkerPool, IsReusableAcrossLoops) {
    WorkerPool pool{4};
    std::atomic<std::uint64_t> sum{0};
    for (int round = 0; round < 16; ++round) {
        sum.store(0);
        pool.parallelFor(1000, [&](std::size_t i, std::size_t) {
            sum.fetch_add(i);
        });
        EXPECT_EQ(sum.load(), 999ULL * 1000 / 2);
    }
}

TEST(WorkerPool, RethrowsFirstExceptionAndStaysUsable) {
    WorkerPool pool{4};
    const auto boom = [](std::size_t i, std::size_t) {
        if (i == 123) {
            throw std::runtime_error{"boom"};
        }
    };
    EXPECT_THROW(pool.parallelFor(1024, boom), std::runtime_error);

    std::atomic<int> count{0};
    pool.parallelFor(256, [&](std::size_t, std::size_t) {
        count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 256);
}

TEST(WorkerPool, PerLaneSlabsNeedNoSynchronization) {
    // The intended usage pattern: each index writes only its own output
    // cell, lanes index per-lane scratch. The result must be independent
    // of the schedule.
    WorkerPool pool{8};
    constexpr std::size_t kCount = 2000;
    std::vector<std::uint64_t> out(kCount, 0);
    std::vector<std::uint64_t> scratch(
        static_cast<std::size_t>(pool.threadCount()), 0);
    pool.parallelFor(kCount, [&](std::size_t i, std::size_t lane) {
        scratch[lane] = i * i; // lane-owned
        out[i] = scratch[lane] + 1;
    });
    for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(out[i], i * i + 1);
    }
}

} // namespace
} // namespace aio::exec
