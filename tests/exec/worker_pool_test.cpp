#include "exec/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "netbase/error.hpp"
#include "obs/clock.hpp"

namespace aio::exec {
namespace {

TEST(WorkerPool, DefaultThreadCountIsAtLeastOne) {
    // hardware_concurrency() may legally report 0; the clamp guarantees a
    // usable pool everywhere.
    EXPECT_GE(WorkerPool::defaultThreadCount(), 1);
    const WorkerPool pool; // must not throw on any hardware
    EXPECT_GE(pool.threadCount(), 1);
}

TEST(WorkerPool, RejectsNonPositiveThreadCounts) {
    EXPECT_THROW(WorkerPool{0}, net::PreconditionError);
    EXPECT_THROW(WorkerPool{-4}, net::PreconditionError);
}

TEST(WorkerPool, CoversEveryIndexExactlyOnce) {
    for (const int threads : {1, 2, 3, 8}) {
        WorkerPool pool{threads};
        constexpr std::size_t kCount = 4096;
        std::vector<std::atomic<int>> visits(kCount);
        pool.parallelFor(kCount, [&](std::size_t i, std::size_t lane) {
            EXPECT_LT(lane, static_cast<std::size_t>(pool.threadCount()));
            visits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < kCount; ++i) {
            EXPECT_EQ(visits[i].load(), 1) << "index " << i;
        }
    }
}

TEST(WorkerPool, HandlesCountsSmallerThanThreadCount) {
    WorkerPool pool{8};
    std::vector<std::atomic<int>> visits(3);
    pool.parallelFor(3, [&](std::size_t i, std::size_t) {
        visits[i].fetch_add(1);
    });
    for (auto& v : visits) {
        EXPECT_EQ(v.load(), 1);
    }
    pool.parallelFor(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(WorkerPool, IsReusableAcrossLoops) {
    WorkerPool pool{4};
    std::atomic<std::uint64_t> sum{0};
    for (int round = 0; round < 16; ++round) {
        sum.store(0);
        pool.parallelFor(1000, [&](std::size_t i, std::size_t) {
            sum.fetch_add(i);
        });
        EXPECT_EQ(sum.load(), 999ULL * 1000 / 2);
    }
}

TEST(WorkerPool, RethrowsFirstExceptionAndStaysUsable) {
    WorkerPool pool{4};
    const auto boom = [](std::size_t i, std::size_t) {
        if (i == 123) {
            throw std::runtime_error{"boom"};
        }
    };
    EXPECT_THROW(pool.parallelFor(1024, boom), std::runtime_error);

    std::atomic<int> count{0};
    pool.parallelFor(256, [&](std::size_t, std::size_t) {
        count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 256);
}

TEST(WorkerPool, PerLaneSlabsNeedNoSynchronization) {
    // The intended usage pattern: each index writes only its own output
    // cell, lanes index per-lane scratch. The result must be independent
    // of the schedule.
    WorkerPool pool{8};
    constexpr std::size_t kCount = 2000;
    std::vector<std::uint64_t> out(kCount, 0);
    std::vector<std::uint64_t> scratch(
        static_cast<std::size_t>(pool.threadCount()), 0);
    pool.parallelFor(kCount, [&](std::size_t i, std::size_t lane) {
        scratch[lane] = i * i; // lane-owned
        out[i] = scratch[lane] + 1;
    });
    for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(out[i], i * i + 1);
    }
}

TEST(WorkerPool, ThrowingTaskDrainsEveryLaneAndRethrowsFirstError) {
    // The chunk-barrier robustness contract: a task that throws must not
    // wedge the pool — remaining chunks are abandoned, every lane
    // drains, the first error comes back typed, and the pool keeps
    // working afterwards. Repeated across many loops so a latent wedge
    // (a lane stuck on the generation barrier) would hang the test.
    WorkerPool pool{4};
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> ran{0};
        EXPECT_THROW(
            pool.parallelFor(512,
                             [&](std::size_t i, std::size_t) {
                                 if (i == 100) {
                                     throw net::TransientError{"boom"};
                                 }
                                 ran.fetch_add(1);
                             }),
            net::TransientError);
        EXPECT_LT(ran.load(), 512);
    }
    std::atomic<int> clean{0};
    pool.parallelFor(64, [&](std::size_t, std::size_t) {
        clean.fetch_add(1);
    });
    EXPECT_EQ(clean.load(), 64);
}

TEST(WorkerPool, CancelTokenStopsLoopWithTypedError) {
    obs::ManualClock clock;
    for (const int threads : {1, 4}) {
        WorkerPool pool{threads};
        // Pre-cancelled token: the loop must stop without covering every
        // index and surface CancelledError on the caller.
        CancelToken cancelled;
        cancelled.cancel();
        std::atomic<std::size_t> ran{0};
        EXPECT_THROW(pool.parallelFor(
                         4096,
                         [&](std::size_t, std::size_t) {
                             ran.fetch_add(1);
                         },
                         &cancelled),
                     net::CancelledError);
        EXPECT_LT(ran.load(), 4096U);

        // Deadline token on a manual clock: quiet until the clock
        // passes the deadline, then typed.
        CancelToken deadline{&clock, clock.nowNanos() + 1000};
        pool.parallelFor(
            64, [&](std::size_t, std::size_t) {}, &deadline);
        clock.advance(2000);
        EXPECT_THROW(pool.parallelFor(
                         4096, [&](std::size_t, std::size_t) {},
                         &deadline),
                     net::CancelledError);

        // A task cancelling the token mid-loop drains cleanly too.
        CancelToken midway;
        EXPECT_THROW(pool.parallelFor(
                         1 << 16,
                         [&](std::size_t i, std::size_t) {
                             if (i == 7) {
                                 midway.cancel();
                             }
                         },
                         &midway),
                     net::CancelledError);

        // Null token and a quiet token behave identically to no token.
        CancelToken quiet;
        std::atomic<std::size_t> covered{0};
        pool.parallelFor(
            500,
            [&](std::size_t, std::size_t) { covered.fetch_add(1); },
            &quiet);
        EXPECT_EQ(covered.load(), 500U);
    }
}

TEST(WorkerPool, NestedLoopOnMultiThreadPoolFailsTypedNotWedged) {
    WorkerPool pool{4};
    // A task that re-enters parallelFor on its own pool must get a
    // typed precondition failure (propagated as the loop's first
    // error), never a deadlock.
    EXPECT_THROW(pool.parallelFor(8,
                                  [&](std::size_t, std::size_t) {
                                      pool.parallelFor(
                                          4,
                                          [](std::size_t, std::size_t) {});
                                  }),
                 net::PreconditionError);
    // The pool survives the violation.
    std::atomic<int> ran{0};
    pool.parallelFor(32, [&](std::size_t, std::size_t) {
        ran.fetch_add(1);
    });
    EXPECT_EQ(ran.load(), 32);
}

TEST(WorkerPool, SingleThreadPoolStaysReentrant) {
    // The 1-thread inline path has no barrier to wedge and remains the
    // sequential reference schedule — nesting it is legal.
    WorkerPool pool{1};
    std::size_t total = 0;
    pool.parallelFor(4, [&](std::size_t, std::size_t) {
        pool.parallelFor(3,
                         [&](std::size_t, std::size_t) { ++total; });
    });
    EXPECT_EQ(total, 12U);
}

} // namespace
} // namespace aio::exec
