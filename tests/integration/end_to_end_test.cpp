// Integration tests: whole-stack scenarios that exercise the generation,
// routing, physical, measurement, dependency and observatory layers
// together — the pipelines the bench harness runs, with invariants
// asserted at each joint.

#include <gtest/gtest.h>

#include <set>

#include "core/observatory.hpp"
#include "core/setcover.hpp"
#include "core/studies.hpp"
#include "core/whatif.hpp"
#include "measure/scanner.hpp"
#include "outage/radar.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    measure::TracerouteEngine engine;
    phys::CableRegistry registry;
    net::Rng mapRng;
    phys::PhysicalLinkMap linkMap;
    dns::ResolverEcosystem resolvers;
    content::ContentCatalog catalog;
    outage::ImpactAnalyzer analyzer;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), engine(topo, oracle),
          registry(phys::CableRegistry::africanDefaults()), mapRng(5),
          linkMap(topo, registry, mapRng),
          resolvers(topo, dns::DnsConfig::defaults(), 31),
          catalog(topo, content::ContentConfig::defaults(), 47),
          analyzer(topo, linkMap, resolvers, catalog) {}
};

World& world() {
    static World w;
    return w;
}

TEST(EndToEnd, March2024CutPropagatesThroughEveryLayer) {
    auto& w = world();
    // Physical: the event fails subsea links.
    outage::OutageEvent event;
    event.type = outage::OutageType::CableCut;
    event.macroRegion = net::MacroRegion::Africa;
    event.durationDays = 21.0;
    for (const auto name : {"WACS", "MainOne", "SAT-3", "ACE"}) {
        event.cutCables.push_back(w.registry.byName(name));
    }
    net::Rng rng{1};
    const auto filter = w.analyzer.filterFor(event, rng);
    EXPECT_GT(filter.disabledLinkCount(), 20U);

    // Routing: reachability shrinks but never violates valley-freeness.
    const route::PathOracle degraded{w.topo, filter};
    int lost = 0;
    const auto african = w.topo.africanAses();
    for (std::size_t i = 0; i < african.size(); i += 5) {
        for (std::size_t j = 2; j < african.size(); j += 37) {
            const bool before = w.oracle.reachable(african[i], african[j]);
            const bool after = degraded.reachable(african[i], african[j]);
            EXPECT_TRUE(before || !after) << "reachability appeared";
            lost += (before && !after) ? 1 : 0;
        }
    }
    EXPECT_GT(lost, 0);

    // Dependencies: page loads fail where DNS or content went dark.
    const auto report = w.analyzer.assess(event, rng);
    EXPECT_GE(report.impactedCountries().size(), 5U);

    // Detection: Radar recovers the event for a hard-hit country.
    const outage::RadarMonitor radar{w.topo};
    std::string hardest;
    double worst = 0.0;
    for (const auto& impact : report.countries) {
        if (impact.pageLoadLoss > worst &&
            impact.effectiveOutageDays > 1.0) {
            worst = impact.pageLoadLoss;
            hardest = impact.country;
        }
    }
    ASSERT_FALSE(hardest.empty());
    const auto series = radar.seriesFor(hardest, 60.0, {report}, rng);
    EXPECT_FALSE(radar.detect(series).empty());
}

TEST(EndToEnd, ObservatoryCampaignConsistentWithSetCover) {
    auto& w = world();
    // Set-cover says these ASNs see every IXP; a campaign launched from
    // probes in exactly those ASes should detect most of them.
    const core::VantageSelector selector{w.topo};
    const auto cover = selector.minimalIxpCover();
    ASSERT_TRUE(cover.complete);

    core::ProbeFleet fleet;
    int serial = 0;
    for (const auto as : cover.chosenAses) {
        core::Probe probe;
        probe.id = "cover-" + std::to_string(++serial);
        probe.hostAs = as;
        probe.countryCode = w.topo.as(as).countryCode;
        probe.availability = 1.0;
        fleet.add(std::move(probe));
    }
    const measure::IxpDetector detector{
        w.topo, measure::IxpKnowledgeBase::full(w.topo)};
    const core::Observatory obs{w.topo, w.engine, detector,
                                std::move(fleet)};
    net::Rng rng{2};
    const auto result = obs.runIxpDiscovery(rng);
    // Probing customers of members from member ASes crosses most fabrics.
    EXPECT_GT(result.africanIxpCount(w.topo), 50U);
}

TEST(EndToEnd, ScannerIxpGapExplainedByBgpAbsence) {
    auto& w = world();
    // The CAIDA-style hitlist can only ever see advertised LANs: its IXP
    // coverage is bounded by the advertised share — the §6.1 root cause.
    net::Rng rng{3};
    const measure::ResponsivenessModel model{
        w.topo, measure::ResponsivenessConfig{}, 77};
    const measure::HitlistBuilder builder{w.topo, model};
    const measure::PingScanner ping{w.topo, model};
    const auto caida = builder.buildCaidaStyle(rng);
    const auto outcome = ping.scan(caida);

    std::size_t advertised = 0;
    for (const auto ix : w.topo.africanIxps()) {
        advertised += w.topo.ixp(ix).lanInGlobalTable ? 1 : 0;
    }
    std::size_t observedAfrican = 0;
    for (const auto ix : outcome.observedIxps) {
        EXPECT_TRUE(w.topo.ixp(ix).lanInGlobalTable);
        observedAfrican += net::isAfrican(w.topo.ixp(ix).region) ? 1 : 0;
    }
    EXPECT_LE(observedAfrican, advertised);
}

TEST(EndToEnd, WhatIfPipelineIsDeterministic) {
    auto& w = world();
    const core::WhatIfEngine a{w.topo, w.registry,
                               dns::DnsConfig::defaults(),
                               content::ContentConfig::defaults()};
    const core::WhatIfEngine b{w.topo, w.registry,
                               dns::DnsConfig::defaults(),
                               content::ContentConfig::defaults()};
    const std::vector<std::string> cut = {"SEACOM", "EASSy"};
    const auto ra = a.assess(a.makeCutEvent(cut));
    const auto rb = b.assess(b.makeCutEvent(cut));
    ASSERT_EQ(ra.countries.size(), rb.countries.size());
    for (std::size_t i = 0; i < ra.countries.size(); ++i) {
        EXPECT_EQ(ra.countries[i].country, rb.countries[i].country);
        EXPECT_DOUBLE_EQ(ra.countries[i].pageLoadLoss,
                         rb.countries[i].pageLoadLoss);
        EXPECT_DOUBLE_EQ(ra.countries[i].effectiveOutageDays,
                         rb.countries[i].effectiveOutageDays);
    }
}

TEST(EndToEnd, EastCoastCutHitsEasternAfrica) {
    auto& w = world();
    const core::WhatIfEngine engine{w.topo, w.registry,
                                    dns::DnsConfig::defaults(),
                                    content::ContentConfig::defaults()};
    const std::vector<std::string> eastCut = {"SEACOM", "EASSy", "EIG",
                                              "AAE-1", "DARE1"};
    const auto report = engine.assess(engine.makeCutEvent(eastCut));
    std::set<net::Region> hitRegions;
    for (const auto& country : report.impactedCountries()) {
        hitRegions.insert(
            net::CountryTable::world().byCode(country).region);
    }
    EXPECT_TRUE(hitRegions.contains(net::Region::EasternAfrica));
    // The west-coast cut and east-coast cut hit different sets.
    const std::vector<std::string> westCut = {"WACS", "MainOne", "SAT-3",
                                              "ACE"};
    const auto westReport = engine.assess(engine.makeCutEvent(westCut));
    const auto westImpacted = westReport.impactedCountries();
    const auto eastImpacted = report.impactedCountries();
    const std::set<std::string> west(westImpacted.begin(),
                                     westImpacted.end());
    const std::set<std::string> east(eastImpacted.begin(),
                                     eastImpacted.end());
    EXPECT_NE(west, east);
}

TEST(EndToEnd, FullRadarPipelineOverTwoYearWindow) {
    auto& w = world();
    outage::OutageConfig cfg;
    cfg.windowYears = 0.5; // keep the test fast
    const outage::OutageEngine engine{w.topo, w.registry, cfg};
    net::Rng rng{4};
    const auto events = engine.generateWindow(rng);
    std::vector<outage::ImpactReport> impacts;
    for (const auto& event : events) {
        if (event.macroRegion == net::MacroRegion::Africa) {
            impacts.push_back(w.analyzer.assess(event, rng));
        }
    }
    ASSERT_FALSE(impacts.empty());
    const outage::RadarMonitor radar{w.topo};
    const auto detections =
        radar.detectAll(cfg.windowYears * 365.0, impacts, rng);
    // Every detection corresponds to a country that some event impacted.
    std::set<std::string> impactedCountries;
    for (const auto& report : impacts) {
        for (const auto& impact : report.countries) {
            if (impact.effectiveOutageDays > 0.0) {
                impactedCountries.insert(impact.country);
            }
        }
    }
    for (const auto& detection : detections) {
        EXPECT_TRUE(impactedCountries.contains(detection.country))
            << detection.country << " detected without ground truth";
    }
}

} // namespace
} // namespace aio
