#include "service/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "netbase/error.hpp"
#include "obs/clock.hpp"
#include "persist/record.hpp"
#include "service/ledger.hpp"
#include "service/service.hpp"
#include "service_test_util.hpp"

// The named-workload registry behind the service API: the legacy
// RequestKind enum is a shim over the same registry (byte-identical
// responses and ledger journals), cost defaults live on the workload
// attribute so the admission estimate and the billed charge share one
// seam, and the new plan/estimate workloads ride the same admission
// ladder as the builtins.
namespace aio::service {
namespace {

using testutil::cableCuts;
using testutil::queryRequest;
using testutil::quotaFor;
using testutil::sweepRequest;
using testutil::tinySnapshot;

constexpr const char* kQuestionText = "question frontdoor demo\n"
                                      "kind content-locality\n"
                                      "top-sites 10\n"
                                      "budget-usd 40\n"
                                      "end\n";

ServiceRequest namedRequest(std::string workload, std::string tenant) {
    ServiceRequest request;
    request.workload = std::move(workload);
    request.tenant = std::move(tenant);
    return request;
}

TEST(WorkloadRegistry, BuiltinsCarryTheirAttributes) {
    const AdmissionConfig config;
    const WorkloadRegistry registry = WorkloadRegistry::builtins(config);
    ASSERT_EQ(registry.size(), 5u);

    const WorkloadInfo* query = registry.find("query");
    ASSERT_NE(query, nullptr);
    EXPECT_FALSE(query->heavy);
    EXPECT_EQ(query->defaultCostMb, config.queryCostMb);
    EXPECT_EQ(query->deadline, DeadlinePolicy::Optional);

    const WorkloadInfo* sweep = registry.find("sweep");
    ASSERT_NE(sweep, nullptr);
    EXPECT_TRUE(sweep->heavy);
    EXPECT_TRUE(sweep->perScenario);

    const WorkloadInfo* plan = registry.find("plan");
    ASSERT_NE(plan, nullptr);
    EXPECT_TRUE(plan->heavy);
    EXPECT_EQ(plan->deadline, DeadlinePolicy::Required);

    EXPECT_EQ(registry.find("nonsense"), nullptr);
    EXPECT_THROW((void)registry.handler("nonsense"), net::NotFoundError);

    // Cost resolution: explicit costMb wins; otherwise the attribute,
    // scaled per scenario for batch workloads.
    ServiceRequest request = sweepRequest("acme", cableCuts({"WACS"}));
    request.kind = RequestKind::Sweep;
    EXPECT_DOUBLE_EQ(registry.resolveCostMb(request),
                     config.sweepCostMbPerScenario);
    request.scenarios = cableCuts({"WACS", "SAT-3"});
    EXPECT_DOUBLE_EQ(registry.resolveCostMb(request),
                     2.0 * config.sweepCostMbPerScenario);
    request.costMb = 9.5;
    EXPECT_DOUBLE_EQ(registry.resolveCostMb(request), 9.5);
}

TEST(ObservatoryService, NamedDispatchMatchesTheLegacyEnumByteForByte) {
    const auto snapshot = tinySnapshot(31);
    obs::ManualClock legacyClock;
    obs::ManualClock namedClock;
    persist::MemorySink legacyJournal;
    persist::MemorySink namedJournal;
    ObservatoryService legacy{snapshot, {}, &legacyClock, nullptr,
                              &legacyJournal};
    ObservatoryService named{snapshot, {}, &namedClock, nullptr,
                             &namedJournal};
    legacy.registerTenant(quotaFor("acme"));
    named.registerTenant(quotaFor("acme"));

    // Legacy side speaks the enum (workload empty); named side names the
    // builtin and leaves the enum at its default to prove the name wins.
    std::vector<ServiceRequest> viaEnum{
        queryRequest("acme", 0, 1),
        sweepRequest("acme", cableCuts({"WACS"})),
        sweepRequest("acme", cableCuts({"WACS", "SAT-3"}))};
    std::vector<ServiceRequest> viaName;
    for (const char* workload : {"query", "whatif", "sweep"}) {
        viaName.push_back(namedRequest(workload, "acme"));
    }
    viaName[0].src = 0;
    viaName[0].dst = 1;
    viaName[1].scenarios = cableCuts({"WACS"});
    viaName[2].scenarios = cableCuts({"WACS", "SAT-3"});

    for (std::size_t i = 0; i < viaEnum.size(); ++i) {
        auto legacyFuture = legacy.submit(viaEnum[i]);
        auto namedFuture = named.submit(viaName[i]);
        ASSERT_EQ(legacy.drain(), 1u);
        ASSERT_EQ(named.drain(), 1u);
        const ServiceResponse a = legacyFuture.get();
        const ServiceResponse b = namedFuture.get();
        ASSERT_EQ(a.status, ResponseStatus::Ok) << "request " << i;
        EXPECT_EQ(b.status, a.status) << "request " << i;
        EXPECT_EQ(b.seq, a.seq);
        EXPECT_EQ(b.nextHop, a.nextHop);
        EXPECT_EQ(b.reachable, a.reachable);
        EXPECT_DOUBLE_EQ(b.chargedUsd, a.chargedUsd);
        ASSERT_EQ(a.sweep.has_value(), b.sweep.has_value());
        if (a.sweep) {
            ASSERT_EQ(b.sweep->scenarios.size(), a.sweep->scenarios.size());
            for (std::size_t s = 0; s < a.sweep->scenarios.size(); ++s) {
                EXPECT_EQ(b.sweep->scenarios[s].scenario,
                          a.sweep->scenarios[s].scenario);
            }
        }
    }

    EXPECT_DOUBLE_EQ(named.admission().spentUsd("acme"),
                     legacy.admission().spentUsd("acme"));
    // The write-ahead ledgers agree byte for byte: the shim changed
    // nothing about what gets charged or journaled.
    const auto namedBytes = namedJournal.bytes();
    const auto legacyBytes = legacyJournal.bytes();
    EXPECT_TRUE(std::ranges::equal(namedBytes, legacyBytes));
}

TEST(ObservatoryService, EstimateAndBillingShareTheWorkloadCostSeam) {
    const ServiceConfig config;
    const auto snapshot = tinySnapshot(31);
    obs::ManualClock clock;
    persist::MemorySink journal;
    ObservatoryService service{snapshot, config, &clock, nullptr,
                               &journal};
    service.registerTenant(quotaFor("acme"));

    // costMb deliberately left 0: resolution happens on the registry
    // attribute, so the pre-admission estimate and the billed charge
    // cannot disagree.
    ServiceRequest estimate = namedRequest("estimate", "acme");
    estimate.questionText = kQuestionText;
    EXPECT_DOUBLE_EQ(service.admission().costMbFor(estimate),
                     config.admission.estimateCostMb);

    ServiceRequest planned = namedRequest("plan", "acme");
    planned.questionText = kQuestionText;
    planned.deadlineNanos = clock.nowNanos() + 60'000'000'000ULL;
    EXPECT_DOUBLE_EQ(service.admission().costMbFor(planned),
                     config.admission.planCostMb);

    auto estimateFuture = service.submit(estimate);
    auto planFuture = service.submit(planned);
    ASSERT_EQ(service.drain(), 2u);
    ASSERT_EQ(estimateFuture.get().status, ResponseStatus::Ok);
    ASSERT_EQ(planFuture.get().status, ResponseStatus::Ok);

    const auto replayed = TenantLedger::replay(journal.bytes());
    const auto it = replayed.tenants.find("acme");
    ASSERT_NE(it, replayed.tenants.end());
    EXPECT_EQ(it->second.charges, 2u);
    EXPECT_DOUBLE_EQ(it->second.peakMb + it->second.offPeakMb,
                     config.admission.estimateCostMb +
                         config.admission.planCostMb);
}

TEST(ObservatoryService, UnknownWorkloadIsATypedReject) {
    const auto snapshot = tinySnapshot(31);
    obs::ManualClock clock;
    ObservatoryService service{snapshot, {}, &clock};
    service.registerTenant(quotaFor("acme"));

    auto future = service.submit(namedRequest("nonsense", "acme"));
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ResponseStatus::Rejected);
    EXPECT_EQ(response.reject, RejectReason::UnknownWorkload);
    EXPECT_EQ(service.drain(), 0u);
    // A typed reject is free: nothing was admitted, nothing billed.
    EXPECT_DOUBLE_EQ(service.admission().spentUsd("acme"), 0.0);
}

TEST(ObservatoryService, PlanWorkloadEnforcesItsDeadlinePolicy) {
    const auto snapshot = tinySnapshot(31);
    obs::ManualClock clock;
    ObservatoryService service{snapshot, {}, &clock};
    service.registerTenant(quotaFor("acme"));

    ServiceRequest bare = namedRequest("plan", "acme");
    bare.questionText = kQuestionText;
    auto rejected = service.submit(bare);
    EXPECT_EQ(rejected.get().reject, RejectReason::DeadlineUnmeetable);

    ServiceRequest withDeadline = bare;
    withDeadline.deadlineNanos = clock.nowNanos() + 60'000'000'000ULL;
    auto future = service.submit(withDeadline);
    ASSERT_EQ(service.drain(), 1u);
    const ServiceResponse response = future.get();
    ASSERT_EQ(response.status, ResponseStatus::Ok) << response.error;
    ASSERT_TRUE(response.plan.has_value());
    ASSERT_TRUE(response.report.has_value());
    EXPECT_FALSE(response.plan->tasks.empty());
    EXPECT_TRUE(response.report->withinBound);
    EXPECT_FALSE(response.report->answer.rows.empty());

    // A malformed question is an execution failure with the typed
    // line/field parse message, not a crash and not a reject.
    ServiceRequest garbled = withDeadline;
    garbled.questionText = "question q\ntop-sites ten\nend\n";
    auto failed = service.submit(garbled);
    ASSERT_EQ(service.drain(), 1u);
    const ServiceResponse failure = failed.get();
    EXPECT_EQ(failure.status, ResponseStatus::Failed);
    EXPECT_NE(failure.error.find("line 2"), std::string::npos)
        << failure.error;
}

TEST(ObservatoryService, CustomWorkloadsRegisterBeforeFirstSubmission) {
    const auto snapshot = tinySnapshot(31);
    obs::ManualClock clock;
    ObservatoryService service{snapshot, {}, &clock};
    service.registerTenant(quotaFor("acme"));

    service.registerWorkload(
        {.name = "echo", .heavy = false, .defaultCostMb = 0.01},
        [](const WorkloadContext&, const ServiceRequest&,
           ServiceResponse& response) { response.nextHop = 42; });
    EXPECT_NE(service.workloads().find("echo"), nullptr);

    auto future = service.submit(namedRequest("echo", "acme"));
    ASSERT_EQ(service.drain(), 1u);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_EQ(response.nextHop, 42);
    EXPECT_GT(response.chargedUsd, 0.0);

    // Registration is a configuration-time act: after the first
    // submission the dispatch table is frozen.
    EXPECT_THROW(service.registerWorkload({.name = "late",
                                           .defaultCostMb = 0.01},
                                          [](const WorkloadContext&,
                                             const ServiceRequest&,
                                             ServiceResponse&) {}),
                 net::PreconditionError);
}

} // namespace
} // namespace aio::service
