#include "service/admission.hpp"

#include <gtest/gtest.h>

#include "netbase/error.hpp"
#include "obs/metrics.hpp"
#include "service_test_util.hpp"

// The admission ladder in isolation: typed rejections in documented
// precedence order (unknown tenant, dead deadline, full queue, heavy
// shed at the depth watermark, heavy shed at the byte watermark, budget)
// and write-side metering through the tenant's TariffMeter.
namespace aio::service {
namespace {

using testutil::queryRequest;
using testutil::quotaFor;
using testutil::sweepRequest;

AdmissionConfig smallConfig() {
    AdmissionConfig config;
    config.queueCapacity = 4;
    config.shedQueueDepth = 2;
    config.shedResidentBytes = 1000;
    config.retryAfterNanos = 500;
    return config;
}

TEST(AdmissionConfig, ValidateRejectsEachBadKnob) {
    const auto rejects = [](auto mutate) {
        AdmissionConfig config;
        mutate(config);
        EXPECT_THROW(config.validate(), net::PreconditionError);
    };
    rejects([](auto& c) { c.queueCapacity = 0; });
    rejects([](auto& c) { c.shedQueueDepth = 0; });
    rejects([](auto& c) { c.shedQueueDepth = c.queueCapacity + 1; });
    rejects([](auto& c) { c.retryAfterNanos = 0; });
    rejects([](auto& c) { c.queryCostMb = -1.0; });
    rejects([](auto& c) { c.whatIfCostMb = -0.5; });
    rejects([](auto& c) { c.sweepCostMbPerScenario = -2.0; });
    EXPECT_NO_THROW(AdmissionConfig{}.validate());
}

TEST(AdmissionController, LadderRejectsInDocumentedOrder) {
    AdmissionController admission{smallConfig(), nullptr};
    admission.registerTenant(quotaFor("acme"));
    const auto query = queryRequest("acme", 0, 1);
    const auto heavy =
        sweepRequest("acme", testutil::cableCuts({"WACS", "SEACOM"}));

    // Unknown tenant outranks everything, even a full queue.
    auto decision =
        admission.decide(queryRequest("ghost", 0, 1), 0, 99, 0);
    EXPECT_FALSE(decision.admitted);
    EXPECT_EQ(decision.reason, RejectReason::UnknownTenant);
    EXPECT_EQ(decision.retryAfterNanos, 0u);

    // A deadline at or before "now" is unmeetable regardless of load.
    auto dead = query;
    dead.deadlineNanos = 100;
    decision = admission.decide(dead, 100, 0, 0);
    EXPECT_EQ(decision.reason, RejectReason::DeadlineUnmeetable);
    EXPECT_EQ(decision.retryAfterNanos, 0u);

    // Full queue rejects light and heavy alike, with a retry hint.
    decision = admission.decide(query, 0, 4, 0);
    EXPECT_EQ(decision.reason, RejectReason::QueueFull);
    EXPECT_EQ(decision.retryAfterNanos, 500u);

    // At the depth watermark only heavy kinds shed.
    decision = admission.decide(heavy, 0, 2, 0);
    EXPECT_EQ(decision.reason, RejectReason::Overloaded);
    EXPECT_EQ(decision.retryAfterNanos, 500u);
    EXPECT_TRUE(admission.decide(query, 0, 2, 0).admitted);

    // At the byte watermark only heavy kinds shed.
    decision = admission.decide(heavy, 0, 0, 1000);
    EXPECT_EQ(decision.reason, RejectReason::MemoryPressure);
    EXPECT_EQ(decision.retryAfterNanos, 500u);
    EXPECT_TRUE(admission.decide(query, 0, 0, 1000).admitted);
}

TEST(AdmissionController, ZeroByteWatermarkDisablesMemoryShedding) {
    auto config = smallConfig();
    config.shedResidentBytes = 0;
    AdmissionController admission{config, nullptr};
    admission.registerTenant(quotaFor("acme"));
    const auto heavy = sweepRequest("acme", testutil::cableCuts({"ACE"}));
    EXPECT_TRUE(admission.decide(heavy, 0, 0, 1ULL << 40).admitted);
}

TEST(AdmissionController, AdmissionChargesTheTenantMeter) {
    auto config = smallConfig();
    config.queryCostMb = 2.0; // flat default pricing: $0.01/MB
    AdmissionController admission{config, nullptr};
    admission.registerTenant(quotaFor("acme", /*budgetUsd=*/0.05));

    const auto query = queryRequest("acme", 0, 1);
    const auto first = admission.decide(query, 0, 0, 0);
    EXPECT_TRUE(first.admitted);
    EXPECT_DOUBLE_EQ(first.chargedUsd, 0.02);
    EXPECT_DOUBLE_EQ(admission.spentUsd("acme"), 0.02);

    EXPECT_TRUE(admission.decide(query, 0, 0, 0).admitted);
    EXPECT_DOUBLE_EQ(admission.spentUsd("acme"), 0.04);

    // The third query would cost past the $0.05 budget: typed reject,
    // and crucially the meter is NOT charged for refused work.
    const auto third = admission.decide(query, 0, 0, 0);
    EXPECT_FALSE(third.admitted);
    EXPECT_EQ(third.reason, RejectReason::BudgetExhausted);
    EXPECT_EQ(third.retryAfterNanos, 0u);
    EXPECT_DOUBLE_EQ(admission.spentUsd("acme"), 0.04);
}

TEST(AdmissionController, CostDefaultsPerKindWithCallerOverride) {
    AdmissionConfig config;
    config.queryCostMb = 0.25;
    config.whatIfCostMb = 1.0;
    config.sweepCostMbPerScenario = 2.0;
    AdmissionController admission{config, nullptr};

    EXPECT_DOUBLE_EQ(admission.costMbFor(queryRequest("t", 0, 1)), 0.25);
    EXPECT_DOUBLE_EQ(
        admission.costMbFor(
            sweepRequest("t", testutil::cableCuts({"WACS"}))),
        1.0); // one scenario = WhatIf
    EXPECT_DOUBLE_EQ(
        admission.costMbFor(sweepRequest(
            "t", testutil::cableCuts({"WACS", "SEACOM", "ACE"}))),
        6.0); // 3 scenarios x 2 MB

    auto custom = queryRequest("t", 0, 1);
    custom.costMb = 7.5;
    EXPECT_DOUBLE_EQ(admission.costMbFor(custom), 7.5);
}

TEST(AdmissionController, RestoreConsumptionResumesSpend) {
    AdmissionController admission{smallConfig(), nullptr};
    admission.registerTenant(quotaFor("acme"));
    admission.restoreConsumption("acme", 30.0, 0.0);
    EXPECT_DOUBLE_EQ(admission.spentUsd("acme"), 0.3);
    EXPECT_THROW(admission.restoreConsumption("ghost", 1.0, 0.0),
                 net::PreconditionError);
}

TEST(AdmissionController, RejectionCountersAreTypedByReason) {
    obs::MetricsRegistry metrics;
    AdmissionController admission{smallConfig(), &metrics};
    admission.registerTenant(quotaFor("acme"));
    (void)admission.decide(queryRequest("ghost", 0, 1), 0, 0, 0);
    (void)admission.decide(queryRequest("acme", 0, 1), 0, 4, 0);
    (void)admission.decide(queryRequest("acme", 0, 1), 0, 0, 0);
    EXPECT_EQ(metrics.counter("service.rejected.unknown_tenant").value(),
              1u);
    EXPECT_EQ(metrics.counter("service.rejected.queue_full").value(), 1u);
    EXPECT_EQ(metrics.counter("service.admitted").value(), 1u);
}

} // namespace
} // namespace aio::service
