#include "service/service.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netbase/error.hpp"
#include "obs/clock.hpp"
#include "persist/record.hpp"
#include "service_test_util.hpp"
#include "sweep/scenario_sweep.hpp"

// End-to-end service semantics in step mode: answers byte-identical to
// the direct engines, typed deadline cancellation for admitted-but-late
// requests, the degradation ladder (failed swap -> stale-epoch answers
// flagged degraded; memory pressure -> cache shrink + heavy shed), the
// write-ahead ledger resume path, and shutdown draining.
namespace aio::service {
namespace {

using testutil::cableCuts;
using testutil::queryRequest;
using testutil::quotaFor;
using testutil::sweepRequest;
using testutil::tinySnapshot;

TEST(ObservatoryService, QueryMatchesTheDirectBaselineOracle) {
    const auto snapshot = tinySnapshot(31);
    obs::ManualClock clock;
    ObservatoryService service{snapshot, {}, &clock};
    service.registerTenant(quotaFor("acme"));

    const route::RouteOracle& oracle =
        *snapshot->substrate().analyzer().baselineOracle();
    const std::size_t asCount = snapshot->topology().asCount();

    std::vector<std::future<ServiceResponse>> futures;
    std::vector<std::pair<topo::AsIndex, topo::AsIndex>> pairs;
    for (std::size_t i = 0; i + 7 < asCount; i += asCount / 5 + 1) {
        pairs.emplace_back(i, asCount - 1 - i);
        futures.push_back(
            service.submit(queryRequest("acme", i, asCount - 1 - i)));
    }
    EXPECT_EQ(service.drain(), futures.size());

    for (std::size_t i = 0; i < futures.size(); ++i) {
        const ServiceResponse response = futures[i].get();
        ASSERT_EQ(response.status, ResponseStatus::Ok);
        EXPECT_EQ(response.nextHop,
                  oracle.nextHopOf(pairs[i].first, pairs[i].second));
        EXPECT_EQ(response.reachable,
                  oracle.nextHopOf(pairs[i].first, pairs[i].second) >= 0);
        EXPECT_EQ(response.epoch, 1u);
        EXPECT_EQ(response.digest, snapshot->digest());
        EXPECT_FALSE(response.degraded);
        EXPECT_GT(response.chargedUsd, 0.0);
    }
}

TEST(ObservatoryService, SweepMatchesTheDirectEngine) {
    const auto snapshot = tinySnapshot(31);
    obs::ManualClock clock;
    ObservatoryService service{snapshot, {}, &clock};
    service.registerTenant(quotaFor("acme"));

    const auto specs = cableCuts({"WACS", "SEACOM", "ACE"});
    auto future = service.submit(sweepRequest("acme", specs));
    EXPECT_EQ(service.drain(), 1u);
    const ServiceResponse response = future.get();
    ASSERT_EQ(response.status, ResponseStatus::Ok);
    ASSERT_TRUE(response.sweep.has_value());

    const sweep::ScenarioSweepEngine direct{snapshot->substrate()};
    const sweep::SweepResult expected = direct.run(specs);
    ASSERT_EQ(response.sweep->scenarios.size(),
              expected.scenarios.size());
    for (std::size_t i = 0; i < expected.scenarios.size(); ++i) {
        const auto& got = response.sweep->scenarios[i];
        const auto& want = expected.scenarios[i];
        EXPECT_EQ(got.scenario, want.scenario);
        ASSERT_EQ(got.outcome.hasValue(), want.outcome.hasValue());
        if (want.outcome.hasValue()) {
            EXPECT_EQ(got.outcome.value(), want.outcome.value());
        }
    }
}

TEST(ObservatoryService, DeadlineExpiringInQueueYieldsTypedCancellation) {
    const auto snapshot = tinySnapshot(31);
    obs::ManualClock clock;
    ObservatoryService service{snapshot, {}, &clock};
    service.registerTenant(quotaFor("acme"));

    auto late = sweepRequest("acme", cableCuts({"WACS"}));
    late.deadlineNanos = clock.nowNanos() + 1000; // meetable at submit
    auto future = service.submit(std::move(late));
    clock.advance(2000); // ...but the handler gets there too late
    EXPECT_EQ(service.drain(), 1u);

    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ResponseStatus::Cancelled);
    EXPECT_FALSE(response.sweep.has_value());
    // The charge stands: admission metered it when capacity was reserved.
    EXPECT_GT(response.chargedUsd, 0.0);
}

TEST(ObservatoryService, FailedSwapDegradesUntilAValidPublish) {
    const auto first = tinySnapshot(31);
    const auto second = tinySnapshot(32);
    obs::ManualClock clock;
    ObservatoryService service{first, {}, &clock};
    service.registerTenant(quotaFor("acme"));

    // A swap that fails validation: stale epoch keeps serving, flagged.
    EXPECT_EQ(service.publish(net::Error::precondition("bad snapshot")),
              1u);
    EXPECT_TRUE(service.degradedMode());
    auto degraded = service.submit(queryRequest("acme", 0, 5));
    EXPECT_EQ(service.drain(), 1u);
    ServiceResponse response = degraded.get();
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_TRUE(response.degraded);
    EXPECT_EQ(response.epoch, 1u);
    EXPECT_EQ(response.digest, first->digest());

    // A later valid publish clears degradation and swaps the epoch.
    EXPECT_EQ(service.publish(second), 2u);
    EXPECT_FALSE(service.degradedMode());
    auto healthy = service.submit(queryRequest("acme", 0, 5));
    EXPECT_EQ(service.drain(), 1u);
    response = healthy.get();
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_FALSE(response.degraded);
    EXPECT_EQ(response.epoch, 2u);
    EXPECT_EQ(response.digest, second->digest());
}

TEST(ObservatoryService, AllocPressureShrinksCacheAndShedsHeavyKinds) {
    SnapshotConfig snapConfig;
    snapConfig.cacheCapacity = 8;
    const auto snapshot = tinySnapshot(31, snapConfig);

    // Warm the cache so the shrink is observable.
    const sweep::ScenarioSweepEngine warmer{snapshot->substrate()};
    (void)warmer.run(cableCuts({"WACS", "SEACOM", "ACE"}));
    ASSERT_GT(snapshot->cache().stats().entries, 1u);

    ServiceConfig config;
    config.admission.shedResidentBytes = snapshot->residentBytes() + 1000;
    obs::ManualClock clock;
    ObservatoryService service{snapshot, config, &clock};
    service.registerTenant(quotaFor("acme"));

    // Below the watermark: heavy work admitted.
    auto ok = service.submit(sweepRequest("acme", cableCuts({"EASSy"})));
    EXPECT_EQ(service.drain(), 1u);
    EXPECT_EQ(ok.get().status, ResponseStatus::Ok);

    // Cross the watermark by far more than the shrink can give back:
    // the ladder shrinks the cache immediately...
    service.injectAllocPressure(1ULL << 30);
    EXPECT_LE(snapshot->cache().stats().entries, 1u);
    // ...and heavy kinds shed while queries keep flowing.
    auto shed = service.submit(sweepRequest("acme", cableCuts({"WACS"})));
    ServiceResponse response = shed.get();
    EXPECT_EQ(response.status, ResponseStatus::Rejected);
    EXPECT_EQ(response.reject, RejectReason::MemoryPressure);
    EXPECT_GT(response.retryAfterNanos, clock.nowNanos());
    auto query = service.submit(queryRequest("acme", 0, 5));
    EXPECT_EQ(service.drain(), 1u);
    EXPECT_EQ(query.get().status, ResponseStatus::Ok);

    // Pressure released: heavy admission recovers.
    service.clearAllocPressure();
    auto recovered =
        service.submit(sweepRequest("acme", cableCuts({"ACE"})));
    EXPECT_EQ(service.drain(), 1u);
    EXPECT_EQ(recovered.get().status, ResponseStatus::Ok);
}

TEST(ObservatoryService, QueueFullRejectsWithRetryAfter) {
    ServiceConfig config;
    config.admission.queueCapacity = 2;
    config.admission.shedQueueDepth = 2;
    config.admission.retryAfterNanos = 700;
    const auto snapshot = tinySnapshot(31);
    obs::ManualClock clock;
    ObservatoryService service{snapshot, config, &clock};
    service.registerTenant(quotaFor("acme"));

    auto a = service.submit(queryRequest("acme", 0, 1));
    auto b = service.submit(queryRequest("acme", 0, 2));
    auto c = service.submit(queryRequest("acme", 0, 3));
    ServiceResponse rejected = c.get(); // resolves immediately
    EXPECT_EQ(rejected.status, ResponseStatus::Rejected);
    EXPECT_EQ(rejected.reject, RejectReason::QueueFull);
    EXPECT_EQ(rejected.retryAfterNanos, clock.nowNanos() + 700);
    EXPECT_EQ(service.drain(), 2u);
    EXPECT_EQ(a.get().status, ResponseStatus::Ok);
    EXPECT_EQ(b.get().status, ResponseStatus::Ok);
}

TEST(ObservatoryService, StopResolvesQueuedRequestsAsShuttingDown) {
    const auto snapshot = tinySnapshot(31);
    obs::ManualClock clock;
    ObservatoryService service{snapshot, {}, &clock};
    service.registerTenant(quotaFor("acme"));

    auto queued = service.submit(queryRequest("acme", 0, 1));
    service.stop();
    ServiceResponse response = queued.get();
    EXPECT_EQ(response.status, ResponseStatus::Rejected);
    EXPECT_EQ(response.reject, RejectReason::ShuttingDown);

    // After stop, nothing new is admitted either.
    auto refused = service.submit(queryRequest("acme", 0, 1));
    EXPECT_EQ(refused.get().reject, RejectReason::ShuttingDown);
}

TEST(ObservatoryService, LedgerReplayRestoresSpendWithoutDoubleCharging) {
    const auto snapshot = tinySnapshot(31);
    obs::ManualClock clock;
    persist::MemorySink journal;

    double spentBefore = 0.0;
    std::uint64_t lastSeq = 0;
    {
        ObservatoryService service{snapshot, {}, &clock, nullptr,
                                   &journal};
        service.registerTenant(quotaFor("acme"));
        for (int i = 0; i < 3; ++i) {
            auto future = service.submit(queryRequest("acme", 0, 1));
            (void)service.drain();
            lastSeq = future.get().seq;
        }
        spentBefore = service.admission().spentUsd("acme");
        EXPECT_GT(spentBefore, 0.0);
    }

    // A fresh process resumes from the journal: same spend, and the
    // sequence counter moves past the journal so (tenant, seq) keys
    // never collide with pre-crash charges.
    ObservatoryService resumed{snapshot, {}, &clock};
    resumed.registerTenant(quotaFor("acme"));
    resumed.restoreLedger(journal.bytes());
    EXPECT_DOUBLE_EQ(resumed.admission().spentUsd("acme"), spentBefore);
    auto future = resumed.submit(queryRequest("acme", 0, 1));
    (void)resumed.drain();
    EXPECT_EQ(future.get().seq, lastSeq + 1);
}

} // namespace
} // namespace aio::service
