#include "service/ledger.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netbase/error.hpp"
#include "obs/clock.hpp"
#include "persist/record.hpp"
#include "service/service.hpp"
#include "service_test_util.hpp"

// The billing crash sweep: kill the charge ledger's sink at EVERY byte
// budget of a reference journal and prove resume never double-charges a
// tenant and never loses an acknowledged charge. This is the service's
// half of the crash-resumability contract (the campaign journal has the
// other half in tests/resilience).
namespace aio::service {
namespace {

using testutil::queryRequest;
using testutil::quotaFor;
using testutil::tinySnapshot;

TEST(TenantLedger, ReplaySumsAndDedupesByTenantSeq) {
    persist::MemorySink sink;
    TenantLedger ledger{sink};
    ledger.recordCharge("a", 1, 2.0, false);
    ledger.recordCharge("a", 2, 3.0, true);
    ledger.recordCharge("b", 3, 5.0, false);
    // A crash between append and ack re-appends the same (tenant, seq):
    ledger.recordCharge("a", 2, 3.0, true);

    const auto replay = TenantLedger::replay(sink.bytes());
    EXPECT_FALSE(replay.tornTail);
    EXPECT_EQ(replay.maxSeq, 3u);
    EXPECT_EQ(replay.duplicates, 1u);
    ASSERT_EQ(replay.tenants.size(), 2u);
    EXPECT_DOUBLE_EQ(replay.tenants.at("a").peakMb, 2.0);
    EXPECT_DOUBLE_EQ(replay.tenants.at("a").offPeakMb, 3.0);
    EXPECT_EQ(replay.tenants.at("a").charges, 2u);
    EXPECT_DOUBLE_EQ(replay.tenants.at("b").peakMb, 5.0);
}

TEST(TenantLedger, ReplayToleratesTornTailAndRejectsCorruption) {
    persist::MemorySink sink;
    TenantLedger ledger{sink};
    ledger.recordCharge("a", 1, 2.0, false);
    ledger.recordCharge("a", 2, 3.0, false);

    // Torn tail: the last record lost its final byte mid-crash.
    const auto journal = sink.bytes();
    const auto torn = journal.subspan(0, journal.size() - 1);
    const auto replay = TenantLedger::replay(torn);
    EXPECT_TRUE(replay.tornTail);
    EXPECT_EQ(replay.maxSeq, 1u);
    EXPECT_DOUBLE_EQ(replay.tenants.at("a").peakMb, 2.0);

    // Mid-stream corruption is NOT a crash signature: typed error.
    std::vector<std::byte> damaged{journal.begin(), journal.end()};
    damaged[journal.size() / 4] ^= std::byte{0x40};
    EXPECT_THROW((void)TenantLedger::replay(damaged),
                 net::CorruptionError);
}

// The sweep itself. Reference run: one service, two tenants, a fixed
// request schedule, journal into a plain MemorySink. Then for every
// byte budget B of that journal, replay the same schedule against a
// CrashingSink that dies at B, resume a fresh service from the inner
// sink's surviving bytes, finish the schedule, and require the final
// per-tenant spend to exactly equal the reference. Any double charge
// (replaying a record the meter already holds) or lost acknowledged
// charge would break the equality.
TEST(TenantLedger, CrashAtEveryByteBudgetNeverDoubleCharges) {
    const auto snapshot = tinySnapshot(41);
    const auto schedule = [] {
        std::vector<ServiceRequest> requests;
        for (int i = 0; i < 6; ++i) {
            requests.push_back(
                queryRequest(i % 2 == 0 ? "even" : "odd", 0,
                             static_cast<topo::AsIndex>(i + 1)));
        }
        return requests;
    }();

    const auto runSchedule = [&](ObservatoryService& service,
                                 std::size_t from) {
        // Returns the index of the first request whose charge did NOT
        // become durable (where a crashed run must resume from).
        for (std::size_t i = from; i < schedule.size(); ++i) {
            try {
                auto future = service.submit(schedule[i]);
                (void)service.drain();
                (void)future.get();
            } catch (const persist::SinkFailure&) {
                return i;
            }
        }
        return schedule.size();
    };

    obs::ManualClock clock;
    persist::MemorySink reference;
    double expectedEven = 0.0;
    double expectedOdd = 0.0;
    {
        ObservatoryService service{snapshot, {}, &clock, nullptr,
                                   &reference};
        service.registerTenant(quotaFor("even"));
        service.registerTenant(quotaFor("odd"));
        ASSERT_EQ(runSchedule(service, 0), schedule.size());
        expectedEven = service.admission().spentUsd("even");
        expectedOdd = service.admission().spentUsd("odd");
    }
    ASSERT_GT(reference.size(), 0u);

    for (std::size_t budget = 0; budget <= reference.size(); ++budget) {
        persist::MemorySink surviving;
        persist::CrashingSink crashing{surviving, budget};
        std::size_t resumeFrom = 0;
        {
            ObservatoryService service{snapshot, {}, &clock, nullptr,
                                       &crashing};
            service.registerTenant(quotaFor("even"));
            service.registerTenant(quotaFor("odd"));
            resumeFrom = runSchedule(service, 0);
        }
        if (budget == reference.size()) {
            // The whole journal fit, but the final flush still threw at
            // exact exhaustion — the durable-but-unacknowledged corner.
            ASSERT_EQ(resumeFrom, schedule.size() - 1);
        } else {
            ASSERT_LT(resumeFrom, schedule.size())
                << "budget " << budget << " should have crashed";
        }

        // Resume: the surviving journal is the authority on what was
        // billed. A crash can land on either side of the ack — the
        // record durable but the submitter never told (flush threw at
        // exact exhaustion), or torn mid-record — so the resume point
        // is the count of durable charges, NOT where the crashed run
        // threw. Requests with a durable charge are not re-submitted;
        // everything after re-runs and is charged exactly once.
        const auto replay = TenantLedger::replay(surviving.bytes());
        std::size_t durableCharges = 0;
        for (const auto& [tenant, consumption] : replay.tenants) {
            durableCharges += consumption.charges;
        }
        ASSERT_GE(resumeFrom, durableCharges == 0 ? 0 : durableCharges - 1)
            << "budget " << budget;
        persist::MemorySink resumedJournal;
        ObservatoryService resumed{snapshot, {}, &clock, nullptr,
                                   &resumedJournal};
        resumed.registerTenant(quotaFor("even"));
        resumed.registerTenant(quotaFor("odd"));
        resumed.restoreLedger(surviving.bytes());
        ASSERT_EQ(runSchedule(resumed, durableCharges), schedule.size())
            << "resume must complete cleanly at budget " << budget;

        EXPECT_DOUBLE_EQ(resumed.admission().spentUsd("even"),
                         expectedEven)
            << "budget " << budget << " (replayed "
            << replay.tenants.size() << " tenants, torn="
            << replay.tornTail << ")";
        EXPECT_DOUBLE_EQ(resumed.admission().spentUsd("odd"), expectedOdd)
            << "budget " << budget;
    }
}

} // namespace
} // namespace aio::service
