#pragma once

#include <memory>
#include <string>
#include <vector>

#include "content/catalog.hpp"
#include "dns/resolver.hpp"
#include "phys/cable.hpp"
#include "service/admission.hpp"
#include "service/request.hpp"
#include "service/snapshot.hpp"
#include "topo/generator.hpp"

namespace aio::service::testutil {

/// A test-sized world: the generator defaults scaled down so a snapshot
/// builds in milliseconds. Distinct seeds give distinct topologies (and
/// hence distinct route-matrix digests — the torn-read tests rely on
/// that).
inline topo::GeneratorConfig tinyConfig(std::uint64_t seed) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    for (auto& profile : config.africa) {
        profile.asPerMillionPeople *= 0.4;
        profile.minAsesPerCountry = 1;
        profile.ixpCount = std::max(1, profile.ixpCount / 2);
    }
    config.europe.accessPerCountry = 2;
    config.northAmerica.accessPerCountry = 2;
    config.southAmerica.accessPerCountry = 2;
    config.asiaPacific.accessPerCountry = 2;
    return config;
}

inline std::shared_ptr<const ServiceSnapshot>
tinySnapshot(std::uint64_t topologySeed, SnapshotConfig config = {}) {
    const topo::Topology topology =
        topo::TopologyGenerator{tinyConfig(topologySeed)}.generate();
    auto built = ServiceSnapshot::build(
        topology, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults(),
        config);
    if (!built.hasValue()) {
        throw std::runtime_error{"test snapshot failed to build"};
    }
    return std::move(built).value();
}

inline TenantQuota quotaFor(std::string tenant, double budgetUsd = 10.0) {
    TenantQuota quota;
    quota.tenant = std::move(tenant);
    quota.budgetUsd = budgetUsd;
    return quota;
}

inline std::vector<core::ScenarioSpec> cableCuts(
    std::initializer_list<const char*> cables) {
    std::vector<core::ScenarioSpec> specs;
    for (const char* cable : cables) {
        core::ScenarioSpec spec;
        spec.name = std::string{"cut-"} + cable;
        spec.cutCables = {cable};
        spec.repairDays = {14.0};
        specs.push_back(std::move(spec));
    }
    return specs;
}

inline ServiceRequest queryRequest(std::string tenant, topo::AsIndex src,
                                   topo::AsIndex dst) {
    ServiceRequest request;
    request.tenant = std::move(tenant);
    request.kind = RequestKind::Query;
    request.src = src;
    request.dst = dst;
    return request;
}

inline ServiceRequest sweepRequest(std::string tenant,
                                   std::vector<core::ScenarioSpec> specs) {
    ServiceRequest request;
    request.tenant = std::move(tenant);
    request.kind = specs.size() == 1 ? RequestKind::WhatIf
                                     : RequestKind::Sweep;
    request.scenarios = std::move(specs);
    return request;
}

} // namespace aio::service::testutil
