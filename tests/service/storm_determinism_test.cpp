#include "service/storm.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "netbase/error.hpp"

// The seeded overload storm: a fixed seed must reproduce the service's
// decision stream bit-for-bit (same admissions, sheds, cancellations,
// epochs, degradation flags — the report digest folds all of it), and
// the storm must actually exercise every rung of the degradation ladder
// it claims to cover.
namespace aio::service {
namespace {

StormConfig stressConfig() {
    StormConfig config;
    config.seed = 9001;
    config.steps = 120;
    config.tenants = 4;
    config.snapshotPool = 3;
    // Tight service: small queue, early shed, byte watermark the
    // pressure spikes can cross.
    config.service.admission.queueCapacity = 8;
    config.service.admission.shedQueueDepth = 5;
    config.service.admission.shedResidentBytes = 64ULL << 20;
    // Tight deadlines relative to the queue depth and slow-step stalls,
    // so deadline cancellations actually occur.
    config.requestDeadlineNanos = 6'000'000;
    config.faults.slowHandlerProb = 0.15;
    config.faults.topologySwapProb = 0.2;
    config.faults.invalidSwapProb = 0.3;
    config.faults.tenantFloodProb = 0.12;
    config.faults.floodBurst = 12;
    config.faults.allocPressureProb = 0.1;
    config.faults.allocPressureBytes = 256ULL << 20;
    return config;
}

std::uint64_t totalRejected(const StormReport& report) {
    return std::accumulate(
        report.rejectedByReason.begin(), report.rejectedByReason.end(),
        std::uint64_t{0},
        [](std::uint64_t sum, const auto& entry) {
            return sum + entry.second;
        });
}

TEST(StormDeterminism, SameSeedReproducesTheExactDecisionStream) {
    const StormConfig config = stressConfig();
    const StormReport first = runStorm(config);
    const StormReport second = runStorm(config);
    EXPECT_EQ(first, second);
    EXPECT_NE(first.decisionDigest, 0u);
}

TEST(StormDeterminism, DifferentSeedsDivergeInTheDigest) {
    StormConfig config = stressConfig();
    const StormReport base = runStorm(config);
    config.seed = 9002;
    const StormReport other = runStorm(config);
    EXPECT_NE(base.decisionDigest, other.decisionDigest);
}

TEST(StormDeterminism, StormExercisesTheWholeDegradationLadder) {
    const StormReport report = runStorm(stressConfig());

    // Conservation: every submitted request resolved exactly once.
    EXPECT_EQ(report.submitted,
              report.admitted + totalRejected(report));
    EXPECT_EQ(report.admitted,
              report.completed + report.cancelled + report.failed);
    EXPECT_GT(report.submitted, 120u); // floods outnumber the steps

    // The storm hit every rung it was configured to hit.
    EXPECT_GT(report.swaps, 0u);
    EXPECT_GT(report.failedSwaps, 0u);
    EXPECT_GT(report.degradedResponses, 0u); // stale-epoch serving
    EXPECT_GT(report.cancelled, 0u);         // slow steps blew deadlines
    EXPECT_GT(report.floodBursts, 0u);
    EXPECT_GT(report.pressureSpikes, 0u);
    EXPECT_GT(report.rejectedByReason.count("queue_full") +
                  report.rejectedByReason.count("overloaded"),
              0u); // floods drove the queue into the shed watermarks
    EXPECT_EQ(report.failed, 0u); // nothing crashed, everything typed

    // Retired epochs were reclaimed, not leaked: with step-mode pins
    // released per request, at most the current epoch stays live.
    EXPECT_EQ(report.epochsReclaimed, report.swaps);
}

TEST(StormDeterminism, ValidateRejectsBadStormKnobs) {
    const auto rejects = [](auto mutate) {
        StormConfig config;
        mutate(config);
        EXPECT_THROW(config.validate(), net::PreconditionError);
    };
    rejects([](auto& c) { c.steps = 0; });
    rejects([](auto& c) { c.tenants = 0; });
    rejects([](auto& c) { c.snapshotPool = 0; });
    rejects([](auto& c) { c.executePerStep = 0; });
    rejects([](auto& c) { c.queryProb = 1.5; });
    rejects([](auto& c) { c.sweepScenarios = 0; });
    rejects([](auto& c) { c.stepNanos = 0; });
    rejects([](auto& c) { c.faults.slowHandlerProb = -0.1; });
    EXPECT_NO_THROW(StormConfig{}.validate());
}

} // namespace
} // namespace aio::service
