#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "service_test_util.hpp"

// The real-thread soak: handler threads, submitter threads (one per
// tenant) and a swap thread all hammer one service under a wall clock.
// What it proves — under TSan in CI — is the concurrency half of the
// acceptance criteria: no deadlocks (the test finishes), no torn reads
// (every Ok response's digest matches the snapshot its epoch named),
// every future resolves with a typed status, meters stay consistent,
// and retired epochs reclaim once readers drain.
//
// Runtime scales with AIO_SOAK_MS (default 300 ms for the ordinary
// suite; CI sets 30000 for the dedicated soak step).
namespace aio::service {
namespace {

using testutil::cableCuts;
using testutil::queryRequest;
using testutil::quotaFor;
using testutil::sweepRequest;
using testutil::tinySnapshot;

std::uint64_t soakMillis() {
    if (const char* env = std::getenv("AIO_SOAK_MS")) {
        const long parsed = std::atol(env);
        if (parsed > 0) {
            return static_cast<std::uint64_t>(parsed);
        }
    }
    return 300;
}

TEST(ServiceSoak, ConcurrentTenantsSwapsAndShedsStayConsistent) {
    constexpr std::size_t kTenants = 8;
    constexpr std::size_t kHandlers = 4;

    std::vector<std::shared_ptr<const ServiceSnapshot>> rotation;
    for (std::uint64_t seed : {51u, 52u, 53u}) {
        rotation.push_back(tinySnapshot(seed));
    }
    // epoch e serves rotation[(e - 1) % 3] — the torn-read oracle.
    const auto expectedDigest = [&](std::uint64_t epoch) {
        return rotation[static_cast<std::size_t>(epoch - 1) %
                        rotation.size()]
            ->digest();
    };

    ServiceConfig config;
    config.admission.queueCapacity = 64;
    config.admission.shedQueueDepth = 48;
    obs::SteadyClock clock;
    ObservatoryService service{rotation[0], config, &clock};
    for (std::size_t t = 0; t < kTenants; ++t) {
        service.registerTenant(
            quotaFor("tenant-" + std::to_string(t), 1e9));
    }
    service.start(kHandlers);

    const std::uint64_t deadline =
        clock.nowNanos() + soakMillis() * 1'000'000ULL;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> tornReads{0};
    std::atomic<std::uint64_t> resolved{0};
    std::atomic<std::uint64_t> okCount{0};
    std::atomic<std::uint64_t> rejectedCount{0};
    std::atomic<std::uint64_t> cancelledCount{0};
    std::atomic<std::uint64_t> untypedCount{0};

    std::vector<std::thread> submitters;
    submitters.reserve(kTenants);
    for (std::size_t t = 0; t < kTenants; ++t) {
        submitters.emplace_back([&, t] {
            const std::string tenant = "tenant-" + std::to_string(t);
            const std::size_t asCount =
                rotation[0]->topology().asCount();
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                ServiceRequest request =
                    i % 4 == 3
                        ? sweepRequest(tenant, cableCuts({"WACS"}))
                        : queryRequest(tenant, (t + i) % asCount,
                                       (t * 7 + i * 3) % asCount);
                // Half the requests carry a real deadline.
                if (i % 2 == 0) {
                    request.deadlineNanos =
                        clock.nowNanos() + 50'000'000ULL;
                }
                auto future = service.submit(std::move(request));
                const ServiceResponse response = future.get();
                resolved.fetch_add(1, std::memory_order_relaxed);
                switch (response.status) {
                case ResponseStatus::Ok:
                    okCount.fetch_add(1, std::memory_order_relaxed);
                    if (response.digest !=
                        expectedDigest(response.epoch)) {
                        tornReads.fetch_add(1,
                                            std::memory_order_relaxed);
                    }
                    break;
                case ResponseStatus::Rejected:
                    rejectedCount.fetch_add(1,
                                            std::memory_order_relaxed);
                    if (response.reject == RejectReason::None) {
                        untypedCount.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    break;
                case ResponseStatus::Cancelled:
                    cancelledCount.fetch_add(1,
                                             std::memory_order_relaxed);
                    break;
                case ResponseStatus::Failed:
                    untypedCount.fetch_add(1,
                                           std::memory_order_relaxed);
                    break;
                }
                ++i;
            }
        });
    }

    // The swap thread rotates epochs (with occasional failed swaps)
    // for the whole soak window.
    std::uint64_t swaps = 0;
    std::thread swapper{[&] {
        std::size_t tick = 0;
        while (clock.nowNanos() < deadline) {
            if (tick % 5 == 4) {
                (void)service.publish(
                    net::Error::precondition("soak: bad snapshot"));
            } else {
                // The k-th valid swap creates epoch k+1, which readers
                // expect to serve rotation[k % 3] — failed swaps must
                // not advance the rotation.
                (void)service.publish(
                    rotation[(swaps + 1) % rotation.size()]);
                ++swaps;
            }
            ++tick;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        stop.store(true);
    }};
    swapper.join();
    for (std::thread& submitter : submitters) {
        submitter.join();
    }
    service.stop();

    EXPECT_EQ(tornReads.load(), 0u);
    EXPECT_EQ(untypedCount.load(), 0u);
    EXPECT_GT(resolved.load(), 0u);
    EXPECT_GT(okCount.load(), 0u);
    EXPECT_EQ(resolved.load(), okCount.load() + rejectedCount.load() +
                                   cancelledCount.load());
    EXPECT_EQ(resolved.load(), service.completedCount() +
                                   rejectedCount.load() +
                                   cancelledCount.load());
    // With every pin released, only the current epoch stays resident.
    EXPECT_EQ(service.epochs().liveEpochs(), 1u);
    EXPECT_EQ(service.epochs().reclaimed(), swaps);
    EXPECT_EQ(service.queueDepth(), 0u);
}

} // namespace
} // namespace aio::service
