#include "service/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "netbase/error.hpp"
#include "obs/metrics.hpp"
#include "service_test_util.hpp"

// Epoch lifecycle: publish/pin/reclaim bookkeeping single-threaded, then
// the concurrency contract — 8 readers pinning across 100+ swaps never
// observe a snapshot dying under them and never see a digest that
// disagrees with the epoch they pinned (the torn-read check). The
// threaded test is the TSan soak target in CI.
namespace aio::service {
namespace {

using testutil::tinySnapshot;

TEST(EpochRegistry, PinBeforeAnyPublishThrows) {
    EpochRegistry registry;
    EXPECT_EQ(registry.currentEpoch(), 0u);
    EXPECT_EQ(registry.liveEpochs(), 0u);
    EXPECT_THROW((void)registry.pin(), net::PreconditionError);
}

TEST(EpochRegistry, RetiredEpochSurvivesUntilPinsDrain) {
    obs::MetricsRegistry metrics;
    EpochRegistry registry{&metrics};
    const auto first = tinySnapshot(11);
    const auto second = tinySnapshot(12);

    EXPECT_EQ(registry.publish(first), 1u);
    EXPECT_EQ(registry.liveEpochs(), 1u);
    {
        const PinnedSnapshot pinned = registry.pin();
        EXPECT_EQ(pinned.epoch(), 1u);
        EXPECT_EQ(&*pinned, first.get());

        // Swap while epoch 1 is pinned: both epochs stay resident.
        EXPECT_EQ(registry.publish(second), 2u);
        EXPECT_EQ(registry.currentEpoch(), 2u);
        EXPECT_EQ(registry.liveEpochs(), 2u);
        EXPECT_EQ(registry.reclaimed(), 0u);
        EXPECT_EQ(registry.residentBytes(),
                  first->residentBytes() + second->residentBytes());

        // The pinned reader still sees its own epoch, not the new one.
        EXPECT_EQ(pinned->digest(), first->digest());
    }
    // The pin drained: epoch 1 is reclaimed, only the current survives.
    EXPECT_EQ(registry.liveEpochs(), 1u);
    EXPECT_EQ(registry.reclaimed(), 1u);
    EXPECT_EQ(metrics.counter("service.epochs_reclaimed").value(), 1u);
}

TEST(EpochRegistry, UnpinnedPreviousEpochReclaimsAtPublish) {
    EpochRegistry registry;
    (void)registry.publish(tinySnapshot(11));
    (void)registry.publish(tinySnapshot(12));
    EXPECT_EQ(registry.liveEpochs(), 1u);
    EXPECT_EQ(registry.reclaimed(), 1u);
}

TEST(EpochRegistry, CurrentEpochNeverReclaimsOnUnpin) {
    EpochRegistry registry;
    (void)registry.publish(tinySnapshot(11));
    { const PinnedSnapshot pinned = registry.pin(); }
    EXPECT_EQ(registry.liveEpochs(), 1u);
    EXPECT_EQ(registry.reclaimed(), 0u);
    EXPECT_NO_THROW((void)registry.pin());
}

TEST(EpochRegistry, MovedPinReleasesExactlyOnce) {
    EpochRegistry registry;
    (void)registry.publish(tinySnapshot(11));
    (void)registry.publish(tinySnapshot(12));
    {
        PinnedSnapshot pinned = registry.pin();
        PinnedSnapshot moved = std::move(pinned);
        EXPECT_EQ(moved.epoch(), 2u);
        (void)registry.publish(tinySnapshot(13));
        EXPECT_EQ(registry.liveEpochs(), 2u); // moved pin holds epoch 2
    }
    EXPECT_EQ(registry.liveEpochs(), 1u);
}

// The concurrency contract, sized for TSan: 8 readers continuously pin
// the current epoch and verify the pinned snapshot's digest matches the
// digest recorded for that epoch at publish time, while the writer does
// 100+ swaps across a 3-snapshot rotation. A torn read (snapshot freed
// or swapped mid-read) would show up as a digest mismatch or a TSan
// race report.
TEST(EpochRegistry, ConcurrentReadersAcrossSwapsSeeConsistentEpochs) {
    constexpr std::size_t kReaders = 8;
    constexpr std::size_t kSwaps = 100;

    std::vector<std::shared_ptr<const ServiceSnapshot>> rotation;
    for (std::uint64_t seed : {21u, 22u, 23u}) {
        rotation.push_back(tinySnapshot(seed));
    }

    EpochRegistry registry;
    // Epoch e serves rotation[(e - 1) % 3]; readers re-derive the
    // expected digest from the epoch number alone.
    const auto expectedDigest = [&](std::uint64_t epoch) {
        return rotation[static_cast<std::size_t>((epoch - 1)) %
                        rotation.size()]
            ->digest();
    };
    (void)registry.publish(rotation[0]);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> tornReads{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (std::size_t r = 0; r < kReaders; ++r) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const PinnedSnapshot pinned = registry.pin();
                const auto digest = pinned->digest();
                // Touch the substrate too: a reclaimed snapshot would
                // crash or race here.
                const bool alive =
                    pinned->substrate().analyzer().baselineOracle() !=
                    nullptr;
                if (!alive || digest != expectedDigest(pinned.epoch())) {
                    tornReads.fetch_add(1, std::memory_order_relaxed);
                }
                reads.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    for (std::size_t swap = 1; swap <= kSwaps; ++swap) {
        (void)registry.publish(rotation[swap % rotation.size()]);
        std::this_thread::yield();
    }
    stop.store(true);
    for (std::thread& reader : readers) {
        reader.join();
    }

    EXPECT_EQ(tornReads.load(), 0u);
    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(registry.currentEpoch(), kSwaps + 1);
    // Every retired epoch's pins drained with the readers gone.
    EXPECT_EQ(registry.liveEpochs(), 1u);
    EXPECT_EQ(registry.reclaimed(), kSwaps);
}

} // namespace
} // namespace aio::service
