// ScenarioCatalog: declarative templates (cascades with phase timelines
// and repair tails, phased recoveries, build-out futures) compiling into
// weighted ScenarioSpec batches — and the add-only contract fix that
// unblocked them: a cut-free overlay scenario validates, sweeps, and
// scores against its own augmented baseline.

#include "scenario/catalog.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/whatif.hpp"
#include "netbase/error.hpp"
#include "topo/generator.hpp"

namespace aio::scenario {
namespace {

topo::GeneratorConfig smallConfig(std::uint64_t seed) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    for (auto& profile : config.africa) {
        profile.asPerMillionPeople *= 0.4;
        profile.minAsesPerCountry = 1;
        profile.ixpCount = std::max(1, profile.ixpCount / 2);
    }
    config.europe.accessPerCountry = 2;
    config.northAmerica.accessPerCountry = 2;
    config.southAmerica.accessPerCountry = 2;
    config.asiaPacific.accessPerCountry = 2;
    return config;
}

core::Substrate smallSubstrate(const topo::Topology& topo) {
    return core::Substrate{topo, phys::CableRegistry::africanDefaults(),
                           dns::DnsConfig::defaults(),
                           content::ContentConfig::defaults()};
}

phys::SubseaCable shieldCable() {
    phys::SubseaCable shield;
    shield.name = "TestShield";
    shield.readyForService = 2026;
    shield.capacityTbps = 100.0;
    for (const auto code : {"PT", "SN", "CI", "GH", "NG", "ZA"}) {
        shield.landings.push_back(phys::LandingStation{
            std::string{code},
            net::CountryTable::world().byCode(code).centroid});
    }
    return shield;
}

/// The §5.1 compound shape: a corridor cut whose multi-week repair tail
/// carries a power outage and a second cut.
CascadeTemplate marchCascade() {
    CascadeTemplate cascade;
    cascade.name = "march-2024";
    PhaseSpec first;
    first.name = "west-cut";
    first.type = outage::OutageType::CableCut;
    first.cutCables = {"WACS", "MainOne", "SAT-3", "ACE"};
    first.startDay = 0.0;
    first.durationDays = 35.0;
    cascade.phases.push_back(first);
    PhaseSpec second;
    second.name = "grid-collapse";
    second.type = outage::OutageType::PowerOutage;
    second.countries = {"NG", "GH"};
    second.startDay = 2.0;
    second.durationDays = 1.5;
    cascade.phases.push_back(second);
    PhaseSpec third;
    third.name = "east-cut";
    third.type = outage::OutageType::CableCut;
    third.cutCables = {"SEACOM"};
    third.startDay = 5.0;
    third.durationDays = 20.0;
    cascade.phases.push_back(third);
    return cascade;
}

TEST(ScenarioCatalog, CascadeCompilesTimelineAndCumulativeCuts) {
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(7)}.generate();
    const core::Substrate substrate = smallSubstrate(topo);

    ScenarioCatalog catalog;
    auto cascade = marchCascade();
    cascade.weight = 2.5;
    catalog.add(cascade);
    const auto batch = catalog.compile(substrate);
    ASSERT_TRUE(batch.hasValue()) << batch.error().message;
    ASSERT_EQ(batch.value().entries.size(), 3U);

    const auto& entries = batch.value().entries;
    EXPECT_EQ(entries[0].spec.name, "march-2024@west-cut");
    EXPECT_EQ(entries[1].spec.name, "march-2024@grid-collapse");
    EXPECT_EQ(entries[2].spec.name, "march-2024@east-cut");
    for (const sweep::WeightedSpec& entry : entries) {
        EXPECT_DOUBLE_EQ(entry.weight, 2.5);
    }
    // Phase 2 is country-scoped, carries no cuts.
    EXPECT_EQ(entries[1].spec.eventType, outage::OutageType::PowerOutage);
    EXPECT_TRUE(entries[1].spec.cutCables.empty());
    EXPECT_EQ(entries[1].spec.countries,
              (std::vector<std::string>{"NG", "GH"}));
    EXPECT_DOUBLE_EQ(entries[1].spec.startDay, 2.0);
    EXPECT_DOUBLE_EQ(entries[1].spec.repairDays, 1.5);
    // Phase 3 starts on day 5, inside phase 1's [0, 35) repair window:
    // cumulative cuts ride along (SEACOM plus the four west cables).
    EXPECT_EQ(entries[2].spec.cutCables.size(), 5U);
    for (const char* name :
         {"SEACOM", "WACS", "MainOne", "SAT-3", "ACE"}) {
        EXPECT_TRUE(std::ranges::find(entries[2].spec.cutCables,
                                      std::string{name}) !=
                    entries[2].spec.cutCables.end())
            << name;
    }
    // Every phase's fault-taxonomy bridge agrees with the event class.
    EXPECT_EQ(cascade.phases[0].faultClass(),
              resilience::FaultClass::TransitLoss);
    EXPECT_EQ(cascade.phases[1].faultClass(),
              resilience::FaultClass::PowerLoss);
}

TEST(ScenarioCatalog, ExpiredRepairWindowsDropOutOfLaterPhases) {
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(7)}.generate();
    const core::Substrate substrate = smallSubstrate(topo);

    CascadeTemplate cascade;
    cascade.name = "short-tail";
    PhaseSpec first;
    first.name = "cut";
    first.cutCables = {"WACS"};
    first.startDay = 0.0;
    first.durationDays = 3.0; // repaired before the next phase
    cascade.phases.push_back(first);
    PhaseSpec second;
    second.name = "late-cut";
    second.cutCables = {"SEACOM"};
    second.startDay = 10.0;
    second.durationDays = 20.0;
    cascade.phases.push_back(second);

    ScenarioCatalog catalog;
    catalog.add(cascade);
    const auto batch = catalog.compile(substrate);
    ASSERT_TRUE(batch.hasValue());
    EXPECT_EQ(batch.value().entries[1].spec.cutCables,
              (std::vector<std::string>{"SEACOM"}));
}

TEST(ScenarioCatalog, PhasedRecoveryShrinksTheCutSet) {
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(7)}.generate();
    const core::Substrate substrate = smallSubstrate(topo);

    const auto recovery = CascadeTemplate::phasedRecovery(
        "west-repair", {"WACS", "MainOne", "ACE"}, 7.0);
    EXPECT_FALSE(recovery.cumulativeCuts);
    ASSERT_EQ(recovery.phases.size(), 3U);
    EXPECT_EQ(recovery.phases[0].cutCables,
              (std::vector<std::string>{"WACS", "MainOne", "ACE"}));
    EXPECT_EQ(recovery.phases[1].cutCables,
              (std::vector<std::string>{"MainOne", "ACE"}));
    EXPECT_EQ(recovery.phases[2].cutCables,
              (std::vector<std::string>{"ACE"}));
    EXPECT_DOUBLE_EQ(recovery.phases[1].startDay, 7.0);
    EXPECT_DOUBLE_EQ(recovery.phases[2].startDay, 14.0);
    EXPECT_DOUBLE_EQ(recovery.phases[0].durationDays, 21.0);
    EXPECT_DOUBLE_EQ(recovery.phases[2].durationDays, 7.0);

    ScenarioCatalog catalog;
    catalog.add(recovery);
    const auto batch = catalog.compile(substrate);
    ASSERT_TRUE(batch.hasValue());
    ASSERT_EQ(batch.value().entries.size(), 3U);

    // Sweeping the recovery: impact eases as cables come back.
    const sweep::ScenarioSweepEngine engine{substrate};
    const auto result = engine.run(batch.value().specs());
    ASSERT_EQ(result.stats.errors, 0U);
    const auto loss = [&](std::size_t i) {
        double sum = 0.0;
        for (const auto& impact :
             result.scenarios[i].outcome.value().countries) {
            sum += impact.pageLoadLoss;
        }
        return sum;
    };
    EXPECT_GE(loss(0), loss(2));

    EXPECT_THROW(CascadeTemplate::phasedRecovery("bad", {}, 7.0),
                 net::PreconditionError);
    EXPECT_THROW(CascadeTemplate::phasedRecovery("bad", {"WACS"}, 0.0),
                 net::PreconditionError);
}

TEST(ScenarioCatalog, AddOnlyBuildoutValidatesAndSweeps) {
    // The regression this PR fixes: an add-only overlay (cables added,
    // nothing cut) used to be rejected by ScenarioSpec::validate. It now
    // compiles, sweeps, and scores against the augmented baseline.
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(13)}.generate();
    const core::Substrate substrate = smallSubstrate(topo);

    BuildoutTemplate buildout;
    buildout.name = "shield-future";
    buildout.cablesAdded = {shieldCable()};
    auto localized = content::ContentConfig::defaults();
    for (auto& profile : localized.africa) {
        profile = content::HostingProfile{0.5, 0.2, 0.2, 0.07, 0.03};
    }
    buildout.contentOverride = localized;

    CascadeTemplate cut;
    cut.name = "west-cut";
    PhaseSpec phase;
    phase.name = "only";
    phase.cutCables = {"WACS", "MainOne", "SAT-3", "ACE"};
    cut.phases.push_back(phase);

    ScenarioCatalog catalog;
    catalog.add(buildout);
    catalog.add(cut);
    const auto batch = catalog.compile(substrate);
    ASSERT_TRUE(batch.hasValue()) << batch.error().message;
    // compile() emits cascades before buildouts: the damage scenario is
    // entry 0, the add-only future entry 1.
    ASSERT_EQ(batch.value().entries.size(), 2U);
    ASSERT_EQ(batch.value().entries[1].spec.name, "shield-future");
    const core::ScenarioSpec& addOnly = batch.value().entries[1].spec;
    EXPECT_TRUE(addOnly.addOnly());
    EXPECT_TRUE(addOnly.hasOverlay());
    EXPECT_TRUE(addOnly.validate(substrate).hasValue());

    sweep::SweepOptions options;
    options.scenarioAggregates = true;
    const sweep::ScenarioSweepEngine engine{substrate, options};
    const auto result = engine.runBatch(batch.value());
    ASSERT_EQ(result.sweep.stats.errors, 0U);
    EXPECT_EQ(result.sweep.stats.overlayScenarios, 1U);

    const auto& future = result.sweep.scenarios[1];
    const auto& damage = result.sweep.scenarios[0];
    ASSERT_TRUE(future.outcome.hasValue());
    // No damage: the add-only future reports no impacted countries and a
    // zero-duration event.
    EXPECT_TRUE(future.outcome.value().countries.empty());
    EXPECT_DOUBLE_EQ(future.outcome.value().event.durationDays, 0.0);
    EXPECT_TRUE(future.outcome.value().event.cutCables.empty());
    // ... while the aggregates still describe its (augmented) world, and
    // the content mandate moves the locality share.
    ASSERT_TRUE(future.aggregates.has_value());
    ASSERT_TRUE(damage.aggregates.has_value());
    EXPECT_GT(future.aggregates->contentLocalShare,
              damage.aggregates->contentLocalShare);
    EXPECT_DOUBLE_EQ(future.aggregates->meanPageLoadLoss, 0.0);
    EXPECT_GT(damage.aggregates->meanPageLoadLoss, 0.0);
    // The weighted aggregate blends both scenarios.
    EXPECT_EQ(result.aggregate.scored, 2U);
    EXPECT_GT(result.aggregate.meanContentLocalShare, 0.0);
}

TEST(ScenarioCatalog, CompiledPhasesMatchPerScenarioEngines) {
    // Differential: every compiled non-overlay spec must score exactly
    // as a per-scenario WhatIfEngine::assess over the same substrate.
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(11)}.generate();
    const core::Substrate substrate = smallSubstrate(topo);

    ScenarioCatalog catalog;
    catalog.add(marchCascade());
    catalog.add(CascadeTemplate::phasedRecovery(
        "recovery", {"SEACOM", "EASSy"}, 10.0));
    const auto batch = catalog.compile(substrate);
    ASSERT_TRUE(batch.hasValue()) << batch.error().message;

    const sweep::ScenarioSweepEngine engine{substrate};
    const auto result = engine.run(batch.value().specs());
    ASSERT_EQ(result.stats.errors, 0U);

    const core::WhatIfEngine reference{substrate};
    for (std::size_t i = 0; i < batch.value().entries.size(); ++i) {
        const core::ScenarioSpec& spec = batch.value().entries[i].spec;
        const auto event = spec.makeEvent(substrate.registry());
        ASSERT_TRUE(event.hasValue()) << spec.name;
        EXPECT_TRUE(result.scenarios[i].outcome.value() ==
                    reference.assess(event.value()))
            << spec.name;
    }
}

TEST(ScenarioCatalog, EntryOrderDoesNotChangeSampledDraws) {
    // The sampled template's draw streams are keyed by (seed, tag,
    // index): adding templates before/after it must not perturb any
    // drawn scenario.
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(7)}.generate();
    const core::Substrate substrate = smallSubstrate(topo);

    SampledTemplate mc;
    mc.name = "mc";
    mc.config.seed = 404;
    mc.config.count = 32;
    mc.config.importanceBoost = 2.0;

    ScenarioCatalog first;
    first.add(mc);
    first.add(marchCascade());

    ScenarioCatalog second;
    second.add(CascadeTemplate::phasedRecovery("other", {"WACS"}, 5.0));
    BuildoutTemplate buildout;
    buildout.name = "shield";
    buildout.cablesAdded = {shieldCable()};
    second.add(buildout);
    second.add(mc);

    const auto pick = [](const sweep::ScenarioBatch& batch) {
        std::vector<sweep::WeightedSpec> out;
        for (const sweep::WeightedSpec& entry : batch.entries) {
            if (entry.spec.name.starts_with("mc#")) {
                out.push_back(entry);
            }
        }
        return out;
    };
    const auto batchA = first.compile(substrate);
    const auto batchB = second.compile(substrate);
    ASSERT_TRUE(batchA.hasValue());
    ASSERT_TRUE(batchB.hasValue());
    const auto drawsA = pick(batchA.value());
    const auto drawsB = pick(batchB.value());
    ASSERT_EQ(drawsA.size(), 32U);
    ASSERT_EQ(drawsA.size(), drawsB.size());
    for (std::size_t i = 0; i < drawsA.size(); ++i) {
        EXPECT_EQ(drawsA[i].spec.name, drawsB[i].spec.name);
        EXPECT_EQ(drawsA[i].spec.cutCables, drawsB[i].spec.cutCables);
        EXPECT_DOUBLE_EQ(drawsA[i].spec.repairDays,
                         drawsB[i].spec.repairDays);
        EXPECT_DOUBLE_EQ(drawsA[i].weight, drawsB[i].weight);
    }
}

TEST(ScenarioCatalog, CompileRejectsMalformedTemplates) {
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(7)}.generate();
    const core::Substrate substrate = smallSubstrate(topo);

    const auto expectRejects = [&](ScenarioCatalog& catalog,
                                   const std::string& needle) {
        const auto batch = catalog.compile(substrate);
        ASSERT_FALSE(batch.hasValue()) << needle;
        EXPECT_NE(batch.error().message.find(needle), std::string::npos)
            << batch.error().message;
    };

    {
        // Duplicate template names across kinds.
        ScenarioCatalog catalog;
        catalog.add(CascadeTemplate::phasedRecovery("dup", {"WACS"}, 5.0));
        BuildoutTemplate buildout;
        buildout.name = "dup";
        buildout.cablesAdded = {shieldCable()};
        catalog.add(buildout);
        expectRejects(catalog, "duplicate");
    }
    {
        // A phase timeline running backwards.
        CascadeTemplate cascade;
        cascade.name = "backwards";
        PhaseSpec a;
        a.name = "late";
        a.cutCables = {"WACS"};
        a.startDay = 10.0;
        PhaseSpec b;
        b.name = "early";
        b.cutCables = {"ACE"};
        b.startDay = 2.0;
        cascade.phases = {a, b};
        ScenarioCatalog catalog;
        catalog.add(cascade);
        expectRejects(catalog, "non-decreasing");
    }
    {
        // An unknown cable is caught at compile time, template named.
        CascadeTemplate cascade;
        cascade.name = "typo";
        PhaseSpec phase;
        phase.name = "only";
        phase.cutCables = {"Atlantis-9"};
        cascade.phases = {phase};
        ScenarioCatalog catalog;
        catalog.add(cascade);
        expectRejects(catalog, "template 'typo'");
    }
    {
        // Phaseless cascades and bad weights.
        CascadeTemplate empty;
        empty.name = "empty";
        ScenarioCatalog catalog;
        catalog.add(empty);
        expectRejects(catalog, "phase");
    }
    {
        CascadeTemplate cascade =
            CascadeTemplate::phasedRecovery("w", {"WACS"}, 5.0);
        cascade.weight = 0.0;
        ScenarioCatalog catalog;
        catalog.add(cascade);
        expectRejects(catalog, "weight");
    }
    {
        // Sampler config problems surface with the template's name.
        SampledTemplate mc;
        mc.name = "mc";
        mc.config.importanceBoost = 0.5;
        ScenarioCatalog catalog;
        catalog.add(mc);
        expectRejects(catalog, "template 'mc'");
    }
    {
        // A country-scoped phase needs countries the topology knows.
        CascadeTemplate cascade;
        cascade.name = "ghost";
        PhaseSpec phase;
        phase.name = "only";
        phase.type = outage::OutageType::GovernmentShutdown;
        phase.countries = {"XX"};
        cascade.phases = {phase};
        ScenarioCatalog catalog;
        catalog.add(cascade);
        expectRejects(catalog, "template 'ghost'");
    }
}

} // namespace
} // namespace aio::scenario
