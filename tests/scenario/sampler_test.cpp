// MonteCarloSampler: seeded correlated-corridor scenario generation with
// importance weighting, plus the differential harness the ISSUE asks
// for — the same catalog + seed must produce byte-identical batches and
// weighted aggregates at 1/2/8 threads, cold and warm cache.

#include "scenario/sampler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "exec/worker_pool.hpp"
#include "netbase/error.hpp"
#include "routing/oracle_cache.hpp"
#include "scenario/catalog.hpp"
#include "topo/generator.hpp"

namespace aio::scenario {
namespace {

topo::GeneratorConfig smallConfig(std::uint64_t seed) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    for (auto& profile : config.africa) {
        profile.asPerMillionPeople *= 0.4;
        profile.minAsesPerCountry = 1;
        profile.ixpCount = std::max(1, profile.ixpCount / 2);
    }
    config.europe.accessPerCountry = 2;
    config.northAmerica.accessPerCountry = 2;
    config.southAmerica.accessPerCountry = 2;
    config.asiaPacific.accessPerCountry = 2;
    return config;
}

TEST(MonteCarloSampler, SameSeedAndTagReproduceEveryDraw) {
    const auto registry = phys::CableRegistry::africanDefaults();
    SamplerConfig config;
    config.seed = 99;
    config.count = 64;
    config.importanceBoost = 2.0;
    const MonteCarloSampler sampler{registry, config};
    const auto first = sampler.sample("mc");
    const auto second = sampler.sample("mc");
    ASSERT_EQ(first.size(), 64U);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].spec.name, "mc#" + std::to_string(i));
        EXPECT_EQ(first[i].spec.cutCables, second[i].spec.cutCables);
        EXPECT_DOUBLE_EQ(first[i].spec.repairDays,
                         second[i].spec.repairDays);
        EXPECT_DOUBLE_EQ(first[i].weight, second[i].weight);
        EXPECT_GE(first[i].spec.repairDays, config.repairFloorDays);
        EXPECT_FALSE(first[i].spec.cutCables.empty());
    }
    // A different tag is an unrelated stream.
    const auto other = sampler.sample("other");
    std::size_t differing = 0;
    for (std::size_t i = 0; i < first.size(); ++i) {
        if (first[i].spec.cutCables != other[i].spec.cutCables) {
            ++differing;
        }
    }
    EXPECT_GT(differing, 32U);
}

TEST(MonteCarloSampler, UnitBoostKeepsEveryWeightExactlyOne) {
    // boost == 1: proposal == target, so the likelihood ratio collapses
    // to exactly 1.0 for every scenario (pow(x, 1.0) == x in IEEE; the
    // log-ratios cancel term by term).
    const auto registry = phys::CableRegistry::africanDefaults();
    SamplerConfig config;
    config.count = 200;
    config.importanceBoost = 1.0;
    const MonteCarloSampler sampler{registry, config};
    for (const sweep::WeightedSpec& drawn : sampler.sample("flat")) {
        EXPECT_EQ(drawn.weight, 1.0) << drawn.spec.name;
    }
}

TEST(MonteCarloSampler, BoostOversamplesMultiCableTails) {
    const auto registry = phys::CableRegistry::africanDefaults();
    SamplerConfig flat;
    flat.count = 400;
    flat.importanceBoost = 1.0;
    SamplerConfig tilted = flat;
    tilted.importanceBoost = 3.0;

    const auto countMulti = [](const std::vector<sweep::WeightedSpec>& batch) {
        std::size_t multi = 0;
        for (const sweep::WeightedSpec& drawn : batch) {
            if (drawn.spec.cutCables.size() > 2) {
                ++multi;
            }
        }
        return multi;
    };
    const auto flatBatch =
        MonteCarloSampler{registry, flat}.sample("tails");
    const auto tiltedBatch =
        MonteCarloSampler{registry, tilted}.sample("tails");
    EXPECT_GT(countMulti(tiltedBatch), countMulti(flatBatch));
    // Every importance weight is a usable likelihood ratio, and the tilt
    // actually discounts at least the oversampled tails (some weight
    // must fall below 1 once any correlated casualty was drawn).
    double minWeight = 1.0;
    for (const sweep::WeightedSpec& drawn : tiltedBatch) {
        ASSERT_TRUE(std::isfinite(drawn.weight)) << drawn.spec.name;
        ASSERT_GT(drawn.weight, 0.0) << drawn.spec.name;
        minWeight = std::min(minWeight, drawn.weight);
    }
    EXPECT_LT(minWeight, 1.0);
}

TEST(MonteCarloSampler, RejectsInvalidConfigs) {
    const auto registry = phys::CableRegistry::africanDefaults();
    const auto rejects = [&](auto mutate) {
        SamplerConfig config;
        mutate(config);
        EXPECT_FALSE(config.validate().hasValue());
        EXPECT_THROW((MonteCarloSampler{registry, config}),
                     net::PreconditionError);
    };
    rejects([](SamplerConfig& c) { c.count = 0; });
    rejects([](SamplerConfig& c) { c.importanceBoost = 0.9; });
    rejects([](SamplerConfig& c) { c.correlation.maxProb = 1.0; });
    rejects([](SamplerConfig& c) { c.correlation.sameCorridorProb = -0.1; });
    rejects([](SamplerConfig& c) { c.repairMeanDays = 0.0; });
    rejects([](SamplerConfig& c) { c.repairFloorDays = -1.0; });
    EXPECT_TRUE(SamplerConfig{}.validate().hasValue());
}

/// The ISSUE's differential harness: one catalog (hand-written cascade +
/// buildout + Monte-Carlo block), compiled once, swept on a sequential
/// reference substrate and then on pooled substrates at 1/2/8 threads,
/// cold and warm cache — every scenario outcome and the weighted
/// aggregate must be byte-identical throughout.
TEST(MonteCarloSampler, BatchSweepIsByteIdenticalAcrossThreads) {
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(19)}.generate();

    ScenarioCatalog catalog;
    catalog.add(CascadeTemplate::phasedRecovery(
        "recovery", {"WACS", "MainOne"}, 10.0));
    SampledTemplate mc;
    mc.name = "mc";
    mc.config.seed = 77;
    mc.config.count = 40;
    mc.config.importanceBoost = 2.0;
    // Keep the unique-cut-set count modest on the small topology.
    mc.config.correlation.sameCorridorProb = 0.25;
    mc.config.correlation.sharedLandingProb = 0.02;
    catalog.add(mc);

    sweep::SweepOptions options;
    options.scenarioAggregates = true;
    const core::Substrate reference{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};
    const auto batch = catalog.compile(reference);
    ASSERT_TRUE(batch.hasValue()) << batch.error().message;
    const sweep::ScenarioSweepEngine referenceEngine{reference, options};
    const auto referenceRun = referenceEngine.runBatch(batch.value());
    ASSERT_EQ(referenceRun.sweep.stats.errors, 0U);
    EXPECT_GT(referenceRun.aggregate.totalWeight, 0.0);
    EXPECT_EQ(referenceRun.aggregate.scored, batch.value().entries.size());

    const auto expectSame = [&](const sweep::BatchSweepResult& run,
                                const std::string& label) {
        ASSERT_EQ(run.sweep.scenarios.size(),
                  referenceRun.sweep.scenarios.size())
            << label;
        for (std::size_t i = 0; i < run.sweep.scenarios.size(); ++i) {
            ASSERT_TRUE(run.sweep.scenarios[i].outcome.hasValue())
                << label << " scenario " << i;
            EXPECT_TRUE(run.sweep.scenarios[i].outcome.value() ==
                        referenceRun.sweep.scenarios[i].outcome.value())
                << label << " scenario " << i;
            ASSERT_TRUE(run.sweep.scenarios[i].aggregates.has_value())
                << label << " scenario " << i;
            EXPECT_TRUE(*run.sweep.scenarios[i].aggregates ==
                        *referenceRun.sweep.scenarios[i].aggregates)
                << label << " scenario " << i;
        }
        EXPECT_TRUE(run.aggregate == referenceRun.aggregate) << label;
    };

    for (const int threads : {1, 2, 8}) {
        exec::WorkerPool pool{threads};
        route::OracleCache cache{topo, 64, &pool};
        core::Substrate::Options accel;
        accel.oracleCache = &cache;
        accel.pool = &pool;
        const core::Substrate pooled{
            topo, phys::CableRegistry::africanDefaults(),
            dns::DnsConfig::defaults(), content::ContentConfig::defaults(),
            accel};
        // The compiled batch must not depend on the substrate's
        // accelerators either.
        const auto pooledBatch = catalog.compile(pooled);
        ASSERT_TRUE(pooledBatch.hasValue());
        const sweep::ScenarioSweepEngine engine{pooled, options};
        const std::string label = "threads=" + std::to_string(threads);
        expectSame(engine.runBatch(pooledBatch.value()), label + " cold");
        expectSame(engine.runBatch(pooledBatch.value()), label + " warm");
    }
}

TEST(MonteCarloSampler, ReaggregationMatchesRunBatch) {
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(23)}.generate();
    const core::Substrate substrate{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};

    ScenarioCatalog catalog;
    SampledTemplate mc;
    mc.name = "mc";
    mc.config.count = 16;
    mc.config.importanceBoost = 1.5;
    catalog.add(mc);
    const auto batch = catalog.compile(substrate);
    ASSERT_TRUE(batch.hasValue());

    const sweep::ScenarioSweepEngine engine{substrate};
    const auto run = engine.runBatch(batch.value());
    const auto again = sweep::ScenarioSweepEngine::aggregate(
        run.sweep, batch.value().weights());
    EXPECT_TRUE(run.aggregate == again);
    // Uniform re-weighting changes the estimate's weighting but keeps
    // the bookkeeping consistent.
    const std::vector<double> uniform(batch.value().entries.size(), 1.0);
    const auto unweighted =
        sweep::ScenarioSweepEngine::aggregate(run.sweep, uniform);
    EXPECT_EQ(unweighted.scored, run.aggregate.scored);
    EXPECT_DOUBLE_EQ(unweighted.totalWeight,
                     static_cast<double>(batch.value().entries.size()));
}

} // namespace
} // namespace aio::scenario
