// Property/fuzz coverage for the Monte-Carlo sampler and catalog
// compiler, run under ASan/UBSan in CI (the job filters on
// *Fuzz*:*Property*): randomized configs must either be rejected by
// validate() or produce batches whose every spec validates, with finite
// positive weights — and resampling must be bit-reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "netbase/rng.hpp"
#include "scenario/catalog.hpp"
#include "scenario/sampler.hpp"
#include "topo/generator.hpp"

namespace aio::scenario {
namespace {

topo::GeneratorConfig tinyConfig(std::uint64_t seed) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    for (auto& profile : config.africa) {
        profile.asPerMillionPeople *= 0.4;
        profile.minAsesPerCountry = 1;
        profile.ixpCount = std::max(1, profile.ixpCount / 2);
    }
    config.europe.accessPerCountry = 2;
    config.northAmerica.accessPerCountry = 2;
    config.southAmerica.accessPerCountry = 2;
    config.asiaPacific.accessPerCountry = 2;
    return config;
}

SamplerConfig randomConfig(net::Rng& rng) {
    SamplerConfig config;
    config.seed = rng.next();
    config.count = 1 + rng.uniformInt(24);
    config.correlation.sameCorridorProb = rng.uniformReal(0.0, 1.2);
    config.correlation.sharedLandingProb = rng.uniformReal(0.0, 0.3);
    config.correlation.maxProb = rng.uniformReal(0.05, 0.99);
    config.importanceBoost = rng.uniformReal(1.0, 4.0);
    config.repairMeanDays = rng.uniformReal(1.0, 40.0);
    config.repairFloorDays = rng.uniformReal(0.0, 5.0);
    return config;
}

TEST(SamplerProperty, RandomConfigsYieldValidWeightedSpecs) {
    const topo::Topology topo =
        topo::TopologyGenerator{tinyConfig(31)}.generate();
    const core::Substrate substrate{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};
    const auto& registry = substrate.registry();

    net::Rng rng{20250808};
    for (int round = 0; round < 40; ++round) {
        const SamplerConfig config = randomConfig(rng);
        ASSERT_TRUE(config.validate().hasValue()) << round;
        const MonteCarloSampler sampler{registry, config};
        const auto batch = sampler.sample("prop-" + std::to_string(round));
        ASSERT_EQ(batch.size(), config.count) << round;
        for (const sweep::WeightedSpec& drawn : batch) {
            ASSERT_TRUE(std::isfinite(drawn.weight)) << drawn.spec.name;
            ASSERT_GT(drawn.weight, 0.0) << drawn.spec.name;
            ASSERT_FALSE(drawn.spec.cutCables.empty()) << drawn.spec.name;
            ASSERT_GE(drawn.spec.repairDays, config.repairFloorDays)
                << drawn.spec.name;
            const auto valid = drawn.spec.validate(substrate);
            ASSERT_TRUE(valid.hasValue())
                << drawn.spec.name << ": " << valid.error().message;
            // The drawn cut set resolves and canonicalizes cleanly.
            ASSERT_TRUE(drawn.spec.makeEvent(registry).hasValue())
                << drawn.spec.name;
        }
    }
}

TEST(SamplerProperty, ResamplingIsBitReproducible) {
    const auto registry = phys::CableRegistry::africanDefaults();
    net::Rng rng{777};
    for (int round = 0; round < 10; ++round) {
        const SamplerConfig config = randomConfig(rng);
        const MonteCarloSampler first{registry, config};
        const MonteCarloSampler second{registry, config};
        const std::string tag = "bits-" + std::to_string(round);
        const auto a = first.sample(tag);
        const auto b = second.sample(tag);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i].spec.name, b[i].spec.name);
            ASSERT_EQ(a[i].spec.cutCables, b[i].spec.cutCables);
            // Bitwise, not approximate: the draws are pure functions of
            // (seed, tag, index).
            ASSERT_EQ(a[i].spec.repairDays, b[i].spec.repairDays);
            ASSERT_EQ(a[i].weight, b[i].weight);
        }
    }
}

TEST(CatalogFuzz, RandomCatalogsCompileOrFailCleanly) {
    // Randomized cascades mixing valid cable names with typos and
    // occasional timeline mistakes: compile() must either return a batch
    // whose every entry validates, or a typed error naming a template —
    // never crash, never return a half-validated batch.
    const topo::Topology topo =
        topo::TopologyGenerator{tinyConfig(37)}.generate();
    const core::Substrate substrate{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};

    const std::vector<std::string> pool = {
        "WACS", "MainOne", "SAT-3", "ACE",     "Glo-1",   "SEACOM",
        "EASSy", "EIG",    "AAE-1", "Equiano", "2Africa", "Atlantis-9"};

    net::Rng rng{4242};
    for (int round = 0; round < 60; ++round) {
        ScenarioCatalog catalog;
        const std::size_t cascades = 1 + rng.uniformInt(3);
        for (std::size_t c = 0; c < cascades; ++c) {
            CascadeTemplate cascade;
            cascade.name =
                "fz-" + std::to_string(round) + "-" + std::to_string(c);
            cascade.cumulativeCuts = rng.bernoulli(0.5);
            double day = 0.0;
            const std::size_t phases = 1 + rng.uniformInt(4);
            for (std::size_t p = 0; p < phases; ++p) {
                PhaseSpec phase;
                phase.name = "p" + std::to_string(p);
                const std::size_t cuts = 1 + rng.uniformInt(3);
                for (std::size_t k = 0; k < cuts; ++k) {
                    phase.cutCables.push_back(
                        pool[rng.uniformInt(pool.size())]);
                }
                day += rng.uniformReal(0.0, 10.0);
                // Occasionally break the timeline on purpose.
                phase.startDay = rng.bernoulli(0.1) ? -day : day;
                phase.durationDays = rng.uniformReal(1.0, 30.0);
                cascade.phases.push_back(std::move(phase));
            }
            catalog.add(std::move(cascade));
        }
        if (rng.bernoulli(0.5)) {
            SampledTemplate mc;
            mc.name = "fz-mc-" + std::to_string(round);
            net::Rng configRng{rng.next()};
            mc.config = randomConfig(configRng);
            mc.config.count = 1 + rng.uniformInt(8);
            catalog.add(std::move(mc));
        }

        const auto batch = catalog.compile(substrate);
        if (!batch.hasValue()) {
            EXPECT_NE(batch.error().message.find("template"),
                      std::string::npos)
                << batch.error().message;
            continue;
        }
        for (const sweep::WeightedSpec& entry : batch.value().entries) {
            ASSERT_TRUE(entry.spec.validate(substrate).hasValue())
                << entry.spec.name;
            ASSERT_TRUE(std::isfinite(entry.weight));
            ASSERT_GT(entry.weight, 0.0);
        }
    }
}

TEST(CatalogFuzz, CompileIsDeterministic) {
    const topo::Topology topo =
        topo::TopologyGenerator{tinyConfig(41)}.generate();
    const core::Substrate substrate{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};

    ScenarioCatalog catalog;
    catalog.add(CascadeTemplate::phasedRecovery(
        "rec", {"WACS", "ACE", "SEACOM"}, 6.0));
    SampledTemplate mc;
    mc.name = "mc";
    mc.config.count = 20;
    mc.config.importanceBoost = 2.5;
    catalog.add(mc);

    const auto a = catalog.compile(substrate);
    const auto b = catalog.compile(substrate);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    ASSERT_EQ(a.value().entries.size(), b.value().entries.size());
    for (std::size_t i = 0; i < a.value().entries.size(); ++i) {
        const auto& ea = a.value().entries[i];
        const auto& eb = b.value().entries[i];
        ASSERT_EQ(ea.spec.name, eb.spec.name);
        ASSERT_EQ(ea.spec.cutCables, eb.spec.cutCables);
        ASSERT_EQ(ea.spec.repairDays, eb.spec.repairDays);
        ASSERT_EQ(ea.weight, eb.weight);
    }
}

} // namespace
} // namespace aio::scenario
