// The ISSUE's acceptance scenario at full scale: a seeded 10k-scenario
// Monte-Carlo sweep compiled from a catalog completes, reports a
// throughput figure, and is byte-identical across 1/2/8 worker threads.
// Sanitizer builds run a reduced batch (same shape, smaller count) so
// TSan/ASan stay within CI budgets.

#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "exec/worker_pool.hpp"
#include "routing/oracle_cache.hpp"
#include "scenario/catalog.hpp"
#include "sweep/scenario_sweep.hpp"
#include "topo/generator.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define AIO_SCALE_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AIO_SCALE_SANITIZED 1
#endif

namespace aio::scenario {
namespace {

#if defined(AIO_SCALE_SANITIZED)
constexpr std::size_t kScenarioCount = 1500;
#else
constexpr std::size_t kScenarioCount = 10000;
#endif

topo::GeneratorConfig tinyConfig(std::uint64_t seed) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    for (auto& profile : config.africa) {
        profile.asPerMillionPeople *= 0.4;
        profile.minAsesPerCountry = 1;
        profile.ixpCount = std::max(1, profile.ixpCount / 2);
    }
    config.europe.accessPerCountry = 2;
    config.northAmerica.accessPerCountry = 2;
    config.southAmerica.accessPerCountry = 2;
    config.asiaPacific.accessPerCountry = 2;
    return config;
}

TEST(CatalogScale, TenThousandScenarioSweepIsByteIdenticalAcrossThreads) {
    const topo::Topology topo =
        topo::TopologyGenerator{tinyConfig(29)}.generate();

    ScenarioCatalog catalog;
    SampledTemplate mc;
    mc.name = "mc10k";
    mc.config.seed = 2025;
    mc.config.count = kScenarioCount;
    mc.config.importanceBoost = 2.0;
    // Mild correlation keeps the unique-cut-set count (and thus the
    // oracle-build bill) bounded while still drawing multi-cable tails;
    // dedupe carries the rest of the batch.
    mc.config.correlation.sameCorridorProb = 0.02;
    mc.config.correlation.sharedLandingProb = 0.002;
    catalog.add(mc);

    const core::Substrate plain{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};
    const auto batch = catalog.compile(plain);
    ASSERT_TRUE(batch.hasValue()) << batch.error().message;
    ASSERT_EQ(batch.value().entries.size(), kScenarioCount);

    std::vector<sweep::BatchSweepResult> runs;
    for (const int threads : {1, 2, 8}) {
        exec::WorkerPool pool{threads};
        route::OracleCache cache{topo, 512, &pool};
        core::Substrate::Options accel;
        accel.oracleCache = &cache;
        accel.pool = &pool;
        const core::Substrate substrate{
            topo, phys::CableRegistry::africanDefaults(),
            dns::DnsConfig::defaults(), content::ContentConfig::defaults(),
            accel};
        const sweep::ScenarioSweepEngine engine{substrate};
        runs.push_back(engine.runBatch(batch.value()));

        const sweep::SweepStats& stats = runs.back().sweep.stats;
        EXPECT_EQ(stats.scenarios, kScenarioCount);
        EXPECT_EQ(stats.errors, 0U);
        EXPECT_GT(stats.elapsedSeconds, 0.0);
        EXPECT_GT(stats.scenariosPerSec(), 0.0);
        // Dedupe is what makes the batch tractable: far fewer unique
        // routing states than scenarios.
        EXPECT_GT(stats.dedupHits, kScenarioCount / 2);
        EXPECT_LT(stats.incrementalBuilds, kScenarioCount / 4);
        const double hitRate = static_cast<double>(stats.dedupHits) /
                               static_cast<double>(stats.scenarios);
        RecordProperty("threads_" + std::to_string(threads) +
                           "_scenarios_per_sec",
                       std::to_string(stats.scenariosPerSec()));
        RecordProperty("threads_" + std::to_string(threads) +
                           "_dedupe_hit_rate",
                       std::to_string(hitRate));
        std::cout << "[catalog-scale] threads=" << threads
                  << " scenarios=" << stats.scenarios
                  << " scenarios/sec=" << stats.scenariosPerSec()
                  << " dedupe_hit_rate=" << hitRate
                  << " unique_builds=" << stats.incrementalBuilds << "\n";
    }

    const sweep::BatchSweepResult& reference = runs.front();
    EXPECT_GT(reference.aggregate.totalWeight, 0.0);
    EXPECT_EQ(reference.aggregate.scored, kScenarioCount);
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].sweep.scenarios.size(),
                  reference.sweep.scenarios.size());
        for (std::size_t i = 0; i < reference.sweep.scenarios.size(); ++i) {
            ASSERT_TRUE(runs[r].sweep.scenarios[i].outcome.hasValue())
                << "run " << r << " scenario " << i;
            ASSERT_TRUE(runs[r].sweep.scenarios[i].outcome.value() ==
                        reference.sweep.scenarios[i].outcome.value())
                << "run " << r << " scenario " << i << " ("
                << reference.sweep.scenarios[i].scenario << ")";
        }
        EXPECT_TRUE(runs[r].aggregate == reference.aggregate)
            << "run " << r;
    }
}

} // namespace
} // namespace aio::scenario
