#include "phys/linkmap.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/generator.hpp"

namespace aio::phys {
namespace {

const topo::Topology& topology() {
    static const topo::Topology topo =
        topo::TopologyGenerator{topo::GeneratorConfig::defaults()}.generate();
    return topo;
}

const PhysicalLinkMap& linkMap() {
    static net::Rng rng{1234};
    static const CableRegistry reg = CableRegistry::africanDefaults();
    static const PhysicalLinkMap map{topology(), reg, rng};
    return map;
}

TEST(PhysicalLinkMap, EveryAdjacencyHasAPhysicalPath) {
    const auto& topo = topology();
    for (const auto& link : topo.links()) {
        const PhysicalPath& path = linkMap().forLink(link.a, link.b);
        if (path.medium == MediumKind::Subsea) {
            EXPECT_FALSE(path.cables.empty());
            EXPECT_LE(path.cables.size(), 2U);
        } else {
            EXPECT_TRUE(path.cables.empty());
        }
    }
}

TEST(PhysicalLinkMap, DomesticLinksAreTerrestrial) {
    const auto& topo = topology();
    for (const auto& link : topo.links()) {
        if (topo.as(link.a).countryCode == topo.as(link.b).countryCode) {
            EXPECT_EQ(linkMap().forLink(link.a, link.b).medium,
                      MediumKind::Terrestrial);
        }
    }
}

TEST(PhysicalLinkMap, AssignedCablesActuallyServeTheGateways) {
    const auto& topo = topology();
    const auto& reg = linkMap().registry();
    for (const auto& link : topo.links()) {
        const PhysicalPath& path = linkMap().forLink(link.a, link.b);
        if (path.medium != MediumKind::Subsea) continue;
        const auto& a = topo.as(link.a);
        const auto& b = topo.as(link.b);
        const bool bothAfrican =
            net::isAfrican(a.region) && net::isAfrican(b.region);
        for (const CableId id : path.cables) {
            const auto& cable = reg.cable(id);
            if (bothAfrican) {
                EXPECT_TRUE(cable.landsIn(
                    PhysicalLinkMap::coastalGateway(a.countryCode)));
                EXPECT_TRUE(cable.landsIn(
                    PhysicalLinkMap::coastalGateway(b.countryCode)));
            }
        }
    }
}

TEST(PhysicalLinkMap, CoastalGatewayMapping) {
    EXPECT_EQ(PhysicalLinkMap::coastalGateway("RW"), "TZ");
    EXPECT_EQ(PhysicalLinkMap::coastalGateway("ET"), "DJ");
    EXPECT_EQ(PhysicalLinkMap::coastalGateway("ZM"), "ZA");
    // Coastal countries are their own gateway.
    EXPECT_EQ(PhysicalLinkMap::coastalGateway("GH"), "GH");
    EXPECT_EQ(PhysicalLinkMap::coastalGateway("KE"), "KE");
}

TEST(PhysicalLinkMap, FailedLinksRespectBackupCables) {
    const auto& reg = linkMap().registry();
    const CableId wacs = reg.byName("WACS");
    std::unordered_set<CableId> cuts{wacs};
    for (const auto& [a, b] : linkMap().failedLinks(cuts)) {
        const PhysicalPath& path = linkMap().forLink(a, b);
        // A failed link must have had ALL carriers cut.
        for (const CableId id : path.cables) {
            EXPECT_TRUE(cuts.contains(id));
        }
    }
    // Cutting one cable fails strictly fewer links than cutting the whole
    // corridor (correlated failure is worse).
    std::unordered_set<CableId> corridorCuts;
    for (const CableId id :
         reg.cablesInCorridor(reg.cable(wacs).corridor)) {
        corridorCuts.insert(id);
    }
    EXPECT_GT(linkMap().failedLinks(corridorCuts).size(),
              linkMap().failedLinks(cuts).size());
}

TEST(PhysicalLinkMap, CorrelatedBackupsDominate) {
    // Among subsea links with two carriers, the majority should share a
    // corridor (the paper's critique of count-only backup legislation).
    const auto& topo = topology();
    const auto& reg = linkMap().registry();
    int sameCorridor = 0;
    int diverse = 0;
    for (const auto& link : topo.links()) {
        const PhysicalPath& path = linkMap().forLink(link.a, link.b);
        if (path.medium != MediumKind::Subsea || path.cables.size() != 2) {
            continue;
        }
        if (reg.cable(path.cables[0]).corridor ==
            reg.cable(path.cables[1]).corridor) {
            ++sameCorridor;
        } else {
            ++diverse;
        }
    }
    ASSERT_GT(sameCorridor + diverse, 50);
    EXPECT_GT(sameCorridor, diverse);
}

TEST(PhysicalLinkMap, LinksUsingCableIsConsistentWithForLink) {
    const auto& reg = linkMap().registry();
    const CableId seacom = reg.byName("SEACOM");
    for (const auto& [a, b] : linkMap().linksUsingCable(seacom)) {
        const PhysicalPath& path = linkMap().forLink(a, b);
        EXPECT_TRUE(std::ranges::find(path.cables, seacom) !=
                    path.cables.end());
    }
}

} // namespace
} // namespace aio::phys
