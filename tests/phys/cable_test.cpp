#include "phys/cable.hpp"

#include <gtest/gtest.h>

#include "netbase/error.hpp"

namespace aio::phys {
namespace {

TEST(CableRegistry, DefaultsContainThePaperCables) {
    const auto reg = CableRegistry::africanDefaults();
    EXPECT_GE(reg.cableCount(), 15U);
    // The March 2024 West-coast victims must exist and share a corridor.
    const CableId wacs = reg.byName("WACS");
    const CableId mainOne = reg.byName("MainOne");
    const CableId sat3 = reg.byName("SAT-3");
    const CableId ace = reg.byName("ACE");
    EXPECT_EQ(reg.cable(wacs).corridor, reg.cable(mainOne).corridor);
    EXPECT_EQ(reg.cable(sat3).corridor, reg.cable(ace).corridor);
    // ... and the East-coast victims share another.
    const CableId eig = reg.byName("EIG");
    const CableId seacom = reg.byName("SEACOM");
    const CableId aae1 = reg.byName("AAE-1");
    EXPECT_EQ(reg.cable(eig).corridor, reg.cable(seacom).corridor);
    EXPECT_EQ(reg.cable(eig).corridor, reg.cable(aae1).corridor);
    EXPECT_NE(reg.cable(wacs).corridor, reg.cable(eig).corridor);
    // The diverse newcomers are NOT in the legacy corridors.
    const CableId equiano = reg.byName("Equiano");
    const CableId twoAfrica = reg.byName("2Africa");
    EXPECT_NE(reg.cable(equiano).corridor, reg.cable(wacs).corridor);
    EXPECT_NE(reg.cable(twoAfrica).corridor, reg.cable(wacs).corridor);
    EXPECT_NE(reg.cable(twoAfrica).corridor, reg.cable(eig).corridor);
}

TEST(CableRegistry, LandingLookups) {
    const auto reg = CableRegistry::africanDefaults();
    const auto& wacs = reg.cable(reg.byName("WACS"));
    EXPECT_TRUE(wacs.landsIn("GH"));
    EXPECT_TRUE(wacs.landsIn("ZA"));
    EXPECT_FALSE(wacs.landsIn("KE"));

    const auto ghanaCables = reg.cablesLandingIn("GH");
    EXPECT_GE(ghanaCables.size(), 4U); // WACS, SAT-3, MainOne, ACE, Glo-1...
    const auto ghZa = reg.cablesServing("GH", "ZA");
    for (const CableId id : ghZa) {
        EXPECT_TRUE(reg.cable(id).landsIn("GH"));
        EXPECT_TRUE(reg.cable(id).landsIn("ZA"));
    }
}

TEST(CableRegistry, CablesToEuropeReachTheEuShore) {
    const auto reg = CableRegistry::africanDefaults();
    const auto fromKenya = reg.cablesToEurope("KE");
    EXPECT_FALSE(fromKenya.empty());
    for (const CableId id : fromKenya) {
        EXPECT_TRUE(reg.cable(id).landsIn("KE"));
    }
    // A landlocked country has no direct cables.
    EXPECT_TRUE(reg.cablesToEurope("RW").empty());
}

TEST(CableRegistry, CorridorQueries) {
    const auto reg = CableRegistry::africanDefaults();
    const auto corridorOfWacs = reg.cable(reg.byName("WACS")).corridor;
    const auto westCables = reg.cablesInCorridor(corridorOfWacs);
    EXPECT_GE(westCables.size(), 4U);
    for (const CableId id : westCables) {
        EXPECT_EQ(reg.cable(id).corridor, corridorOfWacs);
    }
}

TEST(CableRegistry, UnknownNameThrows) {
    const auto reg = CableRegistry::africanDefaults();
    EXPECT_THROW(reg.byName("NoSuchCable"), net::NotFoundError);
}

TEST(CableRegistry, ValidatesConstruction) {
    CableRegistry reg;
    SubseaCable bad;
    bad.name = "bad";
    bad.corridor = 0; // no corridor exists yet
    EXPECT_THROW(reg.addCable(bad), net::PreconditionError);
    const auto corridor = reg.addCorridor("test");
    bad.corridor = corridor;
    EXPECT_THROW(reg.addCable(bad), net::PreconditionError); // <2 landings
}

} // namespace
} // namespace aio::phys
