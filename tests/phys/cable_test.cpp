#include "phys/cable.hpp"

#include <gtest/gtest.h>

#include "netbase/error.hpp"

namespace aio::phys {
namespace {

TEST(CableRegistry, DefaultsContainThePaperCables) {
    const auto reg = CableRegistry::africanDefaults();
    EXPECT_GE(reg.cableCount(), 15U);
    // The March 2024 West-coast victims must exist and share a corridor.
    const CableId wacs = reg.byName("WACS");
    const CableId mainOne = reg.byName("MainOne");
    const CableId sat3 = reg.byName("SAT-3");
    const CableId ace = reg.byName("ACE");
    EXPECT_EQ(reg.cable(wacs).corridor, reg.cable(mainOne).corridor);
    EXPECT_EQ(reg.cable(sat3).corridor, reg.cable(ace).corridor);
    // ... and the East-coast victims share another.
    const CableId eig = reg.byName("EIG");
    const CableId seacom = reg.byName("SEACOM");
    const CableId aae1 = reg.byName("AAE-1");
    EXPECT_EQ(reg.cable(eig).corridor, reg.cable(seacom).corridor);
    EXPECT_EQ(reg.cable(eig).corridor, reg.cable(aae1).corridor);
    EXPECT_NE(reg.cable(wacs).corridor, reg.cable(eig).corridor);
    // The diverse newcomers are NOT in the legacy corridors.
    const CableId equiano = reg.byName("Equiano");
    const CableId twoAfrica = reg.byName("2Africa");
    EXPECT_NE(reg.cable(equiano).corridor, reg.cable(wacs).corridor);
    EXPECT_NE(reg.cable(twoAfrica).corridor, reg.cable(wacs).corridor);
    EXPECT_NE(reg.cable(twoAfrica).corridor, reg.cable(eig).corridor);
}

TEST(CableRegistry, LandingLookups) {
    const auto reg = CableRegistry::africanDefaults();
    const auto& wacs = reg.cable(reg.byName("WACS"));
    EXPECT_TRUE(wacs.landsIn("GH"));
    EXPECT_TRUE(wacs.landsIn("ZA"));
    EXPECT_FALSE(wacs.landsIn("KE"));

    const auto ghanaCables = reg.cablesLandingIn("GH");
    EXPECT_GE(ghanaCables.size(), 4U); // WACS, SAT-3, MainOne, ACE, Glo-1...
    const auto ghZa = reg.cablesServing("GH", "ZA");
    for (const CableId id : ghZa) {
        EXPECT_TRUE(reg.cable(id).landsIn("GH"));
        EXPECT_TRUE(reg.cable(id).landsIn("ZA"));
    }
}

TEST(CableRegistry, CablesToEuropeReachTheEuShore) {
    const auto reg = CableRegistry::africanDefaults();
    const auto fromKenya = reg.cablesToEurope("KE");
    EXPECT_FALSE(fromKenya.empty());
    for (const CableId id : fromKenya) {
        EXPECT_TRUE(reg.cable(id).landsIn("KE"));
    }
    // A landlocked country has no direct cables.
    EXPECT_TRUE(reg.cablesToEurope("RW").empty());
}

TEST(CableRegistry, CorridorQueries) {
    const auto reg = CableRegistry::africanDefaults();
    const auto corridorOfWacs = reg.cable(reg.byName("WACS")).corridor;
    const auto westCables = reg.cablesInCorridor(corridorOfWacs);
    EXPECT_GE(westCables.size(), 4U);
    for (const CableId id : westCables) {
        EXPECT_EQ(reg.cable(id).corridor, corridorOfWacs);
    }
}

TEST(CableRegistry, SharedLandingCountIsSymmetric) {
    const auto reg = CableRegistry::africanDefaults();
    const CableId wacs = reg.byName("WACS");
    const CableId sat3 = reg.byName("SAT-3");
    const CableId seacom = reg.byName("SEACOM");
    // Both legacy west-coast systems land in several shared countries.
    EXPECT_GE(reg.sharedLandingCount(wacs, sat3), 2U);
    EXPECT_EQ(reg.sharedLandingCount(wacs, sat3),
              reg.sharedLandingCount(sat3, wacs));
    // Opposite coasts touch at most the South-African junction — far
    // less shared shore than corridor mates.
    EXPECT_LT(reg.sharedLandingCount(wacs, seacom),
              reg.sharedLandingCount(wacs, sat3));
    EXPECT_EQ(reg.sharedLandingCount(wacs, seacom),
              reg.sharedLandingCount(seacom, wacs));
}

TEST(CableRegistry, CutCorrelationReflectsGeography) {
    const auto reg = CableRegistry::africanDefaults();
    const CableCorrelationConfig config;
    const CableId wacs = reg.byName("WACS");
    const CableId sat3 = reg.byName("SAT-3");
    const CableId mainOne = reg.byName("MainOne");
    const CableId seacom = reg.byName("SEACOM");
    const CableId equiano = reg.byName("Equiano");

    // Self-correlation is certain; everything else is capped.
    EXPECT_DOUBLE_EQ(reg.cutCorrelation(wacs, wacs, config), 1.0);
    // Same corridor dominates: a WACS anchor drag threatens SAT-3 far
    // more than the east-coast SEACOM.
    const double corridorMate = reg.cutCorrelation(wacs, sat3, config);
    const double oppositeCoast = reg.cutCorrelation(wacs, seacom, config);
    EXPECT_GE(corridorMate, config.sameCorridorProb);
    EXPECT_LE(corridorMate, config.maxProb);
    EXPECT_LT(oppositeCoast, config.sameCorridorProb);
    // Shared landings add correlation even across corridors: Equiano
    // shares west-coast shore with WACS but not WACS's corridor.
    EXPECT_GT(reg.cutCorrelation(wacs, equiano, config), 0.0);
    // Symmetric in its shared-geography inputs for same-corridor pairs.
    EXPECT_DOUBLE_EQ(corridorMate, reg.cutCorrelation(sat3, wacs, config));
    EXPECT_DOUBLE_EQ(reg.cutCorrelation(wacs, mainOne, config),
                     reg.cutCorrelation(mainOne, wacs, config));

    // The cap clamps a heavily-tilted configuration.
    CableCorrelationConfig hot;
    hot.sameCorridorProb = 0.9;
    hot.sharedLandingProb = 0.5;
    hot.maxProb = 0.95;
    EXPECT_DOUBLE_EQ(reg.cutCorrelation(wacs, sat3, hot), 0.95);
}

TEST(CableRegistry, UnknownNameThrows) {
    const auto reg = CableRegistry::africanDefaults();
    EXPECT_THROW(reg.byName("NoSuchCable"), net::NotFoundError);
}

TEST(CableRegistry, ValidatesConstruction) {
    CableRegistry reg;
    SubseaCable bad;
    bad.name = "bad";
    bad.corridor = 0; // no corridor exists yet
    EXPECT_THROW(reg.addCable(bad), net::PreconditionError);
    const auto corridor = reg.addCorridor("test");
    bad.corridor = corridor;
    EXPECT_THROW(reg.addCable(bad), net::PreconditionError); // <2 landings
}

} // namespace
} // namespace aio::phys
