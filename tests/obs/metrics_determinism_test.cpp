#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/worker_pool.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "persist/record.hpp"
#include "resilience/supervisor.hpp"
#include "routing/oracle_cache.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

// The observability determinism contract: a fixed-seed campaign driven
// through a ManualClock produces byte-identical metrics JSON and span
// trees whatever the worker-pool width. Counters are schedule-invariant
// by construction, durations are zero under the virtual clock, and the
// trace belongs to the (single-threaded) supervisor loop — so 1, 2 and 8
// threads must agree to the byte.
namespace aio::resilience {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    measure::TracerouteEngine engine;
    measure::IxpDetector detector;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), engine(topo, oracle),
          detector(topo, measure::IxpKnowledgeBase::full(topo)) {}
};

World& world() {
    static World w;
    return w;
}

core::ProbeFleet smallFleet() {
    auto& w = world();
    core::ProbeFleet fleet;
    int serial = 0;
    for (const char* iso2 : {"RW", "KE", "NG", "ZA"}) {
        const auto ases = w.topo.asesInCountry(iso2);
        for (int i = 0; i < 2 && i < static_cast<int>(ases.size()); ++i) {
            core::Probe probe;
            probe.id = "d-" + std::string{iso2} + std::to_string(++serial);
            probe.hostAs = ases[static_cast<std::size_t>(i)];
            probe.countryCode = iso2;
            probe.availability = 0.85;
            probe.monthlyBudgetUsd = 50.0;
            probe.pricing.kind = core::PricingModel::Kind::FlatPerMb;
            probe.pricing.perMbUsd = 0.01;
            fleet.add(probe);
        }
    }
    return fleet;
}

struct Readout {
    std::string metrics;
    std::string trace;
};

/// One full observed campaign — preflight through the oracle cache (so
/// the pool builds a degraded oracle), then a journaled, faulted run —
/// at the given pool width.
Readout runObserved(int threads) {
    auto& w = world();
    const std::uint64_t seed = 404;

    const obs::ManualClock clock;
    obs::MetricsRegistry registry{&clock};
    obs::Trace trace{&clock};
    exec::WorkerPool pool{threads, &registry};
    route::OracleCache cache{w.topo, 4, &pool, &registry};

    core::Observatory obs{w.topo, w.engine, w.detector, smallFleet()};
    SupervisorConfig config;
    config.checkpointInterval = 5;
    const CampaignSupervisor supervisor{obs, config, &registry, &trace};

    FaultPlanConfig planCfg;
    planCfg.intensity = 1.5;
    net::Rng planRng{seed};
    auto plan = FaultPlan::generate(obs.fleet(), planCfg, planRng);
    plan.addWindow(0, {FaultClass::PermanentFailure, 0.0, kNeverEnds});
    plan.addWindow(1, {FaultClass::PowerLoss, 0.0, 1.0});

    net::Rng taskRng{seed + 1};
    auto tasks = obs.ixpDiscoveryTasks(taskRng);
    if (tasks.size() > 48) {
        tasks.resize(48);
    }

    // Pre-flight under a degraded scenario: cache miss -> oracle build on
    // the pool; the second call is a pure hit.
    route::LinkFilter scenario;
    const auto& links = w.topo.links();
    for (std::size_t i = 0; i < 5 && i < links.size(); ++i) {
        scenario.disableLink(links[i].a, links[i].b);
    }
    (void)supervisor.routableTaskShare(tasks, scenario, cache);
    (void)supervisor.routableTaskShare(tasks, scenario, cache);

    FaultInjector injector{obs.fleet(), plan, 1.0};
    net::Rng rng{seed + 2};
    persist::MemorySink sink;
    (void)supervisor.runJournaled(tasks, injector, rng, sink);

    return {registry.json(), trace.json()};
}

TEST(MetricsDeterminism, ByteIdenticalAcrossPoolWidths) {
    const Readout one = runObserved(1);
    // The readout must actually cover every instrumented subsystem —
    // an empty-but-equal export would be a vacuous pass.
    for (const char* needle :
         {"supervisor.settlements", "exec.pool.loops",
          "cache.oracle.misses", "journal.appends"}) {
        EXPECT_NE(one.metrics.find(needle), std::string::npos)
            << "missing " << needle;
    }
    for (const char* needle : {"preflight", "drain", "checkpoint"}) {
        EXPECT_NE(one.trace.find(needle), std::string::npos)
            << "missing span " << needle;
    }

    for (const int threads : {2, 8}) {
        const Readout other = runObserved(threads);
        EXPECT_EQ(one.metrics, other.metrics)
            << "metrics diverge at " << threads << " threads";
        EXPECT_EQ(one.trace, other.trace)
            << "trace diverges at " << threads << " threads";
    }
}

TEST(MetricsDeterminism, RepeatedRunsAreIdenticalAtFixedWidth) {
    EXPECT_EQ(runObserved(2).metrics, runObserved(2).metrics);
}

} // namespace
} // namespace aio::resilience
