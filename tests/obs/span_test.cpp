#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "netbase/error.hpp"
#include "obs/clock.hpp"

namespace aio::obs {
namespace {

TEST(Span, NestedSpansAccumulateUnderTheirParent) {
    ManualClock clock;
    Trace trace{&clock};
    {
        Span outer = trace.span("outer");
        clock.advance(1'000'000); // 1 ms of outer-only work
        {
            Span inner = trace.span("inner");
            clock.advance(2'000'000); // 2 ms inside inner
        }
        clock.advance(1'000'000); // 1 ms more of outer-only work
    }
    const std::string json = trace.json();
    EXPECT_NE(json.find("{\"name\":\"outer\",\"count\":1,\"ms\":4.000"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("{\"name\":\"inner\",\"count\":1,\"ms\":2.000"),
              std::string::npos)
        << json;
    // inner is nested inside outer's children array, not a sibling.
    EXPECT_LT(json.find("\"outer\""), json.find("\"inner\"")) << json;
}

TEST(Span, RepeatedEntriesAggregateIntoOneNode) {
    ManualClock clock;
    Trace trace{&clock};
    for (int i = 0; i < 5; ++i) {
        Span span = trace.span("settle");
        clock.advance(1'000'000);
    }
    EXPECT_NE(trace.json().find("{\"name\":\"settle\",\"count\":5,"
                                "\"ms\":5.000"),
              std::string::npos)
        << trace.json();
}

TEST(Span, MoveTransfersOwnershipOfTheClose) {
    ManualClock clock;
    Trace trace{&clock};
    {
        Span first = trace.span("moved");
        Span second = std::move(first);
        first.close(); // inert: the moved-from span owns nothing
        clock.advance(3'000'000);
    } // second closes here
    EXPECT_NE(trace.json().find("{\"name\":\"moved\",\"count\":1,"
                                "\"ms\":3.000"),
              std::string::npos)
        << trace.json();
}

TEST(Span, CloseIsIdempotent) {
    Trace trace;
    Span span = trace.span("once");
    span.close();
    span.close();
    SUCCEED();
}

TEST(Span, EnterToleratesNullTrace) {
    Span span = Trace::enter(nullptr, "anything");
    span.close();
    SUCCEED();
}

TEST(Trace, CountNodesAccumulateWithoutTiming) {
    ManualClock clock;
    Trace trace{&clock};
    {
        const Span phase = trace.span("drain");
        trace.count("settle.completed");
        clock.advance(5'000'000); // must not leak into the count node
        trace.count("settle.completed", 41);
        trace.count("settle.retried", 0); // creates the node, count 0
    }
    const std::string json = trace.json();
    EXPECT_NE(json.find("{\"name\":\"settle.completed\",\"count\":42,"
                        "\"ms\":0.000"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("{\"name\":\"settle.retried\",\"count\":0,"
                        "\"ms\":0.000"),
              std::string::npos)
        << json;
}

TEST(Trace, ClearRequiresAllSpansClosed) {
    Trace trace;
    {
        Span open = trace.span("open");
        EXPECT_THROW(trace.clear(), net::PreconditionError);
    }
    trace.clear();
    EXPECT_EQ(trace.json(),
              "{\"name\":\"campaign\",\"count\":0,\"ms\":0.000,"
              "\"children\":[]}");
}

TEST(Trace, TableListsTheSpanTreeIndented) {
    ManualClock clock;
    Trace trace{&clock};
    {
        Span phase = trace.span("phase");
        Span step = trace.span("step");
    }
    const std::string table = trace.table();
    EXPECT_NE(table.find("campaign"), std::string::npos);
    EXPECT_NE(table.find("  phase"), std::string::npos);
    EXPECT_NE(table.find("    step"), std::string::npos);
}

} // namespace
} // namespace aio::obs
