#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "netbase/error.hpp"
#include "obs/clock.hpp"

namespace aio::obs {
namespace {

TEST(Counter, AccumulatesAndDefaultsToOne) {
    Counter counter;
    EXPECT_EQ(counter.value(), 0U);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42U);
}

TEST(Gauge, LastWriteWins) {
    Gauge gauge;
    EXPECT_EQ(gauge.value(), 0.0);
    gauge.set(3.5);
    gauge.set(-7.25);
    EXPECT_EQ(gauge.value(), -7.25);
}

TEST(Histogram, ValuesOnTheBoundaryLandInTheLowerBucket) {
    // Bucket i counts values <= bounds[i]: the boundary itself belongs to
    // the bucket it bounds, the next representable value above it does
    // not. This is the edge the percentile math depends on.
    Histogram h{{1.0, 2.0, 4.0}};
    h.record(1.0);                                     // bucket 0, exactly
    h.record(std::nextafter(1.0, 2.0));                // bucket 1, just over
    h.record(2.0);                                     // bucket 1, exactly
    h.record(4.0);                                     // bucket 2, exactly
    h.record(std::nextafter(4.0, 5.0));                // overflow
    h.record(100.0);                                   // overflow
    const Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.counts.size(), 4U);
    EXPECT_EQ(snap.counts[0], 1U);
    EXPECT_EQ(snap.counts[1], 2U);
    EXPECT_EQ(snap.counts[2], 1U);
    EXPECT_EQ(snap.counts[3], 2U);
    EXPECT_EQ(snap.count, 6U);
    EXPECT_EQ(snap.min, 1.0);
    EXPECT_EQ(snap.max, 100.0);
}

TEST(Histogram, RejectsNaNAndInf) {
    Histogram h{{1.0}};
    EXPECT_THROW(h.record(std::numeric_limits<double>::quiet_NaN()),
                 net::PreconditionError);
    EXPECT_THROW(h.record(std::numeric_limits<double>::infinity()),
                 net::PreconditionError);
    EXPECT_THROW(h.record(-std::numeric_limits<double>::infinity()),
                 net::PreconditionError);
    EXPECT_EQ(h.count(), 0U) << "rejected samples must not be counted";
}

TEST(Histogram, RejectsBadBucketLayouts) {
    EXPECT_THROW(Histogram{std::vector<double>{}}, net::PreconditionError);
    EXPECT_THROW((Histogram{{1.0, 1.0}}), net::PreconditionError);
    EXPECT_THROW((Histogram{{2.0, 1.0}}), net::PreconditionError);
    EXPECT_THROW(
        (Histogram{{1.0, std::numeric_limits<double>::infinity()}}),
        net::PreconditionError);
}

TEST(Histogram, EmptySnapshotHasNoPercentile) {
    const Histogram h{{1.0, 2.0}};
    EXPECT_THROW((void)h.snapshot().p50(), net::PreconditionError);
    EXPECT_EQ(h.snapshot().mean(), 0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryQuantile) {
    Histogram h{{1.0, 10.0, 100.0}};
    h.record(5.0);
    const auto snap = h.snapshot();
    EXPECT_DOUBLE_EQ(snap.percentile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(snap.p50(), 5.0);
    EXPECT_DOUBLE_EQ(snap.percentile(100.0), 5.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 5.0);
}

TEST(Histogram, QuantilesInterpolateWithinOneBucketWidth) {
    // 1..100 into decade-width buckets: quantiles are exact at the
    // extrema and accurate to one bucket width in between.
    Histogram h{{10.0, 20.0, 30.0, 40.0, 50.0,
                 60.0, 70.0, 80.0, 90.0, 100.0}};
    for (int i = 1; i <= 100; ++i) {
        h.record(static_cast<double>(i));
    }
    const auto snap = h.snapshot();
    EXPECT_DOUBLE_EQ(snap.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(snap.percentile(100.0), 100.0);
    EXPECT_NEAR(snap.p50(), 50.0, 10.0);
    EXPECT_NEAR(snap.p90(), 90.0, 10.0);
    EXPECT_NEAR(snap.p99(), 99.0, 10.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 50.5);
}

TEST(Histogram, PercentileClampsToRecordedExtrema) {
    // One sample deep in a wide bucket: interpolation must not report a
    // bucket edge the data never reached.
    Histogram h{{1000.0}};
    h.record(3.0);
    h.record(7.0);
    const auto snap = h.snapshot();
    EXPECT_GE(snap.p50(), 3.0);
    EXPECT_LE(snap.p99(), 7.0);
}

TEST(MetricsRegistry, SameNameReturnsTheSameMetric) {
    MetricsRegistry registry;
    EXPECT_EQ(&registry.counter("a"), &registry.counter("a"));
    EXPECT_NE(&registry.counter("a"), &registry.counter("b"));
    EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
    EXPECT_EQ(&registry.histogram("h"), &registry.histogram("h"));
}

TEST(MetricsRegistry, HistogramBoundsApplyOnlyOnFirstCreation) {
    MetricsRegistry registry;
    const std::vector<double> bounds{1.0, 2.0};
    Histogram& h = registry.histogram("h", bounds);
    h.record(1.5);
    // A later caller with different bounds gets the existing histogram.
    Histogram& again = registry.histogram("h", {});
    EXPECT_EQ(&h, &again);
    EXPECT_EQ(again.snapshot().bounds, bounds);
}

TEST(MetricsRegistry, TableAndJsonAreStableAndSorted) {
    ManualClock clock;
    MetricsRegistry registry{&clock};
    registry.counter("zeta").add(3);
    registry.counter("alpha").add(1);
    registry.gauge("mid").set(2.5);
    registry.histogram("lat", {{1.0}}).record(0.5);

    const std::string json = registry.json();
    EXPECT_EQ(json, registry.json()) << "repeated export must be stable";
    EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);

    const std::string table = registry.table();
    EXPECT_NE(table.find("alpha"), std::string::npos);
    EXPECT_NE(table.find("mid"), std::string::npos);
    EXPECT_NE(table.find("lat"), std::string::npos);
}

TEST(ScopedTimer, RecordsManualClockElapsedSeconds) {
    ManualClock clock;
    MetricsRegistry registry{&clock};
    {
        const ScopedTimer timer{&registry, "op_seconds"};
        clock.advance(2'000'000); // 2 ms
    }
    const auto snap = registry.histogram("op_seconds").snapshot();
    EXPECT_EQ(snap.count, 1U);
    EXPECT_DOUBLE_EQ(snap.sum, 0.002);
}

TEST(ScopedTimer, NullRegistryIsInert) {
    const ScopedTimer timer{nullptr, "ignored"};
    SUCCEED();
}

} // namespace
} // namespace aio::obs
