#include "topo/as_graph.hpp"

#include <gtest/gtest.h>

#include "netbase/error.hpp"

namespace aio::topo {
namespace {

AsInfo makeAs(Asn asn, std::string country, net::Region region,
              std::vector<net::Prefix> prefixes) {
    AsInfo info;
    info.asn = asn;
    info.countryCode = std::move(country);
    info.region = region;
    info.prefixes = std::move(prefixes);
    return info;
}

class SmallTopology : public ::testing::Test {
protected:
    void SetUp() override {
        a_ = topo_.addAs(makeAs(100, "RW", net::Region::EasternAfrica,
                                {net::Prefix::parse("41.0.0.0/16")}));
        b_ = topo_.addAs(makeAs(200, "KE", net::Region::EasternAfrica,
                                {net::Prefix::parse("41.1.0.0/16")}));
        c_ = topo_.addAs(makeAs(300, "DE", net::Region::Europe,
                                {net::Prefix::parse("62.0.0.0/16")}));
        Ixp ixp;
        ixp.name = "KE-IX";
        ixp.countryCode = "KE";
        ixp.region = net::Region::EasternAfrica;
        ixp.lanPrefix = net::Prefix::parse("196.60.0.0/24");
        ix_ = topo_.addIxp(std::move(ixp));
        topo_.addIxpMember(ix_, a_);
        topo_.addIxpMember(ix_, b_);
        topo_.addLink(a_, c_, LinkKind::CustomerToProvider);
        topo_.addLink(b_, c_, LinkKind::CustomerToProvider);
        topo_.addLink(a_, b_, LinkKind::PeerToPeer, ix_);
        topo_.finalize();
    }

    Topology topo_;
    AsIndex a_ = 0, b_ = 0, c_ = 0;
    IxpIndex ix_ = 0;
};

TEST_F(SmallTopology, AdjacencyRolesAreDirectional) {
    EXPECT_EQ(topo_.providersOf(a_), std::vector<AsIndex>{c_});
    EXPECT_EQ(topo_.customersOf(c_), (std::vector<AsIndex>{a_, b_}));
    EXPECT_EQ(topo_.peersOf(a_), std::vector<AsIndex>{b_});
    EXPECT_TRUE(topo_.providersOf(c_).empty());
}

TEST_F(SmallTopology, AsnLookup) {
    EXPECT_EQ(topo_.indexOfAsn(100), a_);
    EXPECT_EQ(topo_.indexOfAsn(300), c_);
    EXPECT_FALSE(topo_.indexOfAsn(999).has_value());
}

TEST_F(SmallTopology, OriginLookupUsesLongestPrefix) {
    EXPECT_EQ(topo_.originOf(net::Ipv4Address::parse("41.0.5.5")), a_);
    EXPECT_EQ(topo_.originOf(net::Ipv4Address::parse("41.1.0.1")), b_);
    EXPECT_EQ(topo_.originOf(net::Ipv4Address::parse("62.0.0.1")), c_);
    EXPECT_FALSE(
        topo_.originOf(net::Ipv4Address::parse("8.8.8.8")).has_value());
}

TEST_F(SmallTopology, IxpLanLookup) {
    EXPECT_EQ(topo_.ixpOfLanAddress(net::Ipv4Address::parse("196.60.0.7")),
              ix_);
    EXPECT_FALSE(
        topo_.ixpOfLanAddress(net::Ipv4Address::parse("196.61.0.7"))
            .has_value());
}

TEST_F(SmallTopology, IxpMembershipIsRecorded) {
    EXPECT_EQ(topo_.ixp(ix_).members.size(), 2U);
    EXPECT_EQ(topo_.ixpsOf(a_), std::vector<IxpIndex>{ix_});
    EXPECT_TRUE(topo_.ixpsOf(c_).empty());
}

TEST_F(SmallTopology, IxpBetweenReportsFabric) {
    EXPECT_EQ(topo_.ixpBetween(a_, b_), ix_);
    EXPECT_EQ(topo_.ixpBetween(b_, a_), ix_);
    EXPECT_FALSE(topo_.ixpBetween(a_, c_).has_value());
}

TEST_F(SmallTopology, CountryAndRegionFilters) {
    EXPECT_EQ(topo_.asesInCountry("RW"), std::vector<AsIndex>{a_});
    EXPECT_EQ(topo_.asesInRegion(net::Region::EasternAfrica).size(), 2U);
    EXPECT_EQ(topo_.africanAses().size(), 2U);
    EXPECT_EQ(topo_.africanIxps().size(), 1U);
}

TEST_F(SmallTopology, RouterAddressIsInsideAsSpaceAndDeterministic) {
    const auto addr1 = topo_.routerAddress(a_, 7);
    const auto addr2 = topo_.routerAddress(a_, 7);
    EXPECT_EQ(addr1, addr2);
    EXPECT_EQ(topo_.originOf(addr1), a_);
    // Different salts should (almost always) give different interfaces.
    EXPECT_NE(topo_.routerAddress(a_, 1).value(),
              topo_.routerAddress(a_, 2).value());
}

TEST(TopologyConstruction, RejectsInvalidInput) {
    Topology topo;
    const auto a = topo.addAs(makeAs(1, "RW", net::Region::EasternAfrica,
                                     {net::Prefix::parse("41.0.0.0/16")}));
    const auto b = topo.addAs(makeAs(2, "KE", net::Region::EasternAfrica,
                                     {net::Prefix::parse("41.1.0.0/16")}));
    EXPECT_THROW(topo.addAs(AsInfo{}), net::PreconditionError); // ASN 0
    EXPECT_THROW(topo.addLink(a, a, LinkKind::PeerToPeer),
                 net::PreconditionError);
    EXPECT_THROW(topo.addLink(a, 99, LinkKind::PeerToPeer),
                 net::PreconditionError);
    topo.addLink(a, b, LinkKind::PeerToPeer);
    EXPECT_THROW(topo.addLink(b, a, LinkKind::CustomerToProvider),
                 net::PreconditionError); // duplicate adjacency
    EXPECT_THROW((void)topo.providersOf(a),
                 net::PreconditionError); // pre-finalize query
    topo.finalize();
    EXPECT_THROW(topo.finalize(), net::PreconditionError);
    EXPECT_THROW(topo.addAs(makeAs(3, "RW", net::Region::EasternAfrica, {})),
                 net::PreconditionError); // frozen
}

TEST(TopologyConstruction, DuplicateAsnRejectedAtFinalize) {
    Topology topo;
    topo.addAs(makeAs(5, "RW", net::Region::EasternAfrica,
                      {net::Prefix::parse("41.0.0.0/16")}));
    topo.addAs(makeAs(5, "KE", net::Region::EasternAfrica,
                      {net::Prefix::parse("41.1.0.0/16")}));
    EXPECT_THROW(topo.finalize(), net::PreconditionError);
}

TEST(TopologyConstruction, NeighborsSortedByAsn) {
    Topology topo;
    const auto a = topo.addAs(makeAs(50, "RW", net::Region::EasternAfrica,
                                     {net::Prefix::parse("41.0.0.0/16")}));
    const auto hi = topo.addAs(makeAs(900, "KE", net::Region::EasternAfrica,
                                      {net::Prefix::parse("41.1.0.0/16")}));
    const auto lo = topo.addAs(makeAs(100, "TZ", net::Region::EasternAfrica,
                                      {net::Prefix::parse("41.2.0.0/16")}));
    topo.addLink(a, hi, LinkKind::CustomerToProvider);
    topo.addLink(a, lo, LinkKind::CustomerToProvider);
    topo.finalize();
    EXPECT_EQ(topo.providersOf(a), (std::vector<AsIndex>{lo, hi}));
}

} // namespace
} // namespace aio::topo
