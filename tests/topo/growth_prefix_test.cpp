#include <gtest/gtest.h>

#include "netbase/error.hpp"
#include "topo/growth.hpp"
#include "topo/prefix_alloc.hpp"

namespace aio::topo {
namespace {

TEST(PrefixAllocator, AllocationsAreDisjointAndCanonical) {
    PrefixAllocator alloc;
    std::vector<net::Prefix> prefixes;
    for (int i = 0; i < 50; ++i) {
        prefixes.push_back(alloc.allocate(net::MacroRegion::Africa,
                                          18 + (i % 7)));
    }
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
        for (std::size_t j = i + 1; j < prefixes.size(); ++j) {
            EXPECT_FALSE(prefixes[i].contains(prefixes[j]) ||
                         prefixes[j].contains(prefixes[i]))
                << prefixes[i].toString() << " vs " << prefixes[j].toString();
        }
    }
}

TEST(PrefixAllocator, RegionalPoolsAreSeparate) {
    PrefixAllocator alloc;
    const auto af = alloc.allocate(net::MacroRegion::Africa, 20);
    const auto eu = alloc.allocate(net::MacroRegion::Europe, 20);
    EXPECT_FALSE(af.contains(eu) || eu.contains(af));
    EXPECT_EQ(af.address().toString().substr(0, 3), "41.");
    EXPECT_EQ(eu.address().toString().substr(0, 3), "62.");
}

TEST(PrefixAllocator, IxpLansComeFromDedicatedSlice) {
    PrefixAllocator alloc;
    const auto lan = alloc.allocateIxpLan();
    EXPECT_EQ(lan.length(), 24);
    EXPECT_TRUE(net::Prefix::parse("196.60.0.0/16").contains(lan));
}

TEST(PrefixAllocator, TracksAllocatedAddressCounts) {
    PrefixAllocator alloc;
    EXPECT_EQ(alloc.allocatedAddresses(net::MacroRegion::Africa), 0U);
    alloc.allocate(net::MacroRegion::Africa, 24);
    alloc.allocate(net::MacroRegion::Africa, 23);
    EXPECT_EQ(alloc.allocatedAddresses(net::MacroRegion::Africa),
              256U + 512U);
}

TEST(PrefixAllocator, RejectsBadLengthAndExhaustion) {
    PrefixAllocator alloc;
    EXPECT_THROW(alloc.allocate(net::MacroRegion::Africa, 8),
                 net::PreconditionError);
    EXPECT_THROW(alloc.allocate(net::MacroRegion::Africa, 30),
                 net::PreconditionError);
}

TEST(GrowthTimeline, PaperHeadlineDeltasHold) {
    const GrowthTimeline timeline;
    // +45% cables, +600% IXPs in Africa over the decade (§2).
    EXPECT_NEAR(timeline.relativeGrowth(net::MacroRegion::Africa,
                                        InfraMetric::SubseaCables),
                0.45, 0.02);
    EXPECT_NEAR(timeline.relativeGrowth(net::MacroRegion::Africa,
                                        InfraMetric::Ixps),
                6.0, 0.1);
}

TEST(GrowthTimeline, AfricaGrowsFasterRelativeThanMatureRegions) {
    const GrowthTimeline timeline;
    for (const auto metric :
         {InfraMetric::Ixps, InfraMetric::Asns}) {
        EXPECT_GT(timeline.relativeGrowth(net::MacroRegion::Africa, metric),
                  timeline.relativeGrowth(net::MacroRegion::Europe, metric));
        EXPECT_GT(
            timeline.relativeGrowth(net::MacroRegion::Africa, metric),
            timeline.relativeGrowth(net::MacroRegion::NorthAmerica, metric));
    }
}

TEST(GrowthTimeline, AfricaTrailsGlobalSouthInMaturity) {
    const GrowthTimeline timeline;
    for (const auto metric :
         {InfraMetric::Ixps, InfraMetric::Asns, InfraMetric::SubseaCables}) {
        // Per-capita maturity: Africa below S. America (the paper's
        // "developing at a slower pace" comparison).
        EXPECT_LT(
            timeline.perCapitaMaturity(net::MacroRegion::Africa, metric),
            timeline.perCapitaMaturity(net::MacroRegion::SouthAmerica,
                                       metric));
    }
}

TEST(GrowthTimeline, InterpolationIsMonotoneWithinWindow) {
    const GrowthTimeline timeline;
    double prev = 0.0;
    for (int year = timeline.firstYear(); year <= timeline.lastYear();
         ++year) {
        const double c =
            timeline.count(net::MacroRegion::Africa, InfraMetric::Ixps, year);
        EXPECT_GT(c, prev);
        prev = c;
    }
    EXPECT_THROW(
        timeline.count(net::MacroRegion::Africa, InfraMetric::Ixps, 2030),
        net::PreconditionError);
}

TEST(GrowthTimeline, SeriesCoversEveryYear) {
    const GrowthTimeline timeline;
    const auto series =
        timeline.series(net::MacroRegion::SouthAmerica, InfraMetric::Asns);
    EXPECT_EQ(series.points.size(), 11U);
    EXPECT_EQ(series.points.front().first, 2015);
    EXPECT_EQ(series.points.back().first, 2025);
}

} // namespace
} // namespace aio::topo
