// Property and fuzz coverage for the CSR adjacency arena: round-trip
// against the topology's per-AS vectors, structural invariants
// (degree-sum, symmetry, sorted rows), typed rejection of malformed edge
// lists, and a deterministic fuzz corpus of random / mutated inputs that
// must either build a valid arena or degrade to an Error — never crash
// (CI runs this suite under ASan/UBSan and TSan).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "netbase/rng.hpp"
#include "topo/csr_adjacency.hpp"
#include "topo/generator.hpp"

namespace aio::topo {
namespace {

Topology smallTopology(std::uint64_t seed) {
    auto config = GeneratorConfig::defaults();
    config.seed = seed;
    for (auto& profile : config.africa) {
        profile.asPerMillionPeople *= 0.4;
        profile.minAsesPerCountry = 1;
        profile.ixpCount = std::max(1, profile.ixpCount / 2);
    }
    return TopologyGenerator{config}.generate();
}

/// The row-owner-relative relation the CSR must report for (owner, nbr).
CsrRel expectedRel(const Topology& topo, AsIndex owner, AsIndex nbr) {
    const auto& providers = topo.providersOf(owner);
    if (std::ranges::find(providers, nbr) != providers.end()) {
        return CsrRel::Provider;
    }
    const auto& customers = topo.customersOf(owner);
    if (std::ranges::find(customers, nbr) != customers.end()) {
        return CsrRel::Customer;
    }
    return CsrRel::Peer;
}

TEST(CsrAdjacency, RoundTripsTopologyAdjacency) {
    const Topology topo = smallTopology(42);
    const CsrAdjacency csr = CsrAdjacency::fromTopology(topo);
    ASSERT_EQ(csr.asCount(), topo.asCount());
    ASSERT_EQ(csr.edgeCount(), topo.links().size());

    for (AsIndex idx = 0; idx < topo.asCount(); ++idx) {
        // Row = providers + customers + peers of the AS, sorted.
        std::vector<AsIndex> expected;
        for (const AsIndex p : topo.providersOf(idx)) expected.push_back(p);
        for (const AsIndex c : topo.customersOf(idx)) expected.push_back(c);
        for (const AsIndex p : topo.peersOf(idx)) expected.push_back(p);
        std::ranges::sort(expected);

        const auto row = csr.neighbors(idx);
        ASSERT_EQ(row.size(), expected.size()) << "AS " << idx;
        EXPECT_TRUE(std::ranges::equal(row, expected)) << "AS " << idx;
        EXPECT_TRUE(std::ranges::is_sorted(row)) << "AS " << idx;

        for (std::uint32_t slot = 0; slot < row.size(); ++slot) {
            const AsIndex nbr = csr.neighborAt(idx, slot);
            EXPECT_EQ(csr.relationAt(idx, slot),
                      expectedRel(topo, idx, nbr))
                << "AS " << idx << " slot " << slot;
            EXPECT_EQ(csr.slotOf(idx, nbr),
                      static_cast<std::int32_t>(slot));
        }
        // Absent neighbors resolve to -1, including the AS itself.
        EXPECT_EQ(csr.slotOf(idx, idx), -1);
    }
}

TEST(CsrAdjacency, StructuralInvariants) {
    const Topology topo = smallTopology(43);
    const CsrAdjacency csr = CsrAdjacency::fromTopology(topo);

    // Degree sum = 2 * edges (every undirected edge fills two slots).
    std::uint64_t degreeSum = 0;
    std::uint32_t maxDegree = 0;
    for (AsIndex idx = 0; idx < csr.asCount(); ++idx) {
        degreeSum += csr.degree(idx);
        maxDegree = std::max(maxDegree, csr.degree(idx));
    }
    EXPECT_EQ(degreeSum, 2 * csr.edgeCount());
    EXPECT_EQ(maxDegree, csr.maxDegree());

    // Symmetry: b in row(a) <=> a in row(b), with complementary
    // relations (my provider sees me as its customer; peers symmetric).
    for (AsIndex a = 0; a < csr.asCount(); ++a) {
        const auto row = csr.neighbors(a);
        for (std::uint32_t slot = 0; slot < row.size(); ++slot) {
            const AsIndex b = csr.neighborAt(a, slot);
            const std::int32_t back = csr.slotOf(b, a);
            ASSERT_GE(back, 0) << a << " -> " << b;
            const CsrRel mine = csr.relationAt(a, slot);
            const CsrRel theirs =
                csr.relationAt(b, static_cast<std::uint32_t>(back));
            if (mine == CsrRel::Peer) {
                EXPECT_EQ(theirs, CsrRel::Peer);
            } else {
                EXPECT_EQ(theirs, mine == CsrRel::Provider
                                      ? CsrRel::Customer
                                      : CsrRel::Provider);
            }
        }
    }

    // Same structure => same digest; different seed => (here) different.
    EXPECT_EQ(csr.digest(), CsrAdjacency::fromTopology(topo).digest());
    EXPECT_NE(csr.digest(),
              CsrAdjacency::fromTopology(smallTopology(44)).digest());
}

TEST(CsrAdjacency, RoundTripsExplicitEdgeList) {
    // 0 -(c2p)-> 1, 0 <-> 2 peer, 1 -(c2p)-> 2.
    const std::vector<AsLink> edges = {
        AsLink{.a = 0, .b = 1, .kind = LinkKind::CustomerToProvider},
        AsLink{.a = 0, .b = 2, .kind = LinkKind::PeerToPeer},
        AsLink{.a = 1, .b = 2, .kind = LinkKind::CustomerToProvider},
    };
    const auto built = CsrAdjacency::fromEdges(3, edges);
    ASSERT_TRUE(built.hasValue()) << built.error().message;
    const CsrAdjacency& csr = *built;
    EXPECT_EQ(csr.edgeCount(), 3U);
    EXPECT_EQ(csr.degree(0), 2U);
    // a-side of CustomerToProvider sees the provider.
    EXPECT_EQ(csr.relationAt(0, static_cast<std::uint32_t>(csr.slotOf(0, 1))),
              CsrRel::Provider);
    EXPECT_EQ(csr.relationAt(1, static_cast<std::uint32_t>(csr.slotOf(1, 0))),
              CsrRel::Customer);
    EXPECT_EQ(csr.relationAt(0, static_cast<std::uint32_t>(csr.slotOf(0, 2))),
              CsrRel::Peer);
    EXPECT_EQ(csr.relationAt(2, static_cast<std::uint32_t>(csr.slotOf(2, 0))),
              CsrRel::Peer);
}

TEST(CsrAdjacency, RejectsMalformedEdgeLists) {
    const AsLink ok{.a = 0, .b = 1, .kind = LinkKind::PeerToPeer};

    // Endpoint out of range.
    {
        const std::vector<AsLink> edges = {
            ok, AsLink{.a = 1, .b = 7, .kind = LinkKind::PeerToPeer}};
        const auto built = CsrAdjacency::fromEdges(3, edges);
        EXPECT_FALSE(built.hasValue());
    }
    // Self loop.
    {
        const std::vector<AsLink> edges = {
            ok, AsLink{.a = 2, .b = 2, .kind = LinkKind::PeerToPeer}};
        EXPECT_FALSE(CsrAdjacency::fromEdges(3, edges).hasValue());
    }
    // Duplicate pair, same orientation.
    {
        const std::vector<AsLink> edges = {ok, ok};
        EXPECT_FALSE(CsrAdjacency::fromEdges(3, edges).hasValue());
    }
    // Duplicate pair, flipped orientation and different kind.
    {
        const std::vector<AsLink> edges = {
            ok,
            AsLink{.a = 1, .b = 0, .kind = LinkKind::CustomerToProvider}};
        EXPECT_FALSE(CsrAdjacency::fromEdges(3, edges).hasValue());
    }
    // Empty graph is fine.
    {
        const auto built = CsrAdjacency::fromEdges(0, {});
        ASSERT_TRUE(built.hasValue());
        EXPECT_EQ((*built).asCount(), 0U);
        EXPECT_EQ((*built).edgeCount(), 0U);
    }
}

/// Deterministic fuzz corpus: random node counts, random edges (some
/// valid, some malformed by construction), plus mutation passes that
/// corrupt endpoints/kinds. Every input must produce either a valid
/// arena (round-trip verified) or an Error value. Run under sanitizers
/// in CI, this is the memory-safety net for the arena construction.
TEST(CsrFuzz, RandomAndMutatedEdgeListsNeverCorrupt) {
    net::Rng rng{0xC5Au};
    for (int iter = 0; iter < 300; ++iter) {
        const std::size_t n = 1 + rng.uniformInt(40);
        const std::size_t m = rng.uniformInt(120);
        std::vector<AsLink> edges;
        edges.reserve(m);
        for (std::size_t e = 0; e < m; ++e) {
            AsLink link;
            // ~10% deliberately out-of-range endpoints.
            const std::size_t hi = rng.bernoulli(0.1) ? n + 4 : n;
            link.a = static_cast<AsIndex>(rng.uniformInt(hi));
            link.b = static_cast<AsIndex>(rng.uniformInt(hi));
            link.kind = rng.bernoulli(0.5) ? LinkKind::PeerToPeer
                                           : LinkKind::CustomerToProvider;
            edges.push_back(link);
        }
        const auto built = CsrAdjacency::fromEdges(n, edges);
        if (!built.hasValue()) {
            continue; // rejected cleanly — fine
        }
        // Accepted: the arena must be structurally sound.
        const CsrAdjacency& csr = *built;
        std::uint64_t degreeSum = 0;
        for (AsIndex idx = 0; idx < csr.asCount(); ++idx) {
            const auto row = csr.neighbors(idx);
            EXPECT_TRUE(std::ranges::is_sorted(row));
            EXPECT_TRUE(std::ranges::adjacent_find(row) == row.end());
            degreeSum += row.size();
            for (std::uint32_t slot = 0; slot < row.size(); ++slot) {
                const AsIndex nbr = csr.neighborAt(idx, slot);
                ASSERT_LT(nbr, csr.asCount());
                EXPECT_GE(csr.slotOf(nbr, idx), 0);
            }
        }
        EXPECT_EQ(degreeSum, 2 * csr.edgeCount());
    }
}

TEST(CsrFuzz, SlotOfNeverReadsOutOfRow) {
    // Probing every (a, b) pair including non-edges: slotOf must answer
    // from the row's own span only (ASan would catch a stray read).
    net::Rng rng{0xF00Du};
    std::vector<AsLink> edges;
    const std::size_t n = 24;
    for (AsIndex a = 0; a < n; ++a) {
        for (AsIndex b = a + 1; b < n; ++b) {
            if (rng.bernoulli(0.2)) {
                edges.push_back(AsLink{
                    .a = a, .b = b, .kind = LinkKind::PeerToPeer});
            }
        }
    }
    const auto built = CsrAdjacency::fromEdges(n, edges);
    ASSERT_TRUE(built.hasValue());
    const CsrAdjacency& csr = *built;
    for (AsIndex a = 0; a < n; ++a) {
        for (AsIndex b = 0; b < n; ++b) {
            const std::int32_t slot = csr.slotOf(a, b);
            if (slot >= 0) {
                EXPECT_EQ(csr.neighborAt(a,
                                         static_cast<std::uint32_t>(slot)),
                          b);
            }
        }
    }
}

} // namespace
} // namespace aio::topo
