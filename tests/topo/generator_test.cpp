#include "topo/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace aio::topo {
namespace {

/// Shared generated topology — generation is deterministic, so building it
/// once keeps the suite fast.
const Topology& defaultTopology() {
    static const Topology topo =
        TopologyGenerator{GeneratorConfig::defaults()}.generate();
    return topo;
}

TEST(Generator, IsDeterministicForSameSeed) {
    const Topology t1 =
        TopologyGenerator{GeneratorConfig::defaults()}.generate();
    const Topology t2 =
        TopologyGenerator{GeneratorConfig::defaults()}.generate();
    ASSERT_EQ(t1.asCount(), t2.asCount());
    ASSERT_EQ(t1.links().size(), t2.links().size());
    ASSERT_EQ(t1.ixpCount(), t2.ixpCount());
    for (std::size_t i = 0; i < t1.asCount(); ++i) {
        EXPECT_EQ(t1.as(i).asn, t2.as(i).asn);
        EXPECT_EQ(t1.as(i).countryCode, t2.as(i).countryCode);
    }
}

TEST(Generator, DifferentSeedsChangeTheGraph) {
    auto cfg = GeneratorConfig::defaults();
    cfg.seed = 999;
    const Topology t2 = TopologyGenerator{cfg}.generate();
    EXPECT_NE(defaultTopology().links().size(), t2.links().size());
}

TEST(Generator, NoAfricanTier1) {
    const auto& topo = defaultTopology();
    for (const AsIndex idx : topo.africanAses()) {
        EXPECT_NE(topo.as(idx).type, AsType::Tier1)
            << "AS" << topo.as(idx).asn;
    }
}

TEST(Generator, AfricanTier2sAreScarceAndEuHomed) {
    const auto& topo = defaultTopology();
    int tier2 = 0;
    for (const AsIndex idx : topo.africanAses()) {
        if (topo.as(idx).type != AsType::Tier2) continue;
        ++tier2;
        // Every African transit network must have at least one European
        // upstream (the paper's structural dependence).
        bool euUpstream = false;
        for (const AsIndex provider : topo.providersOf(idx)) {
            euUpstream |= (topo.as(provider).region == net::Region::Europe);
        }
        EXPECT_TRUE(euUpstream) << "AS" << topo.as(idx).asn;
    }
    EXPECT_GE(tier2, 5);
    EXPECT_LE(tier2, 25);
}

TEST(Generator, SeventySevenAfricanIxps) {
    EXPECT_EQ(defaultTopology().africanIxps().size(), 77U);
}

TEST(Generator, EveryStubHasAtLeastOneProvider) {
    const auto& topo = defaultTopology();
    for (std::size_t i = 0; i < topo.asCount(); ++i) {
        if (topo.as(i).type == AsType::Tier1) continue;
        EXPECT_FALSE(topo.providersOf(i).empty())
            << "AS" << topo.as(i).asn << " has no transit";
    }
}

TEST(Generator, MobileDominatesAfricanAccess) {
    const auto& topo = defaultTopology();
    int mobile = 0;
    int eyeballs = 0;
    for (const AsIndex idx : topo.africanAses()) {
        const auto type = topo.as(idx).type;
        if (type == AsType::MobileOperator || type == AsType::AccessIsp) {
            ++eyeballs;
            mobile += topo.as(idx).type == AsType::MobileOperator ? 1 : 0;
        }
    }
    ASSERT_GT(eyeballs, 100);
    EXPECT_GT(static_cast<double>(mobile) / eyeballs, 0.5);
}

TEST(Generator, KigaliProbeAsnExistsInRwanda) {
    const auto& topo = defaultTopology();
    const auto idx = topo.indexOfAsn(TopologyGenerator::kKigaliProbeAsn);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(topo.as(*idx).countryCode, "RW");
}

TEST(Generator, PrefixesDoNotOverlapAcrossAses) {
    const auto& topo = defaultTopology();
    // Any address sampled from an AS's prefix must map back to that AS.
    for (std::size_t i = 0; i < topo.asCount(); i += 7) {
        for (const net::Prefix& prefix : topo.as(i).prefixes) {
            EXPECT_EQ(topo.originOf(prefix.addressAt(prefix.size() / 2)), i);
        }
    }
}

TEST(Generator, IxpLanPrefixesAreDisjointFromAsSpace) {
    const auto& topo = defaultTopology();
    for (std::size_t i = 0; i < topo.ixpCount(); ++i) {
        const auto addr = topo.ixp(i).lanPrefix.addressAt(1);
        EXPECT_FALSE(topo.originOf(addr).has_value());
        EXPECT_EQ(topo.ixpOfLanAddress(addr), i);
    }
}

TEST(Generator, IxpRegionalDensityFollowsProfile) {
    const auto& topo = defaultTopology();
    std::map<net::Region, int> counts;
    for (const IxpIndex ix : topo.africanIxps()) {
        ++counts[topo.ixp(ix).region];
    }
    EXPECT_EQ(counts[net::Region::NorthernAfrica], 6);
    EXPECT_EQ(counts[net::Region::WesternAfrica], 22);
    EXPECT_EQ(counts[net::Region::EasternAfrica], 24);
    EXPECT_EQ(counts[net::Region::CentralAfrica], 8);
    EXPECT_EQ(counts[net::Region::SouthernAfrica], 17);
}

TEST(Generator, MostIxpLansAreNotInGlobalTable) {
    const auto& topo = defaultTopology();
    int advertised = 0;
    const auto african = topo.africanIxps();
    for (const IxpIndex ix : african) {
        advertised += topo.ixp(ix).lanInGlobalTable ? 1 : 0;
    }
    EXPECT_LT(static_cast<double>(advertised) / african.size(), 0.25);
}

TEST(Generator, IxpPeeringLinksReferenceTheFabric) {
    const auto& topo = defaultTopology();
    int ixpLinks = 0;
    for (const AsLink& link : topo.links()) {
        if (!link.ixp) continue;
        ++ixpLinks;
        EXPECT_EQ(link.kind, LinkKind::PeerToPeer);
        // Both endpoints must be members of the fabric they peer across.
        const auto& members = topo.ixp(*link.ixp).members;
        EXPECT_TRUE(std::ranges::find(members, link.a) != members.end());
        EXPECT_TRUE(std::ranges::find(members, link.b) != members.end());
    }
    EXPECT_GT(ixpLinks, 100);
}

TEST(Generator, ContinentalCarriersJoinManyIxps) {
    const auto& topo = defaultTopology();
    // At least one African Tier-2 should be present at >= 5 IXPs — the
    // pattern the set-cover result of §7 fn.1 relies on.
    std::size_t best = 0;
    for (const AsIndex idx : topo.africanAses()) {
        if (topo.as(idx).type == AsType::Tier2) {
            best = std::max(best, topo.ixpsOf(idx).size());
        }
    }
    EXPECT_GE(best, 5U);
}

TEST(Generator, SouthernAfricaHasHighestLocalTransitShare) {
    const auto& topo = defaultTopology();
    const auto localShare = [&](net::Region region) {
        int local = 0;
        int total = 0;
        for (const AsIndex idx : topo.asesInRegion(region)) {
            const auto type = topo.as(idx).type;
            if (type != AsType::MobileOperator && type != AsType::AccessIsp) {
                continue;
            }
            ++total;
            for (const AsIndex provider : topo.providersOf(idx)) {
                if (net::isAfrican(topo.as(provider).region)) {
                    ++local;
                    break;
                }
            }
        }
        return total == 0 ? 0.0 : static_cast<double>(local) / total;
    };
    EXPECT_GT(localShare(net::Region::SouthernAfrica),
              localShare(net::Region::WesternAfrica));
}

TEST(Generator, ScaleIsLaptopSized) {
    const auto& topo = defaultTopology();
    EXPECT_GT(topo.asCount(), 500U);
    EXPECT_LT(topo.asCount(), 3000U);
    EXPECT_GT(topo.links().size(), 1500U);
    EXPECT_LT(topo.links().size(), 40000U);
}

} // namespace
} // namespace aio::topo
