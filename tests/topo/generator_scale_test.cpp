// Continent-scale generator coverage: the knob-free config must stay
// byte-identical to its legacy draw sequence, a seeded continental()
// topology must be digest-stable across repeated generation, and — under
// AIO_LARGE_SMOKE=1 (the Release CI smoke) — a 50k-AS continent must
// generate plus CSR-build inside a bounded wall time and peak RSS.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "topo/csr_adjacency.hpp"
#include "topo/generator.hpp"

namespace aio::topo {
namespace {

/// Linux VmHWM (peak resident set), in bytes; 0 when unavailable.
std::size_t peakRssBytes() {
    std::ifstream status{"/proc/self/status"};
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            std::istringstream fields{line.substr(6)};
            std::size_t kib = 0;
            fields >> kib;
            return kib * 1024;
        }
    }
    return 0;
}

TEST(GeneratorScale, DefaultConfigKeepsLegacyKnobsOff) {
    const GeneratorConfig cfg = GeneratorConfig::defaults();
    EXPECT_EQ(cfg.maxAsesPerCountry, 0);
    EXPECT_EQ(cfg.domesticPeerFanout, 0);
    EXPECT_EQ(cfg.ixpMeshFanout, 0);
    EXPECT_EQ(cfg.prefixLengthAdjust, 0);
}

TEST(GeneratorScale, ContinentalEightKIsDigestStable) {
    // Ungated mid-size point: ~8k African eyeballs, two generations,
    // byte-identical structure (same CSR digest, same counts).
    const GeneratorConfig cfg = GeneratorConfig::continental(8000, 77);
    const Topology first = TopologyGenerator{cfg}.generate();
    const Topology second = TopologyGenerator{cfg}.generate();
    EXPECT_EQ(first.asCount(), second.asCount());
    EXPECT_EQ(first.links().size(), second.links().size());
    EXPECT_EQ(CsrAdjacency::fromTopology(first).digest(),
              CsrAdjacency::fromTopology(second).digest());

    // The target steers the African eyeball layer (to within per-country
    // integer truncation); the full AS count lands near it — other
    // regions ride along — but within ~2x.
    EXPECT_GE(first.asCount(), 7600U);
    EXPECT_LE(first.asCount(), 16000U);

    // A different seed must actually move the structure.
    const GeneratorConfig other = GeneratorConfig::continental(8000, 78);
    const Topology reseeded = TopologyGenerator{other}.generate();
    EXPECT_NE(CsrAdjacency::fromTopology(first).digest(),
              CsrAdjacency::fromTopology(reseeded).digest());
}

TEST(GeneratorScale, ContinentalScalesLinearlyInEdges) {
    // Bounded-fanout wiring: edges per AS must stay flat as the target
    // grows (the legacy pair scans would blow this up quadratically).
    const Topology small =
        TopologyGenerator{GeneratorConfig::continental(4000, 5)}.generate();
    const Topology large =
        TopologyGenerator{GeneratorConfig::continental(12000, 5)}.generate();
    const double smallEdgesPerAs =
        static_cast<double>(small.links().size()) /
        static_cast<double>(small.asCount());
    const double largeEdgesPerAs =
        static_cast<double>(large.links().size()) /
        static_cast<double>(large.asCount());
    EXPECT_LT(largeEdgesPerAs, smallEdgesPerAs * 2.0)
        << "edge growth should be ~linear under bounded fanout";
}

TEST(GeneratorScale, FiftyKSmokeUnderTimeAndMemoryBounds) {
    if (std::getenv("AIO_LARGE_SMOKE") == nullptr) {
        GTEST_SKIP() << "set AIO_LARGE_SMOKE=1 to run the 50k smoke";
    }
    const auto start = std::chrono::steady_clock::now();
    const GeneratorConfig cfg = GeneratorConfig::continental(50000, 99);
    const Topology topo = TopologyGenerator{cfg}.generate();
    const CsrAdjacency csr = CsrAdjacency::fromTopology(topo);
    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - start);

    EXPECT_GE(topo.asCount(), 47500U);
    EXPECT_LE(topo.asCount(), 75000U);
    EXPECT_EQ(csr.asCount(), topo.asCount());

    // Digest-stable across runs at full scale too.
    const Topology again = TopologyGenerator{cfg}.generate();
    EXPECT_EQ(csr.digest(), CsrAdjacency::fromTopology(again).digest());

    // Generous CI bounds: generation + CSR twice must stay interactive
    // and far below the dense-matrix memory cliff.
    EXPECT_LT(elapsed.count(), 120) << "50k generation too slow";
    const std::size_t peak = peakRssBytes();
    if (peak > 0) {
        EXPECT_LT(peak, std::size_t{6} * 1024 * 1024 * 1024)
            << "50k generation peak RSS out of bounds";
    }
}

} // namespace
} // namespace aio::topo
