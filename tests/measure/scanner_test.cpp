#include "measure/scanner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "measure/ixp_detect.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::measure {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    TracerouteEngine engine;
    ResponsivenessModel model;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), engine(topo, oracle),
          model(topo, ResponsivenessConfig{}, 77) {}
};

World& world() {
    static World w;
    return w;
}

TEST(Responsiveness, DeterministicPerAsAndAddress) {
    auto& w = world();
    const ResponsivenessModel again{w.topo, ResponsivenessConfig{}, 77};
    for (topo::AsIndex as = 0; as < w.topo.asCount(); as += 13) {
        EXPECT_EQ(w.model.antVisible(as), again.antVisible(as));
        EXPECT_DOUBLE_EQ(w.model.icmpDensity(as), again.icmpDensity(as));
    }
    const auto addr = w.topo.routerAddress(0, 5);
    EXPECT_EQ(w.model.respondsToPing(addr), again.respondsToPing(addr));
}

TEST(Responsiveness, MobileNetworksMostAntVisible) {
    auto& w = world();
    int mobileVisible = 0, mobileTotal = 0;
    int entVisible = 0, entTotal = 0;
    for (const auto as : w.topo.africanAses()) {
        if (w.topo.as(as).type == topo::AsType::MobileOperator) {
            ++mobileTotal;
            mobileVisible += w.model.antVisible(as) ? 1 : 0;
        } else if (w.topo.as(as).type == topo::AsType::Enterprise) {
            ++entTotal;
            entVisible += w.model.antVisible(as) ? 1 : 0;
        }
    }
    ASSERT_GT(mobileTotal, 50);
    ASSERT_GT(entTotal, 20);
    EXPECT_GT(static_cast<double>(mobileVisible) / mobileTotal,
              static_cast<double>(entVisible) / entTotal);
}

TEST(Hitlists, AntIsLargerAndRicherThanCaida) {
    auto& w = world();
    net::Rng rng{1};
    const HitlistBuilder builder{w.topo, w.model};
    const auto ant = builder.buildAntStyle(rng);
    const auto caida = builder.buildCaidaStyle(rng);
    EXPECT_GT(ant.entries.size(), 1000U);
    EXPECT_GT(caida.entries.size(), 1000U);
    // CAIDA covers exactly the routed /24s.
    EXPECT_EQ(caida.entries.size(), routedSlash24s(w.topo).size());
}

TEST(Hitlists, CaidaExcludesUnadvertisedIxpLans) {
    auto& w = world();
    net::Rng rng{2};
    const HitlistBuilder builder{w.topo, w.model};
    const auto caida = builder.buildCaidaStyle(rng);
    for (const auto addr : caida.entries) {
        const auto ixp = w.topo.ixpOfLanAddress(addr);
        if (ixp) {
            EXPECT_TRUE(w.topo.ixp(*ixp).lanInGlobalTable);
        }
    }
}

TEST(CoverageShape, Table1OrderingHolds) {
    // The paper's Table 1 shape: ANT > CAIDA > YARRP on every dimension,
    // mobile coverage > non-mobile coverage, and IXP coverage worst.
    auto& w = world();
    net::Rng rng{3};
    const HitlistBuilder builder{w.topo, w.model};
    const PingScanner ping{w.topo, w.model};
    const CoverageAnalyzer analyzer{w.topo};

    const auto ant = builder.buildAntStyle(rng);
    const auto caida = builder.buildCaidaStyle(rng);
    const auto antReport =
        analyzer.analyze(ping.scan(ant), ant.entries.size());
    const auto caidaReport =
        analyzer.analyze(ping.scan(caida), caida.entries.size());

    const YarrpScanner yarrp{w.topo, w.engine, w.model};
    // The paper's YARRP run used Rwandan residential/campus networks
    // behind international transit — NOT the IXP-rich AS36924 vantage of
    // §7.3. Pick an RW stub whose providers are all European.
    std::optional<topo::AsIndex> vantage;
    for (const auto as : w.topo.asesInCountry("RW")) {
        if (w.topo.as(as).asn == topo::TopologyGenerator::kKigaliProbeAsn) {
            continue;
        }
        const bool euOnly = std::ranges::all_of(
            w.topo.providersOf(as), [&](topo::AsIndex p) {
                return !net::isAfrican(w.topo.as(p).region);
            });
        if (euOnly) {
            vantage = as;
            break;
        }
    }
    ASSERT_TRUE(vantage.has_value());
    const auto yarrpOutcome = yarrp.scan(*vantage, rng, 0.35);
    const auto yarrpReport =
        analyzer.analyze(yarrpOutcome, yarrpOutcome.probesSent);

    // Mobile > non-mobile within each dataset.
    EXPECT_GT(antReport.mobileAsnCoverage, antReport.nonMobileAsnCoverage);
    EXPECT_GT(caidaReport.mobileAsnCoverage,
              caidaReport.nonMobileAsnCoverage);
    // IXP coverage is the weakest dimension everywhere.
    EXPECT_LT(antReport.ixpCoverage, antReport.nonMobileAsnCoverage);
    EXPECT_LT(caidaReport.ixpCoverage, caidaReport.nonMobileAsnCoverage);
    EXPECT_LT(yarrpReport.ixpCoverage, 0.2);
    // ANT dominates CAIDA; CAIDA dominates YARRP on mobile.
    EXPECT_GT(antReport.mobileAsnCoverage, caidaReport.mobileAsnCoverage);
    EXPECT_GT(antReport.nonMobileAsnCoverage,
              caidaReport.nonMobileAsnCoverage);
    EXPECT_GT(antReport.ixpCoverage, caidaReport.ixpCoverage);
    EXPECT_GT(caidaReport.mobileAsnCoverage, yarrpReport.mobileAsnCoverage);
    // Regional breakdown is present for all five regions.
    EXPECT_EQ(antReport.regional.size(), 5U);
}

TEST(IxpDetection, KnowledgeBaseLimitsDetection) {
    auto& w = world();
    net::Rng rng{5};
    const auto partial = IxpKnowledgeBase::build(w.topo, 0.4, rng);
    const auto full = IxpKnowledgeBase::full(w.topo);
    EXPECT_LT(partial.knownCount(), full.knownCount());
    EXPECT_EQ(full.knownCount(), w.topo.ixpCount());
    // Partial KB never detects an unknown IXP.
    int detectedUnknown = 0;
    const IxpDetector detector{w.topo, partial};
    const auto african = w.topo.africanAses();
    for (std::size_t i = 0; i < 200; ++i) {
        const auto src = african[rng.uniformInt(african.size())];
        const auto dst = african[rng.uniformInt(african.size())];
        const auto trace = w.engine.traceToAs(src, dst, rng);
        for (const auto ix : detector.detect(trace)) {
            if (!partial.knows(ix)) {
                ++detectedUnknown;
            }
        }
    }
    EXPECT_EQ(detectedUnknown, 0);
}

TEST(IxpDetection, FullKbMatchesGroundTruthHops) {
    auto& w = world();
    net::Rng rng{6};
    const IxpDetector detector{w.topo, IxpKnowledgeBase::full(w.topo)};
    const auto african = w.topo.africanAses();
    for (std::size_t i = 0; i < 200; ++i) {
        const auto src = african[rng.uniformInt(african.size())];
        const auto dst = african[rng.uniformInt(african.size())];
        const auto trace = w.engine.traceToAs(src, dst, rng);
        EXPECT_EQ(detector.detect(trace), trace.ixpsCrossed());
    }
}

} // namespace
} // namespace aio::measure
