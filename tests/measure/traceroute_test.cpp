#include "measure/traceroute.hpp"

#include <gtest/gtest.h>

#include "netbase/stats.hpp"
#include "routing/detour.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::measure {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    TracerouteEngine engine;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), engine(topo, oracle) {}
};

World& world() {
    static World w;
    return w;
}

TEST(Traceroute, ReachesRoutedTargetWithSensibleHops) {
    auto& w = world();
    net::Rng rng{1};
    const auto african = w.topo.africanAses();
    const topo::AsIndex src = african[3];
    const topo::AsIndex dst = african[african.size() / 2];
    const auto trace = w.engine.traceToAs(src, dst, rng);
    ASSERT_TRUE(trace.reachedTarget);
    ASSERT_FALSE(trace.hops.empty());
    EXPECT_EQ(trace.dstAs, dst);
    // First hop (if not lost) belongs to the source AS.
    EXPECT_EQ(trace.hops.front().asIndex.value_or(src), src);
    // RTTs are non-decreasing.
    for (std::size_t i = 1; i < trace.hops.size(); ++i) {
        EXPECT_GE(trace.hops[i].rttMs, trace.hops[i - 1].rttMs);
    }
    // The AS path in the trace is a subsequence of the policy path.
    const auto policy = w.oracle.path(src, dst);
    const auto seen = trace.asPath();
    std::size_t cursor = 0;
    for (const auto as : seen) {
        while (cursor < policy.size() && policy[cursor] != as) {
            ++cursor;
        }
        EXPECT_LT(cursor, policy.size()) << "hop AS not on policy path";
    }
}

TEST(Traceroute, UnroutedTargetDiesAtSourceBorder) {
    auto& w = world();
    net::Rng rng{2};
    // Find an unadvertised IXP LAN.
    std::optional<net::Ipv4Address> lanAddr;
    for (const auto ix : w.topo.africanIxps()) {
        if (!w.topo.ixp(ix).lanInGlobalTable) {
            lanAddr = w.topo.ixp(ix).lanPrefix.addressAt(5);
            break;
        }
    }
    ASSERT_TRUE(lanAddr.has_value());
    const auto trace = w.engine.trace(w.topo.africanAses()[0], *lanAddr, rng);
    EXPECT_FALSE(trace.reachedTarget);
    EXPECT_LE(trace.hops.size(), 1U);
}

TEST(Traceroute, NonRespondingTargetYieldsIncompleteTrace) {
    auto& w = world();
    net::Rng rng{3};
    const auto african = w.topo.africanAses();
    const auto target = w.topo.routerAddress(african[10], 0);
    const auto trace =
        w.engine.trace(african[4], target, rng, /*targetResponds=*/false);
    EXPECT_FALSE(trace.reachedTarget);
    // We still learn intermediate hops.
    EXPECT_GE(trace.hops.size(), 1U);
}

TEST(Traceroute, IxpHopsAppearWhenPeeringAtIxp) {
    auto& w = world();
    net::Rng rng{4};
    // Find a peer link across an African IXP and trace between endpoints.
    for (const auto& link : w.topo.links()) {
        if (!link.ixp || !net::isAfrican(w.topo.ixp(*link.ixp).region)) {
            continue;
        }
        // Only meaningful if policy routing actually uses the direct link.
        const auto path = w.oracle.path(link.a, link.b);
        if (path.size() != 2) {
            continue;
        }
        TracerouteConfig cfg;
        cfg.hopLossProb = 0.0; // make the IXP hop deterministic
        const TracerouteEngine engine{w.topo, w.oracle, cfg};
        const auto trace = engine.traceToAs(link.a, link.b, rng);
        const auto crossed = trace.ixpsCrossed();
        ASSERT_EQ(crossed.size(), 1U);
        EXPECT_EQ(crossed.front(), *link.ixp);
        return;
    }
    FAIL() << "no direct African IXP peering path found";
}

TEST(Traceroute, DetourThroughEuropeInflatesRtt) {
    auto& w = world();
    net::Rng rng{5};
    const route::DetourAnalyzer analyzer{w.topo};
    const auto african = w.topo.africanAses();
    std::vector<double> local;
    std::vector<double> detoured;
    for (std::size_t i = 0; i < african.size(); i += 9) {
        for (std::size_t j = 1; j < african.size(); j += 31) {
            if (i == j) continue;
            const auto path = w.oracle.path(african[i], african[j]);
            if (path.empty()) continue;
            const auto trace =
                w.engine.traceToAs(african[i], african[j], rng);
            if (!trace.reachedTarget) continue;
            (analyzer.leavesAfrica(path) ? detoured : local)
                .push_back(trace.lastRttMs());
        }
    }
    ASSERT_GT(local.size(), 10U);
    ASSERT_GT(detoured.size(), 10U);
    EXPECT_GT(net::mean(detoured), net::mean(local) * 1.5);
}

TEST(Traceroute, DeterministicGivenSameRngSeed) {
    auto& w = world();
    const auto african = w.topo.africanAses();
    net::Rng rng1{42};
    net::Rng rng2{42};
    const auto t1 = w.engine.traceToAs(african[0], african[20], rng1);
    const auto t2 = w.engine.traceToAs(african[0], african[20], rng2);
    ASSERT_EQ(t1.hops.size(), t2.hops.size());
    for (std::size_t i = 0; i < t1.hops.size(); ++i) {
        EXPECT_EQ(t1.hops[i].address, t2.hops[i].address);
        EXPECT_DOUBLE_EQ(t1.hops[i].rttMs, t2.hops[i].rttMs);
    }
}

} // namespace
} // namespace aio::measure
