#include "measure/latency.hpp"

#include <gtest/gtest.h>

#include "netbase/error.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::measure {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    TracerouteEngine engine;
    LatencyStudy study;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), engine(topo, oracle), study(topo, oracle, engine) {}
};

World& world() {
    static World w;
    return w;
}

TEST(LatencyStudy, CountryPairStatsAreSane) {
    auto& w = world();
    net::Rng rng{1};
    const auto pair = w.study.between("KE", "NG", 60, rng);
    EXPECT_GT(pair.samples, 20U);
    EXPECT_GT(pair.meanRttMs, 10.0);
    EXPECT_LT(pair.meanRttMs, 1000.0);
    EXPECT_GE(pair.p90RttMs, pair.meanRttMs * 0.5);
    EXPECT_GE(pair.detourShare, 0.0);
    EXPECT_LE(pair.detourShare, 1.0);
}

TEST(LatencyStudy, UnknownCountryThrows) {
    auto& w = world();
    net::Rng rng{2};
    EXPECT_THROW(w.study.between("XX", "KE", 10, rng), net::NotFoundError);
    EXPECT_THROW(w.study.between("KE", "NG", 0, rng),
                 net::PreconditionError);
}

TEST(LatencyStudy, DetouredRoutesPayLatencyPenalty) {
    auto& w = world();
    net::Rng rng{3};
    const auto [local, detoured] = w.study.detourPenalty(2500, rng);
    ASSERT_GT(local, 0.0);
    ASSERT_GT(detoured, 0.0);
    // The hairpin through Europe costs well over 50% extra RTT.
    EXPECT_GT(detoured, local * 1.5);
}

TEST(LatencyStudy, RegionalMatrixIsCompleteAndDiagonalFriendly) {
    auto& w = world();
    net::Rng rng{4};
    const auto matrix = w.study.regionalMatrix(40, rng);
    ASSERT_EQ(matrix.size(), 25U);
    double diagSum = 0.0;
    int diagCount = 0;
    double offSum = 0.0;
    int offCount = 0;
    for (const auto& cell : matrix) {
        if (cell.samples == 0) continue;
        EXPECT_GT(cell.meanRttMs, 0.0);
        if (cell.from == cell.to) {
            diagSum += cell.meanRttMs;
            ++diagCount;
        } else {
            offSum += cell.meanRttMs;
            ++offCount;
        }
    }
    ASSERT_GT(diagCount, 0);
    ASSERT_GT(offCount, 0);
    // Intra-region latency beats inter-region latency on average.
    EXPECT_LT(diagSum / diagCount, offSum / offCount);
}

TEST(LatencyStudy, NeighborPairsFasterThanCrossContinentPairs) {
    auto& w = world();
    net::Rng rng{5};
    const auto nearPair = w.study.between("KE", "TZ", 60, rng);
    const auto farPair = w.study.between("SN", "MG", 60, rng);
    ASSERT_GT(nearPair.samples, 10U);
    ASSERT_GT(farPair.samples, 10U);
    EXPECT_LT(nearPair.meanRttMs, farPair.meanRttMs);
}

} // namespace
} // namespace aio::measure
