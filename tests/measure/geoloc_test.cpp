#include "measure/geoloc.hpp"

#include <gtest/gtest.h>

#include "netbase/geo.hpp"
#include "topo/generator.hpp"

namespace aio::measure {
namespace {

const topo::Topology& topology() {
    static const topo::Topology topo =
        topo::TopologyGenerator{topo::GeneratorConfig::defaults()}.generate();
    return topo;
}

TEST(Geolocation, DeterministicPerAddress) {
    const GeolocationModel model{topology(), GeolocationConfig{}, 9};
    const auto addr = topology().routerAddress(5, 3);
    const auto p1 = model.locate(addr);
    const auto p2 = model.locate(addr);
    EXPECT_DOUBLE_EQ(p1.latitude, p2.latitude);
    EXPECT_DOUBLE_EQ(p1.longitude, p2.longitude);
}

TEST(Geolocation, AfricanAddressesHaveLargerErrors) {
    const auto& topo = topology();
    const GeolocationModel model{topo, GeolocationConfig{}, 9};
    std::vector<double> africanErr;
    std::vector<double> otherErr;
    for (topo::AsIndex as = 0; as < topo.asCount(); ++as) {
        for (std::uint64_t salt = 0; salt < 4; ++salt) {
            const auto addr = topo.routerAddress(as, salt);
            const double err = model.errorKm(addr);
            (net::isAfrican(topo.as(as).region) ? africanErr : otherErr)
                .push_back(err);
        }
    }
    ASSERT_GT(africanErr.size(), 100U);
    ASSERT_GT(otherErr.size(), 50U);
    const auto meanOf = [](const std::vector<double>& v) {
        double s = 0;
        for (const double x : v) s += x;
        return s / static_cast<double>(v.size());
    };
    EXPECT_GT(meanOf(africanErr), 2.0 * meanOf(otherErr));
}

TEST(Geolocation, AccurateAddressesMatchTruth) {
    const auto& topo = topology();
    GeolocationConfig cfg;
    cfg.africanErrorProb = 0.0;
    cfg.otherErrorProb = 0.0;
    const GeolocationModel model{topo, cfg, 9};
    const auto addr = topo.routerAddress(3, 1);
    EXPECT_NEAR(model.errorKm(addr), 0.0, 1e-9);
}

TEST(Geolocation, IxpLanAddressesLocateToIxpSite) {
    const auto& topo = topology();
    GeolocationConfig cfg;
    cfg.africanErrorProb = 0.0;
    cfg.otherErrorProb = 0.0;
    const GeolocationModel model{topo, cfg, 9};
    const auto ix = topo.africanIxps().front();
    const auto addr = topo.ixp(ix).lanPrefix.addressAt(3);
    const auto loc = model.locate(addr);
    EXPECT_NEAR(net::haversineKm(loc, topo.ixp(ix).location), 0.0, 1e-6);
}

} // namespace
} // namespace aio::measure
