#include "resilience/supervisor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "netbase/error.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::resilience {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    measure::TracerouteEngine engine;
    measure::IxpDetector detector;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), engine(topo, oracle),
          detector(topo, measure::IxpKnowledgeBase::full(topo)) {}
};

World& world() {
    static World w;
    return w;
}

/// Small deterministic fleet: two probes in each of a few countries, so
/// reassignment has siblings to fall back to.
core::ProbeFleet smallFleet(int perCountry = 2) {
    auto& w = world();
    core::ProbeFleet fleet;
    int serial = 0;
    for (const char* iso2 : {"RW", "KE", "NG", "ZA"}) {
        const auto ases = w.topo.asesInCountry(iso2);
        for (int i = 0; i < perCountry &&
                        i < static_cast<int>(ases.size());
             ++i) {
            core::Probe probe;
            probe.id = "t-" + std::string{iso2} + std::to_string(++serial);
            probe.hostAs = ases[static_cast<std::size_t>(i)];
            probe.countryCode = iso2;
            probe.availability = 0.85;
            probe.monthlyBudgetUsd = 50.0;
            probe.pricing.kind = core::PricingModel::Kind::FlatPerMb;
            probe.pricing.perMbUsd = 0.01;
            fleet.add(probe);
        }
    }
    return fleet;
}

core::Observatory makeObservatory(core::ProbeFleet fleet) {
    auto& w = world();
    return core::Observatory{w.topo, w.engine, w.detector,
                             std::move(fleet)};
}

TEST(CampaignSupervisor, FaultFreeOracleCompletesEveryTask) {
    const auto obs = makeObservatory(smallFleet());
    const CampaignSupervisor supervisor{obs};
    net::Rng rng{1};
    const auto result = supervisor.runFaultFreeOracle(rng);
    const auto& rep = result.degradation;
    EXPECT_GT(rep.tasksPlanned, 0);
    EXPECT_EQ(rep.completed, rep.tasksPlanned);
    EXPECT_EQ(rep.attempts, rep.tasksPlanned);
    EXPECT_EQ(rep.abandoned, 0);
    EXPECT_EQ(rep.retries, 0);
    EXPECT_EQ(rep.reassigned, 0);
    EXPECT_DOUBLE_EQ(rep.completionRatio, 1.0);
    EXPECT_TRUE(rep.lossByFaultClass.empty());
    EXPECT_EQ(result.tracesLaunched, rep.tasksPlanned);
}

TEST(CampaignSupervisor, ReplayIsByteIdenticalForAFixedSeed) {
    const auto obs = makeObservatory(smallFleet());
    const CampaignSupervisor supervisor{obs};
    FaultPlanConfig planCfg;
    planCfg.intensity = 1.5;

    const auto once = [&] {
        net::Rng planRng{21};
        const auto plan =
            FaultPlan::generate(obs.fleet(), planCfg, planRng);
        net::Rng rng{22};
        return supervisor.runIxpDiscovery(plan, rng);
    };
    const auto first = once();
    const auto second = once();
    // Full structural equality: sets, counters and the whole report.
    EXPECT_TRUE(first == second);
    EXPECT_TRUE(first.degradation == second.degradation);
    EXPECT_GT(first.degradation.retries, 0);
}

TEST(CampaignSupervisor, RetriesCompleteStrictlyMoreThanNoRetries) {
    // Acceptance criterion: same seed, non-empty plan; retries enabled
    // must complete strictly more tasks than retries disabled.
    const auto obs = makeObservatory(smallFleet());
    FaultPlanConfig planCfg;
    planCfg.intensity = 1.5;

    const auto runWith = [&](bool retriesEnabled) {
        SupervisorConfig config;
        config.retry.enabled = retriesEnabled;
        config.reassignOnFailure = retriesEnabled;
        const CampaignSupervisor supervisor{obs, config};
        net::Rng planRng{31};
        const auto plan =
            FaultPlan::generate(obs.fleet(), planCfg, planRng);
        EXPECT_FALSE(plan.empty());
        net::Rng rng{32};
        return supervisor.runIxpDiscovery(plan, rng);
    };

    const auto resilient = runWith(true);
    const auto fragile = runWith(false);
    EXPECT_GT(resilient.degradation.completed,
              fragile.degradation.completed);
    EXPECT_LT(resilient.degradation.abandoned,
              fragile.degradation.abandoned);
    // Both paths are deterministic: repeat the fragile run and compare.
    EXPECT_TRUE(fragile == runWith(false));
}

TEST(CampaignSupervisor, AllProbesDownYieldsEmptyWellFormedResult) {
    const auto obs = makeObservatory(smallFleet());
    const CampaignSupervisor supervisor{obs};
    auto plan = FaultPlan::none(obs.fleet().size());
    for (std::size_t p = 0; p < obs.fleet().size(); ++p) {
        plan.addWindow(p, {FaultClass::PowerLoss, 0.0, kNeverEnds});
    }
    net::Rng rng{41};
    const auto result = supervisor.runIxpDiscovery(plan, rng);
    const auto& rep = result.degradation;
    EXPECT_GT(rep.tasksPlanned, 0);
    EXPECT_EQ(rep.completed, 0);
    EXPECT_EQ(rep.abandoned, rep.tasksPlanned); // 100% abandonment
    EXPECT_DOUBLE_EQ(rep.completionRatio, 0.0);
    EXPECT_EQ(result.tracesLaunched, 0);
    EXPECT_TRUE(result.ixpsDetected.empty());
    EXPECT_TRUE(result.asesObserved.empty());
    EXPECT_EQ(rep.lossByFaultClass.at(
                  std::string{faultClassName(FaultClass::PowerLoss)}),
              rep.tasksPlanned);
    // Every attempt timed out, none were billed.
    EXPECT_GT(rep.transientTimeouts, 0);
    EXPECT_EQ(rep.probesExhausted, 0);
}

TEST(CampaignSupervisor, BudgetExhaustedBeforeFirstTaskAbandonsAll) {
    const auto obs = makeObservatory(smallFleet());
    SupervisorConfig config;
    // Almost all of the month's data is already gone: the remaining
    // budget cannot pay for even one task's megabytes.
    config.budgetFraction = 1e-9;
    const CampaignSupervisor supervisor{obs, config};
    net::Rng rng{51};
    const auto result =
        supervisor.runIxpDiscovery(FaultPlan::none(obs.fleet().size()),
                                   rng);
    const auto& rep = result.degradation;
    EXPECT_GT(rep.tasksPlanned, 0);
    EXPECT_EQ(rep.completed, 0);
    EXPECT_EQ(rep.abandoned, rep.tasksPlanned);
    EXPECT_DOUBLE_EQ(rep.completionRatio, 0.0);
    EXPECT_TRUE(result.ixpsDetected.empty());
    EXPECT_EQ(rep.lossByFaultClass.at(std::string{
                  faultClassName(FaultClass::BundleExhausted)}),
              rep.tasksPlanned);
    EXPECT_EQ(rep.probesExhausted,
              static_cast<int>(obs.fleet().size()));
}

TEST(CampaignSupervisor, DeadProbeTasksMoveToCountrySibling) {
    const auto obs = makeObservatory(smallFleet());
    const CampaignSupervisor supervisor{obs};
    // Kill probe 0 outright; its RW sibling (probe 1) stays healthy.
    auto plan = FaultPlan::none(obs.fleet().size());
    plan.addWindow(0, {FaultClass::PermanentFailure, 0.0, kNeverEnds});
    net::Rng rng{61};
    const auto result = supervisor.runIxpDiscovery(plan, rng);
    const auto& rep = result.degradation;
    EXPECT_GT(rep.reassigned, 0);
    EXPECT_EQ(rep.completed, rep.tasksPlanned); // sibling absorbed it all
    EXPECT_EQ(rep.abandoned, 0);
    EXPECT_DOUBLE_EQ(rep.completionRatio, 1.0);
}

TEST(CampaignSupervisor, ReassignmentDisabledAbandonsDeadProbesTasks) {
    const auto obs = makeObservatory(smallFleet());
    SupervisorConfig config;
    config.reassignOnFailure = false;
    const CampaignSupervisor supervisor{obs, config};
    auto plan = FaultPlan::none(obs.fleet().size());
    plan.addWindow(0, {FaultClass::PermanentFailure, 0.0, kNeverEnds});
    net::Rng rng{62};
    const auto result = supervisor.runIxpDiscovery(plan, rng);
    const auto& rep = result.degradation;
    EXPECT_EQ(rep.reassigned, 0);
    EXPECT_GT(rep.abandoned, 0);
    EXPECT_EQ(rep.lossByFaultClass.at(std::string{
                  faultClassName(FaultClass::PermanentFailure)}),
              rep.abandoned);
}

TEST(CampaignSupervisor, OracleCoverageAttachesSensibly) {
    const auto obs = makeObservatory(smallFleet());
    const CampaignSupervisor supervisor{obs};
    net::Rng rngA{71};
    auto degraded = supervisor.runFaultFreeOracle(rngA);
    net::Rng rngB{71};
    const auto oracle = supervisor.runFaultFreeOracle(rngB);
    attachOracleCoverage(degraded, oracle);
    // A fault-free run covers the oracle exactly.
    EXPECT_DOUBLE_EQ(degraded.degradation.coverageVsOracle, 1.0);
}

TEST(CampaignSupervisor, RoutableTaskShareSweepsThroughTheCache) {
    auto& w = world();
    const auto obs = makeObservatory(smallFleet());
    const CampaignSupervisor supervisor{obs};
    net::Rng taskRng{91};
    const auto tasks = obs.ixpDiscoveryTasks(taskRng);
    ASSERT_FALSE(tasks.empty());
    route::OracleCache cache{w.topo, 4};

    // Empty plan: trivially fully routable, and no oracle is fetched.
    EXPECT_DOUBLE_EQ(supervisor.routableTaskShare({}, route::LinkFilter{},
                                                  cache),
                     1.0);
    EXPECT_EQ(cache.stats().misses, 0U);

    // Intact network: the fault-free campaign completes every task, so
    // every task pair must be routable.
    const double intact =
        supervisor.routableTaskShare(tasks, route::LinkFilter{}, cache);
    EXPECT_DOUBLE_EQ(intact, 1.0);

    // Disabling every probe host AS leaves nothing routable.
    route::LinkFilter blackout;
    for (const auto& task : tasks) {
        blackout.disableAs(task.srcAs);
    }
    EXPECT_DOUBLE_EQ(supervisor.routableTaskShare(tasks, blackout, cache),
                     0.0);

    // Sweeping the same scenario again reuses the recomputed oracle.
    cache.resetStats();
    for (int i = 0; i < 3; ++i) {
        (void)supervisor.routableTaskShare(tasks, blackout, cache);
    }
    EXPECT_EQ(cache.stats().misses, 0U);
    EXPECT_EQ(cache.stats().hits, 3U);
}

TEST(CampaignSupervisor, RoutableTaskShareRejectsForeignCache) {
    const auto obs = makeObservatory(smallFleet());
    const CampaignSupervisor supervisor{obs};
    net::Rng taskRng{92};
    const auto tasks = obs.ixpDiscoveryTasks(taskRng);

    topo::Topology other;
    topo::AsInfo info;
    info.asn = 64512;
    info.countryCode = "ZA";
    info.region = net::Region::SouthernAfrica;
    info.prefixes = {net::Prefix{net::Ipv4Address{41U << 24}, 8}};
    (void)other.addAs(info);
    other.finalize();
    route::OracleCache foreign{other, 2};
    EXPECT_THROW((void)supervisor.routableTaskShare(
                     tasks, route::LinkFilter{}, foreign),
                 net::PreconditionError);
}

TEST(SupervisorConfig, ValidateAcceptsDefaults) {
    EXPECT_NO_THROW(SupervisorConfig{}.validate());
}

TEST(SupervisorConfig, ValidateRejectsEachBadField) {
    const auto obs = makeObservatory(smallFleet());
    const auto rejects = [&](auto mutate) {
        SupervisorConfig config;
        mutate(config);
        EXPECT_THROW(config.validate(), net::PreconditionError);
        // The constructor must apply the same gate.
        EXPECT_THROW(CampaignSupervisor(obs, config),
                     net::PreconditionError);
    };
    rejects([](SupervisorConfig& c) { c.retry.maxAttempts = 0; });
    rejects([](SupervisorConfig& c) { c.retry.maxAttempts = -3; });
    rejects([](SupervisorConfig& c) { c.retry.baseBackoffHours = 0.0; });
    rejects([](SupervisorConfig& c) { c.retry.backoffMultiplier = 0.5; });
    rejects([](SupervisorConfig& c) { c.retry.jitterFraction = -0.1; });
    rejects([](SupervisorConfig& c) { c.retry.jitterFraction = 1.0; });
    rejects([](SupervisorConfig& c) { c.taskSpacingHours = 0.0; });
    rejects([](SupervisorConfig& c) { c.taskSpacingHours = -1.0; });
    rejects([](SupervisorConfig& c) { c.taskMb = -0.01; });
    rejects([](SupervisorConfig& c) { c.budgetFraction = 0.0; });
    rejects([](SupervisorConfig& c) { c.budgetFraction = -0.2; });
    rejects([](SupervisorConfig& c) { c.budgetFraction = 1.5; });
    rejects([](SupervisorConfig& c) { c.maxReassignments = -1; });
    rejects([](SupervisorConfig& c) { c.checkpointInterval = 0; });
    rejects([](SupervisorConfig& c) { c.retry.maxBackoffHours = 0.0; });
    // A cap below the base backoff could never be honoured.
    rejects([](SupervisorConfig& c) { c.retry.maxBackoffHours = 0.4; });
    rejects([](SupervisorConfig& c) { c.deadlineBudgetHours = 0.0; });
    rejects([](SupervisorConfig& c) { c.deadlineBudgetHours = -5.0; });
}

TEST(CampaignSupervisor, BackoffClampKeepsExplosiveSchedulesFinite) {
    // multiplier^attempt overflows double to inf long before 40 attempts
    // at multiplier 10; the pre-jitter clamp must keep every scheduled
    // launch hour finite and at or below the cap, so the full attempt
    // budget is actually spent instead of one retry shooting off past
    // every horizon.
    const auto obs = makeObservatory(smallFleet());
    SupervisorConfig config;
    config.retry.maxAttempts = 40;
    config.retry.backoffMultiplier = 10.0;
    config.retry.jitterFraction = 0.0;
    config.retry.maxBackoffHours = 2.0;
    obs::MetricsRegistry metrics;
    const CampaignSupervisor supervisor{obs, config, &metrics};
    auto plan = FaultPlan::none(obs.fleet().size());
    for (std::size_t p = 0; p < obs.fleet().size(); ++p) {
        plan.addWindow(p, {FaultClass::PowerLoss, 0.0, kNeverEnds});
    }
    net::Rng rng{171};
    const auto result = supervisor.runIxpDiscovery(plan, rng);
    const auto& rep = result.degradation;
    EXPECT_EQ(rep.attempts,
              rep.tasksPlanned * config.retry.maxAttempts);
    EXPECT_EQ(rep.abandoned, rep.tasksPlanned);
    const auto backoff =
        metrics.histogram("supervisor.backoff_hours").snapshot();
    EXPECT_GT(backoff.count, 0U);
    EXPECT_TRUE(std::isfinite(backoff.max));
    EXPECT_LE(backoff.max, config.retry.maxBackoffHours);
    EXPECT_GE(backoff.min, config.retry.baseBackoffHours);
}

TEST(CampaignSupervisor, DeadlineBudgetAbandonsRetriesPastTheHorizon) {
    const auto obs = makeObservatory(smallFleet());
    const auto runWith = [&](double deadlineBudgetHours) {
        SupervisorConfig config;
        config.retry.jitterFraction = 0.0;
        config.deadlineBudgetHours = deadlineBudgetHours;
        const CampaignSupervisor supervisor{obs, config};
        auto plan = FaultPlan::none(obs.fleet().size());
        for (std::size_t p = 0; p < obs.fleet().size(); ++p) {
            plan.addWindow(p, {FaultClass::PowerLoss, 0.0, kNeverEnds});
        }
        net::Rng rng{181};
        return supervisor.runIxpDiscovery(plan, rng);
    };

    // No horizon: every task burns its full retry budget.
    const auto open = runWith(kNeverEnds);
    SupervisorConfig defaults;
    EXPECT_EQ(open.degradation.retries,
              open.degradation.tasksPlanned *
                  (defaults.retry.maxAttempts - 1));

    // A one-hour horizon: the second retry (base 0.5h then 1.0h) would
    // land past it, so tasks are abandoned with attempts still in their
    // budget — strictly fewer retries, everything still abandoned.
    const auto tight = runWith(1.0);
    EXPECT_EQ(tight.degradation.abandoned,
              tight.degradation.tasksPlanned);
    EXPECT_LT(tight.degradation.retries, open.degradation.retries);
    EXPECT_LT(tight.degradation.attempts, open.degradation.attempts);

    // The horizon is part of the deterministic schedule.
    EXPECT_TRUE(tight == runWith(1.0));
}

TEST(CampaignSupervisor, JournaledRunMatchesPlainRunExactly) {
    const auto obs = makeObservatory(smallFleet());
    const CampaignSupervisor supervisor{obs};
    FaultPlanConfig planCfg;
    planCfg.intensity = 1.5;
    net::Rng planRng{121};
    const auto plan = FaultPlan::generate(obs.fleet(), planCfg, planRng);
    net::Rng taskRng{122};
    const auto tasks = obs.ixpDiscoveryTasks(taskRng);

    FaultInjector plainInjector{obs.fleet(), plan, 1.0};
    net::Rng plainRng{123};
    const auto plain = supervisor.run(tasks, plainInjector, plainRng);

    FaultInjector journaledInjector{obs.fleet(), plan, 1.0};
    net::Rng journaledRng{123};
    persist::MemorySink sink;
    const auto journaled = supervisor.runJournaled(
        tasks, journaledInjector, journaledRng, sink);

    EXPECT_TRUE(plain == journaled);
    // Journaling must not perturb the Rng stream either.
    EXPECT_EQ(plainRng.state(), journaledRng.state());

    // The journal is well-formed: header first, every settlement
    // recorded, checkpoints on the configured cadence.
    const auto replay = persist::CampaignJournal::replay(sink.bytes());
    ASSERT_TRUE(replay.header.has_value());
    EXPECT_EQ(replay.header->taskCount, tasks.size());
    EXPECT_EQ(replay.outcomeRecords,
              static_cast<std::uint64_t>(
                  journaled.degradation.completed +
                  journaled.degradation.retries +
                  journaled.degradation.reassigned +
                  journaled.degradation.abandoned));
    EXPECT_FALSE(replay.tornTail);
}

TEST(CampaignSupervisor, ResumeFromCompleteJournalReproducesTheResult) {
    const auto obs = makeObservatory(smallFleet());
    const CampaignSupervisor supervisor{obs};
    net::Rng planRng{131};
    const auto plan = FaultPlan::generate(
        obs.fleet(), FaultPlanConfig{.intensity = 1.2}, planRng);
    net::Rng taskRng{132};
    const auto tasks = obs.ixpDiscoveryTasks(taskRng);

    persist::MemorySink sink;
    FaultInjector injector{obs.fleet(), plan, 1.0};
    net::Rng rng{133};
    const auto full = supervisor.runJournaled(tasks, injector, rng, sink);

    // Resuming a journal whose campaign already drained re-runs only the
    // tail after the last checkpoint and lands on the identical result.
    FaultInjector freshInjector{obs.fleet(), plan, 1.0};
    net::Rng freshRng{999};
    const auto resumed = supervisor.resumeFromJournal(
        sink.bytes(), tasks, freshInjector, freshRng);
    EXPECT_TRUE(full == resumed);
}

TEST(CampaignSupervisor, ResumeRejectsAForeignCampaignJournal) {
    const auto obs = makeObservatory(smallFleet());
    const CampaignSupervisor supervisor{obs};
    net::Rng planRng{141};
    const auto plan = FaultPlan::generate(
        obs.fleet(), FaultPlanConfig{.intensity = 1.0}, planRng);
    net::Rng taskRng{142};
    const auto tasks = obs.ixpDiscoveryTasks(taskRng);

    persist::MemorySink sink;
    FaultInjector injector{obs.fleet(), plan, 1.0};
    net::Rng rng{143};
    (void)supervisor.runJournaled(tasks, injector, rng, sink);

    // Different plan: same journal bytes must be refused.
    FaultInjector otherInjector{obs.fleet(),
                                FaultPlan::none(obs.fleet().size()), 1.0};
    net::Rng otherRng{144};
    EXPECT_THROW((void)supervisor.resumeFromJournal(
                     sink.bytes(), tasks, otherInjector, otherRng),
                 net::PreconditionError);

    // Different config: refused too.
    SupervisorConfig altered;
    altered.taskMb = 0.5;
    const CampaignSupervisor other{obs, altered};
    FaultInjector freshInjector{obs.fleet(), plan, 1.0};
    net::Rng freshRng{145};
    EXPECT_THROW((void)other.resumeFromJournal(sink.bytes(), tasks,
                                               freshInjector, freshRng),
                 net::PreconditionError);
}

TEST(CampaignSupervisor, MeshTasksRunUnderSupervisionToo) {
    const auto obs = makeObservatory(smallFleet());
    const CampaignSupervisor supervisor{obs};
    net::Rng taskRng{81};
    const auto tasks = obs.meshTasks(taskRng);
    ASSERT_FALSE(tasks.empty());
    FaultInjector injector{obs.fleet(),
                           FaultPlan::none(obs.fleet().size()), 1.0};
    net::Rng rng{82};
    const auto result = supervisor.run(tasks, injector, rng);
    EXPECT_EQ(result.degradation.completed,
              static_cast<int>(tasks.size()));
    EXPECT_GT(result.tracesLaunched, 0);
}

} // namespace
} // namespace aio::resilience
