#include "resilience/supervisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "netbase/error.hpp"
#include "persist/record.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

// The acceptance harness for crash-safe campaigns: a deterministic
// crash-injection sweep over every record boundary of a faulted,
// retrying, reassigning campaign journal. At every cut the resumed run
// must reproduce the uninterrupted CampaignResult exactly — same IXP
// sets, same counters, same degradation report.
namespace aio::resilience {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    measure::TracerouteEngine engine;
    measure::IxpDetector detector;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), engine(topo, oracle),
          detector(topo, measure::IxpKnowledgeBase::full(topo)) {}
};

World& world() {
    static World w;
    return w;
}

core::ProbeFleet sweepFleet() {
    auto& w = world();
    core::ProbeFleet fleet;
    int serial = 0;
    for (const char* iso2 : {"RW", "KE", "NG", "ZA"}) {
        const auto ases = w.topo.asesInCountry(iso2);
        for (int i = 0; i < 2 && i < static_cast<int>(ases.size()); ++i) {
            core::Probe probe;
            probe.id = "c-" + std::string{iso2} + std::to_string(++serial);
            probe.hostAs = ases[static_cast<std::size_t>(i)];
            probe.countryCode = iso2;
            probe.availability = 0.85;
            probe.monthlyBudgetUsd = 50.0;
            probe.pricing.kind = core::PricingModel::Kind::FlatPerMb;
            probe.pricing.perMbUsd = 0.01;
            fleet.add(probe);
        }
    }
    return fleet;
}

core::Observatory makeObservatory(core::ProbeFleet fleet) {
    auto& w = world();
    return core::Observatory{w.topo, w.engine, w.detector,
                             std::move(fleet)};
}

/// Everything one sweep seed needs: a faulted plan with a guaranteed
/// dead probe (so reassignment fires), a bounded task list, the
/// uninterrupted baseline result and its complete journal bytes.
/// Members are built in place and the case is pinned (the supervisor
/// holds a pointer into `obs`).
struct SweepCase {
    core::Observatory obs;
    CampaignSupervisor supervisor;
    FaultPlan plan;
    std::vector<core::CampaignTask> tasks;
    core::CampaignResult baseline;
    std::vector<std::byte> journal;
    std::vector<std::size_t> boundaries;

    SweepCase(const SweepCase&) = delete;
    SweepCase& operator=(const SweepCase&) = delete;

    explicit SweepCase(std::uint64_t seed)
        : obs(makeObservatory(sweepFleet())),
          supervisor(obs, sweepConfig()),
          plan(makePlan(obs, seed)),
          tasks(makeTasks(obs, seed)) {
        FaultInjector injector{obs.fleet(), plan, 1.0};
        net::Rng rng{seed + 2};
        persist::MemorySink sink;
        baseline = supervisor.runJournaled(tasks, injector, rng, sink);
        journal.assign(sink.bytes().begin(), sink.bytes().end());
        boundaries = persist::scanRecords(journal).boundaries;
    }

    static SupervisorConfig sweepConfig() {
        SupervisorConfig config;
        config.checkpointInterval = 5; // dense checkpoints for the sweep
        return config;
    }

    static FaultPlan makePlan(const core::Observatory& obs,
                              std::uint64_t seed) {
        FaultPlanConfig planCfg;
        planCfg.intensity = 1.5;
        net::Rng planRng{seed};
        auto plan = FaultPlan::generate(obs.fleet(), planCfg, planRng);
        // Probe 0 dies at campaign start: its tasks must reassign to the
        // same-country sibling, so the sweep always covers that path.
        plan.addWindow(0, {FaultClass::PermanentFailure, 0.0, kNeverEnds});
        // Probe 1 loses power for the first hour: its early tasks time
        // out and retry, so the sweep always covers the retry path too.
        plan.addWindow(1, {FaultClass::PowerLoss, 0.0, 1.0});
        return plan;
    }

    static std::vector<core::CampaignTask>
    makeTasks(const core::Observatory& obs, std::uint64_t seed) {
        net::Rng taskRng{seed + 1};
        auto tasks = obs.ixpDiscoveryTasks(taskRng);
        if (tasks.size() > 48) {
            tasks.resize(48); // bound the quadratic sweep
        }
        return tasks;
    }

    [[nodiscard]] core::CampaignResult
    resumeFrom(std::span<const std::byte> bytes,
               persist::ByteSink* continuation = nullptr) const {
        // A resume is a process restart: fresh injector, and an Rng whose
        // seed deliberately disagrees with the original — the journal
        // alone must carry the stream state.
        FaultInjector injector{obs.fleet(), plan, 1.0};
        net::Rng rng{0xDEAD};
        return supervisor.resumeFromJournal(bytes, tasks, injector, rng,
                                            continuation);
    }
};

class CrashSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashSweep, EveryRecordBoundaryResumesByteIdentical) {
    const SweepCase c{GetParam()};
    // The sweep is only meaningful over a campaign that actually
    // exercised the degraded paths.
    ASSERT_GT(c.baseline.degradation.retries, 0);
    ASSERT_GT(c.baseline.degradation.reassigned, 0);
    ASSERT_GT(c.boundaries.size(), 10U);

    for (const std::size_t cut : c.boundaries) {
        const auto resumed =
            c.resumeFrom(std::span{c.journal}.first(cut));
        ASSERT_TRUE(resumed == c.baseline) << "clean cut at " << cut;
    }
}

TEST_P(CrashSweep, TornTailsMidRecordResumeByteIdentical) {
    const SweepCase c{GetParam()};
    // Cut strictly inside each record (boundary + 1 is always mid-record:
    // the frame header alone is 12 bytes): the torn tail is truncated and
    // the half-written settlement re-executes identically.
    for (std::size_t i = 0; i + 1 < c.boundaries.size(); ++i) {
        const std::size_t cut = c.boundaries[i] + 1;
        const auto resumed =
            c.resumeFrom(std::span{c.journal}.first(cut));
        ASSERT_TRUE(resumed == c.baseline) << "torn cut at " << cut;
    }
    // And the torn-from-byte-one case: not even the header survived.
    const auto fromOne = c.resumeFrom(std::span{c.journal}.first(1));
    // With no header the resume cannot recover the recorded Rng stream,
    // so equality is not guaranteed — but it must not throw, and it must
    // run the full plan.
    EXPECT_EQ(fromOne.degradation.tasksPlanned,
              static_cast<int>(c.tasks.size()));
}

TEST_P(CrashSweep, CrashingSinkLeavesExactlyTheJournalPrefix) {
    const SweepCase c{GetParam()};
    // Re-run the campaign through a sink that dies after N bytes, for a
    // few N across the journal: the surviving bytes must be the exact
    // prefix of the uninterrupted journal (records are appended in one
    // sink call, so a crash tears at most one record), and resuming from
    // them must land on the baseline.
    const std::size_t last = c.boundaries.size() - 1;
    for (const std::size_t budget :
         {c.boundaries[1], c.boundaries[last / 2] + 7,
          c.boundaries[last] - 3}) {
        persist::MemorySink inner;
        persist::CrashingSink dying{inner, budget};
        FaultInjector injector{c.obs.fleet(), c.plan, 1.0};
        net::Rng rng{GetParam() + 2}; // the original campaign seed
        EXPECT_THROW((void)c.supervisor.runJournaled(c.tasks, injector,
                                                     rng, dying),
                     persist::SinkFailure);
        ASSERT_EQ(inner.size(), budget);
        const auto expect = std::span{c.journal}.first(budget);
        EXPECT_TRUE(std::ranges::equal(inner.bytes(), expect));

        const auto resumed = c.resumeFrom(inner.bytes());
        EXPECT_TRUE(resumed == c.baseline) << "sink died at " << budget;
    }
}

TEST_P(CrashSweep, CrashBetweenWriteAndFlushResumesFromDurableBytes) {
    const SweepCase c{GetParam()};
    // Exact-boundary budgets hit CrashingSink's write/flush seam: the
    // last record's append lands in the OS-cache model, then the flush
    // throws — written but never durable. What a real crash leaves is
    // the *flushed* prefix, one record short of what the process wrote,
    // and resume must reach the baseline from exactly that.
    const std::size_t last = c.boundaries.size() - 1;
    for (const std::size_t idx : {std::size_t{1}, last / 2, last}) {
        const std::size_t budget = c.boundaries[idx];
        persist::BufferingSink buffered;
        persist::CrashingSink dying{buffered, budget};
        FaultInjector injector{c.obs.fleet(), c.plan, 1.0};
        net::Rng rng{GetParam() + 2}; // the original campaign seed
        EXPECT_THROW((void)c.supervisor.runJournaled(c.tasks, injector,
                                                     rng, dying),
                     persist::SinkFailure);

        // The unflushed tail is exactly the last written record.
        EXPECT_EQ(buffered.pendingBytes(),
                  c.boundaries[idx] - c.boundaries[idx - 1]);
        const auto durable = buffered.durable();
        ASSERT_EQ(durable.size(), c.boundaries[idx - 1]);
        EXPECT_TRUE(std::ranges::equal(
            durable, std::span{c.journal}.first(durable.size())));

        const auto resumed = c.resumeFrom(durable);
        EXPECT_TRUE(resumed == c.baseline)
            << "flush crash at record " << idx;
    }
}

TEST_P(CrashSweep, DoubleCrashResumesThroughContinuationJournal) {
    const SweepCase c{GetParam()};
    const std::size_t firstCut = c.boundaries[c.boundaries.size() / 3];
    const auto firstJournal = std::span{c.journal}.first(firstCut);

    // Dry run to learn the continuation journal's record layout: record
    // 0 is the header, record 1 the anchor checkpoint.
    persist::MemorySink whole;
    (void)c.resumeFrom(firstJournal, &whole);
    const auto contBoundaries =
        persist::scanRecords(whole.bytes()).boundaries;
    ASSERT_GT(contBoundaries.size(), 3U);

    // Crash 1: resume from a mid-campaign prefix, journaling the
    // remainder into a sink that dies a few records past the anchor.
    const std::size_t contBudget = contBoundaries[3] + 7;
    persist::MemorySink inner;
    persist::CrashingSink dying{inner, contBudget};
    EXPECT_THROW((void)c.resumeFrom(firstJournal, &dying),
                 persist::SinkFailure);
    ASSERT_EQ(inner.size(), contBudget);

    // Crash 2: resume again, now from the continuation journal — its
    // header re-anchors the cursor at the first crash's restore point.
    const auto resumed = c.resumeFrom(inner.bytes());
    EXPECT_TRUE(resumed == c.baseline);
}

TEST_P(CrashSweep, ContinuationThatLostItsAnchorCheckpointIsRefused) {
    const SweepCase c{GetParam()};
    const std::size_t firstCut = c.boundaries[c.boundaries.size() / 3];
    const auto firstJournal = std::span{c.journal}.first(firstCut);

    persist::MemorySink whole;
    (void)c.resumeFrom(firstJournal, &whole);
    const auto contBoundaries =
        persist::scanRecords(whole.bytes()).boundaries;

    // The continuation sink dies inside the anchor checkpoint record:
    // what survives is a header whose Rng state is mid-campaign, with no
    // checkpoint to rebuild the queue from. Replaying it "fresh" would
    // silently produce a wrong result, so resume must refuse it...
    const std::size_t contBudget = contBoundaries[0] + 20;
    persist::MemorySink inner;
    persist::CrashingSink dying{inner, contBudget};
    EXPECT_THROW((void)c.resumeFrom(firstJournal, &dying),
                 persist::SinkFailure);
    EXPECT_THROW((void)c.resumeFrom(inner.bytes()),
                 net::PreconditionError);

    // ...and recovery falls back to the previous journal in the chain,
    // which still resumes to the exact baseline.
    const auto recovered = c.resumeFrom(firstJournal);
    EXPECT_TRUE(recovered == c.baseline);
}

TEST_P(CrashSweep, ContinuationOfACompleteResumeIsAlsoReplayable) {
    const SweepCase c{GetParam()};
    const std::size_t cut = c.boundaries[c.boundaries.size() / 2];

    // Resume with a healthy continuation sink: the continuation journal
    // must itself resume to the same result (idempotent re-resume).
    persist::MemorySink continuation;
    const auto once =
        c.resumeFrom(std::span{c.journal}.first(cut), &continuation);
    EXPECT_TRUE(once == c.baseline);
    const auto again = c.resumeFrom(continuation.bytes());
    EXPECT_TRUE(again == c.baseline);
}

TEST_P(CrashSweep, MidStreamBitFlipRefusesToResume) {
    const SweepCase c{GetParam()};
    std::vector<std::byte> damaged = c.journal;
    // Flip a bit inside the third record's payload: resume must refuse
    // rather than continue from silently wrong state.
    const std::size_t at = c.boundaries[2] + 13;
    damaged[at] ^= std::byte{0x04};
    EXPECT_THROW((void)c.resumeFrom(damaged), net::CorruptionError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashSweep,
                         ::testing::Values(101, 202, 303));

} // namespace
} // namespace aio::resilience
