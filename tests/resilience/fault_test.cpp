#include "resilience/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "netbase/error.hpp"
#include "topo/generator.hpp"

namespace aio::resilience {
namespace {

core::Probe makeProbe(const std::string& id, const std::string& country,
                      double availability) {
    core::Probe probe;
    probe.id = id;
    probe.countryCode = country;
    probe.availability = availability;
    probe.pricing.kind = core::PricingModel::Kind::FlatPerMb;
    probe.pricing.perMbUsd = 0.01;
    probe.monthlyBudgetUsd = 1.0;
    return probe;
}

core::ProbeFleet smallFleet(std::size_t count, double availability = 0.8) {
    core::ProbeFleet fleet;
    for (std::size_t i = 0; i < count; ++i) {
        fleet.add(makeProbe("p" + std::to_string(i), "RW", availability));
    }
    return fleet;
}

bool sameWindows(const FaultPlan& a, const FaultPlan& b) {
    if (a.probeCount() != b.probeCount()) {
        return false;
    }
    for (std::size_t p = 0; p < a.probeCount(); ++p) {
        const auto& wa = a.windowsFor(p);
        const auto& wb = b.windowsFor(p);
        if (wa.size() != wb.size()) {
            return false;
        }
        for (std::size_t i = 0; i < wa.size(); ++i) {
            if (wa[i].cls != wb[i].cls ||
                wa[i].startHour != wb[i].startHour ||
                wa[i].endHour != wb[i].endHour) {
                return false;
            }
        }
    }
    return true;
}

TEST(FaultPlan, GenerationIsDeterministicForAFixedSeed) {
    const auto fleet = smallFleet(40);
    FaultPlanConfig config;
    net::Rng rngA{99};
    net::Rng rngB{99};
    const auto planA = FaultPlan::generate(fleet, config, rngA);
    const auto planB = FaultPlan::generate(fleet, config, rngB);
    EXPECT_TRUE(sameWindows(planA, planB));
    EXPECT_GT(planA.windowCount(), 0U);
}

TEST(FaultPlan, ZeroIntensityYieldsNoFaults) {
    const auto fleet = smallFleet(40);
    FaultPlanConfig config;
    config.intensity = 0.0;
    net::Rng rng{7};
    const auto plan = FaultPlan::generate(fleet, config, rng);
    EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, HigherIntensityInjectsMoreDowntime) {
    const auto fleet = smallFleet(60);
    FaultPlanConfig mild;
    mild.intensity = 0.5;
    FaultPlanConfig harsh;
    harsh.intensity = 4.0;
    net::Rng rngA{11};
    net::Rng rngB{11};
    const auto few = FaultPlan::generate(fleet, mild, rngA);
    const auto many = FaultPlan::generate(fleet, harsh, rngB);
    EXPECT_GT(many.windowCount(), few.windowCount());
}

TEST(FaultPlan, PerfectAvailabilityProbesGetNoPowerFaults) {
    const auto fleet = smallFleet(30, 1.0);
    FaultPlanConfig config;
    config.permanentFailureProb = 0.0;
    net::Rng rng{5};
    const auto plan = FaultPlan::generate(fleet, config, rng);
    EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, RejectsDegenerateWindows) {
    auto plan = FaultPlan::none(2);
    EXPECT_THROW(plan.addWindow(5, {FaultClass::PowerLoss, 0.0, 1.0}),
                 net::PreconditionError);
    EXPECT_THROW(plan.addWindow(0, {FaultClass::PowerLoss, 2.0, 2.0}),
                 net::PreconditionError);
    plan.addWindow(0, {FaultClass::PowerLoss, 0.0, 1.0});
    EXPECT_EQ(plan.windowCount(), 1U);
}

TEST(FaultInjector, StatusFollowsWindows) {
    const auto fleet = smallFleet(2);
    auto plan = FaultPlan::none(2);
    plan.addWindow(0, {FaultClass::PowerLoss, 2.0, 4.0});
    plan.addWindow(0, {FaultClass::TransitLoss, 6.0, 8.0});
    plan.addWindow(1, {FaultClass::PermanentFailure, 3.0, kNeverEnds});
    const FaultInjector injector{fleet, plan};

    EXPECT_EQ(injector.statusAt(0, 1.0), ProbeStatus::Up);
    EXPECT_EQ(injector.statusAt(0, 3.0), ProbeStatus::PowerDown);
    EXPECT_EQ(injector.statusAt(0, 5.0), ProbeStatus::Up);
    EXPECT_EQ(injector.statusAt(0, 7.0), ProbeStatus::TransitDown);
    EXPECT_EQ(injector.statusAt(1, 2.9), ProbeStatus::Up);
    EXPECT_EQ(injector.statusAt(1, 3.0), ProbeStatus::Dead);
    EXPECT_EQ(injector.statusAt(1, 1000.0), ProbeStatus::Dead);
}

TEST(FaultInjector, RequireUpClassifiesTransientVsPermanent) {
    const auto fleet = smallFleet(2);
    auto plan = FaultPlan::none(2);
    plan.addWindow(0, {FaultClass::PowerLoss, 0.0, 10.0});
    plan.addWindow(1, {FaultClass::PermanentFailure, 0.0, kNeverEnds});
    const FaultInjector injector{fleet, plan};
    EXPECT_THROW(injector.requireUp(0, 5.0), net::TransientError);
    EXPECT_NO_THROW(injector.requireUp(0, 11.0));
    EXPECT_THROW(injector.requireUp(1, 5.0), net::PreconditionError);
}

TEST(FaultInjector, BundleExhaustionIsStickyAndMetered) {
    core::ProbeFleet fleet;
    fleet.add(makeProbe("p0", "RW", 1.0)); // $1 at $0.01/MB = 100 MB
    FaultInjector injector{fleet, FaultPlan::none(1)};

    EXPECT_TRUE(injector.chargeTask(0, 60.0, false));
    EXPECT_EQ(injector.statusAt(0, 0.0), ProbeStatus::Up);
    // 60 + 60 MB would cost $1.20 > $1: the SIM runs dry.
    EXPECT_FALSE(injector.chargeTask(0, 60.0, false));
    EXPECT_EQ(injector.statusAt(0, 0.0), ProbeStatus::BundleDry);
    // Sticky: even a tiny charge is refused afterwards.
    EXPECT_FALSE(injector.chargeTask(0, 0.001, false));
    EXPECT_DOUBLE_EQ(injector.spentUsd(0), 0.6);
    EXPECT_EQ(injector.exhaustedCount(), 1);
}

TEST(FaultInjector, BudgetFractionScalesTheCampaignBudget) {
    core::ProbeFleet fleet;
    fleet.add(makeProbe("p0", "RW", 1.0));
    const auto plan = FaultPlan::none(1);
    FaultInjector injector{fleet, plan, 0.1}; // $0.10 => 10 MB
    EXPECT_FALSE(injector.chargeTask(0, 20.0, false));
    FaultInjector fullInjector{fleet, plan, 1.0};
    EXPECT_TRUE(fullInjector.chargeTask(0, 20.0, false));
}

TEST(FaultPlan, OutageOverlayHitsProbesInAffectedCountries) {
    const auto topo =
        topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
            .generate();
    const auto registry = phys::CableRegistry::africanDefaults();
    net::Rng mapRng{3};
    const phys::PhysicalLinkMap linkMap{topo, registry, mapRng};
    core::ProbeFleet fleet;
    fleet.add(makeProbe("rw", "RW", 1.0));
    fleet.add(makeProbe("ke", "KE", 1.0));

    outage::OutageEvent blackout;
    blackout.type = outage::OutageType::PowerOutage;
    blackout.startDay = 0.5;
    blackout.durationDays = 1.0;
    blackout.countries = {"KE"};
    EXPECT_TRUE(blackout.activeAtDay(1.0));
    EXPECT_FALSE(blackout.activeAtDay(2.0));

    auto plan = FaultPlan::none(2);
    plan.overlayOutages(std::vector{blackout}, fleet, linkMap,
                        FaultPlanConfig{});
    EXPECT_TRUE(plan.windowsFor(0).empty());
    ASSERT_EQ(plan.windowsFor(1).size(), 1U);
    const FaultWindow& window = plan.windowsFor(1).front();
    EXPECT_EQ(window.cls, FaultClass::PowerLoss);
    EXPECT_DOUBLE_EQ(window.startHour, 12.0);
    EXPECT_DOUBLE_EQ(window.endHour, 36.0);
}

TEST(FaultPlan, EventsOutsideTheCampaignWindowAreIgnored) {
    const auto topo =
        topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
            .generate();
    const auto registry = phys::CableRegistry::africanDefaults();
    net::Rng mapRng{3};
    const phys::PhysicalLinkMap linkMap{topo, registry, mapRng};
    core::ProbeFleet fleet;
    fleet.add(makeProbe("ke", "KE", 1.0));

    outage::OutageEvent late;
    late.type = outage::OutageType::GovernmentShutdown;
    late.startDay = 30.0; // way past a 72-hour campaign starting at day 0
    late.durationDays = 3.0;
    late.countries = {"KE"};
    auto plan = FaultPlan::none(1);
    plan.overlayOutages(std::vector{late}, fleet, linkMap,
                        FaultPlanConfig{});
    EXPECT_TRUE(plan.empty());
}

TEST(FaultTaxonomy, OutageTypesMapToFaultClasses) {
    // The shared outage -> fault bridge the scenario catalog's phase
    // specs and the campaign overlay both use: power events take probes
    // down as PowerLoss, every connectivity-class event as TransitLoss.
    EXPECT_EQ(faultClassFor(outage::OutageType::PowerOutage),
              FaultClass::PowerLoss);
    EXPECT_EQ(faultClassFor(outage::OutageType::CableCut),
              FaultClass::TransitLoss);
    EXPECT_EQ(faultClassFor(outage::OutageType::GovernmentShutdown),
              FaultClass::TransitLoss);
    EXPECT_EQ(faultClassFor(outage::OutageType::RoutingIncident),
              FaultClass::TransitLoss);
}

TEST(FaultPlan, CableCutOverlayOnlyProducesTransitLoss) {
    const auto topo =
        topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
            .generate();
    const auto registry = phys::CableRegistry::africanDefaults();
    net::Rng mapRng{3};
    const phys::PhysicalLinkMap linkMap{topo, registry, mapRng};
    net::Rng fleetRng{4};
    const auto fleet = core::ProbeFleet::observatory(topo, fleetRng);

    // Sever the entire cable plant: the worst possible corridor event.
    outage::OutageEvent cut;
    cut.type = outage::OutageType::CableCut;
    cut.startDay = 0.0;
    cut.durationDays = 21.0;
    for (phys::CableId c = 0; c < registry.cableCount(); ++c) {
        cut.cutCables.push_back(c);
    }
    auto plan = FaultPlan::none(fleet.size());
    plan.overlayOutages(std::vector{cut}, fleet, linkMap,
                        FaultPlanConfig{});
    EXPECT_GT(plan.windowCount(), 0U);
    for (std::size_t p = 0; p < plan.probeCount(); ++p) {
        for (const FaultWindow& window : plan.windowsFor(p)) {
            EXPECT_EQ(window.cls, FaultClass::TransitLoss);
        }
    }
}

TEST(FaultInjector, MeterRestoreRoundTrips) {
    const auto fleet = smallFleet(3);
    FaultInjector injector{fleet, FaultPlan::none(fleet.size())};
    EXPECT_TRUE(injector.chargeTask(0, 10.0, false));
    const auto states = injector.meterStates();
    FaultInjector fresh{fleet, FaultPlan::none(fleet.size())};
    fresh.restoreMeterStates(states);
    EXPECT_DOUBLE_EQ(fresh.spentUsd(0), injector.spentUsd(0));
}

TEST(FaultInjector, MeterRestoreRejectsNonFiniteAndNegativeVolumes) {
    const auto fleet = smallFleet(2);
    FaultInjector injector{fleet, FaultPlan::none(fleet.size())};
    auto states = injector.meterStates();
    states[0].peakMb = -1.0;
    EXPECT_THROW(injector.restoreMeterStates(states),
                 net::PreconditionError);
    states[0].peakMb = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(injector.restoreMeterStates(states),
                 net::PreconditionError);
}

TEST(FaultInjector, MeterRestoreRejectsConsumptionRewind) {
    const auto fleet = smallFleet(2);
    FaultInjector injector{fleet, FaultPlan::none(fleet.size())};
    EXPECT_TRUE(injector.chargeTask(0, 20.0, false));
    auto states = injector.meterStates();
    states[0].peakMb = 5.0; // snapshot from an earlier point in time
    EXPECT_THROW(injector.restoreMeterStates(states),
                 net::PreconditionError);
    // The refused restore must leave the meter untouched.
    EXPECT_DOUBLE_EQ(injector.spentUsd(0), 0.2);
}

TEST(FaultInjector, MeterRestoreRejectsClearingStickyExhaustion) {
    const auto fleet = smallFleet(1); // $1 budget, $0.01/MB
    FaultInjector injector{fleet, FaultPlan::none(fleet.size())};
    EXPECT_FALSE(injector.chargeTask(0, 500.0, false)); // goes dry
    ASSERT_EQ(injector.exhaustedCount(), 1);
    auto states = injector.meterStates();
    states[0].exhausted = false;
    EXPECT_THROW(injector.restoreMeterStates(states),
                 net::PreconditionError);
    EXPECT_EQ(injector.exhaustedCount(), 1);
}

TEST(StreamFaultConfig, ValidateRejectsBadKnobs) {
    StreamFaultConfig config;
    EXPECT_NO_THROW(config.validate());
    config.dropProb = 1.5;
    EXPECT_THROW(config.validate(), net::PreconditionError);
    config = StreamFaultConfig{};
    config.maxSkewDays = -0.1;
    EXPECT_THROW(config.validate(), net::PreconditionError);
    config = StreamFaultConfig{};
    config.churnReconnects = -1;
    EXPECT_THROW(config.validate(), net::PreconditionError);
}

TEST(StreamFaultInjector, ScheduleIsDeterministicForAFixedSeed) {
    StreamFaultConfig config;
    config.dropProb = 0.1;
    config.duplicateProb = 0.1;
    config.reorderProb = 0.1;
    config.churnBurstProb = 0.5;
    const std::vector<std::uint64_t> probes{0, 1, 2, 3, 4, 5, 6, 7};
    net::Rng rngA{21};
    net::Rng rngB{21};
    const StreamFaultInjector a{config, probes, 30.0, rngA};
    const StreamFaultInjector b{config, probes, 30.0, rngB};
    EXPECT_EQ(a.reconnectCount(), b.reconnectCount());
    for (const std::uint64_t probe : probes) {
        const auto daysA = a.reconnectDaysFor(probe);
        const auto daysB = b.reconnectDaysFor(probe);
        ASSERT_EQ(daysA.size(), daysB.size());
        for (std::size_t i = 0; i < daysA.size(); ++i) {
            EXPECT_DOUBLE_EQ(daysA[i], daysB[i]);
        }
    }
    for (int i = 0; i < 100; ++i) {
        const auto fateA = a.fateFor(rngA);
        const auto fateB = b.fateFor(rngB);
        EXPECT_EQ(fateA.dropped, fateB.dropped);
        EXPECT_EQ(fateA.duplicate, fateB.duplicate);
        EXPECT_DOUBLE_EQ(fateA.delayDays, fateB.delayDays);
    }
}

TEST(StreamFaultInjector, SessionAdvancesAcrossReconnects) {
    StreamFaultConfig config;
    config.churnBurstProb = 1.0;
    config.churnReconnects = 3;
    const std::vector<std::uint64_t> probes{7};
    net::Rng rng{5};
    const StreamFaultInjector injector{config, probes, 30.0, rng};
    const auto days = injector.reconnectDaysFor(7);
    ASSERT_EQ(days.size(), 3U);
    EXPECT_EQ(injector.sessionAt(7, 0.0), 0U);
    EXPECT_EQ(injector.sessionAt(7, 30.0), 3U);
    EXPECT_EQ(injector.sessionAt(7, days[0]), 1U);
}

TEST(StreamFaultInjector, SkewBoundIsRespected) {
    StreamFaultConfig config;
    config.dropProb = 0.3;
    config.reorderProb = 0.3;
    config.duplicateProb = 0.3;
    config.maxSkewDays = 0.5;
    const std::vector<std::uint64_t> probes{0};
    net::Rng rng{11};
    const StreamFaultInjector injector{config, probes, 30.0, rng};
    for (int i = 0; i < 500; ++i) {
        const auto fate = injector.fateFor(rng);
        if (!fate.late) {
            EXPECT_LE(fate.delayDays, config.maxSkewDays);
        }
        EXPECT_LE(fate.duplicateDelayDays, config.maxSkewDays);
    }
}

TEST(StreamFaultInjector, UnknownProbeIsRefused) {
    const std::vector<std::uint64_t> probes{1};
    net::Rng rng{3};
    const StreamFaultInjector injector{StreamFaultConfig{}, probes, 10.0,
                                       rng};
    EXPECT_THROW((void)injector.reconnectDaysFor(99),
                 net::PreconditionError);
}

TEST(ServiceFaultInjector, ValidatesConfigAtConstruction) {
    const auto rejects = [](auto mutate) {
        ServiceFaultConfig config;
        mutate(config);
        EXPECT_THROW(config.validate(), net::PreconditionError);
        EXPECT_THROW(ServiceFaultInjector{config}, net::PreconditionError);
    };
    rejects([](ServiceFaultConfig& c) { c.slowHandlerProb = -0.1; });
    rejects([](ServiceFaultConfig& c) { c.topologySwapProb = 1.5; });
    rejects([](ServiceFaultConfig& c) { c.invalidSwapProb = 2.0; });
    rejects([](ServiceFaultConfig& c) { c.tenantFloodProb = -1.0; });
    rejects([](ServiceFaultConfig& c) { c.allocPressureProb = 1.01; });
    rejects([](ServiceFaultConfig& c) { c.slowFactor = 0.5; });
    rejects([](ServiceFaultConfig& c) { c.floodBurst = 0; });
    EXPECT_NO_THROW(ServiceFaultConfig{}.validate());
}

TEST(ServiceFaultInjector, StepStreamIsDeterministicAndIndependent) {
    ServiceFaultConfig config;
    config.slowHandlerProb = 0.3;
    config.topologySwapProb = 0.2;
    config.invalidSwapProb = 0.5;
    config.tenantFloodProb = 0.1;
    config.allocPressureProb = 0.15;
    const ServiceFaultInjector injector{config};

    const auto draw = [&](const ServiceFaultInjector& inj) {
        net::Rng rng{77};
        std::vector<ServiceFaultInjector::StepFaults> steps;
        for (int i = 0; i < 400; ++i) {
            steps.push_back(inj.faultsFor(rng));
        }
        return steps;
    };
    const auto first = draw(injector);
    const auto second = draw(injector);
    int swaps = 0;
    int invalid = 0;
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].slowHandler, second[i].slowHandler);
        EXPECT_EQ(first[i].topologySwap, second[i].topologySwap);
        EXPECT_EQ(first[i].invalidSwap, second[i].invalidSwap);
        EXPECT_EQ(first[i].tenantFlood, second[i].tenantFlood);
        EXPECT_EQ(first[i].allocPressure, second[i].allocPressure);
        // An invalid swap only ever rides on an actual swap.
        EXPECT_LE(first[i].invalidSwap, first[i].topologySwap);
        swaps += first[i].topologySwap ? 1 : 0;
        invalid += first[i].invalidSwap ? 1 : 0;
    }
    EXPECT_GT(swaps, 0);
    EXPECT_GT(invalid, 0);
    EXPECT_LT(invalid, swaps);

    // Fixed draw order: zeroing one class leaves the others' decision
    // streams untouched.
    ServiceFaultConfig quietFloods = config;
    quietFloods.tenantFloodProb = 0.0;
    const auto muted = draw(ServiceFaultInjector{quietFloods});
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].slowHandler, muted[i].slowHandler);
        EXPECT_EQ(first[i].topologySwap, muted[i].topologySwap);
        EXPECT_EQ(first[i].allocPressure, muted[i].allocPressure);
        EXPECT_FALSE(muted[i].tenantFlood);
    }
}

} // namespace
} // namespace aio::resilience
