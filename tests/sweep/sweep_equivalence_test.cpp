// Differential harness for the batched scenario sweep: across a seed x
// topology-size x cut-set grid and 1/2/8-thread pools, every sweep
// outcome must equal — ImpactReport::operator==, i.e. bitwise on every
// double — the per-scenario full recompute through WhatIfEngine::assess.
// This is the contract that makes incremental route recomputation and
// cut-set dedupe safe to use at all.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/whatif.hpp"
#include "exec/worker_pool.hpp"
#include "netbase/rng.hpp"
#include "routing/oracle_cache.hpp"
#include "sweep/scenario_sweep.hpp"
#include "topo/generator.hpp"

namespace aio::sweep {
namespace {

topo::GeneratorConfig sizedConfig(std::uint64_t seed, bool small) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    if (small) {
        for (auto& profile : config.africa) {
            profile.asPerMillionPeople *= 0.4;
            profile.minAsesPerCountry = 1;
            profile.ixpCount = std::max(1, profile.ixpCount / 2);
        }
        config.europe.accessPerCountry = 2;
        config.northAmerica.accessPerCountry = 2;
        config.southAmerica.accessPerCountry = 2;
        config.asiaPacific.accessPerCountry = 2;
    }
    return config;
}

const std::vector<std::string>& cablePool() {
    static const std::vector<std::string> pool = {
        "WACS", "MainOne", "SAT-3",   "ACE",     "Glo-1",  "SEACOM",
        "EASSy", "EIG",    "AAE-1",   "Equiano", "2Africa"};
    return pool;
}

/// Overlapping random cut sets: 1-4 cables each from a pool of 11, so a
/// batch of N scenarios collides heavily (the dedupe path gets real
/// work) while still exercising many distinct degraded states.
std::vector<core::ScenarioSpec> cutGrid(std::uint64_t seed,
                                        std::size_t count) {
    net::Rng rng{seed * 7919 + 5};
    const auto& pool = cablePool();
    std::vector<core::ScenarioSpec> specs;
    specs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        core::ScenarioSpec spec;
        spec.name = "cut-" + std::to_string(i);
        const std::size_t k = 1 + rng.uniformInt(4);
        for (std::size_t c = 0; c < k; ++c) {
            const std::string& cable = pool[rng.uniformInt(pool.size())];
            if (std::ranges::find(spec.cutCables, cable) ==
                spec.cutCables.end()) {
                spec.cutCables.push_back(cable);
            }
        }
        spec.repairDays =
            std::vector<double>{14.0, 21.0, 30.0}[rng.uniformInt(3)];
        specs.push_back(std::move(spec));
    }
    return specs;
}

/// The per-scenario full-recompute reference: one WhatIfEngine (borrowing
/// the substrate's baseline), spec overlays applied individually, no
/// cache, no batching.
std::vector<outage::ImpactReport>
referenceReports(const core::Substrate& substrate,
                 std::span<const core::ScenarioSpec> specs) {
    const core::WhatIfEngine base{substrate};
    std::vector<outage::ImpactReport> reports;
    reports.reserve(specs.size());
    for (const core::ScenarioSpec& spec : specs) {
        if (spec.hasOverlay()) {
            const core::WhatIfEngine engine = base.withScenario(spec);
            reports.push_back(engine.assess(
                engine.makeCutEvent(spec.cutCables, spec.repairDays)));
        } else {
            reports.push_back(base.assess(
                base.makeCutEvent(spec.cutCables, spec.repairDays)));
        }
    }
    return reports;
}

void expectMatchesReference(const SweepResult& result,
                            const std::vector<outage::ImpactReport>& refs,
                            const std::string& label) {
    ASSERT_EQ(result.scenarios.size(), refs.size()) << label;
    for (std::size_t i = 0; i < refs.size(); ++i) {
        ASSERT_TRUE(result.scenarios[i].outcome.hasValue())
            << label << " scenario " << i;
        EXPECT_TRUE(result.scenarios[i].outcome.value() == refs[i])
            << label << ": report mismatch at scenario " << i << " ("
            << result.scenarios[i].scenario << ")";
    }
}

void runGridPoint(std::uint64_t seed, bool small, std::size_t batch) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(seed, small)}.generate();
    const auto specs = cutGrid(seed, batch);

    const core::Substrate plainSubstrate{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};
    const auto refs = referenceReports(plainSubstrate, specs);
    const std::string label =
        "seed=" + std::to_string(seed) + (small ? " small" : " default");

    // Sequential, no accelerators: incremental and full reference mode.
    {
        const ScenarioSweepEngine engine{plainSubstrate};
        expectMatchesReference(engine.run(specs), refs, label + " seq");
        const ScenarioSweepEngine full{
            plainSubstrate, SweepOptions{.mode = RecomputeMode::Full}};
        expectMatchesReference(full.run(specs), refs, label + " seq-full");
    }

    // Pooled + cached, across thread counts; second run hits the warm
    // cache and must still be identical.
    for (const int threads : {1, 2, 8}) {
        exec::WorkerPool pool{threads};
        route::OracleCache cache{topo, 64, &pool};
        obs::MetricsRegistry metrics;
        core::Substrate::Options options;
        options.oracleCache = &cache;
        options.pool = &pool;
        options.metrics = &metrics;
        const core::Substrate substrate{
            topo, phys::CableRegistry::africanDefaults(),
            dns::DnsConfig::defaults(), content::ContentConfig::defaults(),
            options};
        const ScenarioSweepEngine engine{substrate};
        const std::string tlabel =
            label + " threads=" + std::to_string(threads);
        expectMatchesReference(engine.run(specs), refs, tlabel + " cold");
        expectMatchesReference(engine.run(specs), refs, tlabel + " warm");
    }
}

TEST(SweepEquivalence, SmallTopologyGrid) {
    for (const std::uint64_t seed : {3ULL, 11ULL}) {
        runGridPoint(seed, /*small=*/true, /*batch=*/24);
    }
}

TEST(SweepEquivalence, DefaultTopologyGrid) {
    runGridPoint(20250704, /*small=*/false, /*batch=*/10);
}

TEST(SweepEquivalence, DedupeSharesOraclesAcrossRepeatedCutSets) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(7, true)}.generate();
    const core::Substrate substrate{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};

    // 16 scenarios over 4 distinct cut sets.
    std::vector<core::ScenarioSpec> specs;
    for (int i = 0; i < 16; ++i) {
        core::ScenarioSpec spec;
        spec.name = "dup-" + std::to_string(i);
        spec.cutCables = {cablePool()[static_cast<std::size_t>(i % 4)]};
        specs.push_back(std::move(spec));
    }
    const ScenarioSweepEngine engine{substrate};
    const SweepResult result = engine.run(specs);
    EXPECT_EQ(result.stats.scenarios, 16U);
    EXPECT_EQ(result.stats.incrementalBuilds, 4U);
    EXPECT_EQ(result.stats.dedupHits, 12U);
    EXPECT_EQ(result.stats.errors, 0U);
    EXPECT_GT(result.stats.dirtyDestinations, 0U);
    // Identical cut sets must yield identical reports.
    for (int i = 4; i < 16; ++i) {
        EXPECT_TRUE(result.scenarios[static_cast<std::size_t>(i)].outcome
                        .value() ==
                    result.scenarios[static_cast<std::size_t>(i % 4)]
                        .outcome.value());
    }
}

TEST(SweepEquivalence, MalformedScenariosDegradeOnlyTheirSlot) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(9, true)}.generate();
    const core::Substrate substrate{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};

    std::vector<core::ScenarioSpec> specs(5);
    specs[0].name = "good";
    specs[0].cutCables = {"WACS", "ACE"};
    specs[1].name = "unknown-cable";
    specs[1].cutCables = {"Atlantis-9"};
    specs[2].name = "empty-cut";
    specs[3].name = "good-again";
    specs[3].cutCables = {"WACS", "ACE"};
    specs[4].name = "bad-dns-override";
    specs[4].cutCables = {"WACS"};
    auto badDns = dns::DnsConfig::defaults();
    badDns.africa[0].cloudOffshore += 0.5; // shares no longer sum to 1
    specs[4].dnsOverride = badDns;

    const ScenarioSweepEngine engine{substrate};
    const SweepResult result = engine.run(specs);
    ASSERT_EQ(result.scenarios.size(), 5U);
    EXPECT_TRUE(result.scenarios[0].outcome.hasValue());
    ASSERT_FALSE(result.scenarios[1].outcome.hasValue());
    EXPECT_EQ(result.scenarios[1].outcome.error().kind,
              net::Error::Kind::NotFound);
    ASSERT_FALSE(result.scenarios[2].outcome.hasValue());
    EXPECT_EQ(result.scenarios[2].outcome.error().kind,
              net::Error::Kind::Precondition);
    EXPECT_TRUE(result.scenarios[3].outcome.hasValue());
    EXPECT_TRUE(result.scenarios[0].outcome.value() ==
                result.scenarios[3].outcome.value());
    // The malformed override is caught at validation, never inside an
    // overlay lane (where it would re-derive layers from bad shares).
    ASSERT_FALSE(result.scenarios[4].outcome.hasValue());
    EXPECT_EQ(result.scenarios[4].outcome.error().kind,
              net::Error::Kind::Precondition);
    EXPECT_EQ(result.stats.overlayScenarios, 0U);
    EXPECT_EQ(result.stats.errors, 3U);
}

TEST(SweepEquivalence, OverlayScenariosMatchPerScenarioEngines) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(13, true)}.generate();
    const core::Substrate substrate{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};

    phys::SubseaCable shield;
    shield.name = "TestShield";
    shield.readyForService = 2026;
    shield.capacityTbps = 100.0;
    for (const auto code : {"PT", "SN", "CI", "GH", "NG", "ZA"}) {
        shield.landings.push_back(phys::LandingStation{
            std::string{code},
            net::CountryTable::world().byCode(code).centroid});
    }

    std::vector<core::ScenarioSpec> specs(3);
    specs[0].name = "plain";
    specs[0].cutCables = {"WACS", "MainOne", "SAT-3", "ACE"};
    specs[1].name = "with-shield";
    specs[1].cutCables = {"WACS", "MainOne", "SAT-3", "ACE"};
    specs[1].cablesAdded = {shield};
    specs[2].name = "cut-the-added-cable";
    specs[2].cutCables = {"TestShield", "WACS"};
    specs[2].cablesAdded = {shield};
    auto localized = dns::DnsConfig::defaults();
    for (auto& profile : localized.africa) {
        profile = dns::ResolverProfile{0.6, 0.1, 0.2, 0.05, 0.05};
    }
    specs[1].dnsOverride = localized;

    const auto refs = referenceReports(substrate, specs);
    for (const int threads : {1, 4}) {
        exec::WorkerPool pool{threads};
        core::Substrate::Options options;
        options.pool = &pool;
        const core::Substrate pooled{
            topo, phys::CableRegistry::africanDefaults(),
            dns::DnsConfig::defaults(), content::ContentConfig::defaults(),
            options};
        const ScenarioSweepEngine engine{pooled};
        const SweepResult result = engine.run(specs);
        expectMatchesReference(result, refs,
                               "overlay threads=" + std::to_string(threads));
        EXPECT_EQ(result.stats.overlayScenarios, 2U);
    }
}

TEST(SweepEquivalence, ShardedStoragePolicyIsByteIdentical) {
    // The whole sweep stack — ImpactAnalyzer, WhatIfEngine,
    // ScenarioSweepEngine, OracleCache — runs unmodified behind the
    // Substrate's storage-policy switch, and every report must stay
    // bitwise equal to the dense-policy reference.
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(7, true)}.generate();
    const auto specs = cutGrid(7, 16);

    const core::Substrate dense{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};
    const auto refs = referenceReports(dense, specs);

    // Sharded substrate, no accelerators: incremental + full modes.
    core::Substrate::Options options;
    options.impact.routeStorage = route::StoragePolicy::Sharded;
    const core::Substrate sharded{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults(),
        options};
    EXPECT_EQ(sharded.storagePolicy(), route::StoragePolicy::Sharded);
    const ScenarioSweepEngine engine{sharded};
    const SweepResult result = engine.run(specs);
    expectMatchesReference(result, refs, "sharded seq");
    EXPECT_GT(result.stats.dirtyDestinations, 0U)
        << "lazy sharded derivation still reports the rows it re-solved";
    const ScenarioSweepEngine full{
        sharded, SweepOptions{.mode = RecomputeMode::Full}};
    expectMatchesReference(full.run(specs), refs, "sharded full");

    // Sharded substrate with a sharded cache and a pool; the second run
    // hits the warm cache and must still be identical.
    exec::WorkerPool pool{4};
    route::OracleCacheConfig cacheConfig;
    cacheConfig.policy = route::StoragePolicy::Sharded;
    route::OracleCache cache{topo, 64, &pool, nullptr, cacheConfig};
    core::Substrate::Options accel;
    accel.impact.routeStorage = route::StoragePolicy::Sharded;
    accel.oracleCache = &cache;
    accel.pool = &pool;
    const core::Substrate cached{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults(),
        accel};
    const ScenarioSweepEngine cachedEngine{cached};
    expectMatchesReference(cachedEngine.run(specs), refs, "sharded cold");
    expectMatchesReference(cachedEngine.run(specs), refs, "sharded warm");
}

TEST(SweepEquivalence, MismatchedCachePolicyIsRejected) {
    // A dense-policy cache wired into a sharded-policy substrate would
    // silently build dense oracles on every miss; the bundle validation
    // refuses the disagreement up front.
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(3, true)}.generate();
    route::OracleCache denseCache{topo, 4};
    core::Substrate::Options options;
    options.impact.routeStorage = route::StoragePolicy::Sharded;
    options.oracleCache = &denseCache;

    const auto attempt = core::Substrate::tryCreate(
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults(),
        options);
    ASSERT_FALSE(attempt.hasValue());
    EXPECT_EQ(attempt.error().kind, net::Error::Kind::Precondition);
    EXPECT_THROW((core::Substrate{topo,
                                  phys::CableRegistry::africanDefaults(),
                                  dns::DnsConfig::defaults(),
                                  content::ContentConfig::defaults(),
                                  options}),
                 net::PreconditionError);
}

} // namespace
} // namespace aio::sweep
