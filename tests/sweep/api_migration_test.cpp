// Locks the Substrate API migration: every entry point that grew a
// Substrate/ScenarioSpec spelling must produce byte-identical results
// through the old constructor and the new one, and the fallible entry
// points must return errors as values with the right Error kind.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/whatif.hpp"
#include "netbase/error.hpp"
#include "resilience/supervisor.hpp"
#include "routing/path_oracle.hpp"
#include "sweep/scenario_sweep.hpp"
#include "topo/generator.hpp"

namespace aio::sweep {
namespace {

topo::GeneratorConfig smallConfig(std::uint64_t seed) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    for (auto& profile : config.africa) {
        profile.asPerMillionPeople *= 0.4;
        profile.minAsesPerCountry = 1;
        profile.ixpCount = std::max(1, profile.ixpCount / 2);
    }
    config.europe.accessPerCountry = 2;
    config.northAmerica.accessPerCountry = 2;
    config.southAmerica.accessPerCountry = 2;
    config.asiaPacific.accessPerCountry = 2;
    return config;
}

struct World {
    topo::Topology topo;
    World()
        : topo(topo::TopologyGenerator{smallConfig(42)}.generate()) {}
};

World& world() {
    static World w;
    return w;
}

core::Substrate makeSubstrate(core::Substrate::Options options = {}) {
    return core::Substrate{world().topo,
                           phys::CableRegistry::africanDefaults(),
                           dns::DnsConfig::defaults(),
                           content::ContentConfig::defaults(), options};
}

TEST(ApiMigration, WhatIfEngineLegacyAndSubstrateAreByteIdentical) {
    const auto substrate = makeSubstrate();
    const core::WhatIfEngine fromSubstrate{substrate};
    const core::WhatIfEngine legacy{
        world().topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};

    const std::vector<std::string> cables = {"WACS", "MainOne", "ACE"};
    const auto event = legacy.makeCutEvent(cables);
    EXPECT_TRUE(event == fromSubstrate.makeCutEvent(cables));
    EXPECT_TRUE(legacy.assess(event) == fromSubstrate.assess(event));
    EXPECT_DOUBLE_EQ(legacy.contentLocalShare(),
                     fromSubstrate.contentLocalShare());
    EXPECT_DOUBLE_EQ(legacy.dnsFailureShare("GH", event),
                     fromSubstrate.dnsFailureShare("GH", event));

    // Derived (scenario) engines rebuild their layers; both spellings
    // must still agree.
    phys::SubseaCable extra;
    extra.name = "MigrationTest";
    for (const auto code : {"PT", "GH", "NG"}) {
        extra.landings.push_back(phys::LandingStation{
            std::string{code},
            net::CountryTable::world().byCode(code).centroid});
    }
    const auto legacyDerived = legacy.withCable(extra);
    const auto substrateDerived = fromSubstrate.withCable(extra);
    EXPECT_TRUE(legacyDerived.assess(event) ==
                substrateDerived.assess(event));
}

TEST(ApiMigration, ImpactAnalyzerFromSubstrateMatchesHandAssembled) {
    const auto substrate = makeSubstrate();

    // The legacy spelling: every layer derived by hand, seeds matching
    // what Substrate does internally.
    const auto registry = phys::CableRegistry::africanDefaults();
    net::Rng mapRng{99};
    const phys::PhysicalLinkMap linkMap{world().topo, registry, mapRng,
                                        phys::LinkMapConfig{}};
    const dns::ResolverEcosystem resolvers{world().topo,
                                           dns::DnsConfig::defaults(), 100};
    const content::ContentCatalog catalog{
        world().topo, content::ContentConfig::defaults(), 101};
    const outage::ImpactAnalyzer legacy{world().topo, linkMap, resolvers,
                                        catalog};

    const outage::ImpactAnalyzer fromSubstrate = substrate.impactAnalyzer();

    const core::WhatIfEngine engine{substrate};
    const std::vector<std::string> cables = {"SEACOM", "EASSy"};
    const auto event = engine.makeCutEvent(cables);
    net::Rng rngA{106};
    net::Rng rngB{106};
    EXPECT_TRUE(legacy.assess(event, rngA) ==
                fromSubstrate.assess(event, rngB));
}

TEST(ApiMigration, SupervisorSubstrateCtorMatchesLegacy) {
    auto& w = world();
    const route::PathOracle oracle{w.topo};
    const measure::TracerouteEngine engine{w.topo, oracle};
    const measure::IxpDetector detector{
        w.topo, measure::IxpKnowledgeBase::full(w.topo)};
    core::ProbeFleet fleet;
    int serial = 0;
    for (const char* iso2 : {"RW", "KE", "NG", "ZA"}) {
        const auto ases = w.topo.asesInCountry(iso2);
        for (std::size_t i = 0; i < 2 && i < ases.size(); ++i) {
            core::Probe probe;
            probe.id = "m-" + std::string{iso2} + std::to_string(++serial);
            probe.hostAs = ases[i];
            probe.countryCode = iso2;
            probe.availability = 0.9;
            probe.monthlyBudgetUsd = 50.0;
            probe.pricing.kind = core::PricingModel::Kind::FlatPerMb;
            probe.pricing.perMbUsd = 0.01;
            fleet.add(probe);
        }
    }
    const core::Observatory observatory{w.topo, engine, detector,
                                        std::move(fleet)};

    exec::WorkerPool pool{2};
    route::OracleCache cache{w.topo, 8, &pool};
    core::Substrate::Options options;
    options.oracleCache = &cache;
    options.pool = &pool;
    const auto substrate = makeSubstrate(options);

    const resilience::CampaignSupervisor legacy{observatory};
    const resilience::CampaignSupervisor fromSubstrate{observatory,
                                                       substrate};

    net::Rng planRng{5};
    const auto tasks = observatory.ixpDiscoveryTasks(planRng);
    route::LinkFilter scenario;
    int cut = 0;
    for (const auto& link : w.topo.links()) {
        if (++cut % 17 == 0) {
            scenario.disableLink(link.a, link.b);
        }
    }
    EXPECT_DOUBLE_EQ(
        legacy.routableTaskShare(tasks, scenario, cache),
        fromSubstrate.routableTaskShare(tasks, scenario));

    // Both spellings must run campaigns identically.
    net::Rng rngA{9};
    net::Rng rngB{9};
    EXPECT_TRUE(legacy.runFaultFreeOracle(rngA) ==
                fromSubstrate.runFaultFreeOracle(rngB));
}

TEST(ApiMigration, SubstrateValidationFailsAsValues) {
    auto badDns = dns::DnsConfig::defaults();
    badDns.africa[0].cloudOffshore += 0.5; // shares no longer sum to 1
    const auto result = core::Substrate::tryCreate(
        world().topo, phys::CableRegistry::africanDefaults(), badDns,
        content::ContentConfig::defaults());
    ASSERT_FALSE(result.hasValue());
    EXPECT_EQ(result.error().kind, net::Error::Kind::Precondition);
    EXPECT_THROW((core::Substrate{world().topo,
                                  phys::CableRegistry::africanDefaults(),
                                  badDns,
                                  content::ContentConfig::defaults()}),
                 net::PreconditionError);

    auto badContent = content::ContentConfig::defaults();
    badContent.sitesPerCountry = 0;
    ASSERT_FALSE(core::Substrate::tryCreate(
                     world().topo, phys::CableRegistry::africanDefaults(),
                     dns::DnsConfig::defaults(), badContent)
                     .hasValue());
}

TEST(ApiMigration, TryCreateSubstrateSurvivesMoves) {
    auto created = core::Substrate::tryCreate(
        world().topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults());
    ASSERT_TRUE(created.hasValue());
    // tryCreate's Expected return already move-constructed the substrate
    // once; move it twice more (construction + assignment) before using
    // it, so any derived-layer pointer into the moved-from shell blows
    // up here rather than in production.
    core::Substrate substrate = std::move(created).value();
    core::Substrate parked = makeSubstrate();
    parked = std::move(substrate);

    // The link map's registry pointer must track the substrate's own
    // registry through every move.
    EXPECT_EQ(&parked.linkMap().registry(), &parked.registry());

    // assess() on a cable cut walks the recovery check through
    // linkMap().registry() — the exact dereference a dangling pointer
    // would turn into a use-after-free.
    const auto reference = makeSubstrate();
    const core::WhatIfEngine fromMoved{parked};
    const core::WhatIfEngine fromReference{reference};
    const std::vector<std::string> cables = {"WACS", "MainOne", "ACE"};
    const auto event = fromMoved.makeCutEvent(cables);
    EXPECT_TRUE(fromMoved.assess(event) == fromReference.assess(event));
}

TEST(ApiMigration, TryMakeCutEventReturnsErrorsAsValues) {
    const auto substrate = makeSubstrate();
    const core::WhatIfEngine engine{substrate};

    const std::vector<std::string> unknown = {"WACS", "Atlantis-9"};
    const auto bad = engine.tryMakeCutEvent(unknown);
    ASSERT_FALSE(bad.hasValue());
    EXPECT_EQ(bad.error().kind, net::Error::Kind::NotFound);
    EXPECT_THROW((void)engine.makeCutEvent(unknown), net::NotFoundError);

    const auto empty = engine.tryMakeCutEvent({});
    ASSERT_FALSE(empty.hasValue());
    EXPECT_EQ(empty.error().kind, net::Error::Kind::Precondition);

    const std::vector<std::string> good = {"WACS"};
    const auto event = engine.tryMakeCutEvent(good, 10.0);
    ASSERT_TRUE(event.hasValue());
    EXPECT_EQ(event.value().cutCables.size(), 1U);
    EXPECT_DOUBLE_EQ(event.value().durationDays, 10.0);
}

TEST(ApiMigration, ScenarioSpecValidateCatchesBadSpecs) {
    const auto substrate = makeSubstrate();

    core::ScenarioSpec good;
    good.name = "ok";
    good.cutCables = {"WACS"};
    EXPECT_TRUE(good.validate(substrate).hasValue());

    core::ScenarioSpec unnamed = good;
    unnamed.name.clear();
    EXPECT_EQ(unnamed.validate(substrate).error().kind,
              net::Error::Kind::Precondition);

    core::ScenarioSpec badRepair = good;
    badRepair.repairDays = -3.0;
    EXPECT_FALSE(badRepair.validate(substrate).hasValue());

    core::ScenarioSpec unknownCut = good;
    unknownCut.cutCables = {"Atlantis-9"};
    EXPECT_EQ(unknownCut.validate(substrate).error().kind,
              net::Error::Kind::NotFound);

    // A cut cable may resolve against the scenario's own added cables.
    core::ScenarioSpec addedCut = good;
    phys::SubseaCable added;
    added.name = "Hypothetical";
    for (const auto code : {"PT", "NG"}) {
        added.landings.push_back(phys::LandingStation{
            std::string{code},
            net::CountryTable::world().byCode(code).centroid});
    }
    addedCut.cablesAdded = {added};
    addedCut.cutCables = {"Hypothetical"};
    EXPECT_TRUE(addedCut.validate(substrate).hasValue());

    core::ScenarioSpec dupAdded = addedCut;
    dupAdded.cablesAdded.push_back(added);
    EXPECT_FALSE(dupAdded.validate(substrate).hasValue());
}

TEST(ApiMigration, ScenarioSpecValidateChecksOverrides) {
    const auto substrate = makeSubstrate();

    core::ScenarioSpec good;
    good.name = "ok";
    good.cutCables = {"WACS"};

    // Each override obeys the same rules Substrate::validate enforces
    // on the base bundle.
    core::ScenarioSpec badDns = good;
    auto dnsOverride = dns::DnsConfig::defaults();
    dnsOverride.africa[0].cloudOffshore += 0.5; // shares no longer sum to 1
    badDns.dnsOverride = dnsOverride;
    EXPECT_EQ(badDns.validate(substrate).error().kind,
              net::Error::Kind::Precondition);

    core::ScenarioSpec badContent = good;
    auto contentOverride = content::ContentConfig::defaults();
    contentOverride.sitesPerCountry = 0;
    badContent.contentOverride = contentOverride;
    EXPECT_FALSE(badContent.validate(substrate).hasValue());

    core::ScenarioSpec badLink = good;
    phys::LinkMapConfig linkOverride;
    linkOverride.backupProb = 1.5;
    badLink.linkMapOverride = linkOverride;
    EXPECT_FALSE(badLink.validate(substrate).hasValue());

    // Well-formed overrides still pass.
    core::ScenarioSpec localized = good;
    auto okDns = dns::DnsConfig::defaults();
    for (auto& profile : okDns.africa) {
        profile = dns::ResolverProfile{0.6, 0.1, 0.2, 0.05, 0.05};
    }
    localized.dnsOverride = okDns;
    localized.contentOverride = content::ContentConfig::defaults();
    localized.linkMapOverride = phys::LinkMapConfig{};
    EXPECT_TRUE(localized.validate(substrate).hasValue());
}

} // namespace
} // namespace aio::sweep
