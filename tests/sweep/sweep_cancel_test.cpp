// Cancellation/deadline propagation through the batched sweep: a fired
// token makes run() raise net::CancelledError (never a half-filled
// SweepResult), a quiet token leaves every outcome byte-identical to an
// untokened run, and cancellation mid-flight still drains the pool so
// the engine stays usable. This is the path the observatory service
// routes request deadlines through.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/worker_pool.hpp"
#include "netbase/error.hpp"
#include "obs/clock.hpp"
#include "sweep/scenario_sweep.hpp"
#include "topo/generator.hpp"

namespace aio::sweep {
namespace {

topo::GeneratorConfig tinyConfig(std::uint64_t seed) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    for (auto& profile : config.africa) {
        profile.asPerMillionPeople *= 0.4;
        profile.minAsesPerCountry = 1;
        profile.ixpCount = std::max(1, profile.ixpCount / 2);
    }
    config.europe.accessPerCountry = 2;
    config.northAmerica.accessPerCountry = 2;
    config.southAmerica.accessPerCountry = 2;
    config.asiaPacific.accessPerCountry = 2;
    return config;
}

std::vector<core::ScenarioSpec> smallBatch() {
    std::vector<core::ScenarioSpec> specs;
    for (const char* cable : {"WACS", "SEACOM", "ACE", "EASSy"}) {
        core::ScenarioSpec spec;
        spec.name = std::string{"cut-"} + cable;
        spec.cutCables = {cable};
        spec.repairDays = {14.0};
        specs.push_back(std::move(spec));
    }
    return specs;
}

TEST(SweepCancel, PreCancelledTokenRaisesBeforeAnyWork) {
    const topo::Topology topo =
        topo::TopologyGenerator{tinyConfig(5)}.generate();
    const core::Substrate substrate{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};
    exec::CancelToken token;
    token.cancel();
    const ScenarioSweepEngine engine{substrate,
                                     SweepOptions{.cancel = &token}};
    EXPECT_THROW((void)engine.run(smallBatch()), net::CancelledError);
}

TEST(SweepCancel, ExpiredDeadlineRaisesTypedError) {
    const topo::Topology topo =
        topo::TopologyGenerator{tinyConfig(5)}.generate();
    const core::Substrate substrate{
        topo, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults()};
    obs::ManualClock clock;
    const exec::CancelToken deadline{&clock, clock.nowNanos() + 1000};
    clock.advance(2000); // already past due when the batch starts
    const ScenarioSweepEngine engine{substrate,
                                     SweepOptions{.cancel = &deadline}};
    EXPECT_THROW((void)engine.run(smallBatch()), net::CancelledError);
}

TEST(SweepCancel, QuietTokenLeavesOutcomesIdentical) {
    const topo::Topology topo =
        topo::TopologyGenerator{tinyConfig(7)}.generate();
    const auto specs = smallBatch();
    for (const int threads : {0, 4}) {
        exec::WorkerPool pool{std::max(threads, 1)};
        core::Substrate::Options options;
        if (threads > 0) {
            options.pool = &pool;
        }
        const core::Substrate substrate{
            topo, phys::CableRegistry::africanDefaults(),
            dns::DnsConfig::defaults(),
            content::ContentConfig::defaults(), options};

        const ScenarioSweepEngine plain{substrate};
        const SweepResult expected = plain.run(specs);

        obs::ManualClock clock;
        exec::CancelToken token{&clock, clock.nowNanos() + 1};
        const ScenarioSweepEngine tokened{
            substrate, SweepOptions{.cancel = &token}};
        const SweepResult got = tokened.run(specs);

        ASSERT_EQ(got.scenarios.size(), expected.scenarios.size());
        for (std::size_t i = 0; i < expected.scenarios.size(); ++i) {
            ASSERT_TRUE(got.scenarios[i].outcome.hasValue());
            EXPECT_TRUE(got.scenarios[i].outcome.value() ==
                        expected.scenarios[i].outcome.value())
                << "threads=" << threads << " scenario " << i;
        }

        // The token fires between batches: the next run is refused, the
        // engine and its pool stay usable afterwards.
        token.cancel();
        EXPECT_THROW((void)tokened.run(specs), net::CancelledError);
        const SweepResult after = plain.run(specs);
        ASSERT_EQ(after.scenarios.size(), expected.scenarios.size());
        EXPECT_TRUE(after.scenarios[0].outcome.value() ==
                    expected.scenarios[0].outcome.value());
    }
}

} // namespace
} // namespace aio::sweep
