// Satellite contract of the scenario work: cut lists are canonicalized
// (resolved against the registry, sorted by id, deduplicated) before any
// digesting or filter construction, so permuted or duplicated lists are
// ONE scenario to the dedupe cache and produce byte-identical reports —
// including the canonical event echoed back in ImpactReport::event.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/whatif.hpp"
#include "netbase/rng.hpp"
#include "sweep/scenario_sweep.hpp"
#include "topo/generator.hpp"

namespace aio::sweep {
namespace {

topo::GeneratorConfig smallConfig(std::uint64_t seed) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    for (auto& profile : config.africa) {
        profile.asPerMillionPeople *= 0.4;
        profile.minAsesPerCountry = 1;
        profile.ixpCount = std::max(1, profile.ixpCount / 2);
    }
    config.europe.accessPerCountry = 2;
    config.northAmerica.accessPerCountry = 2;
    config.southAmerica.accessPerCountry = 2;
    config.asiaPacific.accessPerCountry = 2;
    return config;
}

core::Substrate smallSubstrate(const topo::Topology& topo) {
    return core::Substrate{topo, phys::CableRegistry::africanDefaults(),
                           dns::DnsConfig::defaults(),
                           content::ContentConfig::defaults()};
}

TEST(CutCanonicalization, CanonicalCutSetSortsAndDedupes) {
    const auto registry = phys::CableRegistry::africanDefaults();
    const std::vector<std::string> messy = {"SEACOM", "WACS", "SEACOM",
                                            "ACE",    "WACS", "MainOne"};
    const auto cuts = core::canonicalCutSet(registry, messy);
    ASSERT_TRUE(cuts.hasValue());
    ASSERT_EQ(cuts.value().size(), 4U);
    EXPECT_TRUE(std::ranges::is_sorted(cuts.value()));
    EXPECT_EQ(std::ranges::adjacent_find(cuts.value()), cuts.value().end());
    for (const char* name : {"WACS", "MainOne", "ACE", "SEACOM"}) {
        EXPECT_TRUE(std::ranges::find(cuts.value(), registry.byName(name)) !=
                    cuts.value().end())
            << name;
    }
}

TEST(CutCanonicalization, CanonicalCutSetNamesTheUnknownCable) {
    const auto registry = phys::CableRegistry::africanDefaults();
    const std::vector<std::string> names = {"WACS", "Atlantis-9"};
    const auto cuts = core::canonicalCutSet(registry, names);
    ASSERT_FALSE(cuts.hasValue());
    EXPECT_EQ(cuts.error().kind, net::Error::Kind::NotFound);
    EXPECT_NE(cuts.error().message.find("Atlantis-9"), std::string::npos);
}

TEST(CutCanonicalization, PermutedAndDuplicatedListsMakeTheSameEvent) {
    const auto registry = phys::CableRegistry::africanDefaults();
    core::ScenarioSpec sorted;
    sorted.name = "sorted";
    sorted.cutCables = {"WACS", "SAT-3", "MainOne", "ACE"};
    core::ScenarioSpec shuffled = sorted;
    shuffled.name = "shuffled";
    shuffled.cutCables = {"ACE", "MainOne", "WACS", "SAT-3"};
    core::ScenarioSpec duplicated = sorted;
    duplicated.name = "duplicated";
    duplicated.cutCables = {"ACE",  "ACE",   "MainOne", "WACS",
                            "WACS", "SAT-3", "ACE"};

    const auto a = sorted.makeEvent(registry);
    const auto b = shuffled.makeEvent(registry);
    const auto c = duplicated.makeEvent(registry);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    ASSERT_TRUE(c.hasValue());
    EXPECT_TRUE(a.value() == b.value());
    EXPECT_TRUE(a.value() == c.value());
    EXPECT_TRUE(std::ranges::is_sorted(a.value().cutCables));
    EXPECT_EQ(a.value().cutCables.size(), 4U);
}

TEST(CutCanonicalization, SweepDedupesPermutedListsToOneOracle) {
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(17)}.generate();
    const core::Substrate substrate = smallSubstrate(topo);

    std::vector<core::ScenarioSpec> specs(3);
    specs[0].name = "sorted";
    specs[0].cutCables = {"WACS", "MainOne", "ACE"};
    specs[1].name = "permuted";
    specs[1].cutCables = {"ACE", "WACS", "MainOne"};
    specs[2].name = "duplicated";
    specs[2].cutCables = {"MainOne", "ACE", "ACE", "WACS", "MainOne"};

    const ScenarioSweepEngine engine{substrate};
    const SweepResult result = engine.run(specs);
    ASSERT_EQ(result.scenarios.size(), 3U);
    EXPECT_EQ(result.stats.errors, 0U);
    // One canonical cut set => one incremental build, two dedupe hits.
    EXPECT_EQ(result.stats.incrementalBuilds, 1U);
    EXPECT_EQ(result.stats.dedupHits, 2U);
    for (const ScenarioResult& scenario : result.scenarios) {
        ASSERT_TRUE(scenario.outcome.hasValue()) << scenario.scenario;
        // The report echoes the canonical event: sorted, deduplicated.
        const auto& cut = scenario.outcome.value().event.cutCables;
        EXPECT_TRUE(std::ranges::is_sorted(cut)) << scenario.scenario;
        EXPECT_EQ(cut.size(), 3U) << scenario.scenario;
        EXPECT_TRUE(scenario.outcome.value() ==
                    result.scenarios[0].outcome.value())
            << scenario.scenario;
    }
}

TEST(CutCanonicalization, RandomPermutationsAreByteIdenticalProperty) {
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(5)}.generate();
    const core::Substrate substrate = smallSubstrate(topo);
    const ScenarioSweepEngine engine{substrate};

    const std::vector<std::string> base = {"WACS", "SAT-3", "MainOne",
                                           "ACE",  "Glo-1"};
    core::ScenarioSpec reference;
    reference.name = "reference";
    reference.cutCables = base;
    const SweepResult refRun =
        engine.run(std::vector<core::ScenarioSpec>{reference});
    ASSERT_TRUE(refRun.scenarios[0].outcome.hasValue());
    const outage::ImpactReport& refReport = refRun.scenarios[0].outcome.value();
    net::Rng refFilterRng{0};
    const auto refDigest =
        substrate.analyzer().filterFor(refReport.event, refFilterRng).digest();

    net::Rng rng{2024};
    for (int round = 0; round < 12; ++round) {
        core::ScenarioSpec spec;
        spec.name = "round-" + std::to_string(round);
        spec.cutCables = base;
        rng.shuffle(spec.cutCables);
        // Random duplicates on top of the permutation.
        const std::size_t dups = rng.uniformInt(4);
        for (std::size_t d = 0; d < dups; ++d) {
            spec.cutCables.push_back(base[rng.uniformInt(base.size())]);
        }
        const auto event = spec.makeEvent(substrate.registry());
        ASSERT_TRUE(event.hasValue()) << spec.name;
        // Identical filter digest => the sweep's dedupe treats it as the
        // same scenario...
        net::Rng filterRng{0};
        EXPECT_EQ(substrate.analyzer().filterFor(event.value(), filterRng)
                      .digest(),
                  refDigest)
            << spec.name;
        // ... and the full outcome is byte-identical.
        const SweepResult run =
            engine.run(std::vector<core::ScenarioSpec>{spec});
        ASSERT_TRUE(run.scenarios[0].outcome.hasValue()) << spec.name;
        EXPECT_TRUE(run.scenarios[0].outcome.value() == refReport)
            << spec.name;
    }
}

TEST(CutCanonicalization, WhatIfMakeCutEventCanonicalizes) {
    const topo::Topology topo =
        topo::TopologyGenerator{smallConfig(3)}.generate();
    const core::Substrate substrate = smallSubstrate(topo);
    const core::WhatIfEngine engine{substrate};

    const std::vector<std::string> sorted = {"WACS", "SAT-3", "ACE"};
    const std::vector<std::string> messy = {"ACE", "SAT-3", "WACS",
                                            "ACE", "SAT-3"};
    const auto a = engine.tryMakeCutEvent(sorted, 14.0);
    const auto b = engine.tryMakeCutEvent(messy, 14.0);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    EXPECT_TRUE(a.value() == b.value());
    EXPECT_TRUE(std::ranges::is_sorted(a.value().cutCables));
    EXPECT_EQ(a.value().cutCables.size(), 3U);
    EXPECT_TRUE(engine.assess(a.value()) == engine.assess(b.value()));

    // The legacy preconditions survive the canonicalization rewrite.
    EXPECT_FALSE(engine.tryMakeCutEvent(std::vector<std::string>{}, 14.0)
                     .hasValue());
    EXPECT_FALSE(
        engine.tryMakeCutEvent(sorted, 0.0).hasValue());
}

} // namespace
} // namespace aio::sweep
