#include "nautilus/inference.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "routing/detour.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::nautilus {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    measure::TracerouteEngine engine;
    phys::CableRegistry registry;
    net::Rng mapRng;
    phys::PhysicalLinkMap linkMap;
    measure::GeolocationModel geoloc;
    CableInference inference;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), engine(topo, oracle),
          registry(phys::CableRegistry::africanDefaults()), mapRng(5),
          linkMap(topo, registry, mapRng),
          geoloc(topo, measure::GeolocationConfig{}, 13),
          inference(topo, linkMap, geoloc) {}
};

World& world() {
    static World w;
    return w;
}

std::vector<measure::TracerouteResult> corpus(World& w, int count,
                                              std::uint64_t seed) {
    net::Rng rng{seed};
    std::vector<measure::TracerouteResult> traces;
    const auto african = w.topo.africanAses();
    while (static_cast<int>(traces.size()) < count) {
        const auto src = african[rng.uniformInt(african.size())];
        const auto dst = african[rng.uniformInt(african.size())];
        if (src == dst) continue;
        auto trace = w.engine.traceToAs(src, dst, rng);
        if (trace.hops.size() >= 2) {
            traces.push_back(std::move(trace));
        }
    }
    return traces;
}

TEST(CableInference, CandidatesRequireNearbyLandings) {
    auto& w = world();
    // Accra <-> Lisbon: west-coast cables qualify, east-coast must not.
    const net::GeoPoint accra{5.6, -0.2};
    const net::GeoPoint lisbon{38.7, -9.1};
    const auto candidates = w.inference.candidatesFor(accra, lisbon, 400.0);
    ASSERT_FALSE(candidates.empty());
    for (const auto id : candidates) {
        EXPECT_NE(w.registry.cable(id).name, "SEACOM");
        EXPECT_NE(w.registry.cable(id).name, "EASSy");
    }
}

TEST(CableInference, TightLatencyBudgetPrunesCandidates) {
    auto& w = world();
    const net::GeoPoint accra{5.6, -0.2};
    const net::GeoPoint lisbon{38.7, -9.1};
    const auto loose = w.inference.candidatesFor(accra, lisbon, 400.0);
    const auto tight = w.inference.candidatesFor(accra, lisbon, 1.0);
    EXPECT_LE(tight.size(), loose.size());
}

TEST(CableInference, GroundTruthIsAmongCandidatesMostOfTheTime) {
    auto& w = world();
    const auto traces = corpus(w, 300, 21);
    int withTruth = 0;
    int truthCovered = 0;
    for (const auto& trace : traces) {
        const auto inference = w.inference.inferFromTrace(trace);
        for (const auto& segment : inference.segments) {
            if (segment.groundTruth.empty()) continue;
            ++withTruth;
            const auto& c = segment.candidates;
            const bool covered = std::ranges::any_of(
                segment.groundTruth, [&](phys::CableId id) {
                    return std::ranges::find(c, id) != c.end();
                });
            truthCovered += covered ? 1 : 0;
        }
    }
    ASSERT_GT(withTruth, 30);
    // Recall is decent but NOT perfect — geolocation error moves some
    // endpoints outside the matching radius (the paper's point).
    EXPECT_GT(static_cast<double>(truthCovered) / withTruth, 0.5);
}

TEST(AmbiguityAnalyzer, PaperShapeHolds) {
    auto& w = world();
    const auto traces = corpus(w, 400, 22);
    const AmbiguityAnalyzer analyzer{w.inference};
    const auto stats = analyzer.analyze(traces);
    ASSERT_GT(stats.pathsWithSubmarineSegments, 50U);
    // §6.2: over 40% of mapped paths are ambiguous (>1 candidate cable).
    EXPECT_GT(stats.ambiguousShare(), 0.4);
    // Ambiguity can reach a large fraction of the registry.
    EXPECT_GE(stats.maxCandidatesOnOnePath, 6U);
    EXPECT_GT(stats.meanCandidatesPerAmbiguousPath, 2.0);
}

TEST(AmbiguityAnalyzer, PerfectGeolocationReducesAmbiguity) {
    auto& w = world();
    measure::GeolocationConfig perfectCfg;
    perfectCfg.africanErrorProb = 0.0;
    perfectCfg.otherErrorProb = 0.0;
    const measure::GeolocationModel perfect{w.topo, perfectCfg, 13};
    InferenceConfig tight;
    tight.landingRadiusKm = 300.0;
    const CableInference preciseInference{w.topo, w.linkMap, perfect, tight};

    const auto traces = corpus(w, 300, 23);
    const auto noisy = AmbiguityAnalyzer{w.inference}.analyze(traces);
    const auto precise = AmbiguityAnalyzer{preciseInference}.analyze(traces);
    EXPECT_LT(precise.ambiguousShare(), noisy.ambiguousShare());
}

TEST(AmbiguityAnalyzer, EmptyCorpusYieldsZeroStats) {
    auto& w = world();
    const AmbiguityAnalyzer analyzer{w.inference};
    const auto stats = analyzer.analyze({});
    EXPECT_EQ(stats.pathsWithSubmarineSegments, 0U);
    EXPECT_DOUBLE_EQ(stats.ambiguousShare(), 0.0);
}

} // namespace
} // namespace aio::nautilus
