// Parameterized sweep: Nautilus-style ambiguity must grow monotonically
// with the matching radius, and ground-truth recall must degrade with
// geolocation error — the mechanism behind §6.2 — across error seeds.

#include <gtest/gtest.h>

#include <algorithm>

#include "nautilus/inference.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::nautilus {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    measure::TracerouteEngine engine;
    phys::CableRegistry registry;
    net::Rng mapRng;
    phys::PhysicalLinkMap linkMap;
    std::vector<measure::TracerouteResult> corpus;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), engine(topo, oracle),
          registry(phys::CableRegistry::africanDefaults()), mapRng(5),
          linkMap(topo, registry, mapRng) {
        net::Rng rng{99};
        const auto african = topo.africanAses();
        while (corpus.size() < 250) {
            const auto src = african[rng.uniformInt(african.size())];
            const auto dst = african[rng.uniformInt(african.size())];
            if (src == dst) continue;
            auto trace = engine.traceToAs(src, dst, rng);
            if (trace.hops.size() >= 2) {
                corpus.push_back(std::move(trace));
            }
        }
    }
};

World& world() {
    static World w;
    return w;
}

class GeolocSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeolocSeedSweep, AmbiguityGrowsWithMatchingRadius) {
    auto& w = world();
    const measure::GeolocationModel geoloc{
        w.topo, measure::GeolocationConfig{}, GetParam()};
    double prevShare = -1.0;
    for (const double radius : {300.0, 600.0, 1000.0, 1500.0}) {
        InferenceConfig cfg;
        cfg.landingRadiusKm = radius;
        const CableInference inference{w.topo, w.linkMap, geoloc, cfg};
        const auto stats = AmbiguityAnalyzer{inference}.analyze(w.corpus);
        EXPECT_GE(stats.ambiguousShare(), prevShare - 0.03)
            << "radius " << radius << " seed " << GetParam();
        prevShare = stats.ambiguousShare();
    }
}

TEST_P(GeolocSeedSweep, WorseGeolocationDegradesGroundTruthRecall) {
    auto& w = world();
    const InferenceConfig cfg; // same generous radius for both models
    measure::GeolocationConfig noisy;
    noisy.africanErrorProb = 0.8;
    noisy.africanErrorKmMean = 1800.0;
    measure::GeolocationConfig mild;
    mild.africanErrorProb = 0.1;
    mild.africanErrorKmMean = 200.0;
    const measure::GeolocationModel noisyGeo{w.topo, noisy, GetParam()};
    const measure::GeolocationModel mildGeo{w.topo, mild, GetParam()};

    const auto recall = [&](const measure::GeolocationModel& geoloc) {
        const CableInference inference{w.topo, w.linkMap, geoloc, cfg};
        int withTruth = 0;
        int covered = 0;
        for (const auto& trace : w.corpus) {
            for (const auto& segment :
                 inference.inferFromTrace(trace).segments) {
                if (segment.groundTruth.empty()) continue;
                ++withTruth;
                for (const auto truth : segment.groundTruth) {
                    if (std::find(segment.candidates.begin(),
                                  segment.candidates.end(),
                                  truth) != segment.candidates.end()) {
                        ++covered;
                        break;
                    }
                }
            }
        }
        return withTruth == 0 ? 0.0
                              : static_cast<double>(covered) / withTruth;
    };
    // Larger errors move endpoints away from the true landings: the real
    // carrier falls out of the candidate set more often.
    EXPECT_GE(recall(mildGeo), recall(noisyGeo) - 0.02)
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeolocSeedSweep,
                         ::testing::Values(13, 77, 555));

} // namespace
} // namespace aio::nautilus
