#include "routing/oracle_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "netbase/error.hpp"
#include "netbase/rng.hpp"
#include "topo/as_graph.hpp"

namespace aio::route {
namespace {

using topo::AsIndex;

// ---- LinkFilter digest properties ----

TEST(FilterDigest, EmptyFiltersAgree) {
    EXPECT_EQ(LinkFilter{}.digest(), LinkFilter{}.digest());
}

TEST(FilterDigest, IndependentOfInsertionOrder) {
    const std::vector<std::pair<AsIndex, AsIndex>> links = {
        {1, 2}, {9, 4}, {3, 3}, {7, 100}, {2, 1} /* dup, reversed */};
    const std::vector<AsIndex> ases = {5, 19, 2};

    LinkFilter forward;
    for (const auto& [a, b] : links) forward.disableLink(a, b);
    for (const AsIndex as : ases) forward.disableAs(as);

    LinkFilter backward;
    for (auto it = ases.rbegin(); it != ases.rend(); ++it) {
        backward.disableAs(*it);
    }
    for (auto it = links.rbegin(); it != links.rend(); ++it) {
        backward.disableLink(it->second, it->first); // endpoints swapped
    }

    EXPECT_EQ(forward.digest(), backward.digest());
}

TEST(FilterDigest, DistinguishesLinksFromAses) {
    LinkFilter link;
    link.disableLink(3, 7);
    LinkFilter as;
    as.disableAs(3);
    as.disableAs(7);
    LinkFilter selfLink;
    selfLink.disableLink(3, 3);
    LinkFilter asOnly;
    asOnly.disableAs(3);

    EXPECT_NE(link.digest(), as.digest());
    EXPECT_NE(selfLink.digest(), asOnly.digest());
    EXPECT_NE(LinkFilter{}.digest(), asOnly.digest());
}

TEST(FilterDigest, FuzzBatchNeverCollidesOnDigestAndSize) {
    // Property: digest equality <=> same disabled sets. We draw a batch
    // of random filters, canonicalize their sets, and require that two
    // filters share a digest (which embeds both set sizes) only when
    // their sets are identical.
    net::Rng rng{20250805};
    using Canonical = std::pair<std::set<std::pair<AsIndex, AsIndex>>,
                                std::set<AsIndex>>;
    std::unordered_map<FilterDigest, Canonical, FilterDigestHash> seen;

    for (int trial = 0; trial < 2000; ++trial) {
        LinkFilter filter;
        Canonical canonical;
        const int linkCount = static_cast<int>(rng.uniformInt(6));
        for (int i = 0; i < linkCount; ++i) {
            AsIndex a = rng.uniformInt(40);
            AsIndex b = rng.uniformInt(40);
            filter.disableLink(a, b);
            canonical.first.insert({std::min(a, b), std::max(a, b)});
        }
        const int asCount = static_cast<int>(rng.uniformInt(4));
        for (int i = 0; i < asCount; ++i) {
            const AsIndex as = rng.uniformInt(40);
            filter.disableAs(as);
            canonical.second.insert(as);
        }

        const FilterDigest digest = filter.digest();
        EXPECT_EQ(digest.linkCount, canonical.first.size());
        EXPECT_EQ(digest.asCount, canonical.second.size());
        const auto [it, inserted] = seen.emplace(digest, canonical);
        if (!inserted) {
            // Same digest (and therefore same sizes): must be same sets.
            EXPECT_EQ(it->second, canonical)
                << "digest collision between distinct filters";
        }
    }
    // The batch must actually exercise distinct digests.
    EXPECT_GT(seen.size(), 500U);
}

// ---- OracleCache behaviour ----

topo::Topology diamondTopology() {
    topo::Topology topo;
    auto makeAs = [serial = 0](topo::Asn asn) mutable {
        topo::AsInfo info;
        info.asn = asn;
        info.countryCode = "ZA";
        info.region = net::Region::SouthernAfrica;
        info.prefixes = {net::Prefix{
            net::Ipv4Address{static_cast<std::uint32_t>(
                (41U << 24) + (serial++ << 12))},
            20}};
        return info;
    };
    const AsIndex top = topo.addAs(makeAs(10));
    const AsIndex left = topo.addAs(makeAs(20));
    const AsIndex right = topo.addAs(makeAs(30));
    const AsIndex stub = topo.addAs(makeAs(40));
    topo.addLink(left, top, topo::LinkKind::CustomerToProvider);
    topo.addLink(right, top, topo::LinkKind::CustomerToProvider);
    topo.addLink(stub, left, topo::LinkKind::CustomerToProvider);
    topo.addLink(stub, right, topo::LinkKind::CustomerToProvider);
    topo.addLink(left, right, topo::LinkKind::PeerToPeer);
    topo.finalize();
    return topo;
}

TEST(OracleCache, RejectsZeroCapacity) {
    const topo::Topology topo = diamondTopology();
    EXPECT_THROW((OracleCache{topo, 0}), net::PreconditionError);
}

TEST(OracleCache, MissBuildsThenHitsReuse) {
    const topo::Topology topo = diamondTopology();
    OracleCache cache{topo, 4};

    LinkFilter cut;
    cut.disableLink(0, 1);
    const auto first = cache.get(cut);
    const auto second = cache.get(cut);
    EXPECT_EQ(first.get(), second.get());

    // An equivalent filter built in a different insertion order hits too.
    LinkFilter sameCut;
    sameCut.disableLink(1, 0);
    EXPECT_EQ(cache.get(sameCut).get(), first.get());

    const OracleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1U);
    EXPECT_EQ(stats.hits, 2U);
    EXPECT_EQ(stats.evictions, 0U);
    EXPECT_EQ(stats.entries, 1U);
    EXPECT_NEAR(stats.hitRate(), 2.0 / 3.0, 1e-12);
}

TEST(OracleCache, EvictsLeastRecentlyUsedAtCapacityOne) {
    const topo::Topology topo = diamondTopology();
    OracleCache cache{topo, 1};

    LinkFilter f1;
    f1.disableLink(0, 1);
    LinkFilter f2;
    f2.disableLink(0, 2);

    (void)cache.get(f1); // miss, cached
    (void)cache.get(f1); // hit
    (void)cache.get(f2); // miss, evicts f1
    (void)cache.get(f1); // miss again (was evicted), evicts f2

    const OracleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 3U);
    EXPECT_EQ(stats.hits, 1U);
    EXPECT_EQ(stats.evictions, 2U);
    EXPECT_EQ(stats.entries, 1U);
}

TEST(OracleCache, EvictedOracleStaysAliveForHolders) {
    const topo::Topology topo = diamondTopology();
    OracleCache cache{topo, 1};
    LinkFilter f1;
    f1.disableLink(0, 1);
    const auto held = cache.get(f1);
    LinkFilter f2;
    f2.disableAs(2);
    (void)cache.get(f2); // evicts f1's entry
    EXPECT_TRUE(held->reachable(3, 0)); // still usable
}

TEST(OracleCache, SeedingSkipsCounters) {
    const topo::Topology topo = diamondTopology();
    OracleCache cache{topo, 4};
    cache.seed(LinkFilter{},
               std::make_shared<const PathOracle>(topo));
    EXPECT_EQ(cache.stats().misses, 0U);
    EXPECT_EQ(cache.stats().entries, 1U);

    (void)cache.get(LinkFilter{});
    const OracleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1U);
    EXPECT_EQ(stats.misses, 0U);
}

TEST(OracleCache, SeedRejectsForeignTopology) {
    const topo::Topology topo = diamondTopology();
    const topo::Topology other = diamondTopology();
    OracleCache cache{topo, 2};
    EXPECT_THROW(cache.seed(LinkFilter{},
                            std::make_shared<const PathOracle>(other)),
                 net::PreconditionError);
}

TEST(OracleCache, ByteAccountingTracksRetainedAndEvictedBytes) {
    const topo::Topology topo = diamondTopology();
    OracleCache cache{topo, 2};
    const std::size_t oracleBytes = PathOracle{topo}.memoryBytes();
    ASSERT_GT(oracleBytes, 0U);

    LinkFilter f1;
    f1.disableLink(0, 1);
    LinkFilter f2;
    f2.disableLink(0, 2);
    LinkFilter f3;
    f3.disableAs(2);

    (void)cache.get(f1);
    (void)cache.get(f2);
    EXPECT_EQ(cache.stats().retainedBytes, 2 * oracleBytes);
    EXPECT_EQ(cache.stats().evictedBytes, 0U);

    (void)cache.get(f3); // over capacity: f1 is evicted
    const OracleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2U);
    EXPECT_EQ(stats.retainedBytes, 2 * oracleBytes);
    EXPECT_EQ(stats.evictions, 1U);
    EXPECT_EQ(stats.evictedBytes, oracleBytes);

    cache.clear();
    EXPECT_EQ(cache.stats().retainedBytes, 0U);
    EXPECT_EQ(cache.stats().evictedBytes, oracleBytes)
        << "evictedBytes is cumulative; clear() drops only retained";
}

TEST(OracleCache, ReplaceHeavySeedingNeverInflatesEvictionAccounting) {
    // Re-seeding the same digest over and over is a replacement, not an
    // eviction: retainedBytes must track only the live entries, and the
    // eviction counters must not move — the bug this locks out double
    // counted the old entry's size into both.
    const topo::Topology topo = diamondTopology();
    OracleCache cache{topo, 2};
    const std::size_t oracleBytes = PathOracle{topo}.memoryBytes();

    LinkFilter f1;
    f1.disableLink(0, 1);
    for (int round = 0; round < 50; ++round) {
        cache.seed(f1, std::make_shared<const PathOracle>(topo, f1));
    }
    OracleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 1U);
    EXPECT_EQ(stats.retainedBytes, oracleBytes)
        << "replacement must swap bytes, not accumulate them";
    EXPECT_EQ(stats.evictions, 0U);
    EXPECT_EQ(stats.evictedBytes, 0U);

    // Mixing replacements with genuine capacity evictions keeps the two
    // ledgers separate.
    LinkFilter f2;
    f2.disableLink(0, 2);
    LinkFilter f3;
    f3.disableAs(2);
    cache.seed(f2, std::make_shared<const PathOracle>(topo, f2));
    (void)cache.get(f3); // evicts the LRU entry
    cache.seed(f3, std::make_shared<const PathOracle>(topo, f3));

    stats = cache.stats();
    EXPECT_EQ(stats.entries, 2U);
    EXPECT_EQ(stats.retainedBytes, 2 * oracleBytes);
    EXPECT_EQ(stats.evictions, 1U);
    EXPECT_EQ(stats.evictedBytes, oracleBytes);
}

TEST(OracleCache, ResetStatsKeepsByteResidency) {
    const topo::Topology topo = diamondTopology();
    OracleCache cache{topo, 4};
    (void)cache.get(LinkFilter{});
    const std::uint64_t retained = cache.stats().retainedBytes;
    ASSERT_GT(retained, 0U);
    cache.resetStats();
    // Counters reset; residency (entries + bytes) describes what is
    // still cached and must survive.
    EXPECT_EQ(cache.stats().retainedBytes, retained);
    EXPECT_EQ(cache.stats().evictedBytes, 0U);
}

TEST(OracleCache, ByteBudgetEvictsDownToOneEntry) {
    const topo::Topology topo = diamondTopology();
    const std::size_t oracleBytes = PathOracle{topo}.memoryBytes();

    // Budget fits exactly two dense entries: the third get must push the
    // LRU one out even though the entry-count capacity (8) has room.
    OracleCacheConfig config;
    config.byteBudget = 2 * oracleBytes;
    OracleCache cache{topo, 8, nullptr, nullptr, config};

    LinkFilter f1;
    f1.disableLink(0, 1);
    LinkFilter f2;
    f2.disableLink(0, 2);
    LinkFilter f3;
    f3.disableAs(2);

    (void)cache.get(f1);
    (void)cache.get(f2);
    EXPECT_EQ(cache.stats().entries, 2U);
    EXPECT_EQ(cache.stats().evictions, 0U);

    (void)cache.get(f3);
    OracleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2U);
    EXPECT_EQ(stats.evictions, 1U);
    EXPECT_LE(stats.retainedBytes, config.byteBudget);

    // A budget below a single oracle still keeps one entry resident —
    // the cache never evicts itself empty.
    OracleCacheConfig tiny;
    tiny.byteBudget = 1;
    OracleCache small{topo, 8, nullptr, nullptr, tiny};
    (void)small.get(f1);
    EXPECT_EQ(small.stats().entries, 1U);
}

TEST(OracleCache, SetByteBudgetShrinksResidencyImmediately) {
    const topo::Topology topo = diamondTopology();
    const std::size_t oracleBytes = PathOracle{topo}.memoryBytes();
    OracleCache cache{topo, 8};

    LinkFilter f1;
    f1.disableLink(0, 1);
    LinkFilter f2;
    f2.disableLink(0, 2);
    LinkFilter f3;
    f3.disableAs(2);
    (void)cache.get(f1);
    (void)cache.get(f2);
    (void)cache.get(f3);
    EXPECT_EQ(cache.stats().entries, 3U);

    // Degradation-ladder shrink: re-targeting to two entries' worth
    // evicts the LRU entry (f1) right away, not on the next insert.
    cache.setByteBudget(2 * oracleBytes);
    OracleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2U);
    EXPECT_EQ(stats.evictions, 1U);
    EXPECT_LE(stats.retainedBytes, 2 * oracleBytes);
    cache.resetStats();
    (void)cache.get(f2);
    (void)cache.get(f3);
    EXPECT_EQ(cache.stats().hits, 2U);
    EXPECT_EQ(cache.stats().misses, 0U);

    // A budget below one oracle still keeps one entry resident.
    cache.setByteBudget(1);
    EXPECT_EQ(cache.stats().entries, 1U);

    // 0 removes the byte budget: the cache refills to entry capacity.
    cache.setByteBudget(0);
    (void)cache.get(f1);
    (void)cache.get(f2);
    EXPECT_EQ(cache.stats().entries, 3U);
}

TEST(OracleCache, ShardedEntriesReportLiveBytes) {
    // A sharded entry's memoryBytes() changes after insertion as rows
    // materialize lazily; the cache must re-poll the live entries
    // instead of trusting an insertion-time snapshot.
    const topo::Topology topo = diamondTopology();
    OracleCacheConfig config;
    config.policy = StoragePolicy::Sharded;
    OracleCache cache{topo, 4, nullptr, nullptr, config};

    const auto oracle = cache.get(LinkFilter{});
    EXPECT_EQ(oracle->storagePolicy(), StoragePolicy::Sharded);
    const std::uint64_t before = cache.stats().retainedBytes;

    // Touch every row: the entry's resident set grows behind the
    // cache's back, and stats() must see the growth.
    for (AsIndex src = 0; src < topo.asCount(); ++src) {
        for (AsIndex dst = 0; dst < topo.asCount(); ++dst) {
            (void)oracle->nextHopOf(src, dst);
        }
    }
    const std::uint64_t after = cache.stats().retainedBytes;
    EXPECT_GT(after, before)
        << "retainedBytes must be recomputed from live entries";
    EXPECT_EQ(after, oracle->memoryBytes());
}

TEST(OracleCache, ResetStatsKeepsEntries) {
    const topo::Topology topo = diamondTopology();
    OracleCache cache{topo, 4};
    (void)cache.get(LinkFilter{});
    cache.resetStats();
    const OracleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses + stats.evictions, 0U);
    EXPECT_EQ(stats.entries, 1U);
    (void)cache.get(LinkFilter{});
    EXPECT_EQ(cache.stats().hits, 1U);
}

} // namespace
} // namespace aio::route
