#include "routing/path_oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "netbase/error.hpp"
#include "topo/generator.hpp"

namespace aio::route {
namespace {

using topo::AsIndex;
using topo::AsInfo;
using topo::AsType;
using topo::LinkKind;

AsInfo makeAs(topo::Asn asn, AsType type, std::string country,
              net::Region region) {
    static int serial = 0;
    AsInfo info;
    info.asn = asn;
    info.type = type;
    info.countryCode = std::move(country);
    info.region = region;
    info.prefixes = {net::Prefix{net::Ipv4Address{
                                     static_cast<std::uint32_t>(
                                         (41U << 24) + (serial++ << 12))},
                                 20}};
    return info;
}

/// Classic Gao-Rexford teaching topology:
///
///           T (tier1)
///          /  \
///         P1   P2        P1 -- P2 are peers
///        /       \
///       C1        C2     C1 -- C2 are peers
///
/// plus S, a customer of C1 only.
class PolicyFixture : public ::testing::Test {
protected:
    void SetUp() override {
        t_ = topo_.addAs(makeAs(10, AsType::Tier1, "DE", net::Region::Europe));
        p1_ = topo_.addAs(
            makeAs(20, AsType::Tier2, "DE", net::Region::Europe));
        p2_ = topo_.addAs(
            makeAs(30, AsType::Tier2, "FR", net::Region::Europe));
        c1_ = topo_.addAs(makeAs(40, AsType::AccessIsp, "RW",
                                 net::Region::EasternAfrica));
        c2_ = topo_.addAs(makeAs(50, AsType::AccessIsp, "KE",
                                 net::Region::EasternAfrica));
        s_ = topo_.addAs(makeAs(60, AsType::Enterprise, "RW",
                                net::Region::EasternAfrica));
        topo_.addLink(p1_, t_, LinkKind::CustomerToProvider);
        topo_.addLink(p2_, t_, LinkKind::CustomerToProvider);
        topo_.addLink(c1_, p1_, LinkKind::CustomerToProvider);
        topo_.addLink(c2_, p2_, LinkKind::CustomerToProvider);
        topo_.addLink(p1_, p2_, LinkKind::PeerToPeer);
        topo_.addLink(c1_, c2_, LinkKind::PeerToPeer);
        topo_.addLink(s_, c1_, LinkKind::CustomerToProvider);
        topo_.finalize();
    }

    topo::Topology topo_;
    AsIndex t_ = 0, p1_ = 0, p2_ = 0, c1_ = 0, c2_ = 0, s_ = 0;
};

TEST_F(PolicyFixture, SelfRouteIsTrivial) {
    const PathOracle oracle{topo_};
    EXPECT_EQ(oracle.path(c1_, c1_), std::vector<AsIndex>{c1_});
    EXPECT_EQ(oracle.pathLength(c1_, c1_), 0);
    EXPECT_EQ(oracle.routeClass(c1_, c1_), RouteClass::Self);
}

TEST_F(PolicyFixture, PrefersPeerRouteOverProviderRoute) {
    const PathOracle oracle{topo_};
    // c1 -> c2 must use the direct peering, not climb via p1.
    EXPECT_EQ(oracle.path(c1_, c2_), (std::vector<AsIndex>{c1_, c2_}));
    EXPECT_EQ(oracle.routeClass(c1_, c2_), RouteClass::Peer);
}

TEST_F(PolicyFixture, CustomerRoutePreferredEvenIfLonger) {
    const PathOracle oracle{topo_};
    // p1 -> s: customer route via c1 (class Customer).
    EXPECT_EQ(oracle.path(p1_, s_), (std::vector<AsIndex>{p1_, c1_, s_}));
    EXPECT_EQ(oracle.routeClass(p1_, s_), RouteClass::Customer);
}

TEST_F(PolicyFixture, NoValleyThroughPeerChain) {
    const PathOracle oracle{topo_};
    // s -> c2: s climbs to c1, then uses the c1--c2 peering:
    // up, peer, done — valley-free.
    const auto path = oracle.path(s_, c2_);
    EXPECT_EQ(path, (std::vector<AsIndex>{s_, c1_, c2_}));
    EXPECT_TRUE(isValleyFree(topo_, path));
}

TEST_F(PolicyFixture, ProviderRouteWhenNothingBetter) {
    const PathOracle oracle{topo_};
    // c1 -> p2: no customer/peer route; goes up through p1.
    EXPECT_EQ(oracle.routeClass(c1_, p2_), RouteClass::Provider);
    const auto path = oracle.path(c1_, p2_);
    EXPECT_EQ(path.front(), c1_);
    EXPECT_EQ(path.back(), p2_);
    EXPECT_TRUE(isValleyFree(topo_, path));
}

TEST_F(PolicyFixture, PeerRouteOnlyExportedToCustomers) {
    const PathOracle oracle{topo_};
    // p1 hears c2's routes via the p1--p2 peering; its customer c1 can use
    // them, so c1 -> c2 via the direct peer link is still preferred, but
    // s -> c2 must NOT go s -> c1 -> p1 -> p2 -> c2 (that would export a
    // peer-learned route to a peer). s's route is via c1's peering.
    const auto path = oracle.path(s_, c2_);
    EXPECT_TRUE(isValleyFree(topo_, path));
    EXPECT_EQ(path.size(), 3U);
}

TEST_F(PolicyFixture, LinkFailureForcesReroute) {
    LinkFilter filter;
    filter.disableLink(c1_, c2_);
    const PathOracle oracle{topo_, filter};
    // Without the peering, c1 -> c2 climbs: c1 p1 p2 c2 (peer at top).
    const auto path = oracle.path(c1_, c2_);
    EXPECT_EQ(path, (std::vector<AsIndex>{c1_, p1_, p2_, c2_}));
    EXPECT_TRUE(isValleyFree(topo_, path));
}

TEST_F(PolicyFixture, AsFailureDisconnectsSingleHomedStub) {
    LinkFilter filter;
    filter.disableAs(c1_);
    const PathOracle oracle{topo_, filter};
    EXPECT_FALSE(oracle.reachable(s_, c2_));
    EXPECT_FALSE(oracle.reachable(t_, s_));
    EXPECT_TRUE(oracle.path(s_, c2_).empty());
    EXPECT_EQ(oracle.pathLength(s_, c2_), -1);
}

TEST_F(PolicyFixture, SymmetricReachabilityOnThisGraph) {
    const PathOracle oracle{topo_};
    for (AsIndex i = 0; i < topo_.asCount(); ++i) {
        for (AsIndex j = 0; j < topo_.asCount(); ++j) {
            EXPECT_TRUE(oracle.reachable(i, j));
        }
    }
}

TEST(LinkFilterTest, TracksDisabledElements) {
    LinkFilter filter;
    EXPECT_TRUE(filter.empty());
    filter.disableLink(3, 7);
    EXPECT_FALSE(filter.linkAllowed(7, 3)); // unordered
    EXPECT_TRUE(filter.linkAllowed(3, 8));
    filter.disableAs(5);
    EXPECT_FALSE(filter.asAllowed(5));
    EXPECT_TRUE(filter.asAllowed(4));
    EXPECT_EQ(filter.disabledLinkCount(), 1U);
}

// ---- property tests over the full generated topology ----

class GeneratedFixture : public ::testing::Test {
protected:
    static const topo::Topology& topology() {
        static const topo::Topology topo =
            topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                .generate();
        return topo;
    }
    static const PathOracle& oracle() {
        static const PathOracle o{topology()};
        return o;
    }
};

TEST_F(GeneratedFixture, SampledPathsAreValleyFree) {
    const auto& topo = topology();
    net::Rng rng{7};
    for (int i = 0; i < 3000; ++i) {
        const AsIndex src = rng.uniformInt(topo.asCount());
        const AsIndex dst = rng.uniformInt(topo.asCount());
        const auto path = oracle().path(src, dst);
        if (path.empty()) continue;
        EXPECT_TRUE(isValleyFree(topo, path))
            << "src=AS" << topo.as(src).asn << " dst=AS" << topo.as(dst).asn;
    }
}

TEST_F(GeneratedFixture, PathsEndAtEndpointsAndAreLoopFree) {
    const auto& topo = topology();
    net::Rng rng{11};
    for (int i = 0; i < 2000; ++i) {
        const AsIndex src = rng.uniformInt(topo.asCount());
        const AsIndex dst = rng.uniformInt(topo.asCount());
        const auto path = oracle().path(src, dst);
        if (path.empty()) continue;
        EXPECT_EQ(path.front(), src);
        EXPECT_EQ(path.back(), dst);
        auto sorted = path;
        std::ranges::sort(sorted);
        EXPECT_EQ(std::ranges::adjacent_find(sorted), sorted.end())
            << "loop in path";
    }
}

TEST_F(GeneratedFixture, EverythingReachesTier1) {
    const auto& topo = topology();
    // Find a Tier-1.
    std::optional<AsIndex> tier1;
    for (AsIndex i = 0; i < topo.asCount(); ++i) {
        if (topo.as(i).type == AsType::Tier1) {
            tier1 = i;
            break;
        }
    }
    ASSERT_TRUE(tier1.has_value());
    for (AsIndex i = 0; i < topo.asCount(); ++i) {
        EXPECT_TRUE(oracle().reachable(i, *tier1))
            << "AS" << topo.as(i).asn;
        EXPECT_TRUE(oracle().reachable(*tier1, i))
            << "AS" << topo.as(i).asn;
    }
}

TEST_F(GeneratedFixture, PathLengthsArePlausible) {
    const auto& topo = topology();
    net::Rng rng{13};
    for (int i = 0; i < 500; ++i) {
        const AsIndex src = rng.uniformInt(topo.asCount());
        const AsIndex dst = rng.uniformInt(topo.asCount());
        const int len = oracle().pathLength(src, dst);
        if (len < 0) continue;
        EXPECT_LE(len, 12) << "suspiciously long AS path";
    }
}

TEST_F(GeneratedFixture, RecomputationUnderFilterNeverCreatesValleys) {
    const auto& topo = topology();
    net::Rng rng{17};
    LinkFilter filter;
    // Disable 5% of links.
    for (const auto& link : topo.links()) {
        if (rng.bernoulli(0.05)) {
            filter.disableLink(link.a, link.b);
        }
    }
    const PathOracle damaged{topo, filter};
    for (int i = 0; i < 800; ++i) {
        const AsIndex src = rng.uniformInt(topo.asCount());
        const AsIndex dst = rng.uniformInt(topo.asCount());
        const auto path = damaged.path(src, dst);
        if (path.empty()) continue;
        EXPECT_TRUE(isValleyFree(topo, path));
        // The damaged path never uses a disabled link.
        for (std::size_t k = 0; k + 1 < path.size(); ++k) {
            EXPECT_TRUE(filter.linkAllowed(path[k], path[k + 1]));
        }
    }
}

} // namespace
} // namespace aio::route
