// Differential harness locking down the parallel PathOracle build and the
// failure-scenario route cache: across a seed x topology-size x
// failure-set grid, the pool-built next-hop/class matrices must be
// byte-identical to the retained sequential reference, and cached lookups
// must be byte-identical to cold recomputation.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exec/worker_pool.hpp"
#include "netbase/rng.hpp"
#include "routing/oracle_cache.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::route {
namespace {

topo::GeneratorConfig sizedConfig(std::uint64_t seed, bool small) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    if (small) {
        for (auto& profile : config.africa) {
            profile.asPerMillionPeople *= 0.4;
            profile.minAsesPerCountry = 1;
            profile.ixpCount = std::max(1, profile.ixpCount / 2);
        }
        config.europe.accessPerCountry = 2;
        config.northAmerica.accessPerCountry = 2;
        config.southAmerica.accessPerCountry = 2;
        config.asiaPacific.accessPerCountry = 2;
    }
    return config;
}

/// The three failure sets of the grid: intact, random link cuts, and a
/// mixed link + AS outage. Deterministic per (topology, seed).
std::vector<LinkFilter> failureGrid(const topo::Topology& topo,
                                    std::uint64_t seed) {
    std::vector<LinkFilter> grid;
    grid.emplace_back(); // no failures

    net::Rng rng{seed * 1000003 + 17};
    LinkFilter cuts;
    for (const auto& link : topo.links()) {
        if (rng.bernoulli(0.05)) {
            cuts.disableLink(link.a, link.b);
        }
    }
    grid.push_back(std::move(cuts));

    LinkFilter mixed;
    for (const auto& link : topo.links()) {
        if (rng.bernoulli(0.02)) {
            mixed.disableLink(link.a, link.b);
        }
    }
    for (int i = 0; i < 12; ++i) {
        mixed.disableAs(rng.uniformInt(topo.asCount()));
    }
    grid.push_back(std::move(mixed));
    return grid;
}

void expectByteIdentical(const PathOracle& reference,
                         const PathOracle& candidate,
                         const std::string& label) {
    EXPECT_TRUE(std::ranges::equal(reference.nextHopMatrix(),
                                   candidate.nextHopMatrix()))
        << "next-hop matrix mismatch: " << label;
    EXPECT_TRUE(std::ranges::equal(reference.routeClassMatrix(),
                                   candidate.routeClassMatrix()))
        << "route-class matrix mismatch: " << label;
}

/// Polymorphic flavor for cache-returned oracles: full-matrix CRCs
/// streamed through the query surface (still every byte, not a spot
/// check).
void expectByteIdentical(const PathOracle& reference,
                         const RouteOracle& candidate,
                         const std::string& label) {
    const RouteMatrixDigest want = routeMatrixDigest(reference);
    const RouteMatrixDigest got = routeMatrixDigest(candidate);
    EXPECT_EQ(want.nextHop, got.nextHop)
        << "next-hop matrix mismatch: " << label;
    EXPECT_EQ(want.routeClass, got.routeClass)
        << "route-class matrix mismatch: " << label;
}

void runGridPoint(std::uint64_t seed, bool small) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(seed, small)}.generate();
    exec::WorkerPool pool2{2};
    exec::WorkerPool pool8{8};

    int filterIdx = 0;
    for (const LinkFilter& filter : failureGrid(topo, seed)) {
        const std::string label =
            "seed=" + std::to_string(seed) +
            (small ? " small" : " default") +
            " filter=" + std::to_string(filterIdx++);
        const PathOracle reference{topo, filter}; // sequential
        const PathOracle parallel2{topo, filter, pool2};
        const PathOracle parallel8{topo, filter, pool8};
        expectByteIdentical(reference, parallel2, label + " threads=2");
        expectByteIdentical(reference, parallel8, label + " threads=8");
    }
}

TEST(OracleEquivalence, SmallTopologyGrid) {
    for (const std::uint64_t seed : {3ULL, 11ULL, 20250704ULL}) {
        runGridPoint(seed, /*small=*/true);
    }
}

TEST(OracleEquivalence, DefaultTopologyGrid) {
    runGridPoint(20250704, /*small=*/false);
}

TEST(OracleEquivalence, RepeatedParallelBuildsAreDeterministic) {
    // Same pool, same inputs, many runs: byte-identical every time even
    // though the chunk schedule differs run to run.
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(5, true)}.generate();
    const auto filters = failureGrid(topo, 5);
    const LinkFilter& filter = filters[1];
    exec::WorkerPool pool{8};
    const PathOracle reference{topo, filter};
    for (int run = 0; run < 5; ++run) {
        const PathOracle rebuilt{topo, filter, pool};
        expectByteIdentical(reference, rebuilt,
                            "run " + std::to_string(run));
    }
}

TEST(OracleEquivalence, CachedResultsEqualColdRecomputation) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(7, true)}.generate();
    exec::WorkerPool pool{4};
    OracleCache cache{topo, 8, &pool};

    for (const LinkFilter& filter : failureGrid(topo, 7)) {
        const PathOracle cold{topo, filter}; // sequential, cacheless
        const auto cachedCold = cache.get(filter); // miss: parallel build
        const auto cachedWarm = cache.get(filter); // hit: stored oracle
        expectByteIdentical(cold, *cachedCold, "cache miss path");
        expectByteIdentical(cold, *cachedWarm, "cache hit path");
        EXPECT_EQ(cachedCold.get(), cachedWarm.get())
            << "warm lookup must return the stored oracle, not a rebuild";
    }
    const OracleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 3U);
    EXPECT_EQ(stats.hits, 3U);
    EXPECT_EQ(stats.evictions, 0U);
}

} // namespace
} // namespace aio::route
