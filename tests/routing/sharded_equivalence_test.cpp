// Differential harness for the destination-sharded compressed routing
// substrate: across a seed x topology-size x failure-filter grid, the
// ShardedOracle's full next-hop/class matrices — streamed through the
// query surface as CRCs, every byte, not spot checks — must equal the
// dense PathOracle reference. Covers sequential / 2-lane / 8-lane
// materialization, cold and warm reads, forced shard eviction, forced
// wide-row fallback, lazy incremental derivation per cut set, and the
// typed capacity errors both policies throw instead of bad_alloc.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exec/worker_pool.hpp"
#include "netbase/error.hpp"
#include "netbase/rng.hpp"
#include "routing/oracle_cache.hpp"
#include "routing/path_oracle.hpp"
#include "routing/sharded_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::route {
namespace {

topo::GeneratorConfig sizedConfig(std::uint64_t seed, bool small) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    if (small) {
        for (auto& profile : config.africa) {
            profile.asPerMillionPeople *= 0.4;
            profile.minAsesPerCountry = 1;
            profile.ixpCount = std::max(1, profile.ixpCount / 2);
        }
        config.europe.accessPerCountry = 2;
        config.northAmerica.accessPerCountry = 2;
        config.southAmerica.accessPerCountry = 2;
        config.asiaPacific.accessPerCountry = 2;
    }
    return config;
}

/// The failure grid: intact, random link cuts, mixed link + AS outage
/// (the AS case forces the derived oracle's all-rows-dirty path).
std::vector<LinkFilter> failureGrid(const topo::Topology& topo,
                                    std::uint64_t seed) {
    std::vector<LinkFilter> grid;
    grid.emplace_back();

    net::Rng rng{seed * 1000003 + 17};
    LinkFilter cuts;
    for (const auto& link : topo.links()) {
        if (rng.bernoulli(0.05)) {
            cuts.disableLink(link.a, link.b);
        }
    }
    grid.push_back(std::move(cuts));

    LinkFilter mixed;
    for (const auto& link : topo.links()) {
        if (rng.bernoulli(0.02)) {
            mixed.disableLink(link.a, link.b);
        }
    }
    for (int i = 0; i < 12; ++i) {
        mixed.disableAs(rng.uniformInt(topo.asCount()));
    }
    grid.push_back(std::move(mixed));
    return grid;
}

void expectDigestEqual(const RouteMatrixDigest& want,
                       const RouteOracle& candidate,
                       const std::string& label) {
    const RouteMatrixDigest got = routeMatrixDigest(candidate);
    EXPECT_EQ(want.nextHop, got.nextHop)
        << "next-hop matrix mismatch: " << label;
    EXPECT_EQ(want.routeClass, got.routeClass)
        << "route-class matrix mismatch: " << label;
}

void runGridPoint(std::uint64_t seed, bool small) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(seed, small)}.generate();
    exec::WorkerPool pool2{2};
    exec::WorkerPool pool8{8};

    int filterIdx = 0;
    for (const LinkFilter& filter : failureGrid(topo, seed)) {
        const std::string label =
            "seed=" + std::to_string(seed) + (small ? " small" : " default") +
            " filter=" + std::to_string(filterIdx++);
        const PathOracle dense{topo, filter};
        const RouteMatrixDigest want = routeMatrixDigest(dense);

        // Cold: the digest pass itself materializes rows lazily.
        const ShardedOracle cold{topo, filter};
        expectDigestEqual(want, cold, label + " lazy");
        // Warm: a second full pass over the now-resident rows.
        expectDigestEqual(want, cold, label + " warm");

        // Bulk materialization at 1 / 2 / 8 lanes, each on a fresh
        // instance so the lane count is the only variable.
        const ShardedOracle seq{topo, filter};
        seq.materializeAll(nullptr);
        expectDigestEqual(want, seq, label + " threads=1");
        const ShardedOracle par2{topo, filter};
        par2.materializeAll(&pool2);
        expectDigestEqual(want, par2, label + " threads=2");
        const ShardedOracle par8{topo, filter};
        par8.materializeAll(&pool8);
        expectDigestEqual(want, par8, label + " threads=8");
    }
}

TEST(ShardedEquivalence, SmallTopologyGrid) {
    for (const std::uint64_t seed : {3ULL, 11ULL}) {
        runGridPoint(seed, /*small=*/true);
    }
}

TEST(ShardedEquivalence, DefaultTopologyGrid) {
    runGridPoint(20250704, /*small=*/false);
}

TEST(ShardedEquivalence, EvictionIsInvisibleToQueries) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(5, true)}.generate();
    const auto filters = failureGrid(topo, 5);
    const PathOracle dense{topo, filters[1]};
    const RouteMatrixDigest want = routeMatrixDigest(dense);

    // Tiny shards + a budget that fits only a handful of them: the full
    // digest pass must thrash the LRU and still read identical bytes.
    ShardedOracleConfig config;
    config.shardDestinations = 8;
    const ShardedOracle probe{topo, filters[1], config};
    config.residentByteBudget =
        probe.memoryBytes() + 4 * probe.config().shardDestinations *
                                  probe.rowBytes();
    const ShardedOracle squeezed{topo, filters[1], config};
    expectDigestEqual(want, squeezed, "evicting pass 1");
    expectDigestEqual(want, squeezed, "evicting pass 2");
    EXPECT_GT(squeezed.shardEvictions(), 0U)
        << "budget was meant to force eviction";
    EXPECT_LT(squeezed.residentShardCount(), squeezed.shardCount());

    // Bulk materialization under the same squeeze: later shards evict
    // earlier ones, queries re-derive on demand, bytes stay identical.
    exec::WorkerPool pool{4};
    const ShardedOracle bulk{topo, filters[1], config};
    bulk.materializeAll(&pool);
    EXPECT_GT(bulk.shardEvictions(), 0U);
    expectDigestEqual(want, bulk, "evicting bulk");
}

TEST(ShardedEquivalence, WideRowFallbackKeepsBytes) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(7, true)}.generate();
    const auto filters = failureGrid(topo, 7);
    const PathOracle dense{topo, filters[1]};
    const RouteMatrixDigest want = routeMatrixDigest(dense);

    // Force hub fallback at absurdly low degree: many sources store
    // int32 wide columns instead of uint16 slots. Same bytes out.
    ShardedOracleConfig config;
    config.narrowSlotLimit = 4;
    const ShardedOracle wide{topo, filters[1], config};
    EXPECT_GT(wide.wideSourceCount(), 0U)
        << "narrowSlotLimit=4 was meant to widen hub sources";
    expectDigestEqual(want, wide, "wide fallback");

    // And the all-wide extreme: every source takes the fallback path.
    config.narrowSlotLimit = 0;
    const ShardedOracle allWide{topo, filters[1], config};
    EXPECT_EQ(allWide.wideSourceCount(), topo.asCount());
    expectDigestEqual(want, allWide, "all-wide");
}

TEST(ShardedEquivalence, IncrementalDerivationMatchesFromScratch) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(11, true)}.generate();
    const auto baseline = std::make_shared<const ShardedOracle>(topo);

    int filterIdx = 0;
    for (const LinkFilter& filter : failureGrid(topo, 11)) {
        const std::string label = "filter=" + std::to_string(filterIdx++);
        const PathOracle dense{topo, filter};
        const RouteMatrixDigest want = routeMatrixDigest(dense);

        const auto derived = baseline->deriveFiltered(filter);
        expectDigestEqual(want, *derived, label + " derived");
        // Lazily resolved dirty rows never exceed the destination count,
        // and a full matrix read resolves every row's classification.
        EXPECT_LE(derived->resolvedDirtyDestinations(), topo.asCount());
        if (!filter.empty()) {
            EXPECT_GT(derived->resolvedDirtyDestinations(), 0U) << label;
        }

        const ShardedOracle scratch{topo, filter};
        expectDigestEqual(want, scratch, label + " from-scratch");
    }
}

TEST(ShardedEquivalence, IncrementalSweepOverGrowingCutSets) {
    // The sweep shape: one baseline, successive cut sets each derived
    // from it, each compared against dense recomputation — and a derived
    // oracle squeezed by eviction must survive the same comparison.
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(13, true)}.generate();
    const auto baseline = std::make_shared<const ShardedOracle>(topo);
    net::Rng rng{997};

    LinkFilter cumulative;
    for (int round = 0; round < 4; ++round) {
        for (const auto& link : topo.links()) {
            if (rng.bernoulli(0.01)) {
                cumulative.disableLink(link.a, link.b);
            }
        }
        const PathOracle dense{topo, cumulative};
        const RouteMatrixDigest want = routeMatrixDigest(dense);
        const auto derived = baseline->deriveFiltered(cumulative);
        expectDigestEqual(want, *derived,
                          "round " + std::to_string(round));
    }

    // Dense incremental (PR 5 path) against sharded derivation: both
    // must match the from-scratch dense build.
    const PathOracle denseBaseline{topo};
    const PathOracle denseIncremental{denseBaseline, cumulative};
    const PathOracle denseScratch{topo, cumulative};
    const RouteMatrixDigest want = routeMatrixDigest(denseScratch);
    expectDigestEqual(want, denseIncremental, "dense incremental");
    const auto derived = baseline->deriveFiltered(cumulative);
    expectDigestEqual(want, *derived, "sharded incremental");
}

TEST(ShardedEquivalence, CacheColdAndWarmShardedLookups) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(17, true)}.generate();
    OracleCacheConfig cacheConfig;
    cacheConfig.policy = StoragePolicy::Sharded;
    OracleCache cache{topo, 8, nullptr, nullptr, cacheConfig};

    for (const LinkFilter& filter : failureGrid(topo, 17)) {
        const PathOracle dense{topo, filter};
        const RouteMatrixDigest want = routeMatrixDigest(dense);
        const auto cold = cache.get(filter);
        EXPECT_EQ(cold->storagePolicy(), StoragePolicy::Sharded);
        expectDigestEqual(want, *cold, "cache cold");
        const auto warm = cache.get(filter);
        EXPECT_EQ(cold.get(), warm.get());
        expectDigestEqual(want, *warm, "cache warm");
    }
}

TEST(ShardedEquivalence, DenseCeilingThrowsTypedCapacityError) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(3, true)}.generate();
    // 5 bytes per AS pair: a one-kilobyte ceiling cannot hold any real
    // topology, and the failure must be the typed pre-allocation error.
    EXPECT_THROW((PathOracle{topo, LinkFilter{}, std::size_t{1024}}),
                 net::CapacityError);
    exec::WorkerPool pool{2};
    EXPECT_THROW((PathOracle{topo, LinkFilter{}, pool, std::size_t{1024}}),
                 net::CapacityError);
}

TEST(ShardedEquivalence, ShardedBudgetBelowOneShardThrows) {
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(3, true)}.generate();
    ShardedOracleConfig config;
    config.residentByteBudget = 1024; // below fixed overhead + one shard
    EXPECT_THROW((ShardedOracle{topo, LinkFilter{}, config}),
                 net::CapacityError);
}

TEST(ShardedEquivalence, WalkAndPathAgreeWithDense) {
    // The shared walk/path/pathLength surface over both storages.
    const topo::Topology topo =
        topo::TopologyGenerator{sizedConfig(19, true)}.generate();
    const auto filters = failureGrid(topo, 19);
    const PathOracle dense{topo, filters[1]};
    const ShardedOracle sharded{topo, filters[1]};
    const std::size_t n = topo.asCount();
    for (topo::AsIndex src = 0; src < n; src += 7) {
        for (topo::AsIndex dst = 0; dst < n; dst += 11) {
            EXPECT_EQ(dense.pathLength(src, dst),
                      sharded.pathLength(src, dst));
            EXPECT_EQ(dense.path(src, dst), sharded.path(src, dst));
        }
    }
}

} // namespace
} // namespace aio::route
