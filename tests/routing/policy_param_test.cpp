// Parameterized property sweep: the routing invariants must hold for ANY
// generator seed, not just the default world.

#include <gtest/gtest.h>

#include <algorithm>

#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::route {
namespace {

class RoutingInvariants : public ::testing::TestWithParam<std::uint64_t> {
protected:
    static topo::Topology makeTopology(std::uint64_t seed) {
        auto cfg = topo::GeneratorConfig::defaults();
        cfg.seed = seed;
        return topo::TopologyGenerator{cfg}.generate();
    }
};

TEST_P(RoutingInvariants, ValleyFreeLoopFreeAndAnchored) {
    const topo::Topology topo = makeTopology(GetParam());
    const PathOracle oracle{topo};
    net::Rng rng{GetParam() ^ 0xabcdef};
    for (int i = 0; i < 600; ++i) {
        const topo::AsIndex src = rng.uniformInt(topo.asCount());
        const topo::AsIndex dst = rng.uniformInt(topo.asCount());
        const auto path = oracle.path(src, dst);
        if (path.empty()) {
            continue;
        }
        ASSERT_EQ(path.front(), src);
        ASSERT_EQ(path.back(), dst);
        ASSERT_TRUE(isValleyFree(topo, path))
            << "seed " << GetParam() << " src AS" << topo.as(src).asn
            << " dst AS" << topo.as(dst).asn;
        auto sorted = path;
        std::ranges::sort(sorted);
        ASSERT_EQ(std::ranges::adjacent_find(sorted), sorted.end());
    }
}

TEST_P(RoutingInvariants, CustomerConeNeverWorseThanProviderRoute) {
    const topo::Topology topo = makeTopology(GetParam());
    const PathOracle oracle{topo};
    net::Rng rng{GetParam() ^ 0x123456};
    for (int i = 0; i < 300; ++i) {
        const topo::AsIndex src = rng.uniformInt(topo.asCount());
        for (const topo::AsIndex customer : topo.customersOf(src)) {
            // A direct customer is always reachable via the customer
            // route, i.e. class Customer with path length 1.
            ASSERT_EQ(oracle.routeClass(src, customer),
                      RouteClass::Customer);
            ASSERT_EQ(oracle.pathLength(src, customer), 1);
        }
    }
}

TEST_P(RoutingInvariants, EveryAfricanEyeballReachesEurope) {
    const topo::Topology topo = makeTopology(GetParam());
    const PathOracle oracle{topo};
    // The structural dependence: all eyeballs can reach the EU core.
    std::optional<topo::AsIndex> euTier1;
    for (topo::AsIndex i = 0; i < topo.asCount(); ++i) {
        if (topo.as(i).type == topo::AsType::Tier1 &&
            topo.as(i).region == net::Region::Europe) {
            euTier1 = i;
            break;
        }
    }
    ASSERT_TRUE(euTier1.has_value());
    for (const topo::AsIndex as : topo.africanAses()) {
        ASSERT_TRUE(oracle.reachable(as, *euTier1))
            << "seed " << GetParam() << " AS" << topo.as(as).asn;
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, RoutingInvariants,
                         ::testing::Values(1, 7, 42, 1337, 20250704));

} // namespace
} // namespace aio::route
