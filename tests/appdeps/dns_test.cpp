#include "dns/resolver.hpp"

#include <gtest/gtest.h>

#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::dns {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    ResolverEcosystem ecosystem;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), ecosystem(topo, DnsConfig::defaults(), 31) {}
};

World& world() {
    static World w;
    return w;
}

TEST(ResolverEcosystem, OnlyAfricanEyeballsGetAssignments) {
    auto& w = world();
    for (topo::AsIndex i = 0; i < w.topo.asCount(); ++i) {
        const auto& info = w.topo.as(i);
        const bool eyeball = info.type == topo::AsType::MobileOperator ||
                             info.type == topo::AsType::AccessIsp;
        const bool expected = eyeball && net::isAfrican(info.region);
        EXPECT_EQ(w.ecosystem.resolverOf(i).has_value(), expected)
            << "AS" << info.asn;
    }
}

TEST(ResolverEcosystem, AssignmentsMatchTheirClassSemantics) {
    auto& w = world();
    for (topo::AsIndex i = 0; i < w.topo.asCount(); ++i) {
        const auto assignment = w.ecosystem.resolverOf(i);
        if (!assignment) continue;
        const auto& client = w.topo.as(i);
        const auto& resolver = w.topo.as(assignment->resolverAs);
        switch (assignment->cls) {
        case ResolverClass::LocalInCountry:
            EXPECT_EQ(resolver.countryCode, client.countryCode);
            break;
        case ResolverClass::OtherAfricanCountry:
            EXPECT_TRUE(net::isAfrican(resolver.region));
            EXPECT_NE(resolver.countryCode, client.countryCode);
            break;
        case ResolverClass::CloudInAfrica:
            EXPECT_EQ(resolver.type, topo::AsType::CloudProvider);
            EXPECT_TRUE(net::isAfrican(resolver.region));
            break;
        case ResolverClass::CloudOffshore:
            EXPECT_EQ(resolver.type, topo::AsType::CloudProvider);
            EXPECT_FALSE(net::isAfrican(resolver.region));
            break;
        case ResolverClass::IspOffshore:
            EXPECT_EQ(resolver.region, net::Region::Europe);
            break;
        }
    }
}

TEST(ResolverEcosystem, AfricanCloudResolversAreInSouthAfrica) {
    auto& w = world();
    for (topo::AsIndex i = 0; i < w.topo.asCount(); ++i) {
        const auto assignment = w.ecosystem.resolverOf(i);
        if (assignment && assignment->cls == ResolverClass::CloudInAfrica) {
            EXPECT_EQ(w.topo.as(assignment->resolverAs).countryCode, "ZA");
        }
    }
}

TEST(ResolverEcosystem, OffshoreRelianceIsHeavyOutsideSouthernAfrica) {
    auto& w = world();
    const auto shares = [&](net::Region r) {
        double offshore = 0.0;
        for (const auto& [cls, share] : w.ecosystem.classShares(r)) {
            if (!isAfricanResolverClass(cls)) {
                offshore += share;
            }
        }
        return offshore;
    };
    EXPECT_GT(shares(net::Region::WesternAfrica), 0.35);
    EXPECT_GT(shares(net::Region::CentralAfrica), 0.35);
    EXPECT_LT(shares(net::Region::SouthernAfrica),
              shares(net::Region::WesternAfrica));
}

TEST(ResolverEcosystem, ClassSharesSumToOne) {
    auto& w = world();
    for (const net::Region region : net::africanRegions()) {
        double total = 0.0;
        for (const auto& [cls, share] : w.ecosystem.classShares(region)) {
            total += share;
        }
        EXPECT_NEAR(total, 1.0, 1e-9) << net::regionName(region);
    }
}

TEST(ResolutionSimulator, EveryoneResolvesOnHealthyNetwork) {
    auto& w = world();
    const ResolutionSimulator sim{w.ecosystem};
    for (const auto* country : net::CountryTable::world().african()) {
        const double share = sim.resolvableShare(country->iso2, w.oracle);
        if (w.topo.asesInCountry(country->iso2).empty()) continue;
        EXPECT_NEAR(share, 1.0, 1e-9) << country->iso2;
    }
}

TEST(ResolutionSimulator, OffshoreResolversFailWhenClientIsolated) {
    auto& w = world();
    const ResolutionSimulator sim{w.ecosystem};
    // Find a client with an offshore resolver and cut all its providers.
    for (topo::AsIndex i = 0; i < w.topo.asCount(); ++i) {
        const auto assignment = w.ecosystem.resolverOf(i);
        if (!assignment || isAfricanResolverClass(assignment->cls)) {
            continue;
        }
        route::LinkFilter filter;
        for (const auto provider : w.topo.providersOf(i)) {
            filter.disableLink(i, provider);
        }
        for (const auto peer : w.topo.peersOf(i)) {
            filter.disableLink(i, peer);
        }
        const route::PathOracle cut{w.topo, filter};
        EXPECT_FALSE(sim.resolve(i, cut).resolved);
        // Local resolution would have survived (same AS).
        return;
    }
    FAIL() << "no offshore-resolver client found";
}

TEST(ResolutionSimulator, RttReflectsResolverDistance) {
    auto& w = world();
    const ResolutionSimulator sim{w.ecosystem};
    std::vector<double> localRtt;
    std::vector<double> offshoreRtt;
    for (topo::AsIndex i = 0; i < w.topo.asCount(); ++i) {
        const auto assignment = w.ecosystem.resolverOf(i);
        if (!assignment) continue;
        const auto outcome = sim.resolve(i, w.oracle);
        if (!outcome.resolved) continue;
        if (assignment->cls == ResolverClass::LocalInCountry) {
            localRtt.push_back(outcome.rttMs);
        } else if (assignment->cls == ResolverClass::CloudOffshore) {
            offshoreRtt.push_back(outcome.rttMs);
        }
    }
    ASSERT_GT(localRtt.size(), 10U);
    ASSERT_GT(offshoreRtt.size(), 10U);
    double localSum = 0, offshoreSum = 0;
    for (double v : localRtt) localSum += v;
    for (double v : offshoreRtt) offshoreSum += v;
    EXPECT_GT(offshoreSum / offshoreRtt.size(),
              localSum / localRtt.size());
}

} // namespace
} // namespace aio::dns
