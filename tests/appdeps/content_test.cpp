#include "content/catalog.hpp"

#include <gtest/gtest.h>

#include "netbase/error.hpp"
#include "routing/path_oracle.hpp"
#include "topo/generator.hpp"

namespace aio::content {
namespace {

struct World {
    topo::Topology topo;
    route::PathOracle oracle;
    ContentCatalog catalog;

    World()
        : topo(topo::TopologyGenerator{topo::GeneratorConfig::defaults()}
                   .generate()),
          oracle(topo), catalog(topo, ContentConfig::defaults(), 47) {}
};

World& world() {
    static World w;
    return w;
}

TEST(ContentCatalog, EveryAfricanCountryHasACatalog) {
    auto& w = world();
    for (const auto* country : net::CountryTable::world().african()) {
        const auto& sites = w.catalog.sitesFor(country->iso2);
        EXPECT_EQ(sites.size(), 200U);
    }
    EXPECT_THROW(w.catalog.sitesFor("XX"), net::NotFoundError);
}

TEST(ContentCatalog, HostingAssignmentsAreConsistent) {
    auto& w = world();
    for (const auto* country : net::CountryTable::world().african()) {
        for (const Website& site : w.catalog.sitesFor(country->iso2)) {
            const auto& host = w.topo.as(site.hostAs);
            switch (site.hosting) {
            case HostingClass::LocalDatacenter:
                EXPECT_EQ(host.countryCode, country->iso2);
                break;
            case HostingClass::IxpOffnetCache:
                ASSERT_TRUE(site.cacheIxp.has_value());
                EXPECT_TRUE(w.topo.ixp(*site.cacheIxp).hasContentCache);
                break;
            case HostingClass::AfricanRegionalDc:
                EXPECT_TRUE(net::isAfrican(host.region));
                break;
            case HostingClass::EuropeDc:
                EXPECT_EQ(host.region, net::Region::Europe);
                break;
            case HostingClass::NorthAmericaDc:
                EXPECT_EQ(host.region, net::Region::NorthAmerica);
                break;
            }
        }
    }
}

TEST(ContentCatalog, PopularityIsZipfLike) {
    auto& w = world();
    const auto& sites = w.catalog.sitesFor("NG");
    EXPECT_GT(sites[0].popularity, sites[10].popularity);
    EXPECT_GT(sites[10].popularity, sites[100].popularity);
}

TEST(LocalityAnalyzer, PaperShapeHolds) {
    auto& w = world();
    const LocalityAnalyzer analyzer{w.catalog};
    const double overall = analyzer.overallLocalShare();
    // §4.2: only ~30% of content local to Africa.
    EXPECT_GT(overall, 0.18);
    EXPECT_LT(overall, 0.42);
    // Southern most local, Western least.
    const double southern = analyzer.localShare(net::Region::SouthernAfrica);
    const double western = analyzer.localShare(net::Region::WesternAfrica);
    const double eastern = analyzer.localShare(net::Region::EasternAfrica);
    EXPECT_GT(southern, eastern);
    EXPECT_GT(eastern, western);
}

TEST(LocalityAnalyzer, EverythingReachableOnHealthyNetwork) {
    auto& w = world();
    const LocalityAnalyzer analyzer{w.catalog};
    const auto clients = w.topo.asesInCountry("GH");
    ASSERT_FALSE(clients.empty());
    EXPECT_NEAR(analyzer.reachableShare(clients[0], "GH", w.oracle), 1.0,
                1e-9);
}

TEST(LocalityAnalyzer, IsolationKillsOffshoreContentOnly) {
    auto& w = world();
    const LocalityAnalyzer analyzer{w.catalog};
    const auto clients = w.topo.asesInCountry("GH");
    ASSERT_FALSE(clients.empty());
    const auto client = clients[0];
    // Cut every link of the client except domestic ones.
    route::LinkFilter filter;
    for (const auto& link : w.topo.links()) {
        if (link.a != client && link.b != client) continue;
        const auto other = link.a == client ? link.b : link.a;
        if (w.topo.as(other).countryCode != "GH") {
            filter.disableLink(link.a, link.b);
        }
    }
    const route::PathOracle cut{w.topo, filter};
    const double share = analyzer.reachableShare(client, "GH", cut);
    EXPECT_LT(share, analyzer.reachableShare(client, "GH", w.oracle));
}

} // namespace
} // namespace aio::content
