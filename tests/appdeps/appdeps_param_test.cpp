// Parameterized sweeps over the dependency layers: the regional shape
// results (Fig. 2b/2c) must be properties of the configuration, not of
// one lucky assignment seed.

#include <gtest/gtest.h>

#include "content/catalog.hpp"
#include "dns/resolver.hpp"
#include "topo/generator.hpp"

namespace aio {
namespace {

const topo::Topology& topology() {
    static const topo::Topology topo =
        topo::TopologyGenerator{topo::GeneratorConfig::defaults()}.generate();
    return topo;
}

class DependencySeedSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DependencySeedSweep, ResolverSharesMatchConfiguredProfiles) {
    const dns::ResolverEcosystem ecosystem{
        topology(), dns::DnsConfig::defaults(), GetParam()};
    const auto cfg = dns::DnsConfig::defaults();
    const auto regions = net::africanRegions();
    for (std::size_t i = 0; i < regions.size(); ++i) {
        const auto shares = ecosystem.classShares(regions[i]);
        const auto localIt =
            shares.find(dns::ResolverClass::LocalInCountry);
        const double local =
            localIt == shares.end() ? 0.0 : localIt->second;
        // Empirical share near the configured profile (sampling noise on
        // ~100 ASes per region plus the other-country fallback allows a
        // generous band).
        EXPECT_NEAR(local, cfg.africa[i].localInCountry, 0.16)
            << net::regionName(regions[i]) << " seed " << GetParam();
    }
}

TEST_P(DependencySeedSweep, SouthernContentLocalityLeadsWesternTrails) {
    const content::ContentCatalog catalog{
        topology(), content::ContentConfig::defaults(), GetParam()};
    const content::LocalityAnalyzer analyzer{catalog};
    const double southern =
        analyzer.localShare(net::Region::SouthernAfrica);
    const double western = analyzer.localShare(net::Region::WesternAfrica);
    EXPECT_GT(southern, western) << "seed " << GetParam();
    const double overall = analyzer.overallLocalShare();
    EXPECT_GT(overall, 0.15);
    EXPECT_LT(overall, 0.45);
}

TEST_P(DependencySeedSweep, ResolverAssignmentsAreInternallyConsistent) {
    const dns::ResolverEcosystem ecosystem{
        topology(), dns::DnsConfig::defaults(), GetParam()};
    const auto& topo = topology();
    for (topo::AsIndex i = 0; i < topo.asCount(); ++i) {
        const auto assignment = ecosystem.resolverOf(i);
        if (!assignment) continue;
        // African classes must resolve inside Africa, offshore outside.
        const bool resolverAfrican =
            net::isAfrican(topo.as(assignment->resolverAs).region);
        EXPECT_EQ(resolverAfrican,
                  dns::isAfricanResolverClass(assignment->cls))
            << "AS" << topo.as(i).asn << " seed " << GetParam();
    }
}

TEST_P(DependencySeedSweep, CacheSitesAlwaysPointAtCacheIxps) {
    const content::ContentCatalog catalog{
        topology(), content::ContentConfig::defaults(), GetParam()};
    for (const auto* country : net::CountryTable::world().african()) {
        for (const auto& site : catalog.sitesFor(country->iso2)) {
            if (site.hosting != content::HostingClass::IxpOffnetCache) {
                continue;
            }
            ASSERT_TRUE(site.cacheIxp.has_value());
            EXPECT_TRUE(topology().ixp(*site.cacheIxp).hasContentCache);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DependencySeedSweep,
                         ::testing::Values(31, 47, 1001, 424242));

} // namespace
} // namespace aio
