#include "persist/journal.hpp"

#include <string>

#include "persist/bytes.hpp"

namespace aio::persist {

namespace {

enum RecordType : std::uint8_t {
    kHeaderRecord = 1,
    kOutcomeRecord = 2,
    kCheckpointRecord = 3,
};

void encodeHeader(ByteWriter& w, const CampaignHeader& header) {
    w.u8(kHeaderRecord);
    w.u32(header.formatVersion);
    w.u64(header.planDigest);
    w.u64(header.configDigest);
    for (const std::uint64_t word : header.initialRngState) {
        w.u64(word);
    }
    w.u64(header.taskCount);
    w.u64(header.probeCount);
    w.u32(header.checkpointInterval);
    w.u64(header.resumedAtOutcome);
}

CampaignHeader decodeHeader(ByteReader& r) {
    CampaignHeader header;
    header.formatVersion = r.u32();
    if (header.formatVersion != 1) {
        throw net::CorruptionError{"unsupported journal format version " +
                                   std::to_string(header.formatVersion)};
    }
    header.planDigest = r.u64();
    header.configDigest = r.u64();
    for (std::uint64_t& word : header.initialRngState) {
        word = r.u64();
    }
    header.taskCount = r.u64();
    header.probeCount = r.u64();
    header.checkpointInterval = r.u32();
    header.resumedAtOutcome = r.u64();
    return header;
}

void encodeOutcome(ByteWriter& w, const TaskOutcomeRecord& outcome) {
    w.u8(kOutcomeRecord);
    w.u64(outcome.taskIdx);
    w.u8(static_cast<std::uint8_t>(outcome.kind));
    w.u8(outcome.faultClass);
    w.f64(outcome.clockHour);
}

TaskOutcomeRecord decodeOutcome(ByteReader& r) {
    TaskOutcomeRecord outcome;
    outcome.taskIdx = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(TaskOutcomeKind::Abandoned)) {
        throw net::CorruptionError{"unknown task outcome kind " +
                                   std::to_string(kind)};
    }
    outcome.kind = static_cast<TaskOutcomeKind>(kind);
    outcome.faultClass = r.u8();
    outcome.clockHour = r.f64();
    return outcome;
}

void encodeResult(ByteWriter& w, const core::CampaignResult& result) {
    w.u64(result.ixpsDetected.size());
    for (const topo::IxpIndex ix : result.ixpsDetected) {
        w.u64(ix);
    }
    w.u64(result.asesObserved.size());
    for (const topo::AsIndex as : result.asesObserved) {
        w.u64(as);
    }
    w.i32(result.tracesLaunched);
    w.i32(result.tracesCompleted);
    const core::DegradationReport& rep = result.degradation;
    w.i32(rep.tasksPlanned);
    w.i32(rep.attempts);
    w.i32(rep.retries);
    w.i32(rep.reassigned);
    w.i32(rep.abandoned);
    w.i32(rep.completed);
    w.i32(rep.transientTimeouts);
    w.i32(rep.probesExhausted);
    w.f64(rep.completionRatio);
    w.f64(rep.coverageVsOracle);
    w.u64(rep.lossByFaultClass.size());
    for (const auto& [name, count] : rep.lossByFaultClass) {
        w.str(name);
        w.i32(count);
    }
}

core::CampaignResult decodeResult(ByteReader& r) {
    core::CampaignResult result;
    const std::uint64_t ixps = r.u64();
    for (std::uint64_t i = 0; i < ixps; ++i) {
        result.ixpsDetected.insert(result.ixpsDetected.end(),
                                   static_cast<topo::IxpIndex>(r.u64()));
    }
    const std::uint64_t ases = r.u64();
    for (std::uint64_t i = 0; i < ases; ++i) {
        result.asesObserved.insert(result.asesObserved.end(),
                                   static_cast<topo::AsIndex>(r.u64()));
    }
    result.tracesLaunched = r.i32();
    result.tracesCompleted = r.i32();
    core::DegradationReport& rep = result.degradation;
    rep.tasksPlanned = r.i32();
    rep.attempts = r.i32();
    rep.retries = r.i32();
    rep.reassigned = r.i32();
    rep.abandoned = r.i32();
    rep.completed = r.i32();
    rep.transientTimeouts = r.i32();
    rep.probesExhausted = r.i32();
    rep.completionRatio = r.f64();
    rep.coverageVsOracle = r.f64();
    const std::uint64_t losses = r.u64();
    for (std::uint64_t i = 0; i < losses; ++i) {
        std::string name = r.str();
        const std::int32_t count = r.i32();
        rep.lossByFaultClass.emplace(std::move(name), count);
    }
    return result;
}

void encodeCheckpoint(ByteWriter& w, const CampaignCheckpoint& cp) {
    w.u8(kCheckpointRecord);
    w.u64(cp.outcomesApplied);
    w.u64(cp.nextSeq);
    for (const std::uint64_t word : cp.rngState) {
        w.u64(word);
    }
    encodeResult(w, cp.result);
    w.u64(cp.assignments.size());
    for (const TaskAssignment& a : cp.assignments) {
        w.u64(a.probeIndex);
        w.u64(a.srcAs);
    }
    w.u64(cp.pending.size());
    for (const PendingTask& p : cp.pending) {
        w.f64(p.readyHour);
        w.u64(p.seq);
        w.u64(p.taskIdx);
        w.i32(p.attempt);
        w.i32(p.reassignments);
    }
    w.u64(cp.meters.size());
    for (const ProbeMeterState& m : cp.meters) {
        w.f64(m.peakMb);
        w.f64(m.offPeakMb);
        w.boolean(m.exhausted);
    }
}

CampaignCheckpoint decodeCheckpoint(ByteReader& r) {
    CampaignCheckpoint cp;
    cp.outcomesApplied = r.u64();
    cp.nextSeq = r.u64();
    for (std::uint64_t& word : cp.rngState) {
        word = r.u64();
    }
    cp.result = decodeResult(r);
    const std::uint64_t assignments = r.u64();
    cp.assignments.reserve(assignments);
    for (std::uint64_t i = 0; i < assignments; ++i) {
        TaskAssignment a;
        a.probeIndex = r.u64();
        a.srcAs = r.u64();
        cp.assignments.push_back(a);
    }
    const std::uint64_t pending = r.u64();
    cp.pending.reserve(pending);
    for (std::uint64_t i = 0; i < pending; ++i) {
        PendingTask p;
        p.readyHour = r.f64();
        p.seq = r.u64();
        p.taskIdx = r.u64();
        p.attempt = r.i32();
        p.reassignments = r.i32();
        cp.pending.push_back(p);
    }
    const std::uint64_t meters = r.u64();
    cp.meters.reserve(meters);
    for (std::uint64_t i = 0; i < meters; ++i) {
        ProbeMeterState m;
        m.peakMb = r.f64();
        m.offPeakMb = r.f64();
        m.exhausted = r.boolean();
        cp.meters.push_back(m);
    }
    return cp;
}

void requireDrained(const ByteReader& r, const char* what) {
    if (!r.atEnd()) {
        throw net::CorruptionError{
            std::string{what} + " record carries " +
            std::to_string(r.remaining()) + " trailing bytes"};
    }
}

} // namespace

/// One framed append + flush: the record is only "written" once it is
/// durable. Byte/latency accounting rides along when metrics are wired.
void CampaignJournal::appendRecord(std::span<const std::byte> payload) {
    const obs::ScopedTimer timer{metrics_, "journal.append_seconds"};
    const std::uint64_t before = writer_.bytesWritten();
    writer_.append(payload);
    sink_->flush();
    if (metrics_ != nullptr) {
        metrics_->counter("journal.appends").add();
        metrics_->counter("journal.flushes").add();
        metrics_->counter("journal.bytes_written")
            .add(writer_.bytesWritten() - before);
    }
}

void CampaignJournal::writeHeader(const CampaignHeader& header) {
    AIO_EXPECTS(!headerWritten_, "journal header already written");
    ByteWriter w;
    encodeHeader(w, header);
    appendRecord(w.bytes());
    headerWritten_ = true;
}

void CampaignJournal::appendOutcome(const TaskOutcomeRecord& outcome) {
    AIO_EXPECTS(headerWritten_, "journal needs a header before records");
    ByteWriter w;
    encodeOutcome(w, outcome);
    appendRecord(w.bytes());
}

void CampaignJournal::appendCheckpoint(const CampaignCheckpoint& checkpoint) {
    AIO_EXPECTS(headerWritten_, "journal needs a header before records");
    const obs::ScopedTimer timer{metrics_, "journal.checkpoint_seconds"};
    ByteWriter w;
    encodeCheckpoint(w, checkpoint);
    appendRecord(w.bytes());
    if (metrics_ != nullptr) {
        metrics_->counter("journal.checkpoints").add();
    }
}

CampaignJournal::Replay
CampaignJournal::replay(std::span<const std::byte> bytes,
                        obs::MetricsRegistry* metrics) {
    const obs::ScopedTimer timer{metrics, "journal.replay_seconds"};
    Replay out;
    RecordReader reader{bytes};
    while (const auto payload = reader.next()) {
        ByteReader r{*payload};
        const std::uint8_t type = r.u8();
        if (!out.header && type != kHeaderRecord) {
            throw net::CorruptionError{
                "journal does not start with a header record"};
        }
        switch (type) {
        case kHeaderRecord: {
            if (out.header) {
                throw net::CorruptionError{"duplicate journal header"};
            }
            out.header = decodeHeader(r);
            requireDrained(r, "header");
            break;
        }
        case kOutcomeRecord: {
            (void)decodeOutcome(r);
            requireDrained(r, "outcome");
            ++out.outcomeRecords;
            break;
        }
        case kCheckpointRecord: {
            CampaignCheckpoint cp = decodeCheckpoint(r);
            requireDrained(r, "checkpoint");
            // Write-ahead invariant: a checkpoint's cursor must equal the
            // journal's starting cursor plus the outcome records actually
            // present before it. A mismatch means records were dropped,
            // duplicated or spliced — resuming would replay the wrong
            // suffix, so refuse.
            const std::uint64_t expected =
                out.header->resumedAtOutcome + out.outcomeRecords;
            if (cp.outcomesApplied != expected) {
                throw net::CorruptionError{
                    "checkpoint cursor " +
                    std::to_string(cp.outcomesApplied) +
                    " contradicts the " + std::to_string(expected) +
                    " settlements journaled before it"};
            }
            out.checkpoint = std::move(cp);
            break;
        }
        default:
            throw net::CorruptionError{"unknown journal record type " +
                                       std::to_string(type)};
        }
    }
    out.tornTail = reader.tail() == TailStatus::Torn;
    if (metrics != nullptr) {
        metrics->counter("journal.replay.records")
            .add(out.outcomeRecords);
        metrics->counter("journal.replay.checkpoints")
            .add(out.checkpoint ? 1 : 0);
        metrics->counter("journal.replay.torn_tails")
            .add(out.tornTail ? 1 : 0);
        metrics->counter("journal.replays").add();
    }
    return out;
}

} // namespace aio::persist
