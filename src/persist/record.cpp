#include "persist/record.hpp"

#include <string>

#include "netbase/crc32c.hpp"

namespace aio::persist {

namespace {

constexpr std::size_t kHeaderBytes = 12;

std::uint32_t readU32(std::span<const std::byte> bytes, std::size_t at) {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
        value |= static_cast<std::uint32_t>(bytes[at + i])
                 << (8 * i);
    }
    return value;
}

void putU32(std::byte* out, std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
        out[i] = static_cast<std::byte>((value >> (8 * i)) & 0xFFU);
    }
}

} // namespace

void CrashingSink::flush() {
    if (remaining_ == 0) {
        // The bytes landed in a buffer; the power died before the flush
        // made them durable.
        throw SinkFailure{"sink failed before flush after " +
                          std::to_string(accepted_) +
                          " bytes (crash injection)"};
    }
    inner_->flush();
}

void CrashingSink::append(std::span<const std::byte> bytes) {
    if (bytes.size() <= remaining_) {
        inner_->append(bytes);
        remaining_ -= bytes.size();
        accepted_ += bytes.size();
        return;
    }
    // The power died mid-write: a prefix lands, the rest never will.
    inner_->append(bytes.first(remaining_));
    accepted_ += remaining_;
    remaining_ = 0;
    throw SinkFailure{"sink failed after " + std::to_string(accepted_) +
                      " bytes (crash injection)"};
}

std::uint64_t RecordWriter::append(std::span<const std::byte> payload) {
    const auto length = static_cast<std::uint32_t>(payload.size());
    std::byte header[kHeaderBytes];
    putU32(header, length);
    const std::uint32_t lenCrc =
        net::crc32c(std::span<const std::byte>{header, 4});
    putU32(header + 4, lenCrc);
    putU32(header + 8, net::crc32c(payload));
    // One append per record: a crash inside it leaves a strict prefix of
    // this record and never touches earlier ones.
    std::vector<std::byte> frame;
    frame.reserve(kHeaderBytes + payload.size());
    frame.insert(frame.end(), header, header + kHeaderBytes);
    frame.insert(frame.end(), payload.begin(), payload.end());
    sink_->append(frame);
    bytes_ += frame.size();
    return records_++;
}

std::optional<std::span<const std::byte>> RecordReader::next() {
    if (done_) {
        return std::nullopt;
    }
    const std::size_t remaining = journal_.size() - offset_;
    if (remaining == 0) {
        done_ = true;
        tail_ = TailStatus::Clean;
        return std::nullopt;
    }
    if (remaining < kHeaderBytes) {
        // Not even a whole header landed: a torn append, not damage.
        done_ = true;
        tail_ = TailStatus::Torn;
        return std::nullopt;
    }
    const std::uint32_t length = readU32(journal_, offset_);
    const std::uint32_t lenCrc = readU32(journal_, offset_ + 4);
    const std::uint32_t payloadCrc = readU32(journal_, offset_ + 8);
    if (net::crc32c(journal_.subspan(offset_, 4)) != lenCrc) {
        throw net::CorruptionError{
            "record length checksum mismatch at offset " +
            std::to_string(offset_)};
    }
    if (remaining - kHeaderBytes < length) {
        // The length is authentic (its CRC passed) but the payload never
        // finished landing: the classic power-cut tail.
        done_ = true;
        tail_ = TailStatus::Torn;
        return std::nullopt;
    }
    const auto payload = journal_.subspan(offset_ + kHeaderBytes, length);
    if (net::crc32c(payload) != payloadCrc) {
        throw net::CorruptionError{
            "record payload checksum mismatch at offset " +
            std::to_string(offset_)};
    }
    offset_ += kHeaderBytes + length;
    return payload;
}

ScanResult scanRecords(std::span<const std::byte> journal) {
    ScanResult out;
    RecordReader reader{journal};
    while (const auto payload = reader.next()) {
        out.payloads.push_back(*payload);
        out.boundaries.push_back(reader.offset());
    }
    out.tail = reader.tail();
    return out;
}

} // namespace aio::persist
