#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/error.hpp"

namespace aio::persist {

/// Raised by a sink whose storage died mid-append — the persist layer's
/// stand-in for the power cut killing the coordinator node. Deliberately
/// NOT a CorruptionError: a failed append leaves a torn tail, which
/// replay truncates and resume survives.
class SinkFailure : public net::AioError {
public:
    explicit SinkFailure(const std::string& what) : AioError(what) {}
};

/// Append-only byte destination the record codec writes through. The
/// contract mirrors a crashing O_APPEND file: an append either lands in
/// full or lands a *prefix* and throws — bytes are never reordered or
/// interleaved with garbage.
///
/// An append may land in a userspace/OS buffer; only flush() makes the
/// accepted bytes durable (fsync in file terms). A crash between append
/// and flush loses the unflushed suffix, so durability claims — "this
/// checkpoint survives a power cut" — are only honest after a flush. The
/// default is a no-op for sinks with no buffering layer (MemorySink).
class ByteSink {
public:
    virtual ~ByteSink() = default;
    virtual void append(std::span<const std::byte> bytes) = 0;
    virtual void flush() {}
};

/// In-memory sink; the tests' and examples' journal "file".
class MemorySink final : public ByteSink {
public:
    void append(std::span<const std::byte> bytes) override {
        data_.insert(data_.end(), bytes.begin(), bytes.end());
    }

    [[nodiscard]] std::span<const std::byte> bytes() const { return data_; }
    [[nodiscard]] std::size_t size() const { return data_.size(); }
    void clear() { data_.clear(); }

private:
    std::vector<std::byte> data_;
};

/// Buffered fake sink modelling an OS page cache: appends land in a
/// pending buffer that a crash would wipe; flush() moves the pending
/// bytes to durable storage. The regression harness for the journal's
/// durability contract — a journal layer that never flushes leaves
/// durable() empty no matter how much it appended.
class BufferingSink final : public ByteSink {
public:
    void append(std::span<const std::byte> bytes) override {
        pending_.insert(pending_.end(), bytes.begin(), bytes.end());
    }

    void flush() override {
        durable_.insert(durable_.end(), pending_.begin(), pending_.end());
        pending_.clear();
    }

    /// What survives a crash: everything flushed so far, nothing after.
    [[nodiscard]] std::span<const std::byte> durable() const {
        return durable_;
    }
    [[nodiscard]] std::size_t pendingBytes() const {
        return pending_.size();
    }

private:
    std::vector<std::byte> pending_;
    std::vector<std::byte> durable_;
};

/// Deterministic crash injection: forwards appends to `inner` until
/// `failAfterBytes` total bytes have been accepted, then writes whatever
/// prefix still fits and throws SinkFailure. When an append exactly
/// exhausts the budget, the append itself succeeds and the *next flush*
/// throws instead — the crash-between-write-and-flush case, where the
/// record reached a buffer but never became durable. Sweeping
/// `failAfterBytes` over every record boundary of a journal is how the
/// crash harness proves resume works from *any* interruption point —
/// including torn mid-record tails and unflushed complete records.
class CrashingSink final : public ByteSink {
public:
    CrashingSink(ByteSink& inner, std::size_t failAfterBytes)
        : inner_(&inner), remaining_(failAfterBytes) {}

    void append(std::span<const std::byte> bytes) override;

    /// Throws SinkFailure once the byte budget is spent (the bytes were
    /// written, the process died before they were made durable);
    /// otherwise forwards to the inner sink.
    void flush() override;

    /// Bytes accepted so far (never exceeds the construction budget).
    [[nodiscard]] std::size_t accepted() const { return accepted_; }

private:
    ByteSink* inner_;
    std::size_t remaining_;
    std::size_t accepted_ = 0;
};

/// Length-prefixed, CRC32C-checksummed record framing.
///
/// Wire format per record (all little-endian):
///
///     u32 payloadLen
///     u32 lenCrc      = crc32c(payloadLen bytes)
///     u32 payloadCrc  = crc32c(payload)
///     payload[payloadLen]
///
/// The separate length CRC is what makes torn-tail vs corruption
/// classification exact: a length field that fails its own CRC is
/// corruption, while a length field that passes but promises more bytes
/// than the file holds is a truncated append.
class RecordWriter {
public:
    explicit RecordWriter(ByteSink& sink) : sink_(&sink) {}

    /// Appends one record. Returns the record's index in the stream.
    std::uint64_t append(std::span<const std::byte> payload);

    [[nodiscard]] std::uint64_t recordCount() const { return records_; }
    [[nodiscard]] std::uint64_t bytesWritten() const { return bytes_; }

private:
    ByteSink* sink_;
    std::uint64_t records_ = 0;
    std::uint64_t bytes_ = 0;
};

/// What the end of a journal looked like once reading stopped.
enum class TailStatus {
    Clean, ///< the journal ends exactly on a record boundary
    Torn   ///< the final record is incomplete — the power-cut signature
};

/// Iterates the records of a byte range. `next()` yields payload views in
/// order; a std::nullopt return means end-of-journal, after which
/// `tail()` says whether the end was clean or torn. Mid-stream damage —
/// a CRC mismatch on either the length field or the payload — throws
/// net::CorruptionError instead, because records after damaged bytes
/// cannot be trusted to be what the writer wrote.
class RecordReader {
public:
    explicit RecordReader(std::span<const std::byte> journal)
        : journal_(journal) {}

    [[nodiscard]] std::optional<std::span<const std::byte>> next();

    /// Valid once next() has returned std::nullopt.
    [[nodiscard]] TailStatus tail() const { return tail_; }

    /// Byte offset just past the last fully-consumed record: always a
    /// record boundary, which is exactly where a torn tail is truncated
    /// to and what the crash sweep enumerates.
    [[nodiscard]] std::size_t offset() const { return offset_; }

private:
    std::span<const std::byte> journal_;
    std::size_t offset_ = 0;
    TailStatus tail_ = TailStatus::Clean;
    bool done_ = false;
};

/// Convenience full scan: every intact payload plus the boundary offsets
/// *after* each record and the tail classification. Throws
/// net::CorruptionError exactly when iterating with RecordReader would.
struct ScanResult {
    std::vector<std::span<const std::byte>> payloads;
    std::vector<std::size_t> boundaries; ///< offset after record i
    TailStatus tail = TailStatus::Clean;
};

[[nodiscard]] ScanResult scanRecords(std::span<const std::byte> journal);

} // namespace aio::persist
