#pragma once

#include <array>
#include <cstdint>

namespace aio::persist {

/// First record of every campaign journal. The digests bind the journal
/// to one exact (task plan, fault plan, supervisor config) triple so a
/// resume against the wrong campaign is refused instead of silently
/// producing a franken-result; the initial Rng state makes a journal that
/// crashed before its first checkpoint still resumable from scratch.
struct CampaignHeader {
    std::uint32_t formatVersion = 1;
    std::uint64_t planDigest = 0;   ///< tasks + fault plan
    std::uint64_t configDigest = 0; ///< SupervisorConfig fields
    std::array<std::uint64_t, 4> initialRngState{};
    std::uint64_t taskCount = 0;
    std::uint64_t probeCount = 0;
    std::uint32_t checkpointInterval = 0;
    /// Settlements already applied when this journal started: 0 for a
    /// fresh campaign, the restored cursor for a continuation journal
    /// written by a resume. Lets replay cross-check every checkpoint
    /// against the outcome records actually present before it.
    std::uint64_t resumedAtOutcome = 0;

    [[nodiscard]] bool operator==(const CampaignHeader&) const = default;
};

/// How one queue settlement ended. Retried/Reassigned mean the task went
/// back into the pending queue; Completed/Abandoned retire it.
enum class TaskOutcomeKind : std::uint8_t {
    Completed = 0,
    Retried = 1,
    Reassigned = 2,
    Abandoned = 3,
};

inline constexpr std::uint8_t kNoFaultClass = 0xFF;

/// One write-ahead record per settlement: which task, what happened,
/// which fault class drove it (kNoFaultClass for clean completions) and
/// at what campaign hour. Deliberately small — full state travels in
/// checkpoints; outcomes give the crash sweep record-level granularity
/// and give operators a progress/audit trail.
struct TaskOutcomeRecord {
    std::uint64_t taskIdx = 0;
    TaskOutcomeKind kind = TaskOutcomeKind::Completed;
    std::uint8_t faultClass = kNoFaultClass;
    double clockHour = 0.0;

    [[nodiscard]] bool operator==(const TaskOutcomeRecord&) const = default;
};

/// One entry of the supervisor's pending retry/reassignment queue. The
/// (readyHour, seq) pair is a strict total order, so rebuilding a binary
/// heap from these in any internal arrangement pops identically.
struct PendingTask {
    double readyHour = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t taskIdx = 0;
    std::int32_t attempt = 0;
    std::int32_t reassignments = 0;

    [[nodiscard]] bool operator==(const PendingTask&) const = default;
};

/// Where a task currently runs (reassignment rewrites both fields).
struct TaskAssignment {
    std::uint64_t probeIndex = 0;
    std::uint64_t srcAs = 0;

    [[nodiscard]] bool operator==(const TaskAssignment&) const = default;
};

/// One probe's billing state: the TariffMeter consumption sums plus the
/// sticky bundle-dry flag.
struct ProbeMeterState {
    double peakMb = 0.0;
    double offPeakMb = 0.0;
    bool exhausted = false;

    [[nodiscard]] bool operator==(const ProbeMeterState&) const = default;
};

} // namespace aio::persist
