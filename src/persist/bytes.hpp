#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/error.hpp"

namespace aio::persist {

/// Append-only little-endian encoder for record payloads. All multi-byte
/// integers are packed explicitly byte-by-byte so journals are portable
/// across hosts; doubles travel as their IEEE-754 bit pattern, which is
/// what makes checkpointed clocks and budgets replay *exactly*.
class ByteWriter {
public:
    void u8(std::uint8_t value) {
        buf_.push_back(static_cast<std::byte>(value));
    }

    void u32(std::uint32_t value) {
        for (int shift = 0; shift < 32; shift += 8) {
            buf_.push_back(static_cast<std::byte>((value >> shift) & 0xFFU));
        }
    }

    void u64(std::uint64_t value) {
        for (int shift = 0; shift < 64; shift += 8) {
            buf_.push_back(static_cast<std::byte>((value >> shift) & 0xFFU));
        }
    }

    void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }

    void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

    void boolean(bool value) { u8(value ? 1 : 0); }

    void str(std::string_view value) {
        u32(static_cast<std::uint32_t>(value.size()));
        for (const char c : value) {
            buf_.push_back(static_cast<std::byte>(c));
        }
    }

    void raw(std::span<const std::byte> data) {
        buf_.insert(buf_.end(), data.begin(), data.end());
    }

    [[nodiscard]] std::span<const std::byte> bytes() const { return buf_; }
    [[nodiscard]] std::size_t size() const { return buf_.size(); }

private:
    std::vector<std::byte> buf_;
};

/// Matching decoder. Every overrun or malformed field throws
/// net::CorruptionError — by the time a ByteReader runs, the record's CRC
/// has already passed, so a decode failure means the *writer* and reader
/// disagree about the format, which resume must refuse to paper over.
class ByteReader {
public:
    explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

    [[nodiscard]] std::uint8_t u8() {
        need(1);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    [[nodiscard]] std::uint32_t u32() {
        need(4);
        std::uint32_t value = 0;
        for (int shift = 0; shift < 32; shift += 8) {
            value |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
        }
        return value;
    }

    [[nodiscard]] std::uint64_t u64() {
        need(8);
        std::uint64_t value = 0;
        for (int shift = 0; shift < 64; shift += 8) {
            value |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
        }
        return value;
    }

    [[nodiscard]] std::int32_t i32() {
        return static_cast<std::int32_t>(u32());
    }

    [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

    [[nodiscard]] bool boolean() {
        const std::uint8_t value = u8();
        if (value > 1) {
            throw net::CorruptionError{"boolean field holds " +
                                       std::to_string(value)};
        }
        return value == 1;
    }

    [[nodiscard]] std::string str() {
        const std::uint32_t length = u32();
        need(length);
        std::string out;
        out.reserve(length);
        for (std::uint32_t i = 0; i < length; ++i) {
            out.push_back(static_cast<char>(data_[pos_++]));
        }
        return out;
    }

    [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }
    [[nodiscard]] std::size_t remaining() const {
        return data_.size() - pos_;
    }

private:
    void need(std::size_t count) const {
        if (data_.size() - pos_ < count) {
            throw net::CorruptionError{
                "record payload truncated: wanted " + std::to_string(count) +
                " more bytes, have " + std::to_string(data_.size() - pos_)};
        }
    }

    std::span<const std::byte> data_;
    std::size_t pos_ = 0;
};

/// FNV-1a 64-bit digest, used to fingerprint campaign plans and configs
/// in journal headers. Not cryptographic — it only needs to make "resumed
/// against a different campaign" overwhelmingly detectable.
[[nodiscard]] inline std::uint64_t fnv1a64(std::span<const std::byte> data) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const std::byte b : data) {
        hash ^= static_cast<std::uint64_t>(b);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace aio::persist
