#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/observatory.hpp"
#include "obs/metrics.hpp"
#include "persist/record.hpp"
#include "persist/state.hpp"

namespace aio::persist {

/// Everything needed to continue a campaign from between two settlements:
/// the partial CampaignResult (including its DegradationReport), the Rng
/// mid-stream, the pending queue, the per-task assignments and the
/// per-probe meters. Restoring this and re-running the deterministic loop
/// reproduces the uninterrupted run byte for byte.
struct CampaignCheckpoint {
    std::uint64_t outcomesApplied = 0;
    std::uint64_t nextSeq = 0;
    std::array<std::uint64_t, 4> rngState{};
    core::CampaignResult result;
    std::vector<TaskAssignment> assignments;
    std::vector<PendingTask> pending;
    std::vector<ProbeMeterState> meters;

    [[nodiscard]] bool operator==(const CampaignCheckpoint&) const = default;
};

/// Write-ahead journal for one supervised campaign, layered on the
/// checksummed record codec: a header record, then outcome records with a
/// checkpoint every `checkpointInterval` settlements. Replay takes the
/// last intact checkpoint, truncates a torn tail, and cross-checks the
/// outcome-record count against every checkpoint so dropped or duplicated
/// records surface as CorruptionError rather than a silently wrong resume.
class CampaignJournal {
public:
    /// `metrics` (optional, not owned) receives append/checkpoint
    /// latency histograms and byte/record counters.
    explicit CampaignJournal(ByteSink& sink,
                             obs::MetricsRegistry* metrics = nullptr)
        : writer_(sink), sink_(&sink), metrics_(metrics) {}

    /// Every record append is followed by a sink flush before the call
    /// returns: the durability the supervisor reports (a checkpoint that
    /// "survives a crash") is only true once the bytes left the buffering
    /// layer, and a WAL that lets records linger unflushed silently
    /// violates the resume contract on real storage.
    void writeHeader(const CampaignHeader& header);
    void appendOutcome(const TaskOutcomeRecord& outcome);
    void appendCheckpoint(const CampaignCheckpoint& checkpoint);

    [[nodiscard]] std::uint64_t recordCount() const {
        return writer_.recordCount();
    }

    struct Replay {
        /// Absent when the journal is empty or torn before the header
        /// completed — nothing was durably started, begin from scratch.
        std::optional<CampaignHeader> header;
        /// Last intact checkpoint, if any survived.
        std::optional<CampaignCheckpoint> checkpoint;
        /// Outcome records seen in total (including before checkpoints).
        std::uint64_t outcomeRecords = 0;
        bool tornTail = false;
    };

    /// Reads a journal byte range back. Torn tails are expected and
    /// reported via `tornTail`; anything structurally wrong — CRC
    /// mismatch, unknown record type, a second header, a checkpoint that
    /// contradicts the outcome count — throws net::CorruptionError.
    /// `metrics` (optional) receives replayed record/checkpoint counts
    /// and the torn-tail counter.
    [[nodiscard]] static Replay
    replay(std::span<const std::byte> bytes,
           obs::MetricsRegistry* metrics = nullptr);

private:
    void appendRecord(std::span<const std::byte> payload);

    RecordWriter writer_;
    ByteSink* sink_;
    obs::MetricsRegistry* metrics_;
    bool headerWritten_ = false;
};

} // namespace aio::persist
