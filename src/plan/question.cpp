#include "plan/question.hpp"

#include <cmath>

#include "netbase/region.hpp"

namespace aio::plan {

std::string_view questionKindName(QuestionKind kind) {
    switch (kind) {
    case QuestionKind::ContentLocality: return "content-locality";
    case QuestionKind::DetourRate: return "detour-rate";
    case QuestionKind::OutageExposure: return "outage-exposure";
    case QuestionKind::IxpCoverage: return "ixp-coverage";
    }
    return "?";
}

net::Expected<QuestionKind> questionKindFromName(std::string_view name) {
    for (const QuestionKind kind :
         {QuestionKind::ContentLocality, QuestionKind::DetourRate,
          QuestionKind::OutageExposure, QuestionKind::IxpCoverage}) {
        if (name == questionKindName(kind)) {
            return kind;
        }
    }
    return net::Error::parse(std::string{"unknown question kind '"} +
                             std::string{name} + "'");
}

net::Expected<void>
MeasurementQuestion::validate(const core::Substrate& substrate) const {
    using V = net::Expected<void>;
    if (name.empty()) {
        return V{net::Error::precondition("question needs a name")};
    }
    const net::CountryTable& world = net::CountryTable::world();
    for (const std::string& iso2 : countries) {
        if (!world.contains(iso2)) {
            return V{net::Error::notFound(
                std::string{"question '"} + name + "': unknown country '" +
                iso2 + "'")};
        }
        if (!net::isAfrican(world.byCode(iso2).region)) {
            return V{net::Error::precondition(
                std::string{"question '"} + name + "': country '" + iso2 +
                "' is outside the observatory's African scope")};
        }
    }
    if (!(std::isfinite(budgetUsd) && budgetUsd > 0.0)) {
        return V{net::Error::precondition(
            std::string{"question '"} + name +
            "': budget must be positive and finite")};
    }
    switch (kind) {
    case QuestionKind::ContentLocality:
        if (topSites < 1) {
            return V{net::Error::precondition(
                std::string{"question '"} + name +
                "': topSites must be >= 1")};
        }
        break;
    case QuestionKind::DetourRate:
        if (samplePairs < 1) {
            return V{net::Error::precondition(
                std::string{"question '"} + name +
                "': samplePairs must be >= 1")};
        }
        break;
    case QuestionKind::OutageExposure: {
        if (corridor.empty()) {
            return V{net::Error::precondition(
                std::string{"question '"} + name +
                "': outage-exposure needs a non-empty corridor")};
        }
        if (!(std::isfinite(repairDays) && repairDays > 0.0)) {
            return V{net::Error::precondition(
                std::string{"question '"} + name +
                "': repairDays must be positive and finite")};
        }
        // Resolve every corridor cable now: a typo fails at plan time
        // with the cable named, not mid-sweep.
        if (auto cuts = core::canonicalCutSet(substrate.registry(),
                                              corridor);
            !cuts) {
            return V{cuts.error()};
        }
        break;
    }
    case QuestionKind::IxpCoverage:
        break;
    }
    return V::ok();
}

} // namespace aio::plan
