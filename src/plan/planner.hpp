#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/budget.hpp"
#include "core/setcover.hpp"
#include "core/substrate.hpp"
#include "exec/cancel.hpp"
#include "netbase/expected.hpp"
#include "plan/question.hpp"
#include "sweep/scenario_sweep.hpp"

namespace aio::plan {

/// What one planned unit of work is, at the level the executors speak.
enum class TaskKind : std::uint8_t {
    /// Audit a country's top sites' hosting classes (ContentLocality).
    ContentAudit,
    /// Sample eyeball pairs out of one country and classify their routes
    /// (DetourRate).
    DetourSample,
    /// Evaluate one ScenarioSpec through the sweep engine
    /// (OutageExposure).
    ScenarioSweep,
    /// Traceroute from one chosen vantage toward its exchanges
    /// (IxpCoverage).
    VantageProbe,
};

[[nodiscard]] std::string_view taskKindName(TaskKind kind);

/// One schedulable unit of a compiled campaign. Everything the executor
/// needs is in the task — execution is a pure function of (substrate,
/// task), never of batch order or thread count.
struct PlannedTask {
    std::string id; ///< "<question>/<kind>/<scope>" — keys the rng streams
    TaskKind kind = TaskKind::ContentAudit;
    std::string country;          ///< scope country (empty for sweeps)
    topo::AsIndex vantage = 0;    ///< serving vantage AS
    std::size_t samples = 0;      ///< pairs sampled / sites audited
    double payloadMb = 0.0;       ///< application-level Mb budgeted
    double utility = 1.0;         ///< scientific value (budget ordering)
    /// The budget scheduler elected to run this task off-peak; estimate
    /// and execution bill under the same tariff window, so the two can
    /// never disagree about the discount.
    bool offPeak = false;
    /// Set at plan time when the snapshot's oracle cache already holds
    /// this task's degraded routing state (digest peek): the answer is
    /// computable from the snapshot, so the task bills the cheap
    /// answer-retrieval cost instead of fresh computation.
    bool prunedByCache = false;
    /// ScenarioSweep payload.
    std::optional<core::ScenarioSpec> scenario;

    [[nodiscard]] bool operator==(const PlannedTask&) const = default;
};

/// How much of what was asked the plan will actually answer.
struct CoverageEstimate {
    std::size_t countriesRequested = 0;
    std::size_t countriesPlanned = 0; ///< scheduled inside the budget
    std::size_t ixpsCovered = 0;      ///< by the chosen vantage set
    std::size_t ixpsTotal = 0;

    [[nodiscard]] double countryShare() const {
        return countriesRequested == 0
                   ? 1.0
                   : static_cast<double>(countriesPlanned) /
                         static_cast<double>(countriesRequested);
    }
    [[nodiscard]] double ixpShare() const {
        return ixpsTotal == 0 ? 1.0
                              : static_cast<double>(ixpsCovered) /
                                    static_cast<double>(ixpsTotal);
    }

    [[nodiscard]] bool operator==(const CoverageEstimate&) const = default;
};

/// The pre-execution promise: what the campaign will cost and cover.
/// `wireMb` accounts packet overhead (the §7.1 lesson — bill what the
/// wire carries, not what the application sends); `maxWireMb` adds the
/// planner's stated retransmission-jitter bound, and execution verifies
/// actual billed megabytes always land in [wireMb, maxWireMb].
struct CampaignEstimate {
    double wireMb = 0.0;
    double maxWireMb = 0.0;
    double costUsd = 0.0; ///< wireMb under the planner's pricing model
    std::size_t tasks = 0;
    std::size_t prunedTasks = 0; ///< answered from the snapshot's cache
    CoverageEstimate coverage;

    [[nodiscard]] bool operator==(const CampaignEstimate&) const = default;
};

/// A compiled campaign: vantages, budget-ordered tasks, and the estimate.
/// Deterministic — a pure value of (question, substrate, PlannerConfig),
/// independent of thread count and wall clock; digest() is the byte-level
/// identity the determinism tests compare.
struct CampaignPlan {
    MeasurementQuestion question;
    std::vector<topo::AsIndex> vantages; ///< greedy set-cover output
    std::vector<PlannedTask> tasks;      ///< execution order
    /// Tasks the budget could not fit (kept for coverage accounting and
    /// the "shrink the request" conversation with the tenant).
    std::vector<PlannedTask> dropped;
    CampaignEstimate estimate;

    [[nodiscard]] bool operator==(const CampaignPlan&) const = default;

    /// FNV-1a over the canonical byte encoding of every field above.
    [[nodiscard]] std::uint64_t digest() const;
};

/// Per-country answer rows plus the scope-wide headline number. What
/// `value` means depends on the question kind: African-hosted content
/// share, detour share, page-load loss, or IXPs covered.
struct CampaignAnswer {
    struct Row {
        std::string country;
        double value = 0.0;
        std::size_t samples = 0;

        [[nodiscard]] bool operator==(const Row&) const = default;
    };
    std::vector<Row> rows; ///< sorted by country code
    double overall = 0.0;

    [[nodiscard]] bool operator==(const CampaignAnswer&) const = default;
};

/// The executed, billed outcome, with the estimate held to account.
struct CampaignReport {
    CampaignAnswer answer;
    double actualWireMb = 0.0;  ///< megabytes the wire actually carried
    double actualCostUsd = 0.0; ///< under the planner's pricing model
    std::size_t tasksRun = 0;
    std::size_t tasksPruned = 0;
    /// actual/estimate - 1; non-negative, and at most the planner's
    /// retransmission-jitter bound when `withinBound` holds.
    double estimateErrorShare = 0.0;
    /// actualWireMb landed inside [estimate.wireMb, estimate.maxWireMb].
    bool withinBound = false;

    [[nodiscard]] bool operator==(const CampaignReport&) const = default;
};

/// Cost model and knobs of the planner. Costs are application-level
/// megabytes; the packet-overhead factor and the execution-time
/// retransmission jitter ride on top, exactly as the budget scheduler
/// accounts probe traffic.
struct PlannerConfig {
    /// Mb per sampled traceroute pair (DetourSample / VantageProbe).
    double traceMbPerSample = 0.004;
    /// Mb per audited site (ContentAudit).
    double auditMbPerSite = 0.002;
    /// Mb to retrieve one scenario's freshly computed what-if answer.
    double sweepAnswerMb = 0.25;
    /// Mb to retrieve a scenario answer already resident in the
    /// snapshot's oracle cache (the digest-peek prune).
    double cachedAnswerMb = 0.01;
    /// Stated upper bound on execution-time retransmission jitter: the
    /// wire may carry up to this share more than the overhead-adjusted
    /// estimate, never less. The estimate-vs-actual harness pins it.
    double retransJitterMax = 0.10;
    /// Pricing the estimate (and the executed campaign) is billed under.
    core::PricingModel pricing{};
    /// Forwarded to the budget scheduler (packet accounting on, reuse
    /// on, off-peak on — the §7.1 defaults).
    core::SchedulerOptions scheduler{};

    /// Throws net::PreconditionError on non-finite/negative costs, a
    /// jitter bound outside [0, 1), or invalid pricing.
    void validate() const;
};

struct ExecuteOptions {
    /// Optional cancellation/deadline token (not owned): checked between
    /// tasks and propagated into the sweep engine, the service's
    /// deadline-bounded-answer path.
    const exec::CancelToken* cancel = nullptr;
};

/// The question→campaign compiler (ROADMAP's front door): resolves the
/// question's scope, picks vantages by greedy IXP set cover, prices every
/// task, prunes work already computable from the substrate's oracle
/// cache (digest peeks — nothing is built at plan time), orders tasks
/// budget-aware through core::BudgetScheduler, and emits the
/// cost/coverage estimate *before* anything executes. execute() lowers
/// the plan onto the existing engines (ScenarioSweepEngine for what-if
/// tasks, oracle/path sampling for measurement tasks) and verifies the
/// estimate against actual billed megabytes.
class CampaignPlanner {
public:
    /// `substrate` is borrowed and must outlive the planner.
    explicit CampaignPlanner(const core::Substrate& substrate,
                             PlannerConfig config = {});

    /// Compiles the question into a plan, or returns the typed
    /// validation failure as a value.
    [[nodiscard]] net::Expected<CampaignPlan>
    compile(const MeasurementQuestion& question) const;

    /// Executes a compiled plan. Deterministic: a pure function of
    /// (substrate, plan) — per-task rng streams are keyed by task id, so
    /// neither thread count nor execution interleaving can shift a
    /// sample. Raises net::CancelledError when the token fires.
    [[nodiscard]] CampaignReport
    execute(const CampaignPlan& plan, const ExecuteOptions& options = {}) const;

    [[nodiscard]] const core::Substrate& substrate() const {
        return *substrate_;
    }
    [[nodiscard]] const PlannerConfig& config() const { return config_; }

private:
    struct Scope {
        std::vector<std::string> countries; ///< sorted ISO codes
        core::SetCoverResult cover;
    };

    [[nodiscard]] net::Expected<Scope>
    resolveScope(const MeasurementQuestion& question) const;
    [[nodiscard]] std::vector<PlannedTask>
    enumerateTasks(const MeasurementQuestion& question,
                   const Scope& scope) const;
    [[nodiscard]] topo::AsIndex
    vantageFor(std::string_view country,
               const std::vector<topo::AsIndex>& chosen) const;
    [[nodiscard]] double taskPayloadMb(const PlannedTask& task) const;

    const core::Substrate* substrate_;
    PlannerConfig config_;
};

} // namespace aio::plan
