#pragma once

#include <string>
#include <string_view>

#include "netbase/expected.hpp"
#include "plan/question.hpp"
#include "scenario/catalog.hpp"

namespace aio::plan {

/// Line-oriented text front end for the two config values tenants ship to
/// the observatory: MeasurementQuestions (the Plan/Estimate workload
/// payload) and scenario catalogs (PR 9's declarative what-if templates).
///
/// Format: one `keyword [value]` pair per line, where the value runs to
/// end of line (names may contain spaces); lines whose first non-blank
/// character is `#` are comments (values may contain `#`); blocks
/// open with their keyword (`question`, `catalog`, `cascade`, `phase`,
/// `buildout`, `add-cable`, `sampled`) and close with `end`. Repeated
/// keywords (`country`, `cable`, `cut`, `landing`, ...) append. Doubles
/// render with max_digits10 precision, so parse(render(x)) == x holds
/// bit-for-bit — the property the round-trip suite pins.
///
/// Every parse failure is a typed net::Error (Parse kind) carrying the
/// 1-based line number and the offending field, e.g.
/// `line 7: field 'top-sites': expected an integer, got 'ten'`.

/// Parses one `question ... end` block.
[[nodiscard]] net::Expected<MeasurementQuestion>
parseQuestion(std::string_view text);

/// Renders a question; parseQuestion(renderQuestion(q)) == q for any
/// representable question (names must not start/end with whitespace or
/// contain newlines — rendering such a question returns a Parse error
/// rather than emitting text that cannot round-trip).
[[nodiscard]] net::Expected<std::string>
renderQuestion(const MeasurementQuestion& question);

/// Parses one `catalog ... end` block into a scenario catalog.
[[nodiscard]] net::Expected<scenario::ScenarioCatalog>
parseCatalog(std::string_view text);

/// Renders a catalog. Buildout templates carrying DNS/content/link-map
/// config overrides are not representable as text (the profile arrays
/// are code-level config) — rendering one returns a typed Parse error
/// naming the template instead of silently dropping the override.
[[nodiscard]] net::Expected<std::string>
renderCatalog(const scenario::ScenarioCatalog& catalog);

} // namespace aio::plan
