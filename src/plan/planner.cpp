#include "plan/planner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_set>

#include "netbase/error.hpp"
#include "netbase/region.hpp"
#include "persist/bytes.hpp"
#include "routing/detour.hpp"
#include "scenario/sampler.hpp"

namespace aio::plan {

namespace {

[[nodiscard]] bool isEyeball(topo::AsType type) {
    return type == topo::AsType::AccessIsp ||
           type == topo::AsType::MobileOperator;
}

[[nodiscard]] std::vector<topo::AsIndex>
eyeballsInCountry(const topo::Topology& topology, std::string_view iso2) {
    std::vector<topo::AsIndex> out;
    for (const topo::AsIndex as : topology.asesInCountry(iso2)) {
        if (isEyeball(topology.as(as).type)) {
            out.push_back(as);
        }
    }
    return out;
}

/// Seed of one task's private rng streams: pure in (substrate seed, task
/// id), so neither execution order nor thread count can shift a draw.
[[nodiscard]] std::uint64_t taskSeed(const core::Substrate& substrate,
                                     std::string_view taskId) {
    return substrate.seed() ^ scenario::tagHash(taskId);
}

/// Stream tags of the per-task rng forks.
constexpr std::uint64_t kSampleStream = 1;
constexpr std::uint64_t kJitterStream = 2;

void writeTask(persist::ByteWriter& writer, const PlannedTask& task) {
    writer.str(task.id);
    writer.u8(static_cast<std::uint8_t>(task.kind));
    writer.str(task.country);
    writer.u64(static_cast<std::uint64_t>(task.vantage));
    writer.u64(static_cast<std::uint64_t>(task.samples));
    writer.f64(task.payloadMb);
    writer.f64(task.utility);
    writer.boolean(task.offPeak);
    writer.boolean(task.prunedByCache);
    writer.boolean(task.scenario.has_value());
    if (task.scenario) {
        const core::ScenarioSpec& spec = *task.scenario;
        writer.str(spec.name);
        writer.u8(static_cast<std::uint8_t>(spec.eventType));
        writer.u32(static_cast<std::uint32_t>(spec.cablesAdded.size()));
        writer.u32(static_cast<std::uint32_t>(spec.cutCables.size()));
        for (const std::string& cable : spec.cutCables) {
            writer.str(cable);
        }
        writer.u32(static_cast<std::uint32_t>(spec.countries.size()));
        for (const std::string& country : spec.countries) {
            writer.str(country);
        }
        writer.f64(spec.startDay);
        writer.f64(spec.repairDays);
        writer.boolean(spec.dnsOverride.has_value());
        writer.boolean(spec.contentOverride.has_value());
        writer.boolean(spec.linkMapOverride.has_value());
    }
}

} // namespace

std::string_view taskKindName(TaskKind kind) {
    switch (kind) {
    case TaskKind::ContentAudit: return "content-audit";
    case TaskKind::DetourSample: return "detour-sample";
    case TaskKind::ScenarioSweep: return "scenario-sweep";
    case TaskKind::VantageProbe: return "vantage-probe";
    }
    return "?";
}

void PlannerConfig::validate() const {
    const auto finitePositive = [](double value) {
        return std::isfinite(value) && value > 0.0;
    };
    AIO_EXPECTS(finitePositive(traceMbPerSample),
                "traceMbPerSample must be positive and finite");
    AIO_EXPECTS(finitePositive(auditMbPerSite),
                "auditMbPerSite must be positive and finite");
    AIO_EXPECTS(finitePositive(sweepAnswerMb),
                "sweepAnswerMb must be positive and finite");
    AIO_EXPECTS(finitePositive(cachedAnswerMb),
                "cachedAnswerMb must be positive and finite");
    AIO_EXPECTS(cachedAnswerMb <= sweepAnswerMb,
                "a cached answer cannot cost more than a fresh one");
    AIO_EXPECTS(std::isfinite(retransJitterMax) && retransJitterMax >= 0.0 &&
                    retransJitterMax < 1.0,
                "retransJitterMax must lie in [0, 1)");
    pricing.validate();
}

std::uint64_t CampaignPlan::digest() const {
    persist::ByteWriter writer;
    writer.str(question.name);
    writer.u8(static_cast<std::uint8_t>(question.kind));
    writer.u32(static_cast<std::uint32_t>(question.countries.size()));
    for (const std::string& country : question.countries) {
        writer.str(country);
    }
    writer.boolean(question.landlockedOnly);
    writer.i32(question.topSites);
    writer.u64(static_cast<std::uint64_t>(question.samplePairs));
    writer.u32(static_cast<std::uint32_t>(question.corridor.size()));
    for (const std::string& cable : question.corridor) {
        writer.str(cable);
    }
    writer.f64(question.repairDays);
    writer.f64(question.budgetUsd);

    writer.u32(static_cast<std::uint32_t>(vantages.size()));
    for (const topo::AsIndex as : vantages) {
        writer.u64(static_cast<std::uint64_t>(as));
    }
    writer.u32(static_cast<std::uint32_t>(tasks.size()));
    for (const PlannedTask& task : tasks) {
        writeTask(writer, task);
    }
    writer.u32(static_cast<std::uint32_t>(dropped.size()));
    for (const PlannedTask& task : dropped) {
        writeTask(writer, task);
    }

    writer.f64(estimate.wireMb);
    writer.f64(estimate.maxWireMb);
    writer.f64(estimate.costUsd);
    writer.u64(static_cast<std::uint64_t>(estimate.tasks));
    writer.u64(static_cast<std::uint64_t>(estimate.prunedTasks));
    writer.u64(static_cast<std::uint64_t>(estimate.coverage.countriesRequested));
    writer.u64(static_cast<std::uint64_t>(estimate.coverage.countriesPlanned));
    writer.u64(static_cast<std::uint64_t>(estimate.coverage.ixpsCovered));
    writer.u64(static_cast<std::uint64_t>(estimate.coverage.ixpsTotal));
    return persist::fnv1a64(writer.bytes());
}

CampaignPlanner::CampaignPlanner(const core::Substrate& substrate,
                                 PlannerConfig config)
    : substrate_(&substrate), config_(config) {
    config_.validate();
}

net::Expected<CampaignPlanner::Scope>
CampaignPlanner::resolveScope(const MeasurementQuestion& question) const {
    using E = net::Expected<Scope>;
    const topo::Topology& topology = substrate_->topology();
    const net::CountryTable& world = net::CountryTable::world();

    std::vector<std::string> countries;
    if (question.countries.empty()) {
        for (const net::Country* country : world.african()) {
            if (!topology.asesInCountry(country->iso2).empty()) {
                countries.emplace_back(country->iso2);
            }
        }
    } else {
        countries = question.countries;
    }
    std::ranges::sort(countries);
    countries.erase(std::unique(countries.begin(), countries.end()),
                    countries.end());
    if (question.landlockedOnly) {
        std::erase_if(countries, [&](const std::string& iso2) {
            return world.byCode(iso2).coastal;
        });
    }
    if (countries.empty()) {
        return E{net::Error::precondition(
            std::string{"question '"} + question.name +
            "': scope resolves to no countries")};
    }

    std::vector<topo::AsIndex> candidates;
    for (const std::string& iso2 : countries) {
        for (const topo::AsIndex as : eyeballsInCountry(topology, iso2)) {
            candidates.push_back(as);
        }
    }
    std::ranges::sort(candidates);
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    Scope scope;
    scope.countries = std::move(countries);
    scope.cover = core::VantageSelector{topology}.minimalIxpCover(candidates);
    return scope;
}

topo::AsIndex
CampaignPlanner::vantageFor(std::string_view country,
                            const std::vector<topo::AsIndex>& chosen) const {
    const topo::Topology& topology = substrate_->topology();
    for (const topo::AsIndex as : chosen) {
        if (topology.as(as).countryCode == country) {
            return as;
        }
    }
    const std::vector<topo::AsIndex> eyeballs =
        eyeballsInCountry(topology, country);
    if (!eyeballs.empty()) {
        return eyeballs.front();
    }
    if (!chosen.empty()) {
        return chosen.front();
    }
    return 0;
}

double CampaignPlanner::taskPayloadMb(const PlannedTask& task) const {
    switch (task.kind) {
    case TaskKind::ContentAudit:
        return config_.auditMbPerSite * static_cast<double>(task.samples);
    case TaskKind::DetourSample:
    case TaskKind::VantageProbe:
        return config_.traceMbPerSample * static_cast<double>(task.samples);
    case TaskKind::ScenarioSweep:
        return task.prunedByCache ? config_.cachedAnswerMb
                                  : config_.sweepAnswerMb;
    }
    return 0.0;
}

std::vector<PlannedTask>
CampaignPlanner::enumerateTasks(const MeasurementQuestion& question,
                                const Scope& scope) const {
    const topo::Topology& topology = substrate_->topology();
    std::vector<PlannedTask> tasks;

    // Per-kind base utilities. Each task then gets a small rank-decrement
    // so utilities are pairwise distinct: the budget scheduler's density
    // sort is not stable, and distinct keys keep the order a pure
    // function of the plan rather than of the sort implementation.
    constexpr double kCorridorUtility = 20.0;
    constexpr double kPerCableUtility = 10.0;
    constexpr double kPerCountryUtility = 8.0;
    constexpr double kProbeUtility = 6.0;

    switch (question.kind) {
    case QuestionKind::ContentLocality:
        for (const std::string& iso2 : scope.countries) {
            const std::size_t available =
                substrate_->catalog().sitesFor(iso2).size();
            const std::size_t samples =
                std::min<std::size_t>(available,
                                      static_cast<std::size_t>(
                                          question.topSites));
            if (samples == 0) {
                continue; // no catalog for this country: honest coverage gap
            }
            PlannedTask task;
            task.id = question.name + "/audit/" + iso2;
            task.kind = TaskKind::ContentAudit;
            task.country = iso2;
            task.vantage = vantageFor(iso2, scope.cover.chosenAses);
            task.samples = samples;
            task.utility = kPerCountryUtility;
            tasks.push_back(std::move(task));
        }
        break;
    case QuestionKind::DetourRate:
        for (const std::string& iso2 : scope.countries) {
            if (eyeballsInCountry(topology, iso2).empty()) {
                continue; // nowhere to sample from
            }
            PlannedTask task;
            task.id = question.name + "/detour/" + iso2;
            task.kind = TaskKind::DetourSample;
            task.country = iso2;
            task.vantage = vantageFor(iso2, scope.cover.chosenAses);
            task.samples = question.samplePairs;
            task.utility = kPerCountryUtility;
            tasks.push_back(std::move(task));
        }
        break;
    case QuestionKind::OutageExposure: {
        // The whole-corridor cut answers the headline question; the
        // per-cable cuts attribute it (skipped for a 1-cable corridor,
        // where they would duplicate the corridor task).
        PlannedTask corridor;
        corridor.id = question.name + "/sweep/corridor";
        corridor.kind = TaskKind::ScenarioSweep;
        corridor.samples = question.corridor.size();
        corridor.utility = kCorridorUtility;
        core::ScenarioSpec spec;
        spec.name = question.name + "#corridor";
        spec.cutCables = question.corridor;
        spec.repairDays = question.repairDays;
        corridor.scenario = std::move(spec);
        tasks.push_back(std::move(corridor));
        if (question.corridor.size() > 1) {
            for (const std::string& cable : question.corridor) {
                PlannedTask task;
                task.id = question.name + "/sweep/cut-" + cable;
                task.kind = TaskKind::ScenarioSweep;
                task.samples = 1;
                task.utility = kPerCableUtility;
                core::ScenarioSpec single;
                single.name = question.name + "#cut-" + cable;
                single.cutCables = {cable};
                single.repairDays = question.repairDays;
                task.scenario = std::move(single);
                tasks.push_back(std::move(task));
            }
        }
        break;
    }
    case QuestionKind::IxpCoverage:
        for (const topo::AsIndex as : scope.cover.chosenAses) {
            PlannedTask task;
            task.id = question.name + "/probe/as" +
                      std::to_string(topology.as(as).asn);
            task.kind = TaskKind::VantageProbe;
            task.country = topology.as(as).countryCode;
            task.vantage = as;
            task.samples = std::max<std::size_t>(
                std::size_t{1}, topology.ixpsOf(as).size());
            task.utility = kProbeUtility;
            tasks.push_back(std::move(task));
        }
        break;
    }

    for (std::size_t i = 0; i < tasks.size(); ++i) {
        tasks[i].utility -= 1e-3 * static_cast<double>(i);
    }
    return tasks;
}

net::Expected<CampaignPlan>
CampaignPlanner::compile(const MeasurementQuestion& question) const {
    using E = net::Expected<CampaignPlan>;
    if (auto valid = question.validate(*substrate_); !valid) {
        return E{valid.error()};
    }
    const auto scopeOrError = resolveScope(question);
    if (!scopeOrError) {
        return E{scopeOrError.error()};
    }
    const Scope& scope = *scopeOrError;

    std::vector<PlannedTask> tasks = enumerateTasks(question, scope);

    // Digest-peek prune: a scenario whose degraded routing state already
    // sits in the substrate's oracle cache is computable from the
    // snapshot, so it bills answer retrieval, not fresh computation.
    // Plan-time only — peek never builds anything, and execution derives
    // every answer through the sweep engine regardless, so answers stay
    // independent of cache temperature.
    route::OracleCache* cache = substrate_->oracleCache();
    for (PlannedTask& task : tasks) {
        if (task.scenario && cache != nullptr) {
            if (auto event =
                    task.scenario->makeEvent(substrate_->registry())) {
                // Same rng derivation the sweep's plan phase uses, so the
                // peeked digest is exactly the one the sweep will look up.
                net::Rng rng{substrate_->seed() + 7};
                const route::LinkFilter filter =
                    substrate_->analyzer().filterFor(*event, rng);
                task.prunedByCache = cache->peek(filter) != nullptr;
            }
        }
        task.payloadMb = taskPayloadMb(task);
    }

    // Budget-aware ordering: lower every task onto the §7.1 scheduler.
    std::vector<core::MeasurementTask> metered;
    metered.reserve(tasks.size());
    for (const PlannedTask& task : tasks) {
        core::MeasurementTask mt;
        mt.id = task.id;
        mt.kind = std::string{taskKindName(task.kind)};
        mt.payloadBytesPerRun = task.payloadMb * 1e6;
        mt.utilityPerRun = task.utility;
        mt.desiredRuns = 1;
        mt.sharedGroup = -1;
        mt.offPeakOk = true;
        metered.push_back(std::move(mt));
    }
    core::Probe probe;
    probe.id = "planner";
    probe.countryCode = scope.countries.front();
    probe.monthlyBudgetUsd = question.budgetUsd;
    probe.pricing = config_.pricing;
    const core::BudgetPlan budget =
        core::BudgetScheduler{config_.scheduler}.plan(probe, metered,
                                                      question.budgetUsd);

    CampaignPlan plan;
    plan.question = question;
    plan.vantages = scope.cover.chosenAses;
    std::vector<bool> kept(tasks.size(), false);
    for (const core::BudgetPlan::Entry& entry : budget.entries) {
        const std::size_t index = entry.taskIndices.front();
        PlannedTask task = tasks[index];
        task.offPeak = entry.offPeak;
        plan.tasks.push_back(std::move(task));
        kept[index] = true;
    }
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (!kept[i]) {
            plan.dropped.push_back(tasks[i]);
        }
    }

    // The pre-execution promise, billed exactly as execution will bill
    // (same tariff meter, same peak/off-peak split, overhead-adjusted
    // wire bytes) — only the bounded retransmission jitter separates it
    // from the actuals.
    core::TariffMeter meter{config_.pricing};
    CampaignEstimate& estimate = plan.estimate;
    for (const PlannedTask& task : plan.tasks) {
        const double wireMb = task.payloadMb * core::kPacketOverheadFactor;
        estimate.wireMb += wireMb;
        meter.add(wireMb, task.offPeak);
        if (task.prunedByCache) {
            ++estimate.prunedTasks;
        }
    }
    estimate.maxWireMb = estimate.wireMb * (1.0 + config_.retransJitterMax);
    estimate.costUsd = meter.totalCost();
    estimate.tasks = plan.tasks.size();

    CoverageEstimate& coverage = estimate.coverage;
    coverage.countriesRequested = scope.countries.size();
    if (question.kind == QuestionKind::OutageExposure) {
        // Scenario tasks answer for the whole scope at once.
        coverage.countriesPlanned =
            plan.tasks.empty() ? 0 : coverage.countriesRequested;
    } else {
        std::set<std::string, std::less<>> planned;
        for (const PlannedTask& task : plan.tasks) {
            if (!task.country.empty()) {
                planned.insert(task.country);
            }
        }
        coverage.countriesPlanned = planned.size();
    }
    coverage.ixpsTotal = scope.cover.totalIxps;
    if (question.kind == QuestionKind::IxpCoverage) {
        // Coverage shrinks with every probe task the budget dropped.
        std::set<topo::IxpIndex> covered;
        const std::vector<topo::IxpIndex> african =
            substrate_->topology().africanIxps();
        const std::set<topo::IxpIndex> africanSet(african.begin(),
                                                  african.end());
        for (const PlannedTask& task : plan.tasks) {
            for (const topo::IxpIndex ixp :
                 substrate_->topology().ixpsOf(task.vantage)) {
                if (africanSet.contains(ixp)) {
                    covered.insert(ixp);
                }
            }
        }
        coverage.ixpsCovered = covered.size();
    } else {
        coverage.ixpsCovered = scope.cover.coveredIxps;
    }
    return plan;
}

CampaignReport
CampaignPlanner::execute(const CampaignPlan& plan,
                         const ExecuteOptions& options) const {
    const topo::Topology& topology = substrate_->topology();
    CampaignReport report;
    core::TariffMeter meter{config_.pricing};

    // Billing pass: the wire carries the planned payload, packet
    // overhead, plus a bounded retransmission share drawn from the
    // task-keyed jitter stream — pure in (substrate seed, task id), so
    // billing is identical at any thread count or execution order, and
    // lands in [wireMb, maxWireMb] by construction.
    std::vector<core::ScenarioSpec> specs;
    for (const PlannedTask& task : plan.tasks) {
        if (options.cancel != nullptr) {
            options.cancel->checkpoint();
        }
        net::Rng base{taskSeed(*substrate_, task.id)};
        net::Rng jitter = base.fork(kJitterStream);
        const double wireMb = task.payloadMb * core::kPacketOverheadFactor *
                              (1.0 + config_.retransJitterMax *
                                         jitter.uniform01());
        report.actualWireMb += wireMb;
        meter.add(wireMb, task.offPeak);
        if (task.prunedByCache) {
            ++report.tasksPruned;
        }
        if (task.scenario) {
            specs.push_back(*task.scenario);
        }
    }
    report.tasksRun = plan.tasks.size();
    report.actualCostUsd = meter.totalCost();

    // What-if tasks lower onto the sweep engine as one batch (digest
    // dedupe and the oracle cache do the sharing; a fired deadline token
    // propagates straight through).
    sweep::SweepResult sweepResult;
    if (!specs.empty()) {
        sweep::SweepOptions sweepOptions;
        sweepOptions.cancel = options.cancel;
        sweepResult =
            sweep::ScenarioSweepEngine{*substrate_, sweepOptions}.run(specs);
    }

    // Answer assembly.
    std::map<std::string, CampaignAnswer::Row, std::less<>> rows;
    switch (plan.question.kind) {
    case QuestionKind::ContentLocality: {
        double overallNum = 0.0;
        double overallDen = 0.0;
        for (const PlannedTask& task : plan.tasks) {
            if (task.kind != TaskKind::ContentAudit) {
                continue;
            }
            std::vector<content::Website> sites =
                substrate_->catalog().sitesFor(task.country);
            std::ranges::sort(sites, [](const content::Website& a,
                                        const content::Website& b) {
                if (a.popularity != b.popularity) {
                    return a.popularity > b.popularity;
                }
                return a.domain < b.domain;
            });
            sites.resize(std::min(sites.size(), task.samples));
            double num = 0.0;
            double den = 0.0;
            for (const content::Website& site : sites) {
                den += site.popularity;
                if (content::isAfricanHosting(site.hosting)) {
                    num += site.popularity;
                }
            }
            CampaignAnswer::Row row;
            row.country = task.country;
            row.value = den > 0.0 ? num / den : 0.0;
            row.samples = sites.size();
            rows.emplace(task.country, std::move(row));
            overallNum += num;
            overallDen += den;
        }
        report.answer.overall =
            overallDen > 0.0 ? overallNum / overallDen : 0.0;
        break;
    }
    case QuestionKind::DetourRate: {
        const route::RouteOracle& oracle =
            *substrate_->analyzer().baselineOracle();
        const route::DetourAnalyzer detour{topology};
        std::vector<topo::AsIndex> pool;
        for (const topo::AsIndex as : topology.africanAses()) {
            if (isEyeball(topology.as(as).type)) {
                pool.push_back(as);
            }
        }
        std::size_t totalDetours = 0;
        std::size_t totalClassified = 0;
        for (const PlannedTask& task : plan.tasks) {
            if (task.kind != TaskKind::DetourSample || pool.empty()) {
                continue;
            }
            const std::vector<topo::AsIndex> sources =
                eyeballsInCountry(topology, task.country);
            if (sources.empty()) {
                continue;
            }
            net::Rng base{taskSeed(*substrate_, task.id)};
            net::Rng rng = base.fork(kSampleStream);
            std::size_t detours = 0;
            std::size_t classified = 0;
            for (std::size_t draw = 0; draw < task.samples; ++draw) {
                const topo::AsIndex src = rng.pick(sources);
                const topo::AsIndex dst = rng.pick(pool);
                if (topology.as(src).countryCode ==
                    topology.as(dst).countryCode) {
                    continue;
                }
                const std::vector<topo::AsIndex> path =
                    oracle.path(src, dst);
                if (path.empty()) {
                    continue;
                }
                ++classified;
                if (detour.leavesAfrica(path)) {
                    ++detours;
                }
            }
            CampaignAnswer::Row row;
            row.country = task.country;
            row.value = classified > 0
                            ? static_cast<double>(detours) /
                                  static_cast<double>(classified)
                            : 0.0;
            row.samples = classified;
            rows.emplace(task.country, std::move(row));
            totalDetours += detours;
            totalClassified += classified;
        }
        report.answer.overall =
            totalClassified > 0 ? static_cast<double>(totalDetours) /
                                      static_cast<double>(totalClassified)
                                : 0.0;
        break;
    }
    case QuestionKind::OutageExposure: {
        // Scope resolution is deterministic, so re-deriving it here sees
        // exactly the countries compile() planned for.
        const Scope scope = resolveScope(plan.question).valueOrRaise();
        double lossSum = 0.0;
        for (const std::string& iso2 : scope.countries) {
            CampaignAnswer::Row row;
            row.country = iso2;
            for (const sweep::ScenarioResult& result :
                 sweepResult.scenarios) {
                if (!result.outcome) {
                    continue;
                }
                for (const outage::CountryImpact& impact :
                     (*result.outcome).countries) {
                    if (impact.country == iso2) {
                        row.value = std::max(row.value, impact.pageLoadLoss);
                        ++row.samples;
                    }
                }
            }
            lossSum += row.value;
            rows.emplace(iso2, std::move(row));
        }
        report.answer.overall =
            rows.empty() ? 0.0 : lossSum / static_cast<double>(rows.size());
        break;
    }
    case QuestionKind::IxpCoverage: {
        const std::vector<topo::IxpIndex> african = topology.africanIxps();
        const std::set<topo::IxpIndex> africanSet(african.begin(),
                                                  african.end());
        std::map<std::string, std::set<topo::IxpIndex>, std::less<>>
            perCountry;
        std::set<topo::IxpIndex> covered;
        for (const PlannedTask& task : plan.tasks) {
            if (task.kind != TaskKind::VantageProbe) {
                continue;
            }
            for (const topo::IxpIndex ixp : topology.ixpsOf(task.vantage)) {
                if (africanSet.contains(ixp)) {
                    perCountry[task.country].insert(ixp);
                    covered.insert(ixp);
                }
            }
            // A country row exists even when the vantage covers nothing.
            perCountry.try_emplace(task.country);
        }
        for (const auto& [iso2, ixps] : perCountry) {
            CampaignAnswer::Row row;
            row.country = iso2;
            row.value = static_cast<double>(ixps.size());
            row.samples = ixps.size();
            rows.emplace(iso2, std::move(row));
        }
        report.answer.overall =
            african.empty() ? 1.0
                            : static_cast<double>(covered.size()) /
                                  static_cast<double>(african.size());
        break;
    }
    }
    report.answer.rows.reserve(rows.size());
    for (auto& [iso2, row] : rows) {
        report.answer.rows.push_back(std::move(row));
    }

    // Hold the estimate to account.
    const CampaignEstimate& estimate = plan.estimate;
    report.estimateErrorShare =
        estimate.wireMb > 0.0
            ? report.actualWireMb / estimate.wireMb - 1.0
            : 0.0;
    constexpr double kSlack = 1e-9; // float-sum tolerance, not a loophole
    report.withinBound =
        report.actualWireMb >= estimate.wireMb * (1.0 - kSlack) &&
        report.actualWireMb <= estimate.maxWireMb * (1.0 + kSlack);
    return report;
}

} // namespace aio::plan
