#include "plan/textio.hpp"

#include <charconv>
#include <cstdio>
#include <string>
#include <system_error>
#include <vector>

namespace aio::plan {

namespace {

using scenario::BuildoutTemplate;
using scenario::CascadeTemplate;
using scenario::PhaseSpec;
using scenario::SampledTemplate;
using scenario::ScenarioCatalog;

// ---- shared lexing ------------------------------------------------------

[[nodiscard]] std::string_view trim(std::string_view text) {
    while (!text.empty() &&
           (text.front() == ' ' || text.front() == '\t' ||
            text.front() == '\r')) {
        text.remove_prefix(1);
    }
    while (!text.empty() &&
           (text.back() == ' ' || text.back() == '\t' ||
            text.back() == '\r')) {
        text.remove_suffix(1);
    }
    return text;
}

/// One meaningful line: `keyword` plus its end-of-line value.
struct Line {
    int number = 0;
    std::string_view keyword;
    std::string_view value;
};

/// Splits `text` into trimmed, comment-free lines. Lines whose first
/// non-blank character is '#' are comments; values run to end of line.
[[nodiscard]] std::vector<Line> lex(std::string_view text) {
    std::vector<Line> lines;
    int number = 0;
    while (!text.empty()) {
        const std::size_t eol = text.find('\n');
        std::string_view raw = eol == std::string_view::npos
                                   ? text
                                   : text.substr(0, eol);
        text.remove_prefix(eol == std::string_view::npos ? text.size()
                                                         : eol + 1);
        ++number;
        const std::string_view content = trim(raw);
        if (content.empty() || content.front() == '#') {
            continue;
        }
        Line line;
        line.number = number;
        const std::size_t split = content.find_first_of(" \t");
        if (split == std::string_view::npos) {
            line.keyword = content;
        } else {
            line.keyword = content.substr(0, split);
            line.value = trim(content.substr(split + 1));
        }
        lines.push_back(line);
    }
    return lines;
}

struct Cursor {
    std::vector<Line> lines;
    std::size_t pos = 0;

    [[nodiscard]] bool done() const { return pos == lines.size(); }
    [[nodiscard]] const Line& peek() const { return lines[pos]; }
    const Line& next() { return lines[pos++]; }
    /// Line number errors point at when the input ran out.
    [[nodiscard]] int lastNumber() const {
        return lines.empty() ? 0 : lines.back().number;
    }
};

[[nodiscard]] net::Error parseError(int line, std::string_view field,
                                    std::string_view detail) {
    return net::Error::parse("line " + std::to_string(line) + ": field '" +
                             std::string{field} + "': " +
                             std::string{detail});
}

template <typename T>
[[nodiscard]] net::Expected<T> parseNumber(const Line& line,
                                           std::string_view what) {
    T value{};
    const char* begin = line.value.data();
    const char* end = begin + line.value.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end || line.value.empty()) {
        return net::Expected<T>{parseError(
            line.number, line.keyword,
            "expected " + std::string{what} + ", got '" +
                std::string{line.value} + "'")};
    }
    return value;
}

[[nodiscard]] net::Expected<bool> parseBool(const Line& line) {
    if (line.value == "true") {
        return true;
    }
    if (line.value == "false") {
        return false;
    }
    return net::Expected<bool>{parseError(line.number, line.keyword,
                                          "expected 'true' or 'false', got '" +
                                              std::string{line.value} + "'")};
}

[[nodiscard]] net::Expected<std::string> parseName(const Line& line) {
    if (line.value.empty()) {
        return net::Expected<std::string>{
            parseError(line.number, line.keyword, "expected a name")};
    }
    return std::string{line.value};
}

// ---- shared rendering ---------------------------------------------------

void renderDouble(std::string& out, double value) {
    char buffer[64];
    // max_digits10 precision: the decimal string maps back to the exact
    // same double, which is what makes parse(render(x)) == x bit-true.
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    out += buffer;
}

void renderLine(std::string& out, std::string_view keyword,
                std::string_view value) {
    out += keyword;
    if (!value.empty()) {
        out += ' ';
        out += value;
    }
    out += '\n';
}

void renderNumberLine(std::string& out, std::string_view keyword,
                      double value) {
    out += keyword;
    out += ' ';
    renderDouble(out, value);
    out += '\n';
}

/// Names travel as trimmed end-of-line values, so a name the trim would
/// alter (or that spans lines) cannot round-trip; refuse to emit it.
[[nodiscard]] net::Expected<void> checkRenderable(std::string_view name,
                                                  std::string_view field) {
    using V = net::Expected<void>;
    if (name.empty()) {
        return V{net::Error::parse("field '" + std::string{field} +
                                   "': empty name is not representable")};
    }
    if (name != trim(name) || name.find('\n') != std::string_view::npos) {
        return V{net::Error::parse(
            "field '" + std::string{field} + "': name '" +
            std::string{name} +
            "' is not representable (surrounding whitespace or newline)")};
    }
    return V::ok();
}

// ---- question blocks ----------------------------------------------------

constexpr std::string_view kQuestionKeyword = "question";

[[nodiscard]] net::Expected<MeasurementQuestion> parseQuestionBlock(
    Cursor& cursor) {
    using E = net::Expected<MeasurementQuestion>;
    const Line& header = cursor.next();
    MeasurementQuestion question;
    auto name = parseName(header);
    if (!name) {
        return E{name.error()};
    }
    question.name = std::move(*name);
    // Fields override the declared defaults; repeated list fields append.
    question.countries.clear();
    question.corridor.clear();
    while (!cursor.done()) {
        const Line& line = cursor.next();
        if (line.keyword == "end") {
            return question;
        }
        if (line.keyword == "kind") {
            auto kind = questionKindFromName(line.value);
            if (!kind) {
                return E{parseError(line.number, line.keyword,
                                    kind.error().message)};
            }
            question.kind = *kind;
        } else if (line.keyword == "country") {
            auto country = parseName(line);
            if (!country) {
                return E{country.error()};
            }
            question.countries.push_back(std::move(*country));
        } else if (line.keyword == "landlocked-only") {
            auto flag = parseBool(line);
            if (!flag) {
                return E{flag.error()};
            }
            question.landlockedOnly = *flag;
        } else if (line.keyword == "top-sites") {
            auto value = parseNumber<int>(line, "an integer");
            if (!value) {
                return E{value.error()};
            }
            question.topSites = *value;
        } else if (line.keyword == "sample-pairs") {
            auto value = parseNumber<std::size_t>(line, "an integer");
            if (!value) {
                return E{value.error()};
            }
            question.samplePairs = *value;
        } else if (line.keyword == "cable") {
            auto cable = parseName(line);
            if (!cable) {
                return E{cable.error()};
            }
            question.corridor.push_back(std::move(*cable));
        } else if (line.keyword == "repair-days") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            question.repairDays = *value;
        } else if (line.keyword == "budget-usd") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            question.budgetUsd = *value;
        } else {
            return E{parseError(line.number, line.keyword,
                                "unknown question field")};
        }
    }
    return E{parseError(cursor.lastNumber(), kQuestionKeyword,
                        "unterminated 'question' block (missing 'end')")};
}

// ---- catalog blocks -----------------------------------------------------

[[nodiscard]] std::string_view phaseTypeToken(outage::OutageType type) {
    switch (type) {
    case outage::OutageType::CableCut: return "cable-cut";
    case outage::OutageType::PowerOutage: return "power-outage";
    case outage::OutageType::GovernmentShutdown:
        return "government-shutdown";
    case outage::OutageType::RoutingIncident: return "routing-incident";
    }
    return "?";
}

[[nodiscard]] net::Expected<outage::OutageType>
phaseTypeFromToken(const Line& line) {
    for (const outage::OutageType type :
         {outage::OutageType::CableCut, outage::OutageType::PowerOutage,
          outage::OutageType::GovernmentShutdown,
          outage::OutageType::RoutingIncident}) {
        if (line.value == phaseTypeToken(type)) {
            return type;
        }
    }
    return net::Expected<outage::OutageType>{
        parseError(line.number, line.keyword,
                   "unknown phase type '" + std::string{line.value} + "'")};
}

[[nodiscard]] net::Expected<PhaseSpec> parsePhaseBlock(Cursor& cursor) {
    using E = net::Expected<PhaseSpec>;
    const Line& header = cursor.next();
    PhaseSpec phase;
    auto name = parseName(header);
    if (!name) {
        return E{name.error()};
    }
    phase.name = std::move(*name);
    while (!cursor.done()) {
        const Line& line = cursor.next();
        if (line.keyword == "end") {
            return phase;
        }
        if (line.keyword == "type") {
            auto type = phaseTypeFromToken(line);
            if (!type) {
                return E{type.error()};
            }
            phase.type = *type;
        } else if (line.keyword == "cut") {
            auto cable = parseName(line);
            if (!cable) {
                return E{cable.error()};
            }
            phase.cutCables.push_back(std::move(*cable));
        } else if (line.keyword == "country") {
            auto country = parseName(line);
            if (!country) {
                return E{country.error()};
            }
            phase.countries.push_back(std::move(*country));
        } else if (line.keyword == "start-day") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            phase.startDay = *value;
        } else if (line.keyword == "duration-days") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            phase.durationDays = *value;
        } else {
            return E{parseError(line.number, line.keyword,
                                "unknown phase field")};
        }
    }
    return E{parseError(cursor.lastNumber(), "phase",
                        "unterminated 'phase' block (missing 'end')")};
}

[[nodiscard]] net::Expected<CascadeTemplate>
parseCascadeBlock(Cursor& cursor) {
    using E = net::Expected<CascadeTemplate>;
    const Line& header = cursor.next();
    CascadeTemplate cascade;
    auto name = parseName(header);
    if (!name) {
        return E{name.error()};
    }
    cascade.name = std::move(*name);
    while (!cursor.done()) {
        const Line& line = cursor.peek();
        if (line.keyword == "end") {
            cursor.next();
            return cascade;
        }
        if (line.keyword == "phase") {
            auto phase = parsePhaseBlock(cursor);
            if (!phase) {
                return E{phase.error()};
            }
            cascade.phases.push_back(std::move(*phase));
            continue;
        }
        cursor.next();
        if (line.keyword == "cumulative-cuts") {
            auto flag = parseBool(line);
            if (!flag) {
                return E{flag.error()};
            }
            cascade.cumulativeCuts = *flag;
        } else if (line.keyword == "weight") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            cascade.weight = *value;
        } else {
            return E{parseError(line.number, line.keyword,
                                "unknown cascade field")};
        }
    }
    return E{parseError(cursor.lastNumber(), "cascade",
                        "unterminated 'cascade' block (missing 'end')")};
}

[[nodiscard]] net::Expected<phys::SubseaCable>
parseCableBlock(Cursor& cursor) {
    using E = net::Expected<phys::SubseaCable>;
    const Line& header = cursor.next();
    phys::SubseaCable cable;
    auto name = parseName(header);
    if (!name) {
        return E{name.error()};
    }
    cable.name = std::move(*name);
    while (!cursor.done()) {
        const Line& line = cursor.next();
        if (line.keyword == "end") {
            return cable;
        }
        if (line.keyword == "corridor") {
            auto value = parseNumber<std::size_t>(line, "an integer");
            if (!value) {
                return E{value.error()};
            }
            cable.corridor = *value;
        } else if (line.keyword == "ready") {
            auto value = parseNumber<int>(line, "an integer");
            if (!value) {
                return E{value.error()};
            }
            cable.readyForService = *value;
        } else if (line.keyword == "capacity-tbps") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            cable.capacityTbps = *value;
        } else if (line.keyword == "landing") {
            // `landing CC LAT LON` — three whitespace-separated tokens.
            std::vector<std::string_view> tokens;
            std::string_view rest = line.value;
            while (!rest.empty()) {
                const std::size_t split = rest.find_first_of(" \t");
                tokens.push_back(rest.substr(0, split));
                rest = split == std::string_view::npos
                           ? std::string_view{}
                           : trim(rest.substr(split + 1));
            }
            if (tokens.size() != 3) {
                return E{parseError(line.number, line.keyword,
                                    "expected 'landing <country> <lat> "
                                    "<lon>'")};
            }
            phys::LandingStation landing;
            landing.countryCode = std::string{tokens[0]};
            Line fake = line;
            fake.value = tokens[1];
            auto lat = parseNumber<double>(fake, "a number");
            if (!lat) {
                return E{lat.error()};
            }
            fake.value = tokens[2];
            auto lon = parseNumber<double>(fake, "a number");
            if (!lon) {
                return E{lon.error()};
            }
            landing.location = {*lat, *lon};
            cable.landings.push_back(std::move(landing));
        } else {
            return E{parseError(line.number, line.keyword,
                                "unknown cable field")};
        }
    }
    return E{parseError(cursor.lastNumber(), "add-cable",
                        "unterminated 'add-cable' block (missing 'end')")};
}

[[nodiscard]] net::Expected<BuildoutTemplate>
parseBuildoutBlock(Cursor& cursor) {
    using E = net::Expected<BuildoutTemplate>;
    const Line& header = cursor.next();
    BuildoutTemplate buildout;
    auto name = parseName(header);
    if (!name) {
        return E{name.error()};
    }
    buildout.name = std::move(*name);
    while (!cursor.done()) {
        const Line& line = cursor.peek();
        if (line.keyword == "end") {
            cursor.next();
            return buildout;
        }
        if (line.keyword == "add-cable") {
            auto cable = parseCableBlock(cursor);
            if (!cable) {
                return E{cable.error()};
            }
            buildout.cablesAdded.push_back(std::move(*cable));
            continue;
        }
        cursor.next();
        if (line.keyword == "stress-cut") {
            auto cable = parseName(line);
            if (!cable) {
                return E{cable.error()};
            }
            buildout.stressCuts.push_back(std::move(*cable));
        } else if (line.keyword == "repair-days") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            buildout.repairDays = *value;
        } else if (line.keyword == "weight") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            buildout.weight = *value;
        } else {
            return E{parseError(line.number, line.keyword,
                                "unknown buildout field")};
        }
    }
    return E{parseError(cursor.lastNumber(), "buildout",
                        "unterminated 'buildout' block (missing 'end')")};
}

[[nodiscard]] net::Expected<SampledTemplate>
parseSampledBlock(Cursor& cursor) {
    using E = net::Expected<SampledTemplate>;
    const Line& header = cursor.next();
    SampledTemplate sampled;
    auto name = parseName(header);
    if (!name) {
        return E{name.error()};
    }
    sampled.name = std::move(*name);
    while (!cursor.done()) {
        const Line& line = cursor.next();
        if (line.keyword == "end") {
            return sampled;
        }
        if (line.keyword == "seed") {
            auto value = parseNumber<std::uint64_t>(line, "an integer");
            if (!value) {
                return E{value.error()};
            }
            sampled.config.seed = *value;
        } else if (line.keyword == "count") {
            auto value = parseNumber<std::size_t>(line, "an integer");
            if (!value) {
                return E{value.error()};
            }
            sampled.config.count = *value;
        } else if (line.keyword == "importance-boost") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            sampled.config.importanceBoost = *value;
        } else if (line.keyword == "repair-mean-days") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            sampled.config.repairMeanDays = *value;
        } else if (line.keyword == "repair-floor-days") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            sampled.config.repairFloorDays = *value;
        } else if (line.keyword == "same-corridor-prob") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            sampled.config.correlation.sameCorridorProb = *value;
        } else if (line.keyword == "shared-landing-prob") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            sampled.config.correlation.sharedLandingProb = *value;
        } else if (line.keyword == "max-prob") {
            auto value = parseNumber<double>(line, "a number");
            if (!value) {
                return E{value.error()};
            }
            sampled.config.correlation.maxProb = *value;
        } else {
            return E{parseError(line.number, line.keyword,
                                "unknown sampled field")};
        }
    }
    return E{parseError(cursor.lastNumber(), "sampled",
                        "unterminated 'sampled' block (missing 'end')")};
}

[[nodiscard]] net::Expected<void> expectExhausted(const Cursor& cursor) {
    using V = net::Expected<void>;
    if (!cursor.done()) {
        const Line& line = cursor.peek();
        return V{parseError(line.number, line.keyword,
                            "trailing content after 'end'")};
    }
    return V::ok();
}

} // namespace

net::Expected<MeasurementQuestion> parseQuestion(std::string_view text) {
    using E = net::Expected<MeasurementQuestion>;
    Cursor cursor{lex(text)};
    if (cursor.done()) {
        return E{net::Error::parse("empty input: expected a 'question' "
                                   "block")};
    }
    if (cursor.peek().keyword != kQuestionKeyword) {
        return E{parseError(cursor.peek().number, cursor.peek().keyword,
                            "expected 'question <name>'")};
    }
    auto question = parseQuestionBlock(cursor);
    if (!question) {
        return question;
    }
    if (auto rest = expectExhausted(cursor); !rest) {
        return E{rest.error()};
    }
    return question;
}

net::Expected<std::string>
renderQuestion(const MeasurementQuestion& question) {
    using E = net::Expected<std::string>;
    if (auto ok = checkRenderable(question.name, "question"); !ok) {
        return E{ok.error()};
    }
    for (const std::string& cable : question.corridor) {
        if (auto ok = checkRenderable(cable, "cable"); !ok) {
            return E{ok.error()};
        }
    }
    for (const std::string& country : question.countries) {
        if (auto ok = checkRenderable(country, "country"); !ok) {
            return E{ok.error()};
        }
    }
    std::string out;
    renderLine(out, kQuestionKeyword, question.name);
    renderLine(out, "kind", questionKindName(question.kind));
    for (const std::string& country : question.countries) {
        renderLine(out, "country", country);
    }
    renderLine(out, "landlocked-only",
               question.landlockedOnly ? "true" : "false");
    renderLine(out, "top-sites", std::to_string(question.topSites));
    renderLine(out, "sample-pairs", std::to_string(question.samplePairs));
    for (const std::string& cable : question.corridor) {
        renderLine(out, "cable", cable);
    }
    renderNumberLine(out, "repair-days", question.repairDays);
    renderNumberLine(out, "budget-usd", question.budgetUsd);
    renderLine(out, "end", {});
    return out;
}

net::Expected<scenario::ScenarioCatalog> parseCatalog(std::string_view text) {
    using E = net::Expected<scenario::ScenarioCatalog>;
    Cursor cursor{lex(text)};
    if (cursor.done()) {
        return E{net::Error::parse("empty input: expected a 'catalog' "
                                   "block")};
    }
    if (cursor.peek().keyword != "catalog") {
        return E{parseError(cursor.peek().number, cursor.peek().keyword,
                            "expected 'catalog'")};
    }
    cursor.next();
    ScenarioCatalog catalog;
    bool terminated = false;
    while (!cursor.done()) {
        const Line& line = cursor.peek();
        if (line.keyword == "end") {
            cursor.next();
            terminated = true;
            break;
        }
        if (line.keyword == "cascade") {
            auto cascade = parseCascadeBlock(cursor);
            if (!cascade) {
                return E{cascade.error()};
            }
            catalog.add(std::move(*cascade));
        } else if (line.keyword == "buildout") {
            auto buildout = parseBuildoutBlock(cursor);
            if (!buildout) {
                return E{buildout.error()};
            }
            catalog.add(std::move(*buildout));
        } else if (line.keyword == "sampled") {
            auto sampled = parseSampledBlock(cursor);
            if (!sampled) {
                return E{sampled.error()};
            }
            catalog.add(std::move(*sampled));
        } else {
            return E{parseError(line.number, line.keyword,
                                "expected 'cascade', 'buildout', 'sampled' "
                                "or 'end'")};
        }
    }
    if (!terminated) {
        return E{parseError(cursor.lastNumber(), "catalog",
                            "unterminated 'catalog' block (missing 'end')")};
    }
    if (auto rest = expectExhausted(cursor); !rest) {
        return E{rest.error()};
    }
    return catalog;
}

net::Expected<std::string>
renderCatalog(const scenario::ScenarioCatalog& catalog) {
    using E = net::Expected<std::string>;
    std::string out;
    renderLine(out, "catalog", {});
    for (const CascadeTemplate& cascade : catalog.cascades()) {
        if (auto ok = checkRenderable(cascade.name, "cascade"); !ok) {
            return E{ok.error()};
        }
        renderLine(out, "cascade", cascade.name);
        renderLine(out, "cumulative-cuts",
                   cascade.cumulativeCuts ? "true" : "false");
        renderNumberLine(out, "weight", cascade.weight);
        for (const PhaseSpec& phase : cascade.phases) {
            if (auto ok = checkRenderable(phase.name, "phase"); !ok) {
                return E{ok.error()};
            }
            renderLine(out, "phase", phase.name);
            renderLine(out, "type", phaseTypeToken(phase.type));
            for (const std::string& cable : phase.cutCables) {
                if (auto ok = checkRenderable(cable, "cut"); !ok) {
                    return E{ok.error()};
                }
                renderLine(out, "cut", cable);
            }
            for (const std::string& country : phase.countries) {
                if (auto ok = checkRenderable(country, "country"); !ok) {
                    return E{ok.error()};
                }
                renderLine(out, "country", country);
            }
            renderNumberLine(out, "start-day", phase.startDay);
            renderNumberLine(out, "duration-days", phase.durationDays);
            renderLine(out, "end", {});
        }
        renderLine(out, "end", {});
    }
    for (const BuildoutTemplate& buildout : catalog.buildouts()) {
        if (auto ok = checkRenderable(buildout.name, "buildout"); !ok) {
            return E{ok.error()};
        }
        if (buildout.dnsOverride || buildout.contentOverride ||
            buildout.linkMapOverride) {
            return E{net::Error::parse(
                "buildout '" + buildout.name +
                "': config overrides are not representable as text — "
                "register this template in code")};
        }
        renderLine(out, "buildout", buildout.name);
        renderNumberLine(out, "repair-days", buildout.repairDays);
        renderNumberLine(out, "weight", buildout.weight);
        for (const std::string& cable : buildout.stressCuts) {
            if (auto ok = checkRenderable(cable, "stress-cut"); !ok) {
                return E{ok.error()};
            }
            renderLine(out, "stress-cut", cable);
        }
        for (const phys::SubseaCable& cable : buildout.cablesAdded) {
            if (auto ok = checkRenderable(cable.name, "add-cable"); !ok) {
                return E{ok.error()};
            }
            renderLine(out, "add-cable", cable.name);
            renderLine(out, "corridor", std::to_string(cable.corridor));
            renderLine(out, "ready", std::to_string(cable.readyForService));
            renderNumberLine(out, "capacity-tbps", cable.capacityTbps);
            for (const phys::LandingStation& landing : cable.landings) {
                if (landing.countryCode.empty() ||
                    landing.countryCode.find_first_of(" \t\n") !=
                        std::string::npos) {
                    return E{net::Error::parse(
                        "field 'landing': country code '" +
                        landing.countryCode + "' is not representable")};
                }
                std::string value = landing.countryCode;
                value += ' ';
                renderDouble(value, landing.location.latitude);
                value += ' ';
                renderDouble(value, landing.location.longitude);
                renderLine(out, "landing", value);
            }
            renderLine(out, "end", {});
        }
        renderLine(out, "end", {});
    }
    for (const SampledTemplate& sampled : catalog.sampled()) {
        if (auto ok = checkRenderable(sampled.name, "sampled"); !ok) {
            return E{ok.error()};
        }
        renderLine(out, "sampled", sampled.name);
        renderLine(out, "seed", std::to_string(sampled.config.seed));
        renderLine(out, "count", std::to_string(sampled.config.count));
        renderNumberLine(out, "importance-boost",
                         sampled.config.importanceBoost);
        renderNumberLine(out, "repair-mean-days",
                         sampled.config.repairMeanDays);
        renderNumberLine(out, "repair-floor-days",
                         sampled.config.repairFloorDays);
        renderNumberLine(out, "same-corridor-prob",
                         sampled.config.correlation.sameCorridorProb);
        renderNumberLine(out, "shared-landing-prob",
                         sampled.config.correlation.sharedLandingProb);
        renderNumberLine(out, "max-prob",
                         sampled.config.correlation.maxProb);
        renderLine(out, "end", {});
    }
    renderLine(out, "end", {});
    return out;
}

} // namespace aio::plan
