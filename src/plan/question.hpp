#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/substrate.hpp"
#include "netbase/expected.hpp"

namespace aio::plan {

/// The question classes the Observatory's front door compiles (§6/§7):
/// each maps a paper-level ask onto the substrate analyses the repo
/// already owns. The planner decides *how* to answer (vantages, task
/// order, what is already computable from the snapshot); the kind only
/// names *what* is being asked.
enum class QuestionKind : std::uint8_t {
    /// "How local is the content of the top-N sites per country?" —
    /// popularity-weighted African-hosted share over the content catalog.
    ContentLocality,
    /// "What share of intra-African routes from these countries leave
    /// the continent?" — per-country detour sampling over policy routes.
    DetourRate,
    /// "What happens to these countries when corridor X fails?" — a
    /// what-if cut of the named cables through the scenario sweep.
    OutageExposure,
    /// "What is the minimal vantage set that sees every African IXP?" —
    /// the §7 greedy set cover, scoped to candidate host networks.
    IxpCoverage,
};

[[nodiscard]] std::string_view questionKindName(QuestionKind kind);

/// Inverse of questionKindName; a Parse error on an unknown name.
[[nodiscard]] net::Expected<QuestionKind>
questionKindFromName(std::string_view name);

/// A high-level measurement question, the value the service's Plan and
/// Estimate workloads accept (as text — see plan/textio.hpp) and the
/// CampaignPlanner compiles. Deliberately declarative: countries, not
/// ASes; cable names, not link filters; a budget, not a task list.
struct MeasurementQuestion {
    std::string name;
    QuestionKind kind = QuestionKind::ContentLocality;

    /// ISO alpha-2 scope; empty = every African country present in the
    /// topology. Unknown codes fail validation with a typed NotFound.
    std::vector<std::string> countries;
    /// Restrict the scope to landlocked countries (the paper's "detour
    /// rate for landlocked countries" example).
    bool landlockedOnly = false;

    /// ContentLocality: audit the top `topSites` sites per country.
    int topSites = 100;
    /// DetourRate: sampled eyeball pairs per scope country.
    std::size_t samplePairs = 128;

    /// OutageExposure: cable names forming the corridor under question.
    std::vector<std::string> corridor;
    /// OutageExposure: assumed repair time of the corridor event.
    double repairDays = 14.0;

    /// Planning budget the compiled campaign must fit (under the
    /// planner's pricing model); tasks that do not fit are dropped,
    /// shrinking coverage instead of overrunning cost.
    double budgetUsd = 10.0;

    [[nodiscard]] bool operator==(const MeasurementQuestion&) const = default;

    /// Checks the question against `substrate`: non-empty name, known
    /// scope countries, kind-specific surfaces (positive topSites /
    /// samplePairs, a non-empty resolvable corridor for OutageExposure),
    /// positive finite repairDays and budget. Returned as a value so the
    /// service can reject a malformed question without aborting the
    /// handler.
    [[nodiscard]] net::Expected<void>
    validate(const core::Substrate& substrate) const;
};

} // namespace aio::plan
