#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace aio::obs {

/// Monotonic time source behind every obs timer and span. Injectable the
/// same way resilience::FaultPlan injects the fault timeline: production
/// wires a SteadyClock, tier-1 tests wire a ManualClock, so instrumented
/// runs produce byte-identical metrics/trace output regardless of
/// hardware, scheduling or worker-pool thread count.
class Clock {
public:
    virtual ~Clock() = default;

    /// Nanoseconds since an arbitrary fixed epoch; monotone non-decreasing.
    [[nodiscard]] virtual std::uint64_t nowNanos() const = 0;
};

/// Wall-clock-quality monotonic time (std::chrono::steady_clock).
class SteadyClock final : public Clock {
public:
    [[nodiscard]] std::uint64_t nowNanos() const override {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }
};

/// Deterministic clock: time moves only when advance() is called. Reads
/// are atomic so worker-pool lanes may sample it concurrently, but the
/// driver must not advance() while a parallel region is in flight if it
/// wants schedule-independent readings.
class ManualClock final : public Clock {
public:
    [[nodiscard]] std::uint64_t nowNanos() const override {
        return nanos_.load(std::memory_order_relaxed);
    }

    void advance(std::uint64_t nanos) {
        nanos_.fetch_add(nanos, std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> nanos_{0};
};

} // namespace aio::obs
