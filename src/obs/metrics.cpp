#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <sstream>

#include "netbase/error.hpp"
#include "netbase/stats.hpp"

namespace aio::obs {

namespace {

const Clock& processSteadyClock() {
    static const SteadyClock clock;
    return clock;
}

std::uint64_t bitsOf(double value) {
    return std::bit_cast<std::uint64_t>(value);
}

double doubleOf(std::uint64_t bits) {
    return std::bit_cast<double>(bits);
}

/// CAS-loop floor/ceiling update on double bits (lock-free extrema).
template <typename Better>
void updateExtremum(std::atomic<std::uint64_t>& bits, double candidate,
                    Better better) {
    std::uint64_t seen = bits.load(std::memory_order_relaxed);
    while (better(candidate, doubleOf(seen)) &&
           !bits.compare_exchange_weak(seen, bitsOf(candidate),
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

void Gauge::set(double value) {
    AIO_EXPECTS(std::isfinite(value), "gauge value must be finite");
    bits_.store(bitsOf(value), std::memory_order_relaxed);
}

double Gauge::value() const {
    return doubleOf(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)), buckets_(bounds_.size() + 1),
      minBits_(bitsOf(std::numeric_limits<double>::infinity())),
      maxBits_(bitsOf(-std::numeric_limits<double>::infinity())) {
    AIO_EXPECTS(!bounds_.empty(), "histogram needs at least one bucket");
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        AIO_EXPECTS(std::isfinite(bounds_[i]),
                    "histogram bounds must be finite");
        AIO_EXPECTS(i == 0 || bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly increasing");
    }
}

std::span<const double> Histogram::defaultSecondsBounds() {
    static constexpr std::array<double, 9> kBounds{
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
    return kBounds;
}

void Histogram::record(double value) {
    AIO_EXPECTS(std::isfinite(value),
                "histogram sample must be finite (no NaN/Inf)");
    const auto it = std::ranges::lower_bound(bounds_, value);
    const auto bucket =
        static_cast<std::size_t>(it - bounds_.begin()); // overflow = last
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    updateExtremum(minBits_, value, std::less<>{});
    updateExtremum(maxBits_, value, std::greater<>{});
}

Histogram::Snapshot Histogram::snapshot() const {
    Snapshot snap;
    snap.bounds = bounds_;
    snap.counts.reserve(buckets_.size());
    for (const auto& bucket : buckets_) {
        const std::uint64_t n = bucket.load(std::memory_order_relaxed);
        snap.counts.push_back(n);
        snap.count += n;
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    if (snap.count > 0) {
        snap.min = doubleOf(minBits_.load(std::memory_order_relaxed));
        snap.max = doubleOf(maxBits_.load(std::memory_order_relaxed));
    }
    return snap;
}

double Histogram::Snapshot::percentile(double p) const {
    AIO_EXPECTS(count > 0, "percentile of an empty histogram");
    AIO_EXPECTS(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
    // Same fractional-rank convention as net::percentile: rank r falls
    // between sample r (floor) and r+1, interpolated linearly — here the
    // samples inside a bucket are assumed evenly spread across it.
    const double rank =
        p / 100.0 * static_cast<double>(count - 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const std::uint64_t n = counts[i];
        if (n == 0) {
            continue;
        }
        if (rank < static_cast<double>(seen + n) ||
            seen + n == count) {
            const double lowerEdge = i == 0 ? min : bounds[i - 1];
            const double upperEdge = i < bounds.size() ? bounds[i] : max;
            const double lo = std::max(lowerEdge, min);
            const double hi = std::min(upperEdge, max);
            if (n == 1) {
                return hi;
            }
            const double frac = std::clamp(
                (rank - static_cast<double>(seen)) /
                    static_cast<double>(n - 1),
                0.0, 1.0);
            return lo + (hi - lo) * frac;
        }
        seen += n;
    }
    return max; // unreachable: the loop always terminates in-bucket
}

MetricsRegistry::MetricsRegistry(const Clock* clock)
    : clock_(clock != nullptr ? clock : &processSteadyClock()) {}

Counter& MetricsRegistry::counter(std::string_view name) {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
        return *it->second;
    }
    return *counters_.emplace(std::string{name},
                              std::make_unique<Counter>())
                .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) {
        return *it->second;
    }
    return *gauges_.emplace(std::string{name}, std::make_unique<Gauge>())
                .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upperBounds) {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
        return *it->second;
    }
    const std::span<const double> bounds =
        upperBounds.empty() ? Histogram::defaultSecondsBounds()
                            : upperBounds;
    return *histograms_
                .emplace(std::string{name},
                         std::make_unique<Histogram>(std::vector<double>(
                             bounds.begin(), bounds.end())))
                .first->second;
}

std::string MetricsRegistry::table() const {
    net::TextTable table(
        {"metric", "kind", "count", "sum", "p50", "p90", "p99"});
    const std::lock_guard<std::mutex> lock{mutex_};
    for (const auto& [name, counter] : counters_) {
        table.addRow({name, "counter", std::to_string(counter->value()),
                      "-", "-", "-", "-"});
    }
    for (const auto& [name, gauge] : gauges_) {
        table.addRow({name, "gauge", "-",
                      net::TextTable::num(gauge->value(), 3), "-", "-",
                      "-"});
    }
    for (const auto& [name, histogram] : histograms_) {
        const Histogram::Snapshot snap = histogram->snapshot();
        if (snap.count == 0) {
            table.addRow(
                {name, "histogram", "0", "0.000", "-", "-", "-"});
            continue;
        }
        table.addRow({name, "histogram", std::to_string(snap.count),
                      net::TextTable::num(snap.sum, 3),
                      net::TextTable::num(snap.p50(), 6),
                      net::TextTable::num(snap.p90(), 6),
                      net::TextTable::num(snap.p99(), 6)});
    }
    return table.render();
}

std::string MetricsRegistry::json() const {
    std::ostringstream out;
    const auto num = [](double value) {
        return net::TextTable::num(value, 6);
    };
    const std::lock_guard<std::mutex> lock{mutex_};
    out << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, counter] : counters_) {
        out << (first ? "" : ",") << '"' << name
            << "\":" << counter->value();
        first = false;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, gauge] : gauges_) {
        out << (first ? "" : ",") << '"' << name
            << "\":" << num(gauge->value());
        first = false;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto& [name, histogram] : histograms_) {
        const Histogram::Snapshot snap = histogram->snapshot();
        out << (first ? "" : ",") << '"' << name
            << "\":{\"count\":" << snap.count << ",\"sum\":"
            << num(snap.sum);
        if (snap.count > 0) {
            out << ",\"p50\":" << num(snap.p50())
                << ",\"p90\":" << num(snap.p90())
                << ",\"p99\":" << num(snap.p99());
        }
        out << ",\"buckets\":[";
        for (std::size_t i = 0; i < snap.counts.size(); ++i) {
            out << (i == 0 ? "" : ",") << "{\"le\":"
                << (i < snap.bounds.size() ? num(snap.bounds[i])
                                           : std::string{"\"inf\""})
                << ",\"n\":" << snap.counts[i] << '}';
        }
        out << "]}";
        first = false;
    }
    out << "}}";
    return out.str();
}

} // namespace aio::obs
