#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"

namespace aio::obs {

class Trace;

/// RAII timer for one entry into a named trace node. Closing (destruction
/// or close()) adds the elapsed clock time to the node and pops it from
/// the trace's open stack. Spans must close in LIFO order — the trace
/// models one campaign driven by one thread (parallel work inside a span
/// is accounted through the MetricsRegistry, not the trace, which is what
/// keeps the tree deterministic across worker-pool thread counts).
class Span {
public:
    Span() = default; ///< inert: close() is a no-op
    Span(Span&& other) noexcept;
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { close(); }

    void close();

private:
    friend class Trace;
    Span(Trace* trace, std::uint64_t startNanos)
        : trace_(trace), startNanos_(startNanos) {}

    Trace* trace_ = nullptr;
    std::uint64_t startNanos_ = 0;
};

/// Aggregating span tree for one campaign: entering a span named `n`
/// under the currently open span reuses (or creates) the child node `n`,
/// accumulating visit count and total time. Per-task spans therefore
/// collapse into bounded per-kind nodes — a 10k-settlement campaign
/// yields a tree of a dozen nodes, not 10k — while still answering "where
/// did the 40 s go" per phase.
///
/// Not thread-safe by design; see Span.
class Trace {
public:
    /// `clock` (optional, not owned) defaults to a process-wide
    /// SteadyClock; tests inject a ManualClock for exact assertions.
    explicit Trace(const Clock* clock = nullptr);

    Trace(const Trace&) = delete;
    Trace& operator=(const Trace&) = delete;

    /// Opens (and on first use creates) the child `name` of the innermost
    /// open span.
    [[nodiscard]] Span span(std::string_view name);

    /// Null-tolerant helper: an inert Span when `trace` is null.
    [[nodiscard]] static Span enter(Trace* trace, std::string_view name) {
        return trace == nullptr ? Span{} : trace->span(name);
    }

    /// Records `n` visits to the child `name` of the innermost open span
    /// without opening it: a pure count node (total time stays zero).
    /// This is the settlement-loop fast path — no clock reads — and the
    /// sink for batched delta publishing (supervisor checkpoint cadence).
    void count(std::string_view name, std::uint64_t n = 1) {
        childNode(name)->count += n;
    }

    /// Nested JSON export: {"name","count","ms","children":[...]}, children
    /// in first-entered order (deterministic for a deterministic driver).
    [[nodiscard]] std::string json() const;

    /// Fixed-width table: indented span path, visit count, total ms.
    [[nodiscard]] std::string table() const;

    /// Discards all recorded spans. No span may be open.
    void clear();

    [[nodiscard]] const Clock& clock() const { return *clock_; }

private:
    friend class Span;

    struct Node {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t totalNanos = 0;
        Node* parent = nullptr;
        std::vector<std::unique_ptr<Node>> children;
    };

    void closeSpan(std::uint64_t startNanos);
    [[nodiscard]] Node* childNode(std::string_view name);

    const Clock* clock_;
    Node root_;
    Node* current_; ///< innermost open span (root_ when none open)
};

} // namespace aio::obs
