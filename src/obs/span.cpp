#include "obs/span.hpp"

#include <sstream>
#include <utility>

#include "netbase/error.hpp"
#include "netbase/stats.hpp"

namespace aio::obs {

namespace {
const Clock& processSteadyClock() {
    static const SteadyClock clock;
    return clock;
}
} // namespace

Span::Span(Span&& other) noexcept
    : trace_(std::exchange(other.trace_, nullptr)),
      startNanos_(other.startNanos_) {}

Span& Span::operator=(Span&& other) noexcept {
    if (this != &other) {
        close();
        trace_ = std::exchange(other.trace_, nullptr);
        startNanos_ = other.startNanos_;
    }
    return *this;
}

void Span::close() {
    if (trace_ != nullptr) {
        std::exchange(trace_, nullptr)->closeSpan(startNanos_);
    }
}

Trace::Trace(const Clock* clock)
    : clock_(clock != nullptr ? clock : &processSteadyClock()),
      current_(&root_) {
    root_.name = "campaign";
}

Trace::Node* Trace::childNode(std::string_view name) {
    for (const auto& candidate : current_->children) {
        if (candidate->name == name) {
            return candidate.get();
        }
    }
    auto owned = std::make_unique<Node>();
    owned->name = std::string{name};
    owned->parent = current_;
    Node* child = owned.get();
    current_->children.push_back(std::move(owned));
    return child;
}

Span Trace::span(std::string_view name) {
    Node* child = childNode(name);
    ++child->count;
    current_ = child;
    return Span{this, clock_->nowNanos()};
}

void Trace::closeSpan(std::uint64_t startNanos) {
    AIO_EXPECTS(current_ != &root_,
                "span close without a matching open (non-LIFO close?)");
    current_->totalNanos += clock_->nowNanos() - startNanos;
    current_ = current_->parent;
}

void Trace::clear() {
    AIO_EXPECTS(current_ == &root_, "cannot clear a trace with open spans");
    root_.children.clear();
    root_.count = 0;
    root_.totalNanos = 0;
}

namespace {

std::string ms(std::uint64_t nanos) {
    return net::TextTable::num(static_cast<double>(nanos) * 1e-6, 3);
}

} // namespace

std::string Trace::json() const {
    std::ostringstream out;
    const auto emit = [&out](const Node& node, const auto& self) -> void {
        out << "{\"name\":\"" << node.name
            << "\",\"count\":" << node.count << ",\"ms\":"
            << ms(node.totalNanos) << ",\"children\":[";
        for (std::size_t i = 0; i < node.children.size(); ++i) {
            if (i > 0) {
                out << ',';
            }
            self(*node.children[i], self);
        }
        out << "]}";
    };
    emit(root_, emit);
    return out.str();
}

std::string Trace::table() const {
    net::TextTable table({"span", "count", "total ms"});
    const auto emit = [&table](const Node& node, int depth,
                               const auto& self) -> void {
        table.addRow({std::string(static_cast<std::size_t>(depth) * 2, ' ') +
                          node.name,
                      std::to_string(node.count), ms(node.totalNanos)});
        for (const auto& child : node.children) {
            self(*child, depth + 1, self);
        }
    };
    emit(root_, 0, emit);
    return table.render();
}

} // namespace aio::obs
