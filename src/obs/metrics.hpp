#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"

namespace aio::obs {

/// Lock-free monotone event counter. Updates are relaxed atomics — hot
/// paths (worker lanes, cache lookups, journal appends) pay one
/// uncontended RMW, never a lock.
class Counter {
public:
    void add(std::uint64_t n = 1) {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (cache residency, queue depth).
class Gauge {
public:
    void set(double value);
    [[nodiscard]] double value() const;

private:
    std::atomic<std::uint64_t> bits_{0}; ///< IEEE-754 bits of the value
};

/// Fixed-bucket latency/size histogram with lock-free recording.
///
/// Bucket i counts values <= upperBounds[i] (first matching bucket); one
/// implicit overflow bucket catches everything above the last bound.
/// Recorded extrema are tracked so quantile readout can interpolate
/// inside the first/last occupied bucket instead of reporting a bucket
/// edge the sample never reached. NaN/Inf values are rejected
/// (PreconditionError) — a poisoned sample would silently corrupt every
/// later readout, the same failure mode net::percentile now guards.
class Histogram {
public:
    /// `upperBounds` must be non-empty, finite and strictly increasing.
    explicit Histogram(std::vector<double> upperBounds);

    void record(double value);

    /// Default bucket layout for second-valued timers: decades from 1µs
    /// to 100s.
    [[nodiscard]] static std::span<const double> defaultSecondsBounds();

    /// Point-in-time copy of the bucket state, readable without stopping
    /// writers (counts are read relaxed; a snapshot concurrent with
    /// writes is some valid interleaving, not torn).
    struct Snapshot {
        std::vector<double> bounds;         ///< upper bounds, ascending
        std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 buckets
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;

        /// Rank-interpolated quantile over the buckets (p in [0,100]).
        /// Exact at recorded extrema, otherwise accurate to one bucket
        /// width. Throws PreconditionError on an empty snapshot.
        [[nodiscard]] double percentile(double p) const;
        [[nodiscard]] double p50() const { return percentile(50.0); }
        [[nodiscard]] double p90() const { return percentile(90.0); }
        [[nodiscard]] double p99() const { return percentile(99.0); }
        [[nodiscard]] double mean() const {
            return count == 0 ? 0.0 : sum / static_cast<double>(count);
        }
    };

    [[nodiscard]] Snapshot snapshot() const;
    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }

private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_; ///< bounds_.size()+1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<std::uint64_t> minBits_;
    std::atomic<std::uint64_t> maxBits_;
};

/// Named metric registry shared by one observatory process: counters,
/// gauges and histograms created on first use and updated lock-free
/// afterwards. Registration (name lookup) takes a mutex; hot paths hold
/// the returned reference, which stays valid for the registry's lifetime.
///
/// The registry owns the observability clock: components time themselves
/// through `clock()` (usually via ScopedTimer), so swapping in a
/// ManualClock makes every recorded duration deterministic.
class MetricsRegistry {
public:
    /// `clock` (optional, not owned, must outlive the registry) defaults
    /// to a process-wide SteadyClock.
    explicit MetricsRegistry(const Clock* clock = nullptr);

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    [[nodiscard]] const Clock& clock() const { return *clock_; }

    /// The counter/gauge named `name`, created on first use.
    [[nodiscard]] Counter& counter(std::string_view name);
    [[nodiscard]] Gauge& gauge(std::string_view name);

    /// The histogram named `name`; `upperBounds` (defaulting to the
    /// seconds decades) applies only on first creation.
    [[nodiscard]] Histogram&
    histogram(std::string_view name,
              std::span<const double> upperBounds = {});

    /// Fixed-width table of every metric, sorted by name: counters and
    /// gauges one row each, histograms with count/sum/p50/p90/p99.
    [[nodiscard]] std::string table() const;

    /// Stable JSON export (names sorted, doubles fixed-precision): the
    /// machine-readable side of the same readout.
    [[nodiscard]] std::string json() const;

private:
    const Clock* clock_;
    mutable std::mutex mutex_; ///< guards the maps, never the metrics
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
};

/// RAII timer recording elapsed seconds into `registry`'s histogram
/// `name` on destruction. Null-registry-tolerant so call sites stay
/// one-liners whether or not observability is wired in.
class ScopedTimer {
public:
    ScopedTimer(MetricsRegistry* registry, std::string_view name)
        : histogram_(registry ? &registry->histogram(name) : nullptr),
          clock_(registry ? &registry->clock() : nullptr),
          startNanos_(clock_ ? clock_->nowNanos() : 0) {}

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    ~ScopedTimer() {
        if (histogram_ != nullptr) {
            histogram_->record(
                static_cast<double>(clock_->nowNanos() - startNanos_) *
                1e-9);
        }
    }

private:
    Histogram* histogram_;
    const Clock* clock_;
    std::uint64_t startNanos_;
};

} // namespace aio::obs
