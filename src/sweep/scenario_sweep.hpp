#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/substrate.hpp"
#include "exec/cancel.hpp"
#include "netbase/expected.hpp"
#include "obs/span.hpp"
#include "outage/impact.hpp"

namespace aio::sweep {

/// How the sweep obtains each scenario's degraded routing state.
enum class RecomputeMode {
    /// Dedupe scenarios by cut-set digest and derive each unique degraded
    /// oracle incrementally from the substrate's baseline (only dirty
    /// destinations re-solved). The production mode.
    Incremental,
    /// One full from-scratch oracle per scenario, no dedupe, no cache —
    /// the per-scenario-recompute reference the differential harness and
    /// the speedup bench compare against.
    Full,
};

struct SweepOptions {
    RecomputeMode mode = RecomputeMode::Incremental;
    /// Optional trace (not owned). obs::Trace is single-threaded by
    /// design, so the sweep touches it only from the coordinating
    /// thread: phase spans plus an aggregated per-scenario count node.
    obs::Trace* trace = nullptr;
    /// Optional cancellation/deadline token (not owned). Checked at
    /// every phase boundary and between scenarios/oracle builds; a
    /// fired token makes run() raise net::CancelledError after the
    /// in-flight parallel region drains — the deadline-propagation
    /// path the observatory service routes request deadlines through.
    /// Results are never partially returned: a cancelled batch yields
    /// the typed error, not a half-filled SweepResult.
    const exec::CancelToken* cancel = nullptr;
};

/// What the batch actually cost, beyond per-scenario outcomes. Mirrored
/// onto `sweep.*` metrics when the substrate carries a registry.
struct SweepStats {
    std::size_t scenarios = 0;
    std::size_t errors = 0; ///< scenarios degraded to an Error outcome
    /// Scenarios whose degraded oracle was shared — with an earlier
    /// scenario in this batch (same cut-set digest) or with the
    /// substrate's oracle cache.
    std::size_t dedupHits = 0;
    std::size_t incrementalBuilds = 0;
    std::size_t fullBuilds = 0;
    /// Destinations re-solved across all incremental builds (the work a
    /// full recompute would have multiplied by topology size).
    std::size_t dirtyDestinations = 0;
    /// Scenarios that changed a derived layer (cables added / config
    /// overrides) and therefore re-derived their stack per scenario.
    std::size_t overlayScenarios = 0;
};

/// One scenario's outcome: the impact report, or the error that degraded
/// this scenario (validation failure, unknown cable) while the rest of
/// the batch proceeded.
struct ScenarioResult {
    std::string scenario; ///< ScenarioSpec::name
    net::Expected<outage::ImpactReport> outcome;
};

struct SweepResult {
    std::vector<ScenarioResult> scenarios; ///< 1:1 with the input order
    SweepStats stats;
};

/// Batched what-if evaluation over one Substrate: takes N ScenarioSpecs
/// (cut sets x repair policies x overlays) and returns N outcomes,
/// byte-identical to running each scenario through its own
/// WhatIfEngine::assess — the equivalence the differential harness in
/// tests/sweep locks — but sharing everything shareable:
///
///  * scenarios with the same cut-set digest share one degraded oracle
///    (and the substrate's OracleCache, when wired, shares them across
///    sweeps);
///  * unique cut sets are re-solved *incrementally* from the substrate's
///    baseline oracle (RouteOracle::deriveFiltered) — only destinations
///    whose selected route forest crosses a failed link are recomputed,
///    eagerly under the dense policy, lazily per queried row under the
///    sharded one;
///  * independent scenarios are scheduled across the substrate's
///    WorkerPool (oracle builds never nest inside pool lanes — the inner
///    recomputes run sequentially per lane).
///
/// A malformed scenario degrades to an Error outcome in its slot; the
/// rest of the batch is unaffected.
class ScenarioSweepEngine {
public:
    explicit ScenarioSweepEngine(const core::Substrate& substrate,
                                 SweepOptions options = {});

    /// Evaluates the batch. Deterministic: outcome i depends only on the
    /// substrate and scenarios[i], never on batch order, thread count or
    /// cache state.
    [[nodiscard]] SweepResult
    run(std::span<const core::ScenarioSpec> scenarios) const;

    [[nodiscard]] const core::Substrate& substrate() const {
        return *substrate_;
    }
    [[nodiscard]] const SweepOptions& options() const { return options_; }

private:
    const core::Substrate* substrate_;
    SweepOptions options_;
};

} // namespace aio::sweep
