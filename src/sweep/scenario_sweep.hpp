#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/substrate.hpp"
#include "exec/cancel.hpp"
#include "netbase/expected.hpp"
#include "obs/span.hpp"
#include "outage/impact.hpp"

namespace aio::sweep {

/// How the sweep obtains each scenario's degraded routing state.
enum class RecomputeMode {
    /// Dedupe scenarios by cut-set digest and derive each unique degraded
    /// oracle incrementally from the substrate's baseline (only dirty
    /// destinations re-solved). The production mode.
    Incremental,
    /// One full from-scratch oracle per scenario, no dedupe, no cache —
    /// the per-scenario-recompute reference the differential harness and
    /// the speedup bench compare against.
    Full,
};

struct SweepOptions {
    RecomputeMode mode = RecomputeMode::Incremental;
    /// Compute per-scenario ScenarioAggregates (detour / content-locality
    /// shares) — the inputs of weighted batch aggregation. Off by
    /// default: plain impact sweeps don't pay the path-sampling cost.
    bool scenarioAggregates = false;
    /// Eyeball pairs sampled per unique routing state for detourShare
    /// (fixed seed, so the share is deterministic for a given substrate).
    std::size_t detourSamplePairs = 128;
    /// Optional trace (not owned). obs::Trace is single-threaded by
    /// design, so the sweep touches it only from the coordinating
    /// thread: phase spans plus an aggregated per-scenario count node.
    obs::Trace* trace = nullptr;
    /// Optional cancellation/deadline token (not owned). Checked at
    /// every phase boundary and between scenarios/oracle builds; a
    /// fired token makes run() raise net::CancelledError after the
    /// in-flight parallel region drains — the deadline-propagation
    /// path the observatory service routes request deadlines through.
    /// Results are never partially returned: a cancelled batch yields
    /// the typed error, not a half-filled SweepResult.
    const exec::CancelToken* cancel = nullptr;
};

/// What the batch actually cost, beyond per-scenario outcomes. Mirrored
/// onto `sweep.*` metrics when the substrate carries a registry.
struct SweepStats {
    std::size_t scenarios = 0;
    std::size_t errors = 0; ///< scenarios degraded to an Error outcome
    /// Scenarios whose degraded oracle was shared — with an earlier
    /// scenario in this batch (same cut-set digest) or with the
    /// substrate's oracle cache.
    std::size_t dedupHits = 0;
    std::size_t incrementalBuilds = 0;
    std::size_t fullBuilds = 0;
    /// Destinations re-solved across all incremental builds (the work a
    /// full recompute would have multiplied by topology size).
    std::size_t dirtyDestinations = 0;
    /// Scenarios that changed a derived layer (cables added / config
    /// overrides) and therefore re-derived their stack per scenario.
    std::size_t overlayScenarios = 0;
    /// Wall-clock seconds the batch took, measured around run() (also
    /// published as the `sweep.scenarios_per_sec` gauge). Timing only —
    /// excluded from determinism comparisons, which go through the
    /// per-scenario outcomes and aggregates.
    double elapsedSeconds = 0.0;

    [[nodiscard]] double scenariosPerSec() const {
        return elapsedSeconds > 0.0
                   ? static_cast<double>(scenarios) / elapsedSeconds
                   : 0.0;
    }
};

/// Cheap per-scenario summary metrics, computed when
/// SweepOptions::scenarioAggregates is set: impact summaries from the
/// report plus the detour share of the scenario's (degraded) routing
/// state and the content-locality share of its catalog. Deterministic —
/// fixed sampling seed per routing state, independent of batch order,
/// thread count and cache temperature — so weighted batch aggregates are
/// byte-stable too.
struct ScenarioAggregates {
    /// Mean page-load loss over the countries the report lists (0 when
    /// no country crossed the loss floor).
    double meanPageLoadLoss = 0.0;
    /// Longest country recovery (ImpactReport::resolutionDays).
    double resolutionDays = 0.0;
    /// Sampled intra-African detour share under this scenario's routing.
    double detourShare = 0.0;
    /// Content-locality share under this scenario's catalog (baseline
    /// catalog unless the scenario overrides content config).
    double contentLocalShare = 0.0;

    [[nodiscard]] bool operator==(const ScenarioAggregates&) const = default;
};

/// One scenario's outcome: the impact report, or the error that degraded
/// this scenario (validation failure, unknown cable) while the rest of
/// the batch proceeded.
struct ScenarioResult {
    std::string scenario; ///< ScenarioSpec::name
    net::Expected<outage::ImpactReport> outcome;
    /// Set iff the scenario scored and scenarioAggregates was requested.
    std::optional<ScenarioAggregates> aggregates;
};

struct SweepResult {
    std::vector<ScenarioResult> scenarios; ///< 1:1 with the input order
    SweepStats stats;
};

/// One scenario plus its importance weight — the unit a compiled
/// ScenarioBatch carries. Hand-written batches leave the weight at 1;
/// the Monte-Carlo sampler sets it to the target/proposal likelihood
/// ratio of its tilted draws.
struct WeightedSpec {
    core::ScenarioSpec spec;
    double weight = 1.0;
};

/// What a scenario catalog compiles to: an ordered list of weighted
/// specs, evaluated in one sweep.
struct ScenarioBatch {
    std::vector<WeightedSpec> entries;

    [[nodiscard]] std::vector<core::ScenarioSpec> specs() const;
    [[nodiscard]] std::vector<double> weights() const;
};

/// Importance-weighted batch aggregates: scored scenario i contributes
/// weight w_i / Σw to each mean (errored scenarios drop out of both
/// sums). When the batch came from the Monte-Carlo sampler the weights
/// are importance ratios, so the means are unbiased estimates under the
/// target correlation model even though high-impact tails were
/// oversampled. Accumulated in input order on the coordinating thread —
/// byte-stable across thread counts.
struct WeightedAggregate {
    double totalWeight = 0.0; ///< Σ w_i over scored scenarios
    std::size_t scored = 0;
    std::size_t errors = 0;
    double meanPageLoadLoss = 0.0;
    double meanResolutionDays = 0.0;
    double meanImpactedCountries = 0.0;
    /// Weighted means of the per-scenario detour / content shares; left
    /// at 0 unless the sweep ran with scenarioAggregates set.
    double meanDetourShare = 0.0;
    double meanContentLocalShare = 0.0;

    [[nodiscard]] bool operator==(const WeightedAggregate&) const = default;
};

/// A batch evaluation's full outcome: the per-scenario sweep result plus
/// the weighted aggregate over it.
struct BatchSweepResult {
    SweepResult sweep;
    WeightedAggregate aggregate;
};

/// Batched what-if evaluation over one Substrate: takes N ScenarioSpecs
/// (cut sets x repair policies x overlays) and returns N outcomes,
/// byte-identical to running each scenario through its own
/// WhatIfEngine::assess — the equivalence the differential harness in
/// tests/sweep locks — but sharing everything shareable:
///
///  * scenarios with the same cut-set digest share one degraded oracle
///    (and the substrate's OracleCache, when wired, shares them across
///    sweeps);
///  * unique cut sets are re-solved *incrementally* from the substrate's
///    baseline oracle (RouteOracle::deriveFiltered) — only destinations
///    whose selected route forest crosses a failed link are recomputed,
///    eagerly under the dense policy, lazily per queried row under the
///    sharded one;
///  * independent scenarios are scheduled across the substrate's
///    WorkerPool (oracle builds never nest inside pool lanes — the inner
///    recomputes run sequentially per lane).
///
/// A malformed scenario degrades to an Error outcome in its slot; the
/// rest of the batch is unaffected.
class ScenarioSweepEngine {
public:
    explicit ScenarioSweepEngine(const core::Substrate& substrate,
                                 SweepOptions options = {});

    /// Evaluates the batch. Deterministic: outcome i depends only on the
    /// substrate and scenarios[i], never on batch order, thread count or
    /// cache state.
    [[nodiscard]] SweepResult
    run(std::span<const core::ScenarioSpec> scenarios) const;

    /// Evaluates a compiled (catalog / sampler) batch and folds the
    /// outcomes into the importance-weighted aggregate. Determinism is
    /// run()'s plus: the aggregate depends only on per-scenario outcomes
    /// and the batch's weights.
    [[nodiscard]] BatchSweepResult runBatch(const ScenarioBatch& batch) const;

    /// The aggregation rule behind runBatch, exposed for re-aggregating
    /// an existing result under different weights. `weights` must be 1:1
    /// with `result.scenarios`; every weight must be finite and > 0.
    [[nodiscard]] static WeightedAggregate
    aggregate(const SweepResult& result, std::span<const double> weights);

    [[nodiscard]] const core::Substrate& substrate() const {
        return *substrate_;
    }
    [[nodiscard]] const SweepOptions& options() const { return options_; }

private:
    const core::Substrate* substrate_;
    SweepOptions options_;
};

} // namespace aio::sweep
