#include "sweep/scenario_sweep.hpp"

#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "content/catalog.hpp"
#include "core/studies.hpp"
#include "core/whatif.hpp"
#include "netbase/error.hpp"
#include "exec/worker_pool.hpp"
#include "netbase/rng.hpp"
#include "routing/oracle_cache.hpp"
#include "routing/route_oracle.hpp"
#include "routing/sharded_oracle.hpp"

namespace aio::sweep {

namespace {

/// One validated, non-overlay scenario waiting on its degraded oracle.
struct PlainJob {
    std::size_t slot = 0; ///< index into the result vector
    outage::OutageEvent event;
    std::size_t oracleIndex = 0; ///< into the unique-oracle list
    /// Scoring stream, already advanced through filterFor exactly as
    /// WhatIfEngine::assess advances it — so scoring matches assess()
    /// byte for byte even if filter derivation ever starts drawing for
    /// cable cuts, with no cross-scenario stream sharing to make the
    /// batch order observable.
    net::Rng rng{0};
};

/// One unique cut-set routing state shared by >= 1 plain scenarios.
struct OracleJob {
    route::LinkFilter filter;
    std::shared_ptr<const route::RouteOracle> oracle; ///< resolved
    bool fromCache = false;
    /// Sampled detour share of this routing state; computed once per
    /// unique oracle when scenarioAggregates is requested.
    double detourShare = 0.0;
};

/// Mean page-load loss over the countries a report lists (they are the
/// loss > 0 set; no country means no loss).
double meanCountryLoss(const outage::ImpactReport& report) {
    if (report.countries.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const outage::CountryImpact& impact : report.countries) {
        sum += impact.pageLoadLoss;
    }
    return sum / static_cast<double>(report.countries.size());
}

/// Runs fn(i) for every i in [0, count), across the pool when one is
/// wired in. fn must write only to index-owned slots. A fired `cancel`
/// token stops the loop with net::CancelledError (between chunks on the
/// pool path, between indices sequentially).
void forEach(exec::WorkerPool* pool, std::size_t count,
             const std::function<void(std::size_t)>& fn,
             const exec::CancelToken* cancel) {
    if (pool != nullptr && count > 1) {
        pool->parallelFor(
            count, [&](std::size_t i, std::size_t) { fn(i); }, cancel);
    } else {
        for (std::size_t i = 0; i < count; ++i) {
            if (cancel != nullptr) {
                cancel->checkpoint();
            }
            fn(i);
        }
    }
}

} // namespace

ScenarioSweepEngine::ScenarioSweepEngine(const core::Substrate& substrate,
                                         SweepOptions options)
    : substrate_(&substrate), options_(options) {}

SweepResult
ScenarioSweepEngine::run(std::span<const core::ScenarioSpec> scenarios) const {
    obs::MetricsRegistry* metrics = substrate_->metrics();
    obs::Trace* trace = options_.trace;
    const obs::Span sweepSpan = obs::Trace::enter(trace, "sweep");
    const obs::ScopedTimer batchTimer{metrics, "sweep.batch_seconds"};

    const std::size_t n = scenarios.size();
    const outage::ImpactAnalyzer& analyzer = substrate_->analyzer();
    exec::WorkerPool* pool = substrate_->pool();
    route::OracleCache* cache = substrate_->oracleCache();
    const bool incremental = options_.mode == RecomputeMode::Incremental;

    // Checked at every phase boundary (and inside forEach); a fired
    // token surfaces as net::CancelledError before any result assembly.
    const auto checkpoint = [&] {
        if (options_.cancel != nullptr) {
            options_.cancel->checkpoint();
        }
    };
    checkpoint();

    const auto startedAt = std::chrono::steady_clock::now();
    SweepResult result;
    result.stats.scenarios = n;
    // Per-slot outcome staging: lanes write only their own slot, the
    // coordinating thread assembles the vector afterwards.
    std::vector<std::optional<net::Expected<outage::ImpactReport>>> slots(n);
    std::vector<std::optional<ScenarioAggregates>> aggSlots(n);
    // Content locality of the substrate's baseline catalog — shared by
    // every scenario that does not override content config.
    const double baselineLocalShare =
        options_.scenarioAggregates
            ? content::LocalityAnalyzer{substrate_->catalog()}
                  .overallLocalShare()
            : 0.0;

    // ---- plan: validate, split plain vs overlay, dedupe cut sets ----
    std::vector<PlainJob> plain;
    std::vector<std::size_t> overlay;
    std::vector<OracleJob> oracles;
    {
        const obs::Span planSpan = obs::Trace::enter(trace, "plan");
        std::unordered_map<route::FilterDigest, std::size_t,
                           route::FilterDigestHash>
            oracleByDigest;
        for (std::size_t i = 0; i < n; ++i) {
            const core::ScenarioSpec& spec = scenarios[i];
            if (auto valid = spec.validate(*substrate_); !valid) {
                slots[i].emplace(valid.error());
                continue;
            }
            if (spec.hasOverlay()) {
                overlay.push_back(i);
                continue;
            }
            PlainJob job;
            job.slot = i;
            // makeEvent canonicalizes the cut set (sorted, deduplicated),
            // so permuted or duplicated cut lists digest to one oracle
            // below instead of triggering redundant rebuilds.
            auto event = spec.makeEvent(substrate_->registry());
            if (!event) {
                slots[i].emplace(event.error());
                continue;
            }
            job.event = std::move(event.value());
            // Mirror WhatIfEngine::assess exactly: a fresh seed+7 stream
            // per scenario, advanced through filterFor, then handed to
            // scoring — each scenario's draws depend only on the
            // substrate seed and its own spec, never on batch order.
            net::Rng rng{substrate_->seed() + 7};
            route::LinkFilter filter = analyzer.filterFor(job.event, rng);
            job.rng = rng;
            if (incremental) {
                const route::FilterDigest digest = filter.digest();
                if (const auto it = oracleByDigest.find(digest);
                    it != oracleByDigest.end()) {
                    job.oracleIndex = it->second;
                    ++result.stats.dedupHits;
                } else {
                    job.oracleIndex = oracles.size();
                    oracleByDigest.emplace(digest, oracles.size());
                    oracles.emplace_back().filter = std::move(filter);
                }
            } else {
                // Full reference mode: one build per scenario, no sharing.
                job.oracleIndex = oracles.size();
                oracles.emplace_back().filter = std::move(filter);
            }
            plain.push_back(std::move(job));
        }
    }

    // ---- build: resolve each unique degraded routing state ----
    {
        checkpoint();
        const obs::Span buildSpan = obs::Trace::enter(trace, "build");
        if (cache != nullptr && incremental) {
            // Cache lookups stay on the coordinating thread: a peek never
            // builds, so this is cheap, and it keeps lane work lock-free.
            for (OracleJob& job : oracles) {
                if (auto hit = cache->peek(job.filter)) {
                    job.oracle = std::move(hit);
                    job.fromCache = true;
                    ++result.stats.dedupHits;
                }
            }
        }
        const std::shared_ptr<const route::RouteOracle>& baseline =
            analyzer.baselineOracle();
        forEach(pool, oracles.size(), [&](std::size_t j) {
            OracleJob& job = oracles[j];
            if (job.oracle != nullptr) {
                return;
            }
            const obs::ScopedTimer buildTimer{metrics,
                                              "sweep.build_seconds"};
            if (incremental) {
                // Storage-policy neutral incremental rebuild: dense
                // re-solves its dirty set eagerly here; sharded defers
                // per-row work to the scoring queries. pool=nullptr —
                // this may already be inside a pool lane, and
                // parallelFor is not reentrant.
                job.oracle = baseline->deriveFiltered(job.filter, nullptr);
            } else {
                job.oracle = route::buildOracle(
                    substrate_->topology(),
                    substrate_->impactConfig().routeStorage, job.filter,
                    nullptr,
                    substrate_->impactConfig().shardedRouting);
            }
        }, options_.cancel);
        for (const OracleJob& job : oracles) {
            if (job.fromCache) {
                continue;
            }
            if (incremental) {
                ++result.stats.incrementalBuilds;
            } else {
                ++result.stats.fullBuilds;
            }
        }
        if (cache != nullptr && incremental) {
            for (const OracleJob& job : oracles) {
                if (!job.fromCache) {
                    cache->seed(job.filter, job.oracle);
                }
            }
        }
    }

    // ---- aggregates: one detour study per unique routing state ----
    if (options_.scenarioAggregates) {
        checkpoint();
        const obs::Span aggSpan = obs::Trace::enter(trace, "aggregates");
        forEach(pool, oracles.size(), [&](std::size_t j) {
            OracleJob& job = oracles[j];
            const core::ConnectivityStudies studies{substrate_->topology(),
                                                    *job.oracle};
            // Fixed stream per routing state: the share depends only on
            // the substrate and the oracle's filter, never on batch
            // order, thread count or cache temperature.
            net::Rng rng{substrate_->seed() + 11};
            job.detourShare =
                studies.detourStudy(options_.detourSamplePairs, rng)
                    .overallDetourShare;
        }, options_.cancel);
    }

    // ---- score: assess every plain scenario against its oracle ----
    {
        checkpoint();
        const obs::Span scoreSpan = obs::Trace::enter(trace, "score");
        forEach(pool, plain.size(), [&](std::size_t k) {
            const obs::ScopedTimer scenarioTimer{
                metrics, "sweep.scenario_seconds"};
            const PlainJob& job = plain[k];
            // The job's stream was advanced through filterFor at plan
            // time exactly as assess() advances its own; scoring from a
            // lane-local copy continues it where assess() would.
            net::Rng rng = job.rng;
            slots[job.slot].emplace(analyzer.assessWithOracle(
                job.event, *oracles[job.oracleIndex].oracle, rng));
            if (options_.scenarioAggregates) {
                const outage::ImpactReport& report = slots[job.slot]->value();
                aggSlots[job.slot].emplace(ScenarioAggregates{
                    meanCountryLoss(report), report.resolutionDays(),
                    oracles[job.oracleIndex].detourShare,
                    baselineLocalShare});
            }
        }, options_.cancel);
        if (trace != nullptr && !plain.empty()) {
            trace->count("scenario", plain.size());
        }
    }

    // Dirty-destination accounting happens *after* scoring: a dense
    // incremental oracle resolved its whole dirty set at build time, but
    // a sharded one resolves rows lazily as scoring queries touch them —
    // reading the counter here reports what the batch actually paid.
    if (incremental) {
        for (const OracleJob& job : oracles) {
            if (!job.fromCache) {
                result.stats.dirtyDestinations +=
                    job.oracle->resolvedDirtyDestinations();
            }
        }
    }

    // ---- overlay: scenarios that change a derived layer re-derive it ----
    {
        checkpoint();
        const obs::Span overlaySpan = obs::Trace::enter(trace, "overlay");
        forEach(pool, overlay.size(), [&](std::size_t k) {
            const obs::ScopedTimer scenarioTimer{
                metrics, "sweep.scenario_seconds"};
            const std::size_t slot = overlay[k];
            const core::ScenarioSpec& spec = scenarios[slot];
            phys::CableRegistry registry = substrate_->registry();
            for (const phys::SubseaCable& cable : spec.cablesAdded) {
                registry.addCable(cable);
            }
            // No cache / no pool inside a lane: the cache's miss path
            // builds with its own pool (reentrancy), and the overlay's
            // layers differ from the substrate's anyway. Results are
            // byte-identical either way (oracle content depends only on
            // topology + filter).
            const core::WhatIfEngine engine{
                substrate_->topology(),
                std::move(registry),
                spec.dnsOverride.value_or(substrate_->dnsConfig()),
                spec.contentOverride.value_or(substrate_->contentConfig()),
                spec.linkMapOverride.value_or(substrate_->linkConfig()),
                substrate_->seed(),
                nullptr,
                nullptr,
                metrics,
                substrate_->impactConfig()};
            // makeEvent resolves against the *augmented* registry and
            // canonicalizes the cut set; a cut-free event is an add-only
            // build-out future, scored against the overlay's own
            // (augmented) baseline.
            auto event = spec.makeEvent(engine.registry());
            if (!event) {
                slots[slot].emplace(event.error());
                return;
            }
            // Mirror engine.assess() draw for draw — a fresh seed+7
            // stream advanced through filterFor, then scoring — but
            // resolve the degraded oracle incrementally from the
            // overlay's baseline (oracle content depends only on
            // topology + filter, so results are byte-identical to a
            // from-scratch build).
            const outage::ImpactAnalyzer& overlayAnalyzer = engine.analyzer();
            net::Rng rng{substrate_->seed() + 7};
            const route::LinkFilter filter =
                overlayAnalyzer.filterFor(*event, rng);
            std::shared_ptr<const route::RouteOracle> degraded;
            if (filter.empty()) {
                degraded = overlayAnalyzer.baselineOracle();
            } else if (incremental) {
                degraded = overlayAnalyzer.baselineOracle()->deriveFiltered(
                    filter, nullptr);
            } else {
                degraded = route::buildOracle(
                    substrate_->topology(),
                    substrate_->impactConfig().routeStorage, filter, nullptr,
                    substrate_->impactConfig().shardedRouting);
            }
            slots[slot].emplace(
                overlayAnalyzer.assessWithOracle(*event, *degraded, rng));
            if (options_.scenarioAggregates) {
                const outage::ImpactReport& report = slots[slot]->value();
                const core::ConnectivityStudies studies{
                    substrate_->topology(), *degraded};
                net::Rng detourRng{substrate_->seed() + 11};
                aggSlots[slot].emplace(ScenarioAggregates{
                    meanCountryLoss(report), report.resolutionDays(),
                    studies.detourStudy(options_.detourSamplePairs, detourRng)
                        .overallDetourShare,
                    engine.contentLocalShare()});
            }
        }, options_.cancel);
        result.stats.overlayScenarios = overlay.size();
        if (trace != nullptr && !overlay.empty()) {
            trace->count("scenario", overlay.size());
        }
    }

    // ---- assemble + publish ----
    result.scenarios.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (!slots[i]->hasValue()) {
            ++result.stats.errors;
        }
        result.scenarios.push_back(ScenarioResult{scenarios[i].name,
                                                  std::move(*slots[i]),
                                                  std::move(aggSlots[i])});
    }
    result.stats.elapsedSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      startedAt)
            .count();
    if (metrics != nullptr) {
        metrics->counter("sweep.scenarios").add(result.stats.scenarios);
        metrics->counter("sweep.errors").add(result.stats.errors);
        metrics->counter("sweep.dedup_hits").add(result.stats.dedupHits);
        metrics->counter("sweep.incremental_builds")
            .add(result.stats.incrementalBuilds);
        metrics->counter("sweep.full_builds").add(result.stats.fullBuilds);
        metrics->counter("sweep.dirty_destinations")
            .add(result.stats.dirtyDestinations);
        metrics->counter("sweep.overlay_scenarios")
            .add(result.stats.overlayScenarios);
        metrics->gauge("sweep.scenarios_per_sec")
            .set(result.stats.scenariosPerSec());
    }
    return result;
}

std::vector<core::ScenarioSpec> ScenarioBatch::specs() const {
    std::vector<core::ScenarioSpec> out;
    out.reserve(entries.size());
    for (const WeightedSpec& entry : entries) {
        out.push_back(entry.spec);
    }
    return out;
}

std::vector<double> ScenarioBatch::weights() const {
    std::vector<double> out;
    out.reserve(entries.size());
    for (const WeightedSpec& entry : entries) {
        out.push_back(entry.weight);
    }
    return out;
}

BatchSweepResult
ScenarioSweepEngine::runBatch(const ScenarioBatch& batch) const {
    BatchSweepResult out{run(batch.specs()), {}};
    out.aggregate = aggregate(out.sweep, batch.weights());
    if (obs::MetricsRegistry* metrics = substrate_->metrics()) {
        metrics->gauge("sweep.weighted_page_load_loss")
            .set(out.aggregate.meanPageLoadLoss);
        metrics->gauge("sweep.weighted_resolution_days")
            .set(out.aggregate.meanResolutionDays);
    }
    return out;
}

WeightedAggregate
ScenarioSweepEngine::aggregate(const SweepResult& result,
                               std::span<const double> weights) {
    AIO_EXPECTS(weights.size() == result.scenarios.size(),
                "weights must be 1:1 with scenarios");
    WeightedAggregate agg;
    for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
        const ScenarioResult& scenario = result.scenarios[i];
        if (!scenario.outcome.hasValue()) {
            ++agg.errors;
            continue;
        }
        const double weight = weights[i];
        AIO_EXPECTS(std::isfinite(weight) && weight > 0.0,
                    "scenario weights must be finite and positive");
        agg.totalWeight += weight;
        ++agg.scored;
        const outage::ImpactReport& report = scenario.outcome.value();
        agg.meanPageLoadLoss += weight * meanCountryLoss(report);
        agg.meanResolutionDays += weight * report.resolutionDays();
        agg.meanImpactedCountries +=
            weight * static_cast<double>(report.impactedCountries().size());
        if (scenario.aggregates.has_value()) {
            agg.meanDetourShare += weight * scenario.aggregates->detourShare;
            agg.meanContentLocalShare +=
                weight * scenario.aggregates->contentLocalShare;
        }
    }
    if (agg.totalWeight > 0.0) {
        agg.meanPageLoadLoss /= agg.totalWeight;
        agg.meanResolutionDays /= agg.totalWeight;
        agg.meanImpactedCountries /= agg.totalWeight;
        agg.meanDetourShare /= agg.totalWeight;
        agg.meanContentLocalShare /= agg.totalWeight;
    }
    return agg;
}

} // namespace aio::sweep
