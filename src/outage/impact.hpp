#pragma once

#include <map>
#include <memory>

#include "content/catalog.hpp"
#include "dns/resolver.hpp"
#include "outage/events.hpp"
#include "routing/oracle_cache.hpp"
#include "routing/route_oracle.hpp"
#include "routing/sharded_oracle.hpp"

namespace aio::outage {

/// Impact of one event on one country.
struct CountryImpact {
    std::string country;
    /// Page-load failure share: 1 - success/baseline, where success needs
    /// DNS *and* content reachability (§5.2's point: pages die with their
    /// offshore resolvers even when content would have been reachable).
    double pageLoadLoss = 0.0;
    double dnsFailureShare = 0.0;
    /// Days until this country recovers: repairs, or earlier via transit
    /// re-negotiation (manual, slow — Ghana's March 2024 experience).
    double effectiveOutageDays = 0.0;

    /// Exact (bitwise on doubles) equality — the differential harnesses
    /// compare incremental vs full recompute reports with ==.
    [[nodiscard]] bool operator==(const CountryImpact&) const = default;
};

struct ImpactReport {
    OutageEvent event;
    std::vector<CountryImpact> countries; ///< countries with loss > 0
    /// Countries whose page-load loss exceeded the "impacted" threshold.
    [[nodiscard]] std::vector<std::string> impactedCountries() const;
    /// Longest country recovery — "time to resolve" as Radar would log it.
    [[nodiscard]] double resolutionDays() const;

    [[nodiscard]] bool operator==(const ImpactReport&) const = default;
};

struct ImpactConfig {
    double impactThreshold = 0.15;
    /// Mean days to re-negotiate emergency transit after a cut.
    double renegotiationMeanDays = 4.0;
    /// Mean days to shift onto (oversubscribed) pre-arranged backups.
    double degradedRecoveryMeanDays = 1.5;
    /// Page-load loss above which a country counts as hard-down (needs
    /// full re-negotiation rather than backup shuffling).
    double hardDownThreshold = 0.6;
    /// Share of a country's ASes knocked out by a power outage.
    double powerOutageAsShare = 0.7;
    /// Share of a country's links flapped by a routing incident.
    double routingIncidentLinkShare = 0.3;
    /// Top-site sample per eyeball AS when scoring page loads.
    int siteSample = 30;
    /// Storage policy of the route oracles the analyzer builds itself
    /// (baseline and per-event, when no cache is wired in; a wired-in
    /// cache builds with its own policy, which the Substrate keeps in
    /// agreement with this one). Both policies answer queries
    /// byte-identically; sharded is the continent-scale choice.
    route::StoragePolicy routeStorage = route::StoragePolicy::Dense;
    /// Sharded-build tuning, used when routeStorage == Sharded.
    route::ShardedOracleConfig shardedRouting = {};
};

/// Scores ground-truth events into per-country impact, combining the
/// routing, physical, DNS and content layers.
class ImpactAnalyzer {
public:
    /// `oracleCache` / `pool` are optional accelerators (not owned, must
    /// outlive the analyzer): the cache reuses degraded PathOracles across
    /// scenarios sharing a failure filter (it is seeded with the baseline
    /// oracle on construction), the pool parallelizes oracle builds.
    /// `metrics` (optional, not owned) records assessment counts and the
    /// `impact.assess_seconds` recompute-time histogram.
    ImpactAnalyzer(const topo::Topology& topology,
                   const phys::PhysicalLinkMap& linkMap,
                   const dns::ResolverEcosystem& resolvers,
                   const content::ContentCatalog& catalog,
                   ImpactConfig config = {},
                   route::OracleCache* oracleCache = nullptr,
                   exec::WorkerPool* pool = nullptr,
                   obs::MetricsRegistry* metrics = nullptr);

    /// Routing filter describing the event's physical/administrative
    /// damage (cable cuts -> failed subsea links; power/shutdown ->
    /// disabled ASes; routing incident -> flapped links).
    [[nodiscard]] route::LinkFilter filterFor(const OutageEvent& event,
                                              net::Rng& rng) const;

    /// Full impact assessment (computes a degraded route oracle).
    [[nodiscard]] ImpactReport assess(const OutageEvent& event,
                                      net::Rng& rng) const;

    /// Impact assessment against a caller-supplied degraded routing
    /// state. This is the scenario sweep's scoring path: the sweep
    /// derives the filter itself (ImpactAnalyzer::filterFor), obtains the
    /// oracle incrementally / deduped, then scores here. Byte-identical
    /// to assess() provided `rng` was advanced through filterFor exactly
    /// as assess() would (cable-cut filters draw nothing, so for cut
    /// events any fresh rng at the same state matches) and `degraded`
    /// equals the filter's recomputed oracle.
    [[nodiscard]] ImpactReport
    assessWithOracle(const OutageEvent& event,
                     const route::RouteOracle& degraded,
                     net::Rng& rng) const;

    /// The shared no-failure routing state this analyzer scores against
    /// (also the natural baseline for incremental scenario recomputes).
    [[nodiscard]] const std::shared_ptr<const route::RouteOracle>&
    baselineOracle() const {
        return baselineOracle_;
    }

    /// Page-load success share for one country under a routing state.
    [[nodiscard]] double
    pageLoadSuccess(std::string_view country,
                    const route::RouteOracle& oracle) const;

    [[nodiscard]] const ImpactConfig& config() const { return config_; }

private:
    /// The scoring core shared by assess / assessWithOracle: per-country
    /// page-load loss, DNS failure and recovery sampling against
    /// `degraded`. Uninstrumented; callers own the timer/counter.
    [[nodiscard]] ImpactReport
    scoreImpact(const OutageEvent& event,
                const route::RouteOracle& degraded, net::Rng& rng) const;

    const topo::Topology* topo_;
    const phys::PhysicalLinkMap* linkMap_;
    const dns::ResolverEcosystem* resolvers_;
    const content::ContentCatalog* catalog_;
    ImpactConfig config_;
    route::OracleCache* oracleCache_;
    exec::WorkerPool* pool_;
    obs::MetricsRegistry* metrics_;
    std::shared_ptr<const route::RouteOracle> baselineOracle_;
    std::map<std::string, double, std::less<>> baselineSuccess_;
};

} // namespace aio::outage
