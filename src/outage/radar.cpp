#include "outage/radar.hpp"

#include <algorithm>
#include <cmath>

#include "netbase/error.hpp"
#include "netbase/stats.hpp"

namespace aio::outage {

RadarMonitor::RadarMonitor(const topo::Topology& topology, RadarConfig config)
    : topo_(&topology), config_(config) {
    AIO_EXPECTS(config.samplesPerDay > 0.0, "samplesPerDay must be positive");
    AIO_EXPECTS(config.dropThreshold > 0.0 && config.dropThreshold < 1.0,
                "dropThreshold must be in (0,1)");
}

TrafficSeries
RadarMonitor::seriesFor(std::string_view country, double windowDays,
                        const std::vector<ImpactReport>& impacts,
                        net::Rng& rng) const {
    AIO_EXPECTS(windowDays > 0.0, "window must be positive");
    TrafficSeries series;
    series.country = std::string{country};
    series.samplesPerDay = config_.samplesPerDay;

    double base = 0.0;
    for (const topo::AsIndex as : topo_->asesInCountry(country)) {
        base += topo_->as(as).trafficWeight;
    }
    base = std::max(base, 0.1);

    const auto samples =
        static_cast<std::size_t>(windowDays * config_.samplesPerDay);
    series.values.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        const double day =
            static_cast<double>(i) / config_.samplesPerDay;
        // Mild diurnal cycle plus sampling noise.
        double value = base *
                       (1.0 + 0.15 * std::sin(2.0 * 3.141592653589793 *
                                              day)) *
                       (1.0 + rng.gaussian(0.0, config_.noiseStddev));
        for (const ImpactReport& report : impacts) {
            for (const CountryImpact& impact : report.countries) {
                if (impact.country != country ||
                    impact.effectiveOutageDays <= 0.0) {
                    continue;
                }
                const double start = report.event.startDay;
                const double end = start + impact.effectiveOutageDays;
                if (day >= start && day < end) {
                    value *= (1.0 - impact.pageLoadLoss);
                }
            }
        }
        series.values.push_back(std::max(0.0, value));
    }
    return series;
}

std::vector<RadarDetection>
RadarMonitor::detect(const TrafficSeries& series) const {
    std::vector<RadarDetection> detections;
    if (series.values.empty()) {
        return detections;
    }
    const double baseline = net::median(series.values);
    const double floor = baseline * (1.0 - config_.dropThreshold);

    std::size_t runStart = 0;
    int run = 0;
    const auto flush = [&](std::size_t endExclusive) {
        if (run >= config_.minConsecutiveSamples) {
            RadarDetection detection;
            detection.country = series.country;
            detection.startDay =
                static_cast<double>(runStart) / series.samplesPerDay;
            detection.durationDays =
                static_cast<double>(endExclusive - runStart) /
                series.samplesPerDay;
            detections.push_back(std::move(detection));
        }
        run = 0;
    };
    for (std::size_t i = 0; i < series.values.size(); ++i) {
        if (series.values[i] < floor) {
            if (run == 0) {
                runStart = i;
            }
            ++run;
        } else {
            flush(i);
        }
    }
    flush(series.values.size());
    return detections;
}

std::vector<RadarDetection>
RadarMonitor::detectAll(double windowDays,
                        const std::vector<ImpactReport>& impacts,
                        net::Rng& rng) const {
    std::vector<RadarDetection> out;
    for (const auto* country : net::CountryTable::world().african()) {
        const auto series =
            seriesFor(country->iso2, windowDays, impacts, rng);
        for (auto& detection : detect(series)) {
            out.push_back(std::move(detection));
        }
    }
    return out;
}

} // namespace aio::outage
