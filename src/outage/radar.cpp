#include "outage/radar.hpp"

#include <algorithm>
#include <cmath>

#include "netbase/error.hpp"
#include "netbase/stats.hpp"

namespace aio::outage {

void RadarConfig::validate() const {
    AIO_EXPECTS(std::isfinite(samplesPerDay) && samplesPerDay > 0.0,
                "samplesPerDay must be positive and finite");
    AIO_EXPECTS(std::isfinite(noiseStddev) && noiseStddev >= 0.0,
                "noiseStddev must be non-negative and finite");
    AIO_EXPECTS(dropThreshold > 0.0 && dropThreshold < 1.0,
                "dropThreshold must be in (0,1)");
    AIO_EXPECTS(minConsecutiveSamples >= 1,
                "minConsecutiveSamples must be at least 1");
}

double seriesFloor(std::span<const double> values,
                   std::span<const std::uint8_t> present,
                   const RadarConfig& config) {
    config.validate();
    AIO_EXPECTS(present.empty() || present.size() == values.size(),
                "presence mask must match the series length");
    std::vector<double> sample;
    if (present.empty()) {
        sample.assign(values.begin(), values.end());
    } else {
        sample.reserve(values.size());
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (present[i] != 0) {
                sample.push_back(values[i]);
            }
        }
    }
    if (sample.empty()) {
        return 0.0;
    }
    return net::median(sample) * (1.0 - config.dropThreshold);
}

std::vector<RadarDetection>
detectBelowFloor(std::string_view country, std::span<const double> values,
                 std::span<const std::uint8_t> present, double floor,
                 double samplesPerDay, const RadarConfig& config) {
    config.validate();
    AIO_EXPECTS(std::isfinite(samplesPerDay) && samplesPerDay > 0.0,
                "samplesPerDay must be positive and finite");
    AIO_EXPECTS(present.empty() || present.size() == values.size(),
                "presence mask must match the series length");
    std::vector<RadarDetection> detections;

    std::size_t runStart = 0;
    int run = 0;
    const auto flush = [&](std::size_t endExclusive) {
        if (run >= config.minConsecutiveSamples) {
            RadarDetection detection;
            detection.country = std::string{country};
            detection.startDay =
                static_cast<double>(runStart) / samplesPerDay;
            detection.durationDays =
                static_cast<double>(endExclusive - runStart) /
                samplesPerDay;
            detections.push_back(std::move(detection));
        }
        run = 0;
    };
    for (std::size_t i = 0; i < values.size(); ++i) {
        const bool sampled = present.empty() || present[i] != 0;
        if (sampled && values[i] < floor) {
            if (run == 0) {
                runStart = i;
            }
            ++run;
        } else {
            flush(i);
        }
    }
    // Tail boundary: a drop still below the floor at the end of the
    // series is an outage in progress — report it once it already spans
    // the minimum, with its duration truncated at the window edge.
    flush(values.size());
    return detections;
}

RadarMonitor::RadarMonitor(const topo::Topology& topology, RadarConfig config)
    : topo_(&topology), config_(config) {
    config_.validate();
}

TrafficSeries
RadarMonitor::seriesFor(std::string_view country, double windowDays,
                        const std::vector<ImpactReport>& impacts,
                        net::Rng& rng) const {
    AIO_EXPECTS(windowDays > 0.0, "window must be positive");
    TrafficSeries series;
    series.country = std::string{country};
    series.samplesPerDay = config_.samplesPerDay;

    double base = 0.0;
    for (const topo::AsIndex as : topo_->asesInCountry(country)) {
        base += topo_->as(as).trafficWeight;
    }
    base = std::max(base, 0.1);

    const auto samples =
        static_cast<std::size_t>(windowDays * config_.samplesPerDay);
    series.values.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        const double day =
            static_cast<double>(i) / config_.samplesPerDay;
        // Mild diurnal cycle plus sampling noise.
        double value = base *
                       (1.0 + 0.15 * std::sin(2.0 * 3.141592653589793 *
                                              day)) *
                       (1.0 + rng.gaussian(0.0, config_.noiseStddev));
        for (const ImpactReport& report : impacts) {
            for (const CountryImpact& impact : report.countries) {
                if (impact.country != country ||
                    impact.effectiveOutageDays <= 0.0) {
                    continue;
                }
                const double start = report.event.startDay;
                const double end = start + impact.effectiveOutageDays;
                if (day >= start && day < end) {
                    value *= (1.0 - impact.pageLoadLoss);
                }
            }
        }
        series.values.push_back(std::max(0.0, value));
    }
    return series;
}

std::vector<RadarDetection>
RadarMonitor::detect(const TrafficSeries& series) const {
    if (series.values.empty()) {
        return {};
    }
    const double floor = seriesFloor(series.values, {}, config_);
    return detectBelowFloor(series.country, series.values, {}, floor,
                            series.samplesPerDay, config_);
}

std::vector<RadarDetection>
RadarMonitor::detectAll(double windowDays,
                        const std::vector<ImpactReport>& impacts,
                        net::Rng& rng) const {
    std::vector<RadarDetection> out;
    for (const auto* country : net::CountryTable::world().african()) {
        const auto series =
            seriesFor(country->iso2, windowDays, impacts, rng);
        for (auto& detection : detect(series)) {
            out.push_back(std::move(detection));
        }
    }
    return out;
}

} // namespace aio::outage
