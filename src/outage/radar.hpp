#pragma once

#include <cstdint>
#include <map>
#include <span>

#include "outage/impact.hpp"

namespace aio::outage {

/// Per-country traffic series at daily resolution over the window.
struct TrafficSeries {
    std::string country;
    double samplesPerDay = 4.0;
    std::vector<double> values;

    [[nodiscard]] bool operator==(const TrafficSeries&) const = default;
};

struct RadarConfig {
    double samplesPerDay = 4.0;
    double noiseStddev = 0.04;    ///< multiplicative sampling noise
    double dropThreshold = 0.25;  ///< relative drop that counts as outage
    int minConsecutiveSamples = 2;

    /// Throws net::PreconditionError when any field is out of range
    /// (mirrors SupervisorConfig::validate): non-positive/non-finite
    /// samplesPerDay, negative or non-finite noiseStddev, dropThreshold
    /// outside (0,1), minConsecutiveSamples < 1. The last check matters:
    /// a zero/negative minimum makes the run-scan emit a zero-length
    /// "detection" at every recovered sample. Called by RadarMonitor and
    /// stream::OnlineRadarDetector so a bad config fails at construction,
    /// not mid-window.
    void validate() const;
};

/// One detection, as the Radar outage center would list it. Exact
/// (bitwise on doubles) equality — the streaming layer's differential
/// harness compares online-replay detections against the batch monitor
/// with ==.
struct RadarDetection {
    std::string country;
    double startDay = 0.0;
    double durationDays = 0.0;

    [[nodiscard]] bool operator==(const RadarDetection&) const = default;
};

/// Drop floor for one series: median of the present samples scaled by the
/// config's drop threshold. `present` flags which slots hold a sample
/// (empty span = every slot does); slots marked absent are excluded from
/// the baseline, which is how the online detector prices an incomplete
/// event log. Returns 0 when no sample is present (nothing can be below
/// an empty baseline).
[[nodiscard]] double seriesFloor(std::span<const double> values,
                                 std::span<const std::uint8_t> present,
                                 const RadarConfig& config);

/// Threshold run-scan shared by the batch RadarMonitor and the streaming
/// OnlineRadarDetector: a maximal run of at least `minConsecutiveSamples`
/// consecutive present samples below `floor` yields one detection. The
/// tail boundary is part of the contract: a drop still in progress when
/// the series ends is flushed and reported once it already spans the
/// minimum — an outage is not hidden just because the window closed on
/// top of it. Absent slots (`present[i] == 0`) break runs; an empty
/// `present` span means every slot holds a sample.
[[nodiscard]] std::vector<RadarDetection>
detectBelowFloor(std::string_view country, std::span<const double> values,
                 std::span<const std::uint8_t> present, double floor,
                 double samplesPerDay, const RadarConfig& config);

/// Cloudflare-Radar-style outage detection: build per-country traffic
/// series from ground-truth events (traffic drops by each event's
/// page-load loss for its effective duration), then recover outages by
/// thresholding drops against the series baseline. Reproduces the
/// paper's methodology of §3 on synthetic ground truth, which lets tests
/// check precision/recall of the detector itself.
class RadarMonitor {
public:
    RadarMonitor(const topo::Topology& topology, RadarConfig config = {});

    /// Builds the traffic series for one country from scored impacts.
    [[nodiscard]] TrafficSeries
    seriesFor(std::string_view country, double windowDays,
              const std::vector<ImpactReport>& impacts, net::Rng& rng) const;

    /// Threshold detector over one series.
    [[nodiscard]] std::vector<RadarDetection>
    detect(const TrafficSeries& series) const;

    /// Full pipeline over every African country.
    [[nodiscard]] std::vector<RadarDetection>
    detectAll(double windowDays, const std::vector<ImpactReport>& impacts,
              net::Rng& rng) const;

    [[nodiscard]] const RadarConfig& config() const { return config_; }

private:
    const topo::Topology* topo_;
    RadarConfig config_;
};

} // namespace aio::outage
