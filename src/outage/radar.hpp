#pragma once

#include <map>

#include "outage/impact.hpp"

namespace aio::outage {

/// Per-country traffic series at daily resolution over the window.
struct TrafficSeries {
    std::string country;
    double samplesPerDay = 4.0;
    std::vector<double> values;
};

struct RadarConfig {
    double samplesPerDay = 4.0;
    double noiseStddev = 0.04;    ///< multiplicative sampling noise
    double dropThreshold = 0.25;  ///< relative drop that counts as outage
    int minConsecutiveSamples = 2;
};

/// One detection, as the Radar outage center would list it.
struct RadarDetection {
    std::string country;
    double startDay = 0.0;
    double durationDays = 0.0;
};

/// Cloudflare-Radar-style outage detection: build per-country traffic
/// series from ground-truth events (traffic drops by each event's
/// page-load loss for its effective duration), then recover outages by
/// thresholding drops against the series baseline. Reproduces the
/// paper's methodology of §3 on synthetic ground truth, which lets tests
/// check precision/recall of the detector itself.
class RadarMonitor {
public:
    RadarMonitor(const topo::Topology& topology, RadarConfig config = {});

    /// Builds the traffic series for one country from scored impacts.
    [[nodiscard]] TrafficSeries
    seriesFor(std::string_view country, double windowDays,
              const std::vector<ImpactReport>& impacts, net::Rng& rng) const;

    /// Threshold detector over one series.
    [[nodiscard]] std::vector<RadarDetection>
    detect(const TrafficSeries& series) const;

    /// Full pipeline over every African country.
    [[nodiscard]] std::vector<RadarDetection>
    detectAll(double windowDays, const std::vector<ImpactReport>& impacts,
              net::Rng& rng) const;

    [[nodiscard]] const RadarConfig& config() const { return config_; }

private:
    const topo::Topology* topo_;
    RadarConfig config_;
};

} // namespace aio::outage
