#include "outage/events.hpp"

#include <algorithm>

#include "netbase/error.hpp"

namespace aio::outage {

std::string_view outageTypeName(OutageType type) {
    switch (type) {
    case OutageType::CableCut: return "subsea cable cut";
    case OutageType::PowerOutage: return "power outage";
    case OutageType::GovernmentShutdown: return "government shutdown";
    case OutageType::RoutingIncident: return "routing incident";
    }
    return "?";
}

bool OutageEvent::activeAtDay(double day) const {
    return day >= startDay && day < startDay + durationDays;
}

double OutageEvent::overlapDays(double fromDay, double toDay) const {
    const double lo = std::max(fromDay, startDay);
    const double hi = std::min(toDay, startDay + durationDays);
    return std::max(0.0, hi - lo);
}

OutageEngine::OutageEngine(const topo::Topology& topology,
                           const phys::CableRegistry& registry,
                           OutageConfig config)
    : topo_(&topology), registry_(&registry), config_(config) {
    AIO_EXPECTS(config.windowYears > 0.0, "window must be positive");
}

std::vector<OutageEvent>
OutageEngine::generateWindow(net::Rng& rng) const {
    std::vector<OutageEvent> events;
    generateForMacro(net::MacroRegion::Africa, config_.africa, rng, events);
    generateForMacro(net::MacroRegion::Europe, config_.europe, rng, events);
    generateForMacro(net::MacroRegion::NorthAmerica, config_.northAmerica,
                     rng, events);
    generateForMacro(net::MacroRegion::SouthAmerica, config_.southAmerica,
                     rng, events);
    generateForMacro(net::MacroRegion::AsiaPacific, config_.asiaPacific, rng,
                     events);
    std::ranges::sort(events, [](const OutageEvent& a, const OutageEvent& b) {
        return a.startDay < b.startDay;
    });
    return events;
}

void OutageEngine::generateForMacro(net::MacroRegion macro,
                                    const OutageRates& rates, net::Rng& rng,
                                    std::vector<OutageEvent>& out) const {
    const double windowDays = config_.windowYears * 365.0;
    const auto countries = net::CountryTable::world().inMacroRegion(macro);
    std::vector<double> populationWeights;
    populationWeights.reserve(countries.size());
    for (const auto* c : countries) {
        populationWeights.push_back(c->populationMillions);
    }

    const auto emit = [&](OutageType type, double meanDays) {
        OutageEvent event;
        event.type = type;
        event.macroRegion = macro;
        event.startDay = rng.uniformReal(0.0, windowDays);
        event.durationDays = std::max(0.02, rng.exponential(meanDays));
        if (type != OutageType::CableCut) {
            event.countries.push_back(std::string{
                countries[rng.weightedIndex(populationWeights)]->iso2});
        }
        out.push_back(std::move(event));
        return out.size() - 1;
    };

    const auto count = [&](double perYear) {
        return rng.poisson(perYear * config_.windowYears);
    };

    // Cable cuts: only meaningful where we model the cable plant (Africa).
    if (macro == net::MacroRegion::Africa) {
        const int cuts = count(rates.cableCutsPerYear);
        for (int i = 0; i < cuts; ++i) {
            const std::size_t idx =
                emit(OutageType::CableCut, config_.cableRepairMeanDays);
            OutageEvent& event = out[idx];
            // Pick a corridor weighted by its cable count, then cut the
            // primary cable plus correlated co-located systems.
            std::vector<double> corridorWeights;
            for (phys::CorridorId c = 0; c < registry_->corridorCount();
                 ++c) {
                corridorWeights.push_back(static_cast<double>(
                    registry_->cablesInCorridor(c).size()));
            }
            const phys::CorridorId corridor =
                rng.weightedIndex(corridorWeights);
            auto cables = registry_->cablesInCorridor(corridor);
            AIO_EXPECTS(!cables.empty(), "empty corridor selected");
            rng.shuffle(cables);
            event.cutCables.push_back(cables.front());
            for (std::size_t k = 1; k < cables.size(); ++k) {
                if (rng.bernoulli(config_.corridorCorrelationProb)) {
                    event.cutCables.push_back(cables[k]);
                }
            }
        }
    } else {
        // Other regions' cable cuts exist for the Fig. 4 frequency
        // comparison but have no modelled blast radius.
        const int cuts = count(rates.cableCutsPerYear);
        for (int i = 0; i < cuts; ++i) {
            emit(OutageType::CableCut, config_.cableRepairMeanDays * 0.5);
        }
    }

    const int power = count(rates.powerOutagesPerYear);
    for (int i = 0; i < power; ++i) {
        emit(OutageType::PowerOutage, config_.powerOutageMeanDays);
    }
    const int shutdowns = count(rates.shutdownsPerYear);
    for (int i = 0; i < shutdowns; ++i) {
        emit(OutageType::GovernmentShutdown, config_.shutdownMeanDays);
    }
    const int routing = count(rates.routingIncidentsPerYear);
    for (int i = 0; i < routing; ++i) {
        emit(OutageType::RoutingIncident, config_.routingIncidentMeanDays);
    }
}

} // namespace aio::outage
