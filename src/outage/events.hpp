#pragma once

#include <string>
#include <vector>

#include "netbase/rng.hpp"
#include "phys/linkmap.hpp"

namespace aio::outage {

/// Outage classes tracked by the Cloudflare-Radar-style analysis (§5.1).
enum class OutageType {
    CableCut,
    PowerOutage,
    GovernmentShutdown,
    RoutingIncident,
};

[[nodiscard]] std::string_view outageTypeName(OutageType type);

/// One ground-truth outage event.
struct OutageEvent {
    OutageType type = OutageType::PowerOutage;
    net::MacroRegion macroRegion = net::MacroRegion::Africa;
    double startDay = 0.0;
    /// Ground-truth time to full physical restoration. For cable cuts
    /// this is the ship-repair time; countries may *recover* earlier by
    /// re-negotiating transit (see ImpactAnalyzer).
    double durationDays = 0.0;
    std::vector<phys::CableId> cutCables; ///< CableCut only
    std::vector<std::string> countries;   ///< direct scope (power/shutdown/
                                          ///< routing); cable cuts derive
                                          ///< their blast radius from the
                                          ///< physical layer

    [[nodiscard]] bool operator==(const OutageEvent&) const = default;

    /// True while the event is ongoing at `day` (fault overlays and the
    /// radar detector both reason about instant-in-time activity).
    [[nodiscard]] bool activeAtDay(double day) const;
    /// Overlap in days with the window [fromDay, toDay).
    [[nodiscard]] double overlapDays(double fromDay, double toDay) const;
};

/// Yearly event rates for one macro region.
struct OutageRates {
    double cableCutsPerYear = 1.0;
    double powerOutagesPerYear = 2.0;
    double shutdownsPerYear = 0.0;
    double routingIncidentsPerYear = 2.0;

    [[nodiscard]] double totalPerYear() const {
        return cableCutsPerYear + powerOutagesPerYear + shutdownsPerYear +
               routingIncidentsPerYear;
    }
};

struct OutageConfig {
    double windowYears = 2.0;
    /// Rates per macro region; Africa's total is ~4x the mature regions'
    /// (Fig. 2c/§5.1: "Africa experiences 4x more outages").
    OutageRates africa{.cableCutsPerYear = 3.5,
                       .powerOutagesPerYear = 18.0,
                       .shutdownsPerYear = 6.0,
                       .routingIncidentsPerYear = 9.0};
    OutageRates europe{.cableCutsPerYear = 0.8,
                       .powerOutagesPerYear = 2.0,
                       .shutdownsPerYear = 0.0,
                       .routingIncidentsPerYear = 4.5};
    OutageRates northAmerica{.cableCutsPerYear = 0.5,
                             .powerOutagesPerYear = 2.5,
                             .shutdownsPerYear = 0.0,
                             .routingIncidentsPerYear = 4.0};
    OutageRates southAmerica{.cableCutsPerYear = 1.0,
                             .powerOutagesPerYear = 4.0,
                             .shutdownsPerYear = 0.5,
                             .routingIncidentsPerYear = 4.0};
    OutageRates asiaPacific{.cableCutsPerYear = 2.0,
                            .powerOutagesPerYear = 5.0,
                            .shutdownsPerYear = 1.5,
                            .routingIncidentsPerYear = 5.0};

    /// Probability that each additional cable in the primary victim's
    /// corridor is also cut by the same physical event (anchor drag /
    /// rock slide hits co-located systems, §5.1).
    double corridorCorrelationProb = 0.65;

    /// Duration parameters (days). Cable repairs need a ship: weeks.
    double cableRepairMeanDays = 21.0;
    double powerOutageMeanDays = 0.35;
    double shutdownMeanDays = 3.0;
    double routingIncidentMeanDays = 0.15;
};

/// Generates a ground-truth outage event stream over the analysis window.
/// African cable-cut events select a corridor (weighted by cable count)
/// and cut correlated subsets of it; other event types select countries
/// weighted by population.
class OutageEngine {
public:
    OutageEngine(const topo::Topology& topology,
                 const phys::CableRegistry& registry, OutageConfig config);

    /// One sampled window; deterministic for a given rng state.
    [[nodiscard]] std::vector<OutageEvent> generateWindow(net::Rng& rng) const;

    [[nodiscard]] const OutageConfig& config() const { return config_; }

private:
    void generateForMacro(net::MacroRegion macro, const OutageRates& rates,
                          net::Rng& rng, std::vector<OutageEvent>& out) const;

    const topo::Topology* topo_;
    const phys::CableRegistry* registry_;
    OutageConfig config_;
};

} // namespace aio::outage
