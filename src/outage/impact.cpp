#include "outage/impact.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "netbase/error.hpp"

namespace aio::outage {

std::vector<std::string> ImpactReport::impactedCountries() const {
    std::vector<std::string> out;
    for (const CountryImpact& impact : countries) {
        if (impact.effectiveOutageDays > 0.0) {
            out.push_back(impact.country);
        }
    }
    return out;
}

double ImpactReport::resolutionDays() const {
    double worst = 0.0;
    for (const CountryImpact& impact : countries) {
        worst = std::max(worst, impact.effectiveOutageDays);
    }
    return worst;
}

ImpactAnalyzer::ImpactAnalyzer(const topo::Topology& topology,
                               const phys::PhysicalLinkMap& linkMap,
                               const dns::ResolverEcosystem& resolvers,
                               const content::ContentCatalog& catalog,
                               ImpactConfig config,
                               route::OracleCache* oracleCache,
                               exec::WorkerPool* pool,
                               obs::MetricsRegistry* metrics)
    : topo_(&topology), linkMap_(&linkMap), resolvers_(&resolvers),
      catalog_(&catalog), config_(config), oracleCache_(oracleCache),
      pool_(pool), metrics_(metrics) {
    if (oracleCache_) {
        // The baseline (no-failure) state is the cache's natural seed:
        // every analyzer sharing the cache then shares one baseline build.
        baselineOracle_ = oracleCache_->get(route::LinkFilter{});
    } else {
        baselineOracle_ =
            route::buildOracle(topology, config_.routeStorage,
                               route::LinkFilter{}, pool_,
                               config_.shardedRouting);
    }
    for (const auto* country : net::CountryTable::world().african()) {
        baselineSuccess_.emplace(
            std::string{country->iso2},
            pageLoadSuccess(country->iso2, *baselineOracle_));
    }
}

double
ImpactAnalyzer::pageLoadSuccess(std::string_view country,
                                const route::RouteOracle& oracle) const {
    const dns::ResolutionSimulator dnsSim{*resolvers_};
    double success = 0.0;
    double weight = 0.0;
    for (const topo::AsIndex client : topo_->asesInCountry(country)) {
        if (!resolvers_->resolverOf(client)) {
            continue; // not an eyeball network
        }
        const double w = topo_->as(client).trafficWeight;
        weight += w;
        if (!dnsSim.resolve(client, oracle).resolved) {
            continue; // no DNS, no page — regardless of content locality
        }
        // Popularity-weighted content reachability over a site sample.
        const auto& sites = catalog_->sitesFor(country);
        double ok = 0.0;
        double total = 0.0;
        const int sample = std::min<int>(config_.siteSample,
                                         static_cast<int>(sites.size()));
        for (int i = 0; i < sample; ++i) {
            total += sites[static_cast<std::size_t>(i)].popularity;
            if (oracle.reachable(client,
                                 sites[static_cast<std::size_t>(i)].hostAs)) {
                ok += sites[static_cast<std::size_t>(i)].popularity;
            }
        }
        success += w * (total == 0.0 ? 0.0 : ok / total);
    }
    return weight == 0.0 ? 0.0 : success / weight;
}

route::LinkFilter ImpactAnalyzer::filterFor(const OutageEvent& event,
                                            net::Rng& rng) const {
    route::LinkFilter filter;
    switch (event.type) {
    case OutageType::CableCut: {
        std::unordered_set<phys::CableId> cuts(event.cutCables.begin(),
                                               event.cutCables.end());
        for (const auto& [a, b] : linkMap_->failedLinks(cuts)) {
            filter.disableLink(a, b);
        }
        break;
    }
    case OutageType::PowerOutage:
        for (const std::string& country : event.countries) {
            for (const topo::AsIndex as : topo_->asesInCountry(country)) {
                if (rng.bernoulli(config_.powerOutageAsShare)) {
                    filter.disableAs(as);
                }
            }
        }
        break;
    case OutageType::GovernmentShutdown:
        for (const std::string& country : event.countries) {
            for (const topo::AsIndex as : topo_->asesInCountry(country)) {
                filter.disableAs(as);
            }
        }
        break;
    case OutageType::RoutingIncident:
        for (const std::string& country : event.countries) {
            for (const auto& link : topo_->links()) {
                const bool touches =
                    topo_->as(link.a).countryCode == country ||
                    topo_->as(link.b).countryCode == country;
                if (touches &&
                    rng.bernoulli(config_.routingIncidentLinkShare)) {
                    filter.disableLink(link.a, link.b);
                }
            }
        }
        break;
    }
    return filter;
}

ImpactReport ImpactAnalyzer::assess(const OutageEvent& event,
                                    net::Rng& rng) const {
    const obs::ScopedTimer timer{metrics_, "impact.assess_seconds"};
    if (metrics_ != nullptr) {
        metrics_->counter("impact.assessments").add();
    }
    if (event.macroRegion != net::MacroRegion::Africa) {
        return scoreImpact(event, *baselineOracle_, rng);
    }
    const route::LinkFilter filter = filterFor(event, rng);
    // Reuse the cached scenario oracle when a cache is wired in; rebuild
    // under the configured storage policy (parallel if a pool is wired)
    // otherwise. The routing state depends only on the filter, so cached
    // and cold results are identical.
    const std::shared_ptr<const route::RouteOracle> degraded =
        oracleCache_ ? oracleCache_->get(filter)
                     : route::buildOracle(*topo_, config_.routeStorage,
                                          filter, pool_,
                                          config_.shardedRouting);
    return scoreImpact(event, *degraded, rng);
}

ImpactReport
ImpactAnalyzer::assessWithOracle(const OutageEvent& event,
                                 const route::RouteOracle& degraded,
                                 net::Rng& rng) const {
    const obs::ScopedTimer timer{metrics_, "impact.assess_seconds"};
    if (metrics_ != nullptr) {
        metrics_->counter("impact.assessments").add();
    }
    return scoreImpact(event, degraded, rng);
}

ImpactReport
ImpactAnalyzer::scoreImpact(const OutageEvent& event,
                            const route::RouteOracle& degraded,
                            net::Rng& rng) const {
    ImpactReport report;
    report.event = event;
    if (event.macroRegion != net::MacroRegion::Africa) {
        // Blast radius outside the modelled cable plant: score the named
        // countries as down for the ground-truth duration.
        for (const std::string& country : event.countries) {
            report.countries.push_back(CountryImpact{
                country, 1.0, 1.0, event.durationDays});
        }
        return report;
    }
    const dns::ResolutionSimulator dnsSim{*resolvers_};

    for (const auto* country : net::CountryTable::world().african()) {
        const auto it = baselineSuccess_.find(country->iso2);
        if (it == baselineSuccess_.end() || it->second <= 0.0) {
            continue;
        }
        const double now = pageLoadSuccess(country->iso2, degraded);
        const double loss = std::max(0.0, 1.0 - now / it->second);
        if (loss < 0.02) {
            continue;
        }
        CountryImpact impact;
        impact.country = std::string{country->iso2};
        impact.pageLoadLoss = loss;
        impact.dnsFailureShare =
            1.0 - dnsSim.resolvableShare(country->iso2, degraded);
        if (loss >= config_.impactThreshold) {
            if (event.type == OutageType::CableCut) {
                // Recovery depends on surviving physical capacity at the
                // country's coastal gateway: with an intact alternative
                // cable, operators shuffle onto (oversubscribed) backups
                // or manually re-negotiate transit; with the whole shore
                // dark, only the repair ship ends the outage (§4.1/§5.1).
                const std::string_view gateway =
                    phys::PhysicalLinkMap::coastalGateway(country->iso2);
                const auto& registry = linkMap_->registry();
                bool survivorExists = false;
                for (const phys::CableId id :
                     registry.cablesToEurope(gateway)) {
                    survivorExists |= std::ranges::find(event.cutCables,
                                                        id) ==
                                      event.cutCables.end();
                }
                double recover = event.durationDays;
                if (survivorExists) {
                    recover = loss >= config_.hardDownThreshold
                                  ? rng.exponential(
                                        config_.renegotiationMeanDays)
                                  : rng.exponential(
                                        config_.degradedRecoveryMeanDays);
                }
                impact.effectiveOutageDays =
                    std::min(event.durationDays, std::max(0.1, recover));
            } else {
                impact.effectiveOutageDays = event.durationDays;
            }
        }
        report.countries.push_back(std::move(impact));
    }
    return report;
}

} // namespace aio::outage
