#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/rng.hpp"
#include "phys/cable.hpp"
#include "topo/as_graph.hpp"

namespace aio::phys {

/// Physical medium carrying an AS-level adjacency.
enum class MediumKind {
    Terrestrial, ///< domestic or cross-border fibre
    Subsea,      ///< one or two submarine cables
    Satellite,   ///< fallback where no cable serves the pair
};

[[nodiscard]] std::string_view mediumKindName(MediumKind kind);

/// Physical realisation of one AS adjacency.
struct PhysicalPath {
    MediumKind medium = MediumKind::Terrestrial;
    std::vector<CableId> cables; ///< carriers; the link survives while at
                                 ///< least one carrier survives
};

/// Options controlling how AS links are mapped onto cables.
struct LinkMapConfig {
    /// Probability a same-region intra-African international link is
    /// terrestrial ("poor terrestrial connectivity" keeps this low, §2).
    double terrestrialProb = 0.3;
    /// Probability a subsea link provisions a backup cable at all.
    double backupProb = 0.5;
    /// Probability the backup rides the SAME corridor as the primary —
    /// the correlated-backup failure mode legislation ignores (§5.1).
    double backupSameCorridorProb = 0.85;

    [[nodiscard]] bool operator==(const LinkMapConfig&) const = default;
};

/// Maps every inter-AS adjacency of a topology to its physical carriers.
///
/// Landlocked countries reach the sea through a fixed coastal gateway
/// (Rwanda via Tanzania/Kenya, Ethiopia via Djibouti, ...), so a cable cut
/// at the gateway disconnects the hinterland too — part of the paper's
/// "magnitude of impact" story.
class PhysicalLinkMap {
public:
    PhysicalLinkMap(const topo::Topology& topology,
                    const CableRegistry& registry, net::Rng& rng,
                    LinkMapConfig config = {});

    [[nodiscard]] const PhysicalPath& forLink(topo::AsIndex a,
                                              topo::AsIndex b) const;

    /// All AS adjacencies that ride the given cable (as primary or backup).
    [[nodiscard]] std::vector<std::pair<topo::AsIndex, topo::AsIndex>>
    linksUsingCable(CableId cable) const;

    /// AS adjacencies that are DOWN when every cable in `cuts` is severed
    /// (i.e. subsea links whose carriers are all cut).
    [[nodiscard]] std::vector<std::pair<topo::AsIndex, topo::AsIndex>>
    failedLinks(const std::unordered_set<CableId>& cuts) const;

    /// Coastal gateway country used for subsea access from `iso2`
    /// (identity for coastal countries).
    [[nodiscard]] static std::string_view
    coastalGateway(std::string_view iso2);

    [[nodiscard]] const CableRegistry& registry() const { return *registry_; }
    [[nodiscard]] const topo::Topology& topology() const { return *topo_; }

private:
    static std::uint64_t key(topo::AsIndex a, topo::AsIndex b) {
        const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
        const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
        return (hi << 32) | lo;
    }

    PhysicalPath assign(const topo::AsLink& link, net::Rng& rng) const;

    const topo::Topology* topo_;
    const CableRegistry* registry_;
    LinkMapConfig config_;
    std::unordered_map<std::uint64_t, PhysicalPath> paths_;
};

} // namespace aio::phys
