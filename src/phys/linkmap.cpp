#include "phys/linkmap.hpp"

#include <algorithm>

#include "netbase/error.hpp"

namespace aio::phys {

std::string_view mediumKindName(MediumKind kind) {
    switch (kind) {
    case MediumKind::Terrestrial: return "terrestrial";
    case MediumKind::Subsea: return "subsea";
    case MediumKind::Satellite: return "satellite";
    }
    return "?";
}

std::string_view PhysicalLinkMap::coastalGateway(std::string_view iso2) {
    // Landlocked country -> coastal neighbour carrying its subsea access.
    struct Gateway {
        std::string_view from;
        std::string_view via;
    };
    static constexpr Gateway kGateways[] = {
        {"BF", "CI"}, {"ML", "SN"}, {"NE", "BJ"}, {"TD", "CM"},
        {"CF", "CM"}, {"SS", "KE"}, {"ET", "DJ"}, {"UG", "KE"},
        {"RW", "TZ"}, {"BI", "TZ"}, {"MW", "MZ"}, {"ZM", "ZA"},
        {"ZW", "ZA"}, {"BW", "ZA"}, {"LS", "ZA"}, {"SZ", "MZ"},
    };
    for (const Gateway& g : kGateways) {
        if (g.from == iso2) {
            return g.via;
        }
    }
    return iso2;
}

PhysicalLinkMap::PhysicalLinkMap(const topo::Topology& topology,
                                 const CableRegistry& registry,
                                 net::Rng& rng, LinkMapConfig config)
    : topo_(&topology), registry_(&registry), config_(config) {
    AIO_EXPECTS(topology.finalized(), "topology must be finalized");
    for (const topo::AsLink& link : topology.links()) {
        paths_.emplace(key(link.a, link.b), assign(link, rng));
    }
}

PhysicalPath PhysicalLinkMap::assign(const topo::AsLink& link,
                                     net::Rng& rng) const {
    const topo::AsInfo& a = topo_->as(link.a);
    const topo::AsInfo& b = topo_->as(link.b);
    PhysicalPath path;

    if (a.countryCode == b.countryCode) {
        path.medium = MediumKind::Terrestrial;
        return path;
    }

    const bool bothAfrican =
        net::isAfrican(a.region) && net::isAfrican(b.region);
    if (bothAfrican && a.region == b.region &&
        rng.bernoulli(config_.terrestrialProb)) {
        path.medium = MediumKind::Terrestrial;
        return path;
    }

    // Candidate cables via the coastal gateways of both endpoints. Links
    // to non-African endpoints accept any cable from the African gateway
    // to Europe (transit towards the global core is via the EU shore).
    const auto gwA = coastalGateway(a.countryCode);
    const auto gwB = coastalGateway(b.countryCode);
    std::vector<CableId> candidates;
    if (bothAfrican) {
        candidates = registry_->cablesServing(gwA, gwB);
    } else {
        const auto& african = net::isAfrican(a.region) ? gwA : gwB;
        candidates = registry_->cablesToEurope(african);
    }
    if (candidates.empty()) {
        // No cable serves the pair: satellite or long terrestrial haul.
        path.medium =
            bothAfrican ? MediumKind::Terrestrial : MediumKind::Satellite;
        return path;
    }

    path.medium = MediumKind::Subsea;
    // Capacity contracts concentrate on legacy systems: weight primary
    // selection by cable age, which is why the 2024 cuts of 2002-2012-era
    // cables were so damaging despite newer diverse systems existing.
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (const CableId c : candidates) {
        weights.push_back(static_cast<double>(
            std::max(1, 2026 - registry_->cable(c).readyForService)));
    }
    const CableId primary = candidates[rng.weightedIndex(weights)];
    path.cables.push_back(primary);
    if (candidates.size() > 1 && rng.bernoulli(config_.backupProb)) {
        // Backup provisioning: legislation requires "a" backup but not
        // corridor diversity, so most backups are correlated (§5.1).
        const CorridorId primaryCorridor =
            registry_->cable(primary).corridor;
        std::vector<CableId> sameCorridor;
        std::vector<CableId> diverse;
        for (const CableId c : candidates) {
            if (c == primary) continue;
            (registry_->cable(c).corridor == primaryCorridor ? sameCorridor
                                                             : diverse)
                .push_back(c);
        }
        const bool preferSame = rng.bernoulli(config_.backupSameCorridorProb);
        const std::vector<CableId>& pool =
            preferSame ? (sameCorridor.empty() ? diverse : sameCorridor)
                       : (diverse.empty() ? sameCorridor : diverse);
        if (!pool.empty()) {
            path.cables.push_back(rng.pick(pool));
        }
    }
    return path;
}

const PhysicalPath& PhysicalLinkMap::forLink(topo::AsIndex a,
                                             topo::AsIndex b) const {
    const auto it = paths_.find(key(a, b));
    AIO_EXPECTS(it != paths_.end(), "no physical path for this adjacency");
    return it->second;
}

std::vector<std::pair<topo::AsIndex, topo::AsIndex>>
PhysicalLinkMap::linksUsingCable(CableId cable) const {
    std::vector<std::pair<topo::AsIndex, topo::AsIndex>> out;
    for (const topo::AsLink& link : topo_->links()) {
        const PhysicalPath& path = forLink(link.a, link.b);
        if (std::ranges::find(path.cables, cable) != path.cables.end()) {
            out.emplace_back(link.a, link.b);
        }
    }
    return out;
}

std::vector<std::pair<topo::AsIndex, topo::AsIndex>>
PhysicalLinkMap::failedLinks(const std::unordered_set<CableId>& cuts) const {
    std::vector<std::pair<topo::AsIndex, topo::AsIndex>> out;
    for (const topo::AsLink& link : topo_->links()) {
        const PhysicalPath& path = forLink(link.a, link.b);
        if (path.medium != MediumKind::Subsea) {
            continue;
        }
        const bool allCut = std::ranges::all_of(
            path.cables, [&](CableId c) { return cuts.contains(c); });
        if (allCut && !path.cables.empty()) {
            out.emplace_back(link.a, link.b);
        }
    }
    return out;
}

} // namespace aio::phys
