#include "phys/cable.hpp"

#include <algorithm>

#include "netbase/error.hpp"

namespace aio::phys {

bool SubseaCable::landsIn(std::string_view iso2) const {
    return std::ranges::any_of(landings, [&](const LandingStation& station) {
        return station.countryCode == iso2;
    });
}

CorridorId CableRegistry::addCorridor(std::string name) {
    corridors_.push_back(Corridor{std::move(name)});
    return corridors_.size() - 1;
}

CableId CableRegistry::addCable(SubseaCable cable) {
    AIO_EXPECTS(cable.corridor < corridors_.size(),
                "cable corridor must exist");
    AIO_EXPECTS(cable.landings.size() >= 2,
                "a cable needs at least two landings");
    cables_.push_back(std::move(cable));
    return cables_.size() - 1;
}

const SubseaCable& CableRegistry::cable(CableId id) const {
    AIO_EXPECTS(id < cables_.size(), "cable id OOB");
    return cables_[id];
}

const Corridor& CableRegistry::corridor(CorridorId id) const {
    AIO_EXPECTS(id < corridors_.size(), "corridor id OOB");
    return corridors_[id];
}

std::vector<CableId>
CableRegistry::cablesLandingIn(std::string_view iso2) const {
    std::vector<CableId> out;
    for (CableId id = 0; id < cables_.size(); ++id) {
        if (cables_[id].landsIn(iso2)) {
            out.push_back(id);
        }
    }
    return out;
}

std::vector<CableId> CableRegistry::cablesServing(std::string_view a,
                                                  std::string_view b) const {
    std::vector<CableId> out;
    for (CableId id = 0; id < cables_.size(); ++id) {
        if (cables_[id].landsIn(a) && cables_[id].landsIn(b)) {
            out.push_back(id);
        }
    }
    return out;
}

std::vector<CableId>
CableRegistry::cablesToEurope(std::string_view iso2) const {
    const auto& world = net::CountryTable::world();
    std::vector<CableId> out;
    for (CableId id = 0; id < cables_.size(); ++id) {
        if (!cables_[id].landsIn(iso2)) {
            continue;
        }
        const bool reachesEurope = std::ranges::any_of(
            cables_[id].landings, [&](const LandingStation& station) {
                return world.contains(station.countryCode) &&
                       world.byCode(station.countryCode).region ==
                           net::Region::Europe;
            });
        if (reachesEurope) {
            out.push_back(id);
        }
    }
    return out;
}

std::vector<CableId>
CableRegistry::cablesInCorridor(CorridorId corridor) const {
    std::vector<CableId> out;
    for (CableId id = 0; id < cables_.size(); ++id) {
        if (cables_[id].corridor == corridor) {
            out.push_back(id);
        }
    }
    return out;
}

CableId CableRegistry::byName(std::string_view name) const {
    for (CableId id = 0; id < cables_.size(); ++id) {
        if (cables_[id].name == name) {
            return id;
        }
    }
    throw net::NotFoundError{"unknown cable: '" + std::string{name} + "'"};
}

std::size_t CableRegistry::sharedLandingCount(CableId a, CableId b) const {
    const SubseaCable& left = cable(a);
    const SubseaCable& right = cable(b);
    std::vector<std::string_view> seen;
    for (const LandingStation& station : left.landings) {
        if (right.landsIn(station.countryCode) &&
            std::ranges::find(seen, station.countryCode) == seen.end()) {
            seen.push_back(station.countryCode);
        }
    }
    return seen.size();
}

double CableRegistry::cutCorrelation(
    CableId primary, CableId other,
    const CableCorrelationConfig& config) const {
    if (primary == other) {
        return 1.0;
    }
    double prob = 0.0;
    if (cable(primary).corridor == cable(other).corridor) {
        prob += config.sameCorridorProb;
    }
    prob += config.sharedLandingProb *
            static_cast<double>(sharedLandingCount(primary, other));
    return std::clamp(prob, 0.0, config.maxProb);
}

namespace {

LandingStation landing(std::string_view iso2) {
    const auto& world = net::CountryTable::world();
    LandingStation station;
    station.countryCode = std::string{iso2};
    // Landing stations sit on the coast; the country centroid is a good
    // enough stand-in at continental scale (the Nautilus reproduction adds
    // its own geolocation error on top).
    station.location = world.byCode(iso2).centroid;
    return station;
}

SubseaCable makeCable(std::string name, CorridorId corridor, int rfs,
                      double capacity,
                      std::initializer_list<std::string_view> codes) {
    SubseaCable cable;
    cable.name = std::move(name);
    cable.corridor = corridor;
    cable.readyForService = rfs;
    cable.capacityTbps = capacity;
    for (const auto code : codes) {
        cable.landings.push_back(landing(code));
    }
    return cable;
}

} // namespace

CableRegistry CableRegistry::africanDefaults() {
    CableRegistry reg;
    // Corridors group cables whose seabed paths are co-located and whose
    // failures are therefore correlated.
    const CorridorId west = reg.addCorridor("West Coast");
    const CorridorId east = reg.addCorridor("East Coast / Red Sea");
    const CorridorId med = reg.addCorridor("Mediterranean");
    const CorridorId indian = reg.addCorridor("Indian Ocean");
    const CorridorId westDiverse = reg.addCorridor("West Coast (diverse)");
    const CorridorId panDiverse = reg.addCorridor("Pan-African (diverse)");

    // --- West coast: the March 2024 rock-slide victims (§5.1). ---
    reg.addCable(makeCable("WACS", west, 2012, 14.5,
                           {"ZA", "NA", "AO", "CD", "CG", "CM", "NG", "TG",
                            "GH", "CI", "CV", "PT", "GB"}));
    reg.addCable(makeCable("SAT-3", west, 2002, 4.6,
                           {"ZA", "AO", "GA", "CM", "NG", "BJ", "GH", "CI",
                            "SN", "ES", "PT"}));
    reg.addCable(makeCable("MainOne", west, 2010, 10.0,
                           {"NG", "GH", "CI", "SN", "PT"}));
    reg.addCable(makeCable("ACE", west, 2012, 12.8,
                           {"FR", "PT", "MR", "SN", "GM", "GW", "GN", "SL",
                            "LR", "CI", "GH", "BJ", "NG", "CM", "GA", "ST"}));
    reg.addCable(makeCable("Glo-1", west, 2010, 2.5,
                           {"GB", "PT", "SN", "GH", "NG"}));

    // --- East coast / Red Sea: EIG, Seacom, AAE-1 (§5.1). ---
    reg.addCable(makeCable("SEACOM", east, 2009, 12.0,
                           {"ZA", "MZ", "TZ", "KE", "DJ", "EG", "IT"}));
    reg.addCable(makeCable("EASSy", east, 2010, 36.0,
                           {"ZA", "MZ", "MG", "KM", "TZ", "KE", "SO", "DJ",
                            "SD"}));
    reg.addCable(makeCable("EIG", east, 2011, 3.8,
                           {"GB", "PT", "FR", "LY", "EG", "DJ", "IN"}));
    reg.addCable(makeCable("AAE-1", east, 2017, 40.0,
                           {"FR", "IT", "EG", "DJ", "IN", "SG"}));
    reg.addCable(makeCable("DARE1", east, 2021, 36.0, {"DJ", "SO", "KE"}));

    // --- Mediterranean shore. ---
    reg.addCable(makeCable("SeaMeWe-4", med, 2005, 4.6,
                           {"FR", "IT", "DZ", "TN", "EG", "IN", "SG"}));
    reg.addCable(makeCable("Atlas-Offshore", med, 2007, 1.2, {"MA", "FR"}));
    reg.addCable(makeCable("Hannibal", med, 2009, 3.2, {"TN", "IT"}));
    reg.addCable(makeCable("Alexandros", med, 2012, 2.0, {"EG", "FR", "LY"}));

    // --- Indian Ocean islands. ---
    reg.addCable(makeCable("LION", indian, 2009, 1.3, {"MG", "MU"}));
    reg.addCable(makeCable("METISS", indian, 2021, 3.2, {"MU", "MG", "ZA"}));
    reg.addCable(makeCable("PEACE-Sey", indian, 2023, 16.0,
                           {"SC", "KE", "EG", "FR"}));

    // --- The geographically diverse newcomers (§5.1 implication). ---
    reg.addCable(makeCable("Equiano", westDiverse, 2022, 144.0,
                           {"PT", "TG", "NG", "NA", "ZA"}));
    reg.addCable(makeCable("2Africa", panDiverse, 2023, 180.0,
                           {"GB", "FR", "PT", "MA", "SN", "CI", "GH", "NG",
                            "GA", "CD", "AO", "ZA", "MZ", "TZ", "KE", "DJ",
                            "EG", "IT"}));
    return reg;
}

} // namespace aio::phys
