#pragma once

#include <string>
#include <vector>

#include "netbase/geo.hpp"
#include "netbase/region.hpp"

namespace aio::phys {

using CableId = std::size_t;
using CorridorId = std::size_t;

/// A cable landing station.
struct LandingStation {
    std::string countryCode;
    net::GeoPoint location;
};

/// One submarine cable system.
struct SubseaCable {
    std::string name;
    std::vector<LandingStation> landings; ///< ordered along the route
    CorridorId corridor = 0;
    int readyForService = 2010;
    double capacityTbps = 10.0;

    [[nodiscard]] bool landsIn(std::string_view iso2) const;
};

/// A geographic corridor: cables laid along similar seabed paths whose
/// failures are correlated (§5.1 — WACS/MainOne/SAT3/ACE were all cut by
/// one rock slide near Abidjan; EIG/Seacom/AAE-1 by one East-coast event).
struct Corridor {
    std::string name;
};

/// Registry of subsea cables and their corridors. `africanDefaults()`
/// provides a curated model of the cables serving Africa (names, landing
/// sequences and corridors approximating the real systems the paper
/// discusses, including the geographically diverse Equiano and 2Africa).
class CableRegistry {
public:
    CorridorId addCorridor(std::string name);
    CableId addCable(SubseaCable cable);

    [[nodiscard]] std::size_t cableCount() const { return cables_.size(); }
    [[nodiscard]] std::size_t corridorCount() const {
        return corridors_.size();
    }
    [[nodiscard]] const SubseaCable& cable(CableId id) const;
    [[nodiscard]] const Corridor& corridor(CorridorId id) const;

    /// Cables with a landing in the given country.
    [[nodiscard]] std::vector<CableId>
    cablesLandingIn(std::string_view iso2) const;

    /// Cables landing in both countries (candidate carriers for a link).
    [[nodiscard]] std::vector<CableId>
    cablesServing(std::string_view a, std::string_view b) const;

    /// Cables landing in `iso2` and in any European country (transit to
    /// the EU upstreams).
    [[nodiscard]] std::vector<CableId>
    cablesToEurope(std::string_view iso2) const;

    [[nodiscard]] std::vector<CableId>
    cablesInCorridor(CorridorId corridor) const;

    /// Cable id by name; throws NotFoundError when unknown.
    [[nodiscard]] CableId byName(std::string_view name) const;

    static CableRegistry africanDefaults();

private:
    std::vector<SubseaCable> cables_;
    std::vector<Corridor> corridors_;
};

} // namespace aio::phys
