#pragma once

#include <string>
#include <vector>

#include "netbase/geo.hpp"
#include "netbase/region.hpp"

namespace aio::phys {

using CableId = std::size_t;
using CorridorId = std::size_t;

/// A cable landing station.
struct LandingStation {
    std::string countryCode;
    net::GeoPoint location;

    [[nodiscard]] bool operator==(const LandingStation&) const = default;
};

/// One submarine cable system.
struct SubseaCable {
    std::string name;
    std::vector<LandingStation> landings; ///< ordered along the route
    CorridorId corridor = 0;
    int readyForService = 2010;
    double capacityTbps = 10.0;

    [[nodiscard]] bool landsIn(std::string_view iso2) const;

    [[nodiscard]] bool operator==(const SubseaCable&) const = default;
};

/// A geographic corridor: cables laid along similar seabed paths whose
/// failures are correlated (§5.1 — WACS/MainOne/SAT3/ACE were all cut by
/// one rock slide near Abidjan; EIG/Seacom/AAE-1 by one East-coast event).
struct Corridor {
    std::string name;
};

/// Failure-correlation model over the registry's geographic metadata: two
/// cables are correlated when they share a corridor (co-located seabed
/// paths — the §5.1 rock-slide bundles) and/or landing countries (a shore
/// event hits every system terminating there). This is the target model
/// the Monte-Carlo scenario sampler estimates under.
struct CableCorrelationConfig {
    /// Probability that a same-corridor neighbour of the primary victim
    /// is cut by the same event (matches OutageConfig's corridor default).
    double sameCorridorProb = 0.65;
    /// Additional probability per landing country shared with the
    /// primary victim.
    double sharedLandingProb = 0.05;
    /// Upper clamp for the combined probability; must stay below 1 so
    /// importance reweighting is always well-defined.
    double maxProb = 0.95;

    [[nodiscard]] bool operator==(const CableCorrelationConfig&) const =
        default;
};

/// Registry of subsea cables and their corridors. `africanDefaults()`
/// provides a curated model of the cables serving Africa (names, landing
/// sequences and corridors approximating the real systems the paper
/// discusses, including the geographically diverse Equiano and 2Africa).
class CableRegistry {
public:
    CorridorId addCorridor(std::string name);
    CableId addCable(SubseaCable cable);

    [[nodiscard]] std::size_t cableCount() const { return cables_.size(); }
    [[nodiscard]] std::size_t corridorCount() const {
        return corridors_.size();
    }
    [[nodiscard]] const SubseaCable& cable(CableId id) const;
    [[nodiscard]] const Corridor& corridor(CorridorId id) const;

    /// Cables with a landing in the given country.
    [[nodiscard]] std::vector<CableId>
    cablesLandingIn(std::string_view iso2) const;

    /// Cables landing in both countries (candidate carriers for a link).
    [[nodiscard]] std::vector<CableId>
    cablesServing(std::string_view a, std::string_view b) const;

    /// Cables landing in `iso2` and in any European country (transit to
    /// the EU upstreams).
    [[nodiscard]] std::vector<CableId>
    cablesToEurope(std::string_view iso2) const;

    [[nodiscard]] std::vector<CableId>
    cablesInCorridor(CorridorId corridor) const;

    /// Cable id by name; throws NotFoundError when unknown.
    [[nodiscard]] CableId byName(std::string_view name) const;

    /// Number of distinct countries where both cables land (symmetric).
    [[nodiscard]] std::size_t sharedLandingCount(CableId a, CableId b) const;

    /// P(`other` is also cut | `primary` is cut) under `config`:
    /// sameCorridorProb when the two share a corridor, plus
    /// sharedLandingProb per shared landing country, clamped to
    /// [0, maxProb]. Returns 1 for `primary == other`.
    [[nodiscard]] double cutCorrelation(CableId primary, CableId other,
                                        const CableCorrelationConfig& config)
        const;

    static CableRegistry africanDefaults();

private:
    std::vector<SubseaCable> cables_;
    std::vector<Corridor> corridors_;
};

} // namespace aio::phys
