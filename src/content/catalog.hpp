#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netbase/rng.hpp"
#include "routing/route_oracle.hpp"

namespace aio::content {

/// Where the content of a popular website is actually served from for a
/// given country's users (the ISOC Pulse methodology, §3/§4.2).
enum class HostingClass {
    LocalDatacenter,  ///< hosted in the users' own country
    IxpOffnetCache,   ///< CDN off-net cache at an African IXP
    AfricanRegionalDc,///< African DC in another country (mostly ZA)
    EuropeDc,         ///< served from Europe
    NorthAmericaDc,   ///< served from the US
};

[[nodiscard]] std::string_view hostingClassName(HostingClass cls);
[[nodiscard]] bool isAfricanHosting(HostingClass cls);

/// One entry of a country's top-sites list.
struct Website {
    std::string domain;
    HostingClass hosting = HostingClass::EuropeDc;
    topo::AsIndex hostAs = 0;             ///< AS serving the content
    std::optional<topo::IxpIndex> cacheIxp; ///< for IxpOffnetCache
    double popularity = 1.0;              ///< Zipf-ish weight
};

/// Regional hosting-class mix for locally popular content.
struct HostingProfile {
    double localDatacenter = 0.1;
    double ixpOffnetCache = 0.1;
    double africanRegionalDc = 0.05;
    double europeDc = 0.55;
    double northAmericaDc = 0.2;

    [[nodiscard]] bool operator==(const HostingProfile&) const = default;
};

struct ContentConfig {
    int sitesPerCountry = 200; ///< scaled stand-in for the top-1000 list
    std::array<HostingProfile, 5> africa; ///< africanRegions() order
    static ContentConfig defaults();

    [[nodiscard]] bool operator==(const ContentConfig&) const = default;
};

/// Per-country top-site catalogs with hosting assignments.
class ContentCatalog {
public:
    ContentCatalog(const topo::Topology& topology, ContentConfig config,
                   std::uint64_t seed);

    [[nodiscard]] const std::vector<Website>&
    sitesFor(std::string_view countryCode) const;

    [[nodiscard]] const topo::Topology& topology() const { return *topo_; }
    [[nodiscard]] const ContentConfig& config() const { return config_; }

private:
    const topo::Topology* topo_;
    ContentConfig config_;
    std::map<std::string, std::vector<Website>, std::less<>> catalogs_;
};

/// Figure 2b: popularity-weighted share of content served from within
/// Africa, per region and overall; plus availability under degraded
/// routing (used by the outage engine: pages need DNS *and* content).
class LocalityAnalyzer {
public:
    explicit LocalityAnalyzer(const ContentCatalog& catalog);

    /// Popularity-weighted African-hosted share for one region.
    [[nodiscard]] double localShare(net::Region region) const;

    /// Continent-wide popularity-weighted African-hosted share.
    [[nodiscard]] double overallLocalShare() const;

    /// Share of a country's top sites whose host AS is reachable from a
    /// client AS under the given routing state.
    [[nodiscard]] double reachableShare(topo::AsIndex client,
                                        std::string_view countryCode,
                                        const route::RouteOracle& oracle) const;

private:
    const ContentCatalog* catalog_;
};

} // namespace aio::content
