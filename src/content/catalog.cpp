#include "content/catalog.hpp"

#include <algorithm>

#include "netbase/error.hpp"

namespace aio::content {

std::string_view hostingClassName(HostingClass cls) {
    switch (cls) {
    case HostingClass::LocalDatacenter: return "local datacenter";
    case HostingClass::IxpOffnetCache: return "IXP off-net cache";
    case HostingClass::AfricanRegionalDc: return "African regional DC";
    case HostingClass::EuropeDc: return "Europe DC";
    case HostingClass::NorthAmericaDc: return "N. America DC";
    }
    return "?";
}

bool isAfricanHosting(HostingClass cls) {
    return cls == HostingClass::LocalDatacenter ||
           cls == HostingClass::IxpOffnetCache ||
           cls == HostingClass::AfricanRegionalDc;
}

ContentConfig ContentConfig::defaults() {
    ContentConfig cfg;
    // Calibrated to §4.2: ~30% of content local overall; Southern Africa
    // most localized, Western least.
    cfg.africa[0] = HostingProfile{.localDatacenter = 0.12, // Northern
                                   .ixpOffnetCache = 0.08,
                                   .africanRegionalDc = 0.04,
                                   .europeDc = 0.58,
                                   .northAmericaDc = 0.18};
    cfg.africa[1] = HostingProfile{.localDatacenter = 0.06, // Western
                                   .ixpOffnetCache = 0.09,
                                   .africanRegionalDc = 0.03,
                                   .europeDc = 0.60,
                                   .northAmericaDc = 0.22};
    cfg.africa[2] = HostingProfile{.localDatacenter = 0.14, // Eastern
                                   .ixpOffnetCache = 0.16,
                                   .africanRegionalDc = 0.08,
                                   .europeDc = 0.44,
                                   .northAmericaDc = 0.18};
    cfg.africa[3] = HostingProfile{.localDatacenter = 0.07, // Central
                                   .ixpOffnetCache = 0.09,
                                   .africanRegionalDc = 0.06,
                                   .europeDc = 0.58,
                                   .northAmericaDc = 0.20};
    cfg.africa[4] = HostingProfile{.localDatacenter = 0.30, // Southern
                                   .ixpOffnetCache = 0.15,
                                   .africanRegionalDc = 0.08,
                                   .europeDc = 0.32,
                                   .northAmericaDc = 0.15};
    return cfg;
}

namespace {
const HostingProfile& profileFor(const ContentConfig& cfg,
                                 net::Region region) {
    const auto regions = net::africanRegions();
    for (std::size_t i = 0; i < regions.size(); ++i) {
        if (regions[i] == region) {
            return cfg.africa[i];
        }
    }
    throw net::PreconditionError{"not an African region"};
}
} // namespace

ContentCatalog::ContentCatalog(const topo::Topology& topology,
                               ContentConfig config, std::uint64_t seed)
    : topo_(&topology), config_(config) {
    AIO_EXPECTS(topology.finalized(), "topology must be finalized");
    AIO_EXPECTS(config.sitesPerCountry > 0, "sitesPerCountry must be > 0");

    // Host pools.
    std::vector<topo::AsIndex> euHosts;
    std::vector<topo::AsIndex> naHosts;
    std::vector<topo::AsIndex> zaHosts;
    std::vector<topo::AsIndex> contentProviders;
    for (topo::AsIndex i = 0; i < topology.asCount(); ++i) {
        const auto& info = topology.as(i);
        const bool hosty = info.type == topo::AsType::CloudProvider ||
                           info.type == topo::AsType::ContentProvider;
        if (!hosty) continue;
        if (info.type == topo::AsType::ContentProvider) {
            contentProviders.push_back(i);
        }
        if (info.region == net::Region::Europe) {
            euHosts.push_back(i);
        } else if (info.region == net::Region::NorthAmerica) {
            naHosts.push_back(i);
        } else if (net::isAfrican(info.region)) {
            zaHosts.push_back(i);
        }
    }
    AIO_EXPECTS(!euHosts.empty() && !naHosts.empty(),
                "topology lacks offshore hosting");

    net::Rng rng{seed};
    for (const auto* country : net::CountryTable::world().african()) {
        const HostingProfile& profile = profileFor(config_, country->region);
        // IXPs with caches usable by this country: in-country first, then
        // same-region.
        std::vector<topo::IxpIndex> cacheIxps;
        std::vector<topo::IxpIndex> regionalCacheIxps;
        for (const topo::IxpIndex ix : topology.africanIxps()) {
            if (!topology.ixp(ix).hasContentCache) continue;
            if (topology.ixp(ix).countryCode == country->iso2) {
                cacheIxps.push_back(ix);
            } else if (topology.ixp(ix).region == country->region) {
                regionalCacheIxps.push_back(ix);
            }
        }
        const auto domestic = topology.asesInCountry(country->iso2);

        std::vector<Website> sites;
        sites.reserve(static_cast<std::size_t>(config_.sitesPerCountry));
        for (int rank = 0; rank < config_.sitesPerCountry; ++rank) {
            Website site;
            site.domain = "site" + std::to_string(rank + 1) + "." +
                          std::string{country->iso2};
            // Zipf-ish popularity.
            site.popularity = 1.0 / (1.0 + rank);
            const double weights[] = {
                profile.localDatacenter, profile.ixpOffnetCache,
                profile.africanRegionalDc, profile.europeDc,
                profile.northAmericaDc};
            auto cls = static_cast<HostingClass>(rng.weightedIndex(
                std::span<const double>{weights, 5}));

            // Feasibility fallbacks: no domestic AS -> no local hosting;
            // no cache IXP in reach -> Europe.
            if (cls == HostingClass::LocalDatacenter && domestic.empty()) {
                cls = HostingClass::EuropeDc;
            }
            if (cls == HostingClass::IxpOffnetCache && cacheIxps.empty() &&
                regionalCacheIxps.empty()) {
                cls = HostingClass::EuropeDc;
            }
            if (cls == HostingClass::AfricanRegionalDc && zaHosts.empty()) {
                cls = HostingClass::EuropeDc;
            }
            site.hosting = cls;
            switch (cls) {
            case HostingClass::LocalDatacenter:
                site.hostAs = rng.pick(domestic);
                break;
            case HostingClass::IxpOffnetCache: {
                site.cacheIxp = !cacheIxps.empty()
                                    ? rng.pick(cacheIxps)
                                    : rng.pick(regionalCacheIxps);
                // Served by the content provider present at the cache; if
                // membership lacks one, any content provider AS.
                topo::AsIndex host = contentProviders.empty()
                                         ? rng.pick(euHosts)
                                         : rng.pick(contentProviders);
                for (const topo::AsIndex member :
                     topology.ixp(*site.cacheIxp).members) {
                    if (topology.as(member).type ==
                        topo::AsType::ContentProvider) {
                        host = member;
                        break;
                    }
                }
                site.hostAs = host;
                break;
            }
            case HostingClass::AfricanRegionalDc:
                site.hostAs = rng.pick(zaHosts);
                break;
            case HostingClass::EuropeDc:
                site.hostAs = rng.pick(euHosts);
                break;
            case HostingClass::NorthAmericaDc:
                site.hostAs = rng.pick(naHosts);
                break;
            }
            sites.push_back(std::move(site));
        }
        catalogs_.emplace(std::string{country->iso2}, std::move(sites));
    }
}

const std::vector<Website>&
ContentCatalog::sitesFor(std::string_view countryCode) const {
    const auto it = catalogs_.find(countryCode);
    if (it == catalogs_.end()) {
        throw net::NotFoundError{"no catalog for country '" +
                                 std::string{countryCode} + "'"};
    }
    return it->second;
}

LocalityAnalyzer::LocalityAnalyzer(const ContentCatalog& catalog)
    : catalog_(&catalog) {}

double LocalityAnalyzer::localShare(net::Region region) const {
    double local = 0.0;
    double total = 0.0;
    for (const auto* country : net::CountryTable::world().inRegion(region)) {
        for (const Website& site : catalog_->sitesFor(country->iso2)) {
            total += site.popularity;
            if (isAfricanHosting(site.hosting)) {
                local += site.popularity;
            }
        }
    }
    return total == 0.0 ? 0.0 : local / total;
}

double LocalityAnalyzer::overallLocalShare() const {
    double local = 0.0;
    double total = 0.0;
    for (const net::Region region : net::africanRegions()) {
        for (const auto* country :
             net::CountryTable::world().inRegion(region)) {
            for (const Website& site : catalog_->sitesFor(country->iso2)) {
                total += site.popularity;
                if (isAfricanHosting(site.hosting)) {
                    local += site.popularity;
                }
            }
        }
    }
    return total == 0.0 ? 0.0 : local / total;
}

double
LocalityAnalyzer::reachableShare(topo::AsIndex client,
                                 std::string_view countryCode,
                                 const route::RouteOracle& oracle) const {
    double ok = 0.0;
    double total = 0.0;
    for (const Website& site : catalog_->sitesFor(countryCode)) {
        total += site.popularity;
        if (oracle.reachable(client, site.hostAs)) {
            ok += site.popularity;
        }
    }
    return total == 0.0 ? 0.0 : ok / total;
}

} // namespace aio::content
