#include "measure/ixp_detect.hpp"

#include <algorithm>

namespace aio::measure {

IxpKnowledgeBase IxpKnowledgeBase::build(const topo::Topology& topology,
                                         double completeness,
                                         net::Rng& rng) {
    IxpKnowledgeBase kb;
    for (topo::IxpIndex ix = 0; ix < topology.ixpCount(); ++ix) {
        const bool registered = !net::isAfrican(topology.ixp(ix).region) ||
                                rng.bernoulli(completeness);
        if (registered) {
            kb.known_.push_back(ix);
            kb.trie_.insert(topology.ixp(ix).lanPrefix, ix);
        }
    }
    return kb;
}

IxpKnowledgeBase IxpKnowledgeBase::full(const topo::Topology& topology) {
    IxpKnowledgeBase kb;
    for (topo::IxpIndex ix = 0; ix < topology.ixpCount(); ++ix) {
        kb.known_.push_back(ix);
        kb.trie_.insert(topology.ixp(ix).lanPrefix, ix);
    }
    return kb;
}

bool IxpKnowledgeBase::knows(topo::IxpIndex ixp) const {
    return std::ranges::find(known_, ixp) != known_.end();
}

std::optional<topo::IxpIndex>
IxpKnowledgeBase::match(net::Ipv4Address address) const {
    return trie_.lookup(address);
}

IxpDetector::IxpDetector(const topo::Topology& topology, IxpKnowledgeBase kb)
    : topo_(&topology), kb_(std::move(kb)) {}

std::vector<topo::IxpIndex>
IxpDetector::detect(const TracerouteResult& trace) const {
    std::vector<topo::IxpIndex> out;
    for (const Hop& hop : trace.hops) {
        const auto ixp = kb_.match(hop.address);
        if (ixp && std::ranges::find(out, *ixp) == out.end()) {
            out.push_back(*ixp);
        }
    }
    return out;
}

} // namespace aio::measure
