#include "measure/traceroute.hpp"

#include <algorithm>

#include "netbase/error.hpp"
#include "netbase/geo.hpp"

namespace aio::measure {

std::vector<topo::AsIndex> TracerouteResult::asPath() const {
    std::vector<topo::AsIndex> out;
    for (const Hop& hop : hops) {
        if (hop.asIndex && (out.empty() || out.back() != *hop.asIndex)) {
            out.push_back(*hop.asIndex);
        }
    }
    return out;
}

std::vector<topo::IxpIndex> TracerouteResult::ixpsCrossed() const {
    std::vector<topo::IxpIndex> out;
    for (const Hop& hop : hops) {
        if (hop.ixp && std::ranges::find(out, *hop.ixp) == out.end()) {
            out.push_back(*hop.ixp);
        }
    }
    return out;
}

double TracerouteResult::lastRttMs() const {
    return hops.empty() ? 0.0 : hops.back().rttMs;
}

TracerouteEngine::TracerouteEngine(const topo::Topology& topology,
                                   const route::RouteOracle& oracle,
                                   TracerouteConfig config)
    : topo_(&topology), oracle_(&oracle), config_(config) {
    AIO_EXPECTS(topology.finalized(), "topology must be finalized");
}

TracerouteResult TracerouteEngine::trace(topo::AsIndex src,
                                         net::Ipv4Address target,
                                         net::Rng& rng,
                                         bool targetResponds) const {
    AIO_EXPECTS(src < topo_->asCount(), "source AS OOB");
    TracerouteResult result;
    result.srcAs = src;
    result.target = target;
    result.dstAs = topo_->originOf(target);
    if (!result.dstAs) {
        // Unrouted space (e.g. an unadvertised IXP LAN): packets die at
        // the source's border. A single in-src hop is all we see.
        Hop hop;
        hop.address = topo_->routerAddress(src, 1);
        hop.asIndex = src;
        hop.rttMs = rng.exponential(1.0);
        hop.trueLocation = topo_->as(src).location;
        result.hops.push_back(hop);
        return result;
    }

    const auto asPath = oracle_->path(src, *result.dstAs);
    if (asPath.empty()) {
        return result; // unreachable under current routing
    }

    double rtt = 0.0;
    net::GeoPoint prev = topo_->as(src).location;
    const std::uint64_t flowSalt =
        (static_cast<std::uint64_t>(src) << 32) ^ target.value();
    for (std::size_t i = 0; i < asPath.size(); ++i) {
        const topo::AsIndex as = asPath[i];
        const net::GeoPoint here = topo_->as(as).location;
        rtt += 2.0 * net::fiberDelayMs(net::haversineKm(prev, here),
                                       config_.pathStretch) +
               rng.exponential(config_.perHopJitterMs);
        prev = here;

        const bool isLast = (i + 1 == asPath.size());
        if (!isLast || !targetResponds) {
            // Intermediate border-router hop (may be anonymous).
            if (!rng.bernoulli(config_.hopLossProb)) {
                Hop hop;
                hop.address = topo_->routerAddress(as, flowSalt + i);
                hop.asIndex = as;
                hop.rttMs = rtt;
                hop.trueLocation = here;
                result.hops.push_back(hop);
            }
        } else {
            // Final hop: the target answers from its own address.
            Hop hop;
            hop.address = target;
            hop.asIndex = as;
            hop.rttMs = rtt;
            hop.trueLocation = here;
            result.hops.push_back(hop);
            result.reachedTarget = true;
        }

        // IXP LAN hop when the next adjacency is public peering.
        if (!isLast) {
            const auto ixp = topo_->ixpBetween(as, asPath[i + 1]);
            if (ixp) {
                const auto& fabric = topo_->ixp(*ixp);
                const net::GeoPoint at = fabric.location;
                rtt += 2.0 * net::fiberDelayMs(net::haversineKm(prev, at),
                                               config_.pathStretch) +
                       rng.exponential(config_.perHopJitterMs);
                prev = at;
                if (!rng.bernoulli(config_.hopLossProb)) {
                    Hop hop;
                    // The next AS's router port on the exchange fabric.
                    hop.address = fabric.lanPrefix.addressAt(
                        1 + (topo_->as(asPath[i + 1]).asn %
                             (fabric.lanPrefix.size() - 2)));
                    hop.ixp = *ixp;
                    hop.rttMs = rtt;
                    hop.trueLocation = at;
                    result.hops.push_back(hop);
                }
            }
        }
    }
    return result;
}

TracerouteResult TracerouteEngine::traceToAs(topo::AsIndex src,
                                             topo::AsIndex dst,
                                             net::Rng& rng) const {
    AIO_EXPECTS(dst < topo_->asCount(), "destination AS OOB");
    return trace(src, topo_->routerAddress(dst, 0), rng);
}

} // namespace aio::measure
