#pragma once

#include <cstdint>
#include <vector>

#include "netbase/ip.hpp"
#include "topo/as_graph.hpp"

namespace aio::measure {

/// Per-AS-type responsiveness parameters.
///
/// Two distinct phenomena drive Table 1's coverage gaps and both are
/// modelled separately:
///  * `antVisibleProb` — whether the network has *any* address known
///    responsive to the multi-protocol, history-based ANT methodology
///    (mobile CGNAT gateways are famously visible to it);
///  * `icmpDarkProb` / `icmpDensityMean` — whether, and how densely, the
///    network answers one-shot ICMP probes to arbitrary addresses (the
///    CAIDA routed-/24 and YARRP methodologies). African allocations are
///    sparsely used, so densities are low.
struct TypeResponsiveness {
    double antVisibleProb = 0.8;
    double icmpDarkProb = 0.3;
    double icmpDensityMean = 0.06;
    /// Probability the network's border routers answer TTL-expired for
    /// transit traceroutes (how YARRP usually "sees" a stub AS).
    double borderRespondProb = 0.4;
};

struct ResponsivenessConfig {
    TypeResponsiveness mobile{.antVisibleProb = 0.96,
                              .icmpDarkProb = 0.28,
                              .icmpDensityMean = 0.10,
                              .borderRespondProb = 0.75};
    TypeResponsiveness access{.antVisibleProb = 0.85,
                              .icmpDarkProb = 0.35,
                              .icmpDensityMean = 0.06,
                              .borderRespondProb = 0.35};
    TypeResponsiveness enterprise{.antVisibleProb = 0.50,
                                  .icmpDarkProb = 0.60,
                                  .icmpDensityMean = 0.05,
                                  .borderRespondProb = 0.10};
    TypeResponsiveness education{.antVisibleProb = 0.62,
                                 .icmpDarkProb = 0.50,
                                 .icmpDensityMean = 0.06,
                                 .borderRespondProb = 0.20};
    TypeResponsiveness transitOrContent{.antVisibleProb = 0.95,
                                        .icmpDarkProb = 0.10,
                                        .icmpDensityMean = 0.15,
                                        .borderRespondProb = 0.9};
    /// Response probability of an address that is on a curated hitlist
    /// (its responsiveness is the reason it was listed).
    double curatedRespondProb = 0.9;
    /// Probability an (advertised) IXP LAN address answers probes.
    double ixpLanRespondProb = 0.85;
    /// UDP traceroute (YARRP) to an arbitrary address rarely elicits an
    /// answer from the target itself (CPE/CGNAT drop it).
    double yarrpResponseScale = 0.15;
};

/// Deterministic responsiveness oracle over a topology.
class ResponsivenessModel {
public:
    ResponsivenessModel(const topo::Topology& topology,
                        ResponsivenessConfig config, std::uint64_t seed);

    /// Whether the ANT methodology has responsive history for this AS.
    [[nodiscard]] bool antVisible(topo::AsIndex as) const;

    /// Density of ICMP-responsive addresses inside this AS (0 when the
    /// network filters probes entirely).
    [[nodiscard]] double icmpDensity(topo::AsIndex as) const;

    /// Whether one specific address answers a one-shot ICMP probe.
    [[nodiscard]] bool respondsToPing(net::Ipv4Address address) const;

    /// Whether a *curated* hitlist entry answers (it was listed because it
    /// responds; only a little churn since the list snapshot).
    [[nodiscard]] bool respondsToCurated(net::Ipv4Address address) const;

    /// Whether the address answers a YARRP-style UDP probe.
    [[nodiscard]] bool respondsToYarrp(net::Ipv4Address address) const;

    /// Whether the AS's border answers TTL-expired for traceroute transit
    /// (per-AS property; deterministic).
    [[nodiscard]] bool borderRespondsToTraceroute(topo::AsIndex as) const;

    [[nodiscard]] const ResponsivenessConfig& config() const {
        return config_;
    }

private:
    [[nodiscard]] const TypeResponsiveness&
    paramsFor(topo::AsType type) const;

    const topo::Topology* topo_;
    ResponsivenessConfig config_;
    std::uint64_t seed_;
    std::vector<std::uint8_t> antVisible_;
    std::vector<double> density_;
    std::vector<std::uint8_t> borderResponds_;
};

} // namespace aio::measure
