#pragma once

#include <optional>
#include <vector>

#include "netbase/rng.hpp"
#include "routing/route_oracle.hpp"

namespace aio::measure {

/// One traceroute hop as a measurement platform would record it.
struct Hop {
    net::Ipv4Address address;
    std::optional<topo::AsIndex> asIndex; ///< origin AS; empty for IXP LANs
    std::optional<topo::IxpIndex> ixp;    ///< set when this is an IXP LAN hop
    double rttMs = 0.0;
    net::GeoPoint trueLocation; ///< ground truth (geolocation services add
                                ///< error on top, see GeolocationModel)
};

/// Result of one simulated traceroute.
struct TracerouteResult {
    topo::AsIndex srcAs = 0;
    net::Ipv4Address target;
    std::optional<topo::AsIndex> dstAs; ///< origin of target, if routed
    bool reachedTarget = false;         ///< final hop responded
    std::vector<Hop> hops;

    /// Distinct ASes in hop order (IXP LAN hops skipped).
    [[nodiscard]] std::vector<topo::AsIndex> asPath() const;
    /// IXPs whose LAN appears among the hops.
    [[nodiscard]] std::vector<topo::IxpIndex> ixpsCrossed() const;
    /// End-to-end RTT of the last responding hop.
    [[nodiscard]] double lastRttMs() const;
};

struct TracerouteConfig {
    double perHopJitterMs = 0.4; ///< queueing noise added per hop
    double hopLossProb = 0.03;   ///< probability a hop is anonymous (***)
    double pathStretch = 1.3;    ///< fibre-vs-geodesic stretch factor
};

/// Simulates traceroute over the AS topology + policy routes.
///
/// Hop sequence: one border router per AS on the policy path, plus an IXP
/// LAN hop wherever the crossed adjacency is public peering at an IXP —
/// exactly the signal traIXroute-style detection keys on. RTTs accumulate
/// great-circle fibre delay between consecutive hop locations, so routes
/// that hairpin through Europe show the characteristic latency penalty.
class TracerouteEngine {
public:
    TracerouteEngine(const topo::Topology& topology,
                     const route::RouteOracle& oracle,
                     TracerouteConfig config = {});

    /// Traceroute from an AS toward an arbitrary address. `targetResponds`
    /// lets scanners overlay their responsiveness model for the final hop.
    [[nodiscard]] TracerouteResult trace(topo::AsIndex src,
                                         net::Ipv4Address target,
                                         net::Rng& rng,
                                         bool targetResponds = true) const;

    /// Convenience: traceroute to a stable router address inside dst.
    [[nodiscard]] TracerouteResult traceToAs(topo::AsIndex src,
                                             topo::AsIndex dst,
                                             net::Rng& rng) const;

    [[nodiscard]] const topo::Topology& topology() const { return *topo_; }

private:
    const topo::Topology* topo_;
    const route::RouteOracle* oracle_;
    TracerouteConfig config_;
};

} // namespace aio::measure
