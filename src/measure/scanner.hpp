#pragma once

#include <set>
#include <string>
#include <vector>

#include "measure/responsiveness.hpp"
#include "measure/traceroute.hpp"
#include "netbase/region.hpp"

namespace aio::measure {

/// A target list for ping-based scanning. `curated` marks lists built from
/// responsiveness history (ANT) as opposed to blind address selection
/// (routed-/24): curated entries answer with high probability because
/// answering is why they were listed.
struct Hitlist {
    std::string name;
    bool curated = false;
    std::vector<net::Ipv4Address> entries;
};

/// Builds the two hitlist families Table 1 evaluates.
class HitlistBuilder {
public:
    HitlistBuilder(const topo::Topology& topology,
                   const ResponsivenessModel& model);

    /// ANT-style: history-curated responsive addresses. Large; includes
    /// every AS the methodology has ever seen respond, plus a share of
    /// IXP LAN addresses discovered in historical traceroutes.
    [[nodiscard]] Hitlist buildAntStyle(net::Rng& rng,
                                        double ixpHistoricProb = 0.17) const;

    /// CAIDA routed-/24-style: one random address per /24 of every prefix
    /// in the global BGP table. IXP LANs are only present when advertised
    /// (most are not — §6.1).
    [[nodiscard]] Hitlist buildCaidaStyle(net::Rng& rng) const;

private:
    const topo::Topology* topo_;
    const ResponsivenessModel* model_;
};

/// What a scan campaign observed.
struct ScanOutcome {
    std::string dataset;
    std::size_t probesSent = 0;
    std::size_t responses = 0;
    std::set<topo::AsIndex> observedAses;
    std::set<topo::IxpIndex> observedIxps;
};

/// ICMP ping sweep over a hitlist.
class PingScanner {
public:
    PingScanner(const topo::Topology& topology,
                const ResponsivenessModel& model);

    [[nodiscard]] ScanOutcome scan(const Hitlist& hitlist) const;

private:
    const topo::Topology* topo_;
    const ResponsivenessModel* model_;
};

/// YARRP-style randomized traceroute scan from one vantage AS toward one
/// random address per routed /24. Observes target origins *and* every AS /
/// IXP LAN that shows up as an intermediate hop.
class YarrpScanner {
public:
    YarrpScanner(const topo::Topology& topology,
                 const TracerouteEngine& engine,
                 const ResponsivenessModel& model);

    [[nodiscard]] ScanOutcome scan(topo::AsIndex vantage, net::Rng& rng,
                                   double per24SampleRate = 1.0) const;

private:
    const topo::Topology* topo_;
    const TracerouteEngine* engine_;
    const ResponsivenessModel* model_;
};

/// Coverage of one dataset over the African Internet (Table 1): fraction
/// of expected mobile ASNs / non-mobile ASNs / IXPs observed, plus the
/// per-region breakdown §6.1 discusses.
struct CoverageReport {
    std::string dataset;
    std::size_t entries = 0;
    double mobileAsnCoverage = 0.0;
    double nonMobileAsnCoverage = 0.0;
    double ixpCoverage = 0.0;
    struct Regional {
        net::Region region = net::Region::NorthernAfrica;
        double mobile = 0.0;
        double nonMobile = 0.0;
        double ixp = 0.0;
    };
    std::vector<Regional> regional; ///< African regions, display order
};

class CoverageAnalyzer {
public:
    explicit CoverageAnalyzer(const topo::Topology& topology);

    [[nodiscard]] CoverageReport analyze(const ScanOutcome& outcome,
                                         std::size_t entries) const;

private:
    const topo::Topology* topo_;
};

/// Enumerates the /24s of every globally advertised prefix (AS prefixes +
/// the minority of IXP LANs that are advertised). Shared by the CAIDA
/// hitlist and the YARRP target generator.
[[nodiscard]] std::vector<net::Prefix>
routedSlash24s(const topo::Topology& topology);

} // namespace aio::measure
