#pragma once

#include <string>
#include <vector>

#include "measure/traceroute.hpp"
#include "routing/detour.hpp"

namespace aio::measure {

/// Latency statistics between one country pair.
struct CountryPairLatency {
    std::string a;
    std::string b;
    std::size_t samples = 0;
    double meanRttMs = 0.0;
    double p90RttMs = 0.0;
    /// Share of sampled routes that left Africa.
    double detourShare = 0.0;
};

/// One cell of the region-level latency matrix.
struct RegionPairLatency {
    net::Region from = net::Region::WesternAfrica;
    net::Region to = net::Region::WesternAfrica;
    std::size_t samples = 0;
    double meanRttMs = 0.0;
};

/// Inter-country latency measurements over the simulated substrate — the
/// Formoso et al. "inter-country latencies" style analysis the paper
/// builds on. Quantifies the paper's performance argument: routes that
/// hairpin through Europe pay a large RTT penalty over routes exchanged
/// on the continent.
class LatencyStudy {
public:
    LatencyStudy(const topo::Topology& topology,
                 const route::RouteOracle& oracle,
                 const TracerouteEngine& engine);

    /// Samples eyeball pairs between two countries. Throws NotFoundError
    /// when either country hosts no eyeball AS.
    [[nodiscard]] CountryPairLatency between(std::string_view countryA,
                                             std::string_view countryB,
                                             int samples,
                                             net::Rng& rng) const;

    /// Region x region mean-RTT matrix over African regions.
    [[nodiscard]] std::vector<RegionPairLatency>
    regionalMatrix(int samplesPerPair, net::Rng& rng) const;

    /// Mean RTT split by whether the route stays in Africa: the detour
    /// penalty in milliseconds (pair of means: {local, detoured}).
    [[nodiscard]] std::pair<double, double>
    detourPenalty(int samples, net::Rng& rng) const;

private:
    [[nodiscard]] std::vector<topo::AsIndex>
    eyeballs(std::string_view country) const;

    const topo::Topology* topo_;
    const route::RouteOracle* oracle_;
    const TracerouteEngine* engine_;
    route::DetourAnalyzer analyzer_;
};

} // namespace aio::measure
