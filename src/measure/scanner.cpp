#include "measure/scanner.hpp"

#include <algorithm>

#include "netbase/error.hpp"

namespace aio::measure {

std::vector<net::Prefix> routedSlash24s(const topo::Topology& topology) {
    std::vector<net::Prefix> out;
    const auto addPrefix = [&](const net::Prefix& prefix) {
        if (prefix.length() >= 24) {
            out.push_back(prefix);
            return;
        }
        const std::uint64_t count = std::uint64_t{1}
                                    << (24 - prefix.length());
        for (std::uint64_t i = 0; i < count; ++i) {
            out.emplace_back(prefix.addressAt(i * 256), 24);
        }
    };
    for (topo::AsIndex as = 0; as < topology.asCount(); ++as) {
        for (const net::Prefix& prefix : topology.as(as).prefixes) {
            addPrefix(prefix);
        }
    }
    for (topo::IxpIndex ix = 0; ix < topology.ixpCount(); ++ix) {
        if (topology.ixp(ix).lanInGlobalTable) {
            addPrefix(topology.ixp(ix).lanPrefix);
        }
    }
    return out;
}

HitlistBuilder::HitlistBuilder(const topo::Topology& topology,
                               const ResponsivenessModel& model)
    : topo_(&topology), model_(&model) {}

Hitlist HitlistBuilder::buildAntStyle(net::Rng& rng,
                                      double ixpHistoricProb) const {
    Hitlist list;
    list.name = "ANT-style hitlist";
    list.curated = true;
    for (topo::AsIndex as = 0; as < topo_->asCount(); ++as) {
        if (!model_->antVisible(as)) {
            continue;
        }
        // Roughly one historical responsive address per two /24s.
        for (const net::Prefix& prefix : topo_->as(as).prefixes) {
            const std::uint64_t slash24s =
                std::max<std::uint64_t>(1, prefix.size() / 256);
            const std::uint64_t samples =
                std::max<std::uint64_t>(1, slash24s / 2);
            for (std::uint64_t i = 0; i < samples; ++i) {
                list.entries.push_back(
                    prefix.addressAt(rng.uniformInt(prefix.size())));
            }
        }
    }
    // Historical traceroute-derived IXP LAN entries.
    for (topo::IxpIndex ix = 0; ix < topo_->ixpCount(); ++ix) {
        const auto& lan = topo_->ixp(ix).lanPrefix;
        if (topo_->ixp(ix).lanInGlobalTable ||
            rng.bernoulli(ixpHistoricProb)) {
            list.entries.push_back(
                lan.addressAt(1 + rng.uniformInt(lan.size() - 2)));
        }
    }
    return list;
}

Hitlist HitlistBuilder::buildCaidaStyle(net::Rng& rng) const {
    Hitlist list;
    list.name = "CAIDA routed-/24";
    for (const net::Prefix& slash24 : routedSlash24s(*topo_)) {
        list.entries.push_back(
            slash24.addressAt(rng.uniformInt(slash24.size())));
    }
    return list;
}

PingScanner::PingScanner(const topo::Topology& topology,
                         const ResponsivenessModel& model)
    : topo_(&topology), model_(&model) {}

ScanOutcome PingScanner::scan(const Hitlist& hitlist) const {
    ScanOutcome outcome;
    outcome.dataset = hitlist.name;
    for (const net::Ipv4Address address : hitlist.entries) {
        ++outcome.probesSent;
        const bool responds = hitlist.curated
                                  ? model_->respondsToCurated(address)
                                  : model_->respondsToPing(address);
        if (!responds) {
            continue;
        }
        ++outcome.responses;
        if (const auto as = topo_->originOf(address)) {
            outcome.observedAses.insert(*as);
        } else if (const auto ixp = topo_->ixpOfLanAddress(address)) {
            outcome.observedIxps.insert(*ixp);
        }
    }
    return outcome;
}

YarrpScanner::YarrpScanner(const topo::Topology& topology,
                           const TracerouteEngine& engine,
                           const ResponsivenessModel& model)
    : topo_(&topology), engine_(&engine), model_(&model) {}

ScanOutcome YarrpScanner::scan(topo::AsIndex vantage, net::Rng& rng,
                               double per24SampleRate) const {
    AIO_EXPECTS(per24SampleRate > 0.0 && per24SampleRate <= 1.0,
                "sample rate must be in (0,1]");
    ScanOutcome outcome;
    outcome.dataset = "YARRP";
    for (const net::Prefix& slash24 : routedSlash24s(*topo_)) {
        if (!rng.bernoulli(per24SampleRate)) {
            continue;
        }
        const net::Ipv4Address target =
            slash24.addressAt(rng.uniformInt(slash24.size()));
        ++outcome.probesSent;
        const bool responds = model_->respondsToYarrp(target);
        const TracerouteResult trace =
            engine_->trace(vantage, target, rng, responds);
        if (trace.reachedTarget) {
            ++outcome.responses;
        }
        for (const Hop& hop : trace.hops) {
            if (hop.ixp) {
                outcome.observedIxps.insert(*hop.ixp);
                continue;
            }
            if (!hop.asIndex) {
                continue;
            }
            // A hop in the destination AS of a non-responding target only
            // materialises when that network's border answers
            // TTL-expired; transit hops belong to networks that forward,
            // so their borders are taken as responsive.
            if (!trace.reachedTarget && trace.dstAs &&
                *hop.asIndex == *trace.dstAs &&
                !model_->borderRespondsToTraceroute(*hop.asIndex)) {
                continue;
            }
            outcome.observedAses.insert(*hop.asIndex);
        }
    }
    return outcome;
}

CoverageAnalyzer::CoverageAnalyzer(const topo::Topology& topology)
    : topo_(&topology) {}

CoverageReport CoverageAnalyzer::analyze(const ScanOutcome& outcome,
                                         std::size_t entries) const {
    CoverageReport report;
    report.dataset = outcome.dataset;
    report.entries = entries;

    const auto regionOfAs = [&](topo::AsIndex as) {
        return topo_->as(as).region;
    };
    struct Tally {
        int expected = 0;
        int observed = 0;
        [[nodiscard]] double coverage() const {
            return expected == 0
                       ? 0.0
                       : static_cast<double>(observed) / expected;
        }
    };
    Tally mobile;
    Tally nonMobile;
    Tally ixps;
    std::unordered_map<net::Region, Tally> mobileByRegion;
    std::unordered_map<net::Region, Tally> nonMobileByRegion;
    std::unordered_map<net::Region, Tally> ixpByRegion;

    for (const topo::AsIndex as : topo_->africanAses()) {
        const bool seen = outcome.observedAses.contains(as);
        Tally& overall = topo_->as(as).mobileDominant ? mobile : nonMobile;
        auto& regional = topo_->as(as).mobileDominant
                             ? mobileByRegion[regionOfAs(as)]
                             : nonMobileByRegion[regionOfAs(as)];
        ++overall.expected;
        ++regional.expected;
        if (seen) {
            ++overall.observed;
            ++regional.observed;
        }
    }
    for (const topo::IxpIndex ix : topo_->africanIxps()) {
        const bool seen = outcome.observedIxps.contains(ix);
        ++ixps.expected;
        ++ixpByRegion[topo_->ixp(ix).region].expected;
        if (seen) {
            ++ixps.observed;
            ++ixpByRegion[topo_->ixp(ix).region].observed;
        }
    }

    report.mobileAsnCoverage = mobile.coverage();
    report.nonMobileAsnCoverage = nonMobile.coverage();
    report.ixpCoverage = ixps.coverage();
    for (const net::Region region : net::africanRegions()) {
        CoverageReport::Regional row;
        row.region = region;
        row.mobile = mobileByRegion[region].coverage();
        row.nonMobile = nonMobileByRegion[region].coverage();
        row.ixp = ixpByRegion[region].coverage();
        report.regional.push_back(row);
    }
    return report;
}

} // namespace aio::measure
