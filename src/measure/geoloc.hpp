#pragma once

#include <cstdint>

#include "netbase/geo.hpp"
#include "netbase/ip.hpp"
#include "topo/as_graph.hpp"

namespace aio::measure {

/// Configuration of the IP-geolocation error model. Commercial geolocation
/// databases are substantially less accurate in Africa than elsewhere —
/// the paper's §6.2 blames this for Nautilus' cable-mapping ambiguity.
struct GeolocationConfig {
    double africanErrorProb = 0.4;   ///< share of African IPs mislocated
    double africanErrorKmMean = 900; ///< mean error magnitude (exponential)
    double otherErrorProb = 0.12;
    double otherErrorKmMean = 250;
};

/// Deterministic IP -> estimated-location oracle with region-dependent
/// error. The same address always geolocates to the same (possibly wrong)
/// point, like a database snapshot would.
class GeolocationModel {
public:
    GeolocationModel(const topo::Topology& topology,
                     GeolocationConfig config, std::uint64_t seed);

    /// Estimated location. Falls back to the true location for addresses
    /// the topology cannot attribute (IXP LANs use the IXP's location).
    [[nodiscard]] net::GeoPoint locate(net::Ipv4Address address) const;

    /// Ground-truth location (AS PoP or IXP site).
    [[nodiscard]] net::GeoPoint trueLocation(net::Ipv4Address address) const;

    /// Error distance applied to this specific address (0 when accurate).
    [[nodiscard]] double errorKm(net::Ipv4Address address) const;

private:
    const topo::Topology* topo_;
    GeolocationConfig config_;
    std::uint64_t seed_;
};

} // namespace aio::measure
