#include "measure/geoloc.hpp"

#include <cmath>

#include "netbase/rng.hpp"

namespace aio::measure {

GeolocationModel::GeolocationModel(const topo::Topology& topology,
                                   GeolocationConfig config,
                                   std::uint64_t seed)
    : topo_(&topology), config_(config), seed_(seed) {}

net::GeoPoint
GeolocationModel::trueLocation(net::Ipv4Address address) const {
    if (const auto as = topo_->originOf(address)) {
        return topo_->as(*as).location;
    }
    if (const auto ixp = topo_->ixpOfLanAddress(address)) {
        return topo_->ixp(*ixp).location;
    }
    return net::GeoPoint{0.0, 0.0};
}

net::GeoPoint GeolocationModel::locate(net::Ipv4Address address) const {
    const net::GeoPoint truth = trueLocation(address);
    // Deterministic per-address error stream.
    net::Rng rng{seed_ ^ (std::uint64_t{address.value()} * 0x9e3779b97f4a7c15ULL)};

    bool african = false;
    if (const auto as = topo_->originOf(address)) {
        african = net::isAfrican(topo_->as(*as).region);
    } else if (const auto ixp = topo_->ixpOfLanAddress(address)) {
        african = net::isAfrican(topo_->ixp(*ixp).region);
    }
    const double errProb =
        african ? config_.africanErrorProb : config_.otherErrorProb;
    if (!rng.bernoulli(errProb)) {
        return truth;
    }
    const double km = rng.exponential(
        african ? config_.africanErrorKmMean : config_.otherErrorKmMean);
    const double bearing = rng.uniformReal(0.0, 2.0 * 3.141592653589793);
    // Small-angle displacement on the sphere (fine for <= a few 1000 km).
    const double dLat = km / 111.0 * std::cos(bearing);
    const double cosLat =
        std::max(0.2, std::cos(truth.latitude * 3.141592653589793 / 180.0));
    const double dLon = km / (111.0 * cosLat) * std::sin(bearing);
    return net::GeoPoint{truth.latitude + dLat, truth.longitude + dLon};
}

double GeolocationModel::errorKm(net::Ipv4Address address) const {
    return net::haversineKm(trueLocation(address), locate(address));
}

} // namespace aio::measure
