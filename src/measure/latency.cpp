#include "measure/latency.hpp"

#include "netbase/error.hpp"
#include "netbase/stats.hpp"

namespace aio::measure {

LatencyStudy::LatencyStudy(const topo::Topology& topology,
                           const route::RouteOracle& oracle,
                           const TracerouteEngine& engine)
    : topo_(&topology), oracle_(&oracle), engine_(&engine),
      analyzer_(topology) {}

std::vector<topo::AsIndex>
LatencyStudy::eyeballs(std::string_view country) const {
    std::vector<topo::AsIndex> out;
    for (const topo::AsIndex as : topo_->asesInCountry(country)) {
        const auto type = topo_->as(as).type;
        if (type == topo::AsType::MobileOperator ||
            type == topo::AsType::AccessIsp) {
            out.push_back(as);
        }
    }
    return out;
}

CountryPairLatency LatencyStudy::between(std::string_view countryA,
                                         std::string_view countryB,
                                         int samples, net::Rng& rng) const {
    AIO_EXPECTS(samples > 0, "need a positive sample count");
    const auto fromA = eyeballs(countryA);
    const auto fromB = eyeballs(countryB);
    if (fromA.empty() || fromB.empty()) {
        throw net::NotFoundError{"no eyeball networks in country pair"};
    }
    CountryPairLatency result;
    result.a = std::string{countryA};
    result.b = std::string{countryB};
    std::vector<double> rtts;
    int detoured = 0;
    for (int i = 0; i < samples; ++i) {
        const topo::AsIndex src = rng.pick(fromA);
        const topo::AsIndex dst = rng.pick(fromB);
        if (src == dst) {
            continue;
        }
        const auto trace = engine_->traceToAs(src, dst, rng);
        if (!trace.reachedTarget) {
            continue;
        }
        rtts.push_back(trace.lastRttMs());
        detoured +=
            analyzer_.leavesAfrica(oracle_->path(src, dst)) ? 1 : 0;
    }
    result.samples = rtts.size();
    if (!rtts.empty()) {
        result.meanRttMs = net::mean(rtts);
        result.p90RttMs = net::percentile(rtts, 90.0);
        result.detourShare =
            static_cast<double>(detoured) / static_cast<double>(rtts.size());
    }
    return result;
}

std::vector<RegionPairLatency>
LatencyStudy::regionalMatrix(int samplesPerPair, net::Rng& rng) const {
    AIO_EXPECTS(samplesPerPair > 0, "need a positive sample count");
    std::vector<RegionPairLatency> out;
    for (const net::Region from : net::africanRegions()) {
        std::vector<topo::AsIndex> srcPool;
        for (const auto* c : net::CountryTable::world().inRegion(from)) {
            const auto e = eyeballs(c->iso2);
            srcPool.insert(srcPool.end(), e.begin(), e.end());
        }
        for (const net::Region to : net::africanRegions()) {
            std::vector<topo::AsIndex> dstPool;
            for (const auto* c : net::CountryTable::world().inRegion(to)) {
                const auto e = eyeballs(c->iso2);
                dstPool.insert(dstPool.end(), e.begin(), e.end());
            }
            RegionPairLatency cell;
            cell.from = from;
            cell.to = to;
            std::vector<double> rtts;
            for (int i = 0;
                 i < samplesPerPair && !srcPool.empty() && !dstPool.empty();
                 ++i) {
                const topo::AsIndex src = rng.pick(srcPool);
                const topo::AsIndex dst = rng.pick(dstPool);
                if (src == dst) {
                    continue;
                }
                const auto trace = engine_->traceToAs(src, dst, rng);
                if (trace.reachedTarget) {
                    rtts.push_back(trace.lastRttMs());
                }
            }
            cell.samples = rtts.size();
            if (!rtts.empty()) {
                cell.meanRttMs = net::mean(rtts);
            }
            out.push_back(cell);
        }
    }
    return out;
}

std::pair<double, double> LatencyStudy::detourPenalty(int samples,
                                                      net::Rng& rng) const {
    AIO_EXPECTS(samples > 0, "need a positive sample count");
    std::vector<topo::AsIndex> pool;
    for (const net::Region region : net::africanRegions()) {
        for (const auto* c : net::CountryTable::world().inRegion(region)) {
            const auto e = eyeballs(c->iso2);
            pool.insert(pool.end(), e.begin(), e.end());
        }
    }
    AIO_EXPECTS(pool.size() >= 2, "too few eyeballs");
    std::vector<double> local;
    std::vector<double> detoured;
    for (int i = 0; i < samples; ++i) {
        const topo::AsIndex src = rng.pick(pool);
        const topo::AsIndex dst = rng.pick(pool);
        if (src == dst ||
            topo_->as(src).countryCode == topo_->as(dst).countryCode) {
            continue;
        }
        const auto trace = engine_->traceToAs(src, dst, rng);
        if (!trace.reachedTarget) {
            continue;
        }
        (analyzer_.leavesAfrica(oracle_->path(src, dst)) ? detoured : local)
            .push_back(trace.lastRttMs());
    }
    return {local.empty() ? 0.0 : net::mean(local),
            detoured.empty() ? 0.0 : net::mean(detoured)};
}

} // namespace aio::measure
