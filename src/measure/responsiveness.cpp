#include "measure/responsiveness.hpp"

#include <algorithm>

#include "netbase/error.hpp"
#include "netbase/rng.hpp"

namespace aio::measure {

const TypeResponsiveness&
ResponsivenessModel::paramsFor(topo::AsType type) const {
    switch (type) {
    case topo::AsType::MobileOperator: return config_.mobile;
    case topo::AsType::AccessIsp: return config_.access;
    case topo::AsType::Enterprise: return config_.enterprise;
    case topo::AsType::Education: return config_.education;
    case topo::AsType::Tier1:
    case topo::AsType::Tier2:
    case topo::AsType::ContentProvider:
    case topo::AsType::CloudProvider: return config_.transitOrContent;
    }
    return config_.access;
}

ResponsivenessModel::ResponsivenessModel(const topo::Topology& topology,
                                         ResponsivenessConfig config,
                                         std::uint64_t seed)
    : topo_(&topology), config_(config), seed_(seed) {
    AIO_EXPECTS(topology.finalized(), "topology must be finalized");
    antVisible_.resize(topology.asCount());
    density_.resize(topology.asCount());
    borderResponds_.resize(topology.asCount());
    for (topo::AsIndex i = 0; i < topology.asCount(); ++i) {
        const TypeResponsiveness& params = paramsFor(topology.as(i).type);
        net::Rng rng{seed ^ (topology.as(i).asn * 0x9e3779b97f4a7c15ULL)};
        antVisible_[i] = rng.bernoulli(params.antVisibleProb) ? 1 : 0;
        density_[i] = rng.bernoulli(params.icmpDarkProb)
                          ? 0.0
                          : std::min(0.35, rng.exponential(
                                               params.icmpDensityMean));
        borderResponds_[i] =
            density_[i] > 0.0 && rng.bernoulli(params.borderRespondProb)
                ? 1
                : 0;
    }
}

bool ResponsivenessModel::antVisible(topo::AsIndex as) const {
    AIO_EXPECTS(as < antVisible_.size(), "AS index OOB");
    return antVisible_[as] != 0;
}

double ResponsivenessModel::icmpDensity(topo::AsIndex as) const {
    AIO_EXPECTS(as < density_.size(), "AS index OOB");
    return density_[as];
}

bool ResponsivenessModel::respondsToPing(net::Ipv4Address address) const {
    // Per-address deterministic draw.
    net::Rng rng{seed_ ^
                 (std::uint64_t{address.value()} * 0xbf58476d1ce4e5b9ULL)};
    if (const auto ixp = topo_->ixpOfLanAddress(address)) {
        (void)ixp;
        return rng.bernoulli(config_.ixpLanRespondProb);
    }
    const auto as = topo_->originOf(address);
    if (!as) {
        return false;
    }
    return rng.bernoulli(density_[*as]);
}

bool ResponsivenessModel::respondsToCurated(net::Ipv4Address address) const {
    net::Rng rng{seed_ ^
                 (std::uint64_t{address.value()} * 0x2545f4914f6cdd1dULL)};
    if (topo_->ixpOfLanAddress(address)) {
        return rng.bernoulli(config_.ixpLanRespondProb);
    }
    if (!topo_->originOf(address)) {
        return false;
    }
    return rng.bernoulli(config_.curatedRespondProb);
}

bool ResponsivenessModel::borderRespondsToTraceroute(topo::AsIndex as) const {
    AIO_EXPECTS(as < borderResponds_.size(), "AS index OOB");
    return borderResponds_[as] != 0;
}

bool ResponsivenessModel::respondsToYarrp(net::Ipv4Address address) const {
    net::Rng rng{seed_ ^
                 (std::uint64_t{address.value()} * 0x94d049bb133111ebULL)};
    if (const auto ixp = topo_->ixpOfLanAddress(address)) {
        (void)ixp;
        return rng.bernoulli(config_.ixpLanRespondProb *
                             config_.yarrpResponseScale);
    }
    const auto as = topo_->originOf(address);
    if (!as) {
        return false;
    }
    return rng.bernoulli(density_[*as] * config_.yarrpResponseScale);
}

} // namespace aio::measure
