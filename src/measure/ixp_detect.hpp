#pragma once

#include <vector>

#include "measure/traceroute.hpp"
#include "netbase/prefix_trie.hpp"
#include "netbase/rng.hpp"

namespace aio::measure {

/// The prefix knowledge base a traIXroute-style detector matches against.
/// Real detectors only know the IXP LANs registered in PeeringDB/PCH;
/// `completeness` is the fraction of fabrics present in the database
/// (African registrations are notoriously incomplete).
class IxpKnowledgeBase {
public:
    /// Builds a knowledge base covering `completeness` of all fabrics
    /// (big EU exchanges are always registered).
    static IxpKnowledgeBase build(const topo::Topology& topology,
                                  double completeness, net::Rng& rng);

    /// Full ground-truth knowledge base (the Observatory's advantage:
    /// purpose-built target/prefix curation, §7).
    static IxpKnowledgeBase full(const topo::Topology& topology);

    [[nodiscard]] bool knows(topo::IxpIndex ixp) const;
    [[nodiscard]] std::optional<topo::IxpIndex>
    match(net::Ipv4Address address) const;
    [[nodiscard]] std::size_t knownCount() const { return known_.size(); }

private:
    std::vector<topo::IxpIndex> known_;
    net::PrefixTrie<topo::IxpIndex> trie_;
};

/// traIXroute-style IXP detection: a traceroute crosses an IXP when one of
/// its hop addresses falls inside a *known* IXP LAN prefix.
class IxpDetector {
public:
    IxpDetector(const topo::Topology& topology, IxpKnowledgeBase kb);

    /// IXPs detected on one traceroute (deduplicated, hop order).
    [[nodiscard]] std::vector<topo::IxpIndex>
    detect(const TracerouteResult& trace) const;

    [[nodiscard]] const IxpKnowledgeBase& knowledgeBase() const {
        return kb_;
    }

private:
    const topo::Topology* topo_;
    IxpKnowledgeBase kb_;
};

} // namespace aio::measure
