#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "resilience/fault.hpp"
#include "service/service.hpp"

namespace aio::service {

/// One seeded overload storm against a step-mode ObservatoryService:
/// tenants submit a mixed Query/WhatIf/Sweep load while the fault
/// injector schedules slow handlers, topology swaps (some invalid),
/// tenant floods and allocation-pressure spikes. Everything runs under a
/// ManualClock on the calling thread, so a fixed seed reproduces the
/// exact admission/shed/cancel decision sequence — that determinism is
/// the acceptance check the report digest encodes.
struct StormConfig {
    std::uint64_t seed = 4242;
    std::size_t steps = 160;
    std::size_t tenants = 4;
    double tenantBudgetUsd = 10.0;

    /// Request mix: query with this probability, else what-if with
    /// `whatIfShare` of the remainder, else sweep.
    double queryProb = 0.55;
    double whatIfShare = 0.6;
    std::size_t sweepScenarios = 3;

    /// Snapshots pre-built for rotation on TopologySwap faults.
    std::size_t snapshotPool = 3;
    std::uint64_t topologySeed = 5;

    /// Service clock advance per step; slow-handler faults multiply it.
    std::uint64_t stepNanos = 1'000'000;
    /// Relative deadline stamped on each request
    /// (exec::kNoDeadlineNanos = none).
    std::uint64_t requestDeadlineNanos = 64'000'000;
    /// Requests executed per step (floods outpace this, growing the
    /// queue into the shed watermarks).
    std::size_t executePerStep = 1;

    resilience::ServiceFaultConfig faults{};
    ServiceConfig service{};

    /// Throws net::PreconditionError on out-of-range knobs.
    void validate() const;
};

/// What a storm did, in full: submission/outcome counters, every typed
/// rejection tallied by reason, the swap/degradation history, and a
/// digest over the per-request decision stream (seq, status, reject
/// reason, serving epoch, degraded flag, route digest). Two runs of the
/// same config are equal iff the service made identical decisions in
/// identical order.
struct StormReport {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;
    std::map<std::string, std::uint64_t> rejectedByReason;

    std::uint64_t swaps = 0;         ///< valid epoch publishes
    std::uint64_t failedSwaps = 0;   ///< invalid publishes (degraded mode)
    std::uint64_t degradedResponses = 0;
    std::uint64_t epochsReclaimed = 0;
    std::uint64_t slowSteps = 0;
    std::uint64_t floodBursts = 0;
    std::uint64_t pressureSpikes = 0;

    std::uint64_t decisionDigest = 0;

    [[nodiscard]] bool operator==(const StormReport&) const = default;
};

/// Runs the storm to completion (drains the queue at the end; every
/// submitted request resolves). Deterministic for a fixed config.
[[nodiscard]] StormReport runStorm(const StormConfig& config);

} // namespace aio::service
