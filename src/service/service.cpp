#include "service/service.hpp"

#include <utility>

#include "netbase/error.hpp"

namespace aio::service {

ObservatoryService::ObservatoryService(
    std::shared_ptr<const ServiceSnapshot> initial, ServiceConfig config,
    const obs::Clock* clock, obs::MetricsRegistry* metrics,
    persist::ByteSink* ledgerSink)
    : config_(config), clock_(clock), metrics_(metrics), epochs_(metrics),
      registry_(WorkloadRegistry::builtins(config.admission)),
      admission_(config.admission, metrics) {
    AIO_EXPECTS(initial != nullptr,
                "service needs a valid initial snapshot");
    AIO_EXPECTS(clock != nullptr, "service needs a clock");
    config_.validate();
    admission_.bindRegistry(&registry_);
    if (ledgerSink != nullptr) {
        ledger_ = std::make_unique<TenantLedger>(*ledgerSink);
    }
    (void)epochs_.publish(std::move(initial));
}

ObservatoryService::~ObservatoryService() { stop(); }

void ObservatoryService::registerTenant(const TenantQuota& quota) {
    const std::lock_guard<std::mutex> lock{mutex_};
    admission_.registerTenant(quota);
}

void ObservatoryService::registerWorkload(WorkloadInfo info,
                                          WorkloadHandler handler) {
    const std::lock_guard<std::mutex> lock{mutex_};
    AIO_EXPECTS(seq_ == 0 && handlers_.empty(),
                "workload registration must precede the first "
                "submission and start()");
    registry_.add(std::move(info), std::move(handler));
}

void ObservatoryService::restoreLedger(
    std::span<const std::byte> journal) {
    const TenantLedger::Replay replay = TenantLedger::replay(journal);
    const std::lock_guard<std::mutex> lock{mutex_};
    AIO_EXPECTS(seq_ == 0 && queue_.empty(),
                "ledger restore must precede the first submission");
    for (const auto& [tenant, consumption] : replay.tenants) {
        admission_.restoreConsumption(tenant, consumption.peakMb,
                                      consumption.offPeakMb);
    }
    seq_ = replay.maxSeq;
}

std::future<ServiceResponse>
ObservatoryService::submit(ServiceRequest request) {
    std::promise<ServiceResponse> promise;
    std::future<ServiceResponse> future = promise.get_future();
    const std::uint64_t now = clock_->nowNanos();

    std::unique_lock<std::mutex> lock{mutex_};
    request.seq = ++seq_;
    if (stopping_) {
        ServiceResponse response;
        response.status = ResponseStatus::Rejected;
        response.reject = RejectReason::ShuttingDown;
        response.seq = request.seq;
        lock.unlock();
        promise.set_value(std::move(response));
        return future;
    }
    const AdmissionDecision decision = admission_.decide(
        request, now, queue_.size(), residentBytesLocked());
    if (!decision.admitted) {
        ServiceResponse response;
        response.status = ResponseStatus::Rejected;
        response.reject = decision.reason;
        response.retryAfterNanos =
            decision.retryAfterNanos == 0
                ? 0
                : now + decision.retryAfterNanos;
        response.seq = request.seq;
        lock.unlock();
        promise.set_value(std::move(response));
        return future;
    }
    if (ledger_ != nullptr) {
        // Write-ahead: the charge becomes durable before the request can
        // execute. A SinkFailure here propagates — the resume path
        // replays whatever landed.
        ledger_->recordCharge(request.tenant, request.seq,
                              admission_.costMbFor(request), false);
    }
    Pending pending;
    pending.request = std::move(request);
    pending.promise = std::move(promise);
    pending.chargedUsd = decision.chargedUsd;
    queue_.push_back(std::move(pending));
    if (metrics_ != nullptr) {
        metrics_->gauge("service.queue_depth")
            .set(static_cast<double>(queue_.size()));
    }
    lock.unlock();
    ready_.notify_one();
    return future;
}

std::uint64_t ObservatoryService::publish(
    net::Expected<std::shared_ptr<const ServiceSnapshot>> snapshot) {
    if (!snapshot.hasValue()) {
        const std::lock_guard<std::mutex> lock{mutex_};
        degraded_ = true;
        if (metrics_ != nullptr) {
            metrics_->counter("service.swap_failures").add();
            metrics_->gauge("service.degraded").set(1.0);
        }
        return epochs_.currentEpoch();
    }
    const std::uint64_t epoch =
        epochs_.publish(std::move(snapshot).value());
    const std::lock_guard<std::mutex> lock{mutex_};
    degraded_ = false;
    if (metrics_ != nullptr) {
        metrics_->gauge("service.degraded").set(0.0);
    }
    return epoch;
}

bool ObservatoryService::degradedMode() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return degraded_;
}

void ObservatoryService::injectAllocPressure(std::uint64_t bytes) {
    bool shrink = false;
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        allocPressureBytes_ += bytes;
        shrink = config_.admission.shedResidentBytes != 0 &&
                 residentBytesLocked() >=
                     config_.admission.shedResidentBytes;
    }
    if (shrink) {
        // Ladder rung below shedding: give memory back by shrinking the
        // current snapshot's cache down to the degraded budget.
        const PinnedSnapshot pinned = epochs_.pin();
        pinned->cache().setByteBudget(config_.degradedCacheByteBudget);
        if (metrics_ != nullptr) {
            metrics_->counter("service.cache_shrinks").add();
        }
    }
    if (metrics_ != nullptr) {
        metrics_->gauge("service.resident_bytes")
            .set(static_cast<double>(residentBytes()));
    }
}

void ObservatoryService::clearAllocPressure() {
    const std::lock_guard<std::mutex> lock{mutex_};
    allocPressureBytes_ = 0;
}

std::uint64_t ObservatoryService::residentBytes() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return residentBytesLocked();
}

std::uint64_t ObservatoryService::residentBytesLocked() const {
    return epochs_.residentBytes() + allocPressureBytes_;
}

bool ObservatoryService::runOne() {
    Pending pending;
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        if (queue_.empty()) {
            return false;
        }
        pending = std::move(queue_.front());
        queue_.pop_front();
        if (metrics_ != nullptr) {
            metrics_->gauge("service.queue_depth")
                .set(static_cast<double>(queue_.size()));
        }
    }
    pending.promise.set_value(execute(pending));
    return true;
}

std::size_t ObservatoryService::drain() {
    std::size_t ran = 0;
    while (runOne()) {
        ++ran;
    }
    return ran;
}

void ObservatoryService::start(std::size_t handlerThreads) {
    AIO_EXPECTS(handlerThreads >= 1,
                "threaded mode needs at least one handler");
    const std::lock_guard<std::mutex> lock{mutex_};
    AIO_EXPECTS(handlers_.empty(), "service is already started");
    AIO_EXPECTS(!stopping_, "service has been stopped");
    handlers_.reserve(handlerThreads);
    for (std::size_t i = 0; i < handlerThreads; ++i) {
        handlers_.emplace_back([this] { handlerLoop(); });
    }
}

void ObservatoryService::stop() {
    std::vector<std::thread> handlers;
    std::deque<Pending> orphaned;
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        if (stopping_) {
            return;
        }
        stopping_ = true;
        handlers.swap(handlers_);
    }
    ready_.notify_all();
    for (std::thread& handler : handlers) {
        handler.join();
    }
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        orphaned.swap(queue_);
    }
    for (Pending& pending : orphaned) {
        ServiceResponse response;
        response.status = ResponseStatus::Rejected;
        response.reject = RejectReason::ShuttingDown;
        response.seq = pending.request.seq;
        pending.promise.set_value(std::move(response));
    }
}

std::size_t ObservatoryService::queueDepth() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return queue_.size();
}

std::uint64_t ObservatoryService::completedCount() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return completed_;
}

void ObservatoryService::handlerLoop() {
    for (;;) {
        Pending pending;
        {
            std::unique_lock<std::mutex> lock{mutex_};
            ready_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return; // stopping, nothing left to run
            }
            pending = std::move(queue_.front());
            queue_.pop_front();
            if (metrics_ != nullptr) {
                metrics_->gauge("service.queue_depth")
                    .set(static_cast<double>(queue_.size()));
            }
        }
        pending.promise.set_value(execute(pending));
    }
}

ServiceResponse ObservatoryService::execute(Pending& pending) {
    const obs::ScopedTimer timer{metrics_, "service.request_seconds"};
    const ServiceRequest& request = pending.request;

    ServiceResponse response;
    response.seq = request.seq;
    response.chargedUsd = pending.chargedUsd;

    const PinnedSnapshot pinned = epochs_.pin();
    response.epoch = pinned.epoch();
    response.digest = pinned->digest();
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        response.degraded = degraded_;
    }

    const exec::CancelToken token{clock_, request.deadlineNanos};
    try {
        token.checkpoint(); // the deadline may have passed while queued
        WorkloadContext context;
        context.snapshot = pinned.operator->();
        context.cancel = &token;
        // Admission already vetted the name; a lookup miss here would be
        // a registry mutation after serving started, which
        // registerWorkload forbids.
        registry_.handler(workloadNameOf(request))(context, request,
                                                   response);
        response.status = ResponseStatus::Ok;
        const std::lock_guard<std::mutex> lock{mutex_};
        ++completed_;
        if (metrics_ != nullptr) {
            metrics_->counter("service.completed").add();
        }
    } catch (const net::CancelledError&) {
        response.status = ResponseStatus::Cancelled;
        response.sweep.reset();
        response.plan.reset();
        response.report.reset();
        if (metrics_ != nullptr) {
            metrics_->counter("service.cancelled").add();
        }
    } catch (const net::AioError& error) {
        response.status = ResponseStatus::Failed;
        response.sweep.reset();
        response.plan.reset();
        response.report.reset();
        response.error = error.what();
        if (metrics_ != nullptr) {
            metrics_->counter("service.failed").add();
        }
    }
    return response;
}

} // namespace aio::service
