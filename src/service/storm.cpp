#include "service/storm.hpp"

#include <cmath>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "content/catalog.hpp"
#include "dns/resolver.hpp"
#include "netbase/error.hpp"
#include "netbase/rng.hpp"
#include "persist/bytes.hpp"
#include "phys/cable.hpp"
#include "topo/generator.hpp"

namespace aio::service {

namespace {

/// A storm-sized topology: the generator's defaults scaled down so one
/// snapshot builds in milliseconds and the whole rotation pool stays
/// cheap. Distinct seeds give the rotation genuinely different worlds.
topo::GeneratorConfig stormTopologyConfig(std::uint64_t seed) {
    auto config = topo::GeneratorConfig::defaults();
    config.seed = seed;
    for (auto& profile : config.africa) {
        profile.asPerMillionPeople *= 0.4;
        profile.minAsesPerCountry = 1;
        profile.ixpCount = std::max(1, profile.ixpCount / 2);
    }
    config.europe.accessPerCountry = 2;
    config.northAmerica.accessPerCountry = 2;
    config.southAmerica.accessPerCountry = 2;
    config.asiaPacific.accessPerCountry = 2;
    return config;
}

std::shared_ptr<const ServiceSnapshot>
buildStormSnapshot(std::uint64_t topologySeed, std::uint64_t substrateSeed) {
    const topo::Topology topology =
        topo::TopologyGenerator{stormTopologyConfig(topologySeed)}
            .generate();
    SnapshotConfig config;
    config.seed = substrateSeed;
    auto built = ServiceSnapshot::build(
        topology, phys::CableRegistry::africanDefaults(),
        dns::DnsConfig::defaults(), content::ContentConfig::defaults(),
        config);
    AIO_EXPECTS(built.hasValue(), "storm snapshot pool must build");
    return std::move(built).value();
}

core::ScenarioSpec stormScenario(net::Rng& rng, std::size_t ordinal) {
    static constexpr const char* kCables[] = {"WACS", "SEACOM", "ACE",
                                              "EASSy", "SAT-3",
                                              "MainOne"};
    core::ScenarioSpec spec;
    const auto pick =
        static_cast<std::size_t>(rng.uniformInt(std::size(kCables)));
    spec.name = "storm-" + std::to_string(ordinal) + "-" + kCables[pick];
    spec.cutCables = {kCables[pick]};
    spec.repairDays = {14.0};
    return spec;
}

} // namespace

void StormConfig::validate() const {
    AIO_EXPECTS(steps >= 1, "storm needs at least one step");
    AIO_EXPECTS(tenants >= 1, "storm needs at least one tenant");
    AIO_EXPECTS(snapshotPool >= 1, "storm needs at least one snapshot");
    AIO_EXPECTS(executePerStep >= 1,
                "storm must execute at least one request per step");
    AIO_EXPECTS(std::isfinite(tenantBudgetUsd) && tenantBudgetUsd >= 0.0,
                "tenant budget must be non-negative and finite");
    AIO_EXPECTS(queryProb >= 0.0 && queryProb <= 1.0,
                "query probability must lie in [0, 1]");
    AIO_EXPECTS(whatIfShare >= 0.0 && whatIfShare <= 1.0,
                "what-if share must lie in [0, 1]");
    AIO_EXPECTS(sweepScenarios >= 1,
                "sweep requests need at least one scenario");
    AIO_EXPECTS(stepNanos >= 1, "step interval must be positive");
    faults.validate();
    service.validate();
}

StormReport runStorm(const StormConfig& config) {
    config.validate();

    std::vector<std::shared_ptr<const ServiceSnapshot>> pool;
    pool.reserve(config.snapshotPool);
    for (std::size_t i = 0; i < config.snapshotPool; ++i) {
        pool.push_back(buildStormSnapshot(config.topologySeed + i,
                                          config.topologySeed + 100 + i));
    }

    obs::ManualClock clock;
    ObservatoryService service{pool.front(), config.service, &clock};
    for (std::size_t i = 0; i < config.tenants; ++i) {
        TenantQuota quota;
        quota.tenant = "tenant-" + std::to_string(i);
        quota.budgetUsd = config.tenantBudgetUsd;
        service.registerTenant(quota);
    }

    net::Rng rng{config.seed};
    resilience::ServiceFaultInjector injector{config.faults};
    StormReport report;
    std::vector<std::future<ServiceResponse>> futures;

    const auto submitOne = [&] {
        ServiceRequest request;
        request.tenant =
            "tenant-" +
            std::to_string(rng.uniformInt(
                static_cast<std::uint64_t>(config.tenants)));
        const double kindDraw = rng.uniform01();
        const double heavyDraw = rng.uniform01();
        if (kindDraw < config.queryProb) {
            request.kind = RequestKind::Query;
            const auto asCount = static_cast<std::uint64_t>(
                pool.front()->topology().asCount());
            request.src =
                static_cast<topo::AsIndex>(rng.uniformInt(asCount));
            request.dst =
                static_cast<topo::AsIndex>(rng.uniformInt(asCount));
        } else if (heavyDraw < config.whatIfShare) {
            request.kind = RequestKind::WhatIf;
            request.scenarios = {stormScenario(rng, report.submitted)};
        } else {
            request.kind = RequestKind::Sweep;
            for (std::size_t s = 0; s < config.sweepScenarios; ++s) {
                request.scenarios.push_back(
                    stormScenario(rng, report.submitted));
            }
        }
        if (config.requestDeadlineNanos != exec::kNoDeadlineNanos) {
            request.deadlineNanos =
                clock.nowNanos() + config.requestDeadlineNanos;
        }
        ++report.submitted;
        futures.push_back(service.submit(std::move(request)));
    };

    std::size_t rotation = 1;
    for (std::size_t step = 0; step < config.steps; ++step) {
        const auto faults = injector.faultsFor(rng);

        if (faults.topologySwap) {
            if (faults.invalidSwap) {
                (void)service.publish(net::Error::precondition(
                    "storm: snapshot failed validation"));
                ++report.failedSwaps;
            } else {
                (void)service.publish(pool[rotation % pool.size()]);
                ++rotation;
                ++report.swaps;
            }
        }
        if (faults.allocPressure) {
            service.injectAllocPressure(config.faults.allocPressureBytes);
            ++report.pressureSpikes;
        }

        const std::size_t burst =
            faults.tenantFlood ? config.faults.floodBurst : 1;
        if (faults.tenantFlood) {
            ++report.floodBursts;
        }
        for (std::size_t i = 0; i < burst; ++i) {
            submitOne();
        }

        if (faults.slowHandler) {
            // A stalled handler: the clock runs past several deadlines
            // before anything executes.
            clock.advance(config.stepNanos *
                          static_cast<std::uint64_t>(
                              config.faults.slowFactor));
            ++report.slowSteps;
        }
        for (std::size_t i = 0; i < config.executePerStep; ++i) {
            (void)service.runOne();
        }
        service.clearAllocPressure();
        clock.advance(config.stepNanos);
    }
    (void)service.drain();

    // Fold every response into the decision digest in seq order (the
    // futures vector is submission order, and seq is assigned at
    // submission). Any divergence in admission, shedding, cancellation,
    // epoch routing or degradation flips the digest.
    persist::ByteWriter decisions;
    for (auto& future : futures) {
        const ServiceResponse response = future.get();
        decisions.u64(response.seq);
        decisions.u8(static_cast<std::uint8_t>(response.status));
        decisions.u8(static_cast<std::uint8_t>(response.reject));
        decisions.u64(response.epoch);
        decisions.boolean(response.degraded);
        decisions.u32(response.digest.nextHop);
        decisions.u32(response.digest.routeClass);
        switch (response.status) {
        case ResponseStatus::Ok:
            ++report.completed;
            if (response.degraded) {
                ++report.degradedResponses;
            }
            break;
        case ResponseStatus::Rejected:
            ++report.rejectedByReason[std::string{
                rejectReasonName(response.reject)}];
            break;
        case ResponseStatus::Cancelled:
            ++report.cancelled;
            break;
        case ResponseStatus::Failed:
            ++report.failed;
            break;
        }
    }
    report.admitted =
        report.completed + report.cancelled + report.failed;
    report.epochsReclaimed = service.epochs().reclaimed();
    report.decisionDigest = persist::fnv1a64(decisions.bytes());
    return report;
}

} // namespace aio::service
