#include "service/admission.hpp"

#include <cmath>
#include <tuple>
#include <utility>

#include "netbase/error.hpp"
#include "service/workload.hpp"

namespace aio::service {

std::string_view requestKindName(RequestKind kind) {
    switch (kind) {
    case RequestKind::Query: return "query";
    case RequestKind::WhatIf: return "whatif";
    case RequestKind::Sweep: return "sweep";
    }
    return "?";
}

std::string_view rejectReasonName(RejectReason reason) {
    switch (reason) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::Overloaded: return "overloaded";
    case RejectReason::MemoryPressure: return "memory_pressure";
    case RejectReason::BudgetExhausted: return "budget_exhausted";
    case RejectReason::DeadlineUnmeetable: return "deadline_unmeetable";
    case RejectReason::UnknownTenant: return "unknown_tenant";
    case RejectReason::ShuttingDown: return "shutting_down";
    case RejectReason::UnknownWorkload: return "unknown_workload";
    }
    return "?";
}

std::string_view responseStatusName(ResponseStatus status) {
    switch (status) {
    case ResponseStatus::Ok: return "ok";
    case ResponseStatus::Rejected: return "rejected";
    case ResponseStatus::Cancelled: return "cancelled";
    case ResponseStatus::Failed: return "failed";
    }
    return "?";
}

void AdmissionConfig::validate() const {
    AIO_EXPECTS(queueCapacity >= 1, "admission queue needs capacity >= 1");
    AIO_EXPECTS(shedQueueDepth >= 1 && shedQueueDepth <= queueCapacity,
                "shed watermark must sit inside the queue capacity");
    AIO_EXPECTS(retryAfterNanos > 0,
                "retry-after hint must be a positive interval");
    const auto requireCost = [](double value, const char* what) {
        AIO_EXPECTS(std::isfinite(value) && value >= 0.0, what);
    };
    requireCost(queryCostMb, "query cost must be non-negative and finite");
    requireCost(whatIfCostMb,
                "what-if cost must be non-negative and finite");
    requireCost(sweepCostMbPerScenario,
                "sweep cost must be non-negative and finite");
    requireCost(estimateCostMb,
                "estimate cost must be non-negative and finite");
    requireCost(planCostMb, "plan cost must be non-negative and finite");
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         obs::MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {
    config_.validate();
}

void AdmissionController::registerTenant(const TenantQuota& quota) {
    AIO_EXPECTS(!quota.tenant.empty(), "tenant name must be non-empty");
    AIO_EXPECTS(std::isfinite(quota.budgetUsd) && quota.budgetUsd >= 0.0,
                "tenant budget must be non-negative and finite");
    quota.pricing.validate();
    // Re-registration replaces the tenant (fresh meter); the Tenant is
    // built in place because its meter aliases its own quota.pricing.
    const auto existing = tenants_.find(quota.tenant);
    if (existing != tenants_.end()) {
        tenants_.erase(existing);
    }
    tenants_.emplace(std::piecewise_construct,
                     std::forward_as_tuple(quota.tenant),
                     std::forward_as_tuple(quota));
}

bool AdmissionController::knowsTenant(std::string_view tenant) const {
    return tenants_.find(tenant) != tenants_.end();
}

double
AdmissionController::costMbFor(const ServiceRequest& request) const {
    if (registry_ != nullptr) {
        // The registry attribute is the single default-cost seam: what
        // admission bills here is byte-for-byte what the ledger records
        // and what a plan estimate quotes.
        return registry_->resolveCostMb(request);
    }
    if (request.costMb > 0.0) {
        return request.costMb;
    }
    switch (request.kind) {
    case RequestKind::Query: return config_.queryCostMb;
    case RequestKind::WhatIf: return config_.whatIfCostMb;
    case RequestKind::Sweep:
        return config_.sweepCostMbPerScenario *
               static_cast<double>(request.scenarios.size());
    }
    return 0.0;
}

AdmissionDecision
AdmissionController::decide(const ServiceRequest& request,
                            std::uint64_t nowNanos, std::size_t queueDepth,
                            std::uint64_t residentBytes) {
    const auto it = tenants_.find(request.tenant);
    if (it == tenants_.end()) {
        return reject(RejectReason::UnknownTenant);
    }
    const WorkloadInfo* info =
        registry_ == nullptr ? nullptr
                             : registry_->find(workloadNameOf(request));
    if (registry_ != nullptr && info == nullptr) {
        return reject(RejectReason::UnknownWorkload);
    }
    if (request.deadlineNanos != exec::kNoDeadlineNanos &&
        request.deadlineNanos <= nowNanos) {
        return reject(RejectReason::DeadlineUnmeetable);
    }
    if (info != nullptr && info->deadline == DeadlinePolicy::Required &&
        request.deadlineNanos == exec::kNoDeadlineNanos) {
        // A deadline-Required workload without a deadline can never meet
        // one — same reject family as an already-passed deadline.
        return reject(RejectReason::DeadlineUnmeetable);
    }
    if (queueDepth >= config_.queueCapacity) {
        return reject(RejectReason::QueueFull);
    }
    // Heaviness is a registry attribute; unbound controllers fall back
    // to the legacy kind split (non-query = heavy).
    const bool heavy = info != nullptr
                           ? info->heavy
                           : request.kind != RequestKind::Query;
    if (heavy) {
        // Degradation ladder, cheapest rung first: shed heavy work at
        // the depth watermark, then at the resident-byte watermark.
        if (queueDepth >= config_.shedQueueDepth) {
            return reject(RejectReason::Overloaded);
        }
        if (config_.shedResidentBytes != 0 &&
            residentBytes >= config_.shedResidentBytes) {
            return reject(RejectReason::MemoryPressure);
        }
    }
    Tenant& tenant = it->second;
    const double mb = costMbFor(request);
    const double marginal = tenant.meter.marginalCost(mb, false);
    if (tenant.meter.totalCost() + marginal >
        tenant.quota.budgetUsd + 1e-12) {
        return reject(RejectReason::BudgetExhausted);
    }
    tenant.meter.add(mb, false);
    if (metrics_ != nullptr) {
        metrics_->counter("service.admitted").add();
    }
    AdmissionDecision decision;
    decision.admitted = true;
    decision.chargedUsd = marginal;
    return decision;
}

double AdmissionController::spentUsd(std::string_view tenant) const {
    const auto it = tenants_.find(tenant);
    AIO_EXPECTS(it != tenants_.end(), "unknown tenant");
    return it->second.meter.totalCost();
}

double AdmissionController::budgetUsd(std::string_view tenant) const {
    const auto it = tenants_.find(tenant);
    AIO_EXPECTS(it != tenants_.end(), "unknown tenant");
    return it->second.quota.budgetUsd;
}

void AdmissionController::restoreConsumption(std::string_view tenant,
                                             double peakMb,
                                             double offPeakMb) {
    const auto it = tenants_.find(tenant);
    AIO_EXPECTS(it != tenants_.end(),
                "restore requires the tenant to be registered first");
    it->second.meter.restoreConsumption(peakMb, offPeakMb);
}

AdmissionDecision AdmissionController::reject(RejectReason reason) {
    if (metrics_ != nullptr) {
        metrics_
            ->counter(std::string{"service.rejected."} +
                      std::string{rejectReasonName(reason)})
            .add();
    }
    AdmissionDecision decision;
    decision.reason = reason;
    const bool shed = reason == RejectReason::QueueFull ||
                      reason == RejectReason::Overloaded ||
                      reason == RejectReason::MemoryPressure;
    decision.retryAfterNanos = shed ? config_.retryAfterNanos : 0;
    return decision;
}

} // namespace aio::service
