#include "service/workload.hpp"

#include <cmath>
#include <utility>

#include "netbase/error.hpp"
#include "plan/planner.hpp"
#include "plan/textio.hpp"
#include "routing/route_oracle.hpp"
#include "sweep/scenario_sweep.hpp"

namespace aio::service {

namespace {

void runQuery(const WorkloadContext& context, const ServiceRequest& request,
              ServiceResponse& response) {
    const route::RouteOracle& oracle =
        *context.snapshot->substrate().analyzer().baselineOracle();
    response.nextHop = oracle.nextHopOf(request.src, request.dst);
    response.reachable = response.nextHop >= 0;
}

void runSweep(const WorkloadContext& context, const ServiceRequest& request,
              ServiceResponse& response) {
    sweep::SweepOptions options;
    options.cancel = context.cancel;
    const sweep::ScenarioSweepEngine engine{
        context.snapshot->substrate(), options};
    response.sweep = engine.run(request.scenarios);
}

/// Shared front half of estimate and plan: textual question -> compiled,
/// costed CampaignPlan on the response. Parse and compile failures raise
/// typed errors the service resolves as Failed.
const plan::CampaignPlan& compileQuestion(const WorkloadContext& context,
                                          const ServiceRequest& request,
                                          ServiceResponse& response) {
    const plan::MeasurementQuestion question =
        plan::parseQuestion(request.questionText).valueOrRaise();
    const plan::CampaignPlanner planner{context.snapshot->substrate()};
    response.plan = planner.compile(question).valueOrRaise();
    return *response.plan;
}

void runEstimate(const WorkloadContext& context,
                 const ServiceRequest& request, ServiceResponse& response) {
    (void)compileQuestion(context, request, response);
}

void runPlan(const WorkloadContext& context, const ServiceRequest& request,
             ServiceResponse& response) {
    const plan::CampaignPlan& compiled =
        compileQuestion(context, request, response);
    const plan::CampaignPlanner planner{context.snapshot->substrate()};
    plan::ExecuteOptions options;
    options.cancel = context.cancel;
    response.report = planner.execute(compiled, options);
}

} // namespace

std::string_view deadlinePolicyName(DeadlinePolicy policy) {
    switch (policy) {
    case DeadlinePolicy::Optional: return "optional";
    case DeadlinePolicy::Required: return "required";
    }
    return "?";
}

void WorkloadRegistry::add(WorkloadInfo info, WorkloadHandler handler) {
    AIO_EXPECTS(!info.name.empty(), "workload name must be non-empty");
    AIO_EXPECTS(handler != nullptr, "workload needs a handler");
    AIO_EXPECTS(std::isfinite(info.defaultCostMb) &&
                    info.defaultCostMb >= 0.0,
                "workload default cost must be non-negative and finite");
    // Key copied out first: the Entry argument moves from `info`, and
    // argument evaluation order is unspecified.
    std::string name = info.name;
    entries_.insert_or_assign(std::move(name),
                              Entry{std::move(info), std::move(handler)});
}

WorkloadRegistry WorkloadRegistry::builtins(const AdmissionConfig& config) {
    config.validate();
    WorkloadRegistry registry;
    registry.add({.name = "query",
                  .heavy = false,
                  .defaultCostMb = config.queryCostMb},
                 &runQuery);
    registry.add({.name = "whatif",
                  .heavy = true,
                  .defaultCostMb = config.whatIfCostMb},
                 &runSweep);
    registry.add({.name = "sweep",
                  .heavy = true,
                  .defaultCostMb = config.sweepCostMbPerScenario,
                  .perScenario = true},
                 &runSweep);
    registry.add({.name = "estimate",
                  .heavy = false,
                  .defaultCostMb = config.estimateCostMb},
                 &runEstimate);
    registry.add({.name = "plan",
                  .heavy = true,
                  .defaultCostMb = config.planCostMb,
                  .deadline = DeadlinePolicy::Required},
                 &runPlan);
    return registry;
}

const WorkloadInfo* WorkloadRegistry::find(std::string_view name) const {
    const auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second.info;
}

const WorkloadHandler&
WorkloadRegistry::handler(std::string_view name) const {
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
        net::Error::notFound("unknown workload '" + std::string{name} +
                             "'")
            .raise();
    }
    return it->second.handler;
}

double
WorkloadRegistry::resolveCostMb(const ServiceRequest& request) const {
    if (request.costMb > 0.0) {
        return request.costMb;
    }
    const WorkloadInfo* info = find(workloadNameOf(request));
    if (info == nullptr) {
        net::Error::notFound("unknown workload '" +
                             std::string{workloadNameOf(request)} + "'")
            .raise();
    }
    if (info->perScenario) {
        return info->defaultCostMb *
               static_cast<double>(request.scenarios.size());
    }
    return info->defaultCostMb;
}

std::vector<std::string> WorkloadRegistry::names() const {
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
        names.push_back(name);
    }
    return names;
}

std::string_view workloadNameOf(const ServiceRequest& request) {
    return request.workload.empty() ? requestKindName(request.kind)
                                    : std::string_view{request.workload};
}

} // namespace aio::service
