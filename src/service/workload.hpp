#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "exec/cancel.hpp"
#include "service/admission.hpp"
#include "service/request.hpp"
#include "service/snapshot.hpp"

namespace aio::service {

/// When a workload insists on a deadline. Required workloads (plan) are
/// rejected DeadlineUnmeetable at admission when the request carries
/// none — an unbounded campaign execution is never admitted by accident.
enum class DeadlinePolicy : std::uint8_t {
    Optional, ///< deadline honoured when present, not demanded
    Required  ///< requests without a deadline are rejected
};

[[nodiscard]] std::string_view deadlinePolicyName(DeadlinePolicy policy);

/// Admission-relevant attributes of one named workload. This is the
/// open replacement for the closed RequestKind switch: the degradation
/// ladder sheds on `heavy`, and `defaultCostMb` is THE single source of
/// the costMb == 0 default — admission bills through it and the ledger
/// records the same resolution, so estimate and billing cannot disagree.
struct WorkloadInfo {
    std::string name;
    /// Shed at the queue-depth / resident-byte watermarks.
    bool heavy = true;
    /// Billable megabytes when the request leaves costMb zero.
    double defaultCostMb = 0.0;
    /// Multiply defaultCostMb by the request's scenario count (the
    /// legacy sweep billing shape).
    bool perScenario = false;
    DeadlinePolicy deadline = DeadlinePolicy::Optional;
};

/// What a handler gets to answer one admitted request: the pinned
/// immutable epoch snapshot and the request's deadline as a cancel
/// token. Handlers run outside the service lock, concurrently.
struct WorkloadContext {
    const ServiceSnapshot* snapshot = nullptr;
    const exec::CancelToken* cancel = nullptr;
};

/// Fills `response` payload fields for one request. Status fields
/// (status/seq/epoch/...) are the service's; typed AioErrors thrown here
/// resolve the request as Failed (CancelledError as Cancelled).
using WorkloadHandler = std::function<void(
    const WorkloadContext&, const ServiceRequest&, ServiceResponse&)>;

/// Named-workload dispatch table: the service API's extension point.
/// Query/WhatIf/Sweep are plain builtin registrations (the legacy enum
/// forwards here by name); Plan/Estimate are the first workloads that
/// exist only as registrations. Immutable once the service starts
/// serving, so handlers read it lock-free.
class WorkloadRegistry {
public:
    /// Registers (or replaces) one workload. Throws net::PreconditionError
    /// on an empty name, a null handler, or a negative/non-finite cost.
    void add(WorkloadInfo info, WorkloadHandler handler);

    /// The builtin table: query (light), whatif/sweep (heavy, sweep
    /// billed per scenario), estimate (light, compiles a plan), plan
    /// (heavy, deadline Required, compiles and executes a campaign).
    /// Default costs come from `config`.
    [[nodiscard]] static WorkloadRegistry
    builtins(const AdmissionConfig& config);

    /// nullptr when unknown — admission turns that into UnknownWorkload.
    [[nodiscard]] const WorkloadInfo* find(std::string_view name) const;

    /// Throws net::NotFoundError when unknown.
    [[nodiscard]] const WorkloadHandler&
    handler(std::string_view name) const;

    /// Billable megabytes for `request`: its explicit costMb when
    /// positive, else the workload's default (per scenario when the
    /// attribute says so). Throws net::NotFoundError on an unknown
    /// workload name.
    [[nodiscard]] double resolveCostMb(const ServiceRequest& request) const;

    [[nodiscard]] std::vector<std::string> names() const;
    [[nodiscard]] std::size_t size() const { return entries_.size(); }

private:
    struct Entry {
        WorkloadInfo info;
        WorkloadHandler handler;
    };

    /// std::map: deterministic names() order for tests and digests.
    std::map<std::string, Entry, std::less<>> entries_;
};

/// The dispatch name of a request: its `workload` when set, else the
/// legacy enum shim's name ("query"/"whatif"/"sweep").
[[nodiscard]] std::string_view workloadNameOf(const ServiceRequest& request);

} // namespace aio::service
