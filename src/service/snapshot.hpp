#pragma once

#include <cstdint>
#include <memory>

#include "core/substrate.hpp"
#include "netbase/expected.hpp"
#include "routing/oracle_cache.hpp"
#include "routing/route_oracle.hpp"
#include "topo/as_graph.hpp"

namespace aio::service {

struct SnapshotConfig {
    std::uint64_t seed = 99;
    phys::LinkMapConfig linkConfig{};
    outage::ImpactConfig impact{};
    /// Entry capacity of the snapshot's private oracle cache.
    std::size_t cacheCapacity = 32;
    /// Retained-byte budget of that cache (0 = entry capacity only). The
    /// degradation ladder shrinks this at runtime under memory pressure.
    std::size_t cacheByteBudget = 0;
    /// Compute the baseline route-matrix digest at build time. O(n^2) in
    /// AS count — on for test-sized topologies (it is the torn-read
    /// check), off for continental-scale bench snapshots.
    bool computeDigest = true;
    /// Mirrored onto the substrate (optional, not owned, must outlive
    /// the snapshot).
    obs::MetricsRegistry* metrics = nullptr;
};

/// One immutable epoch of the observatory's world: a topology plus the
/// Substrate (baseline layers, analyzer, baseline oracle) derived from
/// it, owned whole so concurrent readers share it without any locking.
/// The only internally-mutable member is the oracle cache, which carries
/// its own lock and is safe to share; everything else is deep-frozen at
/// build time.
///
/// The snapshot's substrate deliberately carries NO worker pool: request
/// handlers are the service's unit of parallelism, and two handlers
/// driving one pool's parallelFor concurrently is exactly the wedge the
/// pool's reentrancy guard now rejects. Engines built on the snapshot
/// run their scenarios sequentially per handler.
class ServiceSnapshot {
public:
    /// Builds an epoch by value: copies/derives every layer, optionally
    /// computes the baseline digest. Returns the Substrate validation
    /// failure as a value — the failed-swap path the service degrades
    /// through instead of crashing.
    [[nodiscard]] static net::Expected<std::shared_ptr<const ServiceSnapshot>>
    build(topo::Topology topology, phys::CableRegistry registry,
          dns::DnsConfig dnsConfig, content::ContentConfig contentConfig,
          SnapshotConfig config = {});

    ServiceSnapshot(const ServiceSnapshot&) = delete;
    ServiceSnapshot& operator=(const ServiceSnapshot&) = delete;

    [[nodiscard]] const core::Substrate& substrate() const {
        return *substrate_;
    }
    [[nodiscard]] const topo::Topology& topology() const { return *topo_; }
    /// Zeroes when computeDigest was off.
    [[nodiscard]] const route::RouteMatrixDigest& digest() const {
        return digest_;
    }
    [[nodiscard]] bool hasDigest() const { return hasDigest_; }

    /// The snapshot's internally-locked cache — mutable through const
    /// because shrinking its byte budget is how the service degrades
    /// under memory pressure without touching frozen state.
    [[nodiscard]] route::OracleCache& cache() const { return *cache_; }

    /// Approximate resident footprint: baseline oracle + live cache
    /// entries. What the admission watermarks meter.
    [[nodiscard]] std::uint64_t residentBytes() const;

private:
    ServiceSnapshot() = default;

    std::unique_ptr<topo::Topology> topo_;
    std::unique_ptr<route::OracleCache> cache_;
    std::unique_ptr<core::Substrate> substrate_;
    route::RouteMatrixDigest digest_;
    bool hasDigest_ = false;
};

} // namespace aio::service
