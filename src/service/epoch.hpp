#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "service/snapshot.hpp"

namespace aio::service {

class EpochRegistry;

/// RAII pin on one epoch's snapshot: while any pin is alive the registry
/// keeps that snapshot resident, even across later publishes. Handlers
/// pin once per request and read lock-free for the request's whole
/// lifetime — the snapshot itself is immutable.
class PinnedSnapshot {
public:
    PinnedSnapshot(PinnedSnapshot&& other) noexcept;
    PinnedSnapshot& operator=(PinnedSnapshot&& other) noexcept;
    PinnedSnapshot(const PinnedSnapshot&) = delete;
    PinnedSnapshot& operator=(const PinnedSnapshot&) = delete;
    ~PinnedSnapshot();

    [[nodiscard]] const ServiceSnapshot& operator*() const {
        return *snapshot_;
    }
    [[nodiscard]] const ServiceSnapshot* operator->() const {
        return snapshot_;
    }
    [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

private:
    friend class EpochRegistry;
    PinnedSnapshot(EpochRegistry* registry, std::uint64_t epoch,
                   const ServiceSnapshot* snapshot)
        : registry_(registry), epoch_(epoch), snapshot_(snapshot) {}

    void release() noexcept;

    EpochRegistry* registry_ = nullptr;
    std::uint64_t epoch_ = 0;
    const ServiceSnapshot* snapshot_ = nullptr;
};

/// Epoch-based snapshot publication: publish() installs a new current
/// epoch; pin() hands a reader the current snapshot and counts it in.
/// A superseded epoch is retired, not freed — its snapshot is reclaimed
/// only when its pin count drains to zero, so readers never observe a
/// snapshot dying under them and never block a writer. Both operations
/// are a short critical section (pointer + counter bookkeeping); all
/// snapshot reads happen outside the lock.
class EpochRegistry {
public:
    /// `metrics` (optional, not owned) receives `service.epoch` /
    /// `service.live_epochs` gauges and a `service.epochs_reclaimed`
    /// counter.
    explicit EpochRegistry(obs::MetricsRegistry* metrics = nullptr);

    /// Installs `snapshot` as the current epoch and returns its number
    /// (monotonic from 1). The previous epoch is retired; it is freed
    /// immediately when nothing pins it.
    std::uint64_t publish(std::shared_ptr<const ServiceSnapshot> snapshot);

    /// Pins the current epoch. Throws net::PreconditionError when
    /// nothing was ever published.
    [[nodiscard]] PinnedSnapshot pin();

    [[nodiscard]] std::uint64_t currentEpoch() const;
    /// Epochs still resident: the current one plus retired epochs whose
    /// pins have not drained.
    [[nodiscard]] std::size_t liveEpochs() const;
    /// Retired snapshots actually freed after their pin count drained.
    [[nodiscard]] std::uint64_t reclaimed() const;
    /// Sum of live resident bytes across every live epoch's snapshot.
    [[nodiscard]] std::uint64_t residentBytes() const;

private:
    friend class PinnedSnapshot;

    struct Entry {
        std::uint64_t epoch = 0;
        std::shared_ptr<const ServiceSnapshot> snapshot;
        std::size_t pins = 0;
    };

    void unpin(std::uint64_t epoch) noexcept;
    void publishGaugesLocked();

    obs::MetricsRegistry* metrics_;
    mutable std::mutex mutex_;
    std::vector<Entry> live_; ///< ascending epoch; back() is current
    std::uint64_t epoch_ = 0;
    std::uint64_t reclaimed_ = 0;
};

} // namespace aio::service
