#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>

#include "persist/record.hpp"

namespace aio::service {

/// Write-ahead ledger of tenant charges: one CRC-framed record per
/// admitted request, flushed before the request executes, so billing
/// state survives a service crash. The idempotency key is (tenant, seq)
/// — replay dedupes repeated records, so a crash between append and
/// acknowledgement can never double-charge a tenant's meter on resume.
class TenantLedger {
public:
    /// `sink` (not owned, must outlive the ledger) receives the records.
    explicit TenantLedger(persist::ByteSink& sink);

    /// Appends + flushes one charge. May throw persist::SinkFailure —
    /// the crash the replay path exists for.
    void recordCharge(std::string_view tenant, std::uint64_t seq,
                      double mb, bool offPeak);

    [[nodiscard]] std::uint64_t recordCount() const {
        return writer_.recordCount();
    }

    struct TenantConsumption {
        double peakMb = 0.0;
        double offPeakMb = 0.0;
        std::uint64_t charges = 0; ///< unique (tenant, seq) records
    };

    struct Replay {
        /// Per-tenant deduped consumption, deterministic order.
        std::map<std::string, TenantConsumption> tenants;
        std::uint64_t maxSeq = 0;       ///< highest seq in the journal
        std::uint64_t duplicates = 0;   ///< records dropped by dedupe
        bool tornTail = false;          ///< journal ended mid-record
    };

    /// Replays a journal byte range: skips the torn tail (the crash
    /// signature), dedupes (tenant, seq) repeats, sums the rest. Throws
    /// net::CorruptionError on mid-stream CRC damage, ParseError on a
    /// malformed payload.
    [[nodiscard]] static Replay replay(std::span<const std::byte> journal);

private:
    persist::RecordWriter writer_;
    persist::ByteSink* sink_;
};

} // namespace aio::service
