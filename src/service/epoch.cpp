#include "service/epoch.hpp"

#include <algorithm>
#include <utility>

#include "netbase/error.hpp"

namespace aio::service {

PinnedSnapshot::PinnedSnapshot(PinnedSnapshot&& other) noexcept
    : registry_(std::exchange(other.registry_, nullptr)),
      epoch_(other.epoch_),
      snapshot_(std::exchange(other.snapshot_, nullptr)) {}

PinnedSnapshot& PinnedSnapshot::operator=(PinnedSnapshot&& other) noexcept {
    if (this != &other) {
        release();
        registry_ = std::exchange(other.registry_, nullptr);
        epoch_ = other.epoch_;
        snapshot_ = std::exchange(other.snapshot_, nullptr);
    }
    return *this;
}

PinnedSnapshot::~PinnedSnapshot() { release(); }

void PinnedSnapshot::release() noexcept {
    if (registry_ != nullptr) {
        registry_->unpin(epoch_);
        registry_ = nullptr;
        snapshot_ = nullptr;
    }
}

EpochRegistry::EpochRegistry(obs::MetricsRegistry* metrics)
    : metrics_(metrics) {}

std::uint64_t
EpochRegistry::publish(std::shared_ptr<const ServiceSnapshot> snapshot) {
    AIO_EXPECTS(snapshot != nullptr, "cannot publish a null snapshot");
    const std::lock_guard<std::mutex> lock{mutex_};
    // Retire the previous current epoch right away when nothing pins it;
    // otherwise it lingers until its last reader unpins.
    if (!live_.empty() && live_.back().pins == 0) {
        live_.pop_back();
        ++reclaimed_;
        if (metrics_ != nullptr) {
            metrics_->counter("service.epochs_reclaimed").add();
        }
    }
    ++epoch_;
    live_.push_back(Entry{epoch_, std::move(snapshot), 0});
    publishGaugesLocked();
    return epoch_;
}

PinnedSnapshot EpochRegistry::pin() {
    const std::lock_guard<std::mutex> lock{mutex_};
    AIO_EXPECTS(!live_.empty(), "no snapshot has been published yet");
    Entry& current = live_.back();
    ++current.pins;
    return PinnedSnapshot{this, current.epoch, current.snapshot.get()};
}

std::uint64_t EpochRegistry::currentEpoch() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return epoch_;
}

std::size_t EpochRegistry::liveEpochs() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return live_.size();
}

std::uint64_t EpochRegistry::reclaimed() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return reclaimed_;
}

std::uint64_t EpochRegistry::residentBytes() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    std::uint64_t total = 0;
    for (const Entry& entry : live_) {
        total += entry.snapshot->residentBytes();
    }
    return total;
}

void EpochRegistry::unpin(std::uint64_t epoch) noexcept {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = std::find_if(
        live_.begin(), live_.end(),
        [epoch](const Entry& entry) { return entry.epoch == epoch; });
    if (it == live_.end() || it->pins == 0) {
        return; // defensive: a stale unpin must never corrupt the list
    }
    --it->pins;
    // Drain-based reclamation: a retired epoch (anything but the
    // current back() entry) is freed the moment its last pin leaves.
    if (it->pins == 0 && it->epoch != live_.back().epoch) {
        live_.erase(it);
        ++reclaimed_;
        if (metrics_ != nullptr) {
            metrics_->counter("service.epochs_reclaimed").add();
        }
        publishGaugesLocked();
    }
}

void EpochRegistry::publishGaugesLocked() {
    if (metrics_ != nullptr) {
        metrics_->gauge("service.epoch")
            .set(static_cast<double>(epoch_));
        metrics_->gauge("service.live_epochs")
            .set(static_cast<double>(live_.size()));
    }
}

} // namespace aio::service
