#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/substrate.hpp"
#include "exec/cancel.hpp"
#include "plan/planner.hpp"
#include "routing/route_oracle.hpp"
#include "sweep/scenario_sweep.hpp"
#include "topo/as_graph.hpp"

namespace aio::service {

/// Legacy closed request taxonomy, kept as a compatibility shim: a
/// request with an empty `workload` dispatches by `kind` through the
/// WorkloadRegistry's builtin of the same name ("query" / "whatif" /
/// "sweep"), with byte-identical admission decisions and ledger charges.
/// New callers name the workload directly; new workloads (plan,
/// estimate, tenant registrations) exist only by name.
enum class RequestKind : std::uint8_t {
    Query, ///< baseline next-hop/reachability lookup (light)
    WhatIf, ///< one scenario through the sweep engine (heavy)
    Sweep ///< a scenario batch through the sweep engine (heavy)
};

[[nodiscard]] std::string_view requestKindName(RequestKind kind);

/// True for the kinds the degradation ladder sheds first under load.
/// Deprecated: the heavy/light split is a WorkloadRegistry attribute now
/// (WorkloadInfo::heavy); this shim only covers the three legacy kinds.
[[deprecated("heaviness is a WorkloadInfo attribute; consult the "
             "WorkloadRegistry")]] [[nodiscard]] constexpr bool
isHeavy(RequestKind kind) {
    return kind != RequestKind::Query;
}

/// One tenant request. `seq` is assigned by the service at submission
/// (the ledger's idempotency key); callers leave it zero.
struct ServiceRequest {
    std::string tenant;
    /// Named workload to dispatch to. Empty = legacy shim: the enum
    /// `kind` below names the builtin ("query"/"whatif"/"sweep").
    std::string workload;
    RequestKind kind = RequestKind::Query;

    /// Query payload: baseline route lookup endpoints.
    topo::AsIndex src = 0;
    topo::AsIndex dst = 0;

    /// WhatIf (one entry) / Sweep (batch) payload.
    std::vector<core::ScenarioSpec> scenarios;

    /// Plan/Estimate payload: a textual MeasurementQuestion in the
    /// plan/textio format. Parse errors resolve the request as Failed
    /// with the typed line/field message.
    std::string questionText;

    /// Absolute deadline on the service clock;
    /// exec::kNoDeadlineNanos = none. Propagated into the execution
    /// engines as a CancelToken — an admitted request either completes
    /// before it or returns a typed cancellation.
    std::uint64_t deadlineNanos = exec::kNoDeadlineNanos;

    /// Billable megabytes this request meters against the tenant's
    /// budget (through the same TariffMeter/PricingModel the probe
    /// scheduler bills with). 0 = use the service's per-kind default.
    double costMb = 0.0;

    std::uint64_t seq = 0; ///< service-assigned, not caller-set
};

/// Why an admission was refused. Typed so callers can program against
/// the distinction (retry later vs shrink the request vs give up).
enum class RejectReason : std::uint8_t {
    None,
    QueueFull,        ///< bounded queue at capacity; retry after backoff
    Overloaded,       ///< heavy kinds shed at the queue-depth watermark
    MemoryPressure,   ///< resident bytes above the shed watermark
    BudgetExhausted,  ///< tenant's budget cannot pay for this request
    DeadlineUnmeetable, ///< deadline at or before the service clock now
    UnknownTenant,    ///< tenant was never registered
    ShuttingDown,     ///< service is draining; nothing new is admitted
    UnknownWorkload   ///< no registered workload answers to this name
};

[[nodiscard]] std::string_view rejectReasonName(RejectReason reason);

enum class ResponseStatus : std::uint8_t {
    Ok,
    Rejected,  ///< never admitted; see reject/retryAfterNanos
    Cancelled, ///< admitted but deadline/cancel fired mid-execution
    Failed     ///< admitted but the engine raised a non-cancel error
};

[[nodiscard]] std::string_view responseStatusName(ResponseStatus status);

/// What the service hands back for one request. Every response names the
/// epoch it was served from and whether the service was degraded (still
/// serving a stale epoch after a failed swap) at execution time.
struct ServiceResponse {
    ResponseStatus status = ResponseStatus::Ok;
    RejectReason reject = RejectReason::None;
    /// Hint for rejected requests: earliest service-clock nanos at which
    /// resubmission is worth trying. 0 when not rejected.
    std::uint64_t retryAfterNanos = 0;

    std::uint64_t seq = 0;
    std::uint64_t epoch = 0;   ///< snapshot epoch this answer came from
    bool degraded = false;     ///< stale-epoch service after a failed swap
    /// Baseline route-matrix digest of the serving snapshot (zeroes when
    /// the snapshot skipped digest computation) — the torn-read check:
    /// two responses from one epoch must carry identical digests.
    route::RouteMatrixDigest digest;

    /// Query payload: next hop (-1 unreachable) and reachability.
    std::int32_t nextHop = -1;
    bool reachable = false;

    /// WhatIf/Sweep payload.
    std::optional<sweep::SweepResult> sweep;

    /// Estimate payload: the compiled plan with its pre-execution
    /// cost/coverage estimate. Plan requests carry it too.
    std::optional<plan::CampaignPlan> plan;
    /// Plan payload: the executed campaign — answer rows, actual billed
    /// wire cost, and the estimate-vs-actual verdict.
    std::optional<plan::CampaignReport> report;

    double chargedUsd = 0.0; ///< what admission billed the tenant
    std::string error;       ///< Failed: the engine's message
};

} // namespace aio::service
