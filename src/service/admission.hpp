#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "core/budget.hpp"
#include "core/probe.hpp"
#include "obs/metrics.hpp"
#include "service/request.hpp"

namespace aio::service {

class WorkloadRegistry;

/// One tenant's contract with the service: how its bytes are billed
/// (same PricingModel family the probe scheduler uses, bundles and all)
/// and how much it may spend.
struct TenantQuota {
    std::string tenant;
    core::PricingModel pricing;
    double budgetUsd = 10.0;
};

struct AdmissionConfig {
    /// Bounded queue: submissions past this are rejected QueueFull.
    std::size_t queueCapacity = 64;
    /// Queue-depth watermark at which heavy kinds (WhatIf/Sweep) shed
    /// with Overloaded while light queries still board. Must not exceed
    /// queueCapacity.
    std::size_t shedQueueDepth = 48;
    /// Resident-byte watermark: above it heavy kinds shed with
    /// MemoryPressure (the ladder also shrinks cache budgets — that part
    /// is the service's, not the controller's). 0 disables.
    std::uint64_t shedResidentBytes = 0;
    /// Retry-after hint attached to load-shed rejections.
    std::uint64_t retryAfterNanos = 1'000'000'000;
    /// Default billable megabytes per builtin workload when the request
    /// leaves costMb zero. Sweeps bill per scenario. These seed the
    /// WorkloadRegistry's builtin attributes — cost resolution itself
    /// lives on the registry (WorkloadInfo::defaultCostMb), the single
    /// source admission billing and the charge ledger both read.
    double queryCostMb = 0.01;
    double whatIfCostMb = 0.5;
    double sweepCostMbPerScenario = 0.5;
    double estimateCostMb = 0.05;
    double planCostMb = 2.0;

    /// Throws net::PreconditionError when the queue is zero-capacity,
    /// the shed watermark is zero or above capacity, the retry hint is
    /// zero, or any default cost is negative/non-finite.
    void validate() const;
};

/// What the controller decided for one submission. On admission,
/// `chargedUsd` is what the tenant's meter was billed (budget metering
/// happens at admission so a shed request never costs anything).
struct AdmissionDecision {
    bool admitted = false;
    RejectReason reason = RejectReason::None;
    std::uint64_t retryAfterNanos = 0;
    double chargedUsd = 0.0;
};

/// Admission control for the resident service: bounded-queue capacity,
/// load-shed watermarks (queue depth + resident bytes), per-tenant
/// budget metering through TariffMeter, and deadline pre-flight. Pure
/// decision logic over caller-supplied load facts — single-threaded by
/// design; the service serializes calls under its own queue lock.
class AdmissionController {
public:
    /// `metrics` (optional, not owned) receives `service.admitted` and
    /// `service.rejected.<reason>` counters.
    explicit AdmissionController(AdmissionConfig config,
                                 obs::MetricsRegistry* metrics = nullptr);

    /// Registers (or replaces) a tenant. Validates the quota's pricing.
    void registerTenant(const TenantQuota& quota);
    [[nodiscard]] bool knowsTenant(std::string_view tenant) const;

    /// Binds the workload registry (not owned, must outlive the
    /// controller) that decides heaviness, deadline policy and default
    /// costs by name. Unbound, the controller falls back to the legacy
    /// RequestKind switch — same decisions for the three legacy kinds.
    void bindRegistry(const WorkloadRegistry* registry) {
        registry_ = registry;
    }

    /// Decides one submission given the current load facts. Admission
    /// bills the request's megabytes against the tenant's meter.
    [[nodiscard]] AdmissionDecision
    decide(const ServiceRequest& request, std::uint64_t nowNanos,
           std::size_t queueDepth, std::uint64_t residentBytes);

    /// Billable megabytes for `request`: delegates to the bound
    /// registry's per-workload attributes (the resolution the ledger
    /// records too — one seam, so estimate and billing cannot
    /// disagree); legacy per-kind switch when unbound.
    [[nodiscard]] double costMbFor(const ServiceRequest& request) const;

    [[nodiscard]] double spentUsd(std::string_view tenant) const;
    [[nodiscard]] double budgetUsd(std::string_view tenant) const;

    /// Overwrites one tenant's meter consumption from a ledger replay
    /// (resume path). The tenant must already be registered.
    void restoreConsumption(std::string_view tenant, double peakMb,
                            double offPeakMb);

    [[nodiscard]] const AdmissionConfig& config() const { return config_; }

private:
    struct Tenant {
        TenantQuota quota;
        core::TariffMeter meter;

        /// The meter aliases this Tenant's own quota.pricing, so the
        /// pair is constructed in place (map nodes are stable) and can
        /// never be copied or moved.
        explicit Tenant(TenantQuota q)
            : quota(std::move(q)), meter(quota.pricing) {}
        Tenant(const Tenant&) = delete;
        Tenant& operator=(const Tenant&) = delete;
    };

    [[nodiscard]] AdmissionDecision reject(RejectReason reason);

    AdmissionConfig config_;
    obs::MetricsRegistry* metrics_;
    const WorkloadRegistry* registry_ = nullptr;
    /// std::map: deterministic iteration for tests and digests.
    std::map<std::string, Tenant, std::less<>> tenants_;
};

} // namespace aio::service
