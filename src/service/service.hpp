#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "persist/record.hpp"
#include "service/admission.hpp"
#include "service/epoch.hpp"
#include "service/ledger.hpp"
#include "service/request.hpp"
#include "service/snapshot.hpp"
#include "service/workload.hpp"

namespace aio::service {

struct ServiceConfig {
    AdmissionConfig admission;
    /// Cache retained-byte budget the degradation ladder shrinks the
    /// current snapshot to when resident bytes cross the shed watermark
    /// (1 byte = "evict down to one entry"). The shrink is one-way per
    /// snapshot; a later published snapshot arrives with its own budget.
    std::size_t degradedCacheByteBudget = 1;

    /// Throws net::PreconditionError on a bad admission config.
    void validate() const { admission.validate(); }
};

/// The resident observatory: a long-running multi-tenant front end over
/// an immutable ServiceSnapshot shared by concurrent readers.
///
/// Concurrency model (DESIGN.md §13):
///  * snapshots are immutable epochs in an EpochRegistry — a handler
///    pins the current epoch per request and reads without locks;
///    publish() retires the old epoch, reclaimed when its pins drain;
///  * admission (bounded queue, shed watermarks, tenant budget meters)
///    runs under one service mutex; execution runs outside it;
///  * request deadlines propagate as exec::CancelToken through the
///    sweep engine and worker-pool chunk loop — an admitted request
///    either completes in time or resolves with a typed cancellation;
///  * overload degrades stepwise instead of failing: heavy kinds shed
///    at the queue-depth watermark, everything rejects at capacity,
///    memory pressure shrinks the snapshot's cache budget and sheds
///    heavy kinds, and a swap that fails validation leaves the service
///    answering from the stale epoch with responses flagged degraded.
///
/// Two execution modes share every code path above: step mode
/// (runOne()/drain() on the caller thread — the deterministic storm
/// harness) and threaded mode (start(n) handler threads — the soak).
class ObservatoryService {
public:
    /// `initial` must be a valid snapshot (epoch 1). `clock` (not
    /// owned) is the service clock deadlines are judged against.
    /// `metrics` (optional, not owned) receives the service.* counters,
    /// gauges and latency histogram. `ledgerSink` (optional, not owned)
    /// enables the write-ahead tenant charge ledger.
    ObservatoryService(std::shared_ptr<const ServiceSnapshot> initial,
                       ServiceConfig config, const obs::Clock* clock,
                       obs::MetricsRegistry* metrics = nullptr,
                       persist::ByteSink* ledgerSink = nullptr);
    ~ObservatoryService();

    ObservatoryService(const ObservatoryService&) = delete;
    ObservatoryService& operator=(const ObservatoryService&) = delete;

    void registerTenant(const TenantQuota& quota);

    /// Registers (or replaces) a named workload on top of the builtins
    /// (query/whatif/sweep/estimate/plan). Must precede the first
    /// submission and start() — the registry is immutable once serving,
    /// which is what lets handlers dispatch through it lock-free.
    void registerWorkload(WorkloadInfo info, WorkloadHandler handler);

    [[nodiscard]] const WorkloadRegistry& workloads() const {
        return registry_;
    }

    /// Resume path: replays a prior ledger journal into the registered
    /// tenants' meters (deduped by (tenant, seq) — never double-charges)
    /// and advances the sequence counter past the journal's highest seq.
    /// Call after registerTenant and before the first submit.
    void restoreLedger(std::span<const std::byte> journal);

    /// Submits one request. Always returns a future: rejected requests
    /// resolve immediately with status Rejected + a typed reason and
    /// retry-after hint; admitted requests resolve when a handler (or
    /// runOne/drain) executes them. Thread-safe. May throw
    /// persist::SinkFailure when the charge ledger's sink dies — the
    /// crash the resume path recovers from.
    [[nodiscard]] std::future<ServiceResponse> submit(ServiceRequest request);

    /// Publishes a new epoch, or — when `snapshot` carries a validation
    /// failure — records the failed swap and enters degraded mode: the
    /// service keeps answering from the stale epoch with responses
    /// flagged degraded until a later valid publish clears it. Returns
    /// the current epoch either way.
    std::uint64_t
    publish(net::Expected<std::shared_ptr<const ServiceSnapshot>> snapshot);

    [[nodiscard]] bool degradedMode() const;

    /// Fault hook: pretends `bytes` of resident growth (allocation
    /// pressure spike). When the shed watermark is crossed, the ladder
    /// shrinks the current snapshot's cache budget immediately and heavy
    /// admissions start shedding MemoryPressure.
    void injectAllocPressure(std::uint64_t bytes);
    void clearAllocPressure();
    /// Live epochs' snapshot bytes plus injected pressure.
    [[nodiscard]] std::uint64_t residentBytes() const;

    // ---- step mode ----
    /// Executes one queued request on the calling thread. False when
    /// the queue was empty.
    bool runOne();
    /// runOne until empty; returns how many requests ran.
    std::size_t drain();

    // ---- threaded mode ----
    void start(std::size_t handlerThreads);
    /// Drains nothing: queued-but-unexecuted requests resolve as
    /// Rejected/ShuttingDown. Idempotent; also called by the destructor.
    void stop();

    [[nodiscard]] std::size_t queueDepth() const;
    [[nodiscard]] std::uint64_t completedCount() const;
    [[nodiscard]] const AdmissionController& admission() const {
        return admission_;
    }
    [[nodiscard]] EpochRegistry& epochs() { return epochs_; }
    [[nodiscard]] const ServiceConfig& config() const { return config_; }

private:
    struct Pending {
        ServiceRequest request;
        std::promise<ServiceResponse> promise;
        double chargedUsd = 0.0;
    };

    [[nodiscard]] ServiceResponse execute(Pending& pending);
    void handlerLoop();
    [[nodiscard]] std::uint64_t residentBytesLocked() const;

    ServiceConfig config_;
    const obs::Clock* clock_;
    obs::MetricsRegistry* metrics_;
    EpochRegistry epochs_;
    WorkloadRegistry registry_;
    AdmissionController admission_;
    std::unique_ptr<TenantLedger> ledger_;

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Pending> queue_;
    std::vector<std::thread> handlers_;
    std::uint64_t seq_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t allocPressureBytes_ = 0;
    bool degraded_ = false;
    bool stopping_ = false;
};

} // namespace aio::service
