#include "service/ledger.hpp"

#include <set>
#include <utility>

#include "persist/bytes.hpp"

namespace aio::service {

namespace {

/// Payload version tag — bumped if the charge record ever grows fields.
constexpr std::uint8_t kChargeRecordVersion = 1;

} // namespace

TenantLedger::TenantLedger(persist::ByteSink& sink)
    : writer_(sink), sink_(&sink) {}

void TenantLedger::recordCharge(std::string_view tenant, std::uint64_t seq,
                                double mb, bool offPeak) {
    persist::ByteWriter payload;
    payload.u8(kChargeRecordVersion);
    payload.str(tenant);
    payload.u64(seq);
    payload.f64(mb);
    payload.boolean(offPeak);
    (void)writer_.append(payload.bytes());
    // Flush per charge: the billing contract is write-ahead — a request
    // only executes once its charge is durable.
    sink_->flush();
}

TenantLedger::Replay
TenantLedger::replay(std::span<const std::byte> journal) {
    Replay result;
    const persist::ScanResult scan = persist::scanRecords(journal);
    result.tornTail = scan.tail == persist::TailStatus::Torn;
    std::set<std::pair<std::string, std::uint64_t>> seen;
    for (const std::span<const std::byte> payload : scan.payloads) {
        persist::ByteReader reader{payload};
        const std::uint8_t version = reader.u8();
        if (version != kChargeRecordVersion) {
            throw net::ParseError{
                "unknown tenant-ledger record version"};
        }
        std::string tenant = reader.str();
        const std::uint64_t seq = reader.u64();
        const double mb = reader.f64();
        const bool offPeak = reader.u8() != 0;
        if (reader.remaining() != 0) {
            throw net::ParseError{
                "trailing bytes in tenant-ledger record"};
        }
        result.maxSeq = std::max(result.maxSeq, seq);
        if (!seen.emplace(tenant, seq).second) {
            ++result.duplicates; // re-appended after a failed flush
            continue;
        }
        TenantConsumption& consumption = result.tenants[std::move(tenant)];
        if (offPeak) {
            consumption.offPeakMb += mb;
        } else {
            consumption.peakMb += mb;
        }
        ++consumption.charges;
    }
    return result;
}

} // namespace aio::service
