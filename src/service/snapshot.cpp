#include "service/snapshot.hpp"

#include <utility>

namespace aio::service {

net::Expected<std::shared_ptr<const ServiceSnapshot>>
ServiceSnapshot::build(topo::Topology topology, phys::CableRegistry registry,
                       dns::DnsConfig dnsConfig,
                       content::ContentConfig contentConfig,
                       SnapshotConfig config) {
    if (!topology.finalized()) {
        return net::Error::precondition(
            "snapshot topology must be finalized before publication");
    }
    // shared_ptr<ServiceSnapshot> first, const-ified on return: the
    // members are wired up in dependency order against stable addresses.
    auto snapshot = std::shared_ptr<ServiceSnapshot>{new ServiceSnapshot{}};
    snapshot->topo_ =
        std::make_unique<topo::Topology>(std::move(topology));

    route::OracleCacheConfig cacheConfig;
    cacheConfig.policy = config.impact.routeStorage;
    cacheConfig.sharded = config.impact.shardedRouting;
    cacheConfig.byteBudget = config.cacheByteBudget;
    snapshot->cache_ = std::make_unique<route::OracleCache>(
        *snapshot->topo_, config.cacheCapacity, nullptr, config.metrics,
        cacheConfig);

    core::Substrate::Options options;
    options.linkConfig = config.linkConfig;
    options.seed = config.seed;
    options.oracleCache = snapshot->cache_.get();
    options.pool = nullptr; // handlers are the parallelism — see class doc
    options.metrics = config.metrics;
    options.impact = config.impact;
    auto substrate = core::Substrate::tryCreate(
        *snapshot->topo_, std::move(registry), std::move(dnsConfig),
        std::move(contentConfig), options);
    if (!substrate.hasValue()) {
        return substrate.error();
    }
    snapshot->substrate_ =
        std::make_unique<core::Substrate>(std::move(substrate).value());

    if (config.computeDigest) {
        snapshot->digest_ = route::routeMatrixDigest(
            *snapshot->substrate_->analyzer().baselineOracle());
        snapshot->hasDigest_ = true;
    }
    return std::shared_ptr<const ServiceSnapshot>{std::move(snapshot)};
}

std::uint64_t ServiceSnapshot::residentBytes() const {
    return substrate_->analyzer().baselineOracle()->memoryBytes() +
           cache_->stats().retainedBytes;
}

} // namespace aio::service
