#pragma once

#include <cstdint>
#include <vector>

#include "outage/radar.hpp"
#include "resilience/fault.hpp"
#include "stream/event.hpp"

namespace aio::stream {

/// One delivered copy of an event: what the collector actually receives,
/// possibly delayed, duplicated or re-sessioned relative to emission.
/// `ordinal` is the copy's position in the canonical emission order —
/// the stable-sort tiebreaker that makes a simulated delivery schedule a
/// pure function of (events, faults, rng seed).
struct DeliveredEvent {
    MeasurementEvent event;
    double deliveryDay = 0.0;
    std::uint64_t ordinal = 0;

    [[nodiscard]] bool operator==(const DeliveredEvent&) const = default;
};

/// Emits the ground-truth measurement stream for one window: per African
/// country (country-table order, one virtual probe per country), the
/// exact per-slot values outage::RadarMonitor::seriesFor would build —
/// same rng draw order as RadarMonitor::detectAll, so a batch monitor
/// run from the same rng state sees bit-identical series. That shared
/// draw order is the foundation of the online-vs-batch differential
/// guarantee.
class GroundTruthSource {
public:
    explicit GroundTruthSource(const outage::RadarMonitor& monitor)
        : monitor_(&monitor) {}

    /// Events in canonical emission order: countries in table order,
    /// slots ascending within a country; (session 0, seq = slot) stamped
    /// through a core::ProbeStreamCursor per probe.
    [[nodiscard]] std::vector<MeasurementEvent>
    emit(double windowDays,
         const std::vector<outage::ImpactReport>& impacts,
         net::Rng& rng) const;

    /// The virtual probe ids `emit` stamps, one per African country, in
    /// the same order — what a StreamFaultInjector's schedule covers.
    [[nodiscard]] static std::vector<std::uint64_t> probeIds();

private:
    const outage::RadarMonitor* monitor_;
};

/// What delivery did to the stream, for the example's report card.
struct DeliveryStats {
    std::uint64_t emitted = 0;
    std::uint64_t copies = 0;      ///< delivered copies, duplicates included
    std::uint64_t duplicates = 0;  ///< extra copies injected
    std::uint64_t delayedDrops = 0;///< first copies lost then redelivered
    std::uint64_t reordered = 0;   ///< copies displaced within the skew
    std::uint64_t lateCopies = 0;  ///< copies displaced beyond the watermark
    std::uint64_t reconnects = 0;  ///< session changes stamped by churn
};

/// Runs the emission stream through a delivery-fault schedule: each event
/// draws a fate (drop-and-redeliver, reorder, late, plus an independent
/// duplicate), churn re-stamps (session, seq) via the injector's
/// reconnect schedule, and the copies are stable-sorted by
/// (deliveryDay, ordinal). Deterministic given the rng state — the
/// adversarial tests replay the same schedule against different
/// consumers.
[[nodiscard]] std::vector<DeliveredEvent>
simulateDelivery(std::vector<MeasurementEvent> events,
                 const resilience::StreamFaultInjector& faults,
                 double samplesPerDay, net::Rng& rng,
                 DeliveryStats* stats = nullptr);

} // namespace aio::stream
