#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "persist/record.hpp"
#include "stream/event.hpp"

namespace aio::stream {

/// First record of every event log: ties the log to the exact pipeline
/// configuration that wrote it. A consumer replaying under a different
/// config must refuse — an online detector fed a log whose watermark or
/// cadence differs from its own would diverge silently.
struct EventLogHeader {
    std::uint32_t formatVersion = 1;
    std::uint64_t configDigest = 0;
    double samplesPerDay = 4.0;
    double windowDays = 0.0;

    [[nodiscard]] bool operator==(const EventLogHeader&) const = default;
};

/// Append-only, CRC-framed, crash-truncatable event log: the stream's
/// durable backbone. One header record, then one record per accepted
/// event; every append is flushed before returning, so the durable
/// prefix at any crash instant is a clean record boundary (torn tails
/// truncate on read, exactly like CampaignJournal).
class EventLogWriter {
public:
    /// Writes and flushes the header record immediately. `metrics`
    /// (optional, not owned) receives `stream.log.appends` /
    /// `.bytes_written` counters and `stream.log.append_seconds`.
    EventLogWriter(persist::ByteSink& sink, const EventLogHeader& header,
                   obs::MetricsRegistry* metrics = nullptr);

    /// Appends one event record and flushes it to durability.
    void append(const MeasurementEvent& event);

    /// Records written including the header.
    [[nodiscard]] std::uint64_t recordCount() const {
        return writer_.recordCount();
    }

private:
    void appendRecord(std::span<const std::byte> payload);

    persist::RecordWriter writer_;
    persist::ByteSink* sink_;
    obs::MetricsRegistry* metrics_;
};

/// An event log read back from bytes. `boundaries[i]` is the byte offset
/// just past event i's record — the positions the crash sweep enumerates
/// and the offsets consumer checkpoints name.
struct EventLogView {
    EventLogHeader header;
    std::vector<MeasurementEvent> events;
    std::vector<std::size_t> boundaries;
    bool tornTail = false;
};

/// Parses a log byte range. A torn tail is expected (the writer crashed)
/// and reported; CRC damage or an undecodable record throws
/// net::CorruptionError; a missing or malformed header throws too — a
/// log without provenance cannot be replayed honestly.
[[nodiscard]] EventLogView readEventLog(std::span<const std::byte> bytes);

} // namespace aio::stream
