#include "stream/event.hpp"

#include <cmath>

#include "netbase/error.hpp"

namespace aio::stream {

void encodeEvent(persist::ByteWriter& writer, const MeasurementEvent& event) {
    writer.u64(event.probe);
    writer.u32(event.session);
    writer.u64(event.seq);
    writer.str(event.country);
    writer.u32(event.slot);
    writer.f64(event.value);
}

MeasurementEvent decodeEvent(persist::ByteReader& reader) {
    MeasurementEvent event;
    event.probe = reader.u64();
    event.session = reader.u32();
    event.seq = reader.u64();
    event.country = reader.str();
    event.slot = reader.u32();
    event.value = reader.f64();
    return event;
}

void StreamConfig::validate() const {
    AIO_EXPECTS(std::isfinite(watermarkDays) && watermarkDays >= 0.0,
                "watermarkDays must be non-negative and finite");
    AIO_EXPECTS(queueCapacity >= 1, "queueCapacity must be at least 1");
    AIO_EXPECTS(dedupeWindow >= 1, "dedupeWindow must be at least 1");
    AIO_EXPECTS(checkpointEveryEvents >= 1,
                "checkpointEveryEvents must be at least 1");
}

std::uint64_t streamConfigDigest(const outage::RadarConfig& radar,
                                 const StreamConfig& stream,
                                 double windowDays) {
    radar.validate();
    stream.validate();
    persist::ByteWriter writer;
    writer.f64(radar.samplesPerDay);
    writer.f64(radar.noiseStddev);
    writer.f64(radar.dropThreshold);
    writer.i32(radar.minConsecutiveSamples);
    writer.f64(stream.watermarkDays);
    writer.u64(stream.queueCapacity);
    writer.u64(stream.dedupeWindow);
    writer.u64(stream.checkpointEveryEvents);
    writer.f64(windowDays);
    return persist::fnv1a64(writer.bytes());
}

void DegradationReport::merge(const DegradationReport& other) {
    eventsDelivered += other.eventsDelivered;
    eventsAccepted += other.eventsAccepted;
    duplicatesDropped += other.duplicatesDropped;
    staleSessions += other.staleSessions;
    reconnects += other.reconnects;
    backpressureStalls += other.backpressureStalls;
    duplicateSlots += other.duplicateSlots;
    lateDropped += other.lateDropped;
    sealedGaps += other.sealedGaps;
    for (const auto& [country, count] : other.lateByCountry) {
        lateByCountry[country] += count;
    }
}

void encodeDegradation(persist::ByteWriter& writer,
                       const DegradationReport& report) {
    writer.u64(report.eventsDelivered);
    writer.u64(report.eventsAccepted);
    writer.u64(report.duplicatesDropped);
    writer.u64(report.staleSessions);
    writer.u64(report.reconnects);
    writer.u64(report.backpressureStalls);
    writer.u64(report.duplicateSlots);
    writer.u64(report.lateDropped);
    writer.u64(report.sealedGaps);
    writer.u32(static_cast<std::uint32_t>(report.lateByCountry.size()));
    for (const auto& [country, count] : report.lateByCountry) {
        writer.str(country);
        writer.u64(count);
    }
}

DegradationReport decodeDegradation(persist::ByteReader& reader) {
    DegradationReport report;
    report.eventsDelivered = reader.u64();
    report.eventsAccepted = reader.u64();
    report.duplicatesDropped = reader.u64();
    report.staleSessions = reader.u64();
    report.reconnects = reader.u64();
    report.backpressureStalls = reader.u64();
    report.duplicateSlots = reader.u64();
    report.lateDropped = reader.u64();
    report.sealedGaps = reader.u64();
    const std::uint32_t entries = reader.u32();
    for (std::uint32_t i = 0; i < entries; ++i) {
        std::string country = reader.str();
        report.lateByCountry[std::move(country)] = reader.u64();
    }
    return report;
}

} // namespace aio::stream
