#include "stream/source.hpp"

#include <algorithm>

#include "core/probe.hpp"
#include "netbase/error.hpp"
#include "netbase/region.hpp"

namespace aio::stream {

std::vector<MeasurementEvent>
GroundTruthSource::emit(double windowDays,
                        const std::vector<outage::ImpactReport>& impacts,
                        net::Rng& rng) const {
    AIO_EXPECTS(windowDays > 0.0, "window must be positive");
    std::vector<MeasurementEvent> out;
    std::uint64_t probeId = 0;
    for (const auto* country : net::CountryTable::world().african()) {
        // Same call, same order, same rng as RadarMonitor::detectAll —
        // the series doubles must be bit-identical to the batch path.
        const outage::TrafficSeries series =
            monitor_->seriesFor(country->iso2, windowDays, impacts, rng);
        core::ProbeStreamCursor cursor;
        for (std::size_t slot = 0; slot < series.values.size(); ++slot) {
            MeasurementEvent event;
            event.probe = probeId;
            event.session = cursor.session;
            event.seq = cursor.issue();
            event.country = series.country;
            event.slot = static_cast<std::uint32_t>(slot);
            event.value = series.values[slot];
            out.push_back(std::move(event));
        }
        ++probeId;
    }
    return out;
}

std::vector<std::uint64_t> GroundTruthSource::probeIds() {
    const std::size_t countries =
        net::CountryTable::world().african().size();
    std::vector<std::uint64_t> ids(countries);
    for (std::size_t i = 0; i < countries; ++i) {
        ids[i] = i;
    }
    return ids;
}

std::vector<DeliveredEvent>
simulateDelivery(std::vector<MeasurementEvent> events,
                 const resilience::StreamFaultInjector& faults,
                 double samplesPerDay, net::Rng& rng,
                 DeliveryStats* stats) {
    AIO_EXPECTS(samplesPerDay > 0.0, "samplesPerDay must be positive");
    DeliveryStats local;
    local.emitted = events.size();
    std::vector<DeliveredEvent> copies;
    copies.reserve(events.size());
    // Re-stamp (session, seq) in canonical emission order: churn decides
    // which session each emission falls into, and the cursor re-issues
    // sequence numbers from zero within each session — exactly what a
    // real probe does across a disconnect.
    std::map<std::uint64_t, core::ProbeStreamCursor> cursors;
    std::uint64_t ordinal = 0;
    for (MeasurementEvent& event : events) {
        const double emissionDay = event.dayAt(samplesPerDay);
        core::ProbeStreamCursor& cursor = cursors[event.probe];
        const std::uint32_t session =
            faults.sessionAt(event.probe, emissionDay);
        while (cursor.session < session) {
            cursor.reconnect();
            ++local.reconnects;
        }
        event.session = cursor.session;
        event.seq = cursor.issue();

        const auto fate = faults.fateFor(rng);
        if (fate.dropped) {
            ++local.delayedDrops;
        } else if (fate.reordered) {
            ++local.reordered;
        } else if (fate.late) {
            ++local.lateCopies;
        }
        DeliveredEvent copy;
        copy.event = event;
        copy.deliveryDay = emissionDay + fate.delayDays;
        copy.ordinal = ordinal++;
        copies.push_back(copy);
        ++local.copies;
        if (fate.duplicate) {
            DeliveredEvent dup;
            dup.event = std::move(event);
            dup.deliveryDay = emissionDay + fate.duplicateDelayDays;
            dup.ordinal = ordinal++;
            copies.push_back(std::move(dup));
            ++local.duplicates;
            ++local.copies;
        }
    }
    // Ordinals are unique, so this order is total and deterministic.
    std::ranges::sort(copies,
                      [](const DeliveredEvent& a, const DeliveredEvent& b) {
                          if (a.deliveryDay != b.deliveryDay) {
                              return a.deliveryDay < b.deliveryDay;
                          }
                          return a.ordinal < b.ordinal;
                      });
    if (stats != nullptr) {
        *stats = local;
    }
    return copies;
}

} // namespace aio::stream
