#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "obs/metrics.hpp"
#include "stream/event_log.hpp"
#include "stream/source.hpp"

namespace aio::stream {

/// Capture side of the pipeline: delivered copies go through a bounded
/// ring (a full ring is a backpressure stall — the producer waits while a
/// batch drains) and per-probe at-least-once dedupe before reaching the
/// durable event log. The ring is modelled deterministically — one
/// logical producer, batch drains — so stall counts are a pure function
/// of the delivery schedule, not of scheduler timing; the parallelism
/// budget of this subsystem is spent on the detector side
/// (OnlineRadarDetector::ingestSharded), where it cannot perturb results.
///
/// Dedupe state per probe: per-session sets of seen sequence numbers
/// (each bounded by StreamConfig::dedupeWindow — older seqs are
/// conservatively treated as redeliveries). A bounded number of recent
/// sessions is retained, because reordering routinely delivers a
/// pre-reconnect straggler *after* the probe's next session has been
/// seen — dropping those would silently lose in-watermark data. Only
/// copies from sessions evicted beyond the retention horizon are counted
/// stale and dropped.
class StreamIngestor {
public:
    /// `metrics` (optional, not owned) receives stream.ingest.* counters.
    StreamIngestor(StreamConfig config,
                   obs::MetricsRegistry* metrics = nullptr);

    /// Runs every delivered copy through ring + dedupe, appending the
    /// survivors to `log` in delivery order. Callable repeatedly — dedupe
    /// state persists across calls (one capture process, many drains).
    void capture(std::span<const DeliveredEvent> delivered,
                 EventLogWriter& log);

    /// Ingest-side counters accumulated so far (detector-side fields of
    /// the report stay zero here).
    [[nodiscard]] const DegradationReport& stats() const { return stats_; }

private:
    /// True when the copy is fresh (first delivery of its
    /// (probe, session, seq) identity); updates dedupe state either way.
    [[nodiscard]] bool admit(const MeasurementEvent& event);

    struct SessionDedupe {
        std::uint64_t floorSeq = 0; ///< seqs below are assumed seen
        std::set<std::uint64_t> seen;
    };
    struct ProbeDedupe {
        std::uint32_t maxSession = 0;
        /// Recent sessions, oldest evicted beyond the retention horizon.
        std::map<std::uint32_t, SessionDedupe> sessions;
    };

    StreamConfig config_;
    obs::MetricsRegistry* metrics_;
    std::map<std::uint64_t, ProbeDedupe> probes_;
    std::vector<DeliveredEvent> ring_;
    DegradationReport stats_;
};

} // namespace aio::stream
