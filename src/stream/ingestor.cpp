#include "stream/ingestor.hpp"

namespace aio::stream {

StreamIngestor::StreamIngestor(StreamConfig config,
                               obs::MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {
    config_.validate();
    ring_.reserve(config_.queueCapacity);
}

void StreamIngestor::capture(std::span<const DeliveredEvent> delivered,
                             EventLogWriter& log) {
    const auto drain = [&] {
        for (const DeliveredEvent& copy : ring_) {
            if (admit(copy.event)) {
                ++stats_.eventsAccepted;
                log.append(copy.event);
            }
        }
        ring_.clear();
    };
    for (const DeliveredEvent& copy : delivered) {
        if (ring_.size() == config_.queueCapacity) {
            // The producer hit a full ring and had to wait for a drain:
            // one backpressure stall, however many copies the drain
            // frees. Deterministic because the model has one logical
            // producer and batch drains.
            ++stats_.backpressureStalls;
            if (metrics_ != nullptr) {
                metrics_->counter("stream.ingest.backpressure_stalls")
                    .add();
            }
            drain();
        }
        ring_.push_back(copy);
        ++stats_.eventsDelivered;
    }
    drain();
    if (metrics_ != nullptr) {
        metrics_->counter("stream.ingest.delivered").add(delivered.size());
    }
}

namespace {

/// How many sessions back a probe's stragglers stay acceptable. Churn
/// bursts plus in-flight reordering deliver pre-reconnect copies after
/// the next session has already been seen; within this horizon they are
/// deduped normally instead of being thrown away as stale.
constexpr std::uint32_t kSessionRetention = 8;

} // namespace

bool StreamIngestor::admit(const MeasurementEvent& event) {
    ProbeDedupe& probe = probes_[event.probe];
    const auto count = [&](const char* name) {
        if (metrics_ != nullptr) {
            metrics_->counter(name).add();
        }
    };
    if (event.session > probe.maxSession) {
        stats_.reconnects += event.session - probe.maxSession;
        if (metrics_ != nullptr) {
            metrics_->counter("stream.ingest.reconnects")
                .add(event.session - probe.maxSession);
        }
        probe.maxSession = event.session;
        while (!probe.sessions.empty() &&
               probe.sessions.begin()->first + kSessionRetention <=
                   probe.maxSession) {
            probe.sessions.erase(probe.sessions.begin());
        }
    }
    if (event.session + kSessionRetention <= probe.maxSession) {
        // Residue of a session evicted beyond the retention horizon: its
        // dedupe state is gone, so the copy cannot be admitted honestly
        // — only dropped and counted.
        ++stats_.staleSessions;
        count("stream.ingest.stale_sessions");
        return false;
    }
    SessionDedupe& session = probe.sessions[event.session];
    if (event.seq < session.floorSeq || session.seen.contains(event.seq)) {
        // Below the window floor we cannot distinguish "never seen" from
        // "seen and evicted"; at-least-once delivery makes redelivery
        // the overwhelmingly likely story, so drop conservatively.
        ++stats_.duplicatesDropped;
        count("stream.ingest.duplicates");
        return false;
    }
    session.seen.insert(event.seq);
    if (event.seq >= session.floorSeq + config_.dedupeWindow) {
        session.floorSeq = event.seq - config_.dedupeWindow + 1;
        session.seen.erase(session.seen.begin(),
                           session.seen.lower_bound(session.floorSeq));
    }
    count("stream.ingest.accepted");
    return true;
}

} // namespace aio::stream
