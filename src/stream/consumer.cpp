#include "stream/consumer.hpp"

#include "netbase/error.hpp"
#include "stream/event_log.hpp"

namespace aio::stream {

namespace {

constexpr std::uint8_t kJournalHeaderRecord = 1;
constexpr std::uint8_t kCheckpointRecord = 2;
constexpr std::uint32_t kJournalVersion = 1;

} // namespace

StreamConsumer::StreamConsumer(outage::RadarConfig radar,
                               StreamConfig stream,
                               obs::MetricsRegistry* metrics,
                               obs::Trace* trace)
    : radar_(radar), stream_(stream), metrics_(metrics), trace_(trace) {
    radar_.validate();
    stream_.validate();
}

StreamConsumer::ReplayedJournal
StreamConsumer::replayCheckpoints(std::span<const std::byte> bytes) const {
    ReplayedJournal replayed;
    // A torn tail is the expected crash signature: scanRecords truncates
    // it, and the last *intact* checkpoint wins.
    const persist::ScanResult scan = persist::scanRecords(bytes);
    bool sawAnchor = false;
    for (const auto payload : scan.payloads) {
        persist::ByteReader reader{payload};
        const std::uint8_t type = reader.u8();
        if (type == kJournalHeaderRecord) {
            if (replayed.sawHeader) {
                throw net::CorruptionError{
                    "checkpoint journal holds a second header"};
            }
            replayed.sawHeader = true;
            const std::uint32_t version = reader.u32();
            if (version != kJournalVersion) {
                throw net::CorruptionError{
                    "checkpoint journal has format version " +
                    std::to_string(version) + ", reader understands " +
                    std::to_string(kJournalVersion)};
            }
            replayed.digest = reader.u64();
            replayed.resumedAtEvent = reader.u64();
            if (!reader.atEnd()) {
                throw net::CorruptionError{
                    "checkpoint-journal header carries trailing bytes"};
            }
        } else if (type == kCheckpointRecord) {
            if (!replayed.sawHeader) {
                throw net::CorruptionError{
                    "checkpoint journal starts without a header"};
            }
            const std::uint64_t eventIndex = reader.u64();
            if (replayed.checkpointEvent.has_value() &&
                eventIndex < *replayed.checkpointEvent) {
                throw net::CorruptionError{
                    "checkpoint journal rewinds its event offset"};
            }
            if (!sawAnchor) {
                sawAnchor = true;
                if (replayed.resumedAtEvent > 0 &&
                    eventIndex != replayed.resumedAtEvent) {
                    throw net::CorruptionError{
                        "continuation journal's first checkpoint does "
                        "not restate the resume point"};
                }
            }
            replayed.checkpointEvent = eventIndex;
            const std::size_t stateOffset =
                payload.size() - reader.remaining();
            replayed.checkpointState.assign(
                payload.begin() + static_cast<std::ptrdiff_t>(stateOffset),
                payload.end());
        } else {
            throw net::CorruptionError{
                "checkpoint journal holds unknown record type " +
                std::to_string(type)};
        }
    }
    if (replayed.sawHeader && replayed.resumedAtEvent > 0 && !sawAnchor) {
        throw net::CorruptionError{
            "continuation journal lost its anchor checkpoint"};
    }
    return replayed;
}

StreamConsumer::Outcome
StreamConsumer::run(std::span<const std::byte> logBytes,
                    persist::ByteSink& checkpointSink,
                    std::span<const std::byte> priorCheckpoints,
                    std::uint64_t killAfterEvents) {
    auto runSpan = obs::Trace::enter(trace_, "stream.consumer.run");
    const EventLogView view = [&] {
        auto span = obs::Trace::enter(trace_, "stream.consumer.read_log");
        return readEventLog(logBytes);
    }();
    const std::uint64_t digest =
        streamConfigDigest(radar_, stream_, view.header.windowDays);
    AIO_EXPECTS(view.header.configDigest == digest,
                "event log was written under a different radar/stream "
                "configuration");

    OnlineRadarDetector detector{radar_, stream_, view.header.windowDays,
                                 metrics_};
    std::uint64_t startIndex = 0;
    if (!priorCheckpoints.empty()) {
        auto span = obs::Trace::enter(trace_, "stream.consumer.resume");
        const ReplayedJournal replayed =
            replayCheckpoints(priorCheckpoints);
        if (replayed.sawHeader) {
            AIO_EXPECTS(replayed.digest == digest,
                        "checkpoint journal was written under a "
                        "different radar/stream configuration");
        }
        if (replayed.checkpointEvent.has_value()) {
            detector.restoreState(replayed.checkpointState);
            startIndex = *replayed.checkpointEvent;
            AIO_EXPECTS(startIndex <= view.events.size(),
                        "checkpoint lies beyond the end of the event log");
        }
        if (metrics_ != nullptr) {
            metrics_->counter("stream.consumer.resumes").add();
        }
    }

    // Fresh journal for this run: header, then (for continuations) the
    // anchor checkpoint restating the state we resumed from.
    persist::RecordWriter journal{checkpointSink};
    const auto appendRecord = [&](std::span<const std::byte> payload) {
        journal.append(payload);
        checkpointSink.flush();
    };
    const auto appendCheckpoint = [&](std::uint64_t eventIndex) {
        obs::ScopedTimer timer{metrics_,
                               "stream.consumer.checkpoint_seconds"};
        auto span = obs::Trace::enter(trace_, "stream.consumer.checkpoint");
        persist::ByteWriter payload;
        payload.u8(kCheckpointRecord);
        payload.u64(eventIndex);
        payload.raw(detector.encodeState());
        appendRecord(payload.bytes());
        if (metrics_ != nullptr) {
            metrics_->counter("stream.consumer.checkpoints").add();
        }
    };
    {
        persist::ByteWriter payload;
        payload.u8(kJournalHeaderRecord);
        payload.u32(kJournalVersion);
        payload.u64(digest);
        payload.u64(startIndex);
        appendRecord(payload.bytes());
    }
    if (startIndex > 0) {
        appendCheckpoint(startIndex);
    }

    Outcome outcome;
    std::uint64_t processedThisRun = 0;
    {
        auto span = obs::Trace::enter(trace_, "stream.consumer.ingest");
        for (std::size_t i = startIndex; i < view.events.size(); ++i) {
            if (killAfterEvents != kRunToCompletion &&
                processedThisRun >= killAfterEvents) {
                // The consumer-crash fault class: stop mid-stream with
                // no goodbye. Whatever checkpoints already flushed are
                // the only thing the next run can build on.
                outcome.eventsProcessed = detector.eventsIngested();
                outcome.degradation = detector.degradation();
                if (trace_ != nullptr) {
                    trace_->count("stream.consumer.events",
                                  processedThisRun);
                }
                return outcome;
            }
            detector.ingest(view.events[i]);
            ++processedThisRun;
            if ((i + 1 - startIndex) % stream_.checkpointEveryEvents ==
                0) {
                appendCheckpoint(i + 1);
            }
        }
        if (trace_ != nullptr) {
            trace_->count("stream.consumer.events", processedThisRun);
        }
    }
    // Closing checkpoint: a run that completed leaves a journal any
    // successor can resume from trivially.
    appendCheckpoint(view.events.size());
    if (metrics_ != nullptr) {
        metrics_->counter("stream.consumer.events").add(processedThisRun);
    }

    outcome.detections = detector.finalDetections();
    outcome.alerts = detector.alerts();
    outcome.degradation = detector.degradation();
    outcome.eventsProcessed = detector.eventsIngested();
    outcome.completed = true;
    return outcome;
}

} // namespace aio::stream
