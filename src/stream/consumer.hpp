#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "persist/record.hpp"
#include "stream/online_radar.hpp"

namespace aio::stream {

/// Crash-resumable consumer: replays an event log through an
/// OnlineRadarDetector, checkpointing (offset, detector state) into its
/// own CRC-framed journal every StreamConfig::checkpointEveryEvents
/// accepted events. A consumer killed at *any* instant resumes from the
/// last durable checkpoint of its journal, reprocesses the uncovered
/// suffix, and converges to byte-identical detections, alerts and
/// degradation counters — the streaming analogue of CampaignJournal's
/// resume contract, proven by the same boundary-sweep harness.
///
/// Journal layout: one header record {formatVersion, configDigest,
/// resumedAtEvent}, then checkpoint records {eventIndex, detectorState}.
/// A continuation journal (resumedAtEvent > 0) opens with an *anchor*
/// checkpoint restating the state it resumed from, so the chain of
/// journals is self-contained: a continuation whose anchor is missing is
/// refused as corrupt rather than replayed on faith.
class StreamConsumer {
public:
    /// `metrics` / `trace` (optional, not owned) receive
    /// stream.consumer.* counters, checkpoint latency and span timings.
    StreamConsumer(outage::RadarConfig radar, StreamConfig stream,
                   obs::MetricsRegistry* metrics = nullptr,
                   obs::Trace* trace = nullptr);

    struct Outcome {
        std::vector<outage::RadarDetection> detections;
        std::vector<OnlineAlert> alerts;
        DegradationReport degradation;
        std::uint64_t eventsProcessed = 0; ///< detector total, all runs
        bool completed = false; ///< false when killAfterEvents fired

        [[nodiscard]] bool operator==(const Outcome&) const = default;
    };

    static constexpr std::uint64_t kRunToCompletion =
        ~static_cast<std::uint64_t>(0);

    /// Consumes `logBytes` end to end, journalling checkpoints into
    /// `checkpointSink`. `priorCheckpoints` (empty for a fresh run) is
    /// the journal of a previous — possibly killed — run over the same
    /// log: the consumer restores its last durable checkpoint and
    /// continues from there. `killAfterEvents` simulates the consumer
    /// crash fault class: processing stops abruptly after that many
    /// events this run (no final flush, no farewell), returning a
    /// partial Outcome with completed=false.
    ///
    /// Throws net::PreconditionError when the log or checkpoint journal
    /// was written under a different configuration, and
    /// net::CorruptionError for structural damage (CRC failures, a
    /// continuation journal missing its anchor).
    [[nodiscard]] Outcome
    run(std::span<const std::byte> logBytes,
        persist::ByteSink& checkpointSink,
        std::span<const std::byte> priorCheckpoints = {},
        std::uint64_t killAfterEvents = kRunToCompletion);

private:
    struct ReplayedJournal {
        bool sawHeader = false;
        std::uint64_t digest = 0;
        std::uint64_t resumedAtEvent = 0;
        std::optional<std::uint64_t> checkpointEvent;
        std::vector<std::byte> checkpointState;
    };

    [[nodiscard]] ReplayedJournal
    replayCheckpoints(std::span<const std::byte> bytes) const;

    outage::RadarConfig radar_;
    StreamConfig stream_;
    obs::MetricsRegistry* metrics_;
    obs::Trace* trace_;
};

} // namespace aio::stream
