#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "outage/radar.hpp"
#include "persist/bytes.hpp"

namespace aio::stream {

/// One timestamped probe measurement: probe `probe` (in session
/// `session`, sequence `seq`) observed traffic level `value` for its
/// country at series slot `slot`. The (probe, session, seq) triple is the
/// at-least-once identity — redelivered copies repeat it exactly, which
/// is how the ingestor recognises them — while (country, slot) is the
/// *semantic* identity the detector keys on.
struct MeasurementEvent {
    std::uint64_t probe = 0;
    std::uint32_t session = 0;
    std::uint64_t seq = 0;
    std::string country; ///< ISO-3166 alpha-2
    std::uint32_t slot = 0; ///< index into the country's traffic series
    double value = 0.0;

    /// Emission time in days given the series cadence.
    [[nodiscard]] double dayAt(double samplesPerDay) const {
        return static_cast<double>(slot) / samplesPerDay;
    }

    [[nodiscard]] bool operator==(const MeasurementEvent&) const = default;
};

void encodeEvent(persist::ByteWriter& writer, const MeasurementEvent& event);
[[nodiscard]] MeasurementEvent decodeEvent(persist::ByteReader& reader);

/// Knobs of the streaming pipeline itself (the detection math lives in
/// outage::RadarConfig).
struct StreamConfig {
    /// How long a slot stays open for late arrivals, in days behind the
    /// country's observed frontier. Events landing behind the watermark
    /// are counted and dropped, never merged — that is the determinism
    /// contract: any delivery order whose skew stays within the watermark
    /// yields byte-identical final detections.
    double watermarkDays = 1.0;
    /// Capture-ring capacity; a full ring is a backpressure stall (the
    /// producer blocks while the consumer drains a batch).
    std::size_t queueCapacity = 256;
    /// Per-probe redelivery memory: sequence numbers further than this
    /// behind the newest seen are no longer tracked individually and are
    /// conservatively treated as redeliveries.
    std::uint64_t dedupeWindow = 512;
    /// Consumer checkpoint cadence, in accepted events.
    std::uint64_t checkpointEveryEvents = 64;

    /// Throws net::PreconditionError when the watermark is negative or
    /// non-finite, or any capacity/cadence is zero.
    void validate() const;
};

/// Fingerprint of everything the online detector's result depends on:
/// detection math, stream knobs and the series window. Event logs and
/// checkpoints both carry it, so resuming against a different
/// configuration is refused instead of silently diverging.
[[nodiscard]] std::uint64_t streamConfigDigest(
    const outage::RadarConfig& radar, const StreamConfig& stream,
    double windowDays);

/// What the pipeline lost or absorbed, per run: the honesty report the
/// tentpole requires. Within-watermark faults only ever move counters
/// here (duplicates, stalls, redeliveries) — final detections stay
/// byte-identical. Beyond-watermark losses show up as `lateDropped` /
/// `sealedGaps`, the signal that detections may now under-report.
struct DegradationReport {
    std::uint64_t eventsDelivered = 0;   ///< copies offered to the ingestor
    std::uint64_t eventsAccepted = 0;    ///< survived dedupe, hit the log
    std::uint64_t duplicatesDropped = 0; ///< redelivered (session,seq) pairs
    std::uint64_t staleSessions = 0;     ///< copies from pre-reconnect sessions
    std::uint64_t reconnects = 0;        ///< probe session changes observed
    std::uint64_t backpressureStalls = 0;///< capture-ring full events
    std::uint64_t duplicateSlots = 0;    ///< same (country,slot) seen twice
    std::uint64_t lateDropped = 0;       ///< events behind the watermark
    std::uint64_t sealedGaps = 0;        ///< slots sealed with no sample
    std::map<std::string, std::uint64_t> lateByCountry;

    /// Field-wise sum (ingestor counters + detector counters combine into
    /// one report).
    void merge(const DegradationReport& other);

    /// True when every final detection is trustworthy: nothing was lost
    /// beyond the watermark.
    [[nodiscard]] bool lossless() const {
        return lateDropped == 0 && sealedGaps == 0;
    }

    [[nodiscard]] bool operator==(const DegradationReport&) const = default;
};

void encodeDegradation(persist::ByteWriter& writer,
                       const DegradationReport& report);
[[nodiscard]] DegradationReport decodeDegradation(persist::ByteReader& reader);

} // namespace aio::stream
