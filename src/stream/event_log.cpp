#include "stream/event_log.hpp"

#include "netbase/error.hpp"

namespace aio::stream {

namespace {

constexpr std::uint8_t kHeaderRecord = 1;
constexpr std::uint8_t kEventRecord = 2;
constexpr std::uint32_t kFormatVersion = 1;

} // namespace

EventLogWriter::EventLogWriter(persist::ByteSink& sink,
                               const EventLogHeader& header,
                               obs::MetricsRegistry* metrics)
    : writer_(sink), sink_(&sink), metrics_(metrics) {
    AIO_EXPECTS(header.formatVersion == kFormatVersion,
                "unsupported event-log format version");
    AIO_EXPECTS(header.samplesPerDay > 0.0 && header.windowDays > 0.0,
                "event-log header needs a positive cadence and window");
    persist::ByteWriter payload;
    payload.u8(kHeaderRecord);
    payload.u32(header.formatVersion);
    payload.u64(header.configDigest);
    payload.f64(header.samplesPerDay);
    payload.f64(header.windowDays);
    appendRecord(payload.bytes());
}

void EventLogWriter::append(const MeasurementEvent& event) {
    persist::ByteWriter payload;
    payload.u8(kEventRecord);
    encodeEvent(payload, event);
    appendRecord(payload.bytes());
}

void EventLogWriter::appendRecord(std::span<const std::byte> payload) {
    obs::ScopedTimer timer{metrics_, "stream.log.append_seconds"};
    writer_.append(payload);
    // Same durability contract as CampaignJournal: the record is only
    // real once it survives a crash, so flush before returning.
    sink_->flush();
    if (metrics_ != nullptr) {
        metrics_->counter("stream.log.appends").add();
        metrics_->counter("stream.log.bytes_written")
            .add(payload.size() + 12); // framing: len + lenCrc + payloadCrc
    }
}

EventLogView readEventLog(std::span<const std::byte> bytes) {
    const persist::ScanResult scan = persist::scanRecords(bytes);
    EventLogView view;
    view.tornTail = scan.tail == persist::TailStatus::Torn;
    bool sawHeader = false;
    for (std::size_t i = 0; i < scan.payloads.size(); ++i) {
        persist::ByteReader reader{scan.payloads[i]};
        const std::uint8_t type = reader.u8();
        if (type == kHeaderRecord) {
            if (sawHeader) {
                throw net::CorruptionError{
                    "event log holds a second header record"};
            }
            sawHeader = true;
            view.header.formatVersion = reader.u32();
            if (view.header.formatVersion != kFormatVersion) {
                throw net::CorruptionError{
                    "event log written by format version " +
                    std::to_string(view.header.formatVersion) +
                    ", reader understands " +
                    std::to_string(kFormatVersion)};
            }
            view.header.configDigest = reader.u64();
            view.header.samplesPerDay = reader.f64();
            view.header.windowDays = reader.f64();
        } else if (type == kEventRecord) {
            if (!sawHeader) {
                throw net::CorruptionError{
                    "event log starts with an event record, not a header"};
            }
            view.events.push_back(decodeEvent(reader));
            view.boundaries.push_back(scan.boundaries[i]);
        } else {
            throw net::CorruptionError{"event log holds unknown record type " +
                                       std::to_string(type)};
        }
        if (!reader.atEnd()) {
            throw net::CorruptionError{
                "event-log record carries trailing bytes"};
        }
    }
    if (!sawHeader) {
        throw net::CorruptionError{
            "event log has no intact header record"};
    }
    return view;
}

} // namespace aio::stream
