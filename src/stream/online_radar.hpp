#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "exec/worker_pool.hpp"
#include "obs/metrics.hpp"
#include "outage/radar.hpp"
#include "stream/event.hpp"

namespace aio::stream {

/// A provisional, low-latency alarm: the online detector saw a run of
/// below-floor sealed samples reach the configured minimum and rang the
/// bell at `detectedAtDay` (the country's stream frontier at that
/// moment). Provisional because the floor it used was the running median
/// of the samples sealed *so far*; the authoritative list is
/// finalDetections(), which re-scans against the full-window floor.
struct OnlineAlert {
    std::string country;
    double startDay = 0.0;      ///< first slot of the below-floor run
    double detectedAtDay = 0.0; ///< frontier when the alarm fired

    [[nodiscard]] bool operator==(const OnlineAlert&) const = default;
};

/// Incremental, watermark-driven refactor of outage::RadarMonitor's
/// detection half: events arrive per (country, slot) in any order, each
/// country's watermark trails its own stream frontier by
/// StreamConfig::watermarkDays, and a slot "seals" once the frontier
/// moves past its watermark. Late events aimed at a sealed slot are
/// counted and dropped — never merged — which is the determinism
/// contract: any delivery schedule whose skew stays inside the watermark
/// produces byte-identical state, alerts and final detections.
///
/// Watermarks are per-country on purpose: lateness then depends only on
/// the order of one country's own events, so country-sharded parallel
/// ingestion (ingestSharded) is bit-equivalent to sequential ingestion at
/// any thread count.
///
/// Differential guarantee: after ingesting any complete event log (every
/// slot of every country, in any within-watermark order),
/// finalDetections() equals RadarMonitor::detect over the same series —
/// both paths call the shared outage::detectBelowFloor core.
class OnlineRadarDetector {
public:
    /// `metrics` (optional, not owned) receives stream.detector.*
    /// counters and the `stream.detector.lag_days` histogram.
    OnlineRadarDetector(outage::RadarConfig radar, StreamConfig stream,
                        double windowDays,
                        obs::MetricsRegistry* metrics = nullptr);

    /// Sequential ingestion of one event (the checkpointed consumer's
    /// path).
    void ingest(const MeasurementEvent& event);

    /// Sequential ingestion of a batch.
    void ingestAll(std::span<const MeasurementEvent> events);

    /// Country-sharded parallel ingestion: events are grouped by country
    /// (preserving per-country order) and each group runs on one pool
    /// lane. Bit-equivalent to ingestAll at any thread count — including
    /// the metrics, which are buffered per lane and published
    /// sequentially in stable order after the join. Not compatible with
    /// mid-stream checkpoints (state between events is unordered across
    /// countries); checkpointing consumers use ingest().
    void ingestSharded(std::span<const MeasurementEvent> events,
                       exec::WorkerPool& pool);

    /// Provisional alarms fired so far, grouped by country in
    /// country-table order, chronological within a country.
    [[nodiscard]] std::vector<OnlineAlert> alerts() const;

    /// Authoritative detections over everything ingested: the shared
    /// batch core (outage::detectBelowFloor) run per country with the
    /// full-window floor and the slot-presence mask. On a complete log
    /// this equals the batch RadarMonitor byte for byte.
    [[nodiscard]] std::vector<outage::RadarDetection> finalDetections() const;

    /// Detector-side degradation counters (late drops, duplicate slots,
    /// sealed gaps) accumulated so far.
    [[nodiscard]] DegradationReport degradation() const;

    [[nodiscard]] std::uint64_t eventsIngested() const;
    [[nodiscard]] std::uint64_t configDigest() const { return digest_; }
    [[nodiscard]] const outage::RadarConfig& radarConfig() const {
        return radar_;
    }
    [[nodiscard]] const StreamConfig& streamConfig() const {
        return stream_;
    }

    /// Serialized detector state for a consumer checkpoint: config
    /// digest, every lane's slots/frontier/run state, alerts and
    /// counters. Restoring the bytes into a fresh detector reproduces
    /// this one exactly (operator==-equal state, identical subsequent
    /// behavior).
    [[nodiscard]] std::vector<std::byte> encodeState() const;

    /// Replaces this detector's state with a previously encoded one.
    /// Throws net::PreconditionError when the checkpoint's config digest
    /// differs (resuming under a different config would silently
    /// diverge); net::CorruptionError when the bytes don't decode.
    void restoreState(std::span<const std::byte> bytes);

private:
    struct Lane {
        std::string country;
        std::vector<double> values;        ///< slotCount_ entries
        std::vector<std::uint8_t> present; ///< slotCount_ entries
        std::uint32_t maxSlot = 0;
        bool any = false;
        std::size_t sealedThrough = 0; ///< slots [0, here) are sealed
        std::vector<double> sortedSealed; ///< present sealed values, sorted
        std::size_t runStart = 0;
        int runLen = 0;
        bool alertOpen = false;
        std::uint64_t events = 0;
        std::uint64_t duplicateSlots = 0;
        std::uint64_t lateDropped = 0;
        std::uint64_t sealedGaps = 0;
        std::vector<OnlineAlert> alerts;
        std::vector<double> pendingLags; ///< unpublished lag samples
    };

    [[nodiscard]] Lane& laneFor(const std::string& country);
    void laneIngest(Lane& lane, const MeasurementEvent& event);
    void sealLane(Lane& lane);
    /// Flushes buffered lag samples and counter deltas to the registry.
    /// Sequential contexts only.
    void publishPending();
    /// Lanes in readout order: country-table order first, then any
    /// non-African stragglers in name order.
    [[nodiscard]] std::vector<const Lane*> orderedLanes() const;

    outage::RadarConfig radar_;
    StreamConfig stream_;
    double windowDays_;
    std::size_t slotCount_;
    double watermarkSlots_;
    std::uint64_t digest_;
    obs::MetricsRegistry* metrics_;
    std::map<std::string, Lane, std::less<>> lanes_;
    DegradationReport published_; ///< counter totals already in metrics
};

} // namespace aio::stream
