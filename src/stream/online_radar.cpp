#include "stream/online_radar.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "netbase/error.hpp"
#include "netbase/region.hpp"

namespace aio::stream {

namespace {

constexpr std::uint32_t kStateVersion = 1;

/// Lag buckets in days: fractions of the watermark up to "hopeless".
constexpr std::array<double, 6> kLagBoundsDays{0.25, 0.5, 1.0,
                                               2.0,  4.0, 8.0};

/// Median of an already-sorted sample; matches net::median's
/// rank-interpolation for the 50th percentile.
double sortedMedian(const std::vector<double>& sorted) {
    const std::size_t n = sorted.size();
    if (n % 2 == 1) {
        return sorted[n / 2];
    }
    return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

} // namespace

OnlineRadarDetector::OnlineRadarDetector(outage::RadarConfig radar,
                                         StreamConfig stream,
                                         double windowDays,
                                         obs::MetricsRegistry* metrics)
    : radar_(radar), stream_(stream), windowDays_(windowDays),
      slotCount_(static_cast<std::size_t>(windowDays *
                                          radar.samplesPerDay)),
      watermarkSlots_(stream.watermarkDays * radar.samplesPerDay),
      digest_(streamConfigDigest(radar, stream, windowDays)),
      metrics_(metrics) {
    AIO_EXPECTS(std::isfinite(windowDays) && windowDays > 0.0,
                "windowDays must be positive and finite");
    AIO_EXPECTS(slotCount_ >= 1, "window shorter than one sample slot");
}

OnlineRadarDetector::Lane&
OnlineRadarDetector::laneFor(const std::string& country) {
    const auto it = lanes_.find(country);
    if (it != lanes_.end()) {
        return it->second;
    }
    Lane& lane = lanes_[country];
    lane.country = country;
    lane.values.assign(slotCount_, 0.0);
    lane.present.assign(slotCount_, 0);
    return lane;
}

void OnlineRadarDetector::laneIngest(Lane& lane,
                                     const MeasurementEvent& event) {
    AIO_EXPECTS(event.slot < slotCount_,
                "event slot lies beyond the configured window");
    ++lane.events;
    // Lag relative to the country's own frontier, before this event
    // moves it: a pure function of per-country event order, so it is
    // identical under sequential and sharded ingestion.
    const double lagDays =
        lane.any && lane.maxSlot > event.slot
            ? static_cast<double>(lane.maxSlot - event.slot) /
                  radar_.samplesPerDay
            : 0.0;
    lane.pendingLags.push_back(lagDays);
    if (event.slot < lane.sealedThrough) {
        // Behind the watermark: the slot's fate is already decided.
        // Merging now would make results depend on delivery order, so
        // the event is counted and dropped — the honesty ledger.
        ++lane.lateDropped;
        return;
    }
    if (lane.present[event.slot] != 0) {
        ++lane.duplicateSlots;
        return;
    }
    lane.present[event.slot] = 1;
    lane.values[event.slot] = event.value;
    if (!lane.any || event.slot > lane.maxSlot) {
        lane.maxSlot = event.slot;
        lane.any = true;
        sealLane(lane);
    }
}

void OnlineRadarDetector::sealLane(Lane& lane) {
    // Slot s seals once the frontier passes its watermark:
    // s < maxSlot - watermarkSlots. The epsilon dodges float fuzz when
    // the watermark is a fractional number of slots.
    const double limit =
        static_cast<double>(lane.maxSlot) - watermarkSlots_;
    const auto sealCount = static_cast<std::size_t>(std::clamp(
        std::ceil(limit - 1e-9), 0.0, static_cast<double>(slotCount_)));
    while (lane.sealedThrough < sealCount) {
        const std::size_t slot = lane.sealedThrough;
        if (lane.present[slot] == 0) {
            // Sealed with no sample: a permanent hole in the series.
            ++lane.sealedGaps;
            lane.runLen = 0;
            lane.alertOpen = false;
        } else {
            const double value = lane.values[slot];
            lane.sortedSealed.insert(
                std::ranges::lower_bound(lane.sortedSealed, value), value);
            // Provisional floor: running median over what has sealed so
            // far. Cheap, causal, and close to the final floor once a
            // few quiet days are in — but only finalDetections() is
            // authoritative.
            const double floor = sortedMedian(lane.sortedSealed) *
                                 (1.0 - radar_.dropThreshold);
            if (value < floor) {
                if (lane.runLen == 0) {
                    lane.runStart = slot;
                }
                ++lane.runLen;
                if (lane.runLen >= radar_.minConsecutiveSamples &&
                    !lane.alertOpen) {
                    OnlineAlert alert;
                    alert.country = lane.country;
                    alert.startDay = static_cast<double>(lane.runStart) /
                                     radar_.samplesPerDay;
                    alert.detectedAtDay =
                        static_cast<double>(lane.maxSlot) /
                        radar_.samplesPerDay;
                    lane.alerts.push_back(std::move(alert));
                    lane.alertOpen = true;
                }
            } else {
                lane.runLen = 0;
                lane.alertOpen = false;
            }
        }
        ++lane.sealedThrough;
    }
}

void OnlineRadarDetector::publishPending() {
    if (metrics_ == nullptr) {
        for (auto& [country, lane] : lanes_) {
            lane.pendingLags.clear();
        }
        return;
    }
    obs::Histogram& lag =
        metrics_->histogram("stream.detector.lag_days", kLagBoundsDays);
    for (auto& [country, lane] : lanes_) {
        for (const double sample : lane.pendingLags) {
            lag.record(sample);
        }
        lane.pendingLags.clear();
    }
    const DegradationReport now = degradation();
    metrics_->counter("stream.detector.events")
        .add(eventsIngested() - published_.eventsDelivered);
    metrics_->counter("stream.detector.late_dropped")
        .add(now.lateDropped - published_.lateDropped);
    metrics_->counter("stream.detector.duplicate_slots")
        .add(now.duplicateSlots - published_.duplicateSlots);
    metrics_->counter("stream.detector.sealed_gaps")
        .add(now.sealedGaps - published_.sealedGaps);
    published_ = now;
    published_.eventsDelivered = eventsIngested();
}

void OnlineRadarDetector::ingest(const MeasurementEvent& event) {
    laneIngest(laneFor(event.country), event);
    publishPending();
}

void OnlineRadarDetector::ingestAll(
    std::span<const MeasurementEvent> events) {
    for (const MeasurementEvent& event : events) {
        laneIngest(laneFor(event.country), event);
    }
    publishPending();
}

void OnlineRadarDetector::ingestSharded(
    std::span<const MeasurementEvent> events, exec::WorkerPool& pool) {
    // Group by country, preserving each country's internal order. Lanes
    // are created here, sequentially — the parallel phase only ever
    // touches pre-existing, disjoint lanes.
    std::vector<std::pair<Lane*, std::vector<const MeasurementEvent*>>>
        groups;
    std::map<std::string_view, std::size_t> groupOf;
    for (const MeasurementEvent& event : events) {
        const auto it = groupOf.find(event.country);
        std::size_t index;
        if (it == groupOf.end()) {
            index = groups.size();
            groups.emplace_back(&laneFor(event.country),
                                std::vector<const MeasurementEvent*>{});
            groupOf.emplace(groups[index].first->country, index);
        } else {
            index = it->second;
        }
        groups[index].second.push_back(&event);
    }
    pool.parallelFor(groups.size(),
                     [&](std::size_t index, std::size_t /*lane*/) {
                         auto& [lanePtr, group] = groups[index];
                         for (const MeasurementEvent* event : group) {
                             laneIngest(*lanePtr, *event);
                         }
                     });
    // Metrics were buffered per lane during the parallel phase; publish
    // them in stable map order so histogram contents are bit-identical
    // at any thread count.
    publishPending();
}

std::vector<const OnlineRadarDetector::Lane*>
OnlineRadarDetector::orderedLanes() const {
    std::vector<const Lane*> ordered;
    ordered.reserve(lanes_.size());
    std::vector<const Lane*> african;
    for (const auto* country : net::CountryTable::world().african()) {
        const auto it = lanes_.find(country->iso2);
        if (it != lanes_.end()) {
            ordered.push_back(&it->second);
        }
    }
    for (const auto& [name, lane] : lanes_) {
        if (std::ranges::find(ordered, &lane) == ordered.end()) {
            ordered.push_back(&lane);
        }
    }
    return ordered;
}

std::vector<OnlineAlert> OnlineRadarDetector::alerts() const {
    std::vector<OnlineAlert> out;
    for (const Lane* lane : orderedLanes()) {
        out.insert(out.end(), lane->alerts.begin(), lane->alerts.end());
    }
    return out;
}

std::vector<outage::RadarDetection>
OnlineRadarDetector::finalDetections() const {
    std::vector<outage::RadarDetection> out;
    for (const Lane* lane : orderedLanes()) {
        const double floor =
            outage::seriesFloor(lane->values, lane->present, radar_);
        auto detections = outage::detectBelowFloor(
            lane->country, lane->values, lane->present, floor,
            radar_.samplesPerDay, radar_);
        for (auto& detection : detections) {
            out.push_back(std::move(detection));
        }
    }
    return out;
}

DegradationReport OnlineRadarDetector::degradation() const {
    DegradationReport report;
    for (const auto& [country, lane] : lanes_) {
        report.duplicateSlots += lane.duplicateSlots;
        report.lateDropped += lane.lateDropped;
        report.sealedGaps += lane.sealedGaps;
        if (lane.lateDropped > 0) {
            report.lateByCountry[country] += lane.lateDropped;
        }
    }
    return report;
}

std::uint64_t OnlineRadarDetector::eventsIngested() const {
    std::uint64_t total = 0;
    for (const auto& [country, lane] : lanes_) {
        total += lane.events;
    }
    return total;
}

std::vector<std::byte> OnlineRadarDetector::encodeState() const {
    persist::ByteWriter writer;
    writer.u32(kStateVersion);
    writer.u64(digest_);
    writer.u64(slotCount_);
    writer.u32(static_cast<std::uint32_t>(lanes_.size()));
    for (const auto& [country, lane] : lanes_) {
        writer.str(country);
        writer.boolean(lane.any);
        writer.u32(lane.maxSlot);
        writer.u64(lane.sealedThrough);
        writer.u64(lane.runStart);
        writer.i32(lane.runLen);
        writer.boolean(lane.alertOpen);
        writer.u64(lane.events);
        writer.u64(lane.duplicateSlots);
        writer.u64(lane.lateDropped);
        writer.u64(lane.sealedGaps);
        for (std::size_t s = 0; s < slotCount_; ++s) {
            writer.u8(lane.present[s]);
        }
        for (std::size_t s = 0; s < slotCount_; ++s) {
            writer.f64(lane.values[s]);
        }
        writer.u32(static_cast<std::uint32_t>(lane.alerts.size()));
        for (const OnlineAlert& alert : lane.alerts) {
            writer.f64(alert.startDay);
            writer.f64(alert.detectedAtDay);
        }
    }
    const auto bytes = writer.bytes();
    return {bytes.begin(), bytes.end()};
}

void OnlineRadarDetector::restoreState(std::span<const std::byte> bytes) {
    persist::ByteReader reader{bytes};
    const std::uint32_t version = reader.u32();
    if (version != kStateVersion) {
        throw net::CorruptionError{
            "detector checkpoint has state version " +
            std::to_string(version) + ", reader understands " +
            std::to_string(kStateVersion)};
    }
    const std::uint64_t digest = reader.u64();
    AIO_EXPECTS(digest == digest_,
                "detector checkpoint was written under a different "
                "radar/stream configuration");
    const std::uint64_t slots = reader.u64();
    if (slots != slotCount_) {
        throw net::CorruptionError{
            "detector checkpoint disagrees about the slot count"};
    }
    std::map<std::string, Lane, std::less<>> lanes;
    const std::uint32_t laneCount = reader.u32();
    for (std::uint32_t i = 0; i < laneCount; ++i) {
        std::string country = reader.str();
        Lane lane;
        lane.country = country;
        lane.any = reader.boolean();
        lane.maxSlot = reader.u32();
        lane.sealedThrough = reader.u64();
        lane.runStart = reader.u64();
        lane.runLen = reader.i32();
        lane.alertOpen = reader.boolean();
        lane.events = reader.u64();
        lane.duplicateSlots = reader.u64();
        lane.lateDropped = reader.u64();
        lane.sealedGaps = reader.u64();
        lane.values.assign(slotCount_, 0.0);
        lane.present.assign(slotCount_, 0);
        for (std::size_t s = 0; s < slotCount_; ++s) {
            lane.present[s] = reader.u8();
        }
        for (std::size_t s = 0; s < slotCount_; ++s) {
            lane.values[s] = reader.f64();
        }
        if (lane.sealedThrough > slotCount_ ||
            (lane.any && lane.maxSlot >= slotCount_)) {
            throw net::CorruptionError{
                "detector checkpoint lane state is out of range"};
        }
        // The sorted sealed sample is derived state: rebuild instead of
        // trusting (or shipping) a second copy of the same numbers.
        for (std::size_t s = 0; s < lane.sealedThrough; ++s) {
            if (lane.present[s] != 0) {
                lane.sortedSealed.push_back(lane.values[s]);
            }
        }
        std::ranges::sort(lane.sortedSealed);
        const std::uint32_t alertCount = reader.u32();
        for (std::uint32_t a = 0; a < alertCount; ++a) {
            OnlineAlert alert;
            alert.country = country;
            alert.startDay = reader.f64();
            alert.detectedAtDay = reader.f64();
            lane.alerts.push_back(std::move(alert));
        }
        lanes.emplace(std::move(country), std::move(lane));
    }
    if (!reader.atEnd()) {
        throw net::CorruptionError{
            "detector checkpoint carries trailing bytes"};
    }
    lanes_ = std::move(lanes);
    // Metrics stay incremental from here: a resumed process reports the
    // work it does, not the work the crashed process already reported.
    published_ = degradation();
    published_.eventsDelivered = eventsIngested();
}

} // namespace aio::stream
