#pragma once

#include <array>
#include <cstdint>

#include "netbase/region.hpp"
#include "netbase/rng.hpp"
#include "topo/as_graph.hpp"

namespace aio::topo {

/// Per-African-region generation parameters. Defaults (see
/// GeneratorConfig::defaults()) are calibrated to the ecosystem the paper
/// describes: no African Tier-1, scarce Tier-2, mobile-dominated access,
/// IXP density and transit localization highest in Southern Africa and
/// lowest in Western/Central Africa.
struct RegionProfile {
    net::Region region = net::Region::WesternAfrica;

    /// AS density: ASes per million inhabitants (maturity proxy).
    double asPerMillionPeople = 0.5;
    /// Lower bound of ASes per country.
    int minAsesPerCountry = 2;
    /// Fraction of eyeball ASes that are mobile operators.
    double mobileShare = 0.6;
    /// Regional transit providers (the scarce African "Tier-2").
    int tier2Count = 1;
    /// IXPs in the region (2025). African totals sum to 77 (paper §7 fn.1).
    int ixpCount = 10;
    /// Probability an in-country AS joins a local IXP.
    double ixpJoinProb = 0.4;
    /// Probability a same-region, other-country AS remote-peers at an IXP.
    double ixpRemotePeerProb = 0.03;
    /// Probability two IXP members actually exchange routes (route-server
    /// multilateral peering density).
    double ixpMeshDensity = 0.7;
    /// Probability an access AS buys transit from an African Tier-2
    /// (otherwise it homes to Europe — the paper's detour mechanism).
    double localTransitProb = 0.3;
    /// Probability of a second (backup) transit provider.
    double secondTransitProb = 0.35;
    /// Probability two ASes in the same country peer privately.
    double domesticPeerProb = 0.12;
    /// Probability an IXP hosts an off-net content cache.
    double contentCacheProb = 0.3;
};

/// Generation parameters for the comparison regions (kept coarse; they
/// exist to provide transit, hosting and Figure-1 contrast).
struct OtherRegionProfile {
    int tier1Count = 0;
    int tier2Count = 4;
    int accessPerCountry = 3;
    int ixpCount = 2;
};

/// Full generator configuration. All knobs are plain data so experiments
/// (and what-if analyses) can copy + tweak a config.
struct GeneratorConfig {
    std::uint64_t seed = 20250704;

    std::array<RegionProfile, 5> africa; ///< order: africanRegions()

    OtherRegionProfile europe{.tier1Count = 5,
                              .tier2Count = 10,
                              .accessPerCountry = 4,
                              .ixpCount = 3};
    OtherRegionProfile northAmerica{.tier1Count = 3,
                                    .tier2Count = 5,
                                    .accessPerCountry = 5,
                                    .ixpCount = 2};
    OtherRegionProfile southAmerica{.tier1Count = 0,
                                    .tier2Count = 4,
                                    .accessPerCountry = 4,
                                    .ixpCount = 3};
    OtherRegionProfile asiaPacific{.tier1Count = 0,
                                   .tier2Count = 5,
                                   .accessPerCountry = 4,
                                   .ixpCount = 3};

    /// Number of pan-African carriers: single-ASN networks present at many
    /// IXPs continent-wide (the SEACOM/Liquid pattern). These drive the
    /// greedy set-cover result of §7 fn.1.
    int continentalCarriers = 6;
    /// Probability a continental carrier is a member of any given African
    /// IXP.
    double carrierIxpJoinProb = 0.06;
    /// Probability a regional Tier-2 joins each IXP of its home region.
    double tier2IxpJoinProb = 0.2;

    /// Content/cloud providers.
    int euContentProviders = 4;
    int euCloudProviders = 3;
    int usCloudProviders = 2;
    int zaCloudProviders = 1; ///< "few large public clouds ... centralized
                              ///< in South Africa" (§5.2)

    /// Fraction of African networks whose EU upstream is a Tier-1 (the
    /// rest buy from EU Tier-2s — §4.1: only ~40% of detours attributable
    /// to EU Tier-1/IXP; the majority ride EU Tier-2 transit).
    double euTier1UpstreamShare = 0.25;
    /// Probability two EU Tier-2s interconnect (the dense European
    /// peering fabric that keeps most EU-transit paths off the Tier-1s).
    double euTier2PeerProb = 0.9;

    // ---- continent-scale knobs ----
    // All default to 0 = "legacy behavior": the generator draws the
    // exact same rng sequence as before these knobs existed, so seeded
    // topologies stay byte-identical. Non-zero values trade the O(n²)
    // pair scans for bounded-fanout sampling so 50–100k-AS continents
    // generate in seconds with linear edge counts.

    /// Cap on eyeball ASes per African country (0 = legacy cap of 35).
    int maxAsesPerCountry = 0;
    /// When > 0, each new domestic AS samples at most this many peering
    /// candidates instead of scanning every earlier in-country AS.
    int domesticPeerFanout = 0;
    /// When > 0, IXP route-server meshes sample this many candidate
    /// sessions per member instead of the full member × member scan
    /// (only at exchanges with more members than the fanout).
    int ixpMeshFanout = 0;
    /// Added to African eyeball prefix lengths (clamped to /24) so a
    /// 50k-AS continent fits AfriNIC's ~84M-address pool.
    int prefixLengthAdjust = 0;

    /// Calibrated defaults reproducing the paper's qualitative structure.
    static GeneratorConfig defaults();

    /// A continent-scale config: the calibrated default structure with
    /// per-region AS densities rescaled so the African eyeball layer
    /// alone is ~targetAses networks, bounded-fanout peering/mesh knobs
    /// engaged (4 domestic / 8 IXP), and /24 eyeball prefixes. Same
    /// seed + target => byte-identical topology (digest-stable).
    static GeneratorConfig continental(int targetAses,
                                       std::uint64_t seed = 20250704);
};

/// Generates a Topology from a GeneratorConfig. Deterministic for a given
/// config (including seed).
class TopologyGenerator {
public:
    explicit TopologyGenerator(GeneratorConfig config);

    [[nodiscard]] Topology generate() const;

    [[nodiscard]] const GeneratorConfig& config() const { return config_; }

    /// ASN reserved for the paper's Kigali vantage point (§7.3).
    static constexpr Asn kKigaliProbeAsn = 36924;

private:
    GeneratorConfig config_;
};

} // namespace aio::topo
