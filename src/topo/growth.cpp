#include "topo/growth.hpp"

#include <cmath>

#include "netbase/error.hpp"

namespace aio::topo {

std::string_view infraMetricName(InfraMetric metric) {
    switch (metric) {
    case InfraMetric::SubseaCables: return "Subsea cables";
    case InfraMetric::Ixps: return "IXPs";
    case InfraMetric::Asns: return "ASNs";
    }
    return "?";
}

namespace {
std::size_t macroIdx(net::MacroRegion macro) {
    return static_cast<std::size_t>(macro);
}
std::size_t metricIdx(InfraMetric metric) {
    return static_cast<std::size_t>(metric);
}

/// Approximate macro-region populations (millions, 2024) for per-capita
/// maturity normalization.
double populationMillions(net::MacroRegion macro) {
    switch (macro) {
    case net::MacroRegion::Africa: return 1450.0;
    case net::MacroRegion::Europe: return 745.0;
    case net::MacroRegion::NorthAmerica: return 610.0;
    case net::MacroRegion::SouthAmerica: return 440.0;
    case net::MacroRegion::AsiaPacific: return 4300.0;
    }
    return 1.0;
}
} // namespace

GrowthTimeline::GrowthTimeline(int firstYear, int lastYear)
    : firstYear_(firstYear), lastYear_(lastYear) {
    AIO_EXPECTS(firstYear < lastYear, "growth window must be non-empty");
    using M = net::MacroRegion;
    using I = InfraMetric;
    const auto set = [this](M m, I i, double start, double end) {
        anchors_[macroIdx(m)][metricIdx(i)] = Anchor{start, end};
    };
    // Census-inspired anchors (2015 -> 2025). Africa's deltas are the
    // paper's: cables +45%, IXPs +600% (11 -> 77), ASNs roughly x2.4.
    set(M::Africa, I::SubseaCables, 16, 23.2);
    set(M::Africa, I::Ixps, 11, 77);
    set(M::Africa, I::Asns, 700, 1700);

    set(M::Europe, I::SubseaCables, 50, 60);
    set(M::Europe, I::Ixps, 200, 250);
    set(M::Europe, I::Asns, 20000, 27000);

    set(M::NorthAmerica, I::SubseaCables, 40, 48);
    set(M::NorthAmerica, I::Ixps, 90, 130);
    set(M::NorthAmerica, I::Asns, 17000, 21000);

    set(M::SouthAmerica, I::SubseaCables, 12, 21);
    set(M::SouthAmerica, I::Ixps, 40, 170);
    set(M::SouthAmerica, I::Asns, 3500, 10500);

    set(M::AsiaPacific, I::SubseaCables, 90, 150);
    set(M::AsiaPacific, I::Ixps, 110, 330);
    set(M::AsiaPacific, I::Asns, 9000, 26000);
}

const GrowthTimeline::Anchor&
GrowthTimeline::anchor(net::MacroRegion region, InfraMetric metric) const {
    return anchors_[macroIdx(region)][metricIdx(metric)];
}

double GrowthTimeline::count(net::MacroRegion region, InfraMetric metric,
                             int year) const {
    AIO_EXPECTS(year >= firstYear_ && year <= lastYear_,
                "year outside growth window");
    const Anchor& a = anchor(region, metric);
    const double t = static_cast<double>(year - firstYear_) /
                     static_cast<double>(lastYear_ - firstYear_);
    // Geometric interpolation: infrastructure counts compound.
    return a.start * std::pow(a.end / a.start, t);
}

GrowthSeries GrowthTimeline::series(net::MacroRegion region,
                                    InfraMetric metric) const {
    GrowthSeries out;
    out.region = region;
    out.metric = metric;
    for (int year = firstYear_; year <= lastYear_; ++year) {
        out.points.emplace_back(year, count(region, metric, year));
    }
    return out;
}

double GrowthTimeline::relativeGrowth(net::MacroRegion region,
                                      InfraMetric metric) const {
    const Anchor& a = anchor(region, metric);
    return a.end / a.start - 1.0;
}

double GrowthTimeline::perCapitaMaturity(net::MacroRegion region,
                                         InfraMetric metric) const {
    return anchor(region, metric).end / populationMillions(region) * 100.0;
}

} // namespace aio::topo
