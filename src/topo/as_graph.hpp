#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/geo.hpp"
#include "netbase/ip.hpp"
#include "netbase/prefix_trie.hpp"
#include "netbase/region.hpp"

namespace aio::topo {

/// Autonomous system number.
using Asn = std::uint32_t;

/// Index of an AS inside a Topology (dense, 0-based).
using AsIndex = std::size_t;

/// Index of an IXP inside a Topology (dense, 0-based).
using IxpIndex = std::size_t;

/// Business role of an AS. The paper's core structural observation is the
/// *absence* of Tier1 (and scarcity of Tier2) inside Africa, so the role is
/// a first-class attribute rather than something derived.
enum class AsType {
    Tier1,           ///< settlement-free global transit (none in Africa)
    Tier2,           ///< regional transit provider
    AccessIsp,       ///< fixed-line eyeball network
    MobileOperator,  ///< cellular eyeball network (dominant in Africa)
    ContentProvider, ///< CDN / content network
    CloudProvider,   ///< public cloud (EU/US mostly; ZA in Africa)
    Enterprise,      ///< business / government network
    Education,       ///< NREN / campus network
};

[[nodiscard]] std::string_view asTypeName(AsType type);

/// Static description of one AS.
struct AsInfo {
    Asn asn = 0;
    AsType type = AsType::AccessIsp;
    std::string countryCode;            ///< ISO alpha-2
    net::Region region = net::Region::WesternAfrica;
    net::GeoPoint location;             ///< main PoP location
    bool mobileDominant = false;        ///< >=65% mobile traffic (paper's
                                        ///< Cloudflare-Radar classification)
    std::vector<net::Prefix> prefixes;  ///< announced address space
    double trafficWeight = 1.0;         ///< relative eyeball traffic share
    bool hostsOffnetCache = false;      ///< serves CDN content locally
};

/// Policy class of an inter-AS adjacency.
enum class LinkKind {
    CustomerToProvider, ///< a = customer, b = provider
    PeerToPeer,         ///< settlement-free bilateral peering
};

/// One adjacency. `ixp` is set when the peering is established across an
/// IXP fabric (public peering); traceroutes then show the IXP LAN hop.
struct AsLink {
    AsIndex a = 0;
    AsIndex b = 0;
    LinkKind kind = LinkKind::PeerToPeer;
    std::optional<IxpIndex> ixp;
};

/// An Internet exchange point: a LAN prefix plus a member list.
struct Ixp {
    std::string name;
    std::string countryCode;
    net::Region region = net::Region::WesternAfrica;
    net::GeoPoint location;
    net::Prefix lanPrefix;
    std::vector<AsIndex> members;
    /// Most IXP LAN prefixes are not advertised in the global BGP table
    /// (RFC 7454 guidance) — the root cause of Table 1's poor IXP coverage.
    bool lanInGlobalTable = false;
    int yearEstablished = 2015;
    /// True when a content provider operates an off-net cache at this IXP
    /// (serves popular content locally, §2).
    bool hasContentCache = false;
};

/// The AS-level Internet: ASes, IXPs and policy-annotated adjacencies,
/// plus the lookup structures measurement code needs (prefix -> origin AS,
/// IXP LAN membership, per-country indices).
///
/// Build with addAs/addIxp/addLink, then call finalize() exactly once;
/// queries before finalize() throw PreconditionError.
class Topology {
public:
    Topology() = default;

    // ---- construction ----
    AsIndex addAs(AsInfo info);
    IxpIndex addIxp(Ixp ixp);

    /// Adds an adjacency. For CustomerToProvider `a` is the customer.
    /// Duplicate (a,b) adjacencies are rejected.
    void addLink(AsIndex a, AsIndex b, LinkKind kind,
                 std::optional<IxpIndex> ixp = std::nullopt);

    /// Registers `member` at `ixp` (idempotent) without creating peer
    /// links; the generator wires the actual peering mesh.
    void addIxpMember(IxpIndex ixp, AsIndex member);

    /// Freezes the topology and builds lookup indices.
    void finalize();
    [[nodiscard]] bool finalized() const { return finalized_; }

    // ---- AS queries ----
    [[nodiscard]] std::size_t asCount() const { return ases_.size(); }
    [[nodiscard]] const AsInfo& as(AsIndex index) const;
    [[nodiscard]] std::optional<AsIndex> indexOfAsn(Asn asn) const;
    [[nodiscard]] const std::vector<AsIndex>& providersOf(AsIndex idx) const;
    [[nodiscard]] const std::vector<AsIndex>& customersOf(AsIndex idx) const;
    [[nodiscard]] const std::vector<AsIndex>& peersOf(AsIndex idx) const;
    /// IXPs where this AS is a member.
    [[nodiscard]] const std::vector<IxpIndex>& ixpsOf(AsIndex idx) const;

    [[nodiscard]] std::vector<AsIndex>
    asesInCountry(std::string_view iso2) const;
    [[nodiscard]] std::vector<AsIndex> asesInRegion(net::Region region) const;
    [[nodiscard]] std::vector<AsIndex> africanAses() const;

    // ---- link queries ----
    [[nodiscard]] const std::vector<AsLink>& links() const { return links_; }
    /// True when an adjacency (either kind, either direction) exists.
    /// Usable during construction, before finalize().
    [[nodiscard]] bool hasLink(AsIndex a, AsIndex b) const {
        return linkKeys_.contains(linkKey(a, b));
    }
    /// The IXP used by the peering between a and b, if any.
    [[nodiscard]] std::optional<IxpIndex> ixpBetween(AsIndex a,
                                                     AsIndex b) const;

    // ---- IXP queries ----
    [[nodiscard]] std::size_t ixpCount() const { return ixps_.size(); }
    [[nodiscard]] const Ixp& ixp(IxpIndex index) const;
    [[nodiscard]] std::vector<IxpIndex> africanIxps() const;

    // ---- address queries ----
    /// Longest-prefix-match origin AS of an address.
    [[nodiscard]] std::optional<AsIndex>
    originOf(net::Ipv4Address address) const;
    /// IXP whose LAN contains the address, if any.
    [[nodiscard]] std::optional<IxpIndex>
    ixpOfLanAddress(net::Ipv4Address address) const;
    /// Deterministic border-router address of an AS, varied by `salt` so
    /// different adjacencies show different interface IPs in traceroutes.
    [[nodiscard]] net::Ipv4Address routerAddress(AsIndex idx,
                                                 std::uint64_t salt) const;

private:
    void requireFinalized() const;
    void requireNotFinalized() const;

    /// Unordered pair key for adjacency lookups.
    static std::uint64_t linkKey(AsIndex a, AsIndex b) {
        const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
        const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
        return (hi << 32) | lo;
    }

    std::vector<AsInfo> ases_;
    std::vector<Ixp> ixps_;
    std::vector<AsLink> links_;
    bool finalized_ = false;

    // adjacency, filled by finalize()
    std::vector<std::vector<AsIndex>> providers_;
    std::vector<std::vector<AsIndex>> customers_;
    std::vector<std::vector<AsIndex>> peers_;
    std::vector<std::vector<IxpIndex>> memberIxps_;
    net::PrefixTrie<AsIndex> originTrie_;
    net::PrefixTrie<IxpIndex> ixpLanTrie_;
    std::vector<std::pair<Asn, AsIndex>> asnIndex_; // sorted for lookup
    std::unordered_set<std::uint64_t> linkKeys_;
    std::unordered_map<std::uint64_t, IxpIndex> linkIxp_;
};

} // namespace aio::topo
