#include "topo/generator.hpp"

#include <algorithm>
#include <string>

#include "netbase/error.hpp"
#include "topo/prefix_alloc.hpp"

namespace aio::topo {

GeneratorConfig GeneratorConfig::defaults() {
    GeneratorConfig cfg;
    using R = net::Region;
    // IXP counts sum to 77 — the paper's African IXP census (§7 fn.1).
    cfg.africa[0] = RegionProfile{.region = R::NorthernAfrica,
                                  .asPerMillionPeople = 0.5,
                                  .minAsesPerCountry = 3,
                                  .mobileShare = 0.55,
                                  .tier2Count = 1,
                                  .ixpCount = 6,
                                  .ixpJoinProb = 0.12,
                                  .ixpRemotePeerProb = 0.005,
                                  .ixpMeshDensity = 0.6,
                                  .localTransitProb = 0.25,
                                  .secondTransitProb = 0.3,
                                  .domesticPeerProb = 0.10,
                                  .contentCacheProb = 0.15};
    cfg.africa[1] = RegionProfile{.region = R::WesternAfrica,
                                  .asPerMillionPeople = 0.55,
                                  .minAsesPerCountry = 2,
                                  .mobileShare = 0.65,
                                  .tier2Count = 1,
                                  .ixpCount = 22,
                                  .ixpJoinProb = 0.25,
                                  .ixpRemotePeerProb = 0.01,
                                  .ixpMeshDensity = 0.65,
                                  .localTransitProb = 0.18,
                                  .secondTransitProb = 0.3,
                                  .domesticPeerProb = 0.08,
                                  .contentCacheProb = 0.25};
    cfg.africa[2] = RegionProfile{.region = R::EasternAfrica,
                                  .asPerMillionPeople = 0.65,
                                  .minAsesPerCountry = 2,
                                  .mobileShare = 0.60,
                                  .tier2Count = 2,
                                  .ixpCount = 24,
                                  .ixpJoinProb = 0.35,
                                  .ixpRemotePeerProb = 0.02,
                                  .ixpMeshDensity = 0.7,
                                  .localTransitProb = 0.35,
                                  .secondTransitProb = 0.35,
                                  .domesticPeerProb = 0.12,
                                  .contentCacheProb = 0.35};
    cfg.africa[3] = RegionProfile{.region = R::CentralAfrica,
                                  .asPerMillionPeople = 0.45,
                                  .minAsesPerCountry = 2,
                                  .mobileShare = 0.70,
                                  .tier2Count = 1,
                                  .ixpCount = 8,
                                  .ixpJoinProb = 0.9,
                                  .ixpRemotePeerProb = 0.12,
                                  .ixpMeshDensity = 0.9,
                                  .localTransitProb = 0.30,
                                  .secondTransitProb = 0.25,
                                  .domesticPeerProb = 0.05,
                                  .contentCacheProb = 0.2};
    cfg.africa[4] = RegionProfile{.region = R::SouthernAfrica,
                                  .asPerMillionPeople = 2.2,
                                  .minAsesPerCountry = 2,
                                  .mobileShare = 0.50,
                                  .tier2Count = 3,
                                  .ixpCount = 17,
                                  .ixpJoinProb = 0.45,
                                  .ixpRemotePeerProb = 0.025,
                                  .ixpMeshDensity = 0.75,
                                  .localTransitProb = 0.55,
                                  .secondTransitProb = 0.45,
                                  .domesticPeerProb = 0.6,
                                  .contentCacheProb = 0.5};
    return cfg;
}

GeneratorConfig GeneratorConfig::continental(int targetAses,
                                             std::uint64_t seed) {
    AIO_EXPECTS(targetAses >= 1, "continental target must be >= 1");
    GeneratorConfig cfg = defaults();
    cfg.seed = seed;
    // Predict the eyeball count the default densities would produce
    // (min-clamped, uncapped) and rescale every region's density so the
    // African eyeball layer alone lands near the target.
    double predicted = 0.0;
    for (const auto* c : net::CountryTable::world().african()) {
        for (const RegionProfile& prof : cfg.africa) {
            if (prof.region == c->region) {
                predicted += std::max(
                    static_cast<double>(prof.minAsesPerCountry),
                    c->populationMillions * prof.asPerMillionPeople);
                break;
            }
        }
    }
    const double scale = static_cast<double>(targetAses) / predicted;
    for (RegionProfile& prof : cfg.africa) {
        prof.asPerMillionPeople *= scale;
    }
    cfg.maxAsesPerCountry = targetAses; // effectively uncapped
    cfg.domesticPeerFanout = 4;
    cfg.ixpMeshFanout = 8;
    cfg.prefixLengthAdjust = 6; // eyeball prefixes clamp to /24
    return cfg;
}

namespace {

constexpr int kMaxAsesPerCountry = 35;

/// Anchor countries where regional Tier-2s headquarter (the paper's
/// observation that infrastructure anchors in South Africa and Kenya).
std::string_view tier2Anchor(net::Region region) {
    switch (region) {
    case net::Region::NorthernAfrica: return "EG";
    case net::Region::WesternAfrica: return "NG";
    case net::Region::EasternAfrica: return "KE";
    case net::Region::CentralAfrica: return "CM";
    case net::Region::SouthernAfrica: return "ZA";
    default: return "ZA";
    }
}

class Builder {
public:
    explicit Builder(const GeneratorConfig& cfg)
        : cfg_(cfg), rng_(cfg.seed) {}

    Topology build() {
        createGlobalTier1s();
        createOtherRegions();
        createContentAndCloud();
        createAfricanTier2sAndCarriers();
        createAfricanEyeballs();
        createAfricanIxps();
        createEuropeanIxps();
        topo_.finalize();
        return std::move(topo_);
    }

private:
    // ---------- helpers ----------

    net::GeoPoint jittered(const net::Country& country) {
        return net::GeoPoint{
            country.centroid.latitude + rng_.gaussian(0.0, 1.0),
            country.centroid.longitude + rng_.gaussian(0.0, 1.0)};
    }

    AsIndex makeAs(AsType type, const net::Country& country, Asn asn,
                   bool mobileDominant, int prefixCount, int prefixLength,
                   double trafficWeight) {
        AsInfo info;
        info.asn = asn;
        info.type = type;
        info.countryCode = std::string{country.iso2};
        info.region = country.region;
        info.location = jittered(country);
        info.mobileDominant = mobileDominant;
        info.trafficWeight = trafficWeight;
        const auto macro = net::macroOf(country.region);
        for (int i = 0; i < prefixCount; ++i) {
            info.prefixes.push_back(alloc_.allocate(macro, prefixLength));
        }
        return topo_.addAs(std::move(info));
    }

    void linkTransit(AsIndex customer, AsIndex provider) {
        if (customer != provider && !topo_.hasLink(customer, provider)) {
            topo_.addLink(customer, provider, LinkKind::CustomerToProvider);
        }
    }

    void linkPeer(AsIndex a, AsIndex b,
                  std::optional<IxpIndex> ixp = std::nullopt) {
        if (a != b && !topo_.hasLink(a, b)) {
            topo_.addLink(a, b, LinkKind::PeerToPeer, ixp);
        }
    }

    const net::Country& country(std::string_view iso2) const {
        return net::CountryTable::world().byCode(iso2);
    }

    /// Picks an EU upstream: Tier-1 with cfg.euTier1UpstreamShare
    /// probability, EU Tier-2 otherwise.
    AsIndex pickEuUpstream() {
        if (!euTier2s_.empty() &&
            !rng_.bernoulli(cfg_.euTier1UpstreamShare)) {
            return rng_.pick(euTier2s_);
        }
        return rng_.pick(euTier1s_);
    }

    // ---------- stages ----------

    void createGlobalTier1s() {
        const char* euCodes[] = {"DE", "GB", "FR", "NL", "IT", "ES", "PT"};
        Asn asn = 1200;
        for (int i = 0; i < cfg_.europe.tier1Count; ++i) {
            const AsIndex idx =
                makeAs(AsType::Tier1, country(euCodes[i % 7]), asn++, false,
                       3, 16, 4.0);
            euTier1s_.push_back(idx);
            tier1s_.push_back(idx);
        }
        const char* naCodes[] = {"US", "US", "CA"};
        for (int i = 0; i < cfg_.northAmerica.tier1Count; ++i) {
            const AsIndex idx = makeAs(AsType::Tier1, country(naCodes[i % 3]),
                                       asn++, false, 3, 16, 4.0);
            tier1s_.push_back(idx);
        }
        // Tier-1 clique: settlement-free full mesh.
        for (std::size_t i = 0; i < tier1s_.size(); ++i) {
            for (std::size_t j = i + 1; j < tier1s_.size(); ++j) {
                linkPeer(tier1s_[i], tier1s_[j]);
            }
        }
    }

    void buildRegion(net::MacroRegion macro, const OtherRegionProfile& prof,
                     Asn tier2Base, std::vector<AsIndex>* tier2Sink) {
        const auto countries =
            net::CountryTable::world().inMacroRegion(macro);
        std::vector<AsIndex> tier2s;
        Asn asn = tier2Base;
        for (int i = 0; i < prof.tier2Count; ++i) {
            const net::Country& c =
                *countries[static_cast<std::size_t>(i) % countries.size()];
            const AsIndex idx =
                makeAs(AsType::Tier2, c, asn++, false, 2, 18, 2.0);
            // Two Tier-1 upstreams.
            linkTransit(idx, rng_.pick(tier1s_));
            linkTransit(idx, rng_.pick(tier1s_));
            const double peerProb = macro == net::MacroRegion::Europe
                                        ? cfg_.euTier2PeerProb
                                        : 0.5;
            for (const AsIndex other : tier2s) {
                if (rng_.bernoulli(peerProb)) {
                    linkPeer(idx, other);
                }
            }
            tier2s.push_back(idx);
        }
        for (const auto* c : countries) {
            for (int i = 0; i < prof.accessPerCountry; ++i) {
                const bool mobile = rng_.bernoulli(0.35);
                const AsIndex idx = makeAs(
                    mobile ? AsType::MobileOperator : AsType::AccessIsp, *c,
                    asn++, mobile, 2, 19,
                    rng_.pareto(1.2, 1.0) * (c->populationMillions / 50.0));
                if (!tier2s.empty() && rng_.bernoulli(0.8)) {
                    linkTransit(idx, rng_.pick(tier2s));
                } else {
                    linkTransit(idx, rng_.pick(tier1s_));
                }
                if (rng_.bernoulli(0.4)) {
                    linkTransit(idx, !tier2s.empty() ? rng_.pick(tier2s)
                                                     : rng_.pick(tier1s_));
                }
                regionEyeballs_[macro].push_back(idx);
            }
        }
        if (tier2Sink != nullptr) {
            *tier2Sink = tier2s;
        }
        // Regional IXPs for the comparison regions.
        for (int i = 0; i < prof.ixpCount; ++i) {
            const net::Country& c =
                *countries[static_cast<std::size_t>(i) % countries.size()];
            Ixp ixp;
            ixp.name = std::string{macroRegionName(macro)} + "-IX-" +
                       std::to_string(i + 1);
            ixp.countryCode = std::string{c.iso2};
            ixp.region = c.region;
            ixp.location = c.centroid;
            ixp.lanPrefix = alloc_.allocateIxpLan();
            ixp.lanInGlobalTable = rng_.bernoulli(0.1);
            ixp.yearEstablished = static_cast<int>(rng_.uniformRange(
                2000, 2015));
            const IxpIndex ixpIdx = topo_.addIxp(std::move(ixp));
            for (const AsIndex member : regionEyeballs_[macro]) {
                if (rng_.bernoulli(0.4)) {
                    topo_.addIxpMember(ixpIdx, member);
                }
            }
            for (const AsIndex member : tier2s) {
                topo_.addIxpMember(ixpIdx, member);
            }
            meshIxp(ixpIdx, 0.6);
        }
    }

    void createOtherRegions() {
        buildRegion(net::MacroRegion::Europe, cfg_.europe, 6800, &euTier2s_);
        buildRegion(net::MacroRegion::NorthAmerica, cfg_.northAmerica, 7000,
                    nullptr);
        buildRegion(net::MacroRegion::SouthAmerica, cfg_.southAmerica, 27700,
                    nullptr);
        buildRegion(net::MacroRegion::AsiaPacific, cfg_.asiaPacific, 4800,
                    nullptr);
    }

    void createContentAndCloud() {
        Asn asn = 15100;
        const char* euCodes[] = {"NL", "DE", "GB", "FR"};
        for (int i = 0; i < cfg_.euContentProviders; ++i) {
            const AsIndex idx = makeAs(AsType::ContentProvider,
                                       country(euCodes[i % 4]), asn++, false,
                                       3, 18, 3.0);
            linkTransit(idx, rng_.pick(euTier1s_));
            linkTransit(idx, rng_.pick(tier1s_));
            for (const AsIndex t2 : euTier2s_) {
                if (rng_.bernoulli(0.7)) {
                    linkPeer(idx, t2);
                }
            }
            contentProviders_.push_back(idx);
        }
        for (int i = 0; i < cfg_.euCloudProviders; ++i) {
            const AsIndex idx = makeAs(AsType::CloudProvider,
                                       country(euCodes[(i + 1) % 4]), asn++,
                                       false, 3, 17, 3.0);
            linkTransit(idx, rng_.pick(euTier1s_));
            linkTransit(idx, rng_.pick(tier1s_));
            euClouds_.push_back(idx);
        }
        for (int i = 0; i < cfg_.usCloudProviders; ++i) {
            const AsIndex idx = makeAs(AsType::CloudProvider, country("US"),
                                       asn++, false, 3, 17, 3.0);
            linkTransit(idx, rng_.pick(tier1s_));
            linkTransit(idx, rng_.pick(tier1s_));
            usClouds_.push_back(idx);
        }
        for (int i = 0; i < cfg_.zaCloudProviders; ++i) {
            // "Few large public clouds exist in Africa ... generally
            // centralized in South Africa" (§5.2).
            const AsIndex idx = makeAs(AsType::CloudProvider, country("ZA"),
                                       asn++, false, 2, 18, 2.0);
            linkTransit(idx, pickEuUpstream());
            zaClouds_.push_back(idx);
        }
    }

    void createAfricanTier2sAndCarriers() {
        Asn asn = 30800;
        for (const RegionProfile& prof : cfg_.africa) {
            auto& sink = africanTier2ByRegion_[prof.region];
            for (int i = 0; i < prof.tier2Count; ++i) {
                const AsIndex idx =
                    makeAs(AsType::Tier2, country(tier2Anchor(prof.region)),
                           asn++, false, 2, 18, 2.0);
                // African Tier-2s themselves depend on Europe for transit —
                // the structural root of the detour problem (§2, §4.1).
                linkTransit(idx, pickEuUpstream());
                if (rng_.bernoulli(0.5)) {
                    linkTransit(idx, pickEuUpstream());
                }
                sink.push_back(idx);
                africanTier2s_.push_back(idx);
            }
        }
        const char* carrierHomes[] = {"ZA", "KE", "NG", "EG", "MU", "DJ"};
        for (int i = 0; i < cfg_.continentalCarriers; ++i) {
            const AsIndex idx =
                makeAs(AsType::Tier2, country(carrierHomes[i % 6]), asn++,
                       false, 2, 18, 2.0);
            linkTransit(idx, pickEuUpstream());
            if (rng_.bernoulli(0.6)) {
                linkTransit(idx, pickEuUpstream());
            }
            carriers_.push_back(idx);
            africanTier2s_.push_back(idx);
            africanTier2ByRegion_[country(carrierHomes[i % 6]).region]
                .push_back(idx);
        }
        // Sparse peering among the African transit layer (often at EU
        // exchanges, which is why even "peered" paths hairpin in Europe).
        for (std::size_t i = 0; i < africanTier2s_.size(); ++i) {
            for (std::size_t j = i + 1; j < africanTier2s_.size(); ++j) {
                if (rng_.bernoulli(0.4)) {
                    linkPeer(africanTier2s_[i], africanTier2s_[j]);
                }
            }
        }
    }

    const RegionProfile& profileOf(net::Region region) const {
        for (const RegionProfile& prof : cfg_.africa) {
            if (prof.region == region) {
                return prof;
            }
        }
        throw net::PreconditionError{"no profile for region"};
    }

    void createAfricanEyeballs() {
        Asn asn = 37001;
        const int perCountryCap = cfg_.maxAsesPerCountry > 0
                                      ? cfg_.maxAsesPerCountry
                                      : kMaxAsesPerCountry;
        for (const auto* c : net::CountryTable::world().african()) {
            const RegionProfile& prof = profileOf(c->region);
            const int count = std::clamp(
                static_cast<int>(c->populationMillions *
                                 prof.asPerMillionPeople),
                prof.minAsesPerCountry, perCountryCap);
            std::vector<AsIndex> domestic;
            for (int i = 0; i < count; ++i) {
                Asn thisAsn = asn++;
                if (c->iso2 == "RW" && i == 0) {
                    // Reserve the paper's Kigali vantage ASN (§7.3).
                    thisAsn = TopologyGenerator::kKigaliProbeAsn;
                }
                const bool mobile = rng_.bernoulli(prof.mobileShare);
                AsType type = AsType::MobileOperator;
                int prefixCount = 2;
                int prefixLength = 18;
                if (!mobile) {
                    const double roll = rng_.uniform01();
                    if (roll < 0.55) {
                        type = AsType::AccessIsp;
                        prefixCount = 2;
                        prefixLength = 20;
                    } else if (roll < 0.82) {
                        type = AsType::Enterprise;
                        prefixCount = 1;
                        prefixLength = 23;
                    } else {
                        type = AsType::Education;
                        prefixCount = 1;
                        prefixLength = 22;
                    }
                }
                const double weight =
                    rng_.pareto(1.1, 1.0) * (c->populationMillions / 30.0);
                prefixLength =
                    std::min(prefixLength + cfg_.prefixLengthAdjust, 24);
                const AsIndex idx = makeAs(type, *c, thisAsn, mobile,
                                           prefixCount, prefixLength, weight);

                // Transit selection: the maturity-dependent choice between
                // an African Tier-2 and a European upstream.
                const auto& regionalTier2 =
                    africanTier2ByRegion_[c->region];
                if (thisAsn == TopologyGenerator::kKigaliProbeAsn) {
                    // §7.3's vantage: its providers are IXP-rich African
                    // carriers, which is what made the Kigali probe see
                    // exchanges Atlas-style deployments miss.
                    if (!regionalTier2.empty()) {
                        linkTransit(idx, regionalTier2.front());
                    }
                    for (int k = 0;
                         k < 2 && k < static_cast<int>(carriers_.size());
                         ++k) {
                        linkTransit(idx, carriers_[static_cast<std::size_t>(
                                             k)]);
                    }
                    domestic.push_back(idx);
                    continue;
                }
                const bool smallAs = (type == AsType::Enterprise ||
                                      type == AsType::Education);
                if (smallAs && !domestic.empty() && rng_.bernoulli(0.45)) {
                    // National incumbent resells transit to small networks.
                    linkTransit(idx, rng_.pick(domestic));
                } else if (!regionalTier2.empty() &&
                           rng_.bernoulli(prof.localTransitProb)) {
                    linkTransit(idx, rng_.pick(regionalTier2));
                } else {
                    linkTransit(idx, pickEuUpstream());
                }
                if (rng_.bernoulli(prof.secondTransitProb)) {
                    if (!regionalTier2.empty() &&
                        rng_.bernoulli(prof.localTransitProb)) {
                        linkTransit(idx, rng_.pick(regionalTier2));
                    } else {
                        linkTransit(idx, pickEuUpstream());
                    }
                }
                if (cfg_.domesticPeerFanout > 0 &&
                    domestic.size() >
                        static_cast<std::size_t>(cfg_.domesticPeerFanout)) {
                    // Bounded-fanout sampling: linear edge growth at
                    // continent scale (the full scan is O(country²)).
                    for (int t = 0; t < cfg_.domesticPeerFanout; ++t) {
                        const AsIndex other = rng_.pick(domestic);
                        if (rng_.bernoulli(prof.domesticPeerProb)) {
                            linkPeer(idx, other);
                        }
                    }
                } else {
                    for (const AsIndex other : domestic) {
                        if (rng_.bernoulli(prof.domesticPeerProb)) {
                            linkPeer(idx, other);
                        }
                    }
                }
                domestic.push_back(idx);
            }
            africanEyeballsByCountry_[std::string{c->iso2}] =
                std::move(domestic);
        }
    }

    void meshIxp(IxpIndex ixpIdx, double density) {
        const auto& members = topo_.ixp(ixpIdx).members;
        if (cfg_.ixpMeshFanout > 0 &&
            members.size() >
                static_cast<std::size_t>(cfg_.ixpMeshFanout)) {
            // Bounded route-server mesh: each member samples a handful
            // of candidate sessions instead of the member² scan, so a
            // 2500-member exchange costs 20k draws, not 3M.
            for (const AsIndex member : members) {
                for (int t = 0; t < cfg_.ixpMeshFanout; ++t) {
                    const AsIndex other = rng_.pick(members);
                    if (rng_.bernoulli(density)) {
                        linkPeer(member, other, ixpIdx);
                    }
                }
            }
            return;
        }
        for (std::size_t i = 0; i < members.size(); ++i) {
            for (std::size_t j = i + 1; j < members.size(); ++j) {
                if (rng_.bernoulli(density)) {
                    linkPeer(members[i], members[j], ixpIdx);
                }
            }
        }
    }

    void createAfricanIxps() {
        for (const RegionProfile& prof : cfg_.africa) {
            const auto countries =
                net::CountryTable::world().inRegion(prof.region);
            // Host countries weighted by AS count; first pass gives each
            // country at most one IXP, extras go to the biggest markets.
            std::vector<const net::Country*> hosts;
            {
                std::vector<const net::Country*> pool(countries.begin(),
                                                      countries.end());
                std::ranges::sort(pool, [&](const auto* a, const auto* b) {
                    return a->populationMillions > b->populationMillions;
                });
                for (int i = 0; i < prof.ixpCount; ++i) {
                    hosts.push_back(
                        pool[static_cast<std::size_t>(i) % pool.size()]);
                }
            }
            int serial = 0;
            for (const auto* host : hosts) {
                Ixp ixp;
                ixp.name = std::string{host->iso2} + "-IX" +
                           std::to_string(++serial);
                ixp.countryCode = std::string{host->iso2};
                ixp.region = host->region;
                ixp.location = host->centroid;
                ixp.lanPrefix = alloc_.allocateIxpLan();
                // Most IXP LANs stay out of the global table (§6.1).
                ixp.lanInGlobalTable = rng_.bernoulli(0.08);
                ixp.yearEstablished =
                    static_cast<int>(rng_.uniformRange(2012, 2024));
                ixp.hasContentCache = rng_.bernoulli(prof.contentCacheProb);
                const IxpIndex ixpIdx = topo_.addIxp(std::move(ixp));

                // In-country members.
                const auto it = africanEyeballsByCountry_.find(
                    std::string{host->iso2});
                if (it != africanEyeballsByCountry_.end()) {
                    for (const AsIndex member : it->second) {
                        if (rng_.bernoulli(prof.ixpJoinProb)) {
                            topo_.addIxpMember(ixpIdx, member);
                        }
                    }
                }
                // Same-region remote peers.
                for (const auto* other : countries) {
                    if (other->iso2 == host->iso2) continue;
                    const auto oit = africanEyeballsByCountry_.find(
                        std::string{other->iso2});
                    if (oit == africanEyeballsByCountry_.end()) continue;
                    for (const AsIndex member : oit->second) {
                        if (rng_.bernoulli(prof.ixpRemotePeerProb)) {
                            topo_.addIxpMember(ixpIdx, member);
                        }
                    }
                }
                // Regional Tier-2s and continental carriers.
                for (const AsIndex t2 :
                     africanTier2ByRegion_[prof.region]) {
                    if (rng_.bernoulli(cfg_.tier2IxpJoinProb)) {
                        topo_.addIxpMember(ixpIdx, t2);
                    }
                }
                for (const AsIndex carrier : carriers_) {
                    if (rng_.bernoulli(cfg_.carrierIxpJoinProb)) {
                        topo_.addIxpMember(ixpIdx, carrier);
                    }
                }
                // Off-net cache: the content provider joins the exchange.
                if (topo_.ixp(ixpIdx).hasContentCache &&
                    !contentProviders_.empty()) {
                    topo_.addIxpMember(ixpIdx, rng_.pick(contentProviders_));
                }
                // An exchange with no members would be dead fabric; the
                // founding members in reality are the local incumbents.
                if (topo_.ixp(ixpIdx).members.empty() &&
                    it != africanEyeballsByCountry_.end() &&
                    !it->second.empty()) {
                    topo_.addIxpMember(ixpIdx, it->second.front());
                    if (it->second.size() > 1) {
                        topo_.addIxpMember(ixpIdx, it->second.back());
                    }
                }
                meshIxp(ixpIdx, prof.ixpMeshDensity);
            }
        }
    }

    void createEuropeanIxps() {
        // The big EU exchanges where African transit networks remote-peer;
        // crossing them is the "detour via EU IXP" class of §4.1.
        const char* homes[] = {"DE", "NL", "GB"};
        for (int i = 0; i < 3; ++i) {
            const net::Country& c = country(homes[i]);
            Ixp ixp;
            ixp.name = std::string{"EU-MEGA-IX-"} + std::string{c.iso2};
            ixp.countryCode = std::string{c.iso2};
            ixp.region = c.region;
            ixp.location = c.centroid;
            ixp.lanPrefix = alloc_.allocateIxpLan();
            ixp.lanInGlobalTable = rng_.bernoulli(0.3);
            ixp.yearEstablished = 1996 + i;
            const IxpIndex ixpIdx = topo_.addIxp(std::move(ixp));
            for (const AsIndex t2 : euTier2s_) {
                topo_.addIxpMember(ixpIdx, t2);
            }
            for (const AsIndex cp : contentProviders_) {
                topo_.addIxpMember(ixpIdx, cp);
            }
            for (const AsIndex cloud : euClouds_) {
                topo_.addIxpMember(ixpIdx, cloud);
            }
            for (const AsIndex t2 : africanTier2s_) {
                if (rng_.bernoulli(0.5)) {
                    topo_.addIxpMember(ixpIdx, t2);
                }
            }
            meshIxp(ixpIdx, 0.6);
        }
    }

    const GeneratorConfig& cfg_;
    net::Rng rng_;
    Topology topo_;
    PrefixAllocator alloc_;

    std::vector<AsIndex> tier1s_;
    std::vector<AsIndex> euTier1s_;
    std::vector<AsIndex> euTier2s_;
    std::vector<AsIndex> africanTier2s_;
    std::vector<AsIndex> carriers_;
    std::vector<AsIndex> contentProviders_;
    std::vector<AsIndex> euClouds_;
    std::vector<AsIndex> usClouds_;
    std::vector<AsIndex> zaClouds_;
    std::unordered_map<net::Region, std::vector<AsIndex>>
        africanTier2ByRegion_;
    std::unordered_map<net::MacroRegion, std::vector<AsIndex>>
        regionEyeballs_;
    std::unordered_map<std::string, std::vector<AsIndex>>
        africanEyeballsByCountry_;
};

} // namespace

TopologyGenerator::TopologyGenerator(GeneratorConfig config)
    : config_(std::move(config)) {}

Topology TopologyGenerator::generate() const {
    Builder builder{config_};
    return builder.build();
}

} // namespace aio::topo
